// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 5). Each benchmark regenerates its experiment and, on
// the first iteration, prints the rendered table so a `go test -bench=.`
// run reproduces the full evaluation output (see EXPERIMENTS.md for the
// paper-vs-measured record).
package sherlock

import (
	"context"
	"fmt"
	"os"
	"testing"

	"sherlock/internal/core"
	"sherlock/internal/exper"
	"sherlock/internal/lp"
	"sherlock/internal/report"
	"sherlock/internal/solver"
	"sherlock/internal/window"
)

// printOnce renders a table on the first benchmark iteration only.
func printOnce(i int, render func()) {
	if i == 0 {
		fmt.Fprintln(os.Stdout)
		render()
	}
}

func BenchmarkTable1AppInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		apps := Apps()
		if len(apps) != 8 {
			b.Fatal("inventory incomplete")
		}
		printOnce(i, func() { report.Table1(os.Stdout) })
	}
}

func BenchmarkTable2InferredResults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, runs, err := exper.Table2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() { report.Table2(os.Stdout, rows, exper.UniqueCorrect(runs)) })
	}
}

func BenchmarkTable3RaceDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmps, err := exper.Table3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		// Shape assertion from the paper: SherLock_dr finds at least as
		// many true races and strictly fewer false races than Manual_dr.
		var mt, st, mf, sf int
		for _, c := range cmps {
			mt += c.ManualTrue
			st += c.SherTrue
			mf += c.ManualFalse
			sf += c.SherFalse
		}
		if st < mt || sf >= mf {
			b.Fatalf("Table 3 shape violated: manual %d/%d vs sherlock %d/%d (true/false)", mt, mf, st, sf)
		}
		printOnce(i, func() { report.Table3(os.Stdout, cmps) })
	}
}

func BenchmarkTable4Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, runs, err := exper.Table2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		cmps, err := exper.Table3(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		rows := exper.Table4(runs, cmps)
		printOnce(i, func() { report.Table4(os.Stdout, rows) })
	}
}

func BenchmarkTable5HypothesisAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table5(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		// Paper shape: removing Mostly-Protected infers nothing; removing
		// Synchronizations-are-Rare hurts precision most among the rest.
		if rows[1].Total != 0 {
			b.Fatalf("w/o Mostly-Protected should infer nothing, got %d", rows[1].Total)
		}
		if rows[2].Precision >= rows[0].Precision {
			b.Fatalf("w/o Syncs-are-Rare should lose precision: %.2f vs %.2f",
				rows[2].Precision, rows[0].Precision)
		}
		printOnce(i, func() { report.Table5(os.Stdout, rows) })
	}
}

func BenchmarkFigure4PerturberFeedback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := exper.Figure4(context.Background(), 5)
		if err != nil {
			b.Fatal(err)
		}
		// Paper shape: the full system's correct count is non-decreasing
		// and at least matches every ablated setting by the final round.
		full := series[0]
		last := len(full.Correct) - 1
		for _, s := range series[1:] {
			if full.Correct[last] < s.Correct[last] {
				b.Fatalf("full SherLock (%d) beaten by %q (%d) at round %d",
					full.Correct[last], s.Name, s.Correct[last], last+1)
			}
		}
		printOnce(i, func() { report.Figure4(os.Stdout, series) })
	}
}

func BenchmarkTable6LambdaSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table6(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		// Paper shape: extreme λ suppresses inference.
		if rows[len(rows)-1].Total >= rows[1].Total {
			b.Fatalf("λ=100 should infer far less than λ=0.2: %d vs %d",
				rows[len(rows)-1].Total, rows[1].Total)
		}
		printOnce(i, func() { report.Sweep(os.Stdout, "Table 6: sensitivity of lambda", "lambda", rows) })
	}
}

func BenchmarkTable7NearSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Table7(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		// Paper shape: the tiny window misses most syncs; the default wins.
		if rows[0].Correct >= rows[1].Correct {
			b.Fatalf("0.01x Near should find fewer syncs: %d vs %d", rows[0].Correct, rows[1].Correct)
		}
		printOnce(i, func() { report.Sweep(os.Stdout, "Table 7: sensitivity of Near (x default)", "near", rows) })
	}
}

func BenchmarkTable8and9SyncListings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, runs, err := exper.Table2(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		ls := exper.Listings(runs)
		printOnce(i, func() { report.Listings(os.Stdout, ls) })
	}
}

func BenchmarkTSVDEnhancement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.TSVDEnhancement(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		// Paper shape: SherLock proves at least as many pairs synchronized.
		var t, s int
		for _, r := range rows {
			t += r.TSVDSynced
			s += r.SherSynced
		}
		if s < t {
			b.Fatalf("SherLock enhancement (%d) weaker than TSVD (%d)", s, t)
		}
		printOnce(i, func() { report.TSVD(os.Stdout, rows) })
	}
}

func BenchmarkOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := exper.Overhead(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		printOnce(i, func() { report.Overhead(os.Stdout, rows) })
	}
}

// BenchmarkInferOneApp measures the cost of a single default inference
// campaign (instrumentation + windows + 3 LP solves) on the largest app.
func BenchmarkInferOneApp(b *testing.B) {
	app, err := AppByName("App-1")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Infer(context.Background(), app, core.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInferParallel measures one App-1 campaign (20 tests × 3 rounds)
// at Parallelism 1 versus the host's full GOMAXPROCS pool. The two
// sub-benchmarks produce identical inference results — only the wall clock
// differs — so their ratio is the engine's parallel speedup.
func BenchmarkInferParallel(b *testing.B) {
	app, err := AppByName("App-1")
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range []struct {
		name    string
		workers int
	}{
		{"Parallelism=1", 1},
		{"Parallelism=GOMAXPROCS", 0},
	} {
		b.Run(bench.name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Parallelism = bench.workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Infer(context.Background(), app, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// solverCampaign runs a 6-round App-1 campaign once and returns each
// round's accumulated observations, plus the solver configuration the
// engine used. The snapshots let the Solve benchmarks measure exactly the
// per-round encode+solve cost, without re-running the scheduler.
func solverCampaign(b *testing.B) ([]*window.Observations, solver.Config) {
	b.Helper()
	app, err := AppByName("App-1")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Rounds = 6
	var snaps []*window.Observations
	cfg.OnRound = func(_ int, obs *window.Observations) {
		snaps = append(snaps, obs.Clone())
	}
	if _, err := core.Infer(context.Background(), app, cfg); err != nil {
		b.Fatal(err)
	}
	scfg := cfg.Solver
	scfg.KeepRacyWindows = !cfg.RemoveRacyMP
	return snaps, scfg
}

// BenchmarkSolveCold solves each round of the App-1 campaign from scratch:
// a fresh encoding and a cold simplex basis per round, the pre-reuse
// engine's cost.
func BenchmarkSolveCold(b *testing.B) {
	snaps, scfg := solverCampaign(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, obs := range snaps {
			if _, err := solver.Solve(obs, scfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSolveWarm solves the same campaign with cross-round reuse: one
// Encoder incrementally extends its cached encoding and each round's solve
// starts from the previous round's basis. Same results as BenchmarkSolveCold
// (the equivalence tests enforce it); the ratio of the two benchmarks is the
// warm-starting speedup.
func BenchmarkSolveWarm(b *testing.B) {
	snaps, scfg := solverCampaign(b)
	// The Encoder caches by accumulator identity; replay the snapshots
	// through one shell object so they look like the engine's single
	// growing accumulator.
	shell := &window.Observations{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := solver.NewEncoder(scfg)
		var basis *lp.Basis
		warmed := false
		for _, snap := range snaps {
			*shell = *snap
			sr, bs, err := enc.Solve(shell, basis)
			if err != nil {
				b.Fatal(err)
			}
			basis = bs
			warmed = warmed || sr.WarmStarted
		}
		if !warmed {
			b.Fatal("no round reused the previous basis; warm path is inert")
		}
	}
}

// BenchmarkExtensionSoftSingleRole runs the Section 5.5 future-work
// variant — Single-Role as a soft constraint — and checks it recovers a
// double-role API that the hard constraint forfeits: App-5's Barrier, whose
// arrival releases and whose return acquires.
func BenchmarkExtensionSoftSingleRole(b *testing.B) {
	const barrier = "System.Threading.Barrier::SignalAndWait"
	for i := 0; i < b.N; i++ {
		app, err := AppByName("App-5")
		if err != nil {
			b.Fatal(err)
		}
		hardRes, err := Infer(context.Background(), app, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		hard := hardRes.SyncKeys()
		_, hardAcq := hard["begin:"+barrier]
		_, hardRel := hard["end:"+barrier]
		if hardAcq && hardRel {
			b.Fatal("hard Single-Role should forfeit one barrier role")
		}

		cfg := DefaultConfig()
		cfg.Solver.SoftSingleRole = true
		softRes, err := Infer(context.Background(), app, cfg)
		if err != nil {
			b.Fatal(err)
		}
		soft := softRes.SyncKeys()
		_, softAcq := soft["begin:"+barrier]
		_, softRel := soft["end:"+barrier]
		if !softAcq || !softRel {
			b.Fatalf("soft Single-Role failed to recover the barrier: acquire=%v release=%v", softAcq, softRel)
		}
		printOnce(i, func() {
			fmt.Printf("Extension (soft Single-Role) on App-5 Barrier: hard=(acq %v, rel %v) soft=(acq %v, rel %v)\n",
				hardAcq, hardRel, softAcq, softRel)
		})
	}
}

// BenchmarkExtensionProbabilisticDelay reproduces the paper's footnote-1
// observation: injecting each delay with probability 0.5 yields results
// close to deterministic injection.
func BenchmarkExtensionProbabilisticDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		det, err := exper.RunAll(context.Background(), core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.DelayProbability = 0.5
		prob, err := exper.RunAll(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		d, p := exper.UniqueCorrect(det), exper.UniqueCorrect(prob)
		if diff := d - p; diff < -4 || diff > 4 {
			b.Fatalf("probabilistic injection diverged: %d vs %d correct", p, d)
		}
		printOnce(i, func() {
			fmt.Printf("Extension (probabilistic delays, p=0.5): %d unique correct vs %d deterministic\n", p, d)
		})
	}
}
