// Cluster scaling benchmark: boot in-process sherlockd clusters of 1, 2,
// and 4 nodes (real TCP listeners, real routing) and drive each with the
// same zipfian cache-miss workload — thousands of requests over a
// keyspace deliberately larger than one node's result cache. On one node
// the LRU thrashes its tail and keeps recomputing; in a cluster,
// consistent hashing partitions the keyspace so the AGGREGATE cache
// holds everything and the steady state is cache hits plus cheap
// cross-node hops. That is the scaling story this benchmark certifies
// (the host may well have a single CPU, so parallel compute contributes
// nothing — all speedup must come from not recomputing).
//
// Every request is an offline solve over the same uploaded trace set
// with a distinct seed override: the seed is hashed into the content key
// (distinct cache entries) but does not change the offline solve itself
// (uniform compute cost). The key index is drawn zipfian with a large
// rank offset v (P(k) ∝ 1/(v+k)^s): s shapes the curve, v bounds the
// head-to-tail probability ratio to roughly ((v+keys)/v)^s. Without the
// offset the head is so heavy that one node's LRU already holds most of
// the mass and extra nodes add nothing; with v ≈ keys the tail carries
// real weight and only aggregate capacity can stop the recomputes.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"sherlock/internal/apps"
	"sherlock/internal/cluster"
	"sherlock/internal/sched"
	"sherlock/internal/server"
	"sherlock/internal/store"
)

// clusterWorkload is the knob block, recorded verbatim in the output.
type clusterWorkload struct {
	Clients   int     `json:"clients"`
	Requests  int     `json:"requests"` // total, per cluster size
	Keys      int     `json:"keys"`     // distinct content keys (seed values)
	CacheCap  int     `json:"cache_capacity_per_node"`
	ZipfS     float64 `json:"zipf_s"`
	ZipfV     float64 `json:"zipf_v"` // rank offset; large v flattens the head
	Traces    int     `json:"traces_per_job"`
	Replicas  int     `json:"replicas"`
	ComputeMs float64 `json:"single_solve_ms"` // measured cost of one cold solve
}

// clusterPoint is one cluster size's measurement.
type clusterPoint struct {
	Nodes          int     `json:"nodes"`
	WallMs         float64 `json:"wall_ms"`
	Throughput     float64 `json:"jobs_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	P99Ms          float64 `json:"p99_ms"`
	Computed       float64 `json:"jobs_computed"`        // cluster-wide fresh solves
	LocalHits      float64 `json:"local_cache_hits"`     // answered from the node's own cache
	RemoteHits     float64 `json:"remote_cache_hits"`    // answered by a peer's cache
	Proxied        float64 `json:"proxied_jobs"`         // routed to the key's owner
	CacheHitRatio  float64 `json:"cache_hit_ratio"`      // (local+remote+proxied-computed)/requests
	CrossNodeRatio float64 `json:"cross_node_ratio"`     // (remote+proxied)/requests
	Errors         int     `json:"errors,omitempty"`     // failed requests (should be 0)
}

// clusterResult is the BENCH_cluster.json schema.
type clusterResult struct {
	Workload clusterWorkload `json:"workload"`
	Configs  []clusterPoint  `json:"configs"`
	Speedup  float64         `json:"speedup_4x_vs_1x"`
}

// benchNode is one in-process cluster member.
type benchNode struct {
	id  string
	url string
	srv *server.Server
	cl  *cluster.Cluster
	hs  *http.Server
	ln  net.Listener
}

func (n *benchNode) stop() {
	n.hs.Close()
	n.cl.Stop()
	n.srv.Close()
}

// benchCluster runs the sweep and writes the result file. A non-zero
// minSpeedup turns the 4-node-vs-1-node throughput ratio into a CI gate.
func benchCluster(outFile string, clients, requests, keys, cacheCap int, zipfS, zipfV float64, minSpeedup float64) error {
	if zipfV <= 0 {
		zipfV = float64(keys) // bounded-skew default: head/tail ratio ≈ 2^s
	}
	wl := clusterWorkload{
		Clients: clients, Requests: requests, Keys: keys,
		CacheCap: cacheCap, ZipfS: zipfS, ZipfV: zipfV, Replicas: 2,
	}

	// One shared trace set: a handful of real app traces, uploaded once
	// per cluster; every job solves all of them.
	var traceBlobs [][]byte
	for _, spec := range []struct {
		app  string
		seed int64
	}{{"App-1", 1}, {"App-2", 1}, {"App-3", 1}, {"App-4", 1}, {"App-5", 1}, {"App-6", 1}} {
		a, err := apps.ByName(spec.app)
		if err != nil {
			return err
		}
		for _, tc := range a.Tests {
			run, err := sched.Run(a, tc, sched.Options{Seed: spec.seed})
			if err != nil {
				return err
			}
			bin, err := store.EncodeTrace(run.Trace)
			if err != nil {
				return err
			}
			traceBlobs = append(traceBlobs, bin)
		}
	}
	wl.Traces = len(traceBlobs)

	res := clusterResult{Workload: wl}
	var oneNode float64
	for _, n := range []int{1, 2, 4} {
		pt, computeMs, err := benchClusterSize(n, &res.Workload, traceBlobs)
		if err != nil {
			return fmt.Errorf("cluster bench at %d nodes: %w", n, err)
		}
		if n == 1 {
			oneNode = pt.Throughput
			res.Workload.ComputeMs = computeMs
		}
		res.Configs = append(res.Configs, pt)
		fmt.Printf("bench cluster: %d node(s): %.1f jobs/s, p50 %.2fms p95 %.2fms p99 %.2fms, hit ratio %.2f, cross-node %.2f, computed %.0f\n",
			n, pt.Throughput, pt.P50Ms, pt.P95Ms, pt.P99Ms, pt.CacheHitRatio, pt.CrossNodeRatio, pt.Computed)
	}
	if oneNode > 0 {
		res.Speedup = res.Configs[len(res.Configs)-1].Throughput / oneNode
	}
	fmt.Printf("bench cluster: 4-node speedup over 1-node: %.2fx\n", res.Speedup)

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outFile, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	if minSpeedup > 0 && res.Speedup < minSpeedup {
		return fmt.Errorf("4-node speedup %.2fx below the %.2fx gate", res.Speedup, minSpeedup)
	}
	return nil
}

// benchClusterSize measures one cluster size end to end.
func benchClusterSize(n int, wl *clusterWorkload, traceBlobs [][]byte) (clusterPoint, float64, error) {
	pt := clusterPoint{Nodes: n}
	nodes, err := startBenchCluster(n, wl.CacheCap, wl.Replicas)
	if err != nil {
		return pt, 0, err
	}
	defer func() {
		for _, nd := range nodes {
			nd.stop()
		}
	}()

	// Upload the trace set to node 0; every other node pulls on demand
	// (EnsureTraces) or via fan-out/anti-entropy.
	traceKeys := make([]string, 0, len(traceBlobs))
	for _, bin := range traceBlobs {
		key, err := uploadBlob(nodes[0].url, bin)
		if err != nil {
			return pt, 0, err
		}
		traceKeys = append(traceKeys, key)
	}

	// Measure one cold solve to report the per-job compute cost.
	t0 := time.Now()
	if _, err := runClusterJob(nodes[0].url, traceKeys, 1_000_000); err != nil {
		return pt, 0, err
	}
	computeMs := float64(time.Since(t0).Microseconds()) / 1000

	// The zipfian sweep. Each client keeps its own rng (deterministic
	// per client index) and hits a uniformly random node per request:
	// clients do NOT know the ring — routing is the cluster's job.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		lats     = make([]time.Duration, 0, wl.Requests)
		errCount int
	)
	perClient := wl.Requests / wl.Clients
	start := time.Now()
	for ci := 0; ci < wl.Clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7_000_003*ci + 13)))
			zipf := rand.NewZipf(rng, wl.ZipfS, wl.ZipfV, uint64(wl.Keys-1))
			myLats := make([]time.Duration, 0, perClient)
			myErrs := 0
			for i := 0; i < perClient; i++ {
				seed := int64(zipf.Uint64()) + 1 // seed 0 would mean "inherit"
				url := nodes[rng.Intn(len(nodes))].url
				t := time.Now()
				if _, err := runClusterJob(url, traceKeys, seed); err != nil {
					myErrs++
					continue
				}
				myLats = append(myLats, time.Since(t))
			}
			mu.Lock()
			lats = append(lats, myLats...)
			errCount += myErrs
			mu.Unlock()
		}(ci)
	}
	wg.Wait()
	wall := time.Since(start)

	pt.WallMs = float64(wall.Microseconds()) / 1000
	pt.Throughput = float64(len(lats)) / wall.Seconds()
	pt.P50Ms, pt.P95Ms, pt.P99Ms = latencyPercentiles(lats)
	pt.Errors = errCount

	// Scrape the cluster-wide counters.
	for _, nd := range nodes {
		m, err := scrapeMetrics(nd.url)
		if err != nil {
			return pt, computeMs, err
		}
		pt.Computed += m["sherlock_jobs_computed_total"]
		pt.LocalHits += m["sherlock_cache_hits_total"]
		pt.RemoteHits += m["sherlock_cluster_remote_cache_hits_total"]
		pt.Proxied += m["sherlock_cluster_proxied_jobs_total"]
	}
	total := float64(len(lats)) + 1 // + the cold calibration job
	pt.CacheHitRatio = (total - pt.Computed) / total
	pt.CrossNodeRatio = (pt.RemoteHits + pt.Proxied) / total
	return pt, computeMs, nil
}

// startBenchCluster boots n members with listeners bound up front so the
// shared peer map carries real addresses.
func startBenchCluster(n, cacheCap, replicas int) ([]*benchNode, error) {
	listeners := make([]net.Listener, n)
	peers := make(map[string]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = ln
		peers[fmt.Sprintf("b%d", i)] = "http://" + ln.Addr().String()
	}
	nodes := make([]*benchNode, n)
	for i := range nodes {
		id := fmt.Sprintf("b%d", i)
		cfg := server.DefaultConfig()
		cfg.Workers = 2
		cfg.QueueSize = 256
		cfg.CacheCapacity = cacheCap
		cfg.Inference.Rounds = 1
		cfg.JobTimeout = time.Minute
		srv, err := server.New(cfg)
		if err != nil {
			return nil, err
		}
		cl, err := cluster.New(cluster.Config{
			NodeID:              id,
			Peers:               peers,
			Replicas:            replicas,
			AntiEntropyInterval: 500 * time.Millisecond,
			ProbeInterval:       250 * time.Millisecond,
			LookupTimeout:       5 * time.Second,
			ProxyTimeout:        time.Minute,
		}, srv)
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: cl.Handler()}
		go hs.Serve(listeners[i])
		cl.Start()
		nodes[i] = &benchNode{id: id, url: peers[id], srv: srv, cl: cl, hs: hs, ln: listeners[i]}
	}
	return nodes, nil
}

// runClusterJob submits one trace_keys job with a seed override and
// drives it to done, returning the result key.
func runClusterJob(base string, traceKeys []string, seed int64) (string, error) {
	buf, _ := json.Marshal(map[string]any{"trace_keys": traceKeys, "seed": seed})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		return "", err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var v struct {
		ID     string `json:"id"`
		Key    string `json:"key"`
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		return "", err
	}
	// Long-poll to completion: one blocking watch call per job instead of
	// a tight status loop — at bench rates the poll traffic itself would
	// be a real CPU tax on the nodes being measured.
	deadline := time.Now().Add(time.Minute)
	for v.Status != "done" {
		if v.Status == "failed" || v.Status == "canceled" {
			return "", fmt.Errorf("job %s: %s: %s", v.ID, v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("job %s stuck in %s", v.ID, v.Status)
		}
		r, err := http.Get(base + "/v1/jobs/" + v.ID + "/watch?timeout=30")
		if err != nil {
			return "", err
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if err := json.Unmarshal(b, &v); err != nil {
			return "", err
		}
	}
	return v.Key, nil
}

// uploadBlob posts one encoded trace and returns its corpus key.
func uploadBlob(base string, bin []byte) (string, error) {
	resp, err := http.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(bin))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("upload: HTTP %d: %s", resp.StatusCode, body)
	}
	var v struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		return "", err
	}
	return v.Key, nil
}

// latencyPercentiles returns p50/p95/p99 in milliseconds.
func latencyPercentiles(lats []time.Duration) (p50, p95, p99 float64) {
	if len(lats) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return float64(sorted[i].Microseconds()) / 1000
	}
	return at(0.50), at(0.95), at(0.99)
}

var metricLine = regexp.MustCompile(`(?m)^([a-z_]+)(?:\{[^}]*\})? ([0-9.e+-]+)$`)

// scrapeMetrics fetches /metrics and sums every sample per metric name
// (labeled series collapse into their total).
func scrapeMetrics(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, m := range metricLine.FindAllStringSubmatch(string(body), -1) {
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out[m[1]] += v
	}
	return out, nil
}
