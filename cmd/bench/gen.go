// Generated-app benchmark: score the full inference pipeline against the
// procedural generator's machine-readable ground truth at a scale the
// eight hand-built apps cannot provide. The sweep campaigns N distinct
// generated programs (seeds round-robined across the generator's
// profiles), scores each against its truth, and writes per-app rows plus
// aggregates to BENCH_gen.json. Two aggregate quality figures drive the
// -gen-gate CI gate:
//
//   - non-race precision: correct / (correct + not-sync). True-race and
//     instrumentation-error inferences are the paper's expected,
//     separately bucketed outcomes — the gate guards against unexplained
//     false positives, which is what a generator/inference regression
//     produces.
//   - recall vs unbucketed truth: correct / (correct + missed-other),
//     where category-bucketed misses (dispose timing, static-ctor
//     alternates, ...) are the paper's known-hard cases and excluded
//     from the floor.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/gen"
	"sherlock/internal/prog"
)

// genAppResult is one generated application's row in BENCH_gen.json.
type genAppResult struct {
	App     string `json:"app"`
	Profile string `json:"profile"`

	Inferred    int     `json:"inferred"`
	Correct     int     `json:"correct"`
	DataRacy    int     `json:"data_racy"`
	InstrErrors int     `json:"instr_errors"`
	NotSync     int     `json:"not_sync"`
	Missed      int     `json:"missed"`
	MissedOther int     `json:"missed_other"` // misses outside the known-hard category buckets
	Precision   float64 `json:"precision"`
}

// genAggregate sums the sweep and carries the two gated quality figures.
type genAggregate struct {
	Apps        int `json:"apps"`
	Inferred    int `json:"inferred"`
	Correct     int `json:"correct"`
	DataRacy    int `json:"data_racy"`
	InstrErrors int `json:"instr_errors"`
	NotSync     int `json:"not_sync"`
	Missed      int `json:"missed"`
	MissedOther int `json:"missed_other"`

	NonRacePrecision float64 `json:"non_race_precision"` // correct / (correct + not_sync)
	Recall           float64 `json:"recall"`             // correct / (correct + missed_other)
}

// genResult is the BENCH_gen.json schema.
type genResult struct {
	GeneratorVersion string         `json:"generator_version"`
	N                int            `json:"n"`
	Rounds           int            `json:"rounds"`
	Apps             []genAppResult `json:"apps"`
	Aggregate        genAggregate   `json:"aggregate"`
}

// genGateMinPrecision / genGateMinRecall are the -gen-gate floors,
// deliberately below the measured operating point (≈0.95 / ≈0.89 at
// N=100, rounds=3) so the gate trips on regressions, not noise.
const (
	genGateMinPrecision = 0.90
	genGateMinRecall    = 0.75
)

// benchGen sweeps n generated applications and writes the result file.
// With gate set, the aggregate non-race precision and recall floors (and
// a minimum sweep size) become errors — exit 1 in main.
func benchGen(outFile string, n, rounds int, gate bool) error {
	ctx := context.Background()
	res := genResult{GeneratorVersion: gen.Version, N: n, Rounds: rounds}
	for i := 0; i < n; i++ {
		spec := gen.Spec{
			Seed:    int64(i + 1),
			Profile: gen.Profiles[i%len(gen.Profiles)],
			Size:    gen.DefaultSize,
		}
		// Resolve through the program-source registry — the same path the
		// CLI and server take — so the sweep also exercises name routing.
		app, err := apps.ByName(spec.Name())
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Name(), err)
		}
		cfg := core.DefaultConfig()
		cfg.Rounds = rounds
		r, err := core.Infer(ctx, app, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Name(), err)
		}
		score := core.ScoreResult(app, r)
		row := genAppResult{
			App:         spec.Name(),
			Profile:     spec.Profile,
			Inferred:    score.Total(),
			Correct:     len(score.Correct),
			DataRacy:    len(score.DataRacy),
			InstrErrors: len(score.InstrErrors),
			NotSync:     len(score.NotSync),
			Missed:      len(score.Missed),
			MissedOther: score.MissByCategory[prog.CatOther],
			Precision:   score.Precision(),
		}
		res.Apps = append(res.Apps, row)
		res.Aggregate.Inferred += row.Inferred
		res.Aggregate.Correct += row.Correct
		res.Aggregate.DataRacy += row.DataRacy
		res.Aggregate.InstrErrors += row.InstrErrors
		res.Aggregate.NotSync += row.NotSync
		res.Aggregate.Missed += row.Missed
		res.Aggregate.MissedOther += row.MissedOther
	}
	res.Aggregate.Apps = len(res.Apps)
	if d := res.Aggregate.Correct + res.Aggregate.NotSync; d > 0 {
		res.Aggregate.NonRacePrecision = float64(res.Aggregate.Correct) / float64(d)
	}
	if d := res.Aggregate.Correct + res.Aggregate.MissedOther; d > 0 {
		res.Aggregate.Recall = float64(res.Aggregate.Correct) / float64(d)
	}

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outFile, buf, 0o644); err != nil {
		return err
	}
	a := res.Aggregate
	fmt.Printf("%s: %d generated apps (%s, rounds=%d): %d inferred, %d correct, %d racy, %d instr, %d not-sync, %d missed (%d unbucketed)\n",
		outFile, a.Apps, gen.Version, rounds, a.Inferred, a.Correct, a.DataRacy, a.InstrErrors, a.NotSync, a.Missed, a.MissedOther)
	fmt.Printf("%s: non-race precision %.3f (gate ≥ %.2f), recall %.3f (gate ≥ %.2f)\n",
		outFile, a.NonRacePrecision, genGateMinPrecision, a.Recall, genGateMinRecall)

	if gate {
		if n < 100 {
			return fmt.Errorf("gen gate needs -gen-n >= 100, got %d", n)
		}
		if a.NonRacePrecision < genGateMinPrecision {
			return fmt.Errorf("aggregate non-race precision %.3f below the gate floor %.2f",
				a.NonRacePrecision, genGateMinPrecision)
		}
		if a.Recall < genGateMinRecall {
			return fmt.Errorf("aggregate recall %.3f below the gate floor %.2f",
				a.Recall, genGateMinRecall)
		}
	}
	return nil
}
