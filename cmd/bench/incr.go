// Incremental-inference benchmark: how much cheaper is extending a
// checkpointed corpus solve by a few traces than re-solving from scratch?
// For each appended-trace count the from-scratch path re-runs the full
// offline solve over base+k traces, while the incremental path folds just
// the k new traces into the base checkpoint, warm-starting the LP from the
// stored basis. The checkpoint is decoded once, outside the timed region:
// a live daemon holds it in memory between uploads and only pays the
// decode on restart, so the steady-state per-upload cost is the honest
// comparison. The numbers land in BENCH_incremental.json;
// -incr-min-speedup turns the +1-trace point into a CI gate.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/sched"
	"sherlock/internal/store"
	"sherlock/internal/trace"
)

// incrPoint is one appended-trace measurement.
type incrPoint struct {
	Appended  int     `json:"appended"`
	ScratchNs int64   `json:"scratch_ns"`
	IncrNs    int64   `json:"incr_ns"`
	Speedup   float64 `json:"speedup"`
}

// foldPoint measures the cost of folding the SAME one trace into
// checkpointed bases of increasing size — the sublinearity claim: the
// per-upload fold cost must be governed by the new trace, not by how much
// corpus the checkpoint already holds.
type foldPoint struct {
	BaseTraces int   `json:"base_traces"`
	IncrNs     int64 `json:"incr_ns"`
}

// incrResult is the BENCH_incremental.json schema.
type incrResult struct {
	App        string      `json:"app"`
	BaseTraces int         `json:"base_traces"`
	Reps       int         `json:"reps"`
	Points     []incrPoint `json:"points"`
	// Fold holds the +1-trace fold cost at quarter, half, and full base;
	// FoldGrowth is full-base cost over quarter-base cost.
	Fold       []foldPoint `json:"fold"`
	FoldGrowth float64     `json:"fold_growth"`
}

// benchIncr runs the incremental-vs-from-scratch measurement and writes
// the result file. A non-zero minSpeedup gates the +1-trace point; a
// non-zero maxFoldGrowth gates the base-size independence of the fold.
func benchIncr(outFile, appName string, baseTraces, reps int, minSpeedup, maxFoldGrowth float64) error {
	app, err := apps.ByName(appName)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	appends := []int{1, 4, 16}
	need := baseTraces + appends[len(appends)-1]

	// Capture distinct traces (tests x seeds, deduped by content address).
	var kts []core.KeyedTrace
	seen := map[string]bool{}
	for seed := int64(1); len(kts) < need; seed++ {
		for _, tc := range app.Tests {
			run, err := sched.Run(app, tc, sched.Options{Seed: seed})
			if err != nil {
				return err
			}
			key, err := store.Key(run.Trace)
			if err != nil {
				return err
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			kts = append(kts, core.KeyedTrace{Key: key, Trace: run.Trace})
			if len(kts) == need {
				break
			}
		}
	}

	// Build the base checkpoint once and round-trip it through the persisted
	// encoding, so the measured state is exactly what a daemon would hold.
	ctx := context.Background()
	_, baseCk, err := core.InferIncremental(ctx, nil, core.KeyedSlice(kts[:baseTraces]), cfg)
	if err != nil {
		return err
	}
	ckBytes, err := core.EncodeCheckpoint(baseCk)
	if err != nil {
		return err
	}
	ck, err := core.DecodeCheckpoint(ckBytes)
	if err != nil {
		return err
	}

	res := incrResult{App: appName, BaseTraces: baseTraces, Reps: reps}
	for _, k := range appends {
		full := kts[:baseTraces+k]
		sorted := append([]core.KeyedTrace(nil), full...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
		var traces []*trace.Trace
		for _, kt := range sorted {
			traces = append(traces, kt.Trace)
		}

		pt := incrPoint{Appended: k}
		var scratchRes, incrRes *core.Result
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			sr, err := core.InferFromSource(ctx, core.SliceSource(traces), cfg)
			if err != nil {
				return err
			}
			if d := time.Since(t0); rep == 0 || d.Nanoseconds() < pt.ScratchNs {
				pt.ScratchNs = d.Nanoseconds()
			}
			scratchRes = sr

			t0 = time.Now()
			ir, _, err := core.InferIncremental(ctx, ck, core.KeyedSlice(kts[baseTraces:baseTraces+k]), cfg)
			if err != nil {
				return err
			}
			if d := time.Since(t0); rep == 0 || d.Nanoseconds() < pt.IncrNs {
				pt.IncrNs = d.Nanoseconds()
			}
			incrRes = ir
		}
		if err := sameInference(scratchRes, incrRes); err != nil {
			return fmt.Errorf("+%d traces: %w", k, err)
		}
		pt.Speedup = float64(pt.ScratchNs) / float64(pt.IncrNs)
		res.Points = append(res.Points, pt)
	}

	// Fold-growth: fold the same held-out trace (kts[baseTraces], in no
	// base) into checkpoints of a quarter, half, and the full base. Each
	// checkpoint round-trips the persisted encoding like the main
	// measurement, and only the fold is timed.
	extra := core.KeyedSlice(kts[baseTraces : baseTraces+1])
	for _, b := range []int{baseTraces / 4, baseTraces / 2, baseTraces} {
		_, bck, err := core.InferIncremental(ctx, nil, core.KeyedSlice(kts[:b]), cfg)
		if err != nil {
			return err
		}
		bb, err := core.EncodeCheckpoint(bck)
		if err != nil {
			return err
		}
		fck, err := core.DecodeCheckpoint(bb)
		if err != nil {
			return err
		}
		fp := foldPoint{BaseTraces: b}
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			if _, _, err := core.InferIncremental(ctx, fck, extra, cfg); err != nil {
				return err
			}
			if d := time.Since(t0); rep == 0 || d.Nanoseconds() < fp.IncrNs {
				fp.IncrNs = d.Nanoseconds()
			}
		}
		res.Fold = append(res.Fold, fp)
	}
	res.FoldGrowth = float64(res.Fold[len(res.Fold)-1].IncrNs) / float64(res.Fold[0].IncrNs)

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outFile, buf, 0o644); err != nil {
		return err
	}
	for _, pt := range res.Points {
		fmt.Printf("%s: +%d traces on %d-trace base: scratch %.1fms vs incremental %.1fms: %.2fx\n",
			outFile, pt.Appended, res.BaseTraces,
			float64(pt.ScratchNs)/1e6, float64(pt.IncrNs)/1e6, pt.Speedup)
	}
	for _, fp := range res.Fold {
		fmt.Printf("%s: +1-trace fold on %d-trace base: %.1fms\n", outFile, fp.BaseTraces, float64(fp.IncrNs)/1e6)
	}
	fmt.Printf("%s: fold growth %dx base -> %.2fx cost\n", outFile, baseTraces/(baseTraces/4), res.FoldGrowth)
	if minSpeedup > 0 && res.Points[0].Speedup < minSpeedup {
		return fmt.Errorf("+1-trace incremental speedup %.2fx below the %.2fx gate", res.Points[0].Speedup, minSpeedup)
	}
	if maxFoldGrowth > 0 && res.FoldGrowth > maxFoldGrowth {
		return fmt.Errorf("+1-trace fold cost grows %.2fx from %d- to %d-trace base (gate %.2fx): fold is not base-size independent",
			res.FoldGrowth, res.Fold[0].BaseTraces, baseTraces, maxFoldGrowth)
	}
	return nil
}

// sameInference checks the benchmark's sanity invariant: both paths must
// infer the identical operation set with identical posteriors.
func sameInference(a, b *core.Result) error {
	ca, cb := *a, *b
	ca.Overhead.RunWall, ca.Overhead.SolveWall = 0, 0
	cb.Overhead.RunWall, cb.Overhead.SolveWall = 0, 0
	ba, err := json.Marshal(&ca)
	if err != nil {
		return err
	}
	bb, err := json.Marshal(&cb)
	if err != nil {
		return err
	}
	if string(ba) != string(bb) {
		return fmt.Errorf("incremental result differs from from-scratch solve")
	}
	return nil
}
