// Command bench measures the solver's cross-round warm-starting against
// the cold-start path on multi-round campaigns and writes the numbers to
// a JSON file, so the speedup can be tracked across commits and asserted
// by CI without parsing `go test -bench` output.
//
// The solver sweep covers every registered application: each app's
// campaign produces per-round observation snapshots, each round encoded
// and solved cold (fresh encoding, cold basis) and warm (incremental
// encoder, previous round's basis re-optimized by dual simplex). Both
// paths produce identical inference results; only the cost differs. The
// file records, per app and in aggregate: wall clock, simplex pivots
// (with the dual-pivot share), cold pivot throughput (pivots_per_sec),
// and the fraction of rows/columns presolve eliminated. -min-pivot-rate
// turns the aggregate cold throughput into a CI gate.
//
// It also measures the serving layer (cmd/sherlockd's internals driven
// over real HTTP): cold submissions that run a fresh campaign vs.
// cache-hit resubmissions answered from the content-addressed result
// cache, written to a second JSON file, and the trace store (binary codec
// size and throughput against JSON lines over the full 8-app corpus),
// written to a third. Together the files record the perf trajectory of
// the solver, the serving path, and the trace codec.
//
// Usage:
//
//	bench [-rounds 6] [-reps 5] [-out BENCH_solver.json] [-min-pivot-rate 0]
//	      [-app App-1]
//	      [-server-out BENCH_server.json] [-server-jobs 16]
//	      [-store-out BENCH_store.json]
//	      [-obs-out BENCH_obs.json] [-obs-reps 7] [-obs-max-pct 5]
//	      [-incr-out BENCH_incremental.json] [-incr-base 160] [-incr-reps 5]
//	      [-incr-min-speedup 3] [-incr-max-fold-growth 2]
//	      [-static-out BENCH_static.json] [-static-rounds 3] [-static-gate]
//	      [-gen-out BENCH_gen.json] [-gen-n 100] [-gen-rounds 3] [-gen-gate]
//
// -app selects the workload of the server/obs/incremental measurements;
// the solver and static sweeps always cover all apps, and the gen sweep
// scores -gen-n procedurally generated apps against their machine-
// readable ground truth. Each -*out flag accepts "" to skip that
// measurement; -obs-max-pct, -incr-min-speedup, -incr-max-fold-growth,
// -static-gate, -gen-gate and -min-pivot-rate turn their records into
// CI gates (non-zero exit on breach).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/lp"
	"sherlock/internal/solver"
	"sherlock/internal/window"
)

// appResult is one application's row in the solver benchmark file. Times
// are the best-of-reps wall clock for one full campaign's worth of solves,
// in nanoseconds; PivotsPerSec is the cold-path pivot throughput over that
// best rep (total simplex pivots / cold seconds). The presolve ratios are
// the fraction of constraint rows / variables eliminated before any
// pivoting, summed over the campaign's rounds.
type appResult struct {
	App          string  `json:"app"`
	ColdNs       int64   `json:"cold_ns"`
	WarmNs       int64   `json:"warm_ns"`
	Speedup      float64 `json:"speedup"`
	ColdIters    int     `json:"cold_iters"`
	WarmIters    int     `json:"warm_iters"`
	DualIters    int     `json:"dual_iters"`
	WarmRounds   int     `json:"warm_rounds"`
	PivotsPerSec float64 `json:"pivots_per_sec"`

	PresolveRowRatio float64 `json:"presolve_row_ratio"`
	PresolveColRatio float64 `json:"presolve_col_ratio"`
}

// aggregate sums the per-app campaigns: total wall clock, overall speedup,
// and pivot throughput across the whole 8-app sweep.
type aggregate struct {
	ColdNs           int64   `json:"cold_ns"`
	WarmNs           int64   `json:"warm_ns"`
	Speedup          float64 `json:"speedup"`
	ColdIters        int     `json:"cold_iters"`
	WarmIters        int     `json:"warm_iters"`
	DualIters        int     `json:"dual_iters"`
	PivotsPerSec     float64 `json:"pivots_per_sec"`
	PresolveRowRatio float64 `json:"presolve_row_ratio"`
	PresolveColRatio float64 `json:"presolve_col_ratio"`
}

// result is the BENCH_solver.json schema: the all-app sweep plus its
// aggregate. (Earlier revisions measured App-1 only with the aggregate
// fields at top level; consumers are the README tables and the CI
// -min-pivot-rate gate, both updated with the schema.)
type result struct {
	Rounds    int         `json:"rounds"`
	Reps      int         `json:"reps"`
	Apps      []appResult `json:"apps"`
	Aggregate aggregate   `json:"aggregate"`
}

func main() {
	var (
		appName      = flag.String("app", "App-1", "application to campaign on")
		rounds       = flag.Int("rounds", 6, "campaign rounds")
		reps         = flag.Int("reps", 5, "repetitions (best is reported)")
		out          = flag.String("out", "BENCH_solver.json", "solver benchmark output file (empty = skip)")
		outAlias     = flag.String("o", "", "alias for -out (deprecated)")
		serverOut    = flag.String("server-out", "BENCH_server.json", "server benchmark output file (empty = skip)")
		serverJobs   = flag.Int("server-jobs", 16, "cold/hit submissions per server measurement")
		storeOut     = flag.String("store-out", "BENCH_store.json", "trace-store benchmark output file (empty = skip)")
		obsOut       = flag.String("obs-out", "", "tracing-overhead benchmark output file (empty = skip)")
		obsReps      = flag.Int("obs-reps", 7, "campaign repetitions per tracing mode (best is reported)")
		obsMaxPct    = flag.Float64("obs-max-pct", 0, "fail (exit 1) if no-sink tracing overhead exceeds this percentage (0 = record only)")
		incrOut      = flag.String("incr-out", "", "incremental-inference benchmark output file (empty = skip)")
		incrBase     = flag.Int("incr-base", 160, "checkpointed base corpus size in traces")
		incrReps     = flag.Int("incr-reps", 5, "repetitions per incremental point (best is reported)")
		incrMinSpd   = flag.Float64("incr-min-speedup", 0, "fail (exit 1) if the +1-trace incremental speedup falls below this (0 = record only)")
		incrMaxFG    = flag.Float64("incr-max-fold-growth", 0, "fail (exit 1) if the +1-trace fold cost at the full base exceeds this multiple of the quarter-base cost (0 = record only)")
		staticOut    = flag.String("static-out", "", "static/hybrid inference benchmark output file (empty = skip)")
		staticRounds = flag.Int("static-rounds", 3, "campaign rounds for the static/hybrid sweep")
		staticGate   = flag.Bool("static-gate", false, "fail (exit 1) if any app's hybrid campaign diverges from dynamic or converges slower")
		genOut       = flag.String("gen-out", "", "generated-app benchmark output file (empty = skip)")
		genN         = flag.Int("gen-n", 100, "number of distinct generated applications to sweep")
		genRounds    = flag.Int("gen-rounds", 3, "campaign rounds per generated app")
		genGate      = flag.Bool("gen-gate", false, "fail (exit 1) if the sweep's aggregate non-race precision/recall fall below the floors (needs -gen-n >= 100)")
		minPivRate   = flag.Float64("min-pivot-rate", 0, "fail (exit 1) if the aggregate cold-solve pivot rate (pivots/sec) falls below this (0 = record only)")
		clusterOut   = flag.String("cluster-out", "", "cluster scaling benchmark output file (empty = skip)")
		clClients    = flag.Int("cluster-clients", 24, "concurrent clients driving the cluster")
		clRequests   = flag.Int("cluster-requests", 6000, "total requests per cluster size")
		clKeys       = flag.Int("cluster-keys", 600, "distinct content keys in the zipfian keyspace")
		clCache      = flag.Int("cluster-cache", 200, "result cache capacity per node (entries)")
		clZipfS      = flag.Float64("cluster-zipf", 1.02, "zipf exponent of the key popularity distribution (>1)")
		clZipfV      = flag.Float64("cluster-zipf-v", 0, "zipf rank offset; larger flattens the head (0 = keys)")
		clMinSpeed   = flag.Float64("cluster-min-speedup", 0, "fail (exit 1) if 4-node throughput is below this multiple of 1-node (0 = record only)")
	)
	flag.Parse()
	if *outAlias != "" {
		*out = *outAlias
	}

	if *out != "" {
		die(benchSolver(*out, *rounds, *reps, *minPivRate))
	}
	if *serverOut != "" {
		die(benchServer(*serverOut, *appName, *serverJobs))
	}
	if *storeOut != "" {
		die(benchStore(*storeOut, *reps))
	}
	if *obsOut != "" {
		die(benchObs(*obsOut, *appName, *rounds, *obsReps, *obsMaxPct))
	}
	if *incrOut != "" {
		die(benchIncr(*incrOut, *appName, *incrBase, *incrReps, *incrMinSpd, *incrMaxFG))
	}
	if *staticOut != "" {
		die(benchStatic(*staticOut, *staticRounds, *staticGate))
	}
	if *genOut != "" {
		die(benchGen(*genOut, *genN, *genRounds, *genGate))
	}
	if *clusterOut != "" {
		die(benchCluster(*clusterOut, *clClients, *clRequests, *clKeys, *clCache, *clZipfS, *clZipfV, *clMinSpeed))
	}
}

// benchSolver sweeps every registered application: each app's campaign is
// replayed round by round, solved cold (fresh encoding, cold basis) and
// warm (incremental encoder, previous basis re-optimized by dual simplex),
// and the per-app and aggregate numbers are written to the result file.
// A non-zero minPivotRate turns the aggregate cold pivot throughput into a
// CI gate: falling below it is an error (exit 1 in main).
func benchSolver(out string, rounds, reps int, minPivotRate float64) error {
	res := result{Rounds: rounds, Reps: reps}
	for _, appName := range apps.Names() {
		ar, err := benchSolverApp(appName, rounds, reps)
		if err != nil {
			return fmt.Errorf("%s: %w", appName, err)
		}
		res.Apps = append(res.Apps, ar)
		res.Aggregate.ColdNs += ar.ColdNs
		res.Aggregate.WarmNs += ar.WarmNs
		res.Aggregate.ColdIters += ar.ColdIters
		res.Aggregate.WarmIters += ar.WarmIters
		res.Aggregate.DualIters += ar.DualIters
	}
	res.Aggregate.Speedup = float64(res.Aggregate.ColdNs) / float64(res.Aggregate.WarmNs)
	res.Aggregate.PivotsPerSec = float64(res.Aggregate.ColdIters) / (float64(res.Aggregate.ColdNs) / 1e9)
	// Size-weighted presolve ratios: weight each app by its cold pivots so
	// the aggregate reflects where the solve time actually goes.
	var rowSum, colSum, wSum float64
	for _, ar := range res.Apps {
		w := float64(ar.ColdIters)
		if w == 0 {
			w = 1
		}
		rowSum += w * ar.PresolveRowRatio
		colSum += w * ar.PresolveColRatio
		wSum += w
	}
	res.Aggregate.PresolveRowRatio = rowSum / wSum
	res.Aggregate.PresolveColRatio = colSum / wSum

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	for _, ar := range res.Apps {
		fmt.Printf("%s: %s cold %.1fms (%d pivots, %.0f pivots/s) vs warm %.1fms (%d pivots, %d dual, %d/%d rounds warm): %.2fx; presolve -%.0f%% rows -%.0f%% cols\n",
			out, ar.App, float64(ar.ColdNs)/1e6, ar.ColdIters, ar.PivotsPerSec,
			float64(ar.WarmNs)/1e6, ar.WarmIters, ar.DualIters, ar.WarmRounds, rounds, ar.Speedup,
			100*ar.PresolveRowRatio, 100*ar.PresolveColRatio)
	}
	fmt.Printf("%s: aggregate cold %.1fms vs warm %.1fms: %.2fx, %.0f pivots/s cold\n",
		out, float64(res.Aggregate.ColdNs)/1e6, float64(res.Aggregate.WarmNs)/1e6,
		res.Aggregate.Speedup, res.Aggregate.PivotsPerSec)
	if minPivotRate > 0 && res.Aggregate.PivotsPerSec < minPivotRate {
		return fmt.Errorf("aggregate cold pivot rate %.0f/s below the -min-pivot-rate gate %.0f/s",
			res.Aggregate.PivotsPerSec, minPivotRate)
	}
	return nil
}

// benchSolverApp measures one application's campaign cold and warm.
func benchSolverApp(appName string, rounds, reps int) (appResult, error) {
	ar := appResult{App: appName}
	app, err := apps.ByName(appName)
	if err != nil {
		return ar, err
	}
	cfg := core.DefaultConfig()
	cfg.Rounds = rounds
	var snaps []*window.Observations
	cfg.OnRound = func(_ int, obs *window.Observations) {
		snaps = append(snaps, obs.Clone())
	}
	if _, err := core.Infer(context.Background(), app, cfg); err != nil {
		return ar, err
	}
	scfg := cfg.Solver
	scfg.KeepRacyWindows = !cfg.RemoveRacyMP

	for rep := 0; rep < reps; rep++ {
		iters, presRows, presCols, rows, cols := 0, 0, 0, 0, 0
		t0 := time.Now()
		for _, obs := range snaps {
			sr, err := solver.Solve(obs, scfg)
			if err != nil {
				return ar, err
			}
			iters += sr.Iters
			presRows += sr.RowsPresolved
			presCols += sr.ColsPresolved
			rows += sr.Constraints
			cols += sr.Vars
		}
		if d := time.Since(t0); rep == 0 || d.Nanoseconds() < ar.ColdNs {
			ar.ColdNs = d.Nanoseconds()
		}
		ar.ColdIters = iters
		if rows > 0 {
			ar.PresolveRowRatio = float64(presRows) / float64(rows)
		}
		if cols > 0 {
			ar.PresolveColRatio = float64(presCols) / float64(cols)
		}
	}
	shell := &window.Observations{}
	for rep := 0; rep < reps; rep++ {
		iters, dualIters, warmRounds := 0, 0, 0
		enc := solver.NewEncoder(scfg)
		var basis *lp.Basis
		t0 := time.Now()
		for _, snap := range snaps {
			*shell = *snap
			sr, bs, err := enc.Solve(shell, basis)
			if err != nil {
				return ar, err
			}
			basis = bs
			iters += sr.Iters
			dualIters += sr.DualIters
			if sr.WarmStarted {
				warmRounds++
			}
		}
		if d := time.Since(t0); rep == 0 || d.Nanoseconds() < ar.WarmNs {
			ar.WarmNs = d.Nanoseconds()
		}
		ar.WarmIters, ar.DualIters, ar.WarmRounds = iters, dualIters, warmRounds
	}
	ar.Speedup = float64(ar.ColdNs) / float64(ar.WarmNs)
	ar.PivotsPerSec = float64(ar.ColdIters) / (float64(ar.ColdNs) / 1e9)
	return ar, nil
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
