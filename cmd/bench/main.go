// Command bench measures the solver's cross-round warm-starting against
// the cold-start path on a multi-round campaign and writes the numbers to
// a JSON file, so the speedup can be tracked across commits and asserted
// by CI without parsing `go test -bench` output.
//
// The workload mirrors BenchmarkSolveCold / BenchmarkSolveWarm: one App-1
// campaign's per-round observation snapshots, each round encoded and
// solved cold (fresh encoding, cold basis) and warm (incremental encoder,
// previous round's basis carried). Both paths produce identical inference
// results; only the cost differs.
//
// It also measures the serving layer (cmd/sherlockd's internals driven
// over real HTTP): cold submissions that run a fresh campaign vs.
// cache-hit resubmissions answered from the content-addressed result
// cache, written to a second JSON file, and the trace store (binary codec
// size and throughput against JSON lines over the full 8-app corpus),
// written to a third. Together the files record the perf trajectory of
// the solver, the serving path, and the trace codec.
//
// Usage:
//
//	bench [-app App-1] [-rounds 6] [-reps 5] [-out BENCH_solver.json]
//	      [-server-out BENCH_server.json] [-server-jobs 16]
//	      [-store-out BENCH_store.json]
//	      [-obs-out BENCH_obs.json] [-obs-reps 7] [-obs-max-pct 5]
//	      [-incr-out BENCH_incremental.json] [-incr-base 160] [-incr-reps 5]
//	      [-incr-min-speedup 3]
//
// Each -*out flag accepts "" to skip that measurement; -obs-max-pct and
// -incr-min-speedup turn their records into CI gates (non-zero exit on
// breach).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/lp"
	"sherlock/internal/solver"
	"sherlock/internal/window"
)

// result is the file schema. Times are the best-of-reps wall clock for one
// full campaign's worth of solves, in nanoseconds.
type result struct {
	App        string  `json:"app"`
	Rounds     int     `json:"rounds"`
	Reps       int     `json:"reps"`
	ColdNs     int64   `json:"cold_ns"`
	WarmNs     int64   `json:"warm_ns"`
	Speedup    float64 `json:"speedup"`
	ColdIters  int     `json:"cold_iters"`
	WarmIters  int     `json:"warm_iters"`
	WarmRounds int     `json:"warm_rounds"`
}

func main() {
	var (
		appName    = flag.String("app", "App-1", "application to campaign on")
		rounds     = flag.Int("rounds", 6, "campaign rounds")
		reps       = flag.Int("reps", 5, "repetitions (best is reported)")
		out        = flag.String("out", "BENCH_solver.json", "solver benchmark output file (empty = skip)")
		outAlias   = flag.String("o", "", "alias for -out (deprecated)")
		serverOut  = flag.String("server-out", "BENCH_server.json", "server benchmark output file (empty = skip)")
		serverJobs = flag.Int("server-jobs", 16, "cold/hit submissions per server measurement")
		storeOut   = flag.String("store-out", "BENCH_store.json", "trace-store benchmark output file (empty = skip)")
		obsOut     = flag.String("obs-out", "", "tracing-overhead benchmark output file (empty = skip)")
		obsReps    = flag.Int("obs-reps", 7, "campaign repetitions per tracing mode (best is reported)")
		obsMaxPct  = flag.Float64("obs-max-pct", 0, "fail (exit 1) if no-sink tracing overhead exceeds this percentage (0 = record only)")
		incrOut    = flag.String("incr-out", "", "incremental-inference benchmark output file (empty = skip)")
		incrBase   = flag.Int("incr-base", 160, "checkpointed base corpus size in traces")
		incrReps   = flag.Int("incr-reps", 5, "repetitions per incremental point (best is reported)")
		incrMinSpd = flag.Float64("incr-min-speedup", 0, "fail (exit 1) if the +1-trace incremental speedup falls below this (0 = record only)")
	)
	flag.Parse()
	if *outAlias != "" {
		*out = *outAlias
	}

	if *out != "" {
		die(benchSolver(*out, *appName, *rounds, *reps))
	}
	if *serverOut != "" {
		die(benchServer(*serverOut, *appName, *serverJobs))
	}
	if *storeOut != "" {
		die(benchStore(*storeOut, *reps))
	}
	if *obsOut != "" {
		die(benchObs(*obsOut, *appName, *rounds, *obsReps, *obsMaxPct))
	}
	if *incrOut != "" {
		die(benchIncr(*incrOut, *appName, *incrBase, *incrReps, *incrMinSpd))
	}
}

// benchSolver runs the cold-vs-warm solver measurement and writes the
// result file.
func benchSolver(out, appName string, rounds, reps int) error {
	app, err := apps.ByName(appName)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Rounds = rounds
	var snaps []*window.Observations
	cfg.OnRound = func(_ int, obs *window.Observations) {
		snaps = append(snaps, obs.Clone())
	}
	if _, err := core.Infer(context.Background(), app, cfg); err != nil {
		return err
	}
	scfg := cfg.Solver
	scfg.KeepRacyWindows = !cfg.RemoveRacyMP

	res := result{App: appName, Rounds: rounds, Reps: reps}
	for rep := 0; rep < reps; rep++ {
		iters := 0
		t0 := time.Now()
		for _, obs := range snaps {
			sr, err := solver.Solve(obs, scfg)
			if err != nil {
				return err
			}
			iters += sr.Iters
		}
		if d := time.Since(t0); rep == 0 || d.Nanoseconds() < res.ColdNs {
			res.ColdNs = d.Nanoseconds()
		}
		res.ColdIters = iters
	}
	shell := &window.Observations{}
	for rep := 0; rep < reps; rep++ {
		iters, warmRounds := 0, 0
		enc := solver.NewEncoder(scfg)
		var basis *lp.Basis
		t0 := time.Now()
		for _, snap := range snaps {
			*shell = *snap
			sr, bs, err := enc.Solve(shell, basis)
			if err != nil {
				return err
			}
			basis = bs
			iters += sr.Iters
			if sr.WarmStarted {
				warmRounds++
			}
		}
		if d := time.Since(t0); rep == 0 || d.Nanoseconds() < res.WarmNs {
			res.WarmNs = d.Nanoseconds()
		}
		res.WarmIters, res.WarmRounds = iters, warmRounds
	}
	res.Speedup = float64(res.ColdNs) / float64(res.WarmNs)

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: cold %.1fms (%d pivots) vs warm %.1fms (%d pivots, %d/%d rounds warm): %.2fx\n",
		out, float64(res.ColdNs)/1e6, res.ColdIters,
		float64(res.WarmNs)/1e6, res.WarmIters, res.WarmRounds, res.Rounds, res.Speedup)
	return nil
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}
