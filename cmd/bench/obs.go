// Tracing-overhead benchmark: the observability layer's acceptance gate.
// The engine always builds spans unless Config.DisableTracing is set, so
// the cost that matters is "tracing on, no sink attached" (the library
// default) against the DisableTracing baseline. Both modes run identical
// campaigns; the best-of-reps wall clocks bound the scheduler-noise floor,
// and the relative overhead is asserted by CI via -obs-max-pct.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sherlock/internal/apps"
	"sherlock/internal/core"
)

// obsResult is the BENCH_obs.json schema. Times are best-of-reps wall
// clock for one full campaign, in nanoseconds.
type obsResult struct {
	App         string  `json:"app"`
	Rounds      int     `json:"rounds"`
	Reps        int     `json:"reps"`
	BaselineNs  int64   `json:"baseline_ns"`
	TracedNs    int64   `json:"traced_ns"`
	OverheadPct float64 `json:"overhead_pct"`
	MaxPct      float64 `json:"max_pct,omitempty"`
}

// benchObs measures no-sink tracing overhead on full campaigns and fails
// when maxPct > 0 and the measured overhead exceeds it.
func benchObs(out, appName string, rounds, reps int, maxPct float64) error {
	app, err := apps.ByName(appName)
	if err != nil {
		return err
	}
	campaign := func(disableTracing bool) (time.Duration, error) {
		cfg := core.DefaultConfig()
		cfg.Rounds = rounds
		cfg.DisableTracing = disableTracing
		t0 := time.Now()
		_, err := core.Infer(context.Background(), app, cfg)
		return time.Since(t0), err
	}

	// Warm up both paths once so neither measurement pays first-touch costs.
	for _, mode := range []bool{true, false} {
		if _, err := campaign(mode); err != nil {
			return err
		}
	}

	res := obsResult{App: appName, Rounds: rounds, Reps: reps, MaxPct: maxPct}
	// Interleave the modes so slow drift (thermal, scheduling) hits both.
	for rep := 0; rep < reps; rep++ {
		base, err := campaign(true)
		if err != nil {
			return err
		}
		traced, err := campaign(false)
		if err != nil {
			return err
		}
		if rep == 0 || base.Nanoseconds() < res.BaselineNs {
			res.BaselineNs = base.Nanoseconds()
		}
		if rep == 0 || traced.Nanoseconds() < res.TracedNs {
			res.TracedNs = traced.Nanoseconds()
		}
	}
	res.OverheadPct = 100 * (float64(res.TracedNs) - float64(res.BaselineNs)) / float64(res.BaselineNs)

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: baseline %.1fms vs traced(no sink) %.1fms: %+.2f%% overhead\n",
		out, float64(res.BaselineNs)/1e6, float64(res.TracedNs)/1e6, res.OverheadPct)
	if maxPct > 0 && res.OverheadPct > maxPct {
		return fmt.Errorf("tracing overhead %.2f%% exceeds the %.1f%% budget", res.OverheadPct, maxPct)
	}
	return nil
}
