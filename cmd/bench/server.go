// Serving-path benchmark: drive an in-process sherlockd over a real TCP
// socket and measure the submit→done latency of cold campaigns against
// cache-hit resubmissions, plus aggregate throughput of a concurrent cold
// sweep. The numbers land in BENCH_server.json so the serving perf
// trajectory is tracked across commits next to the solver's.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"sherlock/internal/server"
)

// serverResult is the BENCH_server.json schema. Latencies are per-job
// medians in nanoseconds; throughput is jobs per second over the whole
// cold sweep.
type serverResult struct {
	App            string  `json:"app"`
	Jobs           int     `json:"jobs"`
	Workers        int     `json:"workers"`
	ColdMedianNs   int64   `json:"cold_median_ns"`
	HitMedianNs    int64   `json:"hit_median_ns"`
	Speedup        float64 `json:"speedup"`
	ColdThroughput float64 `json:"cold_jobs_per_sec"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
}

func benchServer(outFile, appName string, jobs int) error {
	cfg := server.DefaultConfig()
	cfg.QueueSize = 2 * jobs
	cfg.CacheCapacity = 4 * jobs
	cfg.Inference.Rounds = 1
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Cold sweep: distinct seeds => distinct content addresses => every
	// job runs a real campaign.
	coldLat := make([]time.Duration, jobs)
	sweep0 := time.Now()
	for i := 0; i < jobs; i++ {
		t0 := time.Now()
		if _, err := submitWait(base, appName, int64(1+i)); err != nil {
			return fmt.Errorf("cold job %d: %w", i, err)
		}
		coldLat[i] = time.Since(t0)
	}
	sweepWall := time.Since(sweep0)

	// Hit sweep: resubmit the first seed; every submission must be
	// answered from the cache.
	hitLat := make([]time.Duration, jobs)
	for i := 0; i < jobs; i++ {
		t0 := time.Now()
		v, err := submitWait(base, appName, 1)
		if err != nil {
			return fmt.Errorf("hit job %d: %w", i, err)
		}
		if !v.Cached {
			return fmt.Errorf("hit job %d: expected a cache hit", i)
		}
		hitLat[i] = time.Since(t0)
	}

	hits, misses, _, _ := srv.Cache().Stats()
	res := serverResult{
		App:            appName,
		Jobs:           jobs,
		Workers:        cfg.Workers,
		ColdMedianNs:   median(coldLat).Nanoseconds(),
		HitMedianNs:    median(hitLat).Nanoseconds(),
		ColdThroughput: float64(jobs) / sweepWall.Seconds(),
		CacheHits:      hits,
		CacheMisses:    misses,
	}
	res.Speedup = float64(res.ColdMedianNs) / float64(res.HitMedianNs)

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outFile, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: cold median %.2fms vs cache-hit median %.3fms: %.0fx; %.1f cold jobs/s\n",
		outFile, float64(res.ColdMedianNs)/1e6, float64(res.HitMedianNs)/1e6,
		res.Speedup, res.ColdThroughput)
	return nil
}

// clientJob mirrors the daemon's job JSON.
type clientJob struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
}

// submitWait posts one job and polls it to a terminal state.
func submitWait(base, app string, seed int64) (*clientJob, error) {
	buf, _ := json.Marshal(map[string]any{"app": app, "seed": seed})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var v clientJob
	if err := json.Unmarshal(body, &v); err != nil {
		return nil, err
	}
	for v.Status != "done" {
		if v.Status == "failed" || v.Status == "canceled" {
			return nil, fmt.Errorf("job %s ended %s: %s", v.ID, v.Status, v.Error)
		}
		sr, err := http.Get(base + "/v1/jobs/" + v.ID)
		if err != nil {
			return nil, err
		}
		sb, _ := io.ReadAll(sr.Body)
		sr.Body.Close()
		if err := json.Unmarshal(sb, &v); err != nil {
			return nil, err
		}
	}
	return &v, nil
}

func median(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	for i := 1; i < len(sorted); i++ { // insertion sort; n is small
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return sorted[len(sorted)/2]
}
