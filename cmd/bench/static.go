// Static & hybrid inference benchmark: what does run-free analysis buy?
// For every registered application it records (a) static-only quality —
// precision/recall of core.InferStatic against ground truth, plus a
// bit-identical reproducibility check across two independent analyses —
// and (b) campaign economics: rounds-to-converge for the pure-dynamic
// campaign, the hybrid campaign (static priors seeding round 0), and a
// refine campaign warm-started from the dynamic campaign's posterior,
// with the equal-final-set invariant checked for both. Saved runs are
// (dynamic − seeded) convergence rounds × the app's per-round execution
// count. The numbers land in BENCH_static.json; -static-gate turns the
// two hard invariants (hybrid finals identical, hybrid rounds never worse)
// into a CI gate.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"sherlock/internal/apps"
	"sherlock/internal/core"
)

// staticAppResult is one application's row in BENCH_static.json.
type staticAppResult struct {
	App string `json:"app"`

	// Static-only quality vs ground truth (no executions at all).
	StaticInferred  int     `json:"static_inferred"`
	StaticCorrect   int     `json:"static_correct"`
	StaticPrecision float64 `json:"static_precision"`
	StaticRecall    float64 `json:"static_recall"`
	// BitIdentical: two independent static analyses serialize identically.
	BitIdentical bool   `json:"bit_identical"`
	ProgramHash  string `json:"program_hash"`

	// Campaign economics. *Rounds are rounds-to-converge (first round
	// already holding the final inferred set); RunsPerRound is the app's
	// execution count per round.
	DynamicRounds int  `json:"dynamic_rounds"`
	HybridRounds  int  `json:"hybrid_rounds"`
	RefineRounds  int  `json:"refine_rounds"`
	RunsPerRound  int  `json:"runs_per_round"`
	EqualFinal    bool `json:"equal_final"`        // hybrid final set == dynamic final set
	RefineEqual   bool `json:"refine_equal_final"` // refine final set == dynamic final set
	// RunsSaved* count executions a convergence-stopping campaign would
	// skip relative to pure dynamic.
	RunsSavedHybrid int `json:"runs_saved_hybrid"`
	RunsSavedRefine int `json:"runs_saved_refine"`
}

// staticResult is the BENCH_static.json schema.
type staticResult struct {
	Rounds int               `json:"rounds"`
	Apps   []staticAppResult `json:"apps"`
}

// benchStatic runs the sweep and writes the result file. With gate set,
// any app whose hybrid campaign diverges from dynamic (different final
// set) or converges slower is an error (exit 1 in main).
func benchStatic(outFile string, rounds int, gate bool) error {
	ctx := context.Background()
	res := staticResult{Rounds: rounds}
	for _, appName := range apps.Names() {
		ar, err := benchStaticApp(ctx, appName, rounds)
		if err != nil {
			return fmt.Errorf("%s: %w", appName, err)
		}
		res.Apps = append(res.Apps, ar)
	}

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outFile, buf, 0o644); err != nil {
		return err
	}
	for _, ar := range res.Apps {
		fmt.Printf("%s: %s static %.0f%%P/%.0f%%R (repro=%t); rounds dyn %d, hybrid %d (equal=%t, saves %d runs), refine %d (equal=%t, saves %d runs)\n",
			outFile, ar.App, 100*ar.StaticPrecision, 100*ar.StaticRecall, ar.BitIdentical,
			ar.DynamicRounds, ar.HybridRounds, ar.EqualFinal, ar.RunsSavedHybrid,
			ar.RefineRounds, ar.RefineEqual, ar.RunsSavedRefine)
	}
	if gate {
		for _, ar := range res.Apps {
			if !ar.BitIdentical {
				return fmt.Errorf("%s: static analysis not bit-identical across runs", ar.App)
			}
			if !ar.EqualFinal {
				return fmt.Errorf("%s: hybrid final inferred set diverges from pure dynamic", ar.App)
			}
			if ar.HybridRounds > ar.DynamicRounds {
				return fmt.Errorf("%s: hybrid needs %d rounds to converge vs dynamic %d",
					ar.App, ar.HybridRounds, ar.DynamicRounds)
			}
		}
	}
	return nil
}

// benchStaticApp measures one application.
func benchStaticApp(ctx context.Context, appName string, rounds int) (staticAppResult, error) {
	ar := staticAppResult{App: appName}
	app, err := apps.ByName(appName)
	if err != nil {
		return ar, err
	}
	cfg := core.DefaultConfig()
	cfg.Rounds = rounds

	// Static-only quality + reproducibility.
	sres, an, err := core.InferStatic(ctx, app, cfg)
	if err != nil {
		return ar, err
	}
	sres2, _, err := core.InferStatic(ctx, app, cfg)
	if err != nil {
		return ar, err
	}
	b1, _ := json.Marshal(sres.Inferred)
	b2, _ := json.Marshal(sres2.Inferred)
	ar.BitIdentical = string(b1) == string(b2)
	ar.ProgramHash = an.ProgramHash
	score := core.ScoreResult(app, sres)
	ar.StaticInferred = score.Total()
	ar.StaticCorrect = len(score.Correct)
	ar.StaticPrecision = score.Precision()
	if denom := len(score.Correct) + len(score.Missed); denom > 0 {
		ar.StaticRecall = float64(len(score.Correct)) / float64(denom)
	}
	ar.RunsPerRound = len(app.Tests)

	// Pure-dynamic baseline.
	dyn, err := core.Infer(ctx, app, cfg)
	if err != nil {
		return ar, err
	}
	ar.DynamicRounds = dyn.RoundsToConverge()
	dynFinal, _ := json.Marshal(dyn.Inferred)

	// Hybrid: static priors seed round 0.
	hcfg := cfg
	if hcfg.StaticPriors, err = core.StaticPriors(ctx, app, cfg); err != nil {
		return ar, err
	}
	hyb, err := core.Infer(ctx, app, hcfg)
	if err != nil {
		return ar, err
	}
	ar.HybridRounds = hyb.RoundsToConverge()
	hybFinal, _ := json.Marshal(hyb.Inferred)
	ar.EqualFinal = string(hybFinal) == string(dynFinal)
	ar.RunsSavedHybrid = (ar.DynamicRounds - ar.HybridRounds) * ar.RunsPerRound

	// Refine: warm-start from the dynamic campaign's own posterior, the
	// steady state of a checkpointed campaign series.
	rcfg := cfg
	post := core.PosteriorFromResult(dyn, cfg)
	if rcfg.StaticPriors, err = post.Priors(cfg); err != nil {
		return ar, err
	}
	ref, err := core.Infer(ctx, app, rcfg)
	if err != nil {
		return ar, err
	}
	ar.RefineRounds = ref.RoundsToConverge()
	refFinal, _ := json.Marshal(ref.Inferred)
	ar.RefineEqual = string(refFinal) == string(dynFinal)
	ar.RunsSavedRefine = (ar.DynamicRounds - ar.RefineRounds) * ar.RunsPerRound
	return ar, nil
}
