// Trace-store benchmark: encode the full 8-app benchmark corpus (every
// test of every application, one run each) in both serializations and
// measure size and codec throughput. The numbers land in BENCH_store.json
// so the binary format's size win (ISSUE acceptance: >= 4x smaller than
// JSON lines) and decode speed are tracked across commits.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"sherlock/internal/apps"
	"sherlock/internal/sched"
	"sherlock/internal/store"
	"sherlock/internal/trace"
)

// storeResult is the BENCH_store.json schema. Codec times are best-of-reps
// wall clock for one pass over the whole corpus, in nanoseconds.
type storeResult struct {
	Traces        int     `json:"traces"`
	Events        int     `json:"events"`
	JSONBytes     int     `json:"json_bytes"`
	BinaryBytes   int     `json:"binary_bytes"`
	SizeRatio     float64 `json:"size_ratio"`      // json_bytes / binary_bytes
	BytesPerEvent float64 `json:"bytes_per_event"` // binary
	EncodeNs      int64   `json:"encode_ns"`
	DecodeNs      int64   `json:"decode_ns"`
	JSONDecodeNs  int64   `json:"json_decode_ns"`
	EncodeMBs     float64 `json:"encode_mb_per_sec"` // binary bytes produced / s
	DecodeMBs     float64 `json:"decode_mb_per_sec"` // binary bytes consumed / s
	DecodeSpeedup float64 `json:"decode_speedup"`    // json_decode_ns / decode_ns
}

// benchStore captures the whole benchmark corpus once, then times the
// binary codec against the JSON-lines one over identical traces.
func benchStore(outFile string, reps int) error {
	var traces []*trace.Trace
	for _, app := range apps.All() {
		for i, test := range app.Tests {
			run, err := sched.Run(app, test, sched.Options{Seed: int64(i) + 1})
			if err != nil {
				return err
			}
			traces = append(traces, run.Trace)
		}
	}

	res := storeResult{Traces: len(traces)}
	var jsonDocs, binDocs [][]byte
	for _, tr := range traces {
		res.Events += len(tr.Events)
		var jb bytes.Buffer
		if err := tr.Write(&jb); err != nil {
			return err
		}
		jsonDocs = append(jsonDocs, jb.Bytes())
		res.JSONBytes += jb.Len()
		bb, err := store.EncodeTrace(tr)
		if err != nil {
			return err
		}
		binDocs = append(binDocs, bb)
		res.BinaryBytes += len(bb)
	}
	res.SizeRatio = float64(res.JSONBytes) / float64(res.BinaryBytes)
	res.BytesPerEvent = float64(res.BinaryBytes) / float64(res.Events)

	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		for _, tr := range traces {
			if _, err := store.EncodeTrace(tr); err != nil {
				return err
			}
		}
		if d := time.Since(t0); rep == 0 || d.Nanoseconds() < res.EncodeNs {
			res.EncodeNs = d.Nanoseconds()
		}

		t0 = time.Now()
		for _, bb := range binDocs {
			if _, err := store.DecodeTrace(bb); err != nil {
				return err
			}
		}
		if d := time.Since(t0); rep == 0 || d.Nanoseconds() < res.DecodeNs {
			res.DecodeNs = d.Nanoseconds()
		}

		t0 = time.Now()
		for _, jb := range jsonDocs {
			if _, err := trace.Read(bytes.NewReader(jb)); err != nil {
				return err
			}
		}
		if d := time.Since(t0); rep == 0 || d.Nanoseconds() < res.JSONDecodeNs {
			res.JSONDecodeNs = d.Nanoseconds()
		}
	}
	res.EncodeMBs = float64(res.BinaryBytes) / 1e6 / (float64(res.EncodeNs) / 1e9)
	res.DecodeMBs = float64(res.BinaryBytes) / 1e6 / (float64(res.DecodeNs) / 1e9)
	res.DecodeSpeedup = float64(res.JSONDecodeNs) / float64(res.DecodeNs)

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(outFile, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: %d traces, %d events: binary %d B vs JSON %d B (%.2fx, %.1f B/event); decode %.1f MB/s, %.2fx faster than JSON\n",
		outFile, res.Traces, res.Events, res.BinaryBytes, res.JSONBytes,
		res.SizeRatio, res.BytesPerEvent, res.DecodeMBs, res.DecodeSpeedup)
	return nil
}
