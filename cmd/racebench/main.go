// Command racebench reproduces Table 3: it runs the FastTrack race
// detector over every benchmark application twice — once with the manually
// annotated synchronization list (Manual_dr) and once with SherLock's
// inferred operations (SherLock_dr) — and prints true/false first-reported
// race counts, plus the Table 4 false-race cause breakdown.
//
// Usage:
//
//	racebench [-app App-3] [-runs 3]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/exper"
	"sherlock/internal/race"
	"sherlock/internal/report"
)

func main() {
	var (
		appName = flag.String("app", "", "restrict to one application (default: all)")
		runs    = flag.Int("runs", 3, "detection runs per test")
	)
	flag.Parse()

	// ^C cancels between test executions.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *appName != "" {
		app, err := apps.ByName(*appName)
		die(err)
		res, err := core.Infer(ctx, app, core.DefaultConfig())
		die(err)
		ccfg := race.DefaultCompareConfig()
		ccfg.Runs = *runs
		cmp, err := race.Compare(ctx, app, res.SyncKeys(), ccfg)
		die(err)
		report.Table3(os.Stdout, []*race.Comparison{cmp})
		return
	}

	cmps, err := exper.Table3(ctx)
	die(err)
	report.Table3(os.Stdout, cmps)

	fmt.Println()
	_, runsAll, err := exper.Table2(ctx)
	die(err)
	report.Table4(os.Stdout, exper.Table4(runsAll, cmps))
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "racebench:", err)
		os.Exit(1)
	}
}
