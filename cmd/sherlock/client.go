// sherlockd client mode: submit jobs to a running daemon, poll status,
// and fetch content-addressed results, so a fleet of CLI users shares one
// warm cache instead of each paying full trace capture + inference.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// jobView mirrors the server's job JSON (internal/server.jobView).
type jobView struct {
	ID        string `json:"id"`
	Key       string `json:"key"`
	Status    string `json:"status"`
	Cached    bool   `json:"cached"`
	Error     string `json:"error,omitempty"`
	ResultURL string `json:"result_url,omitempty"`
}

// submitSpec mirrors the server's JobSpec.
type submitSpec struct {
	App       string   `json:"app,omitempty"`
	TraceKeys []string `json:"trace_keys,omitempty"`
	Rounds    int      `json:"rounds,omitempty"`
	Lambda    float64  `json:"lambda,omitempty"`
	Near      int64    `json:"near,omitempty"`
	Seed      int64    `json:"seed,omitempty"`
}

// submitJob POSTs an application job and optionally polls it to
// completion, printing the id, content key, and terminal status. With
// wait set it also fetches and pretty-prints the result summary.
func submitJob(ctx context.Context, base, app string, rounds int, lambda float64, near, seed int64, wait bool) error {
	spec := submitSpec{App: app, Rounds: rounds, Lambda: lambda, Near: near, Seed: seed}
	return postJobSpec(ctx, base, spec, wait)
}

// postJobSpec is the shared submit/poll/print path behind -submit and
// -submit-keys.
func postJobSpec(ctx context.Context, base string, spec submitSpec, wait bool) error {
	buf, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		return fmt.Errorf("submit: bad response: %w", err)
	}
	fmt.Printf("job %s  key %s  status %s  cached %v\n", v.ID, v.Key, v.Status, v.Cached)
	if !wait {
		return nil
	}
	final, err := pollJob(ctx, base, v.ID)
	if err != nil {
		return err
	}
	if final.Status != "done" {
		return fmt.Errorf("job %s ended %s: %s", final.ID, final.Status, final.Error)
	}
	return printServerResult(ctx, base, final.Key)
}

// pollJob polls GET /v1/jobs/{id} until the job is terminal.
func pollJob(ctx context.Context, base, id string) (*jobView, error) {
	for {
		v, err := jobStatus(ctx, base, id)
		if err != nil {
			return nil, err
		}
		switch v.Status {
		case "done", "failed", "canceled":
			return v, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func jobStatus(ctx context.Context, base, id string) (*jobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s: %s: %s", id, resp.Status, strings.TrimSpace(string(body)))
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// printJobStatus is the -status entrypoint.
func printJobStatus(ctx context.Context, base, id string) error {
	v, err := jobStatus(ctx, base, id)
	if err != nil {
		return err
	}
	fmt.Printf("job %s  key %s  status %s  cached %v\n", v.ID, v.Key, v.Status, v.Cached)
	if v.Error != "" {
		fmt.Printf("error: %s\n", v.Error)
	}
	return nil
}

// printServerResult fetches GET /v1/results/{key} and prints the inferred
// operations (the -result entrypoint).
func printServerResult(ctx context.Context, base, key string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/results/"+key, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("result %s: %s: %s", key, resp.Status, strings.TrimSpace(string(body)))
	}
	var env struct {
		Key    string `json:"key"`
		App    string `json:"app"`
		Result struct {
			Inferred []struct {
				Key  string  `json:"Key"`
				Role int     `json:"Role"`
				Prob float64 `json:"Prob"`
			} `json:"Inferred"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		return fmt.Errorf("result %s: bad body: %w", key, err)
	}
	fmt.Printf("%s: %d inferred operations (key %s)\n", env.App, len(env.Result.Inferred), env.Key)
	for _, s := range env.Result.Inferred {
		role := "acquire"
		if s.Role != 0 {
			role = "release"
		}
		fmt.Printf("  %-8s %-60s p=%.2f\n", role, s.Key, s.Prob)
	}
	return nil
}
