// sherlockd client mode: submit jobs to a running daemon, poll status,
// and fetch content-addressed results, so a fleet of CLI users shares one
// warm cache instead of each paying full trace capture + inference.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// jobView mirrors the server's job JSON (internal/server.jobView).
type jobView struct {
	ID        string `json:"id"`
	Key       string `json:"key"`
	Status    string `json:"status"`
	Cached    bool   `json:"cached"`
	Version   uint64 `json:"version,omitempty"`
	WatchApp  string `json:"watch_app,omitempty"`
	Error     string `json:"error,omitempty"`
	ResultURL string `json:"result_url,omitempty"`
	WatchURL  string `json:"watch_url,omitempty"`
}

// submitSpec mirrors the server's JobSpec.
type submitSpec struct {
	App       string   `json:"app,omitempty"`
	TraceKeys []string `json:"trace_keys,omitempty"`
	WatchApp  string   `json:"watch_app,omitempty"`
	StaticApp string   `json:"static_app,omitempty"`
	Hybrid    bool     `json:"hybrid,omitempty"`
	Rounds    int      `json:"rounds,omitempty"`
	Lambda    float64  `json:"lambda,omitempty"`
	Near      int64    `json:"near,omitempty"`
	Seed      int64    `json:"seed,omitempty"`
}

// apiError renders a failed response: sherlockd v1 errors arrive as
// {"error":{"code","message"}}; anything else is shown raw.
func apiError(op, status string, body []byte) error {
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err == nil && env.Error.Code != "" {
		return fmt.Errorf("%s: %s: %s (%s)", op, status, env.Error.Message, env.Error.Code)
	}
	return fmt.Errorf("%s: %s: %s", op, status, strings.TrimSpace(string(body)))
}

// submitJob POSTs an application job and optionally polls it to
// completion, printing the id, content key, and terminal status. With
// wait set it also fetches and pretty-prints the result summary.
func submitJob(ctx context.Context, base, app string, hybrid bool, rounds int, lambda float64, near, seed int64, wait bool) error {
	spec := submitSpec{App: app, Hybrid: hybrid, Rounds: rounds, Lambda: lambda, Near: near, Seed: seed}
	return postJobSpec(ctx, base, spec, wait)
}

// submitStaticJob POSTs a run-free static inference job. The result is
// content-addressed by program hash, so across a cluster it is computed
// at most once per program/config revision.
func submitStaticJob(ctx context.Context, base, app string, lambda float64, near int64, wait bool) error {
	spec := submitSpec{StaticApp: app, Lambda: lambda, Near: near}
	return postJobSpec(ctx, base, spec, wait)
}

// submitWatchJob creates a streaming watch job; with wait set it follows
// the published versions like `sherlock watch`.
func submitWatchJob(ctx context.Context, base, app string, rounds int, lambda float64, near, seed int64, wait bool) error {
	spec := submitSpec{WatchApp: app, Rounds: rounds, Lambda: lambda, Near: near, Seed: seed}
	v, err := postSpec(ctx, base, spec)
	if err != nil {
		return err
	}
	fmt.Printf("job %s  status %s  watching app %s\n", v.ID, v.Status, app)
	if !wait {
		return nil
	}
	return watchJob(ctx, base, v.ID, 0)
}

// createWatchJob creates a watch job and returns its id (the `sherlock
// watch -app X` entrypoint).
func createWatchJob(ctx context.Context, base, app string) (string, error) {
	v, err := postSpec(ctx, base, submitSpec{WatchApp: app})
	if err != nil {
		return "", err
	}
	fmt.Printf("job %s  status %s  watching app %s\n", v.ID, v.Status, app)
	return v.ID, nil
}

// watchJob follows a job's published versions via the long-poll endpoint,
// printing a line (and the result summary) per version until the job
// terminates or ctx is canceled.
func watchJob(ctx context.Context, base, id string, after uint64) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		url := fmt.Sprintf("%s/v1/jobs/%s/watch?after=%d&timeout=30", base, id, after)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return apiError("watch "+id, resp.Status, body)
		}
		var v jobView
		if err := json.Unmarshal(body, &v); err != nil {
			return fmt.Errorf("watch %s: bad response: %w", id, err)
		}
		if v.Version > after {
			after = v.Version
			fmt.Printf("job %s  version %d  key %s\n", v.ID, v.Version, v.Key)
			if err := printServerResult(ctx, base, v.Key); err != nil {
				return err
			}
		}
		switch v.Status {
		case "done", "failed", "canceled":
			fmt.Printf("job %s  status %s\n", v.ID, v.Status)
			if v.Status == "failed" {
				return fmt.Errorf("job %s failed: %s", v.ID, v.Error)
			}
			return nil
		}
	}
}

// listJobs prints GET /v1/jobs, following pagination cursors, optionally
// filtered by status.
func listJobs(ctx context.Context, base, status string) error {
	after := ""
	n := 0
	for {
		url := base + "/v1/jobs?limit=100"
		if status != "" {
			url += "&status=" + status
		}
		if after != "" {
			url += "&after=" + after
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return apiError("list jobs", resp.Status, body)
		}
		var lv struct {
			Jobs      []jobView `json:"jobs"`
			NextAfter string    `json:"next_after"`
		}
		if err := json.Unmarshal(body, &lv); err != nil {
			return fmt.Errorf("list jobs: bad response: %w", err)
		}
		for _, v := range lv.Jobs {
			line := fmt.Sprintf("%s  %-9s", v.ID, v.Status)
			if v.WatchApp != "" {
				line += fmt.Sprintf("  watch %s v%d", v.WatchApp, v.Version)
			}
			if v.Key != "" {
				line += "  key " + v.Key
			}
			fmt.Println(line)
			n++
		}
		if lv.NextAfter == "" {
			break
		}
		after = lv.NextAfter
	}
	fmt.Printf("%d jobs\n", n)
	return nil
}

// postSpec POSTs a job spec and decodes the created job view.
func postSpec(ctx context.Context, base string, spec submitSpec) (*jobView, error) {
	buf, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errConnect, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, apiError("submit", resp.Status, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		return nil, fmt.Errorf("submit: bad response: %w", err)
	}
	return &v, nil
}

// postJobSpec is the shared submit/poll/print path behind -submit and
// -submit-keys. Against a cluster it submits straight to the content key's
// ring owner (route.go); if that owner dies between the info fetch and the
// POST, it falls back to the URL the user gave — the server-side proxy
// layer makes any node correct, routing only saves the extra hop.
func postJobSpec(ctx context.Context, base string, spec submitSpec, wait bool) error {
	target, routed := routeSubmit(ctx, base, spec)
	if routed && target != base {
		fmt.Printf("routing to key owner %s\n", target)
	}
	v, err := postSpec(ctx, target, spec)
	if err != nil && routed && errors.Is(err, errConnect) {
		fmt.Printf("owner unreachable, falling back to %s\n", base)
		target = base
		v, err = postSpec(ctx, base, spec)
	}
	if err != nil {
		return err
	}
	fmt.Printf("job %s  key %s  status %s  cached %v\n", v.ID, v.Key, v.Status, v.Cached)
	if !wait {
		return nil
	}
	final, err := pollJob(ctx, target, v.ID)
	if err != nil {
		return err
	}
	if final.Status != "done" {
		return fmt.Errorf("job %s ended %s: %s", final.ID, final.Status, final.Error)
	}
	return printServerResult(ctx, target, final.Key)
}

// pollJob polls GET /v1/jobs/{id} until the job is terminal.
func pollJob(ctx context.Context, base, id string) (*jobView, error) {
	for {
		v, err := jobStatus(ctx, base, id)
		if err != nil {
			return nil, err
		}
		switch v.Status {
		case "done", "failed", "canceled":
			return v, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func jobStatus(ctx context.Context, base, id string) (*jobView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError("status "+id, resp.Status, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

// printJobStatus is the -status entrypoint.
func printJobStatus(ctx context.Context, base, id string) error {
	v, err := jobStatus(ctx, base, id)
	if err != nil {
		return err
	}
	fmt.Printf("job %s  key %s  status %s  cached %v\n", v.ID, v.Key, v.Status, v.Cached)
	if v.Error != "" {
		fmt.Printf("error: %s\n", v.Error)
	}
	return nil
}

// printServerResult fetches GET /v1/results/{key} and prints the inferred
// operations (the -result entrypoint).
func printServerResult(ctx context.Context, base, key string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/results/"+key, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError("result "+key, resp.Status, body)
	}
	return printResultEnvelope(body)
}

// printResultEnvelope renders a served result body (campaign or static
// report — the latter carries a program hash).
func printResultEnvelope(body []byte) error {
	var env struct {
		Key         string `json:"key"`
		App         string `json:"app"`
		ProgramHash string `json:"program_hash"`
		Result      struct {
			Inferred []struct {
				Key  string  `json:"Key"`
				Role int     `json:"Role"`
				Prob float64 `json:"Prob"`
			} `json:"Inferred"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		return fmt.Errorf("result: bad body: %w", err)
	}
	fmt.Printf("%s: %d inferred operations (key %s)\n", env.App, len(env.Result.Inferred), env.Key)
	if env.ProgramHash != "" {
		fmt.Printf("static report, program hash %s\n", env.ProgramHash)
	}
	for _, s := range env.Result.Inferred {
		role := "acquire"
		if s.Role != 0 {
			role = "release"
		}
		fmt.Printf("  %-8s %-60s p=%.2f\n", role, s.Key, s.Prob)
	}
	return nil
}

// fetchStaticReport GETs /v1/apps/{id}/static and prints the report (the
// `sherlock static -server` entrypoint).
func fetchStaticReport(ctx context.Context, base, app string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/apps/"+app+"/static", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError("static "+app, resp.Status, body)
	}
	return printResultEnvelope(body)
}

// printClusterInfo renders GET /v1/cluster/info: membership, liveness,
// and placement parameters of the daemon's cluster.
func printClusterInfo(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/cluster/info", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("cluster: %s is not running in cluster mode", base)
	}
	if resp.StatusCode != http.StatusOK {
		return apiError("cluster", resp.Status, body)
	}
	var info struct {
		Node     string `json:"node"`
		Replicas int    `json:"replicas"`
		Peers    []struct {
			ID   string `json:"id"`
			URL  string `json:"url"`
			Self bool   `json:"self"`
			Up   bool   `json:"up"`
		} `json:"peers"`
	}
	if err := json.Unmarshal(body, &info); err != nil {
		return fmt.Errorf("cluster: bad body: %w", err)
	}
	fmt.Printf("node %s, %d members, %d replicas per key\n", info.Node, len(info.Peers), info.Replicas)
	for _, p := range info.Peers {
		state := "up"
		if !p.Up {
			state = "DOWN"
		}
		tag := ""
		if p.Self {
			tag = "  (this node)"
		}
		fmt.Printf("  %-12s %-28s %s%s\n", p.ID, p.URL, state, tag)
	}
	return nil
}
