// Subcommand interface for the sherlock CLI. Each verb owns its flag set:
//
//	sherlock capture -corpus DIR [-app App-4] [-seed 1]
//	sherlock infer   [-app App-4 | -corpus DIR | -traces DIR | -all | -list]
//	                 [-hybrid] [-refine -corpus DIR]
//	sherlock static  [-app App-4 | -all] [-server URL]
//	sherlock upload  -server URL FILE...
//	sherlock submit  -server URL [-app X [-hybrid] | -keys k1,k2 |
//	                 -watch-app X | -static-app X] [-wait]
//	sherlock watch   -server URL [-job job-000001 | -app X]
//	sherlock status  -server URL [JOB-ID | -result KEY | -list [-filter done]]
//
// The pre-subcommand flat flags (sherlock -app App-4, sherlock -server ...
// -submit ...) still work as deprecated aliases; main falls back to them
// when the first argument is a flag.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/exper"
	"sherlock/internal/report"
)

// runCommand dispatches one subcommand; returns false if the verb is
// unknown (the caller falls back to legacy flag parsing).
func runCommand(ctx context.Context, verb string, args []string) bool {
	switch verb {
	case "capture":
		cmdCapture(ctx, args)
	case "infer":
		cmdInfer(ctx, args)
	case "static":
		cmdStatic(ctx, args)
	case "upload":
		cmdUpload(ctx, args)
	case "submit":
		cmdSubmit(ctx, args)
	case "watch":
		cmdWatch(ctx, args)
	case "status":
		cmdStatus(ctx, args)
	case "cluster":
		cmdCluster(ctx, args)
	case "help", "-h", "-help", "--help":
		usage(os.Stdout)
	default:
		return false
	}
	return true
}

func usage(w *os.File) {
	fmt.Fprint(w, `sherlock — synchronization-operation inference

Application names: the eight built-ins ("App-1".."App-8") or a
procedurally generated app ("gen:<seed>[,profile=mixed|classic|go|racy]
[,size=N]") — same seed, same program, everywhere a name is accepted.

Local:
  sherlock capture -corpus DIR [-app App-4] [-seed 1]
      run the benchmark tests and ingest their traces into a corpus
  sherlock infer -app App-4 [-rounds 3] [-lambda 0.2] [-near 1000000] [-v]
      full feedback campaign on one application
  sherlock infer -app gen:42 [-dist zipf|bursty]
      campaign on a generated app, optionally under a heavy-tailed or
      bursty scheduler step distribution
  sherlock infer -corpus DIR [-app App-4]
      offline inference over a captured corpus
  sherlock infer -traces DIR
      offline inference over JSONL trace files
  sherlock infer -all | -list
      Table 2 over every application / the application inventory
  sherlock infer -app App-4 -hybrid
      hybrid campaign: static priors seed round 0, evidence takes over
  sherlock infer -app App-4 -refine -corpus DIR
      refine campaign: warm-start from (and persist) the posterior
      checkpoint stored in the corpus
  sherlock static -app App-4 [-v]
      run-free static inference on one application, scored vs truth
  sherlock static -all
      static-only precision/recall sweep over everything the program
      registry exposes (built-ins + generator samples)

Against a sherlockd daemon:
  sherlock upload -server URL FILE...
      upload traces (binary or JSONL) into the daemon's corpus
  sherlock submit -server URL -app App-4 [-wait]
  sherlock submit -server URL -keys KEY1,KEY2 [-wait]
      one-shot inference jobs (campaign / corpus offline solve)
  sherlock submit -server URL -app App-4 -hybrid [-wait]
      hybrid campaign job (static priors seed round 0)
  sherlock submit -server URL -static-app App-4 [-wait]
      run-free static inference job, cached by program hash
  sherlock static -server URL -app App-4
      fetch (computing if needed) the daemon's static report
  sherlock submit -server URL -watch-app App-4
      streaming job: binds to the corpus prefix, re-solves per upload
  sherlock watch -server URL -job JOB-ID
  sherlock watch -server URL -app App-4
      follow a job's published versions (creates the watch job with -app)
  sherlock status -server URL JOB-ID
  sherlock status -server URL -result KEY
  sherlock status -server URL -list [-filter done]
      job status, stored results, and the job listing
  sherlock cluster -server URL
      cluster membership and peer liveness as the daemon sees it

The pre-subcommand flat flags (sherlock -app ..., sherlock -server ...
-submit ...) remain available but are deprecated.
`)
}

func cmdCapture(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("capture", flag.ExitOnError)
	corpus := fs.String("corpus", "", "corpus directory (required)")
	appName := fs.String("app", "", "capture only this application (default all)")
	seed := fs.Int64("seed", 1, "base scheduler seed")
	fs.Parse(args)
	if *corpus == "" {
		die(fmt.Errorf("capture: -corpus is required"))
	}
	die(captureToCorpus(ctx, *appName, *corpus, *seed))
}

func cmdInfer(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("infer", flag.ExitOnError)
	appName := fs.String("app", "", "application id (App-1..App-8 or gen:<seed>[,profile=...][,size=...]); with -corpus, a filter")
	corpus := fs.String("corpus", "", "offline: infer from this trace corpus")
	tracesDir := fs.String("traces", "", "offline: infer from the JSONL traces in this directory")
	all := fs.Bool("all", false, "run every application and print Table 2")
	list := fs.Bool("list", false, "print the application inventory (Table 1)")
	rounds := fs.Int("rounds", 3, "rounds per test input")
	lambda := fs.Float64("lambda", 0.2, "Mostly-Protected trade-off knob")
	near := fs.Int64("near", 1_000_000, "conflict window in virtual ns")
	seed := fs.Int64("seed", 1, "base scheduler seed")
	dist := fs.String("dist", "", "scheduler step distribution: uniform (default), zipf, or bursty")
	parallel := fs.Int("p", 0, "worker pool size per round (0 = GOMAXPROCS)")
	verbose := fs.Bool("v", false, "print per-round snapshots")
	traceOut := fs.String("trace-out", "", "write the campaign's span event log as JSON lines to this file")
	hybrid := fs.Bool("hybrid", false, "with -app: seed round 0 with static priors")
	refine := fs.Bool("refine", false, "with -app and -corpus: warm-start from (and persist) the corpus posterior checkpoint")
	fs.Parse(args)

	switch {
	case *list:
		report.Table1(os.Stdout)
	case *all:
		rows, runs, err := exper.Table2(ctx)
		die(err)
		report.Table2(os.Stdout, rows, exper.UniqueCorrect(runs))
	case *refine:
		// Before the plain -corpus case: with -refine, -corpus names the
		// checkpoint store for the campaign, not an offline trace source.
		if *appName == "" || *corpus == "" {
			die(fmt.Errorf("infer: -refine requires both -app and -corpus"))
		}
		app, err := apps.ByName(*appName)
		die(err)
		cfg := campaignConfig(*rounds, *lambda, *near, *seed, *parallel, *dist)
		die(refineCampaign(ctx, app, *corpus, cfg, *verbose))
	case *corpus != "":
		observer, closeLog, err := traceObserver(*traceOut)
		die(err)
		die(firstErr(analyzeCorpus(ctx, *corpus, *appName, *lambda, *near, observer), closeLog()))
	case *tracesDir != "":
		observer, closeLog, err := traceObserver(*traceOut)
		die(err)
		die(firstErr(analyzeTraces(ctx, *tracesDir, *lambda, *near, observer), closeLog()))
	case *appName != "":
		app, err := apps.ByName(*appName)
		die(err)
		cfg := campaignConfig(*rounds, *lambda, *near, *seed, *parallel, *dist)
		observer, closeLog, err := traceObserver(*traceOut)
		die(err)
		cfg.Observer = observer
		if *hybrid {
			die(firstErr(hybridCampaign(ctx, app, cfg, *verbose), closeLog()))
			return
		}
		res, err := core.Infer(ctx, app, cfg)
		die(firstErr(err, closeLog()))
		printResult(app, res, *verbose)
	default:
		die(fmt.Errorf("infer: one of -app, -corpus, -traces, -all, or -list is required"))
	}
}

// campaignConfig assembles a core.Config from the shared campaign flags.
func campaignConfig(rounds int, lambda float64, near, seed int64, parallel int, dist string) core.Config {
	cfg := core.DefaultConfig()
	cfg.Rounds = rounds
	cfg.Solver.Lambda = lambda
	cfg.Window.Near = near
	cfg.Seed = seed
	cfg.Parallelism = parallel
	cfg.StepDist = dist
	return cfg
}

// cmdStatic runs static (run-free) inference: locally against the built-in
// apps, or against a daemon's content-addressed report endpoint.
func cmdStatic(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("static", flag.ExitOnError)
	appName := fs.String("app", "", "application id (App-1..App-8 or gen:<seed>[,profile=...][,size=...])")
	all := fs.Bool("all", false, "static-only sweep over everything the program registry exposes")
	server := fs.String("server", "", "fetch the report from this sherlockd daemon instead of computing locally")
	lambda := fs.Float64("lambda", 0.2, "Mostly-Protected trade-off knob (local mode)")
	near := fs.Int64("near", 1_000_000, "conflict window in virtual ns (local mode)")
	verbose := fs.Bool("v", false, "print solver overhead")
	fs.Parse(args)
	switch {
	case *all:
		die(runStaticAll(ctx))
	case *appName != "" && *server != "":
		die(fetchStaticReport(ctx, *server, *appName))
	case *appName != "":
		die(runStaticLocal(ctx, *appName, *lambda, *near, *verbose))
	default:
		die(fmt.Errorf("static: -app or -all is required"))
	}
}

func cmdUpload(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("upload", flag.ExitOnError)
	server := fs.String("server", "", "sherlockd base URL (required)")
	fs.Parse(args)
	if *server == "" {
		die(fmt.Errorf("upload: -server is required"))
	}
	if fs.NArg() == 0 {
		die(fmt.Errorf("upload: at least one trace file is required"))
	}
	for _, path := range fs.Args() {
		die(uploadTrace(ctx, *server, path))
	}
}

func cmdSubmit(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	server := fs.String("server", "", "sherlockd base URL (required)")
	appName := fs.String("app", "", "submit an application campaign job")
	keys := fs.String("keys", "", "submit an offline job over comma-separated corpus keys")
	watchApp := fs.String("watch-app", "", "submit a streaming watch job bound to this corpus app")
	staticApp := fs.String("static-app", "", "submit a run-free static inference job for this application")
	hybrid := fs.Bool("hybrid", false, "with -app: seed the campaign's round 0 with static priors")
	rounds := fs.Int("rounds", 0, "rounds override (0 = server default)")
	lambda := fs.Float64("lambda", 0, "lambda override (0 = server default)")
	near := fs.Int64("near", 0, "near-window override (0 = server default)")
	seed := fs.Int64("seed", 0, "seed override (0 = server default)")
	wait := fs.Bool("wait", false, "poll the job to completion and print its result")
	fs.Parse(args)
	if *server == "" {
		die(fmt.Errorf("submit: -server is required"))
	}
	if *hybrid && *appName == "" {
		die(fmt.Errorf("submit: -hybrid requires -app (a campaign to seed)"))
	}
	switch {
	case *watchApp != "":
		die(submitWatchJob(ctx, *server, *watchApp, *rounds, *lambda, *near, *seed, *wait))
	case *staticApp != "":
		die(submitStaticJob(ctx, *server, *staticApp, *lambda, *near, *wait))
	case *appName != "":
		die(submitJob(ctx, *server, *appName, *hybrid, *rounds, *lambda, *near, *seed, *wait))
	case *keys != "":
		die(submitKeysJob(ctx, *server, *keys, *rounds, *lambda, *near, *seed, *wait))
	default:
		die(fmt.Errorf("submit: one of -app, -keys, -watch-app, or -static-app is required"))
	}
}

func cmdWatch(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("watch", flag.ExitOnError)
	server := fs.String("server", "", "sherlockd base URL (required)")
	jobID := fs.String("job", "", "follow an existing job id")
	appName := fs.String("app", "", "create a watch job bound to this corpus app, then follow it")
	after := fs.Uint64("after", 0, "resume from this published version")
	fs.Parse(args)
	if *server == "" {
		die(fmt.Errorf("watch: -server is required"))
	}
	switch {
	case *jobID != "":
		die(watchJob(ctx, *server, *jobID, *after))
	case *appName != "":
		id, err := createWatchJob(ctx, *server, *appName)
		die(err)
		die(watchJob(ctx, *server, id, *after))
	default:
		die(fmt.Errorf("watch: one of -job or -app is required"))
	}
}

func cmdStatus(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	server := fs.String("server", "", "sherlockd base URL (required)")
	result := fs.String("result", "", "fetch a result by content key")
	list := fs.Bool("list", false, "list job records")
	filter := fs.String("filter", "", "with -list: only this status (queued, running, watching, done, failed, canceled)")
	fs.Parse(args)
	if *server == "" {
		die(fmt.Errorf("status: -server is required"))
	}
	switch {
	case *result != "":
		die(printServerResult(ctx, *server, *result))
	case *list:
		die(listJobs(ctx, *server, *filter))
	case fs.NArg() == 1:
		die(printJobStatus(ctx, *server, fs.Arg(0)))
	default:
		die(fmt.Errorf("status: a job id, -result KEY, or -list is required"))
	}
}

func cmdCluster(ctx context.Context, args []string) {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	server := fs.String("server", "", "sherlockd base URL (required)")
	fs.Parse(args)
	if *server == "" {
		die(fmt.Errorf("cluster: -server is required"))
	}
	die(printClusterInfo(ctx, *server))
}
