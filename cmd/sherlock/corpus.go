// Corpus mode for the sherlock CLI: capture benchmark runs into a
// content-addressed trace corpus on disk, run offline inference straight
// from a corpus, and talk to sherlockd's corpus endpoints (upload a trace
// file, submit jobs by corpus key).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/prog"
	"sherlock/internal/sched"
	"sherlock/internal/store"
	"sherlock/internal/trace"
)

// captureToCorpus executes every test of the selected applications once
// and ingests each trace into the corpus at dir. Re-capturing with the
// same seed dedups: the corpus is keyed by trace content, not by run.
func captureToCorpus(ctx context.Context, appName, dir string, seed int64) error {
	var programs []*prog.Program
	if appName != "" {
		app, err := apps.ByName(appName)
		if err != nil {
			return err
		}
		programs = append(programs, app)
	} else {
		programs = apps.All()
	}
	c, err := store.Open(dir)
	if err != nil {
		return err
	}
	added, dedup := 0, 0
	for _, app := range programs {
		for i, test := range app.Tests {
			if err := ctx.Err(); err != nil {
				return err
			}
			run, err := sched.Run(app, test, sched.Options{Seed: seed + int64(i)})
			if err != nil {
				return fmt.Errorf("%s/%s: %w", app.Name, test.Name, err)
			}
			entry, isNew, err := c.Ingest(run.Trace)
			if err != nil {
				return err
			}
			verb := "stored"
			if !isNew {
				verb = "dedup "
				dedup++
			} else {
				added++
			}
			fmt.Printf("%s %s  %s/%s (%d events)\n", verb, entry.Key[:12], app.Name, test.Name, entry.Events)
		}
	}
	traces, bytesOnDisk, events := c.Stats()
	fmt.Printf("corpus %s: +%d stored, %d dedup; now %d traces, %d events, %d bytes\n",
		dir, added, dedup, traces, events, bytesOnDisk)
	return nil
}

// analyzeCorpus streams every trace in the corpus at dir (optionally only
// those captured from appFilter) through the offline inference path. The
// corpus-backed source decodes one trace at a time, so memory stays
// bounded by the largest single trace rather than the corpus size.
func analyzeCorpus(ctx context.Context, dir, appFilter string, lambda float64, near int64, observer core.Observer) error {
	c, err := store.Open(dir)
	if err != nil {
		return err
	}
	var keys []string
	for _, e := range c.Entries() {
		if appFilter == "" || e.App == appFilter {
			keys = append(keys, e.Key)
		}
	}
	if len(keys) == 0 {
		if appFilter != "" {
			return fmt.Errorf("no traces for app %q in corpus %s", appFilter, dir)
		}
		return fmt.Errorf("corpus %s is empty", dir)
	}
	cfg := core.DefaultConfig()
	cfg.Solver.Lambda = lambda
	cfg.Window.Near = near
	cfg.Observer = observer
	res, err := core.InferFromSource(ctx, c.Source(keys...), cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%d traces, %d windows, %d inferred operations\n\n",
		len(keys), res.Overhead.Windows, len(res.Inferred))
	fmt.Println("Releasing sites:")
	for _, s := range res.Inferred {
		if s.Role == trace.RoleRelease {
			fmt.Printf("  %s\n", s.Key.Display())
		}
	}
	fmt.Println("Acquire sites:")
	for _, s := range res.Inferred {
		if s.Role == trace.RoleAcquire {
			fmt.Printf("  %s\n", s.Key.Display())
		}
	}
	return nil
}

// uploadTrace POSTs one trace file (binary or JSONL — the daemon sniffs)
// to /v1/traces and prints the content key it was stored under.
func uploadTrace(ctx context.Context, base, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/traces", bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return apiError("upload "+path, resp.Status, body)
	}
	var v struct {
		Key    string `json:"key"`
		App    string `json:"app"`
		Events int    `json:"events"`
		Dedup  bool   `json:"dedup"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		return fmt.Errorf("upload %s: bad response: %w", path, err)
	}
	verb := "stored"
	if v.Dedup {
		verb = "dedup"
	}
	fmt.Printf("%s %s  %s (%d events) from %s\n", verb, v.Key, v.App, v.Events, path)
	return nil
}

// submitKeysJob submits an inference job over traces already in the
// daemon's corpus, addressed by their content keys (comma-separated).
func submitKeysJob(ctx context.Context, base, keysCSV string, rounds int, lambda float64, near, seed int64, wait bool) error {
	var keys []string
	for _, k := range strings.Split(keysCSV, ",") {
		if k = strings.TrimSpace(k); k != "" {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return fmt.Errorf("-submit-keys: no keys given")
	}
	spec := submitSpec{TraceKeys: keys, Rounds: rounds, Lambda: lambda, Near: near, Seed: seed}
	return postJobSpec(ctx, base, spec, wait)
}
