// Command sherlock runs synchronization-operation inference on the
// benchmark applications, locally or against a sherlockd daemon. The
// interface is subcommands (commands.go):
//
//	sherlock capture -corpus DIR [-app App-4] [-seed 1]
//	sherlock infer   -app App-4 [-rounds 3] [-lambda 0.2] [-near 1000000] [-v]
//	sherlock infer   -corpus DIR | -traces DIR | -all | -list
//	sherlock upload  -server http://localhost:8419 trace.bin ...
//	sherlock submit  -server URL -app App-4 [-wait]
//	sherlock submit  -server URL -keys key1,key2 [-wait]
//	sherlock submit  -server URL -watch-app App-4
//	sherlock watch   -server URL -job job-000001 | -app App-4
//	sherlock status  -server URL job-000001 | -result KEY | -list
//
// The original flat flags (sherlock -app App-4, sherlock -server URL
// -submit App-4, -capture-to, -corpus, -analyze-traces, ...) keep working
// as deprecated aliases of the same code paths.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/exper"
	"sherlock/internal/obs"
	"sherlock/internal/prog"
	"sherlock/internal/report"
	"sherlock/internal/sched"
	"sherlock/internal/trace"
)

func main() {
	// ^C cancels between test executions instead of killing the process
	// mid-table.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Subcommand interface (commands.go). Unknown verbs and flag-first
	// invocations fall through to the deprecated flat-flag parser below.
	if len(os.Args) > 1 && os.Args[1] != "" && os.Args[1][0] != '-' {
		if runCommand(ctx, os.Args[1], os.Args[2:]) {
			return
		}
		fmt.Fprintf(os.Stderr, "sherlock: unknown command %q; run 'sherlock help'\n", os.Args[1])
		os.Exit(2)
	}
	if len(os.Args) > 1 {
		fmt.Fprintln(os.Stderr, "sherlock: note: flat flags are deprecated; run 'sherlock help' for the subcommand interface")
	}
	legacyMain(ctx)
}

// legacyMain is the original flat-flag interface, kept as a deprecated
// alias for existing scripts.
func legacyMain(ctx context.Context) {
	var (
		appName    = flag.String("app", "", "application id (App-1..App-8)")
		dumpDir    = flag.String("dump-traces", "", "write one JSONL trace per test to this directory instead of inferring")
		analyzeDir = flag.String("analyze-traces", "", "offline: infer from the JSONL traces in this directory")
		captureTo  = flag.String("capture-to", "", "capture test runs into the content-addressed corpus at this directory (-app selects one app; default all)")
		corpusPath = flag.String("corpus", "", "offline: infer from the trace corpus at this directory (-app filters by application)")
		all        = flag.Bool("all", false, "run every application and print Table 2")
		list       = flag.Bool("list", false, "print the application inventory (Table 1)")
		rounds     = flag.Int("rounds", 3, "rounds per test input")
		lambda     = flag.Float64("lambda", 0.2, "Mostly-Protected trade-off knob")
		near       = flag.Int64("near", 1_000_000, "conflict window in virtual ns")
		seed       = flag.Int64("seed", 1, "base scheduler seed")
		parallel   = flag.Int("p", 0, "worker pool size per round (0 = GOMAXPROCS); results are identical for every value")
		verbose    = flag.Bool("v", false, "print per-round snapshots")
		traceOut   = flag.String("trace-out", "", "write the campaign's span event log as JSON lines to this file (works with -app, -analyze-traces, -corpus)")

		// Client mode.
		serverURL  = flag.String("server", "", "sherlockd base URL; enables -submit/-upload/-submit-keys/-status/-result")
		submit     = flag.String("submit", "", "submit an application job to -server")
		upload     = flag.String("upload", "", "upload a trace file (binary or JSONL) to -server's corpus")
		submitKeys = flag.String("submit-keys", "", "submit an inference job over comma-separated corpus keys on -server")
		status     = flag.String("status", "", "query a job id on -server")
		result     = flag.String("result", "", "fetch a result by content key from -server")
		wait       = flag.Bool("wait", false, "with -submit/-submit-keys: poll to completion and print the result")
	)
	flag.Parse()

	switch {
	case *serverURL != "" && *submit != "":
		die(submitJob(ctx, *serverURL, *submit, false, *rounds, *lambda, *near, *seed, *wait))
	case *serverURL != "" && *upload != "":
		die(uploadTrace(ctx, *serverURL, *upload))
	case *serverURL != "" && *submitKeys != "":
		die(submitKeysJob(ctx, *serverURL, *submitKeys, *rounds, *lambda, *near, *seed, *wait))
	case *serverURL != "" && *status != "":
		die(printJobStatus(ctx, *serverURL, *status))
	case *serverURL != "" && *result != "":
		die(printServerResult(ctx, *serverURL, *result))
	case *serverURL != "":
		die(fmt.Errorf("-server needs one of -submit, -upload, -submit-keys, -status, or -result"))
	case *list:
		report.Table1(os.Stdout)
	case *all:
		rows, runs, err := exper.Table2(ctx)
		die(err)
		report.Table2(os.Stdout, rows, exper.UniqueCorrect(runs))
	case *captureTo != "":
		die(captureToCorpus(ctx, *appName, *captureTo, *seed))
	case *corpusPath != "":
		observer, closeLog, err := traceObserver(*traceOut)
		die(err)
		die(firstErr(analyzeCorpus(ctx, *corpusPath, *appName, *lambda, *near, observer), closeLog()))
	case *analyzeDir != "":
		observer, closeLog, err := traceObserver(*traceOut)
		die(err)
		die(firstErr(analyzeTraces(ctx, *analyzeDir, *lambda, *near, observer), closeLog()))
	case *appName != "" && *dumpDir != "":
		app, err := apps.ByName(*appName)
		die(err)
		die(dumpTraces(app, *dumpDir, *seed))
	case *appName != "":
		app, err := apps.ByName(*appName)
		die(err)
		cfg := core.DefaultConfig()
		cfg.Rounds = *rounds
		cfg.Solver.Lambda = *lambda
		cfg.Window.Near = *near
		cfg.Seed = *seed
		cfg.Parallelism = *parallel
		observer, closeLog, err := traceObserver(*traceOut)
		die(err)
		cfg.Observer = observer
		res, err := core.Infer(ctx, app, cfg)
		die(firstErr(err, closeLog()))
		printResult(app, res, *verbose)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func printResult(app *prog.Program, res *core.Result, verbose bool) {
	score := core.ScoreResult(app, res)
	fmt.Printf("%s (%s): %d inferred, %d correct, precision %.0f%%\n\n",
		app.Name, app.Title, score.Total(), len(score.Correct), 100*score.Precision())

	fmt.Println("Releasing sites:")
	for _, s := range res.Inferred {
		if s.Role.String() == "release" {
			fmt.Printf("  %-70s %s\n", s.Key.Display(), classify(app, s))
		}
	}
	fmt.Println("Acquire sites:")
	for _, s := range res.Inferred {
		if s.Role.String() == "acquire" {
			fmt.Printf("  %-70s %s\n", s.Key.Display(), classify(app, s))
		}
	}
	if len(score.Missed) > 0 {
		fmt.Println("Missed (ground truth):")
		for _, k := range score.Missed {
			fmt.Printf("  %-70s [%s]\n", k.Display(), app.Truth.Category[k])
		}
	}
	if verbose {
		fmt.Println("\nPer-round snapshots:")
		for _, r := range res.Rounds {
			c, t := core.SnapshotCorrect(app, r)
			fmt.Printf("  round %d: %d correct / %d inferred, %d windows\n",
				r.Round, c, t, r.Windows)
		}
		fmt.Printf("\nOverhead: run %v, solve %v, %d events, %d windows, LP %dx%d\n",
			res.Overhead.RunWall, res.Overhead.SolveWall, res.Overhead.Events,
			res.Overhead.Windows, res.Overhead.Vars, res.Overhead.Constraints)
	}
}

func classify(app *prog.Program, s core.InferredSync) string {
	if role, ok := app.Truth.Syncs[s.Key]; ok && role == s.Role {
		return "[true sync]"
	}
	if app.Truth.RacyKeys[s.Key] {
		return "[data racy]"
	}
	if cat := app.Truth.Category[s.Key]; cat != "" {
		return "[" + string(cat) + "]"
	}
	return "[not sync]"
}

// dumpTraces executes every test once and writes its log as JSON lines —
// the paper's materialized per-run log files.
func dumpTraces(app *prog.Program, dir string, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, test := range app.Tests {
		run, err := sched.Run(app, test, sched.Options{Seed: seed + int64(i)})
		if err != nil {
			return err
		}
		name := filepath.Join(dir, fmt.Sprintf("%s-%02d.jsonl", app.Name, i))
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := run.Trace.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events, test %s)\n", name, run.Trace.Len(), test.Name)
	}
	return nil
}

// analyzeTraces loads every .jsonl trace in dir and runs the offline
// log-analysis step (no re-execution, no Perturber).
func analyzeTraces(ctx context.Context, dir string, lambda float64, near int64, observer core.Observer) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var traces []*trace.Trace
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".jsonl" {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name(), err)
		}
		traces = append(traces, tr)
	}
	if len(traces) == 0 {
		return fmt.Errorf("no .jsonl traces in %s", dir)
	}
	cfg := core.DefaultConfig()
	cfg.Solver.Lambda = lambda
	cfg.Window.Near = near
	cfg.Observer = observer
	res, err := core.InferFromTraces(ctx, traces, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%d traces, %d windows, %d inferred operations\n\n",
		len(traces), res.Overhead.Windows, len(res.Inferred))
	fmt.Println("Releasing sites:")
	for _, s := range res.Inferred {
		if s.Role == trace.RoleRelease {
			fmt.Printf("  %s\n", s.Key.Display())
		}
	}
	fmt.Println("Acquire sites:")
	for _, s := range res.Inferred {
		if s.Role == trace.RoleAcquire {
			fmt.Printf("  %s\n", s.Key.Display())
		}
	}
	return nil
}

// traceObserver opens a -trace-out event log and returns the observer that
// streams span events into it as JSON lines, plus a close function that
// flushes and reports any deferred write error. An empty path yields a nil
// observer and a no-op close.
func traceObserver(path string) (core.Observer, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriter(f)
	sink := obs.NewJSONLSink(bw)
	closeFn := func() error {
		if err := sink.Err(); err != nil {
			f.Close()
			return fmt.Errorf("trace-out %s: %w", path, err)
		}
		if err := bw.Flush(); err != nil {
			f.Close()
			return fmt.Errorf("trace-out %s: %w", path, err)
		}
		return f.Close()
	}
	return core.SinkObserver(sink), closeFn, nil
}

// firstErr returns the first non-nil error (campaign failures outrank
// event-log close failures).
func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sherlock:", err)
		os.Exit(1)
	}
}
