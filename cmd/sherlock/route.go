// Ring-aware client-side routing. A sherlockd cluster routes every
// submission to its content key's ring owner server-side, at the cost of
// one proxy hop through whichever node the client happened to pick. The
// CLI can skip that hop: /v1/cluster/info publishes the membership AND the
// node's base config in the canonical key encoding, which is everything
// needed to compute the submission's content key locally (the key scheme
// is deterministic across processes by design) and hash its owner on the
// same consistent-hash ring the servers use. Submissions then go straight
// to the owner; any failure — single-node daemon, stale info, owner down —
// falls back to the URL the user gave, which is always correct, just one
// hop slower.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"sherlock/internal/cluster"
	"sherlock/internal/server"
)

// errConnect marks transport-level failures (no HTTP response at all) so
// the submit path can distinguish "owner down, retry elsewhere" from an
// API error the fallback node would only repeat.
var errConnect = errors.New("connection failed")

// clusterView is the slice of /v1/cluster/info that routing needs.
type clusterView struct {
	Node      string `json:"node"`
	Replicas  int    `json:"replicas"`
	JobConfig string `json:"job_config"`
	Peers     []struct {
		ID   string `json:"id"`
		URL  string `json:"url"`
		Self bool   `json:"self"`
		Up   bool   `json:"up"`
	} `json:"peers"`
}

// fetchClusterView grabs the info document on a short budget. Any failure
// — single-node daemon (404), pre-cluster daemon, network blip — returns
// nil: routing is an optimization, never a requirement.
func fetchClusterView(ctx context.Context, base string) *clusterView {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/cluster/info", nil)
	if err != nil {
		return nil
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var v clusterView
	if err := json.Unmarshal(body, &v); err != nil {
		return nil
	}
	return &v
}

// toJobSpec mirrors the wire spec into the server's type for key
// computation (same module, same struct semantics).
func toJobSpec(s submitSpec) server.JobSpec {
	return server.JobSpec{
		App: s.App, TraceKeys: s.TraceKeys, WatchApp: s.WatchApp,
		StaticApp: s.StaticApp, Hybrid: s.Hybrid,
		Rounds: s.Rounds, Lambda: s.Lambda, Near: s.Near, Seed: s.Seed,
	}
}

// routeSubmit picks the node to submit spec to: the first healthy owner
// of the job's content key, in the ring's replica order. Returns base
// (routed=false) when the daemon is not clustered, the info document
// predates config publishing, or no owner is currently up.
func routeSubmit(ctx context.Context, base string, spec submitSpec) (target string, routed bool) {
	info := fetchClusterView(ctx, base)
	if info == nil || info.JobConfig == "" || len(info.Peers) == 0 {
		return base, false
	}
	key := server.JobKeyFromConfigText(toJobSpec(spec), info.JobConfig)
	ids := make([]string, 0, len(info.Peers))
	urls := make(map[string]string, len(info.Peers))
	up := make(map[string]bool, len(info.Peers))
	for _, p := range info.Peers {
		ids = append(ids, p.ID)
		urls[p.ID] = p.URL
		up[p.ID] = p.Up
	}
	ring := cluster.NewRing(ids)
	n := info.Replicas
	if n < 1 {
		n = 1
	}
	for _, owner := range ring.Replicas(key, n) {
		if up[owner] && urls[owner] != "" {
			return urls[owner], true
		}
	}
	return base, false
}
