// `sherlock static` — run-free inference — plus the hybrid/refine
// campaign helpers behind `sherlock infer -hybrid` and `-refine`.
package main

import (
	"context"
	"fmt"
	"os"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/prog"
	"sherlock/internal/store"
	"sherlock/internal/trace"
)

// runStaticLocal analyzes one app without executing it and prints the
// report scored against ground truth.
func runStaticLocal(ctx context.Context, appName string, lambda float64, near int64, verbose bool) error {
	app, err := apps.ByName(appName)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Solver.Lambda = lambda
	cfg.Window.Near = near
	res, an, err := core.InferStatic(ctx, app, cfg)
	if err != nil {
		return err
	}
	score := core.ScoreResult(app, res)
	fmt.Printf("%s (%s): static-only — %d inferred, %d correct, precision %.0f%%, recall %.0f%%\n",
		app.Name, app.Title, score.Total(), len(score.Correct), 100*score.Precision(), 100*recall(score))
	fmt.Printf("program %s  %d threads, %d abstract ops, %d windows (no executions)\n\n",
		an.ProgramHash[:12], an.Threads, an.Ops, an.Windows)
	fmt.Println("Releasing sites:")
	for _, s := range res.Inferred {
		if s.Role == trace.RoleRelease {
			fmt.Printf("  %-70s %s\n", s.Key.Display(), classify(app, s))
		}
	}
	fmt.Println("Acquire sites:")
	for _, s := range res.Inferred {
		if s.Role == trace.RoleAcquire {
			fmt.Printf("  %-70s %s\n", s.Key.Display(), classify(app, s))
		}
	}
	if len(score.Missed) > 0 {
		fmt.Println("Missed (ground truth):")
		for _, k := range score.Missed {
			fmt.Printf("  %-70s [%s]\n", k.Display(), app.Truth.Category[k])
		}
	}
	if verbose {
		fmt.Printf("\nOverhead: solve %v, LP %dx%d, objective %.4f\n",
			res.Overhead.SolveWall, res.Overhead.Vars, res.Overhead.Constraints, res.Overhead.Objective)
	}
	return nil
}

// runStaticAll prints the static-only precision/recall sweep over every
// program the registry exposes — the eight built-ins plus each
// registered source's showcase (the generator's per-profile samples).
// The run-free analogue of Table 2.
func runStaticAll(ctx context.Context) error {
	fmt.Printf("%-22s %-34s %9s %9s %11s %8s\n", "App", "Title", "#Inferred", "#Correct", "Precision", "Recall")
	for _, name := range apps.RegistryNames() {
		if err := ctx.Err(); err != nil {
			return err
		}
		app, err := apps.ByName(name)
		if err != nil {
			return err
		}
		res, _, err := core.InferStatic(ctx, app, core.DefaultConfig())
		if err != nil {
			return err
		}
		score := core.ScoreResult(app, res)
		title := app.Title
		if len(title) > 34 {
			title = title[:31] + "..."
		}
		fmt.Printf("%-22s %-34s %9d %9d %10.0f%% %7.0f%%\n",
			app.Name, title, score.Total(), len(score.Correct),
			100*score.Precision(), 100*recall(score))
	}
	return nil
}

// recall = correct / (correct + missed) against ground truth.
func recall(s *core.Score) float64 {
	denom := len(s.Correct) + len(s.Missed)
	if denom == 0 {
		return 0
	}
	return float64(len(s.Correct)) / float64(denom)
}

// hybridCampaign runs `sherlock infer -app X -hybrid`: static priors seed
// round 0, dynamic evidence takes over from round 1.
func hybridCampaign(ctx context.Context, app *prog.Program, cfg core.Config, verbose bool) error {
	pri, err := core.StaticPriors(ctx, app, cfg)
	if err != nil {
		return fmt.Errorf("static priors: %w", err)
	}
	cfg.StaticPriors = pri
	res, err := core.Infer(ctx, app, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("hybrid campaign (static-seeded round 0): converged in %d/%d rounds\n\n",
		res.RoundsToConverge(), len(res.Rounds))
	printResult(app, res, verbose)
	return nil
}

// refineCampaign runs `sherlock infer -app X -refine -corpus DIR`: the
// campaign warm-starts from the posterior checkpoint a previous refine
// run stored in the corpus, and persists its own posterior for the next
// one. The first run is cold (no checkpoint yet) but still saves one.
func refineCampaign(ctx context.Context, app *prog.Program, corpusDir string, cfg core.Config, verbose bool) error {
	c, err := store.Open(corpusDir)
	if err != nil {
		return err
	}
	name := core.PosteriorName(app.Name)
	warm := false
	if data, err := c.LoadCheckpoint(name); err == nil {
		post, derr := core.DecodePosterior(data)
		if derr != nil {
			fmt.Fprintf(os.Stderr, "sherlock: ignoring stored posterior %s: %v\n", name, derr)
		} else if pri, perr := post.Priors(cfg); perr != nil {
			fmt.Fprintf(os.Stderr, "sherlock: ignoring stored posterior %s: %v\n", name, perr)
		} else {
			cfg.StaticPriors = pri
			warm = true
			fmt.Printf("warm-starting from posterior %s (%d rounds of evidence)\n", name, post.Rounds)
		}
	}
	res, err := core.Infer(ctx, app, cfg)
	if err != nil {
		return err
	}
	data, err := core.EncodePosterior(core.PosteriorFromResult(res, cfg))
	if err != nil {
		return err
	}
	if err := c.SaveCheckpoint(name, data); err != nil {
		return fmt.Errorf("save posterior: %w", err)
	}
	mode := "cold (posterior saved for the next run)"
	if warm {
		mode = fmt.Sprintf("warm, converged in %d/%d rounds", res.RoundsToConverge(), len(res.Rounds))
	}
	fmt.Printf("refine campaign: %s\n\n", mode)
	printResult(app, res, verbose)
	return nil
}
