// Command sherlockd serves synchronization-operation inference over HTTP:
// a bounded job queue with a worker pool, a content-addressed result cache
// (resubmitting an identical workload is answered byte-identically from
// memory), and a Prometheus-format /metrics endpoint.
//
// Usage:
//
//	sherlockd [-addr :8419] [-workers N] [-queue N] [-cache N]
//	          [-job-timeout 2m] [-drain-timeout 30s] [-rounds 3]
//	          [-corpus DIR] [-pprof]
//	          [-node-id ID -peers ID=URL,ID=URL,...]
//	          [-cluster-replicas 2] [-anti-entropy 5s]
//
// -node-id and -peers turn the daemon into one member of a sherlockd
// cluster: jobs route to their content key's owner over consistent
// hashing, corpus uploads replicate to -cluster-replicas nodes, results
// cached anywhere are hits everywhere, and the corpus self-repairs by
// anti-entropy every -anti-entropy interval. The -peers list names
// EVERY member (including this node) as name=http://host:port pairs and
// must be identical on all members. A clustered node needs a fixed
// -addr so peers can reach it.
//
// -pprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/ on the same listener. Off by default: the profile
// endpoints expose internals and can stall a loaded daemon, so they are
// opt-in for diagnosis sessions only.
//
// -corpus persists the content-addressed trace corpus (POST /v1/traces,
// trace_keys job submission) across restarts; without it uploads land in
// a per-process temporary directory.
//
// The daemon prints "listening on HOST:PORT" once the socket is bound
// (pass -addr 127.0.0.1:0 to let the kernel pick a free port, as the CI
// smoke test does). SIGTERM/SIGINT triggers a graceful drain: submissions
// are refused with 503 while admitted jobs run to completion, bounded by
// -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sherlock/internal/cluster"
	"sherlock/internal/server"
)

func main() {
	cfg := server.DefaultConfig()
	var (
		addr         = flag.String("addr", ":8419", "listen address (host:0 picks a free port)")
		workers      = flag.Int("workers", cfg.Workers, "worker pool size (concurrent campaigns)")
		queueSize    = flag.Int("queue", cfg.QueueSize, "job queue capacity (full queue => 429)")
		cacheCap     = flag.Int("cache", cfg.CacheCapacity, "result cache capacity (entries)")
		jobTimeout   = flag.Duration("job-timeout", cfg.JobTimeout, "per-job wall-clock bound (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", cfg.DrainTimeout, "graceful shutdown bound (0 = wait forever)")
		rounds       = flag.Int("rounds", cfg.Inference.Rounds, "default campaign rounds (jobs may override)")
		corpusDir    = flag.String("corpus", "", "trace corpus directory (empty = ephemeral per-process temp dir)")
		withPprof    = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
		nodeID       = flag.String("node-id", "", "cluster member name (empty = standalone)")
		peerList     = flag.String("peers", "", "comma-separated name=http://host:port for EVERY cluster member")
		replicas     = flag.Int("cluster-replicas", 2, "copies of each corpus blob / cached result across the cluster")
		antiEntropy  = flag.Duration("anti-entropy", 5*time.Second, "corpus manifest-diff repair interval")
	)
	flag.Parse()
	cfg.Workers = *workers
	cfg.QueueSize = *queueSize
	cfg.CacheCapacity = *cacheCap
	cfg.JobTimeout = *jobTimeout
	cfg.DrainTimeout = *drainTimeout
	cfg.Inference.Rounds = *rounds
	cfg.CorpusDir = *corpusDir

	srv, err := server.New(cfg)
	die(err)

	var cl *cluster.Cluster
	handler := srv.Handler()
	if *nodeID != "" {
		peers, err := parsePeers(*peerList)
		die(err)
		cl, err = cluster.New(cluster.Config{
			NodeID:              *nodeID,
			Peers:               peers,
			Replicas:            *replicas,
			AntiEntropyInterval: *antiEntropy,
			VerifyEvery:         12, // full local corpus audit about once a minute
		}, srv)
		die(err)
		handler = cl.Handler()
	}

	ln, err := net.Listen("tcp", *addr)
	die(err)
	fmt.Printf("sherlockd: listening on %s\n", ln.Addr())
	if cl != nil {
		fmt.Printf("sherlockd: %s\n", cl)
		cl.Start()
	}
	if *withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		die(err)
	case <-ctx.Done():
	}
	stop()

	fmt.Println("sherlockd: draining...")
	drainCtx := context.Background()
	if cfg.DrainTimeout > 0 {
		var cancel context.CancelFunc
		drainCtx, cancel = context.WithTimeout(drainCtx, cfg.DrainTimeout)
		defer cancel()
	}
	// Flip the drain signal before the HTTP listener closes so parked
	// long-polls and SSE streams return immediately instead of holding
	// hs.Shutdown until their own timeouts; then stop accepting HTTP,
	// let admitted jobs finish, and finally stop the cluster loops.
	srv.BeginDrain()
	_ = hs.Shutdown(drainCtx)
	err = srv.Shutdown(drainCtx)
	if cl != nil {
		cl.Stop()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sherlockd: drain timed out, in-flight jobs canceled:", err)
		os.Exit(1)
	}
	fmt.Println("sherlockd: drained, bye")
}

// parsePeers parses "n1=http://h1:p1,n2=http://h2:p2" into a member map.
func parsePeers(s string) (map[string]string, error) {
	peers := make(map[string]string)
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("-node-id requires -peers naming every cluster member")
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, url, ok := strings.Cut(part, "=")
		if !ok || name == "" || url == "" {
			return nil, fmt.Errorf("bad -peers entry %q: want name=http://host:port", part)
		}
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			url = "http://" + url
		}
		if _, dup := peers[name]; dup {
			return nil, fmt.Errorf("duplicate -peers member %q", name)
		}
		peers[name] = url
	}
	return peers, nil
}

func die(err error) {
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "sherlockd:", err)
		os.Exit(1)
	}
}
