// Command sherlockd serves synchronization-operation inference over HTTP:
// a bounded job queue with a worker pool, a content-addressed result cache
// (resubmitting an identical workload is answered byte-identically from
// memory), and a Prometheus-format /metrics endpoint.
//
// Usage:
//
//	sherlockd [-addr :8419] [-workers N] [-queue N] [-cache N]
//	          [-job-timeout 2m] [-drain-timeout 30s] [-rounds 3]
//	          [-corpus DIR] [-pprof]
//
// -pprof mounts the net/http/pprof profiling handlers under
// /debug/pprof/ on the same listener. Off by default: the profile
// endpoints expose internals and can stall a loaded daemon, so they are
// opt-in for diagnosis sessions only.
//
// -corpus persists the content-addressed trace corpus (POST /v1/traces,
// trace_keys job submission) across restarts; without it uploads land in
// a per-process temporary directory.
//
// The daemon prints "listening on HOST:PORT" once the socket is bound
// (pass -addr 127.0.0.1:0 to let the kernel pick a free port, as the CI
// smoke test does). SIGTERM/SIGINT triggers a graceful drain: submissions
// are refused with 503 while admitted jobs run to completion, bounded by
// -drain-timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"

	"sherlock/internal/server"
)

func main() {
	cfg := server.DefaultConfig()
	var (
		addr         = flag.String("addr", ":8419", "listen address (host:0 picks a free port)")
		workers      = flag.Int("workers", cfg.Workers, "worker pool size (concurrent campaigns)")
		queueSize    = flag.Int("queue", cfg.QueueSize, "job queue capacity (full queue => 429)")
		cacheCap     = flag.Int("cache", cfg.CacheCapacity, "result cache capacity (entries)")
		jobTimeout   = flag.Duration("job-timeout", cfg.JobTimeout, "per-job wall-clock bound (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", cfg.DrainTimeout, "graceful shutdown bound (0 = wait forever)")
		rounds       = flag.Int("rounds", cfg.Inference.Rounds, "default campaign rounds (jobs may override)")
		corpusDir    = flag.String("corpus", "", "trace corpus directory (empty = ephemeral per-process temp dir)")
		withPprof    = flag.Bool("pprof", false, "mount net/http/pprof handlers under /debug/pprof/")
	)
	flag.Parse()
	cfg.Workers = *workers
	cfg.QueueSize = *queueSize
	cfg.CacheCapacity = *cacheCap
	cfg.JobTimeout = *jobTimeout
	cfg.DrainTimeout = *drainTimeout
	cfg.Inference.Rounds = *rounds
	cfg.CorpusDir = *corpusDir

	srv, err := server.New(cfg)
	die(err)

	ln, err := net.Listen("tcp", *addr)
	die(err)
	fmt.Printf("sherlockd: listening on %s\n", ln.Addr())

	handler := srv.Handler()
	if *withPprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		die(err)
	case <-ctx.Done():
	}
	stop()

	fmt.Println("sherlockd: draining...")
	drainCtx := context.Background()
	if cfg.DrainTimeout > 0 {
		var cancel context.CancelFunc
		drainCtx, cancel = context.WithTimeout(drainCtx, cfg.DrainTimeout)
		defer cancel()
	}
	// Stop accepting HTTP first, then let admitted jobs finish.
	_ = hs.Shutdown(drainCtx)
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "sherlockd: drain timed out, in-flight jobs canceled:", err)
		os.Exit(1)
	}
	fmt.Println("sherlockd: drained, bye")
}

func die(err error) {
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "sherlockd:", err)
		os.Exit(1)
	}
}
