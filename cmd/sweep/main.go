// Command sweep reproduces the parameter-sensitivity experiments: Table 5
// (hypothesis ablations), Table 6 (λ), Table 7 (Near), Figure 4
// (Perturber/feedback settings across rounds), the TSVD enhancement, and
// the overhead accounting.
//
// Usage:
//
//	sweep -mode table5|table6|table7|figure4|tsvd|overhead|all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"sherlock/internal/exper"
	"sherlock/internal/report"
)

func main() {
	mode := flag.String("mode", "all", "experiment: table5, table6, table7, figure4, tsvd, overhead, all")
	rounds := flag.Int("rounds", 5, "rounds for figure4")
	flag.Parse()

	// ^C cancels the sweep between test executions.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	run := func(m string) {
		switch m {
		case "table5":
			rows, err := exper.Table5(ctx)
			die(err)
			report.Table5(os.Stdout, rows)
		case "table6":
			rows, err := exper.Table6(ctx)
			die(err)
			report.Sweep(os.Stdout, "Table 6: sensitivity of lambda", "lambda", rows)
		case "table7":
			rows, err := exper.Table7(ctx)
			die(err)
			report.Sweep(os.Stdout, "Table 7: sensitivity of Near (x default)", "near", rows)
		case "figure4":
			series, err := exper.Figure4(ctx, *rounds)
			die(err)
			report.Figure4(os.Stdout, series)
		case "tsvd":
			rows, err := exper.TSVDEnhancement(ctx)
			die(err)
			report.TSVD(os.Stdout, rows)
		case "overhead":
			rows, err := exper.Overhead(ctx)
			die(err)
			report.Overhead(os.Stdout, rows)
		default:
			fmt.Fprintf(os.Stderr, "sweep: unknown mode %q\n", m)
			os.Exit(2)
		}
	}

	if *mode == "all" {
		for _, m := range []string{"table5", "table6", "table7", "figure4", "tsvd", "overhead"} {
			run(m)
			fmt.Println()
		}
		return
	}
	run(*mode)
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}
