// Ablation: toggle SherLock's hypotheses one at a time on a benchmark
// application and watch precision move — a single-app slice of the paper's
// Table 5. The Mostly-Protected hypothesis is load-bearing (without it
// nothing is inferred); Synchronizations-are-Rare keeps the solver from
// tagging everything in sight.
package main

import (
	"context"
	"fmt"
	"log"

	"sherlock"
	"sherlock/internal/core"
	"sherlock/internal/solver"
)

func main() {
	app, err := sherlock.AppByName("App-2")
	if err != nil {
		log.Fatal(err)
	}

	type ablation struct {
		name  string
		apply func(*solver.Hypotheses)
	}
	ablations := []ablation{
		{"SherLock (all hypotheses)", func(*solver.Hypotheses) {}},
		{"w/o Mostly Protected", func(h *solver.Hypotheses) { h.MostlyProtected = false }},
		{"w/o Syncs are Rare", func(h *solver.Hypotheses) { h.SyncsAreRare = false }},
		{"w/o Acq-Time Varies", func(h *solver.Hypotheses) { h.AcqTimeVaries = false }},
		{"w/o Mostly Paired", func(h *solver.Hypotheses) { h.MostlyPaired = false }},
		{"w/o Read-Acq & Write-Rel", func(h *solver.Hypotheses) { h.ReadAcqWriteRel = false }},
		{"w/o Single Role", func(h *solver.Hypotheses) { h.SingleRole = false }},
	}

	fmt.Printf("Hypothesis ablation on %s (%s):\n\n", app.Name, app.Title)
	fmt.Printf("%-28s %8s %7s %10s\n", "configuration", "#correct", "#total", "precision")
	for _, ab := range ablations {
		cfg := core.DefaultConfig()
		ab.apply(&cfg.Solver.Hyp)
		res, err := sherlock.Infer(context.Background(), app, cfg)
		if err != nil {
			log.Fatal(err)
		}
		score := sherlock.ScoreResult(app, res)
		prec := "n/a"
		if score.Total() > 0 {
			prec = fmt.Sprintf("%.0f%%", 100*score.Precision())
		}
		fmt.Printf("%-28s %8d %7d %10s\n", ab.name, len(score.Correct), score.Total(), prec)
	}
}
