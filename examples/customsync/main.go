// Customsync: infer framework-style synchronization no API list could
// anticipate — a message broker whose ordering comes from a lock hidden
// inside uninstrumented framework code, plus language-enforced finalizer
// ordering. These are the paper's "application-method-based"
// synchronizations (Section 5.3.3), its largest inferred class.
package main

import (
	"context"
	"fmt"
	"log"

	"sherlock"
	"sherlock/internal/prog"
)

func main() {
	app := sherlock.NewProgram("customsync", "CustomSync")

	// A broker: Subscribe registers a handler under a framework-internal
	// lock (invisible to instrumentation); Publish reads the registry
	// under the same hidden lock. SherLock must discover that
	// Subscribe-End happens-before Publish-Begin without ever seeing the
	// lock.
	app.AddMethod("Bus.Broker::Subscribe",
		prog.HLock("bus-internal"),
		prog.Wr("Bus.Broker::handlers", "bus", 1),
		prog.Cp(100),
		prog.Wr("Bus.Broker::version", "bus", 1),
		prog.Cp(80),
		prog.HUnlock("bus-internal"),
	)
	app.AddMethod("Bus.Broker::Publish",
		prog.CpJ(450, 0.9),
		prog.HLock("bus-internal"),
		prog.Rd("Bus.Broker::version", "bus"),
		prog.Cp(60),
		prog.Rd("Bus.Broker::handlers", "bus"),
		prog.Cp(90),
		prog.HUnlock("bus-internal"),
	)
	app.AddTest("Tests::SubscribeThenPublish",
		prog.Go(prog.ForkThread, "Bus.Broker::Subscribe", "bus", "h1"),
		prog.Go(prog.ForkThread, "Bus.Broker::Publish", "bus", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)

	// Finalizer ordering: the language guarantees the finalizer runs only
	// after the last reference is gone. The inferred release is the exit
	// of the method performing the last access; the acquire is
	// Finalize-Begin.
	app.AddMethod("Bus.Session::Close",
		prog.Rd("Bus.Session::conn", "sess"),
		prog.Wr("Bus.Session::conn", "sess", 0),
		prog.Cp(140),
	)
	app.AddMethod("Bus.Session::Finalize",
		prog.Rd("Bus.Session::conn", "sess"),
		prog.Cp(90),
	)
	app.AddTest("Tests::SessionFinalizer",
		prog.Do("Bus.Session::Close", "sess"),
		prog.GC("sess", "Bus.Session::Finalize", 4_000),
		prog.Cp(150),
	)

	res, err := sherlock.Infer(context.Background(), app, sherlock.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Inferred synchronization operations (no annotations, no API lists):")
	for _, s := range res.Inferred {
		fmt.Printf("  %-8s %s\n", s.Role, s.Key.Display())
	}

	syncs := res.SyncKeys()
	check := func(k sherlock.Key, role sherlock.Role, what string) {
		if got, ok := syncs[k]; ok && got == role {
			fmt.Printf("  ✓ %s\n", what)
		} else {
			fmt.Printf("  ✗ %s (not inferred)\n", what)
		}
	}
	fmt.Println("\nFramework/language idioms discovered:")
	check("begin:Bus.Session::Finalize", sherlock.RoleAcquire, "finalizer entrance acquires (language semantics)")
	check("end:Bus.Session::Close", sherlock.RoleRelease, "last-access method exit releases")
}
