// Offline: the paper's workflow split into its two halves — capture test
// executions as serialized log files first, analyze them later, the way the
// artifact's instrumented binaries materialize per-run logs for the solver
// script. Useful when traces come from a different machine (or a different
// instrumentation altogether).
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"sherlock"
	"sherlock/internal/prog"
)

func main() {
	app := sherlock.NewProgram("offline-demo", "OfflineDemo")
	app.AddMethod("Work.Queue::Producer",
		prog.CpJ(300, 0.8),
		prog.Wr("Work.Queue::item", "q", 1),
		prog.Cp(40),
		prog.Set("item-ready"),
	)
	app.AddMethod("Work.Queue::Consumer",
		prog.CpJ(450, 0.95),
		prog.Wait("item-ready"),
		prog.Cp(30),
		prog.Rd("Work.Queue::item", "q"),
	)
	app.AddTest("Tests::ProduceConsume",
		prog.Go(prog.ForkThread, "Work.Queue::Consumer", "q", "h1"),
		prog.Go(prog.ForkThread, "Work.Queue::Producer", "q", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)

	// Phase 1: capture. Each run becomes one JSONL document (here an
	// in-memory buffer; cmd/sherlock -dump-traces writes real files).
	var files []bytes.Buffer
	for seed := int64(1); seed <= 5; seed++ {
		tr, err := sherlock.CaptureTrace(context.Background(), app, app.Tests[0], seed)
		if err != nil {
			log.Fatal(err)
		}
		var f bytes.Buffer
		if err := tr.Write(&f); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("captured run %d: %d events, %d bytes serialized\n",
			seed, tr.Len(), f.Len())
		files = append(files, f)
	}

	// Phase 2: analyze, possibly much later and elsewhere.
	var traces []*sherlock.Trace
	for i := range files {
		tr, err := sherlock.ReadTrace(&files[i])
		if err != nil {
			log.Fatal(err)
		}
		traces = append(traces, tr)
	}
	res, err := sherlock.InferFromTraces(context.Background(), traces, sherlock.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\noffline analysis: %d windows, %d inferred operations\n",
		res.Overhead.Windows, len(res.Inferred))
	for _, s := range res.Inferred {
		fmt.Printf("  %-8s %s\n", s.Role, s.Key.Display())
	}
}
