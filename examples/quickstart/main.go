// Quickstart: build a small concurrent program with the workload DSL and
// let SherLock infer its synchronization operations — a monitor lock and a
// flag variable — with zero annotations.
package main

import (
	"context"
	"fmt"
	"log"

	"sherlock"
	"sherlock/internal/prog"
)

func main() {
	app := sherlock.NewProgram("quickstart", "Quickstart")

	// A counter protected by a monitor. The jittered lead-in work makes
	// runs mix contended and uncontended lock acquisitions, which is what
	// real unit-test suites look like and what the inference feeds on.
	app.AddMethod("Demo.Counter::Increment",
		prog.CpJ(400, 0.9),
		prog.Rep(2,
			prog.Lock("counter-lock"),
			prog.Cp(120),
			prog.Rd("Demo.Counter::value", "c"),
			prog.Wr("Demo.Counter::value", "c", 1),
			prog.Unlock("counter-lock"),
			prog.CpJ(300, 0.9),
		),
	)
	app.AddMethod("Demo.Counter::Decrement",
		prog.CpJ(400, 0.9),
		prog.Rep(2,
			prog.Lock("counter-lock"),
			prog.Cp(120),
			prog.Rd("Demo.Counter::value", "c"),
			prog.Wr("Demo.Counter::value", "c", -1),
			prog.Unlock("counter-lock"),
			prog.CpJ(300, 0.9),
		),
	)

	// A producer/consumer pair coordinated by a flag variable: the
	// while-loop synchronization of the paper's Figure 3.B.
	app.AddMethod("Demo.Pipeline::Produce",
		prog.CpJ(500, 0.7),
		prog.Wr("Demo.Pipeline::data", "p", 42),
		prog.Cp(60),
		prog.Wr("Demo.Pipeline::ready", "p", 1),
	)
	app.AddMethod("Demo.Pipeline::Consume",
		prog.Spin("Demo.Pipeline::ready", "p", 1, 200),
		prog.Cp(40),
		prog.Rd("Demo.Pipeline::data", "p"),
	)

	// Unit tests: the executions SherLock observes.
	app.AddTest("Tests::Counter_Concurrent",
		prog.Go(prog.ForkThread, "Demo.Counter::Increment", "c", "h1"),
		prog.Go(prog.ForkThread, "Demo.Counter::Decrement", "c", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	app.AddTest("Tests::Pipeline_Flag",
		prog.Go(prog.ForkThread, "Demo.Pipeline::Consume", "p", "h1"),
		prog.Go(prog.ForkThread, "Demo.Pipeline::Produce", "p", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)

	res, err := sherlock.Infer(context.Background(), app, sherlock.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Inferred synchronization operations:")
	for _, s := range res.Inferred {
		fmt.Printf("  %-8s %s (p=%.2f)\n", s.Role, s.Key.Display(), s.Prob)
	}
	fmt.Printf("\n%d operations inferred after %d rounds over %d windows.\n",
		len(res.Inferred), len(res.Rounds), res.Overhead.Windows)
}
