// Racedetect: feed SherLock's inferred synchronizations into a FastTrack
// data-race detector and compare against a manually annotated baseline —
// the paper's Manual_dr vs SherLock_dr experiment (Table 3), on a program
// whose only synchronization is a Task.Run fork edge the manual list does
// not know about.
package main

import (
	"context"
	"fmt"
	"log"

	"sherlock"
	"sherlock/internal/prog"
)

func main() {
	app := sherlock.NewProgram("racedetect", "RaceDetect")

	// The parent publishes a config object, then hands it to a task. The
	// only happens-before edge is Task.Run — missing from the classic
	// annotation list, so Manual_dr reports a false race on `config`.
	app.AddMethod("Svc.Worker::Process",
		prog.Cp(80),
		prog.Rd("Svc.Config::settings", "cfg"),
		prog.Cp(300),
	)
	app.AddTest("Tests::Worker_ReadsConfig",
		prog.Wr("Svc.Config::settings", "cfg", 7),
		prog.Cp(50),
		prog.Go(prog.ForkTaskRun, "Svc.Worker::Process", "cfg", "t1"),
		prog.WaitT("t1"),
	)

	// A genuine data race both detectors should find.
	app.AddMethod("Svc.Stats::BumpA", prog.Cp(150), prog.Wr("Svc.Stats::hits", "s", 1))
	app.AddMethod("Svc.Stats::BumpB", prog.Cp(150), prog.Wr("Svc.Stats::hits", "s", 2))
	app.AddTest("Tests::Stats_Racy",
		prog.Go(prog.ForkThread, "Svc.Stats::BumpA", "s", "h1"),
		prog.Go(prog.ForkThread, "Svc.Stats::BumpB", "s", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	app.Truth.Race("Svc.Stats::hits")

	// Step 1: infer synchronizations.
	res, err := sherlock.Infer(context.Background(), app, sherlock.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Inferred synchronizations:")
	for _, s := range res.Inferred {
		fmt.Printf("  %-8s %s\n", s.Role, s.Key.Display())
	}

	// Step 2: run both detector variants over the same executions.
	cmp, err := sherlock.CompareDetectors(context.Background(), app, res.SyncKeys())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFirst-reported races per run (true/false):")
	fmt.Printf("  Manual_dr:   %d true, %d false\n", cmp.ManualTrue, cmp.ManualFalse)
	fmt.Printf("  SherLock_dr: %d true, %d false\n", cmp.SherTrue, cmp.SherFalse)

	if cmp.SherFalse < cmp.ManualFalse {
		fmt.Println("\nSherLock_dr eliminated the manual list's false races on the Task.Run edge.")
	}
}
