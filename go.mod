module sherlock

go 1.22
