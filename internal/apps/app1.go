// App-1: ApplicationInsights (paper Table 1: 67.5K LoC, 306 stars, 1193
// tests). The paper's largest contributor of inferred synchronizations (46)
// and of misclassifications (10 data-racy, 2 instrumentation errors, 7
// not-sync).
//
// Synchronization idioms reproduced (paper Table 8 / Figure 3.E):
//   - MSTest's TestInitialize framework ordering: the init method's exit
//     releases, each test method's entrance acquires — with no visible
//     fork.
//   - Monitor-guarded TelemetryBuffer.
//   - Volatile flush-completed flag.
//   - Task.Run / ThreadPool sender loops; EventWaitHandle transmission
//     signaling.
//   - Five non-volatile flag patterns that are true data races (10 racy
//     operations, paper Table 2).
//   - Two instrumentation-error patterns (hidden helpers).
//   - One dispose pattern with late garbage collection.
package apps

import (
	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

const (
	a1Init      = "Microsoft.ApplicationInsights.Tests.TelemetryTests::TestInitialize"
	a1Env       = "Microsoft.ApplicationInsights.Tests.TelemetryTests::environment"
	a1Buffer    = "Microsoft.ApplicationInsights.Channel.TelemetryBuffer::items"
	a1Enqueue   = "Microsoft.ApplicationInsights.Channel.TelemetryBuffer::Enqueue"
	a1Dequeue   = "Microsoft.ApplicationInsights.Channel.TelemetryBuffer::Dequeue"
	a1FlushFlag = "Microsoft.ApplicationInsights.Channel.InMemoryChannel::flushCompleted"
	a1FlushData = "Microsoft.ApplicationInsights.Channel.InMemoryChannel::pending"
	a1SendLoop  = "Microsoft.ApplicationInsights.Channel.TelemetrySender::SendLoop"
	a1Transmit  = "Microsoft.ApplicationInsights.Channel.Transmitter::TransmitBatch"
	a1Config    = "Microsoft.ApplicationInsights.Extensibility.TelemetryConfiguration::active"
	a1Sent      = "Microsoft.ApplicationInsights.Channel.Transmitter::sentCount"
	a1NotifyA   = "Microsoft.ApplicationInsights.Channel.Transmitter::NotifySent"             // hidden
	a1NotifyB   = "Microsoft.ApplicationInsights.Extensibility.RichPayloadEventSource::Flush" // hidden
	a1Outcome   = "Microsoft.ApplicationInsights.Channel.Transmitter::lastBatch"
	a1Payload   = "Microsoft.ApplicationInsights.Extensibility.RichPayloadEventSource::buffer"
	a1Meta      = "Microsoft.ApplicationInsights.Extensibility.DisposableSink::resources"
	a1SinkLast  = "Microsoft.ApplicationInsights.Extensibility.DisposableSink::ReleaseLast"
	a1SinkDisp  = "Microsoft.ApplicationInsights.Extensibility.DisposableSink::Dispose"

	a1QPInit        = "Microsoft.ApplicationInsights.Tests.QuickPulseTests::TestInitialize"
	a1AggAdd        = "Microsoft.ApplicationInsights.Metrics.MetricAggregator::Add"
	a1AggSnap       = "Microsoft.ApplicationInsights.Metrics.MetricAggregator::Snapshot"
	a1AggState      = "Microsoft.ApplicationInsights.Metrics.MetricAggregator::values"
	a1Serialize     = "Microsoft.ApplicationInsights.Channel.Serializer::Serialize_b0"
	a1PostSerial    = "Microsoft.ApplicationInsights.Channel.Serializer::Transmit_b1"
	a1DiagHandler   = "Microsoft.ApplicationInsights.Extensibility.DiagnosticsQueue::HandleEvent"
	a1DiagPump      = "Microsoft.ApplicationInsights.Extensibility.DiagnosticsQueue::Pump"
	a1DiagPost      = "Microsoft.ApplicationInsights.Extensibility.DiagnosticsQueue::PostEvent"
	a1CacheDelegate = "Microsoft.ApplicationInsights.Metrics.SeriesCache::CreateSeries"
	a1CacheGet      = "Microsoft.ApplicationInsights.Metrics.SeriesCache::GetOrAdd"
)

// racyFlags are App-1's five non-volatile flag fields that form true data
// races ("should be marked volatile", paper Section 5.5).
var a1RacyFlags = [5][2]string{
	{"Microsoft.ApplicationInsights.Metrics.MetricManager::initialized",
		"Microsoft.ApplicationInsights.Metrics.MetricManager::series"},
	{"Microsoft.ApplicationInsights.Extensibility.DiagnosticsListener::enabled",
		"Microsoft.ApplicationInsights.Extensibility.DiagnosticsListener::sink"},
	{"Microsoft.ApplicationInsights.QuickPulse.QuickPulseModule::collecting",
		"Microsoft.ApplicationInsights.QuickPulse.QuickPulseModule::sample"},
	{"Microsoft.ApplicationInsights.Sampling.SamplingProcessor::rateSettled",
		"Microsoft.ApplicationInsights.Sampling.SamplingProcessor::rate"},
	{"Microsoft.ApplicationInsights.Channel.BackoffManager::paused",
		"Microsoft.ApplicationInsights.Channel.BackoffManager::interval"},
}

// App1 constructs the application.
func App1() *prog.Program {
	p := prog.New("App-1", "ApplicationInsights")
	p.LoC, p.Stars, p.PaperTests = 67_500, 306, 1193

	// --- TestInitialize pattern (Figure 3.E) ---
	p.AddMethod(a1Init,
		prog.Cp(250),
		prog.Wr(a1Env, "", 1),
		prog.Cp(120),
	)

	// --- monitor-guarded telemetry buffer ---
	p.AddMethod(a1Enqueue,
		prog.CpJ(300, 0.9),
		prog.Lock("buffer-lock"),
		prog.Rd(a1Buffer, "buf"),
		prog.Wr(a1Buffer, "buf", 1),
		prog.ListAdd("buf-items"),
		prog.Cp(120),
		prog.Unlock("buffer-lock"),
		prog.CpJ(250, 0.9),
	)
	p.AddMethod(a1Dequeue,
		prog.CpJ(450, 0.9),
		prog.Lock("buffer-lock"),
		prog.Rd(a1Buffer, "buf"),
		prog.Wr(a1Buffer, "buf", -1),
		prog.ListRead("buf-items"),
		prog.Cp(100),
		prog.Unlock("buffer-lock"),
		prog.CpJ(200, 0.9),
	)

	// --- volatile flush flag ---
	p.AddMethod("Microsoft.ApplicationInsights.Channel.InMemoryChannel::Flush",
		prog.CpJ(400, 0.7),
		prog.Wr(a1FlushData, "ch", 8),
		prog.Cp(60),
		prog.Wr(a1FlushFlag, "ch", 1),
		prog.Cp(35),
		prog.Wr("Microsoft.ApplicationInsights.Channel.InMemoryChannel::flushStamp", "ch", 1),
	)
	p.AddMethod("Microsoft.ApplicationInsights.Channel.InMemoryChannel::WaitFlush",
		prog.Spin(a1FlushFlag, "ch", 1, 260),
		prog.Cp(20),
		prog.Rd("Microsoft.ApplicationInsights.Channel.InMemoryChannel::flushStamp", "ch"),
		prog.Cp(40),
		prog.Rd(a1FlushData, "ch"),
	)

	// --- sender loop (Task.Run) and transmitter (ThreadPool + handle) ---
	p.AddMethod(a1SendLoop,
		prog.CpJ(160, 0.8),
		prog.Rd(a1Config, "tc"),
		prog.Cp(220),
		prog.Wr(a1Sent, "tx", 1),
	)
	p.AddMethod(a1Transmit,
		prog.CpJ(180, 0.8),
		prog.Rd(a1Config, "tc"),
		prog.Cp(190),
		prog.Wr(a1Sent, "tx", 1),
		prog.Cp(40),
		prog.Set("batch-sent"),
	)
	// Second wait-handle context: disk persistence signaling.
	p.AddMethod("Microsoft.ApplicationInsights.Channel.DiskBacker::Persist",
		prog.CpJ(260, 0.8),
		prog.Wr("Microsoft.ApplicationInsights.Channel.DiskBacker::persisted", "db", 1),
		prog.Cp(45),
		prog.Set("disk-persisted"),
	)
	p.AddMethod("Microsoft.ApplicationInsights.Channel.DiskBacker::AwaitPersist",
		prog.CpJ(480, 0.95),
		prog.Wait("disk-persisted"),
		prog.Cp(35),
		prog.Rd("Microsoft.ApplicationInsights.Channel.DiskBacker::persisted", "db"),
	)
	p.AddMethod("Microsoft.ApplicationInsights.Channel.Transmitter::AwaitBatch",
		prog.CpJ(500, 0.95),
		prog.Wait("batch-sent"),
		prog.Cp(45),
		prog.Rd(a1Sent, "tx"),
	)

	// --- instrumentation-error patterns (two hidden helpers) ---
	p.AddMethod(a1NotifyA,
		prog.Cp(40),
		prog.HSignal("batch-notified"),
	)
	p.AddMethod("Microsoft.ApplicationInsights.Channel.Transmitter::FinishBatch",
		prog.CpJ(260, 0.7),
		prog.Wr(a1Outcome, "tx", 2),
		prog.Cp(40),
		prog.Wr("Microsoft.ApplicationInsights.Channel.Transmitter::state", "tx", 1),
		prog.Do(a1NotifyA, "tx"),
		prog.Cp(70),
	)
	p.AddMethod("Microsoft.ApplicationInsights.Channel.Transmitter::ConsumeBatch",
		prog.CpJ(420, 0.95),
		prog.HWait("batch-notified"),
		prog.Rd("Microsoft.ApplicationInsights.Channel.Transmitter::state", "tx"),
		prog.Cp(30),
		prog.Rd(a1Outcome, "tx"),
	)
	p.AddMethod(a1NotifyB,
		prog.Cp(35),
		prog.HSignal("payload-flushed"),
	)
	p.AddMethod("Microsoft.ApplicationInsights.Extensibility.RichPayloadEventSource::Write",
		prog.CpJ(240, 0.7),
		prog.Wr(a1Payload, "eps", 3),
		prog.Cp(35),
		prog.Wr("Microsoft.ApplicationInsights.Extensibility.RichPayloadEventSource::state", "eps", 1),
		prog.Do(a1NotifyB, "eps"),
		prog.Cp(55),
	)
	p.AddMethod("Microsoft.ApplicationInsights.Extensibility.RichPayloadEventSource::Drain",
		prog.CpJ(390, 0.95),
		prog.HWait("payload-flushed"),
		prog.Rd("Microsoft.ApplicationInsights.Extensibility.RichPayloadEventSource::state", "eps"),
		prog.Cp(30),
		prog.Rd(a1Payload, "eps"),
	)

	// --- second test class with framework init (Figure 3.E again) ---
	p.AddMethod(a1QPInit,
		prog.Cp(200),
		prog.Wr("Microsoft.ApplicationInsights.Tests.QuickPulseTests::collector", "", 1),
		prog.Cp(90),
	)

	// --- second monitor: metric aggregation ---
	p.AddMethod(a1AggAdd,
		prog.CpJ(280, 0.9),
		prog.Lock("aggregator-lock"),
		prog.Rd(a1AggState, "agg"),
		prog.Wr(a1AggState, "agg", 1),
		prog.Cp(90),
		prog.Unlock("aggregator-lock"),
		prog.CpJ(220, 0.9),
	)
	p.AddMethod(a1AggSnap,
		prog.CpJ(430, 0.9),
		prog.Lock("aggregator-lock"),
		prog.Rd(a1AggState, "agg"),
		prog.Wr(a1AggState, "agg", 2),
		prog.Cp(80),
		prog.Unlock("aggregator-lock"),
		prog.CpJ(180, 0.9),
	)

	// --- ContinueWith pipeline: serialize then transmit ---
	p.AddMethod(a1Serialize,
		prog.CpJ(260, 0.6),
		prog.Wr("Microsoft.ApplicationInsights.Channel.Serializer::blob", "ser", 1),
		prog.Cp(110),
	)
	p.AddMethod(a1PostSerial,
		prog.Rd("Microsoft.ApplicationInsights.Channel.Serializer::blob", "ser"),
		prog.Cp(130),
	)

	// --- dataflow queue: diagnostics events ---
	p.AddMethod(a1DiagHandler,
		prog.Rd("Microsoft.ApplicationInsights.Extensibility.DiagnosticsQueue::event", "dq"),
		prog.Wr("Microsoft.ApplicationInsights.Extensibility.DiagnosticsQueue::handled", "dq", 1),
		prog.Cp(150),
	)
	p.AddMethod(a1DiagPump,
		prog.RecvQ("diagnostics-queue", a1DiagHandler, "dq"),
		prog.Cp(45),
	)
	p.AddMethod(a1DiagPost,
		prog.CpJ(230, 0.9),
		prog.Wr("Microsoft.ApplicationInsights.Extensibility.DiagnosticsQueue::event", "dq", 3),
		prog.Cp(35),
		prog.PostQ("diagnostics-queue"),
	)

	// --- GetOrAdd-style atomic region over a hidden lock ---
	p.AddMethod(a1CacheDelegate,
		prog.Rd("Microsoft.ApplicationInsights.Metrics.SeriesCache::entries", "sc"),
		prog.Wr("Microsoft.ApplicationInsights.Metrics.SeriesCache::entries", "sc", 1),
		prog.Cp(180),
	)
	p.AddMethod(a1CacheGet,
		prog.HLock("series-cache-lock"),
		prog.Do(a1CacheDelegate, "sc"),
		prog.Cp(60),
		prog.HUnlock("series-cache-lock"),
	)
	p.AddMethod("Microsoft.ApplicationInsights.Metrics.MetricSeries::Resolve",
		prog.CpJ(340, 0.9),
		prog.Do(a1CacheGet, "sc"),
		prog.Cp(70),
	)
	p.AddMethod("Microsoft.ApplicationInsights.Metrics.MetricSeries::ResolveBatch",
		prog.CpJ(490, 0.9),
		prog.Do(a1CacheGet, "sc"),
		prog.Cp(55),
	)

	// --- dispose with late GC ---
	p.AddMethod(a1SinkLast,
		prog.Rd(a1Meta, "sink"),
		prog.Wr(a1Meta, "sink", 1),
		prog.Cp(130),
	)
	p.AddMethod(a1SinkDisp,
		prog.Rd(a1Meta, "sink"),
		prog.Cp(100),
	)

	// --- racy flags ---
	for i, pair := range a1RacyFlags {
		flag, data := pair[0], pair[1]
		writer := flagClass(flag) + "::Start"
		reader := flagClass(flag) + "::Observe"
		p.AddMethod(writer,
			prog.CpJ(300+int64(i)*40, 0.7),
			prog.Wr(data, "rf", int64(i)+1),
			prog.Cp(40),
			prog.Wr(flag, "rf", 1),
		)
		p.AddMethod(reader,
			prog.Spin(flag, "rf", 1, 230+int64(i)*15),
			prog.Rd(data, "rf"),
		)
	}

	// --- unit tests ---
	p.AddTestWithInit("TelemetryTests::BasicStartOperationWithActivity", a1Init,
		prog.Rd(a1Env, ""),
		prog.Cp(180),
	)
	p.AddTestWithInit("TelemetryTests::TrackEventSendsTelemetry", a1Init,
		prog.Rd(a1Env, ""),
		prog.Cp(140),
	)
	p.AddTestWithInit("TelemetryTests::SerializationRoundTrip", a1Init,
		prog.Rd(a1Env, ""),
		prog.Cp(220),
	)
	p.AddTestWithInit("QuickPulseTests::CollectsTopCpuProcesses", a1QPInit,
		prog.Rd("Microsoft.ApplicationInsights.Tests.QuickPulseTests::collector", ""),
		prog.Cp(160),
	)
	p.AddTestWithInit("QuickPulseTests::SubmitsSamples", a1QPInit,
		prog.Rd("Microsoft.ApplicationInsights.Tests.QuickPulseTests::collector", ""),
		prog.Cp(130),
	)
	p.AddTest("MetricAggregatorTests::AddSnapshot_Concurrent",
		prog.Go(prog.ForkThread, a1AggAdd, "agg", "h1"),
		prog.Go(prog.ForkThread, a1AggSnap, "agg", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("SerializerTests::ContinueWith_Pipeline",
		prog.Go(prog.ForkTaskRun, a1Serialize, "ser", "t1"),
		prog.Then("t1", a1PostSerial, "ser", "t2"),
		prog.WaitT("t2"),
	)
	p.AddTest("DiagnosticsTests::Queue_PumpsEvents",
		prog.Go(prog.ForkThread, a1DiagPump, "dq", "hp"),
		prog.Go(prog.ForkThread, a1DiagPost, "dq", "hs"),
		prog.JoinT("hp"), prog.JoinT("hs"),
	)
	p.AddTest("SeriesCacheTests::GetOrAdd_Concurrent",
		prog.Go(prog.ForkThread, "Microsoft.ApplicationInsights.Metrics.MetricSeries::Resolve", "sc", "h1"),
		prog.Go(prog.ForkThread, "Microsoft.ApplicationInsights.Metrics.MetricSeries::ResolveBatch", "sc", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("TelemetryBufferTests::EnqueueDequeue_Concurrent",
		prog.Go(prog.ForkThread, a1Enqueue, "buf", "h1"),
		prog.Go(prog.ForkThread, a1Dequeue, "buf", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("TelemetryBufferTests::TwoProducers",
		prog.Go(prog.ForkThread, a1Enqueue, "buf", "h1"),
		prog.Go(prog.ForkThread, a1Enqueue, "buf", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("InMemoryChannelTests::Flush_Flag",
		prog.Go(prog.ForkThread, "Microsoft.ApplicationInsights.Channel.InMemoryChannel::WaitFlush", "ch", "h1"),
		prog.Go(prog.ForkThread, "Microsoft.ApplicationInsights.Channel.InMemoryChannel::Flush", "ch", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("TelemetrySenderTests::SendLoop_TaskRun",
		prog.Wr(a1Config, "tc", 1),
		prog.Cp(40),
		prog.Go(prog.ForkTaskRun, a1SendLoop, "tc", "t1"),
		prog.WaitT("t1"),
		prog.Rd(a1Sent, "tx"),
	)
	p.AddTest("DiskBackerTests::Persist_Signaled",
		prog.Go(prog.ForkThread, "Microsoft.ApplicationInsights.Channel.DiskBacker::AwaitPersist", "db", "h1"),
		prog.Go(prog.ForkThread, "Microsoft.ApplicationInsights.Channel.DiskBacker::Persist", "db", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("TransmitterTests::Batch_ThreadPool",
		prog.Wr(a1Config, "tc", 2),
		prog.Cp(40),
		prog.Go(prog.ForkThreadPool, a1Transmit, "tc", "h1"),
		prog.Go(prog.ForkThreadPool, "Microsoft.ApplicationInsights.Channel.Transmitter::AwaitBatch", "tx", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("TransmitterTests::Notify_Hidden",
		prog.Go(prog.ForkThread, "Microsoft.ApplicationInsights.Channel.Transmitter::ConsumeBatch", "tx", "h1"),
		prog.Go(prog.ForkThread, "Microsoft.ApplicationInsights.Channel.Transmitter::FinishBatch", "tx", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("EventSourceTests::Flush_Hidden",
		prog.Go(prog.ForkThread, "Microsoft.ApplicationInsights.Extensibility.RichPayloadEventSource::Drain", "eps", "h1"),
		prog.Go(prog.ForkThread, "Microsoft.ApplicationInsights.Extensibility.RichPayloadEventSource::Write", "eps", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("DisposableSinkTests::Dispose_LateGC",
		prog.Do(a1SinkLast, "sink"),
		prog.GC("sink", a1SinkDisp, 2_200_000), // beyond Near
		prog.Cp(100),
	)
	// Each racy-flag test begins with a Task.Run configuration handoff —
	// a happens-before edge the manual annotation list does not know, so
	// Manual_dr's first report in these runs is a false race on the
	// handoff field, masking the true flag race (the paper's Table 3
	// masking effect).
	for i, pair := range a1RacyFlags {
		flag := pair[0]
		p.AddTest(flagClass(flag)+"Tests::Flag_"+string(rune('A'+i)),
			prog.Wr(a1Config, "tc", int64(i)),
			prog.Cp(40),
			prog.Go(prog.ForkTaskRun, a1SendLoop, "tc", "t0"),
			prog.Go(prog.ForkThread, flagClass(flag)+"::Observe", "rf", "h1"),
			prog.Go(prog.ForkThread, flagClass(flag)+"::Start", "rf", "h2"),
			prog.WaitT("t0"), prog.JoinT("h1"), prog.JoinT("h2"),
		)
	}

	// Plain unsynchronized counter races: SherLock never mistakes these
	// for synchronization (all-write windows are data-race observations),
	// so SherLock_dr reports them as its first race, while Manual_dr is
	// already stuck on the earlier handoff false positive.
	p.AddMethod("Microsoft.ApplicationInsights.Metrics.CounterA::Bump",
		prog.CpJ(200, 0.6),
		prog.Wr("Microsoft.ApplicationInsights.Metrics.CounterA::hits", "pc", 1),
	)
	p.AddMethod("Microsoft.ApplicationInsights.Metrics.CounterB::Bump",
		prog.CpJ(200, 0.6),
		prog.Wr("Microsoft.ApplicationInsights.Metrics.CounterB::misses", "pc", 1),
	)
	plainRace := func(name, method string) {
		p.AddTest(name,
			prog.Wr(a1Config, "tc", 9),
			prog.Cp(40),
			prog.Go(prog.ForkTaskRun, a1SendLoop, "tc", "t0"),
			prog.Go(prog.ForkThread, method, "pc", "h1"),
			prog.Go(prog.ForkThread, method, "pc", "h2"),
			prog.WaitT("t0"), prog.JoinT("h1"), prog.JoinT("h2"),
		)
	}
	plainRace("MetricsTests::CounterA_Unsynchronized", "Microsoft.ApplicationInsights.Metrics.CounterA::Bump")
	plainRace("MetricsTests::CounterB_Unsynchronized", "Microsoft.ApplicationInsights.Metrics.CounterB::Bump")

	// --- ground truth ---
	p.Volatile[a1FlushFlag] = true
	p.Truth.Sync(prog.EK(a1Init), trace.RoleRelease)
	p.Truth.Sync(prog.BK("TelemetryTests::BasicStartOperationWithActivity"), trace.RoleAcquire)
	p.Truth.Sync(prog.BK("TelemetryTests::TrackEventSendsTelemetry"), trace.RoleAcquire)
	p.Truth.Sync(prog.BK("TelemetryTests::SerializationRoundTrip"), trace.RoleAcquire)
	p.Truth.Sync(prog.BK(prog.APIMonitorEnter), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(prog.APIMonitorExit), trace.RoleRelease)
	p.Truth.Sync(prog.WK(a1FlushFlag), trace.RoleRelease)
	p.Truth.Sync(prog.RK(a1FlushFlag), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(prog.ForkTaskRun.APIName()), trace.RoleRelease)
	p.Truth.Sync(prog.EK(prog.ForkThreadPool.APIName()), trace.RoleRelease)
	p.Truth.Sync(prog.BK(a1SendLoop), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(a1SendLoop), trace.RoleRelease)
	p.Truth.Sync(prog.EK(prog.APISemSet), trace.RoleRelease)
	p.Truth.Sync(prog.BK(prog.APISemWait), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(a1Transmit), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(a1Transmit), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(prog.JoinTask.APIName()), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(prog.JoinThread.APIName()), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(prog.ForkThread.APIName()), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(a1Enqueue), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(a1Dequeue), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("Microsoft.ApplicationInsights.Channel.Transmitter::AwaitBatch"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("Microsoft.ApplicationInsights.Channel.DiskBacker::AwaitPersist"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK("Microsoft.ApplicationInsights.Channel.DiskBacker::Persist"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.WK("Microsoft.ApplicationInsights.Channel.DiskBacker::persisted"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.RK("Microsoft.ApplicationInsights.Channel.DiskBacker::persisted"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.WK(a1Sent), trace.RoleRelease)
	p.Truth.SyncAlt(prog.RK(a1Sent), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("Microsoft.ApplicationInsights.Channel.InMemoryChannel::WaitFlush"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("Microsoft.ApplicationInsights.Channel.Transmitter::ConsumeBatch"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("Microsoft.ApplicationInsights.Extensibility.RichPayloadEventSource::Drain"), trace.RoleAcquire)

	// New components' ground truth.
	p.Truth.Sync(prog.EK(a1QPInit), trace.RoleRelease)
	p.Truth.Sync(prog.BK("QuickPulseTests::CollectsTopCpuProcesses"), trace.RoleAcquire)
	p.Truth.Sync(prog.BK("QuickPulseTests::SubmitsSamples"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(a1AggAdd), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(a1AggSnap), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(a1Serialize), trace.RoleRelease)
	p.Truth.Sync(prog.BK(a1PostSerial), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(a1PostSerial), trace.RoleRelease)
	p.Truth.SyncAlt(prog.EK(prog.APIContinueWith), trace.RoleRelease)
	p.Truth.SyncAlt(prog.EK(prog.APIPost), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(prog.APIReceive), trace.RoleAcquire)
	p.Truth.Sync(prog.BK(a1DiagHandler), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(a1DiagPost), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(a1DiagPump), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(a1CacheDelegate), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(a1CacheDelegate), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(a1CacheGet), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(a1CacheGet), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("Microsoft.ApplicationInsights.Metrics.MetricSeries::Resolve"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("Microsoft.ApplicationInsights.Metrics.MetricSeries::ResolveBatch"), trace.RoleAcquire)

	// Instrumentation errors: hidden helpers.
	p.Truth.HiddenMethods[a1NotifyA] = true
	p.Truth.HiddenMethods[a1NotifyB] = true
	p.Truth.Sync(prog.EK(a1NotifyA), trace.RoleRelease)
	p.Truth.Sync(prog.EK(a1NotifyB), trace.RoleRelease)
	p.Truth.Category[prog.EK(a1NotifyA)] = prog.CatInstrError
	p.Truth.Category[prog.EK(a1NotifyB)] = prog.CatInstrError
	p.Truth.Category[prog.EK("Microsoft.ApplicationInsights.Channel.Transmitter::FinishBatch")] = prog.CatInstrError
	p.Truth.Category[prog.EK("Microsoft.ApplicationInsights.Extensibility.RichPayloadEventSource::Write")] = prog.CatInstrError
	p.Truth.Category[prog.WK(a1Outcome)] = prog.CatInstrError
	p.Truth.Category[prog.WK(a1Payload)] = prog.CatInstrError
	p.Truth.Category[prog.RK("Microsoft.ApplicationInsights.Channel.Transmitter::state")] = prog.CatInstrError
	p.Truth.Category[prog.WK("Microsoft.ApplicationInsights.Channel.Transmitter::state")] = prog.CatInstrError
	p.Truth.Category[prog.RK("Microsoft.ApplicationInsights.Extensibility.RichPayloadEventSource::state")] = prog.CatInstrError
	p.Truth.Category[prog.WK("Microsoft.ApplicationInsights.Extensibility.RichPayloadEventSource::state")] = prog.CatInstrError

	// Dispose bucket.
	p.Truth.Sync(prog.EK(a1SinkLast), trace.RoleRelease)
	p.Truth.Sync(prog.BK(a1SinkDisp), trace.RoleAcquire)
	p.Truth.Category[prog.EK(a1SinkLast)] = prog.CatDispose
	p.Truth.Category[prog.BK(a1SinkDisp)] = prog.CatDispose
	p.Truth.Category[prog.RK(a1Meta)] = prog.CatDispose
	p.Truth.Category[prog.WK(a1Meta)] = prog.CatDispose

	// The five racy flags and the two unsynchronized counters.
	for _, pair := range a1RacyFlags {
		p.Truth.Race(pair[0])
	}
	p.Truth.Race("Microsoft.ApplicationInsights.Metrics.CounterA::hits")
	p.Truth.Race("Microsoft.ApplicationInsights.Metrics.CounterB::misses")
	return p
}

// flagClass returns the class part of a field name.
func flagClass(field string) string {
	for i := 0; i+1 < len(field); i++ {
		if field[i] == ':' && field[i+1] == ':' {
			return field[:i]
		}
	}
	return field
}
