// App-2: DataTimeExtention (paper Table 1: 3.1K LoC, 335 stars, 219 tests).
//
// Synchronization idioms reproduced (paper Table 9):
//   - ConcurrentLazyDictionary.GetOrAdd — an atomic region guarded by a
//     lock hidden inside uninstrumented framework code. SherLock infers the
//     region's boundaries (GetOrAdd begin/end) and the delegate's
//     begin/end, never seeing the lock (paper Figure 3.C).
//   - EasterCalculator static constructor — language-enforced ordering
//     between .cctor completion and the first access
//     (CalculateEasterDate-Begin is the inferred acquire).
//   - ChristianHolidays::ascension — a volatile flag written by the
//     computing thread and awaited by readers.
package apps

import (
	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

// Class and member names mirrored from the paper's Table 9.
const (
	a2Dict      = "App.Common.ConcurrentLazyDictionary::GetOrAdd"
	a2Delegate  = "App.WorkingDays.HolidayProvider::ComputeHolidays"
	a2Cctor     = "App.WorkingDays.EasterBasedHoliday.EasterCalculator::.cctor"
	a2Calc      = "App.WorkingDays.EasterBasedHoliday.EasterCalculator::CalculateEasterDate"
	a2Precomp   = "App.WorkingDays.EasterBasedHoliday.EasterCalculator::PrecomputeRange"
	a2Ascension = "App.WorkingDays.ChristianHolidays::ascension"
	a2AscData   = "App.WorkingDays.ChristianHolidays::ascensionDate"
	a2Table     = "App.WorkingDays.EasterBasedHoliday.EasterCalculator::lookupTable"
	a2Cache     = "App.Common.ConcurrentLazyDictionary::cache"
)

// App2 constructs the application.
func App2() *prog.Program {
	p := prog.New("App-2", "DataTimeExtention")
	p.LoC, p.Stars, p.PaperTests = 3_100, 335, 219

	// --- ConcurrentLazyDictionary: GetOrAdd atomic region (hidden lock)
	// running a visible application delegate (Figure 3.C). The shared
	// cache field is touched early so late arrivals' delegate entries land
	// inside the acquire windows.
	p.AddMethod(a2Delegate,
		prog.Rd(a2Cache, "dict"),
		prog.Wr(a2Cache, "dict", 1),
		prog.Cp(250),
	)
	p.AddMethod(a2Dict,
		prog.HLock("lazy-dict"),
		prog.Do(a2Delegate, "dict"),
		prog.Cp(80),
		prog.HUnlock("lazy-dict"),
	)
	p.AddMethod("App.WorkingDays.HolidayProvider::LoadYear",
		prog.CpJ(350, 0.9),
		prog.Do(a2Dict, "dict"),
		prog.Cp(80),
	)
	p.AddMethod("App.WorkingDays.HolidayProvider::LoadRange",
		prog.CpJ(500, 0.9),
		prog.Do(a2Dict, "dict"),
		prog.Cp(60),
	)

	// --- EasterCalculator: static constructor + first access. The table
	// is published early in a long-running constructor, so method entries
	// of threads arriving mid-construction are observed inside the
	// acquire windows.
	p.AddMethod(a2Cctor,
		prog.Wr(a2Table, "", 1),
		prog.Cp(700),
	)
	p.AddMethod(a2Calc,
		prog.CpJ(300, 0.95),
		prog.StaticInit("EasterCalculator", a2Cctor),
		prog.Rd(a2Table, ""),
		prog.Cp(150),
	)
	p.AddMethod(a2Precomp,
		prog.CpJ(700, 0.9),
		prog.StaticInit("EasterCalculator", a2Cctor),
		prog.Rd(a2Table, ""),
		prog.Rep(2, prog.Cp(90), prog.Rd(a2Table, "")),
	)

	// --- ChristianHolidays: volatile flag, spin-wait consumer ---
	p.AddMethod("App.WorkingDays.ChristianHolidays::ComputeAscension",
		prog.CpJ(400, 0.6),
		prog.Wr(a2AscData, "ch", 40),
		prog.Cp(50),
		prog.Wr(a2Ascension, "ch", 1),
	)
	p.AddMethod("App.WorkingDays.ChristianHolidays::IsHoliday",
		prog.Spin(a2Ascension, "ch", 1, 220),
		prog.Cp(40),
		prog.Rd(a2AscData, "ch"),
	)

	// --- unit tests ---
	p.AddTest("Tests::GetOrAdd_Concurrent",
		prog.Go(prog.ForkThread, "App.WorkingDays.HolidayProvider::LoadYear", "dict", "h1"),
		prog.Go(prog.ForkThread, "App.WorkingDays.HolidayProvider::LoadRange", "dict", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("Tests::GetOrAdd_Repeated",
		prog.Go(prog.ForkThread, "App.WorkingDays.HolidayProvider::LoadYear", "dict", "h1"),
		prog.Go(prog.ForkThread, "App.WorkingDays.HolidayProvider::LoadYear", "dict", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("Tests::Easter_Concurrent",
		prog.Go(prog.ForkThread, a2Calc, "", "h1"),
		prog.Go(prog.ForkThread, a2Precomp, "", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("Tests::Easter_ManyReaders",
		prog.Go(prog.ForkThread, a2Calc, "", "h1"),
		prog.Go(prog.ForkThread, a2Calc, "", "h2"),
		prog.Go(prog.ForkThread, a2Precomp, "", "h3"),
		prog.JoinT("h1"), prog.JoinT("h2"), prog.JoinT("h3"),
	)
	p.AddTest("Tests::Ascension_Flag",
		prog.Go(prog.ForkThread, "App.WorkingDays.ChristianHolidays::IsHoliday", "ch", "h1"),
		prog.Go(prog.ForkThread, "App.WorkingDays.ChristianHolidays::ComputeAscension", "ch", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)

	// --- ground truth (paper: 6 syncs, no misclassification sources) ---
	p.Volatile[a2Ascension] = true
	p.Truth.SyncAlt(prog.EK(a2Dict), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(a2Dict), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(a2Delegate), trace.RoleRelease)
	p.Truth.Sync(prog.BK(a2Delegate), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(a2Cctor), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(a2Calc), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(a2Precomp), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.RK(a2Table), trace.RoleAcquire)
	p.Truth.Sync(prog.WK(a2Ascension), trace.RoleRelease)
	p.Truth.Sync(prog.RK(a2Ascension), trace.RoleAcquire)
	p.Truth.Category[prog.EK(a2Cctor)] = prog.CatStaticCtor
	p.Truth.Category[prog.BK(a2Calc)] = prog.CatStaticCtor
	p.Truth.Category[prog.BK(a2Precomp)] = prog.CatStaticCtor
	p.Truth.Category[prog.RK(a2Table)] = prog.CatStaticCtor
	return p
}
