// App-3: FluentAssertion (paper Table 1: 78.1K LoC, 1886 stars, 3729
// tests).
//
// Synchronization idioms reproduced (paper Table 8):
//   - AssertionScope static constructor ordering.
//   - Monitor Enter/Exit guarding the current scope.
//   - Task.Run forking test delegates that read shared options.
//   - ExecutionTime::isRunning — volatile flag between the measuring
//     thread and the measured action.
//   - Two instrumentation errors (paper Table 2): the Observer hides two
//     helper methods whose exits are real releases.
package apps

import (
	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

const (
	a3Cctor      = "FluentAssertions.Execution.AssertionScope::.cctor"
	a3Current    = "FluentAssertions.Execution.AssertionScope::current"
	a3Defaults   = "FluentAssertions.Execution.AssertionScope::defaults"
	a3GetScope   = "FluentAssertions.Execution.AssertionScope::GetCurrentScope"
	a3SetScope   = "FluentAssertions.Execution.AssertionScope::SetScope"
	a3Running    = "FluentAssertions.Specialized.ExecutionTime::isRunning"
	a3Elapsed    = "FluentAssertions.Specialized.ExecutionTime::elapsed"
	a3Strategy   = "AssertionOptionsSpecs::equivalencyStrategy"
	a3Delegate   = "AssertionOptionsSpecs::When_concurrently_getting_equality_strategy_b2"
	a3PubA       = "FluentAssertions.Execution.TestFramework::PublishOutcome" // hidden
	a3PubB       = "FluentAssertions.Formatting.Formatter::SealFormatters"    // hidden
	a3Outcome    = "FluentAssertions.Execution.TestFramework::outcome"
	a3Formatters = "FluentAssertions.Formatting.Formatter::formatters"
)

// App3 constructs the application.
func App3() *prog.Program {
	p := prog.New("App-3", "FluentAssertion")
	p.LoC, p.Stars, p.PaperTests = 78_100, 1886, 3729

	// --- static constructor + scope users ---
	p.AddMethod(a3Cctor,
		prog.Wr(a3Defaults, "", 1),
		prog.Cp(650),
	)
	p.AddMethod(a3GetScope,
		prog.Rd("FluentAssertions.Execution.AssertionScope::parent", ""),
		prog.CpJ(120, 0.8),
		prog.StaticInit("AssertionScope", a3Cctor),
		prog.Rd(a3Defaults, ""),
		prog.CpJ(300, 0.95), // stagger after class init so lock arrivals mix
		prog.Lock("scope-lock"),
		prog.Rd(a3Current, ""),
		prog.Cp(90),
		prog.Unlock("scope-lock"),
		prog.CpJ(150, 0.9),
	)
	p.AddMethod(a3SetScope,
		prog.Rd("FluentAssertions.Execution.AssertionScope::parent", ""),
		prog.CpJ(180, 0.8),
		prog.StaticInit("AssertionScope", a3Cctor),
		prog.Rd(a3Defaults, ""),
		prog.CpJ(450, 0.95),
		prog.Lock("scope-lock"),
		prog.Wr(a3Current, "", 2),
		prog.Cp(120),
		prog.Unlock("scope-lock"),
		prog.CpJ(180, 0.9),
	)

	// --- lock-free static-init user (pins the .cctor release) ---
	p.AddMethod("FluentAssertions.Execution.AssertionScope::GetDefaultFormatter",
		prog.Rd("FluentAssertions.Execution.AssertionScope::parent", ""),
		prog.CpJ(200, 0.95),
		prog.StaticInit("AssertionScope", a3Cctor),
		prog.Rd(a3Defaults, ""),
		prog.Rep(2, prog.Cp(80), prog.Rd(a3Defaults, "")),
	)

	// --- static-ctor pairing failure (Table 4's "Static Ctr." bucket):
	// the constructor publishes a registry and sets a loaded-flag as its
	// last write. The flag write/read pair covers every window more
	// cheaply than the constructor's exit, so SherLock tags the flag — the
	// paper's "failure to identify the release pair for static
	// constructors" — and the true release (.cctor-End) goes missing.
	p.AddMethod("FluentAssertions.Equivalency.EquivalencyValidator::.cctor",
		prog.Wr("FluentAssertions.Equivalency.EquivalencyValidator::steps", "", 1),
		prog.Cp(550),
		prog.Wr("FluentAssertions.Equivalency.EquivalencyValidator::loaded", "", 1),
	)
	p.AddMethod("FluentAssertions.Equivalency.EquivalencyValidator::Validate",
		prog.CpJ(250, 0.95),
		prog.StaticInit("EquivalencyValidator", "FluentAssertions.Equivalency.EquivalencyValidator::.cctor"),
		prog.Rd("FluentAssertions.Equivalency.EquivalencyValidator::loaded", ""),
		prog.Rd("FluentAssertions.Equivalency.EquivalencyValidator::steps", ""),
		prog.Cp(140),
	)

	// --- Task.Run fork: concurrent strategy readers ---
	p.AddMethod(a3Delegate,
		prog.CpJ(120, 0.8),
		prog.Rd(a3Strategy, "opt"),
		prog.Cp(140),
	)

	// --- ExecutionTime volatile flag ---
	p.AddMethod("FluentAssertions.Specialized.ExecutionTime::Measure",
		prog.CpJ(350, 0.7),
		prog.Wr(a3Elapsed, "et", 12),
		prog.Cp(50),
		prog.Wr(a3Running, "et", 1),
	)
	p.AddMethod("FluentAssertions.Specialized.ExecutionTime::Poll",
		prog.Spin(a3Running, "et", 1, 260),
		prog.Rd(a3Elapsed, "et"),
	)

	// --- hidden helpers (instrumentation errors) ---
	p.AddMethod(a3PubA, // hidden: exit is the real release
		prog.Cp(40),
		prog.HSignal("outcome-published"),
	)
	p.AddMethod("FluentAssertions.Execution.TestFramework::RecordOutcome",
		prog.CpJ(260, 0.7),
		prog.Wr(a3Outcome, "tf", 1),
		prog.Cp(40),
		prog.Wr("FluentAssertions.Execution.TestFramework::state", "tf", 1),
		prog.Do(a3PubA, "tf"),
		prog.Cp(70),
	)
	p.AddMethod("FluentAssertions.Execution.TestFramework::ConsumeOutcome",
		prog.CpJ(400, 0.95),
		prog.HWait("outcome-published"),
		prog.Rd("FluentAssertions.Execution.TestFramework::state", "tf"),
		prog.Cp(35),
		prog.Rd(a3Outcome, "tf"),
	)
	p.AddMethod(a3PubB, // hidden: exit is the real release
		prog.Cp(30),
		prog.HSignal("formatters-sealed"),
	)
	p.AddMethod("FluentAssertions.Formatting.Formatter::RegisterAll",
		prog.CpJ(240, 0.7),
		prog.Wr(a3Formatters, "fm", 1),
		prog.Cp(35),
		prog.Wr("FluentAssertions.Formatting.Formatter::sealed", "fm", 1),
		prog.Do(a3PubB, "fm"),
		prog.Cp(60),
	)
	p.AddMethod("FluentAssertions.Formatting.Formatter::Format",
		prog.CpJ(380, 0.95),
		prog.HWait("formatters-sealed"),
		prog.Rd("FluentAssertions.Formatting.Formatter::sealed", "fm"),
		prog.Cp(30),
		prog.Rd(a3Formatters, "fm"),
	)

	// --- unit tests ---
	p.AddTest("AssertionScopeSpecs::Scope_Concurrent",
		prog.Go(prog.ForkThread, a3GetScope, "", "h1"),
		prog.Go(prog.ForkThread, a3SetScope, "", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("AssertionScopeSpecs::Scope_ManyReaders",
		prog.Go(prog.ForkThread, a3GetScope, "", "h1"),
		prog.Go(prog.ForkThread, a3GetScope, "", "h2"),
		prog.Go(prog.ForkThread, a3SetScope, "", "h3"),
		prog.JoinT("h1"), prog.JoinT("h2"), prog.JoinT("h3"),
	)
	p.AddTest("AssertionScopeSpecs::DefaultFormatter_Concurrent",
		prog.Go(prog.ForkThread, "FluentAssertions.Execution.AssertionScope::GetDefaultFormatter", "", "h1"),
		prog.Go(prog.ForkThread, "FluentAssertions.Execution.AssertionScope::GetDefaultFormatter", "", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("EquivalencySpecs::Validate_Concurrent",
		prog.Go(prog.ForkThread, "FluentAssertions.Equivalency.EquivalencyValidator::Validate", "", "h1"),
		prog.Go(prog.ForkThread, "FluentAssertions.Equivalency.EquivalencyValidator::Validate", "", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("AssertionOptionsSpecs::When_concurrently_getting_equality_strategy",
		prog.Wr(a3Strategy, "opt", 3),
		prog.Cp(40),
		prog.Go(prog.ForkTaskRun, a3Delegate, "opt", "t1"),
		prog.Go(prog.ForkTaskRun, a3Delegate, "opt", "t2"),
		prog.WaitT("t1"), prog.WaitT("t2"),
	)
	p.AddTest("ExecutionTimeSpecs::IsRunning_Flag",
		prog.Go(prog.ForkThread, "FluentAssertions.Specialized.ExecutionTime::Poll", "et", "h1"),
		prog.Go(prog.ForkThread, "FluentAssertions.Specialized.ExecutionTime::Measure", "et", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("ExecutionSpecs::Outcome_Publish",
		prog.Go(prog.ForkThread, "FluentAssertions.Execution.TestFramework::ConsumeOutcome", "tf", "h1"),
		prog.Go(prog.ForkThread, "FluentAssertions.Execution.TestFramework::RecordOutcome", "tf", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("FormatterSpecs::Seal_Concurrent",
		prog.Go(prog.ForkThread, "FluentAssertions.Formatting.Formatter::Format", "fm", "h1"),
		prog.Go(prog.ForkThread, "FluentAssertions.Formatting.Formatter::RegisterAll", "fm", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)

	// --- ground truth (paper: 8 syncs, 2 instr errors) ---
	p.Volatile[a3Running] = true
	p.Truth.Sync(prog.EK(a3Cctor), trace.RoleRelease)
	p.Truth.Sync(prog.BK(prog.APIMonitorEnter), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(prog.APIMonitorExit), trace.RoleRelease)
	p.Truth.Sync(prog.EK(prog.ForkTaskRun.APIName()), trace.RoleRelease)
	p.Truth.Sync(prog.BK(a3Delegate), trace.RoleAcquire)
	p.Truth.Sync(prog.WK(a3Running), trace.RoleRelease)
	p.Truth.Sync(prog.RK(a3Running), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(a3Delegate), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(prog.JoinTask.APIName()), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(prog.JoinThread.APIName()), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(prog.ForkThread.APIName()), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(a3GetScope), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(a3SetScope), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.RK(a3Defaults), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("FluentAssertions.Execution.AssertionScope::GetDefaultFormatter"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("FluentAssertions.Execution.TestFramework::ConsumeOutcome"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("FluentAssertions.Formatting.Formatter::Format"), trace.RoleAcquire)

	// Static-ctor bucket: the loaded-flag pair is tagged instead of the
	// constructor's exit.
	p.Truth.Sync(prog.EK("FluentAssertions.Equivalency.EquivalencyValidator::.cctor"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK("FluentAssertions.Equivalency.EquivalencyValidator::Validate"), trace.RoleAcquire)
	p.Truth.Category[prog.EK("FluentAssertions.Equivalency.EquivalencyValidator::.cctor")] = prog.CatStaticCtor
	p.Truth.Category[prog.BK("FluentAssertions.Equivalency.EquivalencyValidator::Validate")] = prog.CatStaticCtor
	p.Truth.Category[prog.WK("FluentAssertions.Equivalency.EquivalencyValidator::loaded")] = prog.CatStaticCtor
	p.Truth.Category[prog.RK("FluentAssertions.Equivalency.EquivalencyValidator::loaded")] = prog.CatStaticCtor
	p.Truth.Category[prog.RK("FluentAssertions.Equivalency.EquivalencyValidator::steps")] = prog.CatStaticCtor

	// Instrumentation errors: two hidden helpers.
	p.Truth.HiddenMethods[a3PubA] = true
	p.Truth.HiddenMethods[a3PubB] = true
	p.Truth.Sync(prog.EK(a3PubA), trace.RoleRelease)
	p.Truth.Sync(prog.EK(a3PubB), trace.RoleRelease)
	p.Truth.Category[prog.EK(a3PubA)] = prog.CatInstrError
	p.Truth.Category[prog.EK(a3PubB)] = prog.CatInstrError
	p.Truth.Category[prog.EK("FluentAssertions.Execution.TestFramework::RecordOutcome")] = prog.CatInstrError
	p.Truth.Category[prog.EK("FluentAssertions.Formatting.Formatter::RegisterAll")] = prog.CatInstrError
	p.Truth.Category[prog.WK(a3Outcome)] = prog.CatInstrError
	p.Truth.Category[prog.WK(a3Formatters)] = prog.CatInstrError
	p.Truth.Category[prog.RK("FluentAssertions.Execution.TestFramework::state")] = prog.CatInstrError
	p.Truth.Category[prog.WK("FluentAssertions.Execution.TestFramework::state")] = prog.CatInstrError
	p.Truth.Category[prog.RK("FluentAssertions.Formatting.Formatter::sealed")] = prog.CatInstrError
	p.Truth.Category[prog.WK("FluentAssertions.Formatting.Formatter::sealed")] = prog.CatInstrError
	return p
}
