// App-4: K8s-client / KubernetesClient (paper Table 1: 332.4K LoC, 395
// stars, 139 tests).
//
// Synchronization idioms reproduced (paper Table 9):
//   - ByteBuffer::endOfFile — the paper's flagship flag synchronization
//     (Figure 3.B): the writer flushes and sets the volatile flag; the
//     reader spins on it.
//   - Monitor Enter/Exit guarding the ByteBuffer.
//   - Await chains: asynchronous config loading whose completion
//     (LoadKubeConfigAsync-End) releases and whose TaskAwaiter.GetResult
//     acquires.
//   - KubernetesException::Status — a volatile error flag.
//   - One instrumentation error (paper Table 2: 1 Instr. Error): the
//     Observer's skip-list heuristics hide Watcher::NotifyDone, whose exit
//     is the real release; SherLock hones in on the neighborhood and tags
//     the enclosing method's exit instead.
package apps

import (
	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

const (
	a4EOF       = "k8s.ByteBuffer::endOfFile"
	a4Data      = "k8s.ByteBuffer::buffer"
	a4Write     = "k8s.ByteBuffer::Write"
	a4Read      = "k8s.ByteBuffer::Read"
	a4Size      = "k8s.ByteBuffer::size"
	a4LoadAsync = "k8s.KubernetesClientConfiguration::LoadKubeConfigAsync"
	a4Merge     = "k8s.KubernetesClientConfiguration::MergeKubeConfig"
	a4Config    = "k8s.KubernetesClientConfiguration::config"
	a4Status    = "k8s.KubernetesException::Status"
	a4ErrData   = "k8s.KubernetesException::message"
	a4Notify    = "k8s.Watcher::NotifyDone" // hidden by instrumentation errors
	a4WatchRun  = "k8s.Watcher::RunWatch"
	a4AwaitDone = "k8s.Watcher::AwaitDone"
	a4Payload   = "k8s.Watcher::payload"
)

// App4 constructs the application.
func App4() *prog.Program {
	p := prog.New("App-4", "K8s-client")
	p.LoC, p.Stars, p.PaperTests = 332_400, 395, 139

	// --- ByteBuffer: endOfFile flag (Figure 3.B) ---
	p.AddMethod("k8s.StreamDemuxer::FlushToFile",
		prog.CpJ(500, 0.7),
		prog.Wr(a4Data, "buf", 9),
		prog.Cp(70),
		prog.Wr(a4EOF, "buf", 1),
		prog.Cp(30),
		prog.Wr("k8s.StreamDemuxer::flushStats", "buf", 1),
	)
	p.AddMethod("k8s.StreamDemuxer::WaitForFile",
		prog.Spin(a4EOF, "buf", 1, 250),
		prog.Cp(25),
		prog.Rd("k8s.StreamDemuxer::flushStats", "buf"),
		prog.Cp(40),
		prog.Rd(a4Data, "buf"),
	)

	// --- ByteBuffer: monitor-protected Write/Read ---
	p.AddMethod(a4Write,
		prog.CpJ(300, 0.9),
		prog.Lock("bytebuffer-lock"),
		prog.Rd(a4Size, "buf"),
		prog.Wr(a4Size, "buf", 1),
		prog.Cp(110),
		prog.Unlock("bytebuffer-lock"),
		prog.CpJ(200, 0.9),
	)
	p.AddMethod(a4Read,
		prog.CpJ(450, 0.9),
		prog.Lock("bytebuffer-lock"),
		prog.Rd(a4Size, "buf"),
		prog.Wr(a4Size, "buf", -1),
		prog.Cp(90),
		prog.Unlock("bytebuffer-lock"),
		prog.CpJ(150, 0.9),
	)

	// --- await chain: async config load + GetResult ---
	p.AddMethod(a4LoadAsync,
		prog.CpJ(400, 0.6),
		prog.Wr(a4Config, "cfg", 1),
		prog.Cp(80),
	)
	p.AddMethod(a4Merge,
		prog.Rd(a4Config, "cfg"),
		prog.Cp(200),
		prog.Wr(a4Config, "cfg", 2),
	)
	// Second await context: YAML parsing.
	p.AddMethod("k8s.Yaml::LoadFromString",
		prog.CpJ(350, 0.6),
		prog.Wr("k8s.Yaml::document", "yml", 1),
		prog.Cp(70),
	)
	p.AddMethod("k8s.KubernetesClientConfiguration::GetKubernetesClientConfiguration",
		prog.Rd("k8s.Yaml::document", "yml"),
		prog.Cp(160),
	)

	// --- third await context: JSON status-view conversion (Table 9's
	// "V1StatusObjectViewConverter::ReadJson-End — end of await task") ---
	p.AddMethod("k8s.Models.V1Status.V1StatusObjectViewConverter::ReadJson",
		prog.CpJ(320, 0.6),
		prog.Wr("k8s.Models.V1Status::view", "st", 1),
		prog.Cp(60),
	)
	p.AddMethod("k8s.Models.V1Status::AsObjectView",
		prog.Rd("k8s.Models.V1Status::view", "st"),
		prog.Cp(140),
	)

	// --- volatile error flag ---
	p.AddMethod("k8s.WatchLoop::Fail",
		prog.CpJ(300, 0.7),
		prog.Wr(a4ErrData, "exc", 5),
		prog.Cp(40),
		prog.Wr(a4Status, "exc", 1),
	)
	p.AddMethod("k8s.WatchLoop::CheckError",
		prog.Spin(a4Status, "exc", 1, 230),
		prog.Rd(a4ErrData, "exc"),
	)

	// --- MuxedStream: demuxer feeds per-channel streams over a queue ---
	p.AddMethod("k8s.MuxedStream::Read",
		prog.CpJ(360, 0.95),
		prog.RecvAs("k8s.MuxedStream::ReadFrame", "mux-frames"),
		prog.Cp(40),
		prog.Rd("k8s.MuxedStream::frame", "mux"),
	)
	p.AddMethod("k8s.StreamDemuxer::PumpFrames",
		prog.CpJ(240, 0.8),
		prog.Wr("k8s.MuxedStream::frame", "mux", 5),
		prog.Cp(35),
		prog.PostAs("k8s.StreamDemuxer::WriteFrame", "mux-frames"),
	)
	// Second context for the same frame APIs: the error channel.
	p.AddMethod("k8s.MuxedStream::ReadErrors",
		prog.CpJ(410, 0.95),
		prog.RecvAs("k8s.MuxedStream::ReadFrame", "mux-errors"),
		prog.Cp(30),
		prog.Rd("k8s.MuxedStream::errFrame", "mux"),
	)
	p.AddMethod("k8s.StreamDemuxer::PumpErrors",
		prog.CpJ(280, 0.8),
		prog.Wr("k8s.MuxedStream::errFrame", "mux", 6),
		prog.Cp(30),
		prog.PostAs("k8s.StreamDemuxer::WriteFrame", "mux-errors"),
	)

	// --- instrumentation-error pattern: NotifyDone is hidden ---
	p.AddMethod(a4Notify, // hidden: its exit is the true release
		prog.Cp(50),
		prog.HSignal("watch-done"),
		prog.Cp(30),
	)
	p.AddMethod(a4WatchRun,
		prog.CpJ(280, 0.7),
		prog.Wr(a4Payload, "w", 3),
		prog.Cp(35),
		prog.Wr("k8s.Watcher::state", "w", 1),
		prog.Do(a4Notify, "w"),
		prog.Cp(60),
	)
	p.AddMethod(a4AwaitDone,
		prog.CpJ(420, 0.95),
		prog.HWait("watch-done"),
		prog.Rd("k8s.Watcher::state", "w"),
		prog.Cp(30),
		prog.Rd(a4Payload, "w"),
	)

	// --- unit tests ---
	p.AddTest("KubernetesClientTests::ByteBuffer_EndOfFile",
		prog.Go(prog.ForkThread, "k8s.StreamDemuxer::WaitForFile", "buf", "h1"),
		prog.Go(prog.ForkThread, "k8s.StreamDemuxer::FlushToFile", "buf", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("KubernetesClientTests::ByteBuffer_ReadWrite",
		prog.Go(prog.ForkThread, a4Write, "buf", "h1"),
		prog.Go(prog.ForkThread, a4Read, "buf", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("KubernetesClientTests::ByteBuffer_TwoWriters",
		prog.Go(prog.ForkThread, a4Write, "buf", "h1"),
		prog.Go(prog.ForkThread, a4Write, "buf", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("KubernetesClientTests::KubeConfig_Await",
		prog.HGo(a4LoadAsync, "cfg", "t1"),
		prog.Cp(100),
		prog.Await("t1"),
		prog.Do(a4Merge, "cfg"),
	)
	p.AddTest("KubernetesClientTests::KubeConfig_AwaitLate",
		prog.HGo(a4LoadAsync, "cfg", "t1"),
		prog.Cp(900),
		prog.Await("t1"),
		prog.Do(a4Merge, "cfg"),
	)
	p.AddTest("KubernetesClientTests::Yaml_Await",
		prog.HGo("k8s.Yaml::LoadFromString", "yml", "ty"),
		prog.Cp(120),
		prog.Await("ty"),
		prog.Do("k8s.KubernetesClientConfiguration::GetKubernetesClientConfiguration", "yml"),
	)
	p.AddTest("KubernetesClientTests::Yaml_AwaitLate",
		prog.HGo("k8s.Yaml::LoadFromString", "yml", "ty"),
		prog.Cp(1000),
		prog.Await("ty"),
		prog.Do("k8s.KubernetesClientConfiguration::GetKubernetesClientConfiguration", "yml"),
	)
	p.AddTest("KubernetesClientTests::StatusView_Await",
		prog.HGo("k8s.Models.V1Status.V1StatusObjectViewConverter::ReadJson", "st", "ts"),
		prog.Cp(150),
		prog.Await("ts"),
		prog.Do("k8s.Models.V1Status::AsObjectView", "st"),
	)
	p.AddTest("KubernetesClientTests::StatusView_AwaitLate",
		prog.HGo("k8s.Models.V1Status.V1StatusObjectViewConverter::ReadJson", "st", "ts"),
		prog.Cp(950),
		prog.Await("ts"),
		prog.Do("k8s.Models.V1Status::AsObjectView", "st"),
	)
	p.AddTest("KubernetesClientTests::WatchLoop_ErrorFlag",
		prog.Go(prog.ForkThread, "k8s.WatchLoop::CheckError", "exc", "h1"),
		prog.Go(prog.ForkThread, "k8s.WatchLoop::Fail", "exc", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("KubernetesClientTests::MuxedStream_Frames",
		prog.Go(prog.ForkThread, "k8s.MuxedStream::Read", "mux", "h1"),
		prog.Go(prog.ForkThread, "k8s.StreamDemuxer::PumpFrames", "mux", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("KubernetesClientTests::MuxedStream_Errors",
		prog.Go(prog.ForkThread, "k8s.MuxedStream::ReadErrors", "mux", "h1"),
		prog.Go(prog.ForkThread, "k8s.StreamDemuxer::PumpErrors", "mux", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("KubernetesClientTests::Watcher_Notify",
		prog.Go(prog.ForkThread, a4AwaitDone, "w", "h1"),
		prog.Go(prog.ForkThread, a4WatchRun, "w", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)

	// --- ground truth (paper: 20 syncs, 1 instr error) ---
	p.Volatile[a4EOF] = true
	p.Volatile[a4Status] = true
	p.Truth.Sync(prog.WK(a4EOF), trace.RoleRelease)
	p.Truth.Sync(prog.RK(a4EOF), trace.RoleAcquire)
	p.Truth.Sync(prog.BK(prog.APIMonitorEnter), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(prog.APIMonitorExit), trace.RoleRelease)
	p.Truth.Sync(prog.EK(a4LoadAsync), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(prog.APIGetResult), trace.RoleAcquire)
	p.Truth.Sync(prog.BK(a4Merge), trace.RoleAcquire)
	p.Truth.Sync(prog.EK("k8s.Yaml::LoadFromString"), trace.RoleRelease)
	p.Truth.Sync(prog.EK("k8s.Models.V1Status.V1StatusObjectViewConverter::ReadJson"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK("k8s.Models.V1Status::AsObjectView"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("k8s.KubernetesClientConfiguration::GetKubernetesClientConfiguration"), trace.RoleAcquire)
	p.Truth.Sync(prog.WK(a4Status), trace.RoleRelease)
	p.Truth.Sync(prog.RK(a4Status), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(prog.ForkThread.APIName()), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(prog.JoinThread.APIName()), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(a4Read), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(a4Write), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(a4AwaitDone), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("k8s.StreamDemuxer::WaitForFile"), trace.RoleAcquire)

	p.Truth.Sync(prog.EK("k8s.StreamDemuxer::WriteFrame"), trace.RoleRelease)
	p.Truth.Sync(prog.BK("k8s.MuxedStream::ReadFrame"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK("k8s.StreamDemuxer::PumpFrames"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.EK("k8s.StreamDemuxer::PumpErrors"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK("k8s.MuxedStream::Read"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("k8s.MuxedStream::ReadErrors"), trace.RoleAcquire)

	// Instrumentation error: NotifyDone is skipped by the Observer; its
	// exit (the true release) cannot be inferred and the enclosing
	// RunWatch's exit is tagged instead.
	p.Truth.HiddenMethods[a4Notify] = true
	p.Truth.Sync(prog.EK(a4Notify), trace.RoleRelease)
	p.Truth.Category[prog.EK(a4Notify)] = prog.CatInstrError
	p.Truth.Category[prog.EK(a4WatchRun)] = prog.CatInstrError
	p.Truth.Category[prog.WK(a4Payload)] = prog.CatInstrError
	p.Truth.Category[prog.RK("k8s.Watcher::state")] = prog.CatInstrError
	p.Truth.Category[prog.WK("k8s.Watcher::state")] = prog.CatInstrError
	return p
}
