// App-5: Radical (paper Table 1: 95.9K LoC, 33 stars, 798 tests).
//
// Synchronization idioms reproduced (paper Table 8):
//   - Finalizer ordering: the instruction removing an object's last
//     reference (inside Assert::IsTrue / EnsureNotDisposed, the "end of
//     last access" releases) happens-before the finalizer's entrance.
//   - MessageBroker: SubscribeCore-End releases, Broadcast-Begin acquires.
//   - WaitHandle.WaitAll over multiple broadcaster threads (n-to-1).
//   - Thread.Start and TaskFactory.StartNew fork edges; the TestRunner's
//     framework-driven Execute (hidden fork).
//   - One dispose pattern whose garbage collection runs far later than the
//     Near window (paper Table 4's "Dispose" bucket): the windows cannot
//     be refined, producing a missed sync.
//   - One racy flag (paper Table 2: 2 Data Racy ops).
package apps

import (
	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

const (
	a5EntityFin = "Radical.Model.Entity::Finalize"
	a5CTSFin    = "Radical.ChangeTracking.ChangeTrackingService::Finalize"
	a5IsTrue    = "Microsoft.VisualStudio.TestTools.UnitTesting.Assert::IsTrue"
	a5IsFalse   = "Microsoft.VisualStudio.TestTools.UnitTesting.Assert::IsFalse"
	a5Ensure    = "Radical.Model.Entity::EnsureNotDisposed"
	a5Subscribe = "Radical.Messaging.MessageBroker::SubscribeCore"
	a5Broadcast = "Radical.Messaging.MessageBroker::Broadcast"
	a5Execute   = "Radical.Tests.Windows.Messaging.MessageBrokerTests.TestRunner::Execute"
	a5Setup     = "Radical.Tests.Windows.Messaging.MessageBrokerTests::Setup"
	a5Dispose   = "Radical.Tests.Model.Entity.EntityTests.TestMetadata::Dispose"
	a5Publisher = "Radical.Messaging.MessageBrokerTests::broadcast_worker"
	a5EntState  = "Radical.Model.Entity::state"
	a5CTSState  = "Radical.ChangeTracking.ChangeTrackingService::trackers"
	a5MetaState = "Radical.Tests.Model.Entity.EntityTests.TestMetadata::resources"
	a5Subs      = "Radical.Messaging.MessageBroker::subscriptions"
	a5RunnerCfg = "Radical.Tests.Windows.Messaging.MessageBrokerTests::runnerConfig"
	a5Results   = "Radical.Messaging.MessageBrokerTests::results"
	a5RacyFlag  = "Radical.ComponentModel.Monitor::busy" // true data race
	a5RacyData  = "Radical.ComponentModel.Monitor::owner"
)

// App5 constructs the application.
func App5() *prog.Program {
	p := prog.New("App-5", "Radical")
	p.LoC, p.Stars, p.PaperTests = 95_900, 33, 798

	// --- finalizer patterns (GC within the Near window) ---
	p.AddMethod(a5IsTrue,
		prog.Rd(a5EntState, "ent"),
		prog.Wr(a5EntState, "ent", 1),
		prog.Cp(150),
	)
	p.AddMethod(a5EntityFin,
		prog.Rd(a5EntState, "ent"),
		prog.Cp(120),
	)
	p.AddMethod(a5Ensure,
		prog.Rd(a5CTSState, "cts"),
		prog.Wr(a5CTSState, "cts", 1),
		prog.Cp(130),
	)
	p.AddMethod(a5CTSFin,
		prog.Rd(a5CTSState, "cts"),
		prog.Cp(100),
	)

	// --- dispose pattern with GC far beyond Near (unrefinable windows) ---
	p.AddMethod(a5IsFalse,
		prog.Rd(a5MetaState, "meta"),
		prog.Wr(a5MetaState, "meta", 1),
		prog.Cp(140),
	)
	p.AddMethod(a5Dispose,
		prog.Rd(a5MetaState, "meta"),
		prog.Cp(110),
	)

	// --- message broker ---
	p.AddMethod(a5Subscribe,
		prog.HLock("broker-lock"),
		prog.Wr(a5Subs, "broker", 1),
		prog.DictAdd("broker-subs"),
		prog.Cp(120),
		prog.Wr("Radical.Messaging.MessageBroker::pending", "broker", 1),
		prog.Cp(80),
		prog.HUnlock("broker-lock"),
	)
	p.AddMethod(a5Broadcast,
		prog.CpJ(500, 0.9),
		prog.HLock("broker-lock"),
		prog.Rd("Radical.Messaging.MessageBroker::pending", "broker"),
		prog.Cp(70),
		prog.Rd(a5Subs, "broker"),
		prog.DictRead("broker-subs"),
		prog.Cp(90),
		prog.HUnlock("broker-lock"),
	)

	// --- n-to-1: several broadcasters, WaitAll ---
	p.AddMethod(a5Publisher+"_1",
		prog.CpJ(300, 0.8),
		prog.Wr(a5Results, "res", 1),
		prog.Set("done-1"),
	)
	p.AddMethod(a5Publisher+"_2",
		prog.CpJ(350, 0.8),
		prog.Wr(a5Results, "res", 2),
		prog.Set("done-2"),
	)

	// --- framework-driven runner (hidden fork) ---
	p.AddMethod(a5Setup,
		prog.Wr(a5RunnerCfg, "t", 1),
		prog.Cp(90),
	)
	p.AddMethod(a5Execute,
		prog.Rd(a5RunnerCfg, "t"),
		prog.Cp(200),
		prog.Set("runner-done"),
	)

	// --- phased workers rendezvousing at a Barrier. The arrival releases
	// and the return acquires — inverted against the Read-Acquire &
	// Write-Release property's call-site view, and a second double-role
	// API besides UpgradeToWriterLock: Single-Role lets SherLock claim at
	// most one of the two roles (Table 4's "Double Roles" bucket).
	p.AddMethod("Radical.Threading.PhaseWorker::RunLeft",
		prog.CpJ(260, 0.9),
		prog.Wr("Radical.Threading.PhaseWorker::left", "pw", 1),
		prog.Rendezvous("phase-barrier", 2),
		prog.Cp(40),
		prog.Rd("Radical.Threading.PhaseWorker::right", "pw"),
	)
	p.AddMethod("Radical.Threading.PhaseWorker::RunRight",
		prog.CpJ(330, 0.9),
		prog.Wr("Radical.Threading.PhaseWorker::right", "pw", 1),
		prog.Rendezvous("phase-barrier", 2),
		prog.Cp(40),
		prog.Rd("Radical.Threading.PhaseWorker::left", "pw"),
	)

	// --- racy flag (true data race) ---
	p.AddMethod("Radical.ComponentModel.Monitor::Enter",
		prog.CpJ(320, 0.7),
		prog.Wr(a5RacyData, "mon", 4),
		prog.Cp(40),
		prog.Wr(a5RacyFlag, "mon", 1),
	)
	p.AddMethod("Radical.ComponentModel.Monitor::Watch",
		prog.Spin(a5RacyFlag, "mon", 1, 240),
		prog.Rd(a5RacyData, "mon"),
	)

	// --- unit tests ---
	p.AddTest("EntityTests::Finalize_AfterLastAccess",
		prog.Do(a5IsTrue, "ent"),
		prog.GC("ent", a5EntityFin, 3_000),
		prog.Cp(200),
	)
	p.AddTest("ChangeTrackingTests::Finalize_AfterEnsure",
		prog.Do(a5Ensure, "cts"),
		prog.GC("cts", a5CTSFin, 4_000),
		prog.Cp(200),
	)
	p.AddTest("EntityTests::Dispose_LateGC",
		prog.Do(a5IsFalse, "meta"),
		prog.GC("meta", a5Dispose, 2_500_000), // far beyond Near: unrefinable
		prog.Cp(100),
	)
	p.AddTest("MessageBrokerTests::messagebroker_on_different_thread",
		prog.Go(prog.ForkThread, a5Subscribe, "broker", "h1"),
		prog.Go(prog.ForkThread, a5Broadcast, "broker", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("MessageBrokerTests::broadcast_from_multiple_thread",
		prog.Go(prog.ForkTaskNew, a5Publisher+"_1", "res", "h1"),
		prog.Go(prog.ForkThread, a5Publisher+"_2", "res", "h2"),
		prog.CpJ(550, 0.95), // mixed arrival at the WaitAll
		prog.All("done-1", "done-2"),
		prog.Rd(a5Results, "res"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("MessageBrokerTests::runner_executes_after_setup",
		prog.Do(a5Setup, "t"),
		prog.HGo(a5Execute, "t", "hr"),
		prog.Wait("runner-done"),
	)
	p.AddTest("PhaseWorkerTests::barrier_rendezvous",
		prog.Go(prog.ForkThread, "Radical.Threading.PhaseWorker::RunLeft", "pw", "h1"),
		prog.Go(prog.ForkThread, "Radical.Threading.PhaseWorker::RunRight", "pw", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("MonitorTests::busy_flag",
		prog.Wr(a5RunnerCfg, "t", 7),
		prog.Cp(40),
		prog.Go(prog.ForkTaskNew, a5Execute, "t", "t0"),
		prog.Go(prog.ForkThread, "Radical.ComponentModel.Monitor::Watch", "mon", "h1"),
		prog.Go(prog.ForkThread, "Radical.ComponentModel.Monitor::Enter", "mon", "h2"),
		prog.WaitT("t0"), prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddMethod("Radical.Diagnostics.Probe::Touch",
		prog.CpJ(180, 0.6),
		prog.Wr("Radical.Diagnostics.Probe::samples", "pr", 1),
	)
	p.AddTest("DiagnosticsTests::Probe_Unsynchronized",
		prog.Wr(a5RunnerCfg, "t", 8),
		prog.Cp(40),
		prog.Go(prog.ForkTaskNew, a5Execute, "t", "t0"),
		prog.Go(prog.ForkThread, "Radical.Diagnostics.Probe::Touch", "pr", "h1"),
		prog.Go(prog.ForkThread, "Radical.Diagnostics.Probe::Touch", "pr", "h2"),
		prog.WaitT("t0"), prog.JoinT("h1"), prog.JoinT("h2"),
	)

	// --- ground truth (paper: 14 syncs, 2 data racy, 2 not-sync) ---
	p.Truth.Sync(prog.EK(a5IsTrue), trace.RoleRelease)
	p.Truth.Sync(prog.BK(a5EntityFin), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(a5Ensure), trace.RoleRelease)
	p.Truth.Sync(prog.BK(a5CTSFin), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(a5Subscribe), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(a5Broadcast), trace.RoleAcquire)
	p.Truth.Sync(prog.BK(prog.APIWaitAll), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(a5Setup), trace.RoleRelease)
	p.Truth.Sync(prog.BK(a5Execute), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(prog.APISemSet), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(prog.APISemWait), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(prog.ForkThread.APIName()), trace.RoleRelease)
	p.Truth.SyncAlt(prog.EK(prog.ForkTaskNew.APIName()), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(prog.JoinThread.APIName()), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(a5Publisher+"_1"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.EK(a5Publisher+"_2"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(a5Publisher+"_1"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(a5Publisher+"_2"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(a5Subscribe), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.WK("Radical.Messaging.MessageBroker::pending"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.RK("Radical.Messaging.MessageBroker::pending"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(a5Execute), trace.RoleRelease)

	// Barrier: both call-site roles are true synchronizations, but
	// Single-Role allows at most one to be inferred.
	p.Truth.Sync(prog.BK(prog.APIBarrier), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(prog.APIBarrier), trace.RoleRelease)
	p.Truth.Category[prog.BK(prog.APIBarrier)] = prog.CatDoubleRole
	p.Truth.Category[prog.EK(prog.APIBarrier)] = prog.CatDoubleRole

	// Dispose bucket: the late-GC pair is unrefinable; the true release
	// and acquire around TestMetadata.Dispose go missing, and nearby
	// operations may be tagged instead.
	p.Truth.Sync(prog.EK(a5IsFalse), trace.RoleRelease)
	p.Truth.Sync(prog.BK(a5Dispose), trace.RoleAcquire)
	p.Truth.Category[prog.EK(a5IsFalse)] = prog.CatDispose
	p.Truth.Category[prog.BK(a5Dispose)] = prog.CatDispose
	p.Truth.Category[prog.RK(a5MetaState)] = prog.CatDispose
	p.Truth.Category[prog.WK(a5MetaState)] = prog.CatDispose

	// The busy flag and the probe counter are true data races.
	p.Truth.Race(a5RacyFlag)
	p.Truth.Race("Radical.Diagnostics.Probe::samples")
	return p
}
