// App-6: RestSharp (paper Table 1: 19.8K LoC, 7363 stars, 92 tests).
//
// Synchronization idioms reproduced (paper Table 8):
//   - ThreadPool.QueueUserWorkItem fork edges for request handlers.
//   - EventWaitHandle.Set / WaitHandle.WaitOne — response-ready signaling.
//   - Stream.CopyTo / Stream.Read — producer/consumer over a pipe.
//   - WebRequest.BeginGetResponse posting work to a test HTTP server whose
//     handler method's entrance is the acquire.
//   - Async request-body lambdas run as tasks.
package apps

import (
	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

const (
	a6CopyTo    = "System.IO.Stream::CopyTo"
	a6StreamRd  = "System.IO.Stream::Read"
	a6BeginGet  = "System.Net.WebRequest::BeginGetResponse"
	a6Handler   = "RestSharp.Tests.Shared.Fixtures.TestHttpServer::HandleRequest"
	a6WriteBody = "RestSharp.Http::WriteRequestBodyAsync_b0"
	a6ExecAsync = "RestSharp.RestClient::ExecuteAsync_b0"
	a6Request   = "RestSharp.Http::requestBody"
	a6Response  = "RestSharp.Http::responseData"
	a6Payload   = "RestSharp.Tests.Shared.Fixtures.TestHttpServer::payload"
	a6Buffer    = "RestSharp.Http::streamBuffer"
)

// App6 constructs the application.
func App6() *prog.Program {
	p := prog.New("App-6", "RestSharp")
	p.LoC, p.Stars, p.PaperTests = 19_800, 7363, 92

	// --- async request-body writer forked onto the thread pool ---
	p.AddMethod(a6WriteBody,
		prog.CpJ(150, 0.8),
		prog.Rd(a6Request, "http"),
		prog.Cp(200),
		prog.ListAdd("resp-headers"),
		prog.Cp(40),
		prog.Wr(a6Response, "http", 1),
		prog.Cp(60),
		prog.Set("response-ready"),
	)
	p.AddMethod(a6ExecAsync,
		prog.CpJ(420, 0.95),
		prog.Wait("response-ready"),
		prog.Cp(40),
		prog.Rd(a6Response, "http"),
		prog.ListRead("resp-headers"),
	)

	// --- test HTTP server: BeginGetResponse posts, handler consumes ---
	p.AddMethod(a6Handler,
		prog.Rd(a6Payload, "srv"),
		prog.Cp(220),
		prog.Wr("RestSharp.Tests.Shared.Fixtures.TestHttpServer::response", "srv", 2),
	)
	p.AddMethod("RestSharp.Tests.Shared.Fixtures.TestHttpServer::Run",
		prog.RecvAs(a6BeginGet+"_dequeue", "request-queue"),
		prog.Do(a6Handler, "srv"),
		prog.Cp(80),
	)
	p.AddMethod("RestSharp.RestClient::SendRequest",
		prog.CpJ(300, 0.9),
		prog.Wr(a6Payload, "srv", 1),
		prog.Cp(50),
		prog.PostAs(a6BeginGet, "request-queue"),
	)
	p.AddMethod("RestSharp.RestClient::SendRequestWithBody",
		prog.CpJ(420, 0.9),
		prog.Wr(a6Payload, "srv", 3),
		prog.Cp(45),
		prog.PostAs(a6BeginGet, "request-queue"),
	)

	// --- generic fixture handler run as a task (Table 8's
	// "Handlers/<Generic>b30-End — end of task") ---
	p.AddMethod("RestSharp.Tests.Shared.Fixtures.Handlers::Generic_b30",
		prog.CpJ(180, 0.8),
		prog.Rd("RestSharp.Tests.Shared.Fixtures.Handlers::template", "fx"),
		prog.Cp(170),
		prog.Wr("RestSharp.Tests.Shared.Fixtures.Handlers::rendered", "fx", 1),
	)

	// --- second wait-handle context: server shutdown signaling ---
	p.AddMethod("RestSharp.Tests.Shared.Fixtures.WebServer::Stop",
		prog.CpJ(240, 0.8),
		prog.Wr("RestSharp.Tests.Shared.Fixtures.WebServer::stopped", "ws", 1),
		prog.Cp(40),
		prog.Set("server-stopped"),
	)
	p.AddMethod("RestSharp.Tests.Shared.Fixtures.WebServer::AwaitStop",
		prog.CpJ(430, 0.95),
		prog.Wait("server-stopped"),
		prog.Cp(30),
		prog.Rd("RestSharp.Tests.Shared.Fixtures.WebServer::stopped", "ws"),
	)

	// --- stream producer/consumer ---
	p.AddMethod("RestSharp.Http::ProduceStream",
		prog.CpJ(260, 0.8),
		prog.Wr(a6Buffer, "http", 3),
		prog.Cp(45),
		prog.PostAs(a6CopyTo, "stream-pipe"),
	)
	p.AddMethod("RestSharp.Http::ConsumeStream",
		prog.CpJ(380, 0.95),
		prog.RecvAs(a6StreamRd, "stream-pipe"),
		prog.Cp(35),
		prog.Rd(a6Buffer, "http"),
	)

	// --- second stream context: response download pipe ---
	p.AddMethod("RestSharp.Http::ProduceDownload",
		prog.CpJ(310, 0.8),
		prog.Wr("RestSharp.Http::downloadBuffer", "http", 4),
		prog.Cp(40),
		prog.PostAs(a6CopyTo, "download-pipe"),
	)
	p.AddMethod("RestSharp.Http::ConsumeDownload",
		prog.CpJ(420, 0.95),
		prog.RecvAs(a6StreamRd, "download-pipe"),
		prog.Cp(30),
		prog.Rd("RestSharp.Http::downloadBuffer", "http"),
	)

	// --- unit tests ---
	p.AddTest("RestSharpTests::AsyncBody_ThreadPool",
		prog.Wr(a6Request, "http", 5),
		prog.Cp(40),
		prog.Go(prog.ForkThreadPool, a6WriteBody, "http", "h1"),
		prog.Go(prog.ForkThreadPool, a6ExecAsync, "http", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("RestSharpTests::AsyncBody_LateWaiter",
		prog.Wr(a6Request, "http", 6),
		prog.Cp(40),
		prog.Go(prog.ForkThreadPool, a6WriteBody, "http", "h1"),
		prog.Cp(1100),
		prog.Go(prog.ForkThreadPool, a6ExecAsync, "http", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("RestSharpTests::GenericHandler_Task",
		prog.Wr("RestSharp.Tests.Shared.Fixtures.Handlers::template", "fx", 2),
		prog.Cp(40),
		prog.Go(prog.ForkTaskRun, "RestSharp.Tests.Shared.Fixtures.Handlers::Generic_b30", "fx", "t1"),
		prog.WaitT("t1"),
		prog.Rd("RestSharp.Tests.Shared.Fixtures.Handlers::rendered", "fx"),
	)
	p.AddTest("RestSharpTests::GenericHandler_TaskPair",
		prog.Wr("RestSharp.Tests.Shared.Fixtures.Handlers::template", "fx", 3),
		prog.Cp(40),
		prog.Go(prog.ForkTaskRun, "RestSharp.Tests.Shared.Fixtures.Handlers::Generic_b30", "fx", "t1"),
		prog.Go(prog.ForkTaskRun, "RestSharp.Tests.Shared.Fixtures.Handlers::Generic_b30", "fx", "t2"),
		prog.WaitT("t1"), prog.WaitT("t2"),
		prog.Rd("RestSharp.Tests.Shared.Fixtures.Handlers::rendered", "fx"),
	)
	p.AddTest("RestSharpTests::Server_HandlesRequest",
		prog.Go(prog.ForkThread, "RestSharp.Tests.Shared.Fixtures.TestHttpServer::Run", "srv", "hs"),
		prog.Go(prog.ForkThread, "RestSharp.RestClient::SendRequest", "srv", "hc"),
		prog.JoinT("hs"), prog.JoinT("hc"),
	)
	p.AddTest("RestSharpTests::Server_HandlesBodyRequest",
		prog.Go(prog.ForkThread, "RestSharp.Tests.Shared.Fixtures.TestHttpServer::Run", "srv", "hs"),
		prog.Go(prog.ForkThread, "RestSharp.RestClient::SendRequestWithBody", "srv", "hc"),
		prog.JoinT("hs"), prog.JoinT("hc"),
	)
	p.AddTest("RestSharpTests::Server_StopSignal",
		prog.Go(prog.ForkThread, "RestSharp.Tests.Shared.Fixtures.WebServer::AwaitStop", "ws", "h1"),
		prog.Go(prog.ForkThread, "RestSharp.Tests.Shared.Fixtures.WebServer::Stop", "ws", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("RestSharpTests::Stream_ProducerConsumer",
		prog.Go(prog.ForkThread, "RestSharp.Http::ConsumeStream", "http", "h1"),
		prog.Go(prog.ForkThread, "RestSharp.Http::ProduceStream", "http", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("RestSharpTests::Stream_Download",
		prog.Go(prog.ForkThread, "RestSharp.Http::ConsumeDownload", "http", "h1"),
		prog.Go(prog.ForkThread, "RestSharp.Http::ProduceDownload", "http", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)

	// --- ground truth (paper: 14 syncs, 2 not-sync) ---
	p.Truth.Sync(prog.EK(prog.ForkThreadPool.APIName()), trace.RoleRelease)
	p.Truth.Sync(prog.EK(prog.APISemSet), trace.RoleRelease)
	p.Truth.Sync(prog.BK(prog.APISemWait), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(a6WriteBody), trace.RoleRelease)
	p.Truth.Sync(prog.BK(a6WriteBody), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(a6BeginGet), trace.RoleRelease)
	p.Truth.Sync(prog.BK(a6Handler), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(a6CopyTo), trace.RoleRelease)
	p.Truth.Sync(prog.BK(a6StreamRd), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(a6ExecAsync), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(a6ExecAsync), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(a6BeginGet+"_dequeue"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK("RestSharp.RestClient::SendRequest"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.EK("RestSharp.RestClient::SendRequestWithBody"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.EK("RestSharp.Http::ProduceStream"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.EK("RestSharp.Http::ProduceDownload"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK("RestSharp.Http::ConsumeDownload"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("RestSharp.Tests.Shared.Fixtures.TestHttpServer::Run"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("RestSharp.Http::ConsumeStream"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK("RestSharp.Tests.Shared.Fixtures.WebServer::Stop"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK("RestSharp.Tests.Shared.Fixtures.WebServer::AwaitStop"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.WK("RestSharp.Tests.Shared.Fixtures.WebServer::stopped"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.RK("RestSharp.Tests.Shared.Fixtures.WebServer::stopped"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(prog.ForkThread.APIName()), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(prog.JoinThread.APIName()), trace.RoleAcquire)
	p.Truth.Sync(prog.EK("RestSharp.Tests.Shared.Fixtures.Handlers::Generic_b30"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK("RestSharp.Tests.Shared.Fixtures.Handlers::Generic_b30"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(prog.JoinTask.APIName()), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(prog.ForkTaskRun.APIName()), trace.RoleRelease)
	return p
}
