// App-7: Statsd (paper Table 1: 2.3K LoC, 125 stars, 34 tests).
//
// Synchronization idioms reproduced (paper Table 8 / Figures 3.A and 3.D):
//   - DataflowBlock Post/Receive with a message-handler method: Post is the
//     release that happens-before the handler's entrance; Receive is the
//     acquire.
//   - Task.ContinueWith chains: the antecedent's exit releases, the
//     continuation's entrance acquires.
//   - Thread fork/join around the sampler.
//   - Two non-volatile flag patterns that are true data races (the paper's
//     "should be marked volatile" misclassifications): SherLock infers
//     their accesses as synchronization, counted in Table 2's Data Racy.
package apps

import (
	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

const (
	a7Handler = "Statsd.MessageParser::MessageHandler"
	a7Run     = "Statsd.MessageParser::Run"
	a7Send    = "Statsd.Client::Send"
	a7Collect = "Statsd.Sampler::Collect"
	a7Flush   = "Statsd.Sampler::Flush"
	a7Event   = "Statsd.Client::pendingEvent"
	a7Stats   = "Statsd.MessageParser::stats"
	a7Samples = "Statsd.Sampler::samples"
	a7Dirty   = "Statsd.Metrics::dirty" // racy flag (spin)
	a7MetricV = "Statsd.Metrics::value"
	a7Ready   = "Statsd.Counter::ready" // racy flag (if-check)
	a7Count   = "Statsd.Counter::count"
)

// App7 constructs the application.
func App7() *prog.Program {
	p := prog.New("App-7", "Stastd")
	p.LoC, p.Stars, p.PaperTests = 2_300, 125, 34

	// --- dataflow block: producer posts, parser loop receives + handles ---
	p.AddMethod(a7Handler,
		prog.Rd(a7Event, "c"),
		prog.Wr(a7Stats, "mp", 1),
		prog.Cp(180),
	)
	p.AddMethod(a7Run,
		prog.RecvQ("parser-block", a7Handler, "mp"),
		prog.Cp(60),
	)
	p.AddMethod(a7Send,
		prog.CpJ(250, 0.9),
		prog.Wr(a7Event, "c", 7),
		prog.Cp(40),
		prog.PostQ("parser-block"),
	)

	// --- second dataflow context: timer block ---
	p.AddMethod("Statsd.TimerParser::TimerHandler",
		prog.Rd("Statsd.Client::pendingTimer", "c"),
		prog.Wr("Statsd.TimerParser::totals", "tp", 1),
		prog.Cp(160),
	)
	p.AddMethod("Statsd.TimerParser::Run",
		prog.RecvQ("timer-block", "Statsd.TimerParser::TimerHandler", "tp"),
		prog.Cp(50),
	)
	p.AddMethod("Statsd.Client::SendTimer",
		prog.CpJ(300, 0.9),
		prog.Wr("Statsd.Client::pendingTimer", "c", 11),
		prog.Cp(35),
		prog.PostQ("timer-block"),
	)

	// --- ContinueWith chain (Figure 3.D) ---
	p.AddMethod(a7Collect,
		prog.CpJ(300, 0.6),
		prog.Wr(a7Samples, "s", 5),
		prog.Cp(120),
	)
	p.AddMethod(a7Flush,
		prog.Rd(a7Samples, "s"),
		prog.Cp(150),
	)

	// --- racy flags (true data races; paper: 4 Data Racy ops) ---
	p.AddMethod("Statsd.Metrics::Update",
		prog.CpJ(350, 0.7),
		prog.Wr(a7MetricV, "m", 3),
		prog.Cp(40),
		prog.Wr(a7Dirty, "m", 1),
	)
	p.AddMethod("Statsd.Metrics::Report",
		prog.Spin(a7Dirty, "m", 1, 240),
		prog.Rd(a7MetricV, "m"),
	)
	p.AddMethod("Statsd.Counter::Increment",
		prog.CpJ(300, 0.7),
		prog.Wr(a7Count, "cnt", 1),
		prog.Cp(30),
		prog.Wr(a7Ready, "cnt", 1),
	)
	p.AddMethod("Statsd.Counter::Snapshot",
		prog.CpJ(420, 0.9),
		prog.Rd(a7Ready, "cnt"),
		prog.Cp(25),
		prog.Rd(a7Count, "cnt"),
	)

	// --- monitor-protected metric registry ---
	p.AddMethod("Statsd.Registry::Register",
		prog.CpJ(260, 0.9),
		prog.Lock("registry-lock"),
		prog.Rd("Statsd.Registry::entries", "reg"),
		prog.Wr("Statsd.Registry::entries", "reg", 1),
		prog.Cp(80),
		prog.Unlock("registry-lock"),
		prog.CpJ(210, 0.9),
	)
	p.AddMethod("Statsd.Registry::Lookup",
		prog.CpJ(390, 0.9),
		prog.Lock("registry-lock"),
		prog.Rd("Statsd.Registry::entries", "reg"),
		prog.Wr("Statsd.Registry::entries", "reg", 2),
		prog.Cp(70),
		prog.Unlock("registry-lock"),
		prog.CpJ(170, 0.9),
	)

	// --- n-to-1 flush: the flusher waits for both pipelines ---
	p.AddMethod("Statsd.Flusher::ParseDone",
		prog.CpJ(290, 0.8),
		prog.Wr("Statsd.Flusher::parsedCount", "fl", 1),
		prog.Set("parsed-done"),
	)
	p.AddMethod("Statsd.Flusher::TimeDone",
		prog.CpJ(340, 0.8),
		prog.Wr("Statsd.Flusher::timedCount", "fl", 1),
		prog.Set("timed-done"),
	)

	// --- unsynchronized list buffer: a genuine thread-safety violation
	// candidate (TSVD's quarry; neither detector can prove it ordered) ---
	p.AddMethod("Statsd.UdpSender::Buffer",
		prog.CpJ(280, 0.6),
		prog.ListAdd("udp-buffer"),
		prog.Cp(50),
	)
	p.AddMethod("Statsd.UdpSender::Drain",
		prog.CpJ(280, 0.6),
		prog.ListRead("udp-buffer"),
		prog.Cp(40),
	)

	// --- unit tests ---
	p.AddTest("StatsdTests::Post_TriggersHandler",
		prog.Go(prog.ForkThread, a7Run, "mp", "hr"),
		prog.Go(prog.ForkThread, a7Send, "c", "hs"),
		prog.JoinT("hr"), prog.JoinT("hs"),
	)
	p.AddTest("StatsdTests::Post_TriggersHandler_LateParser",
		prog.Go(prog.ForkThread, a7Send, "c", "hs"),
		prog.Cp(900),
		prog.Go(prog.ForkThread, a7Run, "mp", "hr"),
		prog.JoinT("hr"), prog.JoinT("hs"),
	)
	p.AddTest("StatsdTests::Timer_TriggersHandler",
		prog.Go(prog.ForkThread, "Statsd.TimerParser::Run", "tp", "hr"),
		prog.Go(prog.ForkThread, "Statsd.Client::SendTimer", "c", "hs"),
		prog.JoinT("hr"), prog.JoinT("hs"),
	)
	p.AddTest("StatsdTests::ContinueWith_Ordering",
		prog.Go(prog.ForkTaskRun, a7Collect, "s", "t1"),
		prog.Then("t1", a7Flush, "s", "t2"),
		prog.WaitT("t2"),
	)
	p.AddTest("StatsdTests::ContinueWith_Chained",
		prog.Go(prog.ForkTaskRun, a7Collect, "s", "t1"),
		prog.Then("t1", a7Flush, "s", "t2"),
		prog.Then("t2", a7Flush, "s", "t3"),
		prog.WaitT("t3"),
	)
	p.AddMethod("Statsd.Config::Loader",
		prog.Cp(60),
		prog.Rd("Statsd.Config::prefix", "cf"),
		prog.Cp(150),
	)
	p.AddTest("StatsdTests::Registry_Concurrent",
		prog.Go(prog.ForkThread, "Statsd.Registry::Register", "reg", "h1"),
		prog.Go(prog.ForkThread, "Statsd.Registry::Lookup", "reg", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("StatsdTests::Flush_WaitsForPipelines",
		prog.Go(prog.ForkThread, "Statsd.Flusher::ParseDone", "fl", "h1"),
		prog.Go(prog.ForkThread, "Statsd.Flusher::TimeDone", "fl", "h2"),
		prog.CpJ(520, 0.95),
		prog.All("parsed-done", "timed-done"),
		prog.Rd("Statsd.Flusher::parsedCount", "fl"),
		prog.Rd("Statsd.Flusher::timedCount", "fl"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("StatsdTests::Metrics_DirtyFlag",
		prog.Wr("Statsd.Config::prefix", "cf", 2),
		prog.Cp(40),
		prog.Go(prog.ForkThreadPool, "Statsd.Config::Loader", "cf", "t0"),
		prog.Go(prog.ForkThread, "Statsd.Metrics::Report", "m", "h1"),
		prog.Go(prog.ForkThread, "Statsd.Metrics::Update", "m", "h2"),
		prog.JoinT("t0"), prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("StatsdTests::UdpSender_Unsynchronized",
		prog.Wr("Statsd.Config::prefix", "cf", 1),
		prog.Cp(40),
		prog.Go(prog.ForkThreadPool, "Statsd.Config::Loader", "cf", "t0"),
		prog.Go(prog.ForkThread, "Statsd.UdpSender::Buffer", "u", "h1"),
		prog.Go(prog.ForkThread, "Statsd.UdpSender::Drain", "u", "h2"),
		prog.JoinT("t0"), prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.AddTest("StatsdTests::Counter_Concurrent",
		prog.Go(prog.ForkThread, "Statsd.Counter::Snapshot", "cnt", "h1"),
		prog.Go(prog.ForkThread, "Statsd.Counter::Increment", "cnt", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)

	// --- ground truth (paper: 19 syncs, 4 data racy) ---
	p.Truth.Sync(prog.EK(prog.APIPost), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(prog.APIReceive), trace.RoleAcquire)
	p.Truth.Sync(prog.BK(a7Handler), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(a7Send), trace.RoleRelease)
	p.Truth.Sync(prog.EK(a7Collect), trace.RoleRelease)
	p.Truth.Sync(prog.BK(a7Flush), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(a7Flush), trace.RoleRelease)
	p.Truth.SyncAlt(prog.EK(prog.APIContinueWith), trace.RoleRelease)
	p.Truth.SyncAlt(prog.EK(prog.ForkTaskRun.APIName()), trace.RoleRelease)
	p.Truth.SyncAlt(prog.EK(prog.ForkThread.APIName()), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(a7Run), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("Statsd.TimerParser::TimerHandler"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK("Statsd.Client::SendTimer"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK("Statsd.TimerParser::Run"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(a7Send), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(prog.JoinThread.APIName()), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK(prog.JoinTask.APIName()), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(prog.ForkThreadPool.APIName()), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK("Statsd.Config::Loader"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK("Statsd.Config::Loader"), trace.RoleRelease)

	p.Truth.Sync(prog.BK(prog.APIMonitorEnter), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(prog.APIMonitorExit), trace.RoleRelease)
	p.Truth.Sync(prog.BK(prog.APIWaitAll), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(prog.APISemSet), trace.RoleRelease)
	p.Truth.SyncAlt(prog.EK("Statsd.Flusher::ParseDone"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.EK("Statsd.Flusher::TimeDone"), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK("Statsd.Registry::Register"), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.BK("Statsd.Registry::Lookup"), trace.RoleAcquire)

	// The two flags are true data races, not synchronizations; so is the
	// unsynchronized UDP list buffer.
	p.Truth.Race(a7Dirty)
	p.Truth.Race(a7Ready)
	p.Truth.RacyFields["System.Collections.Generic.List"] = true
	return p
}
