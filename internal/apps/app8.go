// App-8: System.Linq.Dynamic (paper Table 1: 1.1K LoC, 399 stars, 7 tests).
//
// Synchronization idioms reproduced (paper Table 9):
//   - TaskFactory.StartNew fork edges from the CreateClass_TheadSafe test.
//   - ClassFactory static constructor ordering, with GetDynamicClass as the
//     first access after it.
//   - ReaderWriterLock: UpgradeToWriterLock (acquire) and
//     DowngradeFromWriterLock (release) — including the Single-Role
//     violation that UpgradeToWriterLock also *releases* the reader lock
//     inside the same API (paper Table 4's "Double Roles" bucket).
package apps

import (
	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

const (
	a8Cctor   = "System.Linq.Dynamic.ClassFactory::.cctor"
	a8GetDyn  = "System.Linq.Dynamic.ClassFactory::GetDynamicClass"
	a8Worker  = "System.Linq.Dynamic.Test.DynamicExpressionTests::CreateClass_TheadSafe_Worker"
	a8Classes = "System.Linq.Dynamic.ClassFactory::classes"
	a8RWLock  = "classfactory-rw"
)

// App8 constructs the application.
func App8() *prog.Program {
	p := prog.New("App-8", "System.Linq.Dynamic")
	p.LoC, p.Stars, p.PaperTests = 1_100, 399, 7

	p.AddMethod(a8Cctor,
		prog.Wr(a8Classes, "", 1),
		prog.Cp(600),
	)
	// GetDynamicClass: first use triggers static init, then a
	// reader-writer-locked lookup that upgrades to insert on miss.
	p.AddMethod(a8GetDyn,
		prog.CpJ(250, 0.95),
		prog.StaticInit("ClassFactory", a8Cctor),
		prog.RdLock(a8RWLock),
		prog.Rd(a8Classes, ""),
		prog.Cp(100),
		prog.Upgrade(a8RWLock),
		prog.Wr(a8Classes, "", 2),
		prog.Cp(60),
		prog.Downgrade(a8RWLock),
		prog.RdUnlock(a8RWLock),
	)
	p.AddMethod(a8Worker,
		prog.CpJ(200, 0.9),
		prog.Rd("System.Linq.Dynamic.Test.DynamicExpressionTests::expression", "t"),
		prog.Do(a8GetDyn, ""),
		prog.Wr("System.Linq.Dynamic.Test.DynamicExpressionTests::result", "t", 1),
		prog.Cp(90),
	)

	p.AddTest("DynamicExpressionTests::CreateClass_TheadSafe",
		prog.Wr("System.Linq.Dynamic.Test.DynamicExpressionTests::expression", "t", 7),
		prog.Cp(40),
		prog.Go(prog.ForkTaskNew, a8Worker, "t", "h1"),
		prog.Go(prog.ForkTaskNew, a8Worker, "t", "h2"),
		prog.WaitT("h1"), prog.WaitT("h2"),
		prog.Rd("System.Linq.Dynamic.Test.DynamicExpressionTests::result", "t"),
	)
	p.AddTest("DynamicExpressionTests::CreateClass_TheadSafe_Wide",
		prog.Wr("System.Linq.Dynamic.Test.DynamicExpressionTests::expression", "t", 9),
		prog.Cp(40),
		prog.Go(prog.ForkTaskNew, a8Worker, "t", "h1"),
		prog.Go(prog.ForkTaskNew, a8Worker, "t", "h2"),
		prog.Go(prog.ForkTaskNew, a8Worker, "t", "h3"),
		prog.WaitT("h1"), prog.WaitT("h2"), prog.WaitT("h3"),
		prog.Rd("System.Linq.Dynamic.Test.DynamicExpressionTests::result", "t"),
	)
	p.AddTest("DynamicExpressionTests::ParseLambda_Sequential",
		prog.Do(a8GetDyn, ""),
		prog.Do(a8GetDyn, ""),
	)

	// --- ground truth (paper: 6 syncs, 1 not-sync; double-role FPs) ---
	p.Truth.Sync(prog.EK(prog.ForkTaskNew.APIName()), trace.RoleRelease)
	p.Truth.Sync(prog.BK(a8Worker), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(a8Worker), trace.RoleRelease)
	p.Truth.Sync(prog.EK(a8Cctor), trace.RoleRelease)
	p.Truth.SyncAlt(prog.BK(a8GetDyn), trace.RoleAcquire)
	p.Truth.Sync(prog.BK(prog.JoinTask.APIName()), trace.RoleAcquire)
	p.Truth.Sync(prog.BK(prog.APIRWUpgrade), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(prog.APIRWDowngrade), trace.RoleRelease)
	p.Truth.Sync(prog.BK(prog.APIRWAcquireRead), trace.RoleAcquire)
	p.Truth.SyncAlt(prog.EK(prog.APIRWReleaseRead), trace.RoleRelease)
	// The Single-Role assumption hides UpgradeToWriterLock's release half:
	// its end is a true release SherLock cannot co-infer with the acquire.
	p.Truth.Sync(prog.EK(prog.APIRWUpgrade), trace.RoleRelease)
	p.Truth.Category[prog.EK(prog.APIRWUpgrade)] = prog.CatDoubleRole
	p.Truth.Category[prog.BK(prog.APIRWUpgrade)] = prog.CatDoubleRole
	p.Truth.Category[prog.EK(a8Cctor)] = prog.CatStaticCtor
	p.Truth.Category[prog.BK(a8GetDyn)] = prog.CatStaticCtor
	return p
}
