package apps

import (
	"context"
	"testing"

	"sherlock/internal/core"
	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("registry has %d apps, want 8", len(all))
	}
	names := Names()
	for i, p := range all {
		want := "App-" + string(rune('1'+i))
		if p.Name != want || names[i] != want {
			t.Errorf("app %d named %q/%q, want %q", i, p.Name, names[i], want)
		}
		got, err := ByName(p.Name)
		if err != nil || got != p {
			t.Errorf("ByName(%s) = %v, %v", p.Name, got, err)
		}
		if p.LoC == 0 || p.Stars == 0 || p.PaperTests == 0 {
			t.Errorf("%s missing Table 1 metadata", p.Name)
		}
		if len(p.Tests) == 0 {
			t.Errorf("%s has no tests", p.Name)
		}
	}
	if _, err := ByName("App-9"); err == nil {
		t.Error("ByName should reject unknown apps")
	}
}

// TestTruthWellFormed checks that ground-truth annotations respect the
// Read-Acquire & Write-Release property: an annotated acquire must be an
// acquire-capable operation kind and vice versa (the only exception is the
// deliberately double-role UpgradeToWriterLock release).
func TestTruthWellFormed(t *testing.T) {
	for _, p := range All() {
		for k, role := range p.Truth.Syncs {
			if k == prog.EK(prog.APIRWUpgrade) {
				continue // documented double-role exception
			}
			switch role {
			case trace.RoleAcquire:
				if !trace.AcquireCapable(k.Kind()) {
					t.Errorf("%s: %s annotated acquire but kind %v cannot acquire", p.Name, k, k.Kind())
				}
			case trace.RoleRelease:
				if !trace.ReleaseCapable(k.Kind()) {
					t.Errorf("%s: %s annotated release but kind %v cannot release", p.Name, k, k.Kind())
				}
			}
		}
		for f := range p.Volatile {
			if p.Truth.RacyFields[f] {
				t.Errorf("%s: %s is both volatile and racy", p.Name, f)
			}
		}
	}
}

// expectations per app, with margins under the default 3-round config.
var expect = map[string]struct {
	minCorrect   int
	minPrecision float64
	racy         int  // minimum Data Racy count (2 per racy flag pattern)
	instr        bool // expects instrumentation-error FPs
}{
	"App-1": {minCorrect: 13, minPrecision: 0.45, racy: 10, instr: true},
	"App-2": {minCorrect: 5, minPrecision: 0.80},
	"App-3": {minCorrect: 6, minPrecision: 0.55, instr: true},
	"App-4": {minCorrect: 8, minPrecision: 0.65, instr: true},
	"App-5": {minCorrect: 8, minPrecision: 0.70, racy: 2},
	"App-6": {minCorrect: 6, minPrecision: 0.80},
	"App-7": {minCorrect: 4, minPrecision: 0.55, racy: 2},
	"App-8": {minCorrect: 7, minPrecision: 0.75},
}

func TestInferenceOnAllApps(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			res, err := core.Infer(context.Background(), app, core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if res.Deadlocks > 0 {
				t.Fatalf("%d deadlocked runs", res.Deadlocks)
			}
			score := core.ScoreResult(app, res)
			exp := expect[app.Name]
			if len(score.Correct) < exp.minCorrect {
				t.Errorf("correct = %d, want >= %d (inferred %v)",
					len(score.Correct), exp.minCorrect, res.Inferred)
			}
			if p := score.Precision(); p < exp.minPrecision {
				t.Errorf("precision = %.2f, want >= %.2f", p, exp.minPrecision)
			}
			if len(score.DataRacy) < exp.racy {
				t.Errorf("data-racy = %d, want >= %d (%v)", len(score.DataRacy), exp.racy, score.DataRacy)
			}
			if exp.instr && len(score.InstrErrors) == 0 {
				t.Error("expected instrumentation-error misclassifications, found none")
			}
			// Every false negative must be an expected one: annotated with
			// a misclassification bucket (instr-errors, dispose,
			// double-roles, static-ctor).
			for _, k := range score.Missed {
				if app.Truth.Category[k] == "" {
					t.Errorf("unexpected miss outside any bucket: %s", k)
				}
			}
		})
	}
}

// TestRound3Convergence: by round 3 the correct count must be at least the
// round-1 count (Figure 4's rising curve).
func TestRound3Convergence(t *testing.T) {
	for _, app := range All() {
		res, err := core.Infer(context.Background(), app, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		c1, _ := core.SnapshotCorrect(app, res.Rounds[0])
		c3, _ := core.SnapshotCorrect(app, res.Rounds[2])
		if c3 < c1 {
			t.Errorf("%s: round 3 correct (%d) < round 1 (%d)", app.Name, c3, c1)
		}
	}
}

// TestFlagshipIdioms asserts the paper's headline inferences per app
// (Tables 8/9 flagships) are found.
func TestFlagshipIdioms(t *testing.T) {
	flagships := map[string][]struct {
		key  trace.Key
		role trace.Role
	}{
		"App-1": {
			{prog.EK(a1Init), trace.RoleRelease}, // TestInitialize (Fig 3.E)
			{prog.BK(prog.APIMonitorEnter), trace.RoleAcquire},
		},
		"App-2": {
			{prog.EK(a2Cctor), trace.RoleRelease}, // static ctor
			{prog.WK(a2Ascension), trace.RoleRelease},
			{prog.RK(a2Ascension), trace.RoleAcquire},
		},
		"App-3": {
			{prog.EK(a3Cctor), trace.RoleRelease},
			{prog.WK(a3Running), trace.RoleRelease},
		},
		"App-4": {
			{prog.WK(a4EOF), trace.RoleRelease}, // Fig 3.B endOfFile
			{prog.RK(a4EOF), trace.RoleAcquire},
		},
		"App-5": {
			{prog.BK(a5EntityFin), trace.RoleAcquire}, // finalizer begin
			{prog.BK(prog.APIWaitAll), trace.RoleAcquire},
		},
		"App-6": {
			{prog.EK(a6CopyTo), trace.RoleRelease}, // stream producer
			{prog.BK(a6StreamRd), trace.RoleAcquire},
		},
		"App-7": {
			{prog.EK(prog.APIPost), trace.RoleRelease}, // Fig 3.A
			{prog.BK(a7Flush), trace.RoleAcquire},      // Fig 3.D continuation
		},
		"App-8": {
			{prog.BK(prog.APIRWUpgrade), trace.RoleAcquire},
			{prog.EK(prog.ForkTaskNew.APIName()), trace.RoleRelease},
		},
	}
	for _, app := range All() {
		res, err := core.Infer(context.Background(), app, core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		syncs := res.SyncKeys()
		for _, want := range flagships[app.Name] {
			if got, ok := syncs[want.key]; !ok || got != want.role {
				t.Errorf("%s: flagship %s (%s) not inferred", app.Name, want.key, want.role)
			}
		}
	}
}

// TestSeedStability guards against overfitting the workloads to one
// scheduler seed: across several base seeds, aggregate shape invariants
// must hold — healthy sync counts, bounded misclassification, and every
// false negative inside an annotated bucket.
func TestSeedStability(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for _, seed := range []int64{1, 1001, 20250706} {
		var totalCorrect, totalInferred int
		for _, app := range All() {
			cfg := core.DefaultConfig()
			cfg.Seed = seed
			res, err := core.Infer(context.Background(), app, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, app.Name, err)
			}
			score := core.ScoreResult(app, res)
			totalCorrect += len(score.Correct)
			totalInferred += score.Total()
			if len(score.Correct) < expect[app.Name].minCorrect-3 {
				t.Errorf("seed %d %s: correct = %d, floor %d",
					seed, app.Name, len(score.Correct), expect[app.Name].minCorrect-3)
			}
			for _, k := range score.Missed {
				if app.Truth.Category[k] == "" {
					t.Errorf("seed %d %s: unbucketed miss %s", seed, app.Name, k)
				}
			}
		}
		if prec := float64(totalCorrect) / float64(totalInferred); prec < 0.55 {
			t.Errorf("seed %d: aggregate precision %.2f below floor", seed, prec)
		}
	}
}
