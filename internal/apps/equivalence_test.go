package apps

import (
	"context"
	"math"
	"testing"

	"sherlock/internal/core"
	"sherlock/internal/trace"
)

// TestWarmColdEquivalence is the tentpole's contract: on every application,
// a campaign with cross-round warm starting and incremental encoding must
// produce exactly the results of the cold-start path — identical SyncKeys,
// identical per-round snapshots, per-key probabilities and objective within
// 1e-6 — for any Parallelism.
func TestWarmColdEquivalence(t *testing.T) {
	for _, app := range All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			coldCfg := core.DefaultConfig()
			coldCfg.ColdStart = true
			coldCfg.Parallelism = 1
			cold, err := core.Infer(context.Background(), app, coldCfg)
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			for _, par := range []int{1, 4} {
				warmCfg := core.DefaultConfig()
				warmCfg.Parallelism = par
				warm, err := core.Infer(context.Background(), app, warmCfg)
				if err != nil {
					t.Fatalf("warm (parallelism %d): %v", par, err)
				}
				assertEquivalent(t, par, cold, warm)
			}
		})
	}
}

func assertEquivalent(t *testing.T, par int, cold, warm *core.Result) {
	t.Helper()
	ck, wk := cold.SyncKeys(), warm.SyncKeys()
	if len(ck) != len(wk) {
		t.Fatalf("parallelism %d: %d cold syncs vs %d warm", par, len(ck), len(wk))
	}
	for k, role := range ck {
		if wk[k] != role {
			t.Errorf("parallelism %d: key %s role %v cold, %v warm", par, k, role, wk[k])
		}
	}
	if math.Abs(cold.Overhead.Objective-warm.Overhead.Objective) > 1e-6 {
		t.Errorf("parallelism %d: objective %v cold, %v warm",
			par, cold.Overhead.Objective, warm.Overhead.Objective)
	}
	if len(cold.Rounds) != len(warm.Rounds) {
		t.Fatalf("parallelism %d: %d cold rounds vs %d warm", par, len(cold.Rounds), len(warm.Rounds))
	}
	for i := range cold.Rounds {
		if !sameKeys(cold.Rounds[i].Acquires, warm.Rounds[i].Acquires) ||
			!sameKeys(cold.Rounds[i].Releases, warm.Rounds[i].Releases) {
			t.Errorf("parallelism %d: round %d snapshots differ", par, i+1)
		}
	}
	for k, p := range cold.Acquires {
		if math.Abs(warm.Acquires[k]-p) > 1e-6 {
			t.Errorf("parallelism %d: acquire prob %s: %v cold, %v warm", par, k, p, warm.Acquires[k])
		}
	}
	for k, p := range cold.Releases {
		if math.Abs(warm.Releases[k]-p) > 1e-6 {
			t.Errorf("parallelism %d: release prob %s: %v cold, %v warm", par, k, p, warm.Releases[k])
		}
	}
}

func sameKeys(a, b []trace.Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWarmStartEngages guards the perf mechanism itself: on App-1's
// default multi-round campaign the warm path must actually take effect
// (every round after the first reuses the previous basis).
func TestWarmStartEngages(t *testing.T) {
	app, err := ByName("App-1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	res, err := core.Infer(context.Background(), app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Overhead.WarmRounds == 0 {
		t.Fatal("no round reused the previous basis; warm starting is inert")
	}
	coldCfg := core.DefaultConfig()
	coldCfg.ColdStart = true
	cres, err := core.Infer(context.Background(), app, coldCfg)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Overhead.WarmRounds != 0 {
		t.Fatalf("ColdStart campaign reports %d warm rounds", cres.Overhead.WarmRounds)
	}
}
