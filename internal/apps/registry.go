// Package apps defines the eight benchmark applications of the SherLock
// paper (Table 1) as synthetic prog.Programs. Each application reproduces
// the synchronization idioms the paper reports inferring from its namesake
// (Tables 8 and 9), carries the paper's inventory metadata, and is
// annotated with ground truth — the role the authors' manual inspection
// plays in the original evaluation.
//
// The original applications are C# codebases run under Mono.Cecil
// instrumentation; these are behavioural equivalents at virtual-time scale
// (see DESIGN.md for the substitution argument). Test counts are scaled
// down: each synthetic test is a concurrency-relevant scenario, where the
// originals also carry hundreds of sequential tests that contribute no
// windows.
package apps

import (
	"fmt"
	"sync"

	"sherlock/internal/prog"
)

var (
	once     sync.Once
	registry []*prog.Program
	byName   map[string]*prog.Program
)

func build() {
	registry = []*prog.Program{
		App1(), App2(), App3(), App4(), App5(), App6(), App7(), App8(),
	}
	byName = map[string]*prog.Program{}
	for _, p := range registry {
		p.MustFinalize()
		byName[p.Name] = p
	}
}

// All returns the eight applications, App-1 through App-8, finalized.
// The returned programs are shared; callers must not mutate them.
func All() []*prog.Program {
	once.Do(build)
	return registry
}

// ByName returns one application ("App-1".."App-8").
func ByName(name string) (*prog.Program, error) {
	once.Do(build)
	p, ok := byName[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q (want App-1..App-8)", name)
	}
	return p, nil
}

// Names returns the application ids in order.
func Names() []string {
	once.Do(build)
	out := make([]string, len(registry))
	for i, p := range registry {
		out[i] = p.Name
	}
	return out
}
