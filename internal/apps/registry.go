// Package apps defines the eight benchmark applications of the SherLock
// paper (Table 1) as synthetic prog.Programs, and hosts the program-source
// registry through which every app-accepting entry point (CLI verbs,
// server jobs, the static endpoint) resolves names. Each built-in
// application reproduces the synchronization idioms the paper reports
// inferring from its namesake (Tables 8 and 9), carries the paper's
// inventory metadata, and is annotated with ground truth — the role the
// authors' manual inspection plays in the original evaluation.
//
// The original applications are C# codebases run under Mono.Cecil
// instrumentation; these are behavioural equivalents at virtual-time scale
// (see DESIGN.md for the substitution argument). Test counts are scaled
// down: each synthetic test is a concurrency-relevant scenario, where the
// originals also carry hundreds of sequential tests that contribute no
// windows.
package apps

import (
	"fmt"
	"sync"

	"sherlock/internal/gen"
	"sherlock/internal/prog"
)

// ProgramSource resolves a namespace of application names to finalized
// programs. Sources are consulted in registration order; the first
// source that owns a name answers for it. Lookup must return the same
// (finalized, immutable) *prog.Program for every call with the same
// name, so results are shareable across concurrent campaigns and
// content-addressed caches.
type ProgramSource interface {
	// Owns reports whether name falls in this source's namespace.
	Owns(name string) bool
	// Lookup resolves name; called only when Owns(name) is true.
	Lookup(name string) (*prog.Program, error)
	// Names enumerates the programs this source exposes for registry
	// sweeps. For unbounded namespaces (the generator) this is a small
	// deterministic showcase; arbitrary names stay addressable.
	Names() []string
}

var (
	once     sync.Once
	registry []*prog.Program
	byName   map[string]*prog.Program

	sourceMu sync.RWMutex
	sources  []ProgramSource
)

func build() {
	registry = []*prog.Program{
		App1(), App2(), App3(), App4(), App5(), App6(), App7(), App8(),
	}
	byName = map[string]*prog.Program{}
	for _, p := range registry {
		p.MustFinalize()
		byName[p.Name] = p
	}
	sourceMu.Lock()
	sources = append([]ProgramSource{builtinSource{}, genSource{}}, sources...)
	sourceMu.Unlock()
}

// builtinSource serves the paper's App-1..App-8.
type builtinSource struct{}

func (builtinSource) Owns(name string) bool {
	_, ok := byName[name]
	return ok
}
func (builtinSource) Lookup(name string) (*prog.Program, error) { return byName[name], nil }
func (builtinSource) Names() []string {
	out := make([]string, len(registry))
	for i, p := range registry {
		out[i] = p.Name
	}
	return out
}

// genSource serves the procedural generator's gen:<seed>[,...] namespace.
type genSource struct{}

func (genSource) Owns(name string) bool                     { return gen.IsName(name) }
func (genSource) Lookup(name string) (*prog.Program, error) { return gen.FromName(name) }
func (genSource) Names() []string                           { return gen.SampleNames() }

// Register adds a program source to the registry. Sources registered
// before the first lookup are consulted after the built-in and
// generator sources.
func Register(src ProgramSource) {
	sourceMu.Lock()
	sources = append(sources, src)
	sourceMu.Unlock()
}

// All returns the eight built-in applications, App-1 through App-8,
// finalized. The returned programs are shared; callers must not mutate
// them. (Generated and other registered programs are addressable via
// ByName and enumerable via RegistryNames.)
func All() []*prog.Program {
	once.Do(build)
	return registry
}

// ByName resolves an application name through the program-source
// registry: the built-ins ("App-1".."App-8"), generated apps
// ("gen:<seed>[,profile=...][,size=...]"), and any registered source.
func ByName(name string) (*prog.Program, error) {
	once.Do(build)
	sourceMu.RLock()
	snapshot := sources
	sourceMu.RUnlock()
	for _, s := range snapshot {
		if s.Owns(name) {
			return s.Lookup(name)
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q (want App-1..App-8 or gen:<seed>[,profile=...][,size=...])", name)
}

// Names returns the built-in application ids in order.
func Names() []string {
	once.Do(build)
	out := make([]string, len(registry))
	for i, p := range registry {
		out[i] = p.Name
	}
	return out
}

// RegistryNames enumerates every program the registry exposes across
// all sources — the built-ins followed by each source's showcase (e.g.
// the generator's per-profile samples). This is what registry-wide
// sweeps such as `sherlock static -all` iterate.
func RegistryNames() []string {
	once.Do(build)
	sourceMu.RLock()
	snapshot := sources
	sourceMu.RUnlock()
	var out []string
	seen := map[string]bool{}
	for _, s := range snapshot {
		for _, n := range s.Names() {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	return out
}
