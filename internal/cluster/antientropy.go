// Anti-entropy: the repair loop that makes corpus replication converge
// without any replication protocol. Every interval the node asks each
// live peer for its manifest key set, diffs it against the local corpus,
// and pulls the blobs it should hold (self in the key's replica set)
// but does not. Because blobs are content-addressed and immutable, the
// diff is a pure set difference — no versions, no tombstones, no merge.
// Periodically the loop also audits its own blobs (store.Verify) and
// drops corrupt ones so the next cycle re-pulls a clean copy: bit rot
// heals through the same pull path as a missed fan-out.
package cluster

import (
	"context"
	"encoding/json"
	"time"
)

// manifestView is the wire form of GET /v1/cluster/manifest.
type manifestView struct {
	Node string   `json:"node"`
	Keys []string `json:"keys"`
}

// antiEntropyLoop runs repair cycles until the cluster stops.
func (c *Cluster) antiEntropyLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.AntiEntropyInterval)
	defer t.Stop()
	cycles := 0
	for {
		select {
		case <-c.runCtx.Done():
			return
		case <-t.C:
			cycles++
			if c.cfg.VerifyEvery > 0 && cycles%c.cfg.VerifyEvery == 0 {
				c.healLocal()
			}
			c.antiEntropyCycle(c.runCtx)
		}
	}
}

// antiEntropyCycle diffs manifests with every live peer and pulls the
// missing blobs this node should replicate.
func (c *Cluster) antiEntropyCycle(ctx context.Context) {
	for _, p := range c.pees {
		if !p.healthy() {
			continue
		}
		body, err := c.getBytes(ctx, p, "/v1/cluster/manifest", c.cfg.LookupTimeout)
		if err == errPeerDown {
			p.markDown(time.Now())
			continue
		}
		if err != nil || body == nil {
			continue
		}
		var m manifestView
		if json.Unmarshal(body, &m) != nil {
			continue
		}
		for _, key := range m.Keys {
			if ctx.Err() != nil {
				return
			}
			if !c.ownsKey(key) || c.srv.Corpus().HasBlob(key) {
				continue
			}
			// Best-effort: a failed pull retries next cycle.
			_ = c.pullBlob(ctx, key)
		}
	}
	c.aeCycles.Inc()
}

// healLocal audits the local corpus and drops any blob that fails its
// content check, so the anti-entropy pull path restores a clean replica.
// Orphan blobs (no manifest entry) are left alone — they cost disk, not
// correctness, and deleting data is not this loop's job.
func (c *Cluster) healLocal() {
	rep, err := c.srv.Corpus().Verify()
	if err != nil {
		return
	}
	for _, key := range rep.Corrupt {
		if c.srv.Corpus().DropBlob(key) == nil {
			c.healed.Inc()
		}
	}
	// Missing blobs (manifest entry, no file) need no drop — just count
	// them as healing work for the pull path.
	c.healed.Add(len(rep.Missing))
}
