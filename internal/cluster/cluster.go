// Package cluster turns a standalone sherlockd into one node of a
// peer-to-peer cluster with no coordinator and no external dependencies.
//
// Three ideas carry the whole design:
//
//  1. Everything is content-addressed — corpus blobs, job keys, result
//     bodies — so replication needs no versioning and no conflict
//     resolution: two copies of a key are byte-identical by construction,
//     and a SHA-256 check on receipt is a full integrity proof.
//  2. Placement is a pure function. Every node derives the same
//     consistent-hash ring from the same static membership (ring.go), so
//     "who owns this key" is answered locally on every node. A node that
//     does not own a submitted job proxies it to the owner and streams
//     the result back; the owner computes once and every node's cache
//     converges on the same bytes.
//  3. Peers heal by anti-entropy, not by protocol. Nodes periodically
//     diff corpus manifests and pull the blobs they should replicate
//     (antientropy.go); missed fan-outs, rebooted nodes, and bit rot all
//     converge through the same loop.
//
// The cluster layer plugs into the server through the narrow
// server.ClusterHook seam and adds its own /v1/cluster/* routes
// (handler.go). With an empty peer set every hook degrades to a no-op
// and the node behaves exactly like a standalone daemon.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"sherlock/internal/server"
	"sherlock/internal/store"
)

// Config describes one node's view of the cluster.
type Config struct {
	// NodeID is this node's member name. Required; must appear in Peers.
	NodeID string
	// Peers maps member name -> base URL ("http://host:port") for EVERY
	// cluster member including this node. All members must agree on this
	// map (static membership).
	Peers map[string]string
	// Replicas is the number of nodes that should hold each corpus blob
	// and each cached result (owner included). Default 2, capped at the
	// cluster size.
	Replicas int
	// AntiEntropyInterval is the period of the manifest-diff repair loop.
	// Default 5s; 0 keeps the default, negative disables the loop.
	AntiEntropyInterval time.Duration
	// VerifyEvery runs a full local corpus verification every N
	// anti-entropy cycles, dropping and re-pulling corrupt blobs. 0
	// disables (verification scans every blob — cheap for test corpora,
	// noticeable for huge ones).
	VerifyEvery int
	// ProbeInterval is the health-probe cadence. Default 1s.
	ProbeInterval time.Duration
	// LookupTimeout bounds one peer round-trip on the submit fast path
	// (cache lookups, probes). Default 2s.
	LookupTimeout time.Duration
	// ProxyTimeout bounds one remote job execution end to end. Default
	// 2m — a proxied job waits out the owner's queue and compute.
	ProxyTimeout time.Duration
}

func (c *Config) fillDefaults() error {
	if c.NodeID == "" {
		return fmt.Errorf("cluster: NodeID is required")
	}
	if _, ok := c.Peers[c.NodeID]; !ok && len(c.Peers) > 0 {
		return fmt.Errorf("cluster: NodeID %q is not in the peer map", c.NodeID)
	}
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.AntiEntropyInterval == 0 {
		c.AntiEntropyInterval = 5 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.LookupTimeout <= 0 {
		c.LookupTimeout = 2 * time.Second
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 2 * time.Minute
	}
	return nil
}

// Cluster implements server.ClusterHook for one node.
type Cluster struct {
	cfg  Config
	srv  *server.Server
	ring *Ring
	self string
	pees map[string]*peer // remote members only, by id
	hc   *http.Client     // shared transport; per-request timeouts via ctx

	runCtx    context.Context
	runCancel context.CancelFunc
	wg        sync.WaitGroup
	stopMu    sync.Mutex
	stopped   bool
	stopOnce  sync.Once

	// Metrics (registered in the server's registry so /metrics carries
	// cluster health next to job stats).
	proxied    *server.Counter // jobs this node routed to an owner
	proxyFails *server.Counter // routed attempts that fell back local
	remoteHits *server.Counter // FastLookup hits served by a peer
	pulled     *server.Counter // blobs pulled by anti-entropy/EnsureTraces
	fanned     *server.Counter // blobs pushed by upload fan-out
	published  *server.Counter // watch results offered to peers
	aeCycles   *server.Counter // anti-entropy cycles completed
	healed     *server.Counter // corrupt blobs dropped and re-pulled
}

// New builds the cluster layer for a server and installs it via
// SetCluster. Call Start to begin probing and anti-entropy, Stop to tear
// down. The server must not be serving traffic yet.
func New(cfg Config, srv *server.Server) (*Cluster, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	members := make([]string, 0, len(cfg.Peers))
	for id := range cfg.Peers {
		members = append(members, id)
	}
	if len(members) == 0 {
		members = []string{cfg.NodeID}
	}
	sort.Strings(members)

	reg := srv.Registry()
	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{
		cfg:       cfg,
		srv:       srv,
		ring:      NewRing(members),
		self:      cfg.NodeID,
		pees:      make(map[string]*peer),
		hc:        &http.Client{},
		runCtx:    ctx,
		runCancel: cancel,

		proxied:    reg.Counter("sherlock_cluster_proxied_jobs_total", "Jobs this node routed to their owner node."),
		proxyFails: reg.Counter("sherlock_cluster_proxy_failures_total", "Routed job attempts that fell back to local compute."),
		remoteHits: reg.Counter("sherlock_cluster_remote_cache_hits_total", "Submit-path cache lookups answered by a peer."),
		pulled:     reg.Counter("sherlock_cluster_anti_entropy_pulled_blobs_total", "Corpus blobs pulled from peers (anti-entropy and on-demand)."),
		fanned:     reg.Counter("sherlock_cluster_replicated_blobs_total", "Corpus blobs pushed to peers by upload fan-out."),
		published:  reg.Counter("sherlock_cluster_published_results_total", "Watch results offered to owning peers."),
		aeCycles:   reg.Counter("sherlock_cluster_anti_entropy_cycles_total", "Anti-entropy cycles completed."),
		healed:     reg.Counter("sherlock_cluster_healed_blobs_total", "Corrupt or missing local blobs dropped for re-pull."),
	}
	for id, base := range cfg.Peers {
		if id == c.self {
			continue
		}
		c.pees[id] = newPeer(id, base, reg.Gauge("sherlock_cluster_peer_up", "Peer liveness (1 = reachable).", "peer", id))
	}
	srv.SetCluster(c)
	return c, nil
}

// Start launches the health-probe and anti-entropy loops.
func (c *Cluster) Start() {
	if len(c.pees) > 0 {
		c.wg.Add(1)
		go c.probeLoop()
		if c.cfg.AntiEntropyInterval > 0 {
			c.wg.Add(1)
			go c.antiEntropyLoop()
		}
	}
}

// Stop cancels background work and waits for it. Idempotent.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		c.stopMu.Lock()
		c.stopped = true
		c.stopMu.Unlock()
		c.runCancel()
		c.wg.Wait()
	})
}

// goAsync runs fn on a tracked goroutine, refusing (false) once Stop has
// begun — the Add would race the final Wait.
func (c *Cluster) goAsync(fn func()) bool {
	c.stopMu.Lock()
	if c.stopped {
		c.stopMu.Unlock()
		return false
	}
	c.wg.Add(1)
	c.stopMu.Unlock()
	go func() {
		defer c.wg.Done()
		fn()
	}()
	return true
}

// NodeID returns this node's member name.
func (c *Cluster) NodeID() string { return c.self }

// Ring exposes the placement function (tests, info endpoint).
func (c *Cluster) Ring() *Ring { return c.ring }

// probeLoop keeps peer liveness fresh: every ProbeInterval it probes the
// peers that are due (all up peers; down peers per their backoff).
func (c *Cluster) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.runCtx.Done():
			return
		case now := <-t.C:
			for _, p := range c.pees {
				if p.probeDue(now) {
					c.probe(p)
				}
			}
		}
	}
}

// probe checks one peer's /healthz. Any HTTP response proves the process
// is alive and serving; a draining peer answers 503 and is treated as
// down so routing stops sending it new work.
func (c *Cluster) probe(p *peer) {
	ctx, cancel := context.WithTimeout(c.runCtx, c.cfg.LookupTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/healthz", nil)
	if err != nil {
		p.markDown(time.Now())
		return
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		p.markDown(time.Now())
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		p.markUp()
	} else {
		p.markDown(time.Now())
	}
}

// replicaPeers resolves a key's replica set to live peer handles,
// preserving ring order and dropping self.
func (c *Cluster) replicaPeers(key string) []*peer {
	var out []*peer
	for _, id := range c.ring.Replicas(key, c.cfg.Replicas) {
		if id == c.self {
			continue
		}
		if p, ok := c.pees[id]; ok {
			out = append(out, p)
		}
	}
	return out
}

// ownsKey reports whether this node is in a key's replica set.
func (c *Cluster) ownsKey(key string) bool {
	for _, id := range c.ring.Replicas(key, c.cfg.Replicas) {
		if id == c.self {
			return true
		}
	}
	return false
}

// ---- server.ClusterHook ----

// FastLookup asks the key's owning peers for a cached result body. Sits
// on the submit path: every probe is bounded by LookupTimeout and only
// healthy peers are asked.
func (c *Cluster) FastLookup(ctx context.Context, key string) ([]byte, bool) {
	for _, p := range c.replicaPeers(key) {
		if !p.healthy() {
			continue
		}
		body, err := c.getBytes(ctx, p, "/v1/cluster/cache/"+key, c.cfg.LookupTimeout)
		if err == errPeerDown {
			p.markDown(time.Now())
			continue
		}
		if err != nil || body == nil {
			continue // clean miss on that peer
		}
		c.remoteHits.Inc()
		return body, true
	}
	return nil, false
}

// ProxyJob routes a job to the first live node in its replica set. Self
// in the set (or an exhausted set) declines: the caller computes
// locally. The remote submission carries the no-proxy marker, so routing
// disagreement between nodes costs one extra hop, never a loop.
func (c *Cluster) ProxyJob(ctx context.Context, key string, spec server.JobSpec) ([]byte, bool) {
	for _, id := range c.ring.Replicas(key, c.cfg.Replicas) {
		if id == c.self {
			return nil, false // our key: compute here
		}
		p, ok := c.pees[id]
		if !ok || !p.healthy() {
			continue
		}
		body, err := c.remoteExecute(ctx, p, key, spec)
		if err == nil {
			c.proxied.Inc()
			return body, true
		}
		c.proxyFails.Inc()
		if err == errPeerDown {
			p.markDown(time.Now())
		}
		if ctx.Err() != nil {
			break // the client gave up; no point trying further peers
		}
	}
	return nil, false
}

// PublishResult pushes a result body to the key's owning peers,
// asynchronously and best-effort (a missed push is a future FastLookup
// miss, not an error).
func (c *Cluster) PublishResult(key string, body []byte) {
	peers := c.replicaPeers(key)
	if len(peers) == 0 {
		return
	}
	c.goAsync(func() {
		for _, p := range peers {
			if !p.healthy() {
				continue
			}
			if err := c.putBytes(c.runCtx, p, "/v1/cluster/cache/"+key, body, c.cfg.LookupTimeout); err == nil {
				c.published.Inc()
			} else if err == errPeerDown {
				p.markDown(time.Now())
			}
		}
	})
}

// EnsureTraces pulls every named corpus blob this node is missing from
// its peers, SHA-256-verified by re-ingestion. Any blob found nowhere
// fails the whole call — the job cannot run without its input.
func (c *Cluster) EnsureTraces(ctx context.Context, keys []string) error {
	for _, key := range keys {
		if c.srv.Corpus().HasBlob(key) {
			continue
		}
		if err := c.pullBlob(ctx, key); err != nil {
			return fmt.Errorf("trace %s: %w", key, err)
		}
	}
	return nil
}

// pullBlob fetches one corpus blob: the key's replica peers first, then
// every other live peer (the blob may live where it was uploaded before
// any fan-out completed). Ingestion re-derives the content address, so a
// corrupt or substituted body can never enter the corpus under this key.
func (c *Cluster) pullBlob(ctx context.Context, key string) error {
	tried := make(map[string]bool)
	candidates := c.replicaPeers(key)
	for _, p := range c.pees {
		candidates = append(candidates, p)
	}
	var lastErr error = fmt.Errorf("no live peer holds it")
	for _, p := range candidates {
		if tried[p.id] || !p.healthy() {
			continue
		}
		tried[p.id] = true
		body, err := c.getBytes(ctx, p, "/v1/cluster/blob/"+key, c.cfg.LookupTimeout)
		if err == errPeerDown {
			p.markDown(time.Now())
			continue
		}
		if err != nil {
			lastErr = err
			continue
		}
		if body == nil {
			continue // that peer doesn't have it
		}
		if err := c.ingestVerified(key, body); err != nil {
			lastErr = err
			continue
		}
		c.pulled.Inc()
		return nil
	}
	return lastErr
}

// ingestVerified decodes and ingests a blob body, failing unless the
// corpus derives exactly the expected content address from it.
func (c *Cluster) ingestVerified(key string, body []byte) error {
	tr, err := store.DecodeTrace(body)
	if err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	entry, _, err := c.srv.Corpus().Ingest(tr)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	if entry.Key != key {
		return fmt.Errorf("content mismatch: got %s, want %s", entry.Key, key)
	}
	return nil
}

// ReplicateBlob pushes a freshly ingested blob to the key's owner and
// replicas, asynchronously. Anti-entropy repairs whatever this misses.
func (c *Cluster) ReplicateBlob(key string) {
	peers := c.replicaPeers(key)
	if len(peers) == 0 {
		return
	}
	c.goAsync(func() {
		body, err := c.srv.Corpus().ReadBlob(key)
		if err != nil {
			return
		}
		for _, p := range peers {
			if !p.healthy() {
				continue
			}
			if err := c.putBytes(c.runCtx, p, "/v1/cluster/blob/"+key, body, c.cfg.ProxyTimeout); err == nil {
				c.fanned.Inc()
			} else if err == errPeerDown {
				p.markDown(time.Now())
			}
		}
	})
}

// ---- HTTP plumbing ----

// errPeerDown marks transport-level failures (connection refused, timeout)
// as opposed to clean application answers (404 miss, 4xx rejection).
var errPeerDown = fmt.Errorf("peer unreachable")

// getBytes GETs a peer path. Returns (nil, nil) on 404 — a clean miss —
// and errPeerDown on transport errors.
func (c *Cluster) getBytes(ctx context.Context, p *peer, path string, timeout time.Duration) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, errPeerDown
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, errPeerDown
		}
		return body, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body)
		return nil, nil
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("peer %s: GET %s: HTTP %d: %s", p.id, path, resp.StatusCode, msg)
	}
}

// putBytes PUTs a body to a peer path. errPeerDown on transport errors.
func (c *Cluster) putBytes(ctx context.Context, p *peer, path string, body []byte, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, p.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return errPeerDown
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("peer %s: PUT %s: HTTP %d", p.id, path, resp.StatusCode)
	}
	return nil
}

// remoteJobView is the slice of the server's job view routing needs.
type remoteJobView struct {
	ID     string `json:"id"`
	Key    string `json:"key"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// remoteExecute runs one job on a peer: submit with the no-proxy marker,
// wait out the remote execution, fetch the result body. The remote node
// computes the job key independently; a mismatch means the two nodes
// disagree on configuration and the result would be cached under the
// wrong address — refuse it.
func (c *Cluster) remoteExecute(ctx context.Context, p *peer, key string, spec server.JobSpec) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.ProxyTimeout)
	defer cancel()

	specBody, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+"/v1/jobs", bytes.NewReader(specBody))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.NoProxyHeader, "1")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, errPeerDown
	}
	viewBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, errPeerDown
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		if len(viewBody) > 512 {
			viewBody = viewBody[:512]
		}
		return nil, fmt.Errorf("peer %s: submit: HTTP %d: %s", p.id, resp.StatusCode, viewBody)
	}
	var view remoteJobView
	if err := json.Unmarshal(viewBody, &view); err != nil {
		return nil, fmt.Errorf("peer %s: submit: bad job view: %w", p.id, err)
	}
	if view.Key != key {
		return nil, fmt.Errorf("peer %s: job key mismatch: remote %s, local %s (config drift?)", p.id, view.Key, key)
	}

	// Long-poll until terminal. One blocking watch request replaces a
	// tight status-poll loop; on a loaded cluster the poll traffic itself
	// is a measurable CPU tax on the owner.
	for view.Status != "done" {
		switch view.Status {
		case "failed", "canceled":
			return nil, fmt.Errorf("peer %s: remote job %s: %s", p.id, view.Status, view.Error)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		body, err := c.getBytes(ctx, p, "/v1/jobs/"+view.ID+"/watch?timeout=25", 30*time.Second)
		if err != nil || body == nil {
			return nil, fmt.Errorf("peer %s: watch job %s: %w", p.id, view.ID, err)
		}
		if err := json.Unmarshal(body, &view); err != nil {
			return nil, fmt.Errorf("peer %s: watch job %s: %w", p.id, view.ID, err)
		}
	}
	result, err := c.getBytes(ctx, p, "/v1/results/"+key, c.cfg.LookupTimeout)
	if err != nil {
		return nil, err
	}
	if result == nil {
		return nil, fmt.Errorf("peer %s: job done but result %s missing", p.id, key)
	}
	return result, nil
}
