// Integration tests: real multi-node clusters over loopback HTTP.
// Each node is a full server.Server + Cluster pair on its own listener
// and corpus directory; nothing is mocked, so these tests cover the
// wire protocol, routing, replication, and failure handling end to end.
package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"sherlock/internal/apps"
	"sherlock/internal/sched"
	"sherlock/internal/server"
	"sherlock/internal/store"
	"sherlock/internal/trace"
)

// node is one cluster member under test.
type node struct {
	id  string
	srv *server.Server
	cl  *Cluster
	hs  *httptest.Server
	url string
}

func (n *node) stop() {
	if n.hs != nil {
		n.hs.Close()
	}
	if n.cl != nil {
		n.cl.Stop()
	}
	if n.srv != nil {
		n.srv.Close()
	}
	n.hs, n.cl, n.srv = nil, nil, nil
}

// testServerConfig is the fast inference config every test node shares —
// cluster nodes must agree on it or job keys diverge.
func testServerConfig(t *testing.T) server.Config {
	cfg := server.DefaultConfig()
	cfg.Workers = 2
	cfg.QueueSize = 64
	cfg.CacheCapacity = 128
	cfg.JobTimeout = time.Minute
	cfg.Inference.Rounds = 1
	cfg.CorpusDir = t.TempDir()
	return cfg
}

// startCluster boots n nodes with listeners bound before any node
// starts, so the shared peer map holds real addresses.
func startCluster(t *testing.T, n int, replicas int) []*node {
	t.Helper()
	listeners := make([]net.Listener, n)
	peers := make(map[string]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		peers[fmt.Sprintf("n%d", i)] = "http://" + ln.Addr().String()
	}
	nodes := make([]*node, n)
	for i := range nodes {
		id := fmt.Sprintf("n%d", i)
		s, err := server.New(testServerConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		cl, err := New(Config{
			NodeID:              id,
			Peers:               peers,
			Replicas:            replicas,
			AntiEntropyInterval: 100 * time.Millisecond,
			VerifyEvery:         5,
			ProbeInterval:       100 * time.Millisecond,
			LookupTimeout:       2 * time.Second,
			ProxyTimeout:        time.Minute,
		}, s)
		if err != nil {
			t.Fatal(err)
		}
		hs := &httptest.Server{
			Listener: listeners[i],
			Config:   &http.Server{Handler: cl.Handler()},
		}
		hs.Start()
		cl.Start()
		nodes[i] = &node{id: id, srv: s, cl: cl, hs: hs, url: peers[id]}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.stop()
		}
	})
	return nodes
}

// ---- small HTTP helpers ----

func appTrace(t *testing.T, app string, seed int64) *trace.Trace {
	t.Helper()
	a, err := apps.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sched.Run(a, a.Tests[0], sched.Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return run.Trace
}

func uploadTrace(t *testing.T, base string, tr *trace.Trace) string {
	t.Helper()
	bin, err := store.EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: %s: %s", resp.Status, body)
	}
	var v struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v.Key
}

type jobResp struct {
	ID      string `json:"id"`
	Key     string `json:"key"`
	Status  string `json:"status"`
	Cached  bool   `json:"cached"`
	Proxied bool   `json:"proxied"`
	Error   string `json:"error"`
}

// submitAndWait posts a job spec and drives it to done, returning the
// terminal view and the result body.
func submitAndWait(t *testing.T, base string, spec map[string]any) (jobResp, []byte) {
	t.Helper()
	buf, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit to %s: %s: %s", base, resp.Status, body)
	}
	var v jobResp
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for v.Status != "done" {
		if v.Status == "failed" || v.Status == "canceled" {
			t.Fatalf("job %s: %s: %s", v.ID, v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", v.ID, v.Status)
		}
		time.Sleep(10 * time.Millisecond)
		r2, err := http.Get(base + "/v1/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		b2, _ := io.ReadAll(r2.Body)
		r2.Body.Close()
		if err := json.Unmarshal(b2, &v); err != nil {
			t.Fatal(err)
		}
	}
	r3, err := http.Get(base + "/v1/results/" + v.Key)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	result, _ := io.ReadAll(r3.Body)
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("result %s: %s: %s", v.Key, r3.Status, result)
	}
	return v, result
}

// normalizeTiming zeroes the wall-clock overhead fields of a marshalled
// result. Two INDEPENDENT computes of the same job are byte-identical
// except for measured wall time (RunWall/SolveWall); comparisons between
// separately computed results must ignore exactly those fields. (Served
// copies of ONE compute are compared raw — they must match bit for bit.)
var wallField = regexp.MustCompile(`"(RunWall|SolveWall)":[0-9]+`)

func normalizeTiming(body []byte) []byte {
	return wallField.ReplaceAll(body, []byte(`"$1":0`))
}

// metricValue scrapes one (possibly labeled) counter/gauge off /metrics.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{[^}]*\})? ([0-9.e+-]+)$`)
	total := 0.0
	for _, m := range re.FindAllStringSubmatch(string(body), -1) {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("bad metric %s value %q", name, m[1])
		}
		total += v
	}
	return total
}

func clusterComputedTotal(t *testing.T, nodes []*node) float64 {
	t.Helper()
	total := 0.0
	for _, nd := range nodes {
		if nd.hs != nil {
			total += metricValue(t, nd.url, "sherlock_jobs_computed_total")
		}
	}
	return total
}

// ---- the tests ----

// TestClusterSingleComputeAndCoherence is the core acceptance test:
// upload a trace to node A only, submit the job to node B, and assert
// (a) the result is byte-identical to a standalone single-node solve,
// (b) the whole cluster computed it exactly once, and (c) re-submitting
// on EVERY node is a cache hit with zero additional computes.
func TestClusterSingleComputeAndCoherence(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	tr := appTrace(t, "App-1", 7)

	// Reference: a standalone server with the same inference config.
	ref, err := server.New(testServerConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	refHS := httptest.NewServer(ref.Handler())
	defer func() { refHS.Close(); ref.Close() }()
	refKey := uploadTrace(t, refHS.URL, tr)
	_, refBody := submitAndWait(t, refHS.URL, map[string]any{"trace_keys": []string{refKey}})

	// Cluster: upload to n0, submit to n1 — n1 must pull the blob or
	// route the job; either way the bytes must match the reference.
	key := uploadTrace(t, nodes[0].url, tr)
	if key != refKey {
		t.Fatalf("corpus key drift: %s vs %s", key, refKey)
	}
	view, body := submitAndWait(t, nodes[1].url, map[string]any{"trace_keys": []string{key}})
	if !bytes.Equal(normalizeTiming(body), normalizeTiming(refBody)) {
		t.Fatalf("cluster result differs from single-node result\ncluster: %s\nsingle:  %s", body, refBody)
	}
	if got := clusterComputedTotal(t, nodes); got != 1 {
		t.Fatalf("cluster computed the job %v times, want exactly 1", got)
	}

	// Every node must now answer the same submission from cache, with no
	// further computes anywhere (local hit, peer hit, or proxy-to-cache).
	for _, nd := range nodes {
		v, b := submitAndWait(t, nd.url, map[string]any{"trace_keys": []string{key}})
		if !bytes.Equal(b, body) {
			t.Fatalf("node %s returned different bytes", nd.id)
		}
		if v.Status != "done" {
			t.Fatalf("node %s: %+v", nd.id, v)
		}
	}
	if got := clusterComputedTotal(t, nodes); got != 1 {
		t.Fatalf("resubmissions recomputed: computed total %v, want 1", got)
	}
	if view.Key == "" {
		t.Fatal("job view lost its key")
	}
}

// TestClusterOwnerDown: with the key's owner killed, surviving nodes
// must still serve the job (replica failover or local degradation), and
// the bytes must match what the full cluster produced.
func TestClusterOwnerDown(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	tr := appTrace(t, "App-2", 3)
	key := uploadTrace(t, nodes[0].url, tr)

	// Let the upload fan-out and anti-entropy spread the blob.
	spec := map[string]any{"trace_keys": []string{key}}
	_, want := submitAndWait(t, nodes[0].url, spec)

	// Find the job key's owner and kill that node.
	jobKey := func() string {
		v, _ := submitAndWait(t, nodes[0].url, spec)
		return v.Key
	}()
	owner := nodes[0].cl.Ring().Owner(jobKey)
	var killed *node
	survivors := make([]*node, 0, 2)
	for _, nd := range nodes {
		if nd.id == owner {
			killed = nd
		} else {
			survivors = append(survivors, nd)
		}
	}
	if killed == nil {
		t.Fatalf("owner %s not among nodes", owner)
	}
	killed.stop()

	// Give probes a moment to notice; then every survivor must answer.
	time.Sleep(300 * time.Millisecond)
	for _, nd := range survivors {
		v, got := submitAndWait(t, nd.url, spec)
		if !bytes.Equal(normalizeTiming(got), normalizeTiming(want)) {
			t.Fatalf("node %s served different bytes after owner death", nd.id)
		}
		if v.Status != "done" {
			t.Fatalf("node %s: %+v", nd.id, v)
		}
	}

	// A FRESH key owned by the dead node must also be served: replicas
	// fail over, or the submitting node degrades to local compute.
	freshSpec := map[string]any{"trace_keys": []string{key}, "seed": 41}
	v, got := submitAndWait(t, survivors[0].url, freshSpec)
	if v.Status != "done" || len(got) == 0 {
		t.Fatalf("fresh job after owner death: %+v", v)
	}
}

// TestClusterAntiEntropyReplication: a blob uploaded to one node must
// appear on its replica nodes without any job ever referencing it.
func TestClusterAntiEntropyReplication(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	tr := appTrace(t, "App-3", 11)
	key := uploadTrace(t, nodes[0].url, tr)

	byID := map[string]*node{}
	for _, nd := range nodes {
		byID[nd.id] = nd
	}
	replicas := nodes[0].cl.Ring().Replicas(key, 2)
	deadline := time.Now().Add(10 * time.Second)
	for {
		missing := ""
		for _, id := range replicas {
			if !byID[id].srv.Corpus().HasBlob(key) {
				missing = id
				break
			}
		}
		if missing == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica %s never received blob %s (replicas %v)", missing, key, replicas)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The corpus must verify clean everywhere it landed.
	for _, id := range replicas {
		rep, err := byID[id].srv.Corpus().Verify()
		if err != nil || !rep.Clean() {
			t.Fatalf("node %s corpus dirty after replication: %+v (%v)", id, rep, err)
		}
	}
}

// TestClusterWatchPublishPropagates: a watch job's published result on
// one node must become a remote cache hit for a one-shot submission of
// the equivalent trace_keys job on another node, without recompute.
func TestClusterWatchPublishPropagates(t *testing.T) {
	nodes := startCluster(t, 2, 2)
	tr := appTrace(t, "App-4", 5)

	// Start the watch on n0, then ingest the matching trace there.
	buf, _ := json.Marshal(map[string]any{"watch_app": "App-4"})
	resp, err := http.Post(nodes[0].url+"/v1/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	wBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var wv jobResp
	if err := json.Unmarshal(wBody, &wv); err != nil {
		t.Fatal(err)
	}
	key := uploadTrace(t, nodes[0].url, tr)

	// Wait for the first publish.
	deadline := time.Now().Add(30 * time.Second)
	var published string
	for published == "" {
		if time.Now().After(deadline) {
			t.Fatal("watch job never published")
		}
		time.Sleep(50 * time.Millisecond)
		r, err := http.Get(nodes[0].url + "/v1/jobs/" + wv.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		var v jobResp
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatal(err)
		}
		published = v.Key
	}

	// n1 submits the equivalent one-shot: it must be served from cache
	// (local push or peer lookup), never recomputed.
	before := clusterComputedTotal(t, nodes)
	v, body := submitAndWait(t, nodes[1].url, map[string]any{"trace_keys": []string{key}})
	if v.Key != published {
		t.Fatalf("one-shot key %s != watch-published key %s", v.Key, published)
	}
	if len(body) == 0 {
		t.Fatal("empty result body")
	}
	if after := clusterComputedTotal(t, nodes); after != before {
		t.Fatalf("one-shot equivalent of a published watch result recomputed (%v -> %v)", before, after)
	}
}

// TestClusterSingleNodeDegradation: a one-member "cluster" must behave
// exactly like a standalone server — every hook a no-op, no peers, no
// background chatter.
func TestClusterSingleNodeDegradation(t *testing.T) {
	nodes := startCluster(t, 1, 2)
	tr := appTrace(t, "App-1", 2)
	key := uploadTrace(t, nodes[0].url, tr)
	_, body := submitAndWait(t, nodes[0].url, map[string]any{"trace_keys": []string{key}})
	if len(body) == 0 {
		t.Fatal("empty result")
	}
	if got := clusterComputedTotal(t, nodes); got != 1 {
		t.Fatalf("computed %v, want 1", got)
	}
}

// trySubmit is submitAndWait without t.Fatal, safe to call from worker
// goroutines: it returns the error instead of failing the test.
func trySubmit(base string, spec map[string]any) (jobResp, []byte, error) {
	var v jobResp
	buf, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		return v, nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return v, nil, fmt.Errorf("submit to %s: %s: %s", base, resp.Status, body)
	}
	if err := json.Unmarshal(body, &v); err != nil {
		return v, nil, err
	}
	deadline := time.Now().Add(time.Minute)
	for v.Status != "done" {
		if v.Status == "failed" || v.Status == "canceled" {
			return v, nil, fmt.Errorf("job %s: %s: %s", v.ID, v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			return v, nil, fmt.Errorf("job %s stuck in %s", v.ID, v.Status)
		}
		time.Sleep(10 * time.Millisecond)
		r2, err := http.Get(base + "/v1/jobs/" + v.ID)
		if err != nil {
			return v, nil, err
		}
		b2, _ := io.ReadAll(r2.Body)
		r2.Body.Close()
		if err := json.Unmarshal(b2, &v); err != nil {
			return v, nil, err
		}
	}
	r3, err := http.Get(base + "/v1/results/" + v.Key)
	if err != nil {
		return v, nil, err
	}
	defer r3.Body.Close()
	result, _ := io.ReadAll(r3.Body)
	if r3.StatusCode != http.StatusOK {
		return v, nil, fmt.Errorf("result %s: %s: %s", v.Key, r3.Status, result)
	}
	return v, result, nil
}

// TestClusterKillMidStream is the no-lost-jobs guarantee: a node dies
// while a stream of submissions is in flight against the survivors, and
// every accepted job must still complete with bytes identical to the
// pre-kill compute of the same key.
func TestClusterKillMidStream(t *testing.T) {
	nodes := startCluster(t, 3, 2)
	tr := appTrace(t, "App-1", 5)
	key := uploadTrace(t, nodes[0].url, tr)

	// Pre-compute every key once so each stream job has reference bytes.
	const seeds = 4
	want := make(map[int64][]byte, seeds)
	for s := int64(1); s <= seeds; s++ {
		_, body := submitAndWait(t, nodes[0].url, map[string]any{
			"trace_keys": []string{key}, "seed": s,
		})
		want[s] = normalizeTiming(body)
	}

	// Survivors take the stream; the third node dies mid-flight.
	victim, survivors := nodes[2], nodes[:2]
	type res struct {
		seed int64
		body []byte
		err  error
	}
	const perWorker = 10
	results := make(chan res, 2*perWorker)
	for w, nd := range survivors {
		go func(w int, base string) {
			for i := 0; i < perWorker; i++ {
				seed := int64(1 + (w*perWorker+i)%seeds)
				_, body, err := trySubmit(base, map[string]any{
					"trace_keys": []string{key}, "seed": seed,
				})
				results <- res{seed: seed, body: body, err: err}
			}
		}(w, nd.url)
	}
	time.Sleep(50 * time.Millisecond)
	victim.stop()

	for i := 0; i < 2*perWorker; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("job lost after mid-stream kill: %v", r.err)
		}
		if !bytes.Equal(normalizeTiming(r.body), want[r.seed]) {
			t.Fatalf("seed %d: bytes differ from pre-kill compute", r.seed)
		}
	}
}
