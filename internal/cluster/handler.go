// Cluster wire surface: the /v1/cluster/* routes one node serves its
// peers, layered in front of the regular sherlockd API. These endpoints
// are deliberately dumb — they read and write LOCAL state only (local
// cache, local corpus), never consult the routing layer, and never
// recurse into another peer, so any chain of cluster calls terminates
// after one hop by construction.
package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// maxClusterBody bounds pushed blob and cache bodies, mirroring the
// server's own request cap.
const maxClusterBody = 64 << 20

// Handler returns the node's full HTTP surface: the cluster routes plus
// everything the wrapped server already serves. Serve THIS handler (not
// server.Handler) on cluster nodes.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/info", c.handleInfo)
	mux.HandleFunc("GET /v1/cluster/manifest", c.handleManifest)
	mux.HandleFunc("GET /v1/cluster/blob/{key}", c.handleBlobGet)
	mux.HandleFunc("PUT /v1/cluster/blob/{key}", c.handleBlobPut)
	mux.HandleFunc("GET /v1/cluster/cache/{key}", c.handleCacheGet)
	mux.HandleFunc("PUT /v1/cluster/cache/{key}", c.handleCachePut)
	mux.Handle("/", c.srv.Handler())
	return mux
}

// infoPeer is one member's row in the info view.
type infoPeer struct {
	ID   string `json:"id"`
	URL  string `json:"url"`
	Self bool   `json:"self,omitempty"`
	Up   bool   `json:"up"`
}

// handleInfo describes this node's view of the cluster: membership,
// liveness, and placement parameters. The sherlock CLI's `cluster` verb
// renders it.
func (c *Cluster) handleInfo(w http.ResponseWriter, r *http.Request) {
	peers := make([]infoPeer, 0, len(c.cfg.Peers))
	for id, base := range c.cfg.Peers {
		row := infoPeer{ID: id, URL: base, Self: id == c.self, Up: id == c.self}
		if p, ok := c.pees[id]; ok {
			row.Up = p.healthy()
		}
		peers = append(peers, row)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })
	writeJSON(w, http.StatusOK, struct {
		Node     string     `json:"node"`
		Replicas int        `json:"replicas"`
		Vnodes   int        `json:"vnodes_per_node"`
		Peers    []infoPeer `json:"peers"`
		// JobConfig is the node's base inference config in the canonical
		// key encoding: with it a client can compute any submission's
		// content key (server.JobKeyFromConfigText) and hash its ring
		// owner locally, skipping the proxy hop.
		JobConfig string `json:"job_config"`
	}{c.self, c.cfg.Replicas, vnodesPerNode, peers, c.srv.BaseConfigText()})
}

// handleManifest lists the local corpus key set for anti-entropy diffs.
func (c *Cluster) handleManifest(w http.ResponseWriter, r *http.Request) {
	entries := c.srv.Corpus().Entries()
	keys := make([]string, 0, len(entries))
	for _, e := range entries {
		keys = append(keys, e.Key)
	}
	writeJSON(w, http.StatusOK, manifestView{Node: c.self, Keys: keys})
}

// handleBlobGet streams one local corpus blob, raw canonical encoding.
func (c *Cluster) handleBlobGet(w http.ResponseWriter, r *http.Request) {
	body, err := c.srv.Corpus().ReadBlob(r.PathValue("key"))
	if err != nil {
		writeErr(w, http.StatusNotFound, "not_found", "no such blob")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// handleBlobPut ingests a pushed corpus blob. Ingestion re-derives the
// content address from the bytes; a mismatch with the path key is
// rejected, so a corrupt push can never poison the corpus.
func (c *Cluster) handleBlobPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxClusterBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_argument", "read body: "+err.Error())
		return
	}
	if err := c.ingestVerified(key, body); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_argument", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Key string `json:"key"`
	}{key})
}

// handleCacheGet answers from the LOCAL result cache only — it is the
// terminal hop of a peer's FastLookup and must never trigger one itself.
func (c *Cluster) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	body, ok := c.srv.Cache().Lookup(r.PathValue("key"))
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found", "not cached here")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// handleCachePut stores a pushed result body in the local cache. The
// body is a marshalled result whose key field the server derived from
// its content address; trusting the path key here is safe because cache
// entries only ever answer requests FOR that key, and a wrong body is a
// wasted slot, not corruption of anything durable.
func (c *Cluster) handleCachePut(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxClusterBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_argument", "read body: "+err.Error())
		return
	}
	c.srv.Cache().Put(r.PathValue("key"), body)
	w.WriteHeader(http.StatusNoContent)
}

// writeJSON/writeErr mirror the server's response conventions (one error
// envelope everywhere) without reaching into its unexported helpers.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, errCode, msg string) {
	writeJSON(w, code, map[string]any{"error": map[string]string{"code": errCode, "message": msg}})
}

// String implements fmt.Stringer for debugging.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster node %s (%d members, R=%d, ae=%s)",
		c.self, c.ring.Len(), c.cfg.Replicas, c.cfg.AntiEntropyInterval)
}
