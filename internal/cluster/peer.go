// Peer state: liveness and probe scheduling for one remote node. A peer
// flips between up and down on probe results; while down, probes back
// off exponentially so a dead node costs a bounded trickle of traffic,
// and routing skips it entirely. Any successful response on a real
// request also counts as proof of life, so a recovered peer returns to
// rotation ahead of its next scheduled probe.
package cluster

import (
	"sync"
	"time"

	"sherlock/internal/server"
)

const (
	probeBackoffMin = 250 * time.Millisecond
	probeBackoffMax = 15 * time.Second
)

type peer struct {
	id   string
	base string // e.g. "http://127.0.0.1:9011"

	mu        sync.Mutex
	up        bool
	backoff   time.Duration
	nextProbe time.Time // zero while up: probe on every health tick

	upGauge *server.Gauge // sherlock_cluster_peer_up{peer=<id>}
}

// newPeer starts optimistic: the peer counts as up until a probe or a
// request says otherwise, so a cluster booting all at once routes
// immediately instead of waiting out a probe round.
func newPeer(id, base string, g *server.Gauge) *peer {
	p := &peer{id: id, base: base, up: true}
	if g != nil {
		p.upGauge = g
		g.Set(1)
	}
	return p
}

// healthy reports whether routing should consider this peer.
func (p *peer) healthy() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.up
}

// markUp records proof of life and resets the probe backoff.
func (p *peer) markUp() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.up && p.upGauge != nil {
		p.upGauge.Set(1)
	}
	p.up = true
	p.backoff = 0
	p.nextProbe = time.Time{}
}

// markDown records a failed probe or request and schedules the next
// probe with doubled backoff.
func (p *peer) markDown(now time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.up && p.upGauge != nil {
		p.upGauge.Set(0)
	}
	p.up = false
	if p.backoff == 0 {
		p.backoff = probeBackoffMin
	} else if p.backoff *= 2; p.backoff > probeBackoffMax {
		p.backoff = probeBackoffMax
	}
	p.nextProbe = now.Add(p.backoff)
}

// probeDue reports whether the health loop should probe this peer now.
// Up peers are probed on every tick (cheap, keeps detection latency at
// one probe interval); down peers only once their backoff expires.
func (p *peer) probeDue(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.up || !now.Before(p.nextProbe)
}
