// Consistent-hash ring: the cluster's only placement authority. Every
// node builds the same ring from the same static membership, so any node
// can compute any key's owner and replica set locally, with no
// coordination traffic and no directory service. Virtual nodes smooth
// the key distribution; FNV-64a keeps the hash dependency-free and fast
// enough to sit on every submit path.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// vnodesPerNode is the number of ring points each member contributes.
// 64 points per node keeps the max/min keyspace share within ~2x for
// small clusters, which is plenty for a result cache (imbalance costs
// capacity, not correctness).
const vnodesPerNode = 64

type ringPoint struct {
	hash uint64
	node string
}

// Ring is an immutable consistent-hash ring over a node-ID set.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted, distinct
}

// NewRing builds the ring for a membership set. Order of the input does
// not matter; duplicate IDs collapse. An empty membership yields a ring
// that owns nothing (every lookup returns "").
func NewRing(nodes []string) *Ring {
	seen := make(map[string]bool, len(nodes))
	r := &Ring{}
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		r.nodes = append(r.nodes, n)
		for i := 0; i < vnodesPerNode; i++ {
			r.points = append(r.points, ringPoint{hashString(fmt.Sprintf("%s#%d", n, i)), n})
		}
	}
	sort.Strings(r.nodes)
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by node ID so every member
		// still computes the identical ring.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the membership, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node owning a key: the first ring point at or after
// the key's hash, wrapping around. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].node
}

// Replicas returns up to n distinct nodes for a key, owner first, then
// successors clockwise around the ring. n larger than the membership
// returns every node.
func (r *Ring) Replicas(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// search finds the index of the first point with hash >= the key's hash,
// wrapping to 0 past the end.
func (r *Ring) search(key string) int {
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a splitmix64-style finalizer. Raw FNV over short, similar
// strings ("n0#12", "n0#13", ...) lands ring points unevenly around the
// 64-bit circle — a full avalanche pass restores the uniformity the
// ring's balance depends on.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
