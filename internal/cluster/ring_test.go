package cluster

import (
	"fmt"
	"testing"
)

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", i)
	}
	return keys
}

// TestRingDeterministic: every member must compute the identical ring
// regardless of the order the membership arrived in.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"n0", "n1", "n2", "n3"})
	b := NewRing([]string{"n3", "n1", "n0", "n2", "n2"}) // shuffled + dup
	for _, k := range sampleKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner disagreement for %s: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
		ra, rb := a.Replicas(k, 2), b.Replicas(k, 2)
		if fmt.Sprint(ra) != fmt.Sprint(rb) {
			t.Fatalf("replica disagreement for %s: %v vs %v", k, ra, rb)
		}
	}
}

// TestRingReplicas: owner-first, distinct, capped at the membership.
func TestRingReplicas(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"})
	for _, k := range sampleKeys(500) {
		reps := r.Replicas(k, 2)
		if len(reps) != 2 {
			t.Fatalf("want 2 replicas, got %v", reps)
		}
		if reps[0] != r.Owner(k) {
			t.Fatalf("first replica %s is not the owner %s", reps[0], r.Owner(k))
		}
		if reps[0] == reps[1] {
			t.Fatalf("duplicate replica: %v", reps)
		}
		if all := r.Replicas(k, 10); len(all) != 3 {
			t.Fatalf("replicas beyond membership: %v", all)
		}
	}
	if NewRing(nil).Owner("x") != "" {
		t.Fatal("empty ring should own nothing")
	}
	if got := NewRing([]string{"solo"}).Replicas("x", 3); len(got) != 1 || got[0] != "solo" {
		t.Fatalf("single-node ring: %v", got)
	}
}

// TestRingBalance: with 64 vnodes, no node of four should stray wildly
// from its 25% share over a large keyspace.
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"n0", "n1", "n2", "n3"})
	counts := map[string]int{}
	keys := sampleKeys(20000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for node, n := range counts {
		share := float64(n) / float64(len(keys))
		if share < 0.10 || share > 0.45 {
			t.Fatalf("node %s owns %.1f%% of the keyspace (counts %v)", node, share*100, counts)
		}
	}
}

// TestRingStability: removing one member must only move the keys that
// member owned — everyone else's placement is undisturbed.
func TestRingStability(t *testing.T) {
	before := NewRing([]string{"n0", "n1", "n2", "n3"})
	after := NewRing([]string{"n0", "n1", "n3"})
	moved := 0
	keys := sampleKeys(20000)
	for _, k := range keys {
		was, is := before.Owner(k), after.Owner(k)
		if was == "n2" {
			continue // had to move
		}
		if was != is {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys moved despite their owner surviving", moved)
	}
}
