package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

// TestClusterStaticReportShared: a static report computed anywhere in the
// cluster is served from every node's /v1/apps/{id}/static byte-for-byte,
// and the whole cluster computes it exactly once (non-owner submissions
// proxy to the key's owner, the GET fetches hit the owner's cache).
func TestClusterStaticReportShared(t *testing.T) {
	nodes := startCluster(t, 3, 2)

	// Submit the static job at node 0; routing lands the compute on the
	// report key's ring owner.
	v, body := submitAndWait(t, nodes[0].url, map[string]any{"static_app": "App-1"})
	var env struct {
		App         string `json:"app"`
		ProgramHash string `json:"program_hash"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.App != "App-1" || len(env.ProgramHash) != 64 {
		t.Fatalf("bad static envelope from job %s: %s", v.ID, body)
	}

	// Every node's GET endpoint serves the identical body: locally where
	// the owner cached it, via FastLookup elsewhere.
	for _, nd := range nodes {
		resp, err := http.Get(nd.url + "/v1/apps/App-1/static")
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: static endpoint %d: %s", nd.id, resp.StatusCode, got)
		}
		if string(got) != string(body) {
			t.Errorf("%s: static report diverges from the job's result", nd.id)
		}
	}

	// Resubmitting anywhere is a cluster-wide content hit.
	resp, err := http.Post(nodes[2].url+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"static_app":"App-1"}`)))
	if err != nil {
		t.Fatal(err)
	}
	var jr jobResp
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || jr.Status != "done" {
		t.Fatalf("resubmit on n2: %d %+v — expected an instant cluster cache hit", resp.StatusCode, jr)
	}

	// In total the report was computed exactly once across the cluster.
	computes := 0.0
	for _, nd := range nodes {
		computes += metricValue(t, nd.url, "sherlock_static_reports_total")
	}
	if computes != 1 {
		t.Errorf("static report computed %g times across the cluster, want 1", computes)
	}
}

// TestClusterInfoJobConfig: /v1/cluster/info publishes the node's base
// config in the canonical key encoding, and every member publishes the
// same text (a precondition for client-side key computation).
func TestClusterInfoJobConfig(t *testing.T) {
	nodes := startCluster(t, 2, 1)
	var texts []string
	for _, nd := range nodes {
		resp, err := http.Get(nd.url + "/v1/cluster/info")
		if err != nil {
			t.Fatal(err)
		}
		var info struct {
			JobConfig string `json:"job_config"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if info.JobConfig == "" {
			t.Fatalf("%s: empty job_config", nd.id)
		}
		texts = append(texts, info.JobConfig)
	}
	if texts[0] != texts[1] {
		t.Fatalf("nodes publish different config texts:\n%q\nvs\n%q", texts[0], texts[1])
	}
}
