// Batch inference: run whole applications concurrently. This is the shape
// of the evaluation workloads (cmd/sweep, the benchmark harness): eight
// campaigns with no data dependencies between them, each internally
// parallel across its tests.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sherlock/internal/prog"
)

// InferAll runs one inference campaign per application, at most
// cfg.Parallelism campaigns concurrently (each campaign additionally
// parallelizes its own per-test runs). The result slice is indexed like
// apps; an application whose campaign failed has a nil entry and its
// error — wrapped with the application name — appears in the returned
// errors.Join aggregate. ctx cancellation stops queued campaigns from
// starting and aborts running ones between executions.
func InferAll(ctx context.Context, apps []*prog.Program, cfg Config) ([]*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid config: %w", err)
	}
	results := make([]*Result, len(apps))
	errs := make([]error, len(apps))
	workers := cfg.workers()
	if workers > len(apps) {
		workers = len(apps)
	}
	if workers < 1 {
		workers = 1
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(apps) {
					return
				}
				res, err := Infer(ctx, apps[i], cfg)
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", apps[i].Name, err)
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	return results, errors.Join(errs...)
}
