// Checkpoints: the persistent solved state of an offline inference, built
// for streaming re-solves over a growing trace corpus. A Checkpoint
// carries everything InferIncremental needs to extend a previous solve
// when new traces arrive — per-trace window extracts, the last optimal LP
// basis, and the last result (the rel/acq posteriors) — keyed by the
// covered traces' content addresses.
//
// The design choice that makes incremental results byte-identical to a
// from-scratch solve regardless of upload order: the checkpoint stores
// *inputs* per trace (pre-accumulation windows, raw duration samples,
// library-API names), not just the accumulator. Accumulation happens
// under window.AddWindowsCanonical, whose state is a function of the SET
// of extracts folded — per-pair cap admissions resolve by canonical UID
// order with late-arrival eviction, and duration statistics are exact
// integer moments — so folding only the freshly delivered extracts into
// a cached accumulator lands on the identical bits a full sorted replay
// produces. Whatever order traces arrived in, the accumulator — and with
// it the LP and its optimum — is the one a from-scratch solve over the
// full set produces. An in-memory checkpoint memoizes the accumulator
// (the `acc` field, not serialized) so the fold is O(new traces), not
// O(total extracts); a checkpoint decoded from storage rebuilds it once
// on first use. The basis is only a warm start on top: a solve from it
// lands on the same optimum bit for bit (the golden equivalence tests
// enforce this), or is rejected by the LP's exact verification and falls
// back to a cold start.
package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"sherlock/internal/lp"
	"sherlock/internal/trace"
	"sherlock/internal/window"
)

// CheckpointVersion tags the checkpoint encoding; DecodeCheckpoint rejects
// any other value, so a format change can never be misread as data.
const CheckpointVersion = "sherlock-checkpoint-v1"

// TraceExtract is one trace's contribution to inference, in replayable
// form: the windows FindConflicts+BuildWindows produce (before any
// cross-trace capping), the raw per-method duration samples, and the
// library-API names — exactly the inputs InferFromSource folds per trace.
type TraceExtract struct {
	Key    string `json:"key"` // corpus content address
	App    string `json:"app"`
	Test   string `json:"test"`
	Seed   int64  `json:"seed"`
	Events int    `json:"events"` // trace length (Overhead.Events share)

	Windows   []window.Window      `json:"windows,omitempty"`
	Durations map[string][]float64 `json:"durations,omitempty"`
	LibAPIs   []string             `json:"lib_apis,omitempty"` // sorted
}

// ExtractTrace computes a trace's extract under the given window config.
// Each window gets a UID of the FULL trace key and its ordinal, so its LP
// rows keep their names across re-encodings with different trace
// interleavings (see window.Window.UID). The key is used untruncated:
// a shortened prefix could collide across traces and silently alias two
// windows' LP rows, and row names are not size-critical.
func ExtractTrace(key string, t *trace.Trace, cfg window.Config) TraceExtract {
	conflicts := window.FindConflicts(t, cfg)
	ws := window.BuildWindows(t, conflicts)
	for i := range ws {
		ws[i].UID = key + ":" + strconv.Itoa(i)
	}
	var apis []string
	seen := map[string]bool{}
	for i := range t.Events {
		if t.Events[i].Lib && !seen[t.Events[i].Name] {
			seen[t.Events[i].Name] = true
			apis = append(apis, t.Events[i].Name)
		}
	}
	sort.Strings(apis)
	return TraceExtract{
		Key: key, App: t.App, Test: t.Test, Seed: t.Seed, Events: t.Len(),
		Windows: ws, Durations: window.MethodDurations(t), LibAPIs: apis,
	}
}

// fold replays the extract into an accumulator, mirroring what
// InferFromSource does with the live trace.
func (x *TraceExtract) fold(acc *window.Observations) {
	acc.AddWindows(x.Windows)
	acc.AddStats(x.Durations, x.LibAPIs)
}

// foldCanonical folds the extract under canonical window admission, so
// the accumulator state depends only on the set of extracts folded, not
// their arrival order. Over extracts offered in sorted-key order the
// result is bit-identical to fold.
func (x *TraceExtract) foldCanonical(acc *window.Observations) {
	acc.AddWindowsCanonical(x.Windows)
	acc.AddStats(x.Durations, x.LibAPIs)
}

// Checkpoint is the persisted state of an incremental inference: which
// traces are covered (as extracts, sorted by key), the last solve's
// optimal basis, and the last result.
type Checkpoint struct {
	Version   string         `json:"version"`
	App       string         `json:"app,omitempty"`
	ConfigSig string         `json:"config_sig"`
	Extracts  []TraceExtract `json:"extracts,omitempty"` // sorted by Key
	Basis     *lp.Basis      `json:"basis,omitempty"`
	Result    *Result        `json:"result,omitempty"`

	// acc memoizes the canonical observation accumulator over Extracts so
	// the next incremental fold is O(new traces) instead of O(total
	// extracts). In-memory only: a decoded checkpoint starts with acc nil
	// and InferIncremental rebuilds it once. accEvents caches the summed
	// Events of all extracts (the Overhead.Events share).
	acc       *window.Observations
	accEvents int
}

// NewCheckpoint returns an empty checkpoint bound to cfg's offline-relevant
// settings. The app name is filled in by the first solve.
func NewCheckpoint(cfg Config) *Checkpoint {
	return &Checkpoint{Version: CheckpointVersion, ConfigSig: ConfigSignature(cfg)}
}

// Covered returns the covered trace keys, sorted.
func (c *Checkpoint) Covered() []string {
	keys := make([]string, len(c.Extracts))
	for i := range c.Extracts {
		keys[i] = c.Extracts[i].Key
	}
	return keys
}

// Covers reports whether key's trace is already folded into the checkpoint.
func (c *Checkpoint) Covers(key string) bool {
	i := sort.Search(len(c.Extracts), func(i int) bool { return c.Extracts[i].Key >= key })
	return i < len(c.Extracts) && c.Extracts[i].Key == key
}

// EncodeCheckpoint serializes a checkpoint. The encoding is exact — the
// basis and every float sample round-trip bit for bit through JSON — so
// resuming from a stored checkpoint produces the identical results an
// uninterrupted in-memory sequence would.
func EncodeCheckpoint(c *Checkpoint) ([]byte, error) {
	if c.Version == "" {
		c.Version = CheckpointVersion
	}
	return json.Marshal(c)
}

// DecodeCheckpoint parses an EncodeCheckpoint document, rejecting unknown
// versions and unsorted extracts.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	if c.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: decode checkpoint: unsupported version %q (want %q)", c.Version, CheckpointVersion)
	}
	for i := 1; i < len(c.Extracts); i++ {
		if c.Extracts[i-1].Key >= c.Extracts[i].Key {
			return nil, fmt.Errorf("core: decode checkpoint: extracts not strictly sorted by key")
		}
	}
	return &c, nil
}

// ConfigSignature hashes the config fields an offline solve depends on —
// window extraction, solver encoding, and racy-window removal. Rounds,
// seeds, delays, parallelism, and every hook are irrelevant offline and
// excluded, mirroring InferFromSource's contract. A checkpoint only
// resumes under a config with the same signature; anything else would
// splice incompatible constraint systems together.
func ConfigSignature(cfg Config) string {
	h := sha256.New()
	io.WriteString(h, "sherlock-checkpoint-cfg-v1\n")
	fmt.Fprintf(h, "window.near=%d\n", cfg.Window.Near)
	fmt.Fprintf(h, "window.perpaircap=%d\n", cfg.Window.PerPairCap)
	fmt.Fprintf(h, "window.unsafeapis=%t\n", cfg.Window.UseUnsafeAPIs)
	fmt.Fprintf(h, "solver.lambda=%g\n", cfg.Solver.Lambda)
	fmt.Fprintf(h, "solver.rarecoef=%g\n", cfg.Solver.RareCoef)
	fmt.Fprintf(h, "solver.threshold=%g\n", cfg.Solver.Threshold)
	hyp := cfg.Solver.Hyp
	fmt.Fprintf(h, "solver.hyp=%t,%t,%t,%t,%t,%t\n",
		hyp.MostlyProtected, hyp.SyncsAreRare, hyp.AcqTimeVaries,
		hyp.MostlyPaired, hyp.ReadAcqWriteRel, hyp.SingleRole)
	fmt.Fprintf(h, "solver.softsinglerole=%t\n", cfg.Solver.SoftSingleRole)
	fmt.Fprintf(h, "solver.maxlpiters=%d\n", cfg.Solver.MaxLPIters)
	// Non-default per-role weights change the LP objective, so they are part
	// of the signature; the default weighting writes nothing, keeping every
	// pre-weights signature (and with it every stored checkpoint) valid.
	if w := cfg.Solver.Weights; !w.IsDefault() {
		r := w.Resolved()
		fmt.Fprintf(h, "solver.weights=%g,%g\n", r.Acquire, r.Release)
	}
	fmt.Fprintf(h, "removeracymp=%t\n", cfg.RemoveRacyMP)
	return hex.EncodeToString(h.Sum(nil))[:16]
}
