// Campaign configuration and validation.
package core

import (
	"errors"
	"fmt"
	"runtime"

	"sherlock/internal/perturb"
	"sherlock/internal/sched"
	"sherlock/internal/solver"
	"sherlock/internal/window"
)

// Config tunes one inference campaign.
type Config struct {
	// Rounds is the number of times each test input is executed (paper
	// default: 3; Figure 4 sweeps 1–6).
	Rounds int
	// Window configures conflict pairing and window extraction.
	Window window.Config
	// Solver configures the constraint encoding.
	Solver solver.Config
	// Delay is the perturbation length in virtual ns.
	Delay int64
	// DelayProbability injects each planned delay with this probability
	// per dynamic instance (0 or 1 = always, the paper's default).
	DelayProbability float64
	// Seed is the base scheduler seed; each (round, test) derives its own.
	Seed int64

	// StepDist selects the scheduler's per-statement dispatch-latency
	// distribution ("" or sched.DistUniform for the classic uniform
	// draw; sched.DistZipf / sched.DistBursty sample heavy-tailed or
	// clustered stalls so rare interleaving windows surface in fewer
	// rounds). Campaigns stay bit-for-bit deterministic for any fixed
	// distribution.
	StepDist string

	// Parallelism bounds the worker pool that executes the per-test
	// scheduler runs of each round (and the per-application campaigns of
	// InferAll). 0 means runtime.GOMAXPROCS(0). Results are bit-identical
	// for every Parallelism value: each run is independently seeded and
	// the per-run observations are merged in test order.
	Parallelism int

	// Feedback toggles (Figure 4's ablations). All default true via
	// DefaultConfig.
	Accumulate   bool // keep observations from earlier rounds
	InjectDelays bool // run the Perturber at all
	RemoveRacyMP bool // drop Mostly-Protected terms on data-race observations

	// MaxStepsPerTest bounds each simulated test (0 = scheduler default).
	MaxStepsPerTest int

	// StaticPriors, when non-nil, runs the campaign in hybrid mode: the
	// priors (typically StaticPriors() from the run-free analysis, or a
	// previous campaign's posteriors via PriorsFromResult) seed round 0 —
	// they discount the Syncs-are-Rare cost of believed keys in the first
	// solve only, and the believed releases get a round-0 delay plan, so
	// the first round already perturbs like a dynamic second round. From
	// round 1 on the objective is purely evidence-driven, which is what
	// keeps hybrid campaigns convergent to the dynamic fixpoint rather
	// than anchored to the prior.
	StaticPriors *solver.Priors

	// ColdStart disables cross-round solver reuse: every round encodes from
	// scratch and solves the LP from a cold basis, exactly like the
	// pre-warm-starting engine. Results are identical either way (the
	// equivalence tests enforce it); the toggle exists for benchmarking and
	// for bisecting solver issues.
	ColdStart bool

	// Observer, when non-nil, receives the campaign's full observability
	// stream: every span/counter event of the campaign trace plus each
	// round's solved snapshot. It is the unified hook surface — see the
	// Observer interface — and subsumes OnRound and OnSnapshot, which
	// remain for compatibility but are deprecated.
	Observer Observer

	// DisableTracing turns span construction off entirely: the engine runs
	// with a nil tracer and every span operation is inert. Tracing with no
	// Observer already costs < 2% of a campaign (cmd/bench -obs-out keeps
	// it honest); this toggle exists for that benchmark's baseline and for
	// ruling tracing out when bisecting performance.
	DisableTracing bool

	// OnRound, when non-nil, is called after each round's observations are
	// merged and solved, with the 1-based round number and the live
	// accumulator. The accumulator is reused across rounds — callers that
	// keep it past the callback must Clone it. A diagnostics hook, used by
	// the solver benchmarks to replay a campaign's accumulator states.
	//
	// Deprecated: set Observer instead; its Round method receives the same
	// accumulator along with the solved snapshot.
	OnRound func(round int, obs *window.Observations)

	// OnSnapshot, when non-nil, receives each round's RoundSnapshot right
	// after the solve, before the next round starts. Unlike OnRound it
	// carries the solved per-round statistics (inferred sets, LP pivots,
	// warm-start flag), so long-running consumers — the serving layer's
	// metrics in particular — can stream campaign progress without waiting
	// for the final Result. The snapshot is the caller's to keep.
	//
	// Deprecated: set Observer instead; its Round method receives the same
	// snapshot along with the live accumulator.
	OnSnapshot func(RoundSnapshot)
}

// DefaultConfig mirrors the paper's default operating point.
func DefaultConfig() Config {
	return Config{
		Rounds:       3,
		Window:       window.DefaultConfig(),
		Solver:       solver.DefaultConfig(),
		Delay:        perturb.DefaultDelay,
		Seed:         1,
		Accumulate:   true,
		InjectDelays: true,
		RemoveRacyMP: true,
	}
}

// Validate checks the configuration and reports every problem at once,
// joined with errors.Join (errors.Is/As still match the individual
// fmt.Errorf values). A nil return means the campaign can run.
func (c Config) Validate() error {
	var errs []error
	if c.Rounds <= 0 {
		errs = append(errs, fmt.Errorf("Rounds must be positive, got %d", c.Rounds))
	}
	if c.DelayProbability < 0 || c.DelayProbability > 1 {
		errs = append(errs, fmt.Errorf("DelayProbability must be in [0,1], got %g", c.DelayProbability))
	}
	if c.Parallelism < 0 {
		errs = append(errs, fmt.Errorf("Parallelism must be non-negative, got %d", c.Parallelism))
	}
	if c.InjectDelays && c.Delay <= 0 {
		errs = append(errs, fmt.Errorf("Delay must be positive when InjectDelays is set, got %d", c.Delay))
	}
	if c.MaxStepsPerTest < 0 {
		errs = append(errs, fmt.Errorf("MaxStepsPerTest must be non-negative, got %d", c.MaxStepsPerTest))
	}
	if !sched.ValidDist(c.StepDist) {
		errs = append(errs, fmt.Errorf("StepDist must be one of %q, got %q", sched.Dists, c.StepDist))
	}
	if w := c.Solver.Weights; w.Acquire < 0 || w.Release < 0 {
		errs = append(errs, fmt.Errorf("Solver.Weights must be non-negative, got acquire=%g release=%g", w.Acquire, w.Release))
	}
	if len(errs) == 0 {
		return nil
	}
	return errors.Join(errs...)
}

// workers resolves Parallelism to the effective pool size.
func (c Config) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}
