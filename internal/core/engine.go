// Package core is SherLock's orchestrator (paper Figure 1): it runs every
// unit test of an application for a configured number of rounds, feeding
// traces through window extraction (Observer), accumulating observations,
// solving the linear system (Solver), and planning delay injections for the
// next round (Perturber). It also scores inference results against an
// application's ground truth, reproducing the paper's manual-inspection
// classification.
package core

import (
	"fmt"
	"sort"
	"time"

	"sherlock/internal/perturb"
	"sherlock/internal/prog"
	"sherlock/internal/sched"
	"sherlock/internal/solver"
	"sherlock/internal/trace"
	"sherlock/internal/window"
)

// Config tunes one inference campaign.
type Config struct {
	// Rounds is the number of times each test input is executed (paper
	// default: 3; Figure 4 sweeps 1–6).
	Rounds int
	// Window configures conflict pairing and window extraction.
	Window window.Config
	// Solver configures the constraint encoding.
	Solver solver.Config
	// Delay is the perturbation length in virtual ns.
	Delay int64
	// DelayProbability injects each planned delay with this probability
	// per dynamic instance (0 or 1 = always, the paper's default).
	DelayProbability float64
	// Seed is the base scheduler seed; each (round, test) derives its own.
	Seed int64

	// Feedback toggles (Figure 4's ablations). All default true via
	// DefaultConfig.
	Accumulate   bool // keep observations from earlier rounds
	InjectDelays bool // run the Perturber at all
	RemoveRacyMP bool // drop Mostly-Protected terms on data-race observations

	// MaxStepsPerTest bounds each simulated test (0 = scheduler default).
	MaxStepsPerTest int
}

// DefaultConfig mirrors the paper's default operating point.
func DefaultConfig() Config {
	return Config{
		Rounds:       3,
		Window:       window.DefaultConfig(),
		Solver:       solver.DefaultConfig(),
		Delay:        perturb.DefaultDelay,
		Seed:         1,
		Accumulate:   true,
		InjectDelays: true,
		RemoveRacyMP: true,
	}
}

// InferredSync is one reported synchronization operation.
type InferredSync struct {
	Key  trace.Key
	Role trace.Role
	Prob float64
}

// RoundSnapshot captures inference state after each round (Figure 4 data).
type RoundSnapshot struct {
	Round    int // 1-based
	Acquires []trace.Key
	Releases []trace.Key
	Windows  int // accumulated windows so far
}

// Overhead aggregates the cost accounting of Section 5.6.
type Overhead struct {
	RunWall      time.Duration // wall time executing instrumented tests
	SolveWall    time.Duration // wall time in the LP solver
	Events       int           // log entries recorded
	Windows      int           // windows accumulated
	Vars         int           // final LP size
	Constraints  int
	DelayVirtual int64 // total injected virtual delay
}

// Result is the outcome of one inference campaign on one application.
type Result struct {
	App      string
	Inferred []InferredSync
	// Acquires/Releases expose final per-key probabilities.
	Acquires map[trace.Key]float64
	Releases map[trace.Key]float64
	Rounds   []RoundSnapshot
	Overhead Overhead
	// Deadlocks counts test executions that deadlocked (should stay 0 for
	// the benchmark apps).
	Deadlocks int
}

// SyncKeys returns the inferred synchronizations as a role map.
func (r *Result) SyncKeys() map[trace.Key]trace.Role {
	out := map[trace.Key]trace.Role{}
	for _, s := range r.Inferred {
		out[s.Key] = s.Role
	}
	return out
}

// Infer runs the full SherLock loop on app.
func Infer(app *prog.Program, cfg Config) (*Result, error) {
	if err := app.Finalize(); err != nil {
		return nil, err
	}
	if cfg.Rounds <= 0 {
		return nil, fmt.Errorf("core: Rounds must be positive, got %d", cfg.Rounds)
	}
	scfg := cfg.Solver
	scfg.KeepRacyWindows = !cfg.RemoveRacyMP

	res := &Result{App: app.Name}
	obs := window.NewObservations(cfg.Window)
	var plan perturb.Plan
	var last *solver.Result

	for round := 0; round < cfg.Rounds; round++ {
		if !cfg.Accumulate {
			// Figure 4's "no accumulation" line: every round stands alone.
			obs = window.NewObservations(cfg.Window)
		}
		for ti, test := range app.Tests {
			opt := sched.Options{
				Seed:             cfg.Seed + int64(round)*7919 + int64(ti)*127,
				HiddenMethods:    app.Truth.HiddenMethods,
				MaxSteps:         cfg.MaxStepsPerTest,
				DelayProbability: cfg.DelayProbability,
			}
			if cfg.InjectDelays {
				opt.Delays = plan
			}
			t0 := time.Now()
			run, err := sched.Run(app, test, opt)
			res.Overhead.RunWall += time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("core: %s/%s round %d: %w", app.Name, test.Name, round+1, err)
			}
			if run.Deadlocked {
				res.Deadlocks++
				continue
			}
			for _, d := range run.Delays {
				res.Overhead.DelayVirtual += d.End - d.Start
			}
			res.Overhead.Events += run.Trace.Len()

			conflicts := window.FindConflicts(run.Trace, cfg.Window)
			ws := window.BuildWindows(run.Trace, conflicts)
			ws = perturb.Refine(ws, run.Delays)
			obs.AddWindows(ws)
			obs.AddTraceStats(run.Trace)
		}

		t0 := time.Now()
		sr, err := solver.Solve(obs, scfg)
		res.Overhead.SolveWall += time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("core: %s round %d solve: %w", app.Name, round+1, err)
		}
		last = sr
		res.Rounds = append(res.Rounds, RoundSnapshot{
			Round:    round + 1,
			Acquires: append([]trace.Key(nil), sr.AcquireSet...),
			Releases: append([]trace.Key(nil), sr.ReleaseSet...),
			Windows:  len(obs.Windows),
		})
		plan = perturb.BuildPlan(sr.ReleaseSet, cfg.Delay)
	}

	res.Acquires = last.Acquires
	res.Releases = last.Releases
	res.Overhead.Windows = len(obs.Windows)
	res.Overhead.Vars = last.Vars
	res.Overhead.Constraints = last.Constraints
	for _, k := range last.AcquireSet {
		res.Inferred = append(res.Inferred, InferredSync{Key: k, Role: trace.RoleAcquire, Prob: last.Acquires[k]})
	}
	for _, k := range last.ReleaseSet {
		res.Inferred = append(res.Inferred, InferredSync{Key: k, Role: trace.RoleRelease, Prob: last.Releases[k]})
	}
	sort.Slice(res.Inferred, func(i, j int) bool { return res.Inferred[i].Key < res.Inferred[j].Key })
	return res, nil
}
