// Package core is SherLock's orchestrator (paper Figure 1): it runs every
// unit test of an application for a configured number of rounds, feeding
// traces through window extraction (Observer), accumulating observations,
// solving the linear system (Solver), and planning delay injections for the
// next round (Perturber). It also scores inference results against an
// application's ground truth, reproducing the paper's manual-inspection
// classification.
//
// The engine is split along the loop's phases:
//
//   - config.go  — Config, defaults, Validate
//   - planner.go — derive every (round, test) execution spec up front
//   - runner.go  — execute a round's specs on a bounded worker pool
//   - merger.go  — fold per-run outputs into Observations, in test order
//   - engine.go  — the round loop: plan → run → merge → solve → perturb
//   - batch.go   — InferAll, the multi-application entrypoint
//
// Within a round the executions are embarrassingly parallel (each has its
// own derived seed and its own trace); the round barrier is inherent —
// the Perturber's plan for round k+1 comes from round k's solve. Results
// are bit-identical for every Config.Parallelism value because merging
// replays the sequential engine's exact accumulation order.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"sherlock/internal/lp"
	"sherlock/internal/obs"
	"sherlock/internal/perturb"
	"sherlock/internal/prog"
	"sherlock/internal/solver"
	"sherlock/internal/trace"
	"sherlock/internal/window"
)

// InferredSync is one reported synchronization operation.
type InferredSync struct {
	Key  trace.Key
	Role trace.Role
	Prob float64
}

// RoundSnapshot captures inference state after each round (Figure 4 data).
type RoundSnapshot struct {
	Round    int // 1-based
	Acquires []trace.Key
	Releases []trace.Key
	Windows  int // accumulated windows so far

	// LPIters counts the round's simplex pivots; Warm reports whether the
	// solve reused the previous round's basis. Together they make the
	// warm-starting payoff visible per round.
	LPIters int
	Warm    bool
}

// Overhead aggregates the cost accounting of Section 5.6.
type Overhead struct {
	// RunWall is the summed per-run wall time inside the scheduler — the
	// aggregate execution cost. Under Parallelism > 1 it exceeds elapsed
	// time, exactly as per-test instrumentation cost would.
	RunWall      time.Duration
	SolveWall    time.Duration // wall time in the LP solver
	Events       int           // log entries recorded
	Windows      int           // windows accumulated
	Vars         int           // final LP size
	Constraints  int
	Objective    float64 // final LP optimum
	DelayVirtual int64   // total injected virtual delay
	// WarmRounds counts rounds whose LP solve reused the previous round's
	// basis (0 under Config.ColdStart or when reuse never applied).
	WarmRounds int
}

// Result is the outcome of one inference campaign on one application.
type Result struct {
	App      string
	Inferred []InferredSync
	// Acquires/Releases expose final per-key probabilities.
	Acquires map[trace.Key]float64
	Releases map[trace.Key]float64
	Rounds   []RoundSnapshot
	Overhead Overhead
	// Deadlocks counts test executions that deadlocked (should stay 0 for
	// the benchmark apps).
	Deadlocks int
}

// SyncKeys returns the inferred synchronizations as a typed role set.
func (r *Result) SyncKeys() trace.SyncSet {
	out := make(trace.SyncSet, len(r.Inferred))
	for _, s := range r.Inferred {
		out[s.Key] = s.Role
	}
	return out
}

// Infer runs the full SherLock loop on app. Each round's per-test
// executions are dispatched across a worker pool of cfg.Parallelism
// goroutines; ctx cancels the campaign between executions (a run already
// on a worker finishes, queued runs do not start) and the returned error
// then matches errors.Is(err, ctx.Err()).
func Infer(ctx context.Context, app *prog.Program, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid config: %w", err)
	}
	if err := app.Finalize(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	scfg := cfg.Solver
	scfg.KeepRacyWindows = !cfg.RemoveRacyMP
	if scfg.Parallelism == 0 {
		scfg.Parallelism = cfg.workers() // LP component fan-out; bit-identical at any width
	}

	res := &Result{App: app.Name}
	acc := window.NewObservations(cfg.Window)
	var plan perturb.Plan
	var last *solver.Result

	// The campaign span roots the whole trace; every attribute recorded
	// below is deterministic (derived from config and the seeded runs),
	// never from wall clock or scheduling — see internal/obs.
	tr := cfg.tracer()
	campaign := tr.Root("campaign", app.Name,
		obs.Int("rounds", cfg.Rounds),
		obs.Int("tests", len(app.Tests)),
		obs.Int64("seed", cfg.Seed))
	defer campaign.End()

	// The solver state threaded across rounds: the Encoder caches the
	// per-window encoding work, and basis carries each round's optimal LP
	// basis into the next round's solve (the problems differ only by the
	// round's appended windows, so the warm solve re-optimizes in a few
	// pivots). Both reset whenever the accumulator does.
	enc := solver.NewEncoder(scfg)
	var basis *lp.Basis

	for round := 0; round < cfg.Rounds; round++ {
		if !cfg.Accumulate {
			// Figure 4's "no accumulation" line: every round stands alone.
			acc = window.NewObservations(cfg.Window)
			enc.Reset()
			basis = nil
		}
		rspan := campaign.Childf("round:%02d", round+1)
		specs := planRound(app, cfg, round, plan)
		exec := rspan.Child("execute", obs.Int("runs", len(specs)))
		outs := executeRound(ctx, app, specs, cfg, exec)
		exec.End()
		tr.Count("runs", int64(len(specs)))
		prevWindows := len(acc.Windows)
		if err := mergeRound(app, specs, outs, res, acc); err != nil {
			rspan.End()
			return nil, err
		}
		tr.Count("windows", int64(len(acc.Windows)-prevWindows))

		t0 := time.Now()
		if cfg.ColdStart {
			enc.Reset()
			basis = nil
		}
		sr, b, err := enc.SolveSpan(acc, basis, rspan)
		basis = b
		res.Overhead.SolveWall += time.Since(t0)
		if err != nil {
			rspan.End()
			return nil, fmt.Errorf("core: %s round %d solve: %w", app.Name, round+1, err)
		}
		tr.Count("lp.pivots", int64(sr.Iters))
		last = sr
		if sr.WarmStarted {
			res.Overhead.WarmRounds++
		}
		reported := sr
		if round == 0 && cfg.StaticPriors != nil && cfg.Rounds > 1 {
			// Hybrid mode: re-solve round 0 with the prior-tilted objective
			// and report THAT snapshot — the prior anticipates what later
			// rounds' evidence confirms, so the campaign's reported sets
			// converge earlier. The feedback plan and the carried basis stay
			// with the evidence-only solve: the execution schedule — and
			// with it the accumulated evidence and the final inferred set —
			// is exactly the dynamic campaign's, bit for bit. The re-solve
			// warm-starts from the evidence optimum (the dual simplex
			// re-prices the discounted costs in a few pivots).
			enc.SetPriors(cfg.StaticPriors)
			t1 := time.Now()
			hr, _, herr := enc.SolveSpan(acc, basis, rspan)
			res.Overhead.SolveWall += time.Since(t1)
			enc.SetPriors(nil)
			if herr != nil {
				rspan.End()
				return nil, fmt.Errorf("core: %s hybrid round %d solve: %w", app.Name, round+1, herr)
			}
			tr.Count("lp.pivots", int64(hr.Iters))
			reported = hr
		}
		snap := RoundSnapshot{
			Round:    round + 1,
			Acquires: append([]trace.Key(nil), reported.AcquireSet...),
			Releases: append([]trace.Key(nil), reported.ReleaseSet...),
			Windows:  len(acc.Windows),
			LPIters:  sr.Iters,
			Warm:     sr.WarmStarted,
		}
		res.Rounds = append(res.Rounds, snap)
		plan = perturb.BuildPlanObs(rspan, sr.ReleaseSet, cfg.Delay)
		rspan.Annotate(
			obs.Int("windows", len(acc.Windows)),
			obs.Int("lp_iters", sr.Iters),
			obs.Bool("warm", sr.WarmStarted),
			obs.Int("acquires", len(sr.AcquireSet)),
			obs.Int("releases", len(sr.ReleaseSet)))
		rspan.End()
		cfg.notifyRound(snap, acc)
	}

	res.Acquires = last.Acquires
	res.Releases = last.Releases
	res.Overhead.Windows = len(acc.Windows)
	res.Overhead.Vars = last.Vars
	res.Overhead.Constraints = last.Constraints
	res.Overhead.Objective = last.Objective
	for _, k := range last.AcquireSet {
		res.Inferred = append(res.Inferred, InferredSync{Key: k, Role: trace.RoleAcquire, Prob: last.Acquires[k]})
	}
	for _, k := range last.ReleaseSet {
		res.Inferred = append(res.Inferred, InferredSync{Key: k, Role: trace.RoleRelease, Prob: last.Releases[k]})
	}
	sort.Slice(res.Inferred, func(i, j int) bool { return res.Inferred[i].Key < res.Inferred[j].Key })
	campaign.Annotate(
		obs.Int("windows", res.Overhead.Windows),
		obs.Int("vars", res.Overhead.Vars),
		obs.Int("constraints", res.Overhead.Constraints),
		obs.Int("inferred", len(res.Inferred)),
		obs.Int("deadlocks", res.Deadlocks),
		obs.Int("warm_rounds", res.Overhead.WarmRounds))
	campaign.End()
	return res, nil
}
