package core

import (
	"context"
	"testing"

	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

// lockApp: two worker methods mutate a shared counter under a monitor,
// with jittered lead-in work so runs mix contended and uncontended arrivals
// (as real unit tests do). Expected inference: begin:Monitor::Enter =
// acquire, end:Monitor::Exit = release.
func lockApp() *prog.Program {
	p := prog.New("lock-app", "LockApp")
	p.AddMethod("C::incr",
		prog.CpJ(400, 0.9),
		prog.Rep(2,
			prog.Lock("L"),
			prog.Cp(150),
			prog.Rd("C::n", "o"),
			prog.Wr("C::n", "o", 1),
			prog.Unlock("L"),
			prog.CpJ(300, 0.9),
		),
	)
	p.AddMethod("C::decr",
		prog.CpJ(400, 0.9),
		prog.Rep(2,
			prog.Lock("L"),
			prog.Cp(150),
			prog.Rd("C::n", "o"),
			prog.Wr("C::n", "o", -1),
			prog.Unlock("L"),
			prog.CpJ(300, 0.9),
		),
	)
	p.AddTest("T",
		prog.Go(prog.ForkThread, "C::incr", "o", "h1"),
		prog.Go(prog.ForkThread, "C::decr", "o", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.Truth.Sync(prog.BK(prog.APIMonitorEnter), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(prog.APIMonitorExit), trace.RoleRelease)
	return p
}

// semApp: producer writes data then Sets; consumer WaitOnes then reads.
// The consumer's jittered lead-in means it sometimes arrives after the Set.
func semApp() *prog.Program {
	p := prog.New("sem-app", "SemApp")
	p.AddMethod("C::producer", prog.CpJ(400, 0.9), prog.Wr("C::data", "o", 42), prog.Cp(50), prog.Set("S"))
	p.AddMethod("C::consumer", prog.CpJ(500, 0.95), prog.Wait("S"), prog.Cp(40), prog.Rd("C::data", "o"))
	p.AddMethod("C::flusher", prog.CpJ(350, 0.9), prog.Wr("C::log", "o", 1), prog.Set("S2"))
	p.AddMethod("C::drainer", prog.CpJ(450, 0.95), prog.Wait("S2"), prog.Rd("C::log", "o"))
	p.AddTest("T1",
		prog.Go(prog.ForkTaskRun, "C::consumer", "o", "hc"),
		prog.Go(prog.ForkTaskRun, "C::producer", "o", "hp"),
		prog.WaitT("hc"), prog.WaitT("hp"),
	)
	p.AddTest("T2",
		prog.Go(prog.ForkTaskRun, "C::drainer", "o", "hd"),
		prog.Go(prog.ForkTaskRun, "C::flusher", "o", "hf"),
		prog.WaitT("hd"), prog.WaitT("hf"),
	)
	p.Truth.Sync(prog.BK(prog.APISemWait), trace.RoleAcquire)
	p.Truth.Sync(prog.EK(prog.APISemSet), trace.RoleRelease)
	return p
}

// flagApp: writer flushes a buffer then sets a volatile flag; reader spins
// on the flag then reads the buffer (paper Figure 3.B).
func flagApp() *prog.Program {
	p := prog.New("flag-app", "FlagApp")
	p.AddMethod("C::writer",
		prog.Cp(800),
		prog.Wr("C::buffer", "o", 7),
		prog.Cp(60),
		prog.Wr("C::endOfFile", "o", 1),
	)
	p.AddMethod("C::reader",
		prog.Spin("C::endOfFile", "o", 1, 200),
		prog.Cp(40),
		prog.Rd("C::buffer", "o"),
	)
	p.AddTest("T",
		prog.Go(prog.ForkThread, "C::reader", "o", "hr"),
		prog.Go(prog.ForkThread, "C::writer", "o", "hw"),
		prog.JoinT("hr"), prog.JoinT("hw"),
	)
	p.Volatile["C::endOfFile"] = true
	p.Truth.Sync(prog.RK("C::endOfFile"), trace.RoleAcquire)
	p.Truth.Sync(prog.WK("C::endOfFile"), trace.RoleRelease)
	return p
}

// forkApp: parent writes config, forks a child that reads it; fork-join
// edges are the syncs.
func forkApp() *prog.Program {
	p := prog.New("fork-app", "ForkApp")
	p.AddMethod("C::child", prog.Cp(50), prog.Rd("C::config", "o"), prog.Cp(200))
	p.AddTest("T",
		prog.Wr("C::config", "o", 1),
		prog.Cp(30),
		prog.Go(prog.ForkThread, "C::child", "o", "h"),
		prog.JoinT("h"),
		prog.Wr("C::config", "o", 2),
	)
	p.Truth.Sync(prog.EK(prog.ForkThread.APIName()), trace.RoleRelease)
	p.Truth.Sync(prog.BK("C::child"), trace.RoleAcquire)
	p.Truth.Sync(prog.EK("C::child"), trace.RoleRelease)
	p.Truth.Sync(prog.BK(prog.JoinThread.APIName()), trace.RoleAcquire)
	return p
}

func inferAndScore(t *testing.T, app *prog.Program) (*Result, *Score) {
	t.Helper()
	res, err := Infer(context.Background(), app, DefaultConfig())
	if err != nil {
		t.Fatalf("Infer(%s): %v", app.Name, err)
	}
	if res.Deadlocks > 0 {
		t.Fatalf("%s: %d deadlocked runs", app.Name, res.Deadlocks)
	}
	return res, ScoreResult(app, res)
}

func wantSync(t *testing.T, res *Result, k trace.Key, role trace.Role) {
	t.Helper()
	for _, s := range res.Inferred {
		if s.Key == k && s.Role == role {
			return
		}
	}
	t.Errorf("missing inferred sync %s (%s); inferred: %v", k, role, res.Inferred)
}

func TestInferLockApp(t *testing.T) {
	res, score := inferAndScore(t, lockApp())
	wantSync(t, res, prog.BK(prog.APIMonitorEnter), trace.RoleAcquire)
	wantSync(t, res, prog.EK(prog.APIMonitorExit), trace.RoleRelease)
	if p := score.Precision(); p < 0.5 {
		t.Errorf("precision = %.2f; inferred %d ops total", p, score.Total())
	}
}

func TestInferSemApp(t *testing.T) {
	res, _ := inferAndScore(t, semApp())
	wantSync(t, res, prog.BK(prog.APISemWait), trace.RoleAcquire)
	wantSync(t, res, prog.EK(prog.APISemSet), trace.RoleRelease)
}

func TestInferFlagApp(t *testing.T) {
	res, _ := inferAndScore(t, flagApp())
	wantSync(t, res, prog.RK("C::endOfFile"), trace.RoleAcquire)
	wantSync(t, res, prog.WK("C::endOfFile"), trace.RoleRelease)
}

func TestInferForkApp(t *testing.T) {
	res, _ := inferAndScore(t, forkApp())
	wantSync(t, res, prog.BK("C::child"), trace.RoleAcquire)
	wantSync(t, res, prog.EK(prog.ForkThread.APIName()), trace.RoleRelease)
}

func TestSnapshotsPerRound(t *testing.T) {
	res, _ := inferAndScore(t, lockApp())
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(res.Rounds))
	}
	for i, r := range res.Rounds {
		if r.Round != i+1 {
			t.Errorf("round %d numbered %d", i, r.Round)
		}
	}
	// Windows accumulate monotonically under default feedback settings.
	for i := 1; i < len(res.Rounds); i++ {
		if res.Rounds[i].Windows < res.Rounds[i-1].Windows {
			t.Error("window count decreased despite accumulation")
		}
	}
}

func TestInferDeterministic(t *testing.T) {
	a, err := Infer(context.Background(), lockApp(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Infer(context.Background(), lockApp(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Inferred) != len(b.Inferred) {
		t.Fatalf("non-deterministic inference: %v vs %v", a.Inferred, b.Inferred)
	}
	for i := range a.Inferred {
		if a.Inferred[i] != b.Inferred[i] {
			t.Fatalf("non-deterministic inference at %d: %v vs %v", i, a.Inferred[i], b.Inferred[i])
		}
	}
}

func TestInferRejectsZeroRounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rounds = 0
	if _, err := Infer(context.Background(), lockApp(), cfg); err == nil {
		t.Fatal("want error for Rounds=0")
	}
}

// Probabilistic delay injection (the paper's footnote 1: "we also tried
// injecting the delay probabilistically, but did not see much difference")
// must leave the headline inferences intact.
func TestProbabilisticDelaysSimilarResults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DelayProbability = 0.5
	res, err := Infer(context.Background(), flagApp(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantSync(t, res, prog.WK("C::endOfFile"), trace.RoleRelease)
	wantSync(t, res, prog.RK("C::endOfFile"), trace.RoleAcquire)
}
