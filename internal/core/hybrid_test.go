package core

import (
	"context"
	"testing"

	"sherlock/internal/apps"
	"sherlock/internal/trace"
)

// finalSets returns the final inferred operation set as a comparable
// fingerprint (keys with roles, in Inferred's sorted order).
func finalSets(r *Result) []string {
	out := make([]string, 0, len(r.Inferred))
	for _, s := range r.Inferred {
		role := "acq"
		if s.Role == trace.RoleRelease {
			role = "rel"
		}
		out = append(out, string(s.Key)+"="+role)
	}
	return out
}

func sameSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestHybridMatchesDynamicAllApps is the hybrid-mode golden contract: on
// every benchmark app, a campaign seeded with static priors must land on
// the byte-identical final inferred operation set as the pure dynamic
// campaign, and must converge (first round whose sets equal the final
// sets) no later. The priors only tilt round 0 — from round 1 the
// objective is evidence-only — so the fixpoint is the dynamic one; the
// seeding buys convergence speed, never a different answer.
func TestHybridMatchesDynamicAllApps(t *testing.T) {
	ctx := context.Background()
	fewer := 0
	for _, p := range apps.All() {
		cfg := DefaultConfig()
		cfg.Parallelism = 2

		dyn, err := Infer(ctx, p, cfg)
		if err != nil {
			t.Fatalf("%s: dynamic: %v", p.Name, err)
		}

		hcfg := cfg
		hcfg.StaticPriors, err = StaticPriors(ctx, p, cfg)
		if err != nil {
			t.Fatalf("%s: static priors: %v", p.Name, err)
		}
		hyb, err := Infer(ctx, p, hcfg)
		if err != nil {
			t.Fatalf("%s: hybrid: %v", p.Name, err)
		}

		if ds, hs := finalSets(dyn), finalSets(hyb); !sameSets(ds, hs) {
			t.Errorf("%s: hybrid final set diverges from dynamic:\n dynamic: %v\n hybrid:  %v", p.Name, ds, hs)
		}
		dr, hr := dyn.RoundsToConverge(), hyb.RoundsToConverge()
		if hr > dr {
			t.Errorf("%s: hybrid converges in %d rounds, dynamic in %d", p.Name, hr, dr)
		}
		if hr < dr {
			fewer++
		}
		t.Logf("%s: rounds to converge: dynamic=%d hybrid=%d", p.Name, dr, hr)
	}
	t.Logf("hybrid strictly faster on %d/8 apps", fewer)
}

// TestHybridDeterministic: the hybrid path must stay bit-identical across
// runs like every other mode — priors are deterministic (static analysis)
// and the seeded round-0 plan is sorted before building.
func TestHybridDeterministic(t *testing.T) {
	ctx := context.Background()
	p, err := apps.ByName("App-3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Parallelism = 3
	cfg.StaticPriors, err = StaticPriors(ctx, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Infer(ctx, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Infer(ctx, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSets(finalSets(r1), finalSets(r2)) {
		t.Fatalf("hybrid inference not deterministic:\n%v\nvs\n%v", finalSets(r1), finalSets(r2))
	}
}

// TestPosteriorRoundTrip: posterior persistence is exact, the signature
// check rejects mismatched configs, and a refined campaign seeded from
// posteriors still lands on the dynamic fixpoint.
func TestPosteriorRoundTrip(t *testing.T) {
	ctx := context.Background()
	p, err := apps.ByName("App-1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Parallelism = 2
	res, err := Infer(ctx, p, cfg)
	if err != nil {
		t.Fatal(err)
	}

	post := PosteriorFromResult(res, cfg)
	data, err := EncodePosterior(post)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodePosterior(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.App != res.App || back.ConfigSig != ConfigSignature(cfg) || back.Rounds != len(res.Rounds) {
		t.Fatalf("posterior round-trip mangled header: %+v", back)
	}
	if len(back.Acquires) != len(res.Acquires) || len(back.Releases) != len(res.Releases) {
		t.Fatalf("posterior round-trip dropped probabilities")
	}

	other := cfg
	other.Solver.Threshold = cfg.Solver.Threshold / 2
	if _, err := back.Priors(other); err == nil {
		t.Fatal("posterior accepted a config with a different signature")
	}

	pri, err := back.Priors(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.StaticPriors = pri
	refined, err := Infer(ctx, p, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSets(finalSets(res), finalSets(refined)) {
		t.Fatalf("refined campaign diverges from its own posterior source:\n%v\nvs\n%v", finalSets(res), finalSets(refined))
	}
	if refined.RoundsToConverge() > res.RoundsToConverge() {
		t.Errorf("refine converges in %d rounds, original in %d", refined.RoundsToConverge(), res.RoundsToConverge())
	}

	if _, err := DecodePosterior([]byte(`{"version":"bogus"}`)); err == nil {
		t.Fatal("DecodePosterior accepted an unknown version")
	}
}

// TestRefineConvergesFaster pins the refine-mode payoff: on App-6 the
// dynamic campaign needs two rounds to reach its final sets, but a second
// campaign seeded with the first's posteriors reports the final sets from
// round 0 — a full round of test executions saved. (Everything is seeded,
// so the speedup is a stable property, not a lucky schedule.)
func TestRefineConvergesFaster(t *testing.T) {
	ctx := context.Background()
	p, err := apps.ByName("App-6")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Parallelism = 2
	first, err := Infer(ctx, p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.RoundsToConverge() < 2 {
		t.Fatalf("App-6 dynamic campaign converges in %d rounds; expected ≥2 for this test to be meaningful", first.RoundsToConverge())
	}

	pri, err := PosteriorFromResult(first, cfg).Priors(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.StaticPriors = pri
	refined, err := Infer(ctx, p, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSets(finalSets(first), finalSets(refined)) {
		t.Fatalf("refined campaign final set diverges:\n%v\nvs\n%v", finalSets(first), finalSets(refined))
	}
	if rr := refined.RoundsToConverge(); rr >= first.RoundsToConverge() {
		t.Errorf("refine converges in %d rounds, original in %d — posterior seeding saved nothing", rr, first.RoundsToConverge())
	}
}

// TestInferStaticDeterministicAllApps: static-only inference must succeed
// on every app, report no execution cost, and be bit-identical across
// runs — the property the server's content-addressed cache assumes.
func TestInferStaticDeterministicAllApps(t *testing.T) {
	ctx := context.Background()
	for _, p := range apps.All() {
		cfg := DefaultConfig()
		r1, an1, err := InferStatic(ctx, p, cfg)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		r2, an2, err := InferStatic(ctx, p, cfg)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if !sameSets(finalSets(r1), finalSets(r2)) {
			t.Errorf("%s: static inference not deterministic", p.Name)
		}
		if an1.ProgramHash != an2.ProgramHash || an1.ProgramHash == "" {
			t.Errorf("%s: program hash unstable or empty", p.Name)
		}
		if r1.Overhead.Events != 0 || r1.Overhead.RunWall != 0 {
			t.Errorf("%s: static inference reports execution cost: %+v", p.Name, r1.Overhead)
		}
		if len(r1.Inferred) == 0 {
			t.Errorf("%s: static inference found nothing", p.Name)
		}
	}
}
