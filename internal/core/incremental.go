// Incremental offline inference: extend a Checkpoint with newly ingested
// traces and re-solve warm from its basis instead of cold-starting. The
// result contract is exact: InferIncremental returns byte-identical
// results (modulo wall-clock overhead fields) to InferFromSource over the
// same trace set in sorted-key order, for any arrival order and with
// duplicate deliveries ignored — see checkpoint.go for why the replay
// construction guarantees it.
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"sherlock/internal/obs"
	"sherlock/internal/solver"
	"sherlock/internal/trace"
	"sherlock/internal/window"
)

// KeyedSource streams traces along with their corpus content addresses.
// internal/store.Source satisfies it structurally (KeyedTraces), the same
// way it satisfies TraceSource.
type KeyedSource interface {
	KeyedTraces(ctx context.Context, yield func(key string, t *trace.Trace) error) error
}

// KeyedTrace pairs an in-memory trace with its content address.
type KeyedTrace struct {
	Key   string
	Trace *trace.Trace
}

// KeyedSlice adapts in-memory keyed traces to KeyedSource.
type KeyedSlice []KeyedTrace

// KeyedTraces yields each trace in slice order, checking ctx between traces.
func (s KeyedSlice) KeyedTraces(ctx context.Context, yield func(string, *trace.Trace) error) error {
	for _, kt := range s {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := yield(kt.Key, kt.Trace); err != nil {
			return err
		}
	}
	return nil
}

// InferIncremental folds the traces streamed by src into ck and re-solves.
// A nil ck starts fresh (equivalent to NewCheckpoint(cfg)); a non-nil one
// must have been built under a config with the same ConfigSignature.
// Traces whose keys the checkpoint already covers are skipped — duplicate
// deliveries are free — and if nothing new arrives the checkpoint's stored
// result is returned as-is. Otherwise the fresh extracts are folded into
// the checkpoint's canonical observation accumulator — O(new traces) when
// the checkpoint carries its in-memory accumulator memo, one linear
// rebuild otherwise — and solved warm from the prior basis. ck itself is
// never mutated; the advanced state is the returned checkpoint. Config use mirrors InferFromSource: only Window,
// Solver, RemoveRacyMP and the observability fields apply.
func InferIncremental(ctx context.Context, ck *Checkpoint, src KeyedSource, cfg Config) (*Result, *Checkpoint, error) {
	if ck == nil {
		ck = NewCheckpoint(cfg)
	}
	if ck.Version != "" && ck.Version != CheckpointVersion {
		return nil, nil, fmt.Errorf("core: incremental: checkpoint version %q (want %q)", ck.Version, CheckpointVersion)
	}
	if sig := ConfigSignature(cfg); ck.ConfigSig != sig {
		return nil, nil, fmt.Errorf("core: incremental: checkpoint config signature %s does not match config %s", ck.ConfigSig, sig)
	}

	tr := cfg.tracer()
	root := tr.Root("incremental", "")
	defer root.End()

	var fresh []TraceExtract
	seen := map[string]bool{}
	var stream KeyedSource = KeyedSlice(nil)
	if src != nil {
		stream = src
	}
	err := stream.KeyedTraces(ctx, func(key string, t *trace.Trace) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if key == "" {
			return fmt.Errorf("core: incremental: trace with empty key")
		}
		if ck.Covers(key) || seen[key] {
			return nil
		}
		seen[key] = true
		span := root.Childf("extract:%.12s", key)
		x := ExtractTrace(key, t, cfg.Window)
		span.Annotate(
			obs.Str("app", t.App),
			obs.Str("test", t.Test),
			obs.Int("events", t.Len()),
			obs.Int("windows", len(x.Windows)))
		span.End()
		fresh = append(fresh, x)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	if len(fresh) == 0 {
		if ck.Result != nil {
			return ck.Result, ck, nil
		}
		if len(ck.Extracts) == 0 {
			return nil, nil, fmt.Errorf("core: no traces to analyze")
		}
		// A checkpoint with extracts but no stored result (hand-built or
		// stripped): fall through and solve what is covered.
	}

	next := &Checkpoint{Version: CheckpointVersion, App: ck.App, ConfigSig: ck.ConfigSig}
	next.Extracts = make([]TraceExtract, 0, len(ck.Extracts)+len(fresh))
	next.Extracts = append(next.Extracts, ck.Extracts...)
	next.Extracts = append(next.Extracts, fresh...)
	sort.Slice(next.Extracts, func(i, j int) bool { return next.Extracts[i].Key < next.Extracts[j].Key })

	// Canonical fold: the accumulator's state under AddWindowsCanonical is
	// a function of the extract set, not arrival order, so only the fresh
	// extracts need folding — an O(new traces) step. A checkpoint carrying
	// a memoized accumulator (any checkpoint InferIncremental returned this
	// process) hands it over by clone; one decoded from storage pays a
	// one-time replay of its covered extracts to rebuild the memo. Either
	// way the result is bit-identical to replaying everything from scratch
	// in sorted-key order.
	res := &Result{}
	var acc *window.Observations
	events := ck.accEvents
	if ck.acc != nil {
		acc = ck.acc.Clone()
	} else {
		acc = window.NewObservations(cfg.Window)
		events = 0
		for i := range ck.Extracts {
			x := &ck.Extracts[i]
			x.foldCanonical(acc)
			events += x.Events
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i].Key < fresh[j].Key })
	for i := range fresh {
		x := &fresh[i]
		x.foldCanonical(acc)
		events += x.Events
	}
	if len(next.Extracts) > 0 {
		res.App = next.Extracts[0].App
	}
	res.Overhead.Events = events
	root.Annotate(
		obs.Int("covered", len(ck.Extracts)),
		obs.Int("fresh", len(fresh)),
		obs.Int("windows", len(acc.Windows)))

	scfg := cfg.Solver
	scfg.KeepRacyWindows = !cfg.RemoveRacyMP
	if scfg.Parallelism == 0 {
		scfg.Parallelism = cfg.workers()
	}
	t0 := time.Now()
	sr, basis, err := solver.NewEncoder(scfg).SolveSpan(acc, ck.Basis, root)
	res.Overhead.SolveWall = time.Since(t0)
	if err != nil {
		return nil, nil, fmt.Errorf("core: incremental solve: %w", err)
	}
	res.Acquires = sr.Acquires
	res.Releases = sr.Releases
	res.Overhead.Windows = len(acc.Windows)
	res.Overhead.Vars = sr.Vars
	res.Overhead.Constraints = sr.Constraints
	res.Rounds = []RoundSnapshot{{
		Round:    1,
		Acquires: append([]trace.Key(nil), sr.AcquireSet...),
		Releases: append([]trace.Key(nil), sr.ReleaseSet...),
		Windows:  len(acc.Windows),
	}}
	cfg.notifyRound(res.Rounds[0], acc)
	for _, k := range sr.AcquireSet {
		res.Inferred = append(res.Inferred, InferredSync{Key: k, Role: trace.RoleAcquire, Prob: sr.Acquires[k]})
	}
	for _, k := range sr.ReleaseSet {
		res.Inferred = append(res.Inferred, InferredSync{Key: k, Role: trace.RoleRelease, Prob: sr.Releases[k]})
	}
	sort.Slice(res.Inferred, func(i, j int) bool { return res.Inferred[i].Key < res.Inferred[j].Key })

	next.App = res.App
	next.Basis = basis
	next.Result = res
	next.acc = acc
	next.accEvents = events
	return res, next, nil
}
