package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"sherlock/internal/apps"
	"sherlock/internal/sched"
	"sherlock/internal/store"
	"sherlock/internal/trace"
)

// captureKeyed runs every test of app under a few seeds and returns the
// traces with their corpus content addresses, sorted by key.
func captureKeyed(t *testing.T, appName string, seeds int) []KeyedTrace {
	t.Helper()
	app, err := apps.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	app.MustFinalize()
	var out []KeyedTrace
	for _, tc := range app.Tests {
		for s := 0; s < seeds; s++ {
			r, err := sched.Run(app, tc, sched.Options{Seed: int64(1 + s)})
			if err != nil {
				t.Fatalf("%s/%s seed %d: %v", appName, tc.Name, s, err)
			}
			key, err := store.Key(r.Trace)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, KeyedTrace{Key: key, Trace: r.Trace})
		}
	}
	sortKeyed(out)
	return out
}

func sortKeyed(kts []KeyedTrace) {
	for i := 1; i < len(kts); i++ {
		for j := i; j > 0 && kts[j].Key < kts[j-1].Key; j-- {
			kts[j], kts[j-1] = kts[j-1], kts[j]
		}
	}
}

// resultBytes marshals a result with its wall-clock overhead fields zeroed
// — the only fields allowed to differ between equivalent solves.
func resultBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	c := *r
	c.Overhead.RunWall = 0
	c.Overhead.SolveWall = 0
	b, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestIncrementalGoldenAllApps is the tentpole invariant: for every
// benchmark app and for adversarial upload orders — reverse-key one at a
// time, interleaved batches, duplicate deliveries, with a serialization
// round trip of the checkpoint mid-stream — the final incremental result
// is byte-identical (modulo wall clock) to a from-scratch offline solve
// over the full trace set.
func TestIncrementalGoldenAllApps(t *testing.T) {
	ctx := context.Background()
	for _, app := range apps.All() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			t.Parallel()
			cfg := DefaultConfig()
			kts := captureKeyed(t, app.Name, 2)
			if len(kts) < 2 {
				t.Fatalf("%s: need at least 2 traces, got %d", app.Name, len(kts))
			}

			var sorted []*trace.Trace
			for _, kt := range kts {
				sorted = append(sorted, kt.Trace)
			}
			want, err := InferFromSource(ctx, SliceSource(sorted), cfg)
			if err != nil {
				t.Fatal(err)
			}
			wantB := resultBytes(t, want)

			// Order A: one trace at a time, in reverse key order, with a
			// checkpoint encode/decode round trip between every step.
			ck := NewCheckpoint(cfg)
			var got *Result
			for i := len(kts) - 1; i >= 0; i-- {
				got, ck, err = InferIncremental(ctx, ck, KeyedSlice{kts[i]}, cfg)
				if err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				data, err := EncodeCheckpoint(ck)
				if err != nil {
					t.Fatal(err)
				}
				if ck, err = DecodeCheckpoint(data); err != nil {
					t.Fatal(err)
				}
			}
			if gotB := resultBytes(t, got); !bytes.Equal(gotB, wantB) {
				t.Errorf("reverse-order incremental differs from from-scratch\n got: %s\nwant: %s", gotB, wantB)
			}

			// Order B: interleaved batches (odd indices first), then a
			// duplicate re-delivery of the first batch mixed with the rest.
			var odd, even KeyedSlice
			for i, kt := range kts {
				if i%2 == 1 {
					odd = append(odd, kt)
				} else {
					even = append(even, kt)
				}
			}
			ck2 := NewCheckpoint(cfg)
			if _, ck2, err = InferIncremental(ctx, ck2, odd, cfg); err != nil {
				t.Fatal(err)
			}
			// Duplicates of already-covered traces must be ignored.
			got2, ck2, err := InferIncremental(ctx, ck2, append(append(KeyedSlice{}, odd...), even...), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if gotB := resultBytes(t, got2); !bytes.Equal(gotB, wantB) {
				t.Errorf("batched incremental differs from from-scratch\n got: %s\nwant: %s", gotB, wantB)
			}

			// Re-delivering only covered traces returns the stored result
			// without re-solving.
			got3, ck3, err := InferIncremental(ctx, ck2, even, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ck3 != ck2 {
				t.Error("no-op delivery should return the checkpoint unchanged")
			}
			if gotB := resultBytes(t, got3); !bytes.Equal(gotB, wantB) {
				t.Errorf("no-op delivery result differs from from-scratch")
			}
		})
	}
}

// TestIncrementalCheckpointStoreRoundTrip exercises the full persistence
// path: solve a first batch, encode the checkpoint into a corpus store,
// load it back in a "new process", resume with a second batch streamed
// from the corpus itself, and compare against both the uninterrupted
// in-memory sequence and a from-scratch solve.
func TestIncrementalCheckpointStoreRoundTrip(t *testing.T) {
	ctx := context.Background()
	cfg := DefaultConfig()
	kts := captureKeyed(t, "App-1", 2)

	corpus, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, kt := range kts {
		entry, _, err := corpus.Ingest(kt.Trace)
		if err != nil {
			t.Fatal(err)
		}
		if entry.Key != kt.Key {
			t.Fatalf("corpus key %s != precomputed %s", entry.Key, kt.Key)
		}
	}
	half := len(kts) / 2
	if half == 0 {
		t.Fatal("need at least 2 traces")
	}
	var keys1, keys2 []string
	for i, kt := range kts {
		if i < half {
			keys1 = append(keys1, kt.Key)
		} else {
			keys2 = append(keys2, kt.Key)
		}
	}

	// Uninterrupted in-memory sequence.
	ckMem := NewCheckpoint(cfg)
	if _, ckMem, err = InferIncremental(ctx, ckMem, corpus.Source(keys1...), cfg); err != nil {
		t.Fatal(err)
	}
	memRes, _, err := InferIncremental(ctx, ckMem, corpus.Source(keys2...), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Persisted sequence: encode after batch 1, save, load, resume.
	ck := NewCheckpoint(cfg)
	if _, ck, err = InferIncremental(ctx, ck, corpus.Source(keys1...), cfg); err != nil {
		t.Fatal(err)
	}
	data, err := EncodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	if err := corpus.SaveCheckpoint("test-ckpt", data); err != nil {
		t.Fatal(err)
	}
	loaded, err := corpus.LoadCheckpoint("test-ckpt")
	if err != nil {
		t.Fatal(err)
	}
	ck2, err := DecodeCheckpoint(loaded)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, _, err := InferIncremental(ctx, ck2, corpus.Source(keys2...), cfg)
	if err != nil {
		t.Fatal(err)
	}

	want, err := InferFromSource(ctx, corpus.Source(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantB := resultBytes(t, want)
	if gotB := resultBytes(t, gotRes); !bytes.Equal(gotB, wantB) {
		t.Errorf("resumed-from-store result differs from from-scratch\n got: %s\nwant: %s", gotB, wantB)
	}
	if memB := resultBytes(t, memRes); !bytes.Equal(memB, wantB) {
		t.Errorf("in-memory sequence differs from from-scratch")
	}
}

// TestIncrementalRejectsMismatchedConfig: resuming a checkpoint under a
// config with a different offline-relevant signature must fail loudly.
func TestIncrementalRejectsMismatchedConfig(t *testing.T) {
	cfg := DefaultConfig()
	kts := captureKeyed(t, "App-2", 1)
	ck := NewCheckpoint(cfg)
	_, ck, err := InferIncremental(context.Background(), ck, KeyedSlice(kts), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Solver.Lambda = 0.5
	if _, _, err := InferIncremental(context.Background(), ck, nil, cfg2); err == nil {
		t.Fatal("want config-signature mismatch error")
	}
	// Rounds/Seed/Parallelism are offline-irrelevant and must NOT change
	// the signature.
	cfg3 := cfg
	cfg3.Rounds, cfg3.Seed, cfg3.Parallelism = 9, 42, 3
	if ConfigSignature(cfg3) != ConfigSignature(cfg) {
		t.Error("offline-irrelevant fields changed the config signature")
	}
}

// TestDecodeCheckpointRejectsBadDocuments covers the version gate and the
// sortedness check.
func TestDecodeCheckpointRejectsBadDocuments(t *testing.T) {
	if _, err := DecodeCheckpoint([]byte(`{"version":"bogus-v9"}`)); err == nil {
		t.Error("want unsupported-version error")
	}
	doc := `{"version":"` + CheckpointVersion + `","config_sig":"x","extracts":[{"key":"b"},{"key":"a"}]}`
	if _, err := DecodeCheckpoint([]byte(doc)); err == nil {
		t.Error("want unsorted-extracts error")
	}
}
