// Deterministic result merging: fold a round's per-run outputs into the
// shared Observations in test-index order. Window accumulation is
// order-sensitive (the cross-run per-pair cap admits the first 15 windows
// of a static pair) and so are the floating-point duration statistics, so
// the merge always walks outputs in the order the planner emitted them —
// the exact order the sequential engine used — regardless of which worker
// finished first.
package core

import (
	"errors"
	"fmt"

	"sherlock/internal/prog"
	"sherlock/internal/window"
)

// mergeRound folds outs (indexed like the round's specs) into res and obs.
// It aggregates every run error of the round with errors.Join rather than
// stopping at the first, and surfaces context cancellation as the
// context's own error so callers can match errors.Is(err, context.Canceled).
func mergeRound(app *prog.Program, specs []runSpec, outs []runOutput, res *Result, obs *window.Observations) error {
	var errs []error
	for i, out := range outs {
		spec := specs[i]
		if out.canceled {
			errs = append(errs, fmt.Errorf("core: %s/%s round %d: %w",
				app.Name, spec.test.Name, spec.round+1, out.cancelErr))
			continue
		}
		res.Overhead.RunWall += out.wall
		if out.err != nil {
			errs = append(errs, fmt.Errorf("core: %s/%s round %d: %w",
				app.Name, spec.test.Name, spec.round+1, out.err))
			continue
		}
		if out.run.Deadlocked {
			res.Deadlocks++
			continue
		}
		for _, d := range out.run.Delays {
			res.Overhead.DelayVirtual += d.End - d.Start
		}
		res.Overhead.Events += out.run.Trace.Len()
		obs.AddWindows(out.windows)
		obs.AddTraceStats(out.run.Trace)
	}
	return errors.Join(errs...)
}
