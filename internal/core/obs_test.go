package core

import (
	"context"
	"strings"
	"testing"

	"sherlock/internal/apps"
	"sherlock/internal/obs"
	"sherlock/internal/sched"
	"sherlock/internal/trace"
	"sherlock/internal/window"
)

// traceCampaign runs one campaign with a MemorySink observer and returns
// the deterministic rendering of its span forest.
func traceCampaign(t *testing.T, name string, parallelism int) string {
	t.Helper()
	app, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	mem := obs.NewMemorySink()
	cfg := DefaultConfig()
	cfg.Parallelism = parallelism
	cfg.Observer = SinkObserver(mem)
	if _, err := Infer(context.Background(), app, cfg); err != nil {
		t.Fatal(err)
	}
	return mem.Render()
}

// TestSpanTreeGoldenAcrossParallelism is the observability layer's core
// guarantee: the deterministic rendering — span IDs, tree shape, every
// non-duration attribute, counter totals — is byte-identical between a
// sequential and a heavily parallel campaign. Wall-clock durations are the
// only thing allowed to differ, and Render excludes them.
func TestSpanTreeGoldenAcrossParallelism(t *testing.T) {
	for _, name := range []string{"App-1", "App-2", "App-3"} {
		t.Run(name, func(t *testing.T) {
			seq := traceCampaign(t, name, 1)
			par := traceCampaign(t, name, 8)
			if seq != par {
				t.Fatalf("span trees diverge across parallelism:\n--- p=1 ---\n%s--- p=8 ---\n%s", seq, par)
			}
			// Sanity: the tree actually has the campaign shape.
			for _, want := range []string{
				"campaign:" + name + "{",
				"  round:01{",
				"    execute{",
				"      run:00{",
				"        sched{",
				"        extract{",
				"    encode{",
				"    solve{",
				"counters:",
				"  runs=",
				"  windows=",
			} {
				if !strings.Contains(seq, want) {
					t.Errorf("render missing %q:\n%s", want, seq)
				}
			}
		})
	}
}

// TestObserverRoundSubsumesLegacyHooks: Observer.Round, OnRound, and
// OnSnapshot all fire once per round with the same snapshots.
func TestObserverRoundSubsumesLegacyHooks(t *testing.T) {
	app, err := apps.ByName("App-1")
	if err != nil {
		t.Fatal(err)
	}
	var viaObserver, viaOnRound, viaOnSnapshot []int
	cfg := DefaultConfig()
	cfg.Observer = ObserverFuncs{
		OnRound: func(snap RoundSnapshot, acc *window.Observations) {
			if acc == nil {
				t.Error("Observer.Round got nil observations")
			}
			viaObserver = append(viaObserver, snap.Round)
		},
	}
	cfg.OnRound = func(round int, acc *window.Observations) {
		viaOnRound = append(viaOnRound, round)
	}
	cfg.OnSnapshot = func(snap RoundSnapshot) {
		viaOnSnapshot = append(viaOnSnapshot, snap.Round)
	}
	res, err := Infer(context.Background(), app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := len(res.Rounds)
	if len(viaObserver) != want || len(viaOnRound) != want || len(viaOnSnapshot) != want {
		t.Fatalf("hook fire counts: observer=%d onRound=%d onSnapshot=%d, want %d each",
			len(viaObserver), len(viaOnRound), len(viaOnSnapshot), want)
	}
	for i := 0; i < want; i++ {
		if viaObserver[i] != i+1 || viaOnRound[i] != i+1 || viaOnSnapshot[i] != i+1 {
			t.Fatalf("round sequence wrong: %v / %v / %v", viaObserver, viaOnRound, viaOnSnapshot)
		}
	}
}

// TestDisableTracingStillInfers: the benchmark-baseline escape hatch must
// not change inference results, only suppress span construction.
func TestDisableTracingStillInfers(t *testing.T) {
	app, err := apps.ByName("App-2")
	if err != nil {
		t.Fatal(err)
	}
	mem := obs.NewMemorySink()
	cfg := DefaultConfig()
	cfg.DisableTracing = true
	cfg.Observer = SinkObserver(mem)
	res, err := Infer(context.Background(), app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Inferred) == 0 {
		t.Fatal("no inferences with tracing disabled")
	}
	if n := len(mem.Events()); n != 0 {
		t.Fatalf("DisableTracing leaked %d span events", n)
	}
}

// TestOfflineSolveEmitsSpansAndRound: the offline path produces its own
// deterministic span tree ("offline" root, one trace:NNN child per input,
// an encode/solve subtree) and fires the round hooks exactly once.
func TestOfflineSolveEmitsSpansAndRound(t *testing.T) {
	app, err := apps.ByName("App-1")
	if err != nil {
		t.Fatal(err)
	}
	var traces []*trace.Trace
	for i, tc := range app.Tests {
		res, err := sched.Run(app, tc, sched.Options{Seed: int64(100 + i)})
		if err != nil {
			t.Fatal(err)
		}
		traces = append(traces, res.Trace)
	}

	mem := obs.NewMemorySink()
	rounds := 0
	cfg := DefaultConfig()
	cfg.Observer = ObserverFuncs{
		OnEvent: mem.Emit,
		OnRound: func(snap RoundSnapshot, acc *window.Observations) { rounds++ },
	}
	if _, err := InferFromTraces(context.Background(), traces, cfg); err != nil {
		t.Fatal(err)
	}
	if rounds != 1 {
		t.Fatalf("offline solve fired Round %d times, want 1", rounds)
	}
	render := mem.Render()
	for _, want := range []string{"offline{", "  trace:000{", "  encode{", "  solve{"} {
		if !strings.Contains(render, want) {
			t.Errorf("offline render missing %q:\n%s", want, render)
		}
	}
	// Offline rendering is deterministic too: a second identical solve
	// renders byte-identically.
	mem2 := obs.NewMemorySink()
	cfg2 := DefaultConfig()
	cfg2.Observer = SinkObserver(mem2)
	if _, err := InferFromTraces(context.Background(), traces, cfg2); err != nil {
		t.Fatal(err)
	}
	if render != mem2.Render() {
		t.Fatalf("offline renders diverge:\n%s---\n%s", render, mem2.Render())
	}
}
