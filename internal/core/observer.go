// Campaign observability: the Observer interface (the public hook surface,
// re-exported as sherlock.Observer) and the tracer wiring that connects an
// engine run to internal/obs. Observer subsumes the deprecated
// Config.OnRound / Config.OnSnapshot callbacks: one value receives both the
// span/counter event stream and the per-round solved snapshots.
package core

import (
	"sherlock/internal/obs"
	"sherlock/internal/window"
)

// Observer streams a campaign's observability data. It subsumes (and
// deprecates) the OnRound and OnSnapshot callbacks:
//
//   - Event receives every tracing event of the campaign span tree
//     (campaign → round → {execute, extract, encode, solve, perturb}),
//     including counters. Events are delivered from multiple goroutines
//     concurrently — the per-run spans end on the worker that executed the
//     run — so implementations must be safe for concurrent calls.
//   - Round is called after each round's observations are merged and
//     solved, with the round snapshot and the live accumulator. The
//     accumulator is reused across rounds; implementations that keep it
//     past the call must Clone it.
//
// Span identity is deterministic (derived from the campaign structure, not
// wall clock), so an observer that reconstructs the span tree sees the
// identical tree at every Config.Parallelism level; only wall-clock
// durations differ. See internal/obs for the determinism rules.
type Observer interface {
	Event(e obs.Event)
	Round(snap RoundSnapshot, acc *window.Observations)
}

// ObserverFuncs adapts bare functions to Observer; nil fields are skipped.
type ObserverFuncs struct {
	OnEvent func(e obs.Event)
	OnRound func(snap RoundSnapshot, acc *window.Observations)
}

// Event calls OnEvent when non-nil.
func (o ObserverFuncs) Event(e obs.Event) {
	if o.OnEvent != nil {
		o.OnEvent(e)
	}
}

// Round calls OnRound when non-nil.
func (o ObserverFuncs) Round(snap RoundSnapshot, acc *window.Observations) {
	if o.OnRound != nil {
		o.OnRound(snap, acc)
	}
}

// SinkObserver wraps a span sink into an Observer that forwards the event
// stream and ignores round snapshots — the adapter behind
// `sherlock -trace-out` and the sherlockd span collection.
func SinkObserver(s obs.Sink) Observer {
	return ObserverFuncs{OnEvent: s.Emit}
}

// tracer builds the campaign tracer for one engine run: nil (all span
// operations inert) when tracing is disabled, otherwise a tracer feeding
// the Observer when one is configured. With no observer the tracer runs
// with a nil sink — spans are still constructed, so attribute bookkeeping
// stays on the always-exercised path, at a cost benchmarked under 2% of a
// campaign (cmd/bench -obs-out).
func (c Config) tracer() *obs.Tracer {
	if c.DisableTracing {
		return nil
	}
	if c.Observer == nil {
		return obs.New(nil)
	}
	return obs.New(obs.SinkFunc(c.Observer.Event))
}

// notifyRound fans one solved round out to every configured hook: the
// Observer and the deprecated OnRound/OnSnapshot callbacks.
func (c Config) notifyRound(snap RoundSnapshot, acc *window.Observations) {
	if c.OnSnapshot != nil {
		c.OnSnapshot(snap)
	}
	if c.OnRound != nil {
		c.OnRound(snap.Round, acc)
	}
	if c.Observer != nil {
		c.Observer.Round(snap, acc)
	}
}
