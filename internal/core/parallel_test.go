package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"sherlock/internal/apps"
	"sherlock/internal/prog"
)

// TestInferDeterministicAcrossParallelism is the engine's core guarantee:
// for a fixed Seed, Infer produces bit-identical results for every
// Parallelism value, because each (round, test) run derives its own seed
// and the merger replays the sequential accumulation order.
func TestInferDeterministicAcrossParallelism(t *testing.T) {
	for _, name := range []string{"App-2", "App-5"} {
		t.Run(name, func(t *testing.T) {
			app, err := apps.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			seq := DefaultConfig()
			seq.Parallelism = 1
			par := DefaultConfig()
			par.Parallelism = 8

			r1, err := Infer(context.Background(), app, seq)
			if err != nil {
				t.Fatal(err)
			}
			r8, err := Infer(context.Background(), app, par)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1.Inferred, r8.Inferred) {
				t.Errorf("Inferred diverges across parallelism:\n p=1: %v\n p=8: %v", r1.Inferred, r8.Inferred)
			}
			if !reflect.DeepEqual(r1.Rounds, r8.Rounds) {
				t.Errorf("Rounds diverge across parallelism:\n p=1: %v\n p=8: %v", r1.Rounds, r8.Rounds)
			}
			if !reflect.DeepEqual(r1.Acquires, r8.Acquires) || !reflect.DeepEqual(r1.Releases, r8.Releases) {
				t.Error("final probability maps diverge across parallelism")
			}
			if r1.Overhead.Events != r8.Overhead.Events || r1.Overhead.Windows != r8.Overhead.Windows {
				t.Errorf("overhead counters diverge: events %d vs %d, windows %d vs %d",
					r1.Overhead.Events, r8.Overhead.Events, r1.Overhead.Windows, r8.Overhead.Windows)
			}
		})
	}
}

// TestInferPreCanceledContext: a context that is already canceled must make
// Infer return promptly with an error matching context.Canceled, without
// executing any test.
func TestInferPreCanceledContext(t *testing.T) {
	app, err := apps.ByName("App-2")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	res, err := Infer(ctx, app, DefaultConfig())
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("pre-canceled Infer took %v, want a prompt return", elapsed)
	}
	if res != nil {
		t.Error("canceled Infer must not return a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestInferMidCampaignCancel: canceling while runs are queued aborts
// between executions and still reports context.Canceled.
func TestInferMidCampaignCancel(t *testing.T) {
	app, err := apps.ByName("App-1")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the first round's pool drains its queue
	cfg := DefaultConfig()
	cfg.Parallelism = 4
	if _, err := Infer(ctx, app, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDefaultConfigValidates(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig().Validate() = %v, want nil", err)
	}
}

// TestConfigValidateCollectsAllProblems: Validate reports every
// misconfiguration at once rather than stopping at the first.
func TestConfigValidateCollectsAllProblems(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Rounds = -1
	cfg.DelayProbability = 1.5
	cfg.Parallelism = -2
	cfg.Delay = 0 // invalid while InjectDelays is set
	cfg.MaxStepsPerTest = -5

	err := cfg.Validate()
	if err == nil {
		t.Fatal("Validate accepted a thoroughly broken config")
	}
	for _, want := range []string{"Rounds", "DelayProbability", "Parallelism", "Delay", "MaxStepsPerTest"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Validate error missing %q problem: %v", want, err)
		}
	}
}

func TestInferRejectsInvalidConfig(t *testing.T) {
	app, err := apps.ByName("App-2")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Rounds = 0
	if _, err := Infer(context.Background(), app, cfg); err == nil ||
		!strings.Contains(err.Error(), "invalid config") {
		t.Fatalf("Infer with Rounds=0: err = %v, want invalid-config error", err)
	}
}

// TestInferAllMatchesIndividualInfer: the batch entrypoint must produce
// exactly what per-app Infer calls produce, indexed like its input.
func TestInferAllMatchesIndividualInfer(t *testing.T) {
	var list []*prog.Program
	for _, name := range []string{"App-2", "App-5"} {
		app, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		list = append(list, app)
	}
	batch, err := InferAll(context.Background(), list, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(list) {
		t.Fatalf("InferAll returned %d results for %d apps", len(batch), len(list))
	}
	for i, app := range list {
		solo, err := Infer(context.Background(), app, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] == nil || batch[i].App != app.Name {
			t.Fatalf("result %d = %v, want campaign for %s", i, batch[i], app.Name)
		}
		if !reflect.DeepEqual(batch[i].Inferred, solo.Inferred) {
			t.Errorf("%s: InferAll result diverges from Infer:\n batch: %v\n solo:  %v",
				app.Name, batch[i].Inferred, solo.Inferred)
		}
	}
}

// TestInferAllAggregatesErrors: a pre-canceled context fails every campaign;
// the joined error names each app and matches context.Canceled.
func TestInferAllAggregatesErrors(t *testing.T) {
	var list []*prog.Program
	for _, name := range []string{"App-2", "App-5"} {
		app, err := apps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		list = append(list, app)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := InferAll(ctx, list, DefaultConfig())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, name := range []string{"App-2", "App-5"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("joined error does not name %s: %v", name, err)
		}
	}
	for i, r := range res {
		if r != nil {
			t.Errorf("result %d non-nil despite canceled campaign", i)
		}
	}
}
