// Round planning: derive the scheduler options of every (round, test)
// execution up front. Each run is an independent, fully described unit of
// work — the seed formula depends only on (base seed, round, test index),
// never on execution order — which is what lets the runner dispatch the
// round's executions across a worker pool without changing any result.
package core

import (
	"sherlock/internal/perturb"
	"sherlock/internal/prog"
	"sherlock/internal/sched"
)

// runSpec describes one scheduler execution of one unit test.
type runSpec struct {
	round   int // 0-based
	testIdx int
	test    *prog.Test
	opt     sched.Options
}

// planRound builds the specs for one round. plan is the Perturber's delay
// plan from the previous round's solve (nil in round 0); the plan map is
// shared read-only across the round's workers.
func planRound(app *prog.Program, cfg Config, round int, plan perturb.Plan) []runSpec {
	specs := make([]runSpec, 0, len(app.Tests))
	for ti, test := range app.Tests {
		opt := sched.Options{
			Seed:             cfg.Seed + int64(round)*7919 + int64(ti)*127,
			HiddenMethods:    app.Truth.HiddenMethods,
			MaxSteps:         cfg.MaxStepsPerTest,
			DelayProbability: cfg.DelayProbability,
			StepDist:         cfg.StepDist,
		}
		if cfg.InjectDelays {
			opt.Delays = plan
		}
		specs = append(specs, runSpec{round: round, testIdx: ti, test: test, opt: opt})
	}
	return specs
}
