// Parallel run execution: dispatch a round's planned executions across a
// bounded worker pool. Every run is independent — its own seeded scheduler,
// its own trace, its own window extraction — so workers share nothing but
// the finalized (immutable) program and the read-only delay plan. Outputs
// land in a slice indexed by spec position; the merger consumes them in
// test order, making results bit-identical to a sequential loop for any
// worker count.
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sherlock/internal/obs"
	"sherlock/internal/perturb"
	"sherlock/internal/prog"
	"sherlock/internal/sched"
	"sherlock/internal/window"
)

// runOutput is everything one execution contributes to the round.
type runOutput struct {
	windows   []window.Window // refined acquire/release windows
	run       *sched.Result
	wall      time.Duration // wall time inside sched.Run (summed into Overhead.RunWall)
	err       error         // execution failure
	canceled  bool          // context expired before this run started
	cancelErr error
}

// executeRound runs every spec, at most cfg.workers() concurrently, and
// returns the outputs indexed like specs. The context is checked between
// executions: once it expires, remaining runs are marked canceled instead
// of executed, so a mid-campaign abort returns promptly without waiting
// for work that hasn't started.
func executeRound(ctx context.Context, app *prog.Program, specs []runSpec, cfg Config, span *obs.Span) []runOutput {
	outs := make([]runOutput, len(specs))
	workers := cfg.workers()
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i := range specs {
			if err := ctx.Err(); err != nil {
				outs[i] = runOutput{canceled: true, cancelErr: err}
				continue
			}
			outs[i] = executeOne(ctx, app, specs[i], cfg.Window, span)
		}
		return outs
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				if err := ctx.Err(); err != nil {
					outs[i] = runOutput{canceled: true, cancelErr: err}
					continue
				}
				outs[i] = executeOne(ctx, app, specs[i], cfg.Window, span)
			}
		}()
	}
	wg.Wait()
	return outs
}

// executeOne performs one scheduler run plus its Observer post-processing
// (conflict pairing, window extraction, Perturber refinement). The heavy
// per-run work all happens here, inside the worker — including the run's
// span, whose ID is keyed by test index (not worker or completion order),
// so the span tree is identical at every parallelism level.
func executeOne(ctx context.Context, app *prog.Program, spec runSpec, wcfg window.Config, parent *obs.Span) runOutput {
	rs := parent.Child(fmt.Sprintf("run:%02d", spec.testIdx),
		obs.Str("test", spec.test.Name),
		obs.Int64("seed", spec.opt.Seed))
	defer rs.End()
	opt := spec.opt
	opt.Span = rs
	t0 := time.Now()
	run, err := sched.RunContext(ctx, app, spec.test, opt)
	out := runOutput{run: run, wall: time.Since(t0), err: err}
	if err != nil || run.Deadlocked {
		return out
	}
	es := rs.Child("extract")
	conflicts := window.FindConflicts(run.Trace, wcfg)
	ws := window.BuildWindows(run.Trace, conflicts)
	out.windows = perturb.Refine(ws, run.Delays)
	es.Annotate(
		obs.Int("conflicts", len(conflicts)),
		obs.Int("windows", len(ws)),
		obs.Int("refined", len(out.windows)))
	es.End()
	return out
}
