// Scoring: classify inference results against an application's ground
// truth, reproducing the paper's manual-inspection buckets (Tables 2, 4, 5).
package core

import (
	"sort"

	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

// Score is the classified outcome of one inference campaign.
type Score struct {
	App string

	// Correct holds inferred operations that match the ground truth in key
	// and role — Table 2's "Syncs" column.
	Correct []InferredSync
	// DataRacy holds inferred operations that participate in true data
	// races (Table 2's "Data Racy").
	DataRacy []trace.Key
	// InstrErrors holds inferred operations attributable to observer
	// skip-list errors (Table 2's "Instr. Errors").
	InstrErrors []trace.Key
	// NotSync holds the remaining false positives (Table 2's "Not Sync").
	NotSync []trace.Key

	// Missed lists ground-truth synchronizations that were not inferred
	// (false negatives, Table 4's "#Missed Sync").
	Missed []trace.Key

	// FPByCategory / MissByCategory break false positives and negatives
	// into Table 4's buckets.
	FPByCategory   map[prog.FPCategory]int
	MissByCategory map[prog.FPCategory]int
}

// Total returns the count of all inferred operations (correct + all
// misclassifications) — Table 5's "#Total".
func (s *Score) Total() int {
	return len(s.Correct) + len(s.DataRacy) + len(s.InstrErrors) + len(s.NotSync)
}

// Precision returns correct/total (Table 5), or 0 when nothing inferred.
func (s *Score) Precision() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return float64(len(s.Correct)) / float64(t)
}

// CorrectKeys returns the set of correctly inferred keys (for cross-app
// unique counting).
func (s *Score) CorrectKeys() map[trace.Key]bool {
	out := map[trace.Key]bool{}
	for _, c := range s.Correct {
		out[c.Key] = true
	}
	return out
}

// ScoreResult classifies res against app's ground truth.
func ScoreResult(app *prog.Program, res *Result) *Score {
	s := &Score{
		App:            app.Name,
		FPByCategory:   map[prog.FPCategory]int{},
		MissByCategory: map[prog.FPCategory]int{},
	}
	truth := app.Truth
	inferredKeys := map[trace.Key]bool{}
	for _, inf := range res.Inferred {
		inferredKeys[inf.Key] = true
		if role, ok := truth.Syncs[inf.Key]; ok && role == inf.Role {
			s.Correct = append(s.Correct, inf)
			continue
		}
		// Misclassification: bucket it.
		switch {
		case truth.RacyKeys[inf.Key]:
			s.DataRacy = append(s.DataRacy, inf.Key)
			s.FPByCategory[prog.CatDataRacy]++
		case truth.Category[inf.Key] == prog.CatInstrError:
			s.InstrErrors = append(s.InstrErrors, inf.Key)
			s.FPByCategory[prog.CatInstrError]++
		default:
			s.NotSync = append(s.NotSync, inf.Key)
			cat := truth.Category[inf.Key]
			if cat == "" {
				cat = prog.CatOther
			}
			s.FPByCategory[cat]++
		}
	}
	for k := range truth.Syncs {
		if inferredKeys[k] || truth.Optional[k] {
			continue
		}
		s.Missed = append(s.Missed, k)
		cat := truth.Category[k]
		if cat == "" {
			cat = prog.CatOther
		}
		s.MissByCategory[cat]++
	}
	sort.Slice(s.Missed, func(i, j int) bool { return s.Missed[i] < s.Missed[j] })
	sort.Slice(s.DataRacy, func(i, j int) bool { return s.DataRacy[i] < s.DataRacy[j] })
	sort.Slice(s.NotSync, func(i, j int) bool { return s.NotSync[i] < s.NotSync[j] })
	return s
}

// ScoreKeys classifies an arbitrary inferred key→role map (used for
// per-round Figure 4 counts without building a full Result).
func ScoreKeys(app *prog.Program, syncs map[trace.Key]trace.Role) (correct int, total int) {
	for k, r := range syncs {
		total++
		if tr, ok := app.Truth.Syncs[k]; ok && tr == r {
			correct++
		}
	}
	return correct, total
}

// SnapshotCorrect counts correctly inferred unique syncs in a round
// snapshot (Figure 4's y-axis per app).
func SnapshotCorrect(app *prog.Program, snap RoundSnapshot) (correct, total int) {
	m := map[trace.Key]trace.Role{}
	for _, k := range snap.Acquires {
		m[k] = trace.RoleAcquire
	}
	for _, k := range snap.Releases {
		m[k] = trace.RoleRelease
	}
	return ScoreKeys(app, m)
}
