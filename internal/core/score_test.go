package core

import (
	"bytes"
	"context"
	"testing"

	"sherlock/internal/prog"
	"sherlock/internal/sched"
	"sherlock/internal/trace"
)

// scoreFixture builds a program with one of each truth annotation and a
// synthetic Result exercising every classification path.
func scoreFixture() (*prog.Program, *Result) {
	app := prog.New("fixture", "Fixture")
	app.Truth.Sync(prog.WK("C::flag"), trace.RoleRelease)
	app.Truth.Sync(prog.RK("C::flag"), trace.RoleAcquire)
	app.Truth.Sync(prog.EK("C::hidden"), trace.RoleRelease) // will be missed
	app.Truth.SyncAlt(prog.EK("C::alt"), trace.RoleRelease) // optional alternate
	app.Truth.Race("C::racy")
	app.Truth.Category[prog.EK("C::hidden")] = prog.CatInstrError
	app.Truth.Category[prog.WK("C::neighbor")] = prog.CatInstrError
	app.Truth.Category[prog.BK("C::disposeAcq")] = prog.CatDispose

	res := &Result{
		App: "fixture",
		Inferred: []InferredSync{
			{Key: prog.WK("C::flag"), Role: trace.RoleRelease},     // correct
			{Key: prog.RK("C::flag"), Role: trace.RoleAcquire},     // correct
			{Key: prog.WK("C::racy"), Role: trace.RoleRelease},     // data racy
			{Key: prog.WK("C::neighbor"), Role: trace.RoleRelease}, // instr error
			{Key: prog.EK("C::junk"), Role: trace.RoleRelease},     // not sync (others)
			{Key: prog.RK("C::flag2"), Role: trace.RoleAcquire},    // not sync (others)
		},
	}
	return app, res
}

func TestScoreClassification(t *testing.T) {
	app, res := scoreFixture()
	s := ScoreResult(app, res)

	if len(s.Correct) != 2 {
		t.Errorf("correct = %d, want 2", len(s.Correct))
	}
	if len(s.DataRacy) != 1 || s.DataRacy[0] != prog.WK("C::racy") {
		t.Errorf("data racy = %v", s.DataRacy)
	}
	if len(s.InstrErrors) != 1 || s.InstrErrors[0] != prog.WK("C::neighbor") {
		t.Errorf("instr errors = %v", s.InstrErrors)
	}
	if len(s.NotSync) != 2 {
		t.Errorf("not sync = %v", s.NotSync)
	}
	if s.Total() != 6 {
		t.Errorf("total = %d, want 6", s.Total())
	}
	if p := s.Precision(); p < 0.33 || p > 0.34 {
		t.Errorf("precision = %v, want 2/6", p)
	}
	// Missed: the hidden sync, but NOT the optional alternate.
	if len(s.Missed) != 1 || s.Missed[0] != prog.EK("C::hidden") {
		t.Errorf("missed = %v", s.Missed)
	}
	if s.MissByCategory[prog.CatInstrError] != 1 {
		t.Errorf("miss categories = %v", s.MissByCategory)
	}
	if s.FPByCategory[prog.CatInstrError] != 1 || s.FPByCategory[prog.CatOther] != 2 ||
		s.FPByCategory[prog.CatDataRacy] != 1 {
		t.Errorf("fp categories = %v", s.FPByCategory)
	}
}

func TestScoreRoleMismatchIsNotCorrect(t *testing.T) {
	app := prog.New("rm", "RM")
	app.Truth.Sync(prog.WK("C::f"), trace.RoleRelease)
	res := &Result{Inferred: []InferredSync{
		// A write can only carry a release variable in practice, but the
		// scorer must still require role agreement.
		{Key: prog.WK("C::f"), Role: trace.RoleAcquire},
	}}
	s := ScoreResult(app, res)
	if len(s.Correct) != 0 {
		t.Error("role mismatch counted as correct")
	}
}

func TestScoreEmptyResult(t *testing.T) {
	app := prog.New("e", "E")
	app.Truth.Sync(prog.WK("C::f"), trace.RoleRelease)
	s := ScoreResult(app, &Result{})
	if s.Total() != 0 || s.Precision() != 0 {
		t.Error("empty result must score zero")
	}
	if len(s.Missed) != 1 {
		t.Errorf("missed = %v", s.Missed)
	}
}

func TestCorrectKeys(t *testing.T) {
	app, res := scoreFixture()
	s := ScoreResult(app, res)
	keys := s.CorrectKeys()
	if !keys[prog.WK("C::flag")] || !keys[prog.RK("C::flag")] || len(keys) != 2 {
		t.Errorf("CorrectKeys = %v", keys)
	}
}

// Failure injection: a test that deadlocks must be skipped and counted, not
// abort the campaign.
func TestInferSurvivesDeadlockingTest(t *testing.T) {
	app := prog.New("dl", "Deadlock")
	app.AddMethod("C::w", prog.Cp(200), prog.Wr("C::x", "o", 1), prog.Wr("C::flag", "o", 1))
	app.AddMethod("C::r", prog.Spin("C::flag", "o", 1, 150), prog.Rd("C::x", "o"))
	app.AddTest("Good",
		prog.Go(prog.ForkThread, "C::r", "o", "h1"),
		prog.Go(prog.ForkThread, "C::w", "o", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	app.AddTest("Stuck", prog.Wait("never-signaled"))
	res, err := Infer(context.Background(), app, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocks != 3 { // the stuck test deadlocks once per round
		t.Errorf("deadlocks = %d, want 3", res.Deadlocks)
	}
	// The good test still yields inference.
	wantSync(t, res, prog.WK("C::flag"), trace.RoleRelease)
}

func TestSnapshotCorrectCounts(t *testing.T) {
	app := prog.New("s", "S")
	app.Truth.Sync(prog.WK("C::f"), trace.RoleRelease)
	app.Truth.Sync(prog.RK("C::f"), trace.RoleAcquire)
	snap := RoundSnapshot{
		Round:    1,
		Acquires: []trace.Key{prog.RK("C::f"), prog.RK("C::other")},
		Releases: []trace.Key{prog.WK("C::f")},
	}
	correct, total := SnapshotCorrect(app, snap)
	if correct != 2 || total != 3 {
		t.Errorf("SnapshotCorrect = %d/%d, want 2/3", correct, total)
	}
}

// Offline inference: captured traces round-tripped through serialization
// must yield the same syncs as analyzing the live traces.
func TestInferFromTracesMatchesLiveObservations(t *testing.T) {
	app := flagApp()
	app.MustFinalize()
	var live []*trace.Trace
	for seed := int64(1); seed <= 3; seed++ {
		r, err := sched.Run(app, app.Tests[0], sched.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, r.Trace)
	}
	// Round-trip through the JSONL serialization.
	var stored []*trace.Trace
	for _, tr := range live {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := trace.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		stored = append(stored, back)
	}
	a, err := InferFromTraces(context.Background(), live, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := InferFromTraces(context.Background(), stored, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Inferred) != len(b.Inferred) {
		t.Fatalf("offline inference differs after serialization: %v vs %v", a.Inferred, b.Inferred)
	}
	for i := range a.Inferred {
		if a.Inferred[i].Key != b.Inferred[i].Key || a.Inferred[i].Role != b.Inferred[i].Role {
			t.Fatalf("inference %d differs: %v vs %v", i, a.Inferred[i], b.Inferred[i])
		}
	}
	wantSync(t, a, prog.WK("C::endOfFile"), trace.RoleRelease)
}

func TestInferFromTracesRejectsEmpty(t *testing.T) {
	if _, err := InferFromTraces(context.Background(), nil, DefaultConfig()); err == nil {
		t.Fatal("want error for empty trace set")
	}
}
