// Static and hybrid inference entrypoints: run-free constraint derivation
// (internal/static) solved through the same LP as dynamic campaigns, prior
// production for hybrid seeding, and posterior persistence for refine mode.
//
// Three consumption patterns, in increasing dynamism:
//
//   - InferStatic: no execution at all. The abstract walk's synthetic
//     windows go straight to the solver; the result is a prior-quality
//     report (every key statically reachable, probabilities from structure
//     alone), bit-identical across runs of the same program.
//   - Hybrid: Config.StaticPriors (from StaticPriors or a stored
//     Posterior) seeds Infer's round 0; the campaign then converges on
//     dynamic evidence. See Config.StaticPriors for the contract.
//   - Refine: PosteriorFromResult persists a solved campaign's
//     probabilities (via store.SaveCheckpoint under PosteriorName), and
//     Posterior.Priors feeds them back as the next campaign's seed.
package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"sherlock/internal/obs"
	"sherlock/internal/prog"
	"sherlock/internal/solver"
	"sherlock/internal/static"
	"sherlock/internal/trace"
)

// InferStatic analyzes app without executing it and solves the resulting
// constraint system. Only cfg.Window, cfg.Solver, cfg.RemoveRacyMP and the
// observability fields apply; rounds, seeds and delays are meaningless
// without runs. The acquisition-time hypothesis is disabled — a run-free
// analysis has no durations to rank — and Overhead.Events is zero by
// construction. The returned analysis carries the program hash the serving
// layer uses for content addressing.
func InferStatic(ctx context.Context, app *prog.Program, cfg Config) (*Result, *static.Analysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	scfg := cfg.Solver
	scfg.KeepRacyWindows = !cfg.RemoveRacyMP
	scfg.Hyp.AcqTimeVaries = false // no durations without execution
	if scfg.Parallelism == 0 {
		scfg.Parallelism = cfg.workers()
	}

	tr := cfg.tracer()
	root := tr.Root("static", app.Name)
	defer root.End()

	sc := static.DefaultConfig()
	sc.Window = cfg.Window
	an, err := static.AnalyzeSpan(app, sc, root)
	if err != nil {
		return nil, nil, fmt.Errorf("core: static analysis of %s: %w", app.Name, err)
	}

	t0 := time.Now()
	sr, _, err := solver.NewEncoder(scfg).SolveSpan(an.Obs, nil, root)
	if err != nil {
		return nil, nil, fmt.Errorf("core: static solve of %s: %w", app.Name, err)
	}

	res := &Result{App: app.Name, Acquires: sr.Acquires, Releases: sr.Releases}
	res.Overhead.SolveWall = time.Since(t0)
	res.Overhead.Windows = len(an.Obs.Windows)
	res.Overhead.Vars = sr.Vars
	res.Overhead.Constraints = sr.Constraints
	res.Overhead.Objective = sr.Objective
	res.Rounds = []RoundSnapshot{{
		Round:    1,
		Acquires: append([]trace.Key(nil), sr.AcquireSet...),
		Releases: append([]trace.Key(nil), sr.ReleaseSet...),
		Windows:  len(an.Obs.Windows),
		LPIters:  sr.Iters,
	}}
	for _, k := range sr.AcquireSet {
		res.Inferred = append(res.Inferred, InferredSync{Key: k, Role: trace.RoleAcquire, Prob: sr.Acquires[k]})
	}
	for _, k := range sr.ReleaseSet {
		res.Inferred = append(res.Inferred, InferredSync{Key: k, Role: trace.RoleRelease, Prob: sr.Releases[k]})
	}
	sort.Slice(res.Inferred, func(i, j int) bool { return res.Inferred[i].Key < res.Inferred[j].Key })
	root.Annotate(
		obs.Int("windows", res.Overhead.Windows),
		obs.Int("vars", res.Overhead.Vars),
		obs.Int("constraints", res.Overhead.Constraints),
		obs.Int("inferred", len(res.Inferred)))
	cfg.notifyRound(res.Rounds[0], an.Obs)
	return res, an, nil
}

// StaticPriorWeight is the objective discount applied to statically
// derived priors. It is deliberately far below solver.DefaultPriorWeight
// (which posterior-derived refine priors use): a run-free analysis ranks
// candidates from structure alone, and on the benchmark suite weights
// beyond ~0.15 start re-ranking evidence-supported keys out of the round-0
// report (App-5 loses a barrier release at 0.2). At 0.1 the tilt is
// measured non-regressive on every app: wherever the dynamic round-0
// report already equals the final set, the tilted report still does.
const StaticPriorWeight = 0.1

// StaticPriors runs the static pass and packages its probabilities as
// hybrid-campaign priors — the standard way to fill Config.StaticPriors.
func StaticPriors(ctx context.Context, app *prog.Program, cfg Config) (*solver.Priors, error) {
	res, _, err := InferStatic(ctx, app, cfg)
	if err != nil {
		return nil, err
	}
	pri := PriorsFromResult(res)
	pri.Weight = StaticPriorWeight
	return pri, nil
}

// PriorsFromResult converts any inference result's full probability maps
// into priors. The weight is left at zero — solver.DefaultPriorWeight —
// which is right for posterior-derived refine priors; static callers go
// through StaticPriors, which dials it down to StaticPriorWeight.
func PriorsFromResult(res *Result) *solver.Priors {
	p := &solver.Priors{
		Acquires: make(map[trace.Key]float64, len(res.Acquires)),
		Releases: make(map[trace.Key]float64, len(res.Releases)),
	}
	for k, v := range res.Acquires {
		if v > 0 {
			p.Acquires[k] = v
		}
	}
	for k, v := range res.Releases {
		if v > 0 {
			p.Releases[k] = v
		}
	}
	return p
}

// RoundsToConverge returns the 1-based round at which the inferred
// acquire/release sets first equal the final round's sets — the campaign's
// convergence point, the quantity hybrid seeding is meant to shrink.
// Zero when the result carries no rounds.
func (r *Result) RoundsToConverge() int {
	if len(r.Rounds) == 0 {
		return 0
	}
	final := r.Rounds[len(r.Rounds)-1]
	for i := range r.Rounds {
		if keysEqual(r.Rounds[i].Acquires, final.Acquires) && keysEqual(r.Rounds[i].Releases, final.Releases) {
			return r.Rounds[i].Round
		}
	}
	return final.Round
}

func keysEqual(a, b []trace.Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PosteriorVersion tags the posterior encoding; DecodePosterior rejects
// any other value.
const PosteriorVersion = "sherlock-posterior-v1"

// Posterior is a campaign's solved probabilities in persistable form — the
// refine-mode state. It is stored through the same named-checkpoint
// facility as incremental checkpoints (store.SaveCheckpoint under
// PosteriorName(app)), and a later campaign warm-starts from it via
// Priors.
type Posterior struct {
	Version   string `json:"version"`
	App       string `json:"app"`
	ConfigSig string `json:"config_sig"`
	// Rounds records how many rounds produced these probabilities, for
	// reporting; it does not affect reuse.
	Rounds   int                   `json:"rounds,omitempty"`
	Acquires map[trace.Key]float64 `json:"acquires,omitempty"`
	Releases map[trace.Key]float64 `json:"releases,omitempty"`
}

// PosteriorName is the checkpoint name posteriors are stored under.
// App names may use characters outside the store's checkpoint alphabet
// [A-Za-z0-9._-] (the generator's "gen:<seed>,profile=..." names);
// those map to '_' and the original spelling is pinned with a short
// content hash so two apps that sanitize alike never share a posterior.
func PosteriorName(app string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'A' && r <= 'Z', r >= 'a' && r <= 'z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, app)
	if safe != app {
		sum := sha256.Sum256([]byte(app))
		safe += "-" + hex.EncodeToString(sum[:4])
	}
	return "posterior-" + safe
}

// PosteriorFromResult captures res's probabilities for persistence,
// stamped with cfg's offline signature so a posterior solved under one
// constraint encoding is never replayed into another.
func PosteriorFromResult(res *Result, cfg Config) *Posterior {
	return &Posterior{
		Version:   PosteriorVersion,
		App:       res.App,
		ConfigSig: ConfigSignature(cfg),
		Rounds:    len(res.Rounds),
		Acquires:  res.Acquires,
		Releases:  res.Releases,
	}
}

// Priors converts a stored posterior back into campaign priors, verifying
// it was solved under a config with cfg's signature.
func (p *Posterior) Priors(cfg Config) (*solver.Priors, error) {
	if sig := ConfigSignature(cfg); p.ConfigSig != sig {
		return nil, fmt.Errorf("core: posterior for %s solved under config %s, campaign uses %s", p.App, p.ConfigSig, sig)
	}
	pr := &solver.Priors{
		Acquires: make(map[trace.Key]float64, len(p.Acquires)),
		Releases: make(map[trace.Key]float64, len(p.Releases)),
	}
	for k, v := range p.Acquires {
		if v > 0 {
			pr.Acquires[k] = v
		}
	}
	for k, v := range p.Releases {
		if v > 0 {
			pr.Releases[k] = v
		}
	}
	return pr, nil
}

// EncodePosterior serializes a posterior for checkpoint storage.
func EncodePosterior(p *Posterior) ([]byte, error) {
	if p.Version == "" {
		p.Version = PosteriorVersion
	}
	return json.Marshal(p)
}

// DecodePosterior parses an EncodePosterior document, rejecting unknown
// versions.
func DecodePosterior(data []byte) (*Posterior, error) {
	var p Posterior
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("core: decode posterior: %w", err)
	}
	if p.Version != PosteriorVersion {
		return nil, fmt.Errorf("core: decode posterior: unsupported version %q (want %q)", p.Version, PosteriorVersion)
	}
	return &p, nil
}
