// Package exper drives every experiment of the paper's evaluation
// (Section 5): it runs the SherLock engine over the benchmark applications
// under the parameterizations each table/figure calls for and returns
// structured results for internal/report to render and for the benchmark
// harness to assert on.
package exper

import (
	"context"
	"sort"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/prog"
	"sherlock/internal/race"
	"sherlock/internal/solver"
	"sherlock/internal/trace"
	"sherlock/internal/tsvd"
	"sherlock/internal/window"
)

// AppRun bundles one application's inference and score.
type AppRun struct {
	App    *prog.Program
	Result *core.Result
	Score  *core.Score
}

// RunAll infers every benchmark app under cfg, campaigns running
// concurrently via core.InferAll.
func RunAll(ctx context.Context, cfg core.Config) ([]AppRun, error) {
	all := apps.All()
	results, err := core.InferAll(ctx, all, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]AppRun, 0, len(all))
	for i, app := range all {
		res := results[i]
		out = append(out, AppRun{App: app, Result: res, Score: core.ScoreResult(app, res)})
	}
	return out, nil
}

// UniqueCorrect counts distinct correctly inferred keys across runs
// (the paper's parenthesized unique sums).
func UniqueCorrect(runs []AppRun) int {
	seen := map[trace.Key]bool{}
	for _, r := range runs {
		for _, c := range r.Score.Correct {
			seen[c.Key] = true
		}
	}
	return len(seen)
}

// UniqueTotal counts distinct inferred keys (correct or not) across runs.
func UniqueTotal(runs []AppRun) int {
	seen := map[trace.Key]bool{}
	for _, r := range runs {
		for _, inf := range r.Result.Inferred {
			seen[inf.Key] = true
		}
	}
	return len(seen)
}

// ---------------------------------------------------------------------------
// Table 2 — inferred results after 3 rounds
// ---------------------------------------------------------------------------

// Table2Row is one application's classification counts.
type Table2Row struct {
	App         string
	Syncs       int
	DataRacy    int
	InstrErrors int
	NotSync     int
	Missed      int
}

// Table2 runs the default configuration over all apps.
func Table2(ctx context.Context) ([]Table2Row, []AppRun, error) {
	runs, err := RunAll(ctx, core.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	rows := make([]Table2Row, 0, len(runs))
	for _, r := range runs {
		rows = append(rows, Table2Row{
			App:         r.App.Name,
			Syncs:       len(r.Score.Correct),
			DataRacy:    len(r.Score.DataRacy),
			InstrErrors: len(r.Score.InstrErrors),
			NotSync:     len(r.Score.NotSync),
			Missed:      len(r.Score.Missed),
		})
	}
	return rows, runs, nil
}

// ---------------------------------------------------------------------------
// Table 3 — race detection, Manual_dr vs SherLock_dr
// ---------------------------------------------------------------------------

// Table3 compares the two detector variants per app, using each app's own
// inference result for SherLock_dr.
func Table3(ctx context.Context) ([]*race.Comparison, error) {
	all := apps.All()
	results, err := core.InferAll(ctx, all, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	out := make([]*race.Comparison, 0, len(all))
	for i, app := range all {
		cmp, err := race.Compare(ctx, app, results[i].SyncKeys(), race.DefaultCompareConfig())
		if err != nil {
			return nil, err
		}
		out = append(out, cmp)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Table 4 — breakdown of false positives/negatives
// ---------------------------------------------------------------------------

// Table4Row is one misclassification bucket.
type Table4Row struct {
	Category   prog.FPCategory
	FalseSyncs int
	Missed     int
	FalseRaces int
}

// Table4Categories fixes the row order of the paper's Table 4.
var Table4Categories = []prog.FPCategory{
	prog.CatInstrError, prog.CatDoubleRole, prog.CatDispose,
	prog.CatStaticCtor, prog.CatOther,
}

// Table4 aggregates bucket counts across apps, joining the inference scores
// with SherLock_dr's false-race causes.
func Table4(runs []AppRun, cmps []*race.Comparison) []Table4Row {
	fp := map[prog.FPCategory]int{}
	miss := map[prog.FPCategory]int{}
	falseRaces := map[prog.FPCategory]int{}
	for _, r := range runs {
		for c, n := range r.Score.FPByCategory {
			if c == prog.CatDataRacy {
				continue // Table 4 covers the non-race misclassifications
			}
			fp[c] += n
		}
		for c, n := range r.Score.MissByCategory {
			miss[c] += n
		}
	}
	for _, c := range cmps {
		for cat, n := range c.SherFalseByCause {
			falseRaces[cat] += n
		}
	}
	rows := make([]Table4Row, 0, len(Table4Categories))
	for _, cat := range Table4Categories {
		rows = append(rows, Table4Row{
			Category: cat, FalseSyncs: fp[cat], Missed: miss[cat], FalseRaces: falseRaces[cat],
		})
	}
	return rows
}

// ---------------------------------------------------------------------------
// Table 5 — hypothesis ablation
// ---------------------------------------------------------------------------

// Ablation names one Table 5 row and its hypothesis toggle.
type Ablation struct {
	Name  string
	Apply func(*solver.Hypotheses)
}

// Ablations lists the paper's Table 5 rows.
var Ablations = []Ablation{
	{"SherLock", func(*solver.Hypotheses) {}},
	{"w/o Mostly are Protected", func(h *solver.Hypotheses) { h.MostlyProtected = false }},
	{"w/o Synchronizations are Rare", func(h *solver.Hypotheses) { h.SyncsAreRare = false }},
	{"w/o Acq-Time Varies", func(h *solver.Hypotheses) { h.AcqTimeVaries = false }},
	{"w/o Mostly are Paired", func(h *solver.Hypotheses) { h.MostlyPaired = false }},
	{"w/o Read-Acq & Write-Rel", func(h *solver.Hypotheses) { h.ReadAcqWriteRel = false }},
	{"w/o Single Role", func(h *solver.Hypotheses) { h.SingleRole = false }},
}

// Table5Row is one ablation's aggregate result.
type Table5Row struct {
	Name      string
	Correct   int // unique correct across apps
	Total     int // unique inferred across apps
	Precision float64
}

// Table5 runs every ablation over all apps.
func Table5(ctx context.Context) ([]Table5Row, error) {
	rows := make([]Table5Row, 0, len(Ablations))
	for _, ab := range Ablations {
		cfg := core.DefaultConfig()
		ab.Apply(&cfg.Solver.Hyp)
		runs, err := RunAll(ctx, cfg)
		if err != nil {
			return nil, err
		}
		row := Table5Row{Name: ab.Name, Correct: UniqueCorrect(runs), Total: UniqueTotal(runs)}
		if row.Total > 0 {
			row.Precision = float64(row.Correct) / float64(row.Total)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 4 — Perturber / feedback settings across rounds
// ---------------------------------------------------------------------------

// FeedbackSetting names one Figure 4 line.
type FeedbackSetting struct {
	Name  string
	Apply func(*core.Config)
}

// FeedbackSettings lists the figure's four lines.
var FeedbackSettings = []FeedbackSetting{
	{"SherLock", func(*core.Config) {}},
	{"no delay injection", func(c *core.Config) { c.InjectDelays = false }},
	{"no accumulation", func(c *core.Config) { c.Accumulate = false }},
	{"no race removal", func(c *core.Config) { c.RemoveRacyMP = false }},
}

// Figure4Series holds correct-sync counts per round for one setting.
type Figure4Series struct {
	Name    string
	Correct []int // index = round-1, summed unique across apps
}

// Figure4 runs each feedback setting for the given number of rounds.
func Figure4(ctx context.Context, rounds int) ([]Figure4Series, error) {
	out := make([]Figure4Series, 0, len(FeedbackSettings))
	for _, fs := range FeedbackSettings {
		cfg := core.DefaultConfig()
		cfg.Rounds = rounds
		fs.Apply(&cfg)
		perRound := make([]map[trace.Key]bool, rounds)
		for i := range perRound {
			perRound[i] = map[trace.Key]bool{}
		}
		all := apps.All()
		results, err := core.InferAll(ctx, all, cfg)
		if err != nil {
			return nil, err
		}
		for ai, app := range all {
			res := results[ai]
			for i, snap := range res.Rounds {
				m := map[trace.Key]trace.Role{}
				for _, k := range snap.Acquires {
					m[k] = trace.RoleAcquire
				}
				for _, k := range snap.Releases {
					m[k] = trace.RoleRelease
				}
				for k, role := range m {
					if tr, ok := app.Truth.Syncs[k]; ok && tr == role {
						perRound[i][k] = true
					}
				}
			}
		}
		series := Figure4Series{Name: fs.Name, Correct: make([]int, rounds)}
		for i := range perRound {
			series.Correct[i] = len(perRound[i])
		}
		out = append(out, series)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Table 6 — λ sensitivity
// ---------------------------------------------------------------------------

// LambdaValues are the paper's sweep points.
var LambdaValues = []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1, 5, 10, 50, 100}

// SweepRow is one parameter sweep point.
type SweepRow struct {
	Param   float64
	Correct int
	Total   int
}

// Table6 sweeps λ.
func Table6(ctx context.Context) ([]SweepRow, error) {
	rows := make([]SweepRow, 0, len(LambdaValues))
	for _, lam := range LambdaValues {
		cfg := core.DefaultConfig()
		cfg.Solver.Lambda = lam
		runs, err := RunAll(ctx, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SweepRow{Param: lam, Correct: UniqueCorrect(runs), Total: UniqueTotal(runs)})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Table 7 — Near sensitivity
// ---------------------------------------------------------------------------

// NearValues span the paper's small/default/large sweep. The paper's small
// setting (0.01 s against 1 s) cut most conflicting pairs because its
// operations span milliseconds; our virtual operations span nanoseconds to
// microseconds, so the equivalent "too small" window is 2 µs (0.002×) —
// what matters is that it is smaller than the program's synchronization
// distances, as the paper's was.
var NearValues = []int64{2_000, 1_000_000, 100_000_000}

// Table7 sweeps Near.
func Table7(ctx context.Context) ([]SweepRow, error) {
	rows := make([]SweepRow, 0, len(NearValues))
	for _, near := range NearValues {
		cfg := core.DefaultConfig()
		cfg.Window.Near = near
		runs, err := RunAll(ctx, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SweepRow{
			Param:   float64(near) / float64(window.DefaultConfig().Near),
			Correct: UniqueCorrect(runs),
			Total:   UniqueTotal(runs),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Tables 8/9 — inferred synchronization listings
// ---------------------------------------------------------------------------

// Listing is one app's inferred operations, split by role.
type Listing struct {
	App      string
	Releases []string
	Acquires []string
}

// Listings renders the per-app inferred operation lists (the reproduction
// of Tables 8 and 9, over all eight apps).
func Listings(runs []AppRun) []Listing {
	out := make([]Listing, 0, len(runs))
	for _, r := range runs {
		l := Listing{App: r.App.Name + " (" + r.App.Title + ")"}
		for _, inf := range r.Result.Inferred {
			disp := inf.Key.Display()
			if inf.Role == trace.RoleRelease {
				l.Releases = append(l.Releases, disp)
			} else {
				l.Acquires = append(l.Acquires, disp)
			}
		}
		sort.Strings(l.Releases)
		sort.Strings(l.Acquires)
		out = append(out, l)
	}
	return out
}

// ---------------------------------------------------------------------------
// Section 5.6 — TSVD enhancement
// ---------------------------------------------------------------------------

// TSVDRow is one app's TSVD comparison.
type TSVDRow struct {
	App         string
	Conflicting int
	TSVDSynced  int
	SherSynced  int
}

// TSVDEnhancement runs the TSVD experiment on every app.
func TSVDEnhancement(ctx context.Context) ([]TSVDRow, error) {
	all := apps.All()
	results, err := core.InferAll(ctx, all, core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	out := make([]TSVDRow, 0, len(all))
	for i, app := range all {
		t, err := tsvd.Analyze(ctx, app, results[i].SyncKeys(), tsvd.DefaultConfig())
		if err != nil {
			return nil, err
		}
		out = append(out, TSVDRow{
			App:         app.Name,
			Conflicting: len(t.Conflicting),
			TSVDSynced:  len(t.TSVDSynced),
			SherSynced:  len(t.SherSynced),
		})
	}
	return out, nil
}
