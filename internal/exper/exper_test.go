package exper

import (
	"context"
	"testing"

	"sherlock/internal/core"
	"sherlock/internal/prog"
	"sherlock/internal/race"
	"sherlock/internal/trace"
)

func TestRunAllAndUniqueCounting(t *testing.T) {
	runs, err := RunAll(context.Background(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 8 {
		t.Fatalf("runs = %d, want 8", len(runs))
	}
	uc, ut := UniqueCorrect(runs), UniqueTotal(runs)
	if uc == 0 || ut < uc {
		t.Fatalf("unique correct %d / total %d implausible", uc, ut)
	}
	// Unique must not exceed the plain sums.
	var sumCorrect int
	for _, r := range runs {
		sumCorrect += len(r.Score.Correct)
	}
	if uc > sumCorrect {
		t.Errorf("unique correct %d exceeds sum %d", uc, sumCorrect)
	}
}

func TestTable2Shape(t *testing.T) {
	rows, runs, err := Table2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 || len(runs) != 8 {
		t.Fatalf("rows/runs = %d/%d", len(rows), len(runs))
	}
	for i, r := range rows {
		if r.App != runs[i].App.Name {
			t.Errorf("row %d app mismatch", i)
		}
		if r.Syncs == 0 {
			t.Errorf("%s inferred no syncs", r.App)
		}
	}
}

func TestTable4JoinsScoresAndRaceCauses(t *testing.T) {
	// Fabricated inputs: one run with categorized misclassifications, one
	// comparison with false-race causes.
	app := prog.New("x", "X")
	app.Truth.Category[prog.WK("C::f")] = prog.CatDispose
	score := &core.Score{
		FPByCategory:   map[prog.FPCategory]int{prog.CatInstrError: 2, prog.CatDataRacy: 9},
		MissByCategory: map[prog.FPCategory]int{prog.CatDoubleRole: 1},
	}
	runs := []AppRun{{App: app, Result: &core.Result{}, Score: score}}
	cmps := []*race.Comparison{{
		App:              "x",
		SherFalseByCause: map[prog.FPCategory]int{prog.CatDispose: 3, prog.CatOther: 4},
	}}
	rows := Table4(runs, cmps)
	byCat := map[prog.FPCategory]Table4Row{}
	for _, r := range rows {
		byCat[r.Category] = r
	}
	if byCat[prog.CatInstrError].FalseSyncs != 2 {
		t.Errorf("instr-errors FP = %d", byCat[prog.CatInstrError].FalseSyncs)
	}
	if byCat[prog.CatDoubleRole].Missed != 1 {
		t.Errorf("double-roles missed = %d", byCat[prog.CatDoubleRole].Missed)
	}
	if byCat[prog.CatDispose].FalseRaces != 3 || byCat[prog.CatOther].FalseRaces != 4 {
		t.Errorf("false races misjoined: %+v", rows)
	}
	// Data-racy ops are excluded from Table 4's FP column.
	for _, r := range rows {
		if r.Category == prog.CatDataRacy {
			t.Error("data-racy must not appear as a Table 4 row")
		}
	}
}

func TestFigure4SeriesShape(t *testing.T) {
	series, err := Figure4(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(FeedbackSettings) {
		t.Fatalf("series = %d, want %d", len(series), len(FeedbackSettings))
	}
	for _, s := range series {
		if len(s.Correct) != 2 {
			t.Errorf("%s: rounds = %d, want 2", s.Name, len(s.Correct))
		}
		for _, c := range s.Correct {
			if c <= 0 {
				t.Errorf("%s: zero correct syncs", s.Name)
			}
		}
	}
}

func TestListings(t *testing.T) {
	runs, err := RunAll(context.Background(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ls := Listings(runs)
	if len(ls) != 8 {
		t.Fatalf("listings = %d", len(ls))
	}
	for _, l := range ls {
		if len(l.Releases)+len(l.Acquires) == 0 {
			t.Errorf("%s: empty listing", l.App)
		}
	}
}

func TestTSVDEnhancementShape(t *testing.T) {
	rows, err := TSVDEnhancement(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	var conflicting, tsvdSynced, sherSynced int
	for _, r := range rows {
		if r.TSVDSynced > r.Conflicting || r.SherSynced > r.Conflicting {
			t.Errorf("%s: synced exceeds conflicting: %+v", r.App, r)
		}
		conflicting += r.Conflicting
		tsvdSynced += r.TSVDSynced
		sherSynced += r.SherSynced
	}
	if conflicting == 0 {
		t.Error("no conflicting thread-unsafe pairs found across apps")
	}
	if sherSynced < tsvdSynced {
		t.Errorf("SherLock enhancement (%d) weaker than TSVD (%d)", sherSynced, tsvdSynced)
	}
}

func TestOverheadRows(t *testing.T) {
	rows, err := Overhead(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Events == 0 || r.Windows == 0 {
			t.Errorf("%s: no events/windows recorded", r.App)
		}
		if r.Baseline <= 0 || r.Tracing <= 0 || r.Solving <= 0 {
			t.Errorf("%s: missing timings: %+v", r.App, r)
		}
	}
}

// keyRole helper sanity for unique counting.
func TestUniqueCorrectDedupes(t *testing.T) {
	app := prog.New("y", "Y")
	k := trace.KeyFor(trace.KindWrite, "C::f")
	mk := func() AppRun {
		return AppRun{
			App:    app,
			Result: &core.Result{},
			Score: &core.Score{Correct: []core.InferredSync{
				{Key: k, Role: trace.RoleRelease},
			}},
		}
	}
	if got := UniqueCorrect([]AppRun{mk(), mk(), mk()}); got != 1 {
		t.Errorf("UniqueCorrect = %d, want 1", got)
	}
}
