// Overhead accounting (paper Section 5.6): wall-clock cost of tracing,
// window extraction + solving, and delay injection, against an
// uninstrumented baseline of the same test executions.
package exper

import (
	"context"
	"time"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/sched"
)

// OverheadRow is one application's cost breakdown.
type OverheadRow struct {
	App          string
	Baseline     time.Duration // 3 uninstrumented runs of every test
	Tracing      time.Duration // instrumented executions inside the engine
	Solving      time.Duration // window extraction is folded into Tracing; LP solve time
	Events       int
	Windows      int
	DelayVirtual int64 // injected virtual delay (ns)
	// OverheadPct is (Tracing+Solving)/Baseline − 1, in percent.
	OverheadPct float64
}

// Overhead measures every app. Wall-clock results depend on the host; the
// paper reports 24%–800% per test with a 278% average — the shape to
// compare is "tracing dominates, solving is the second-largest cost".
func Overhead(ctx context.Context) ([]OverheadRow, error) {
	rows := make([]OverheadRow, 0, 8)
	for _, app := range apps.All() {
		// Baseline: the same number of executions, uninstrumented.
		start := time.Now()
		for round := 0; round < 3; round++ {
			for ti, test := range app.Tests {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				_, err := sched.Run(app, test, sched.Options{
					Seed:           int64(1 + round*7919 + ti*127),
					DisableTracing: true,
				})
				if err != nil {
					return nil, err
				}
			}
		}
		baseline := time.Since(start)

		// The overhead experiment times the engine's serial cost model, so
		// it pins Parallelism to 1: RunWall vs Baseline stays apples to
		// apples regardless of the host's core count.
		cfg := core.DefaultConfig()
		cfg.Parallelism = 1
		res, err := core.Infer(ctx, app, cfg)
		if err != nil {
			return nil, err
		}
		row := OverheadRow{
			App:          app.Name,
			Baseline:     baseline,
			Tracing:      res.Overhead.RunWall,
			Solving:      res.Overhead.SolveWall,
			Events:       res.Overhead.Events,
			Windows:      res.Overhead.Windows,
			DelayVirtual: res.Overhead.DelayVirtual,
		}
		if baseline > 0 {
			row.OverheadPct = 100 * (float64(row.Tracing+row.Solving)/float64(baseline) - 1)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
