// Package gen is a seeded, deterministic procedural application
// generator. It composes idiom templates — the paper's classic C#
// idioms (locks, semaphores, flags, fork-join, continuations,
// finalizers, static constructors, hidden methods, true races) and a
// Go-native family (channel send/recv as release/acquire carriers,
// WaitGroup, Once, RWMutex) — into arbitrarily many prog.Programs,
// each annotated with machine-readable ground truth (expected sync
// pairs, expected racy operations, expected instrumentation-error
// sites), so inference precision/recall is scoreable at any N without
// human labels.
//
// Determinism contract: the same canonical name (seed, profile, size)
// under the same generator Version produces a byte-identical program
// and ground truth (see Fingerprint), and therefore the same
// static.ProgramHash — generated apps are content-addressable and
// cacheable cluster-wide exactly like the built-ins.
package gen

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

// FromName parses name, builds (or returns the cached) program. The
// cache is keyed by the canonical name, so alias spellings of the same
// spec ("gen:42,profile=mixed" vs "gen:42") resolve to the same
// finalized *prog.Program — pointer-identical, exactly like the
// built-in registry.
func FromName(name string) (*prog.Program, error) {
	spec, err := Parse(name)
	if err != nil {
		return nil, err
	}
	canon := spec.Name()
	if p, ok := cache.Load(canon); ok {
		return p.(*prog.Program), nil
	}
	p, _ := cache.LoadOrStore(canon, New(spec))
	return p.(*prog.Program), nil
}

var cache sync.Map // canonical name -> *prog.Program

// SampleNames returns a small deterministic showcase of generated apps,
// one per profile — this is what the program-source registry enumerates
// (e.g. for `sherlock static -all`). Arbitrary other seeds remain
// addressable by explicit name.
func SampleNames() []string {
	return []string{
		"gen:1",
		"gen:2,profile=go",
		"gen:3,profile=classic",
		"gen:4,profile=racy",
	}
}

// New builds a fresh finalized program for spec, bypassing the cache
// (determinism tests rebuild repeatedly and compare fingerprints).
func New(spec Spec) *prog.Program {
	if spec.Profile == "" {
		spec.Profile = DefaultProfile
	}
	if spec.Size == 0 {
		spec.Size = DefaultSize
	}
	name := spec.Name()
	p := prog.New(name, fmt.Sprintf("Generated(%s/%s, %d idioms, seed %d)", Version, spec.Profile, spec.Size, spec.Seed))
	rng := rand.New(rand.NewSource(deriveSeed(spec)))
	b := &builder{p: p, rng: rng}
	pool := pools[spec.Profile]
	for i := 0; i < spec.Size; i++ {
		t := pool[rng.Intn(len(pool))]
		b.idx = i
		b.cls = fmt.Sprintf("Gen.I%02d.%s", i, t.tag)
		t.build(b)
	}
	// Synthetic inventory metadata (Table 1 analogue), derived from the
	// spec alone so it never perturbs the rng stream.
	p.LoC = 180 * len(p.Methods)
	p.Stars = int(spec.Seed % 1000)
	p.PaperTests = len(p.Tests)
	p.MustFinalize()
	return p
}

// deriveSeed folds the generator version, profile and size into the
// user seed so any change to the contract changes every derived rng
// stream (and therefore every fingerprint and program hash).
func deriveSeed(spec Spec) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d", Version, spec.Profile, spec.Size)
	return int64(h.Sum64() ^ (uint64(spec.Seed)+1)*0x9E3779B97F4A7C15)
}

// ---------------------------------------------------------------------------
// Builder: per-instance naming and rng plumbing shared by all templates
// ---------------------------------------------------------------------------

type builder struct {
	p   *prog.Program
	rng *rand.Rand
	idx int    // idiom instance index within the program
	cls string // instance class prefix, e.g. "Gen.I03.Lock"
}

// template is one idiom generator: build must add methods, at least one
// test with conflicting heap accesses, and the instance's ground truth.
type template struct {
	tag   string
	build func(b *builder)
}

// m qualifies member under the instance class.
func (b *builder) m(member string) string { return b.cls + "::" + member }

// res names a per-instance scheduler resource (lock, semaphore, queue).
func (b *builder) res(tag string) string { return fmt.Sprintf("i%02d-%s", b.idx, tag) }

// slot names the per-instance receiver object.
func (b *builder) slot() string { return fmt.Sprintf("o%02d", b.idx) }

// dur draws a uniform virtual-ns duration in [lo, hi].
func (b *builder) dur(lo, hi int64) int64 { return lo + b.rng.Int63n(hi-lo+1) }

// Truth shorthands.
func (b *builder) sync(k trace.Key, r trace.Role)     { b.p.Truth.Sync(k, r) }
func (b *builder) alt(k trace.Key, r trace.Role)      { b.p.Truth.SyncAlt(k, r) }
func (b *builder) cat(k trace.Key, c prog.FPCategory) { b.p.Truth.Category[k] = c }
func (b *builder) race(field string)                  { b.p.Truth.Race(field) }
func (b *builder) hidden(method string)               { b.p.Truth.HiddenMethods[method] = true }
func (b *builder) altPair(w, r trace.Key)             { b.alt(w, trace.RoleRelease); b.alt(r, trace.RoleAcquire) }

// forked records the boundary alternates of forked methods: a forked
// method's Begin acquires the fork edge and its End releases the join
// edge, so either is correct-if-inferred without being required.
func (b *builder) forked(methods ...string) {
	for _, m := range methods {
		b.alt(prog.BK(m), trace.RoleAcquire)
		b.alt(prog.EK(m), trace.RoleRelease)
	}
}

// forkJoinAlt records the fork/join edge alternates for the API pair a
// test actually used.
func (b *builder) forkJoinAlt(f prog.ForkAPI, j prog.JoinAPI) {
	b.alt(prog.EK(f.APIName()), trace.RoleRelease)
	b.alt(prog.BK(j.APIName()), trace.RoleAcquire)
}

// pools maps each profile to its weighted template list (weight by
// repetition).
var pools = map[string][]template{
	ProfileClassic: classicTemplates,
	ProfileGo:      goTemplates,
	ProfileMixed:   append(append([]template{}, classicTemplates...), goTemplates...),
	ProfileRacy: {
		tmplRace, tmplRace, tmplRace,
		tmplFlag, tmplLock,
	},
}

// ---------------------------------------------------------------------------
// Fingerprint: canonical byte rendering of a program + ground truth
// ---------------------------------------------------------------------------

// Fingerprint renders a finalized program — methods, tests, statements
// (with site ids), and the full ground truth — as a canonical string.
// Two builds of the same spec must produce byte-identical fingerprints;
// this is the determinism contract the gen tests and the bench harness
// check, one level stronger than equality of static.ProgramHash.
func Fingerprint(p *prog.Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s title=%q loc=%d stars=%d papertests=%d\n",
		p.Name, p.Title, p.LoC, p.Stars, p.PaperTests)
	methods := make([]string, 0, len(p.Methods))
	for n := range p.Methods {
		methods = append(methods, n)
	}
	sort.Strings(methods)
	for _, n := range methods {
		fmt.Fprintf(&sb, "method %s\n", n)
		writeStmts(&sb, p.Methods[n].Body, 1)
	}
	for _, t := range p.Tests {
		fmt.Fprintf(&sb, "test %s init=%q\n", t.Name, t.Init)
		writeStmts(&sb, t.Body, 1)
	}
	tr := p.Truth
	for _, k := range sortedKeys(tr.Syncs) {
		fmt.Fprintf(&sb, "sync %v role=%v optional=%v\n", k, tr.Syncs[k], tr.Optional[k])
	}
	for _, k := range sortedBoolKeys(tr.RacyKeys) {
		fmt.Fprintf(&sb, "racykey %v\n", k)
	}
	for _, f := range sortedStrings(tr.RacyFields) {
		fmt.Fprintf(&sb, "racyfield %s\n", f)
	}
	for _, m := range sortedStrings(tr.HiddenMethods) {
		fmt.Fprintf(&sb, "hiddenmethod %s\n", m)
	}
	for _, k := range sortedCatKeys(tr.Category) {
		fmt.Fprintf(&sb, "category %v=%s\n", k, tr.Category[k])
	}
	for _, f := range sortedStrings(p.Volatile) {
		fmt.Fprintf(&sb, "volatile %s\n", f)
	}
	return sb.String()
}

func writeStmts(sb *strings.Builder, ss []prog.Stmt, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, s := range ss {
		// A Loop's Body holds interface values whose %#v rendering
		// would include pointer addresses; print its scalars and recurse.
		if l, ok := s.(*prog.Loop); ok {
			fmt.Fprintf(sb, "%sloop site=%d n=%d\n", indent, l.Site(), l.N)
			writeStmts(sb, l.Body, depth+1)
			continue
		}
		fmt.Fprintf(sb, "%s%#v\n", indent, s)
	}
}

func sortedKeys(m map[trace.Key]trace.Role) []trace.Key {
	ks := make([]trace.Key, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func sortedBoolKeys(m map[trace.Key]bool) []trace.Key {
	ks := make([]trace.Key, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func sortedCatKeys(m map[trace.Key]prog.FPCategory) []trace.Key {
	ks := make([]trace.Key, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func sortedStrings(m map[string]bool) []string {
	ss := make([]string, 0, len(m))
	for s := range m {
		ss = append(ss, s)
	}
	sort.Strings(ss)
	return ss
}
