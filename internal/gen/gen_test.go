package gen

import (
	"context"
	"fmt"
	"testing"

	"sherlock/internal/core"
	"sherlock/internal/prog"
	"sherlock/internal/static"
	"sherlock/internal/trace"
)

func TestParseAndCanonicalName(t *testing.T) {
	cases := []struct {
		in    string
		want  Spec
		canon string
	}{
		{"gen:42", Spec{42, "mixed", 4}, "gen:42"},
		{"gen:42,profile=mixed", Spec{42, "mixed", 4}, "gen:42"},
		{"gen:0,profile=go", Spec{0, "go", 4}, "gen:0,profile=go"},
		{"gen:7,size=9", Spec{7, "mixed", 9}, "gen:7,size=9"},
		{"gen:7,profile=racy,size=2", Spec{7, "racy", 2}, "gen:7,profile=racy,size=2"},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if got.Name() != c.canon {
			t.Errorf("Parse(%q).Name() = %q, want %q", c.in, got.Name(), c.canon)
		}
	}
	for _, bad := range []string{
		"App-1", "gen:", "gen:-1", "gen:x", "gen:1,profile=rust",
		"gen:1,size=0", "gen:1,size=99", "gen:1,depth=3", "gen:1,profile",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

// TestDeterminism: same seed => byte-identical program, ground truth and
// structural hash across 20 fresh builds (run under -race in CI);
// distinct seeds => distinct hashes.
func TestDeterminism(t *testing.T) {
	for _, name := range []string{"gen:42", "gen:42,profile=go", "gen:42,profile=classic", "gen:42,profile=racy"} {
		spec, err := Parse(name)
		if err != nil {
			t.Fatal(err)
		}
		base := New(spec)
		baseFP := Fingerprint(base)
		baseHash, err := static.ProgramHash(base)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			p := New(spec)
			if fp := Fingerprint(p); fp != baseFP {
				t.Fatalf("%s: build %d fingerprint diverged", name, i)
			}
			h, err := static.ProgramHash(p)
			if err != nil {
				t.Fatal(err)
			}
			if h != baseHash {
				t.Fatalf("%s: build %d ProgramHash = %s, want %s", name, i, h, baseHash)
			}
		}
	}
	// Distinct seeds must produce distinct structural hashes.
	seen := map[string]string{}
	for seed := int64(0); seed < 30; seed++ {
		p := New(Spec{Seed: seed, Profile: DefaultProfile, Size: DefaultSize})
		h, err := static.ProgramHash(p)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("seed %d collides with %s on hash %s", seed, prev, h)
		}
		seen[h] = fmt.Sprintf("seed %d", seed)
	}
}

// TestFromNameCache: alias spellings resolve to the same finalized
// pointer, like the built-in registry.
func TestFromNameCache(t *testing.T) {
	a, err := FromName("gen:42")
	if err != nil {
		t.Fatal(err)
	}
	b, err := FromName("gen:42,profile=mixed")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("alias spellings of the same spec should share one program")
	}
	if a.Name != "gen:42" {
		t.Errorf("program named %q, want canonical gen:42", a.Name)
	}
}

// TestTruthWellFormed mirrors the built-in apps' invariant across a
// spread of seeds and profiles: annotated acquires must be
// acquire-capable kinds and vice versa (double-role upgrade excepted),
// and no field is both volatile and racy.
func TestTruthWellFormed(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		for _, profile := range Profiles {
			p := New(Spec{Seed: seed, Profile: profile, Size: 6})
			for k, role := range p.Truth.Syncs {
				if k == prog.EK(prog.APIRWUpgrade) {
					continue
				}
				switch role {
				case trace.RoleAcquire:
					if !trace.AcquireCapable(k.Kind()) {
						t.Errorf("%s: %s annotated acquire but kind %v cannot acquire", p.Name, k, k.Kind())
					}
				case trace.RoleRelease:
					if !trace.ReleaseCapable(k.Kind()) {
						t.Errorf("%s: %s annotated release but kind %v cannot release", p.Name, k, k.Kind())
					}
				}
			}
			for f := range p.Volatile {
				if p.Truth.RacyFields[f] {
					t.Errorf("%s: %s is both volatile and racy", p.Name, f)
				}
			}
		}
	}
}

// TestInferenceOnGenerated runs full campaigns on a few generated apps
// and checks they execute to completion (no deadlock, no hang) and
// score sanely: something inferred, and every missed sync lands in a
// known bucket or is a genuine (counted) miss.
func TestInferenceOnGenerated(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaigns")
	}
	cfg := core.DefaultConfig()
	cfg.Rounds = 2
	for _, name := range []string{"gen:1", "gen:2,profile=go", "gen:3,profile=classic", "gen:5,profile=racy"} {
		name := name
		t.Run(name, func(t *testing.T) {
			app, err := FromName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Infer(context.Background(), app, cfg)
			if err != nil {
				t.Fatal(err)
			}
			score := core.ScoreResult(app, res)
			if score.Total() == 0 {
				t.Fatalf("%s: nothing inferred", name)
			}
			t.Logf("%s: correct=%d racy=%d instr=%d notsync=%d missed=%d precision=%.2f",
				name, len(score.Correct), len(score.DataRacy), len(score.InstrErrors),
				len(score.NotSync), len(score.Missed), score.Precision())
		})
	}
}
