// Go-native idiom templates: the synchronization carriers BinGo
// catalogs as where real Go concurrency bugs hide — channel send/recv,
// sync.WaitGroup, sync.Once, sync.RWMutex — expressed in the program
// DSL. Channels and WaitGroups ride the queue statements' API-name
// override (a send is a release at the producer call's End, a recv an
// acquire at the consumer call's Begin), traced under per-instance
// Go-runtime-style names (chansend/chanrecv, wgDone/wgWait) so each
// instance contributes its own inferable keys. Once maps onto the
// first-use initialization guarantee, and RWMutex onto the
// reader-writer statements (the upgrade path keeps its double-role
// bucket). The idiom structure is Go's; the reader-writer trace names
// remain the DSL's fixed library identifiers.
package gen

import (
	"fmt"

	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

var goTemplates = []template{
	tmplChannel,
	tmplWaitGroup,
	tmplOnce,
	tmplRWMutex,
}

// tmplChannel: an unbuffered-channel handoff — the sender publishes a
// value then sends; the receiver blocks on recv then reads. The send's
// End is the release, the recv's Begin the acquire.
var tmplChannel = template{tag: "Chan", build: func(b *builder) {
	ch := b.res("chan")
	sendAPI := b.m("chansend")
	recvAPI := b.m("chanrecv")
	data := b.m("msg")
	sender := b.m("Sender")
	receiver := b.m("Receiver")
	o := b.slot()
	b.p.AddMethod(sender,
		prog.CpJ(b.dur(200, 360), 0.8),
		prog.Wr(data, o, 1),
		prog.Cp(b.dur(30, 60)),
		prog.PostAs(sendAPI, ch),
		prog.CpJ(b.dur(80, 160), 0.8),
	)
	b.p.AddMethod(receiver,
		prog.CpJ(b.dur(380, 540), 0.95),
		prog.RecvAs(recvAPI, ch),
		prog.Cp(b.dur(30, 60)),
		prog.Rd(data, o),
	)
	b.p.AddTest(b.cls+"Tests::SendRecv",
		prog.Go(prog.ForkThread, receiver, o, "h1"),
		prog.Go(prog.ForkThread, sender, o, "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	b.sync(prog.EK(sendAPI), trace.RoleRelease)
	b.sync(prog.BK(recvAPI), trace.RoleAcquire)
	b.altPair(prog.WK(data), prog.RK(data))
	b.forked(sender, receiver)
	b.forkJoinAlt(prog.ForkThread, prog.JoinThread)
}}

// tmplWaitGroup: n workers each publish a result and call Done; the
// test consumes n Done tokens via Wait before reading every result —
// Done's End releases, Wait's Begin acquires.
var tmplWaitGroup = template{tag: "WaitGroup", build: func(b *builder) {
	n := 2 + b.rng.Intn(2) // 2..3 workers
	wg := b.res("wg")
	doneAPI := b.m("wgDone")
	waitAPI := b.m("wgWait")
	o := b.slot()
	test := []prog.Stmt{}
	tail := []prog.Stmt{prog.Rep(n, prog.RecvAs(waitAPI, wg))}
	for i := 0; i < n; i++ {
		field := b.m(fmt.Sprintf("result%d", i))
		worker := b.m(fmt.Sprintf("Worker%d", i))
		b.p.AddMethod(worker,
			prog.CpJ(b.dur(180, 340), 0.9),
			prog.Wr(field, o, int64(i)+1),
			prog.Cp(b.dur(30, 60)),
			prog.PostAs(doneAPI, wg),
		)
		h := fmt.Sprintf("h%d", i)
		test = append(test, prog.Go(prog.ForkThread, worker, o, h))
		tail = append(tail, prog.Rd(field, o), prog.JoinT(h))
		b.altPair(prog.WK(field), prog.RK(field))
		b.forked(worker)
	}
	b.p.AddTest(b.cls+"Tests::WaitForAll", append(test, tail...)...)
	b.sync(prog.EK(doneAPI), trace.RoleRelease)
	b.sync(prog.BK(waitAPI), trace.RoleAcquire)
	b.forkJoinAlt(prog.ForkThread, prog.JoinThread)
}}

// tmplOnce: sync.Once-guarded initialization via the language's
// first-use guarantee — the same invisible ordering edge as a static
// constructor, so its misses land in the static-ctor bucket.
var tmplOnce = template{tag: "Once", build: func(b *builder) {
	initBody := b.m("onceDo")
	val := b.m("instance")
	get1 := b.m("Get")
	get2 := b.m("GetOrInit")
	b.p.AddMethod(initBody,
		prog.Wr(val, "", 1),
		prog.Cp(b.dur(420, 620)),
	)
	b.p.AddMethod(get1,
		prog.CpJ(b.dur(240, 360), 0.95),
		prog.StaticInit(b.cls, initBody),
		prog.Rd(val, ""),
		prog.Cp(b.dur(90, 160)),
	)
	b.p.AddMethod(get2,
		prog.CpJ(b.dur(520, 700), 0.9),
		prog.StaticInit(b.cls, initBody),
		prog.Rd(val, ""),
		prog.Rep(2, prog.Cp(b.dur(60, 100)), prog.Rd(val, "")),
	)
	b.p.AddTest(b.cls+"Tests::OnceConcurrent",
		prog.Go(prog.ForkThread, get1, "", "h1"),
		prog.Go(prog.ForkThread, get2, "", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	b.sync(prog.EK(initBody), trace.RoleRelease)
	b.forked(get1, get2)
	b.alt(prog.RK(val), trace.RoleAcquire)
	b.cat(prog.EK(initBody), prog.CatStaticCtor)
	b.cat(prog.BK(get1), prog.CatStaticCtor)
	b.cat(prog.BK(get2), prog.CatStaticCtor)
	b.cat(prog.RK(val), prog.CatStaticCtor)
	b.forkJoinAlt(prog.ForkThread, prog.JoinThread)
}}

// tmplRWMutex: RLock-guarded readers plus a writer that upgrades its
// read hold to write — sync.RWMutex usage whose upgrade keeps the
// Single-Role violation (double-roles bucket, App-8 shape).
var tmplRWMutex = template{tag: "RWMutex", build: func(b *builder) {
	l := b.res("rwmu")
	table := b.m("entries")
	read := b.m("Lookup")
	write := b.m("Insert")
	o := b.slot()
	b.p.AddMethod(read,
		prog.CpJ(b.dur(200, 340), 0.95),
		prog.RdLock(l),
		prog.Rd(table, o),
		prog.Cp(b.dur(70, 130)),
		prog.RdUnlock(l),
		prog.CpJ(b.dur(100, 200), 0.9),
	)
	b.p.AddMethod(write,
		prog.CpJ(b.dur(240, 400), 0.95),
		prog.RdLock(l),
		prog.Rd(table, o),
		prog.Cp(b.dur(60, 110)),
		prog.Upgrade(l),
		prog.Wr(table, o, 2),
		prog.Cp(b.dur(40, 80)),
		prog.Downgrade(l),
		prog.RdUnlock(l),
	)
	body := []prog.Stmt{
		prog.Go(prog.ForkThread, read, o, "h1"),
		prog.Go(prog.ForkThread, write, o, "h2"),
	}
	tail := []prog.Stmt{prog.JoinT("h1"), prog.JoinT("h2")}
	if b.rng.Intn(2) == 1 {
		body = append(body, prog.Go(prog.ForkThread, read, o, "h3"))
		tail = append(tail, prog.JoinT("h3"))
	}
	b.p.AddTest(b.cls+"Tests::ReadersWriter", append(body, tail...)...)
	b.sync(prog.BK(prog.APIRWAcquireRead), trace.RoleAcquire)
	b.alt(prog.EK(prog.APIRWReleaseRead), trace.RoleRelease)
	b.sync(prog.BK(prog.APIRWUpgrade), trace.RoleAcquire)
	b.sync(prog.EK(prog.APIRWDowngrade), trace.RoleRelease)
	// The upgrade's End is a true release the Single-Role assumption
	// cannot co-infer with its acquire (paper Table 4).
	b.sync(prog.EK(prog.APIRWUpgrade), trace.RoleRelease)
	b.cat(prog.BK(prog.APIRWUpgrade), prog.CatDoubleRole)
	b.cat(prog.EK(prog.APIRWUpgrade), prog.CatDoubleRole)
	b.forked(read, write)
	b.forkJoinAlt(prog.ForkThread, prog.JoinThread)
}}
