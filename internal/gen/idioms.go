// Classic idiom templates: the paper's C# synchronization idioms
// (Tables 8/9, Figure 3), parameterized by the builder's rng. Every
// template follows the annotation conventions of the hand-written
// App-1..App-8 benchmarks: primary sync keys are non-optional, method
// boundaries and data fields that carry the same edge are SyncAlt
// alternates, and known-unrefinable patterns (dispose, static ctor,
// hidden methods, races) land in their Tables 2/4 buckets so the
// scorer can separate them from genuine failures.
package gen

import (
	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

var classicTemplates = []template{
	tmplLock,
	tmplSem,
	tmplFlag,
	tmplForkJoin,
	tmplContinuation,
	tmplWaitAll,
	tmplStaticInit,
	tmplHidden,
	tmplFinalizer,
	tmplRace,
}

// tmplLock: a Monitor-guarded counter touched by two threads
// (App-1's TelemetryBuffer shape).
var tmplLock = template{tag: "Lock", build: func(b *builder) {
	l := b.res("lock")
	state := b.m("state")
	add := b.m("Add")
	snap := b.m("Snapshot")
	o := b.slot()
	b.p.AddMethod(add,
		prog.CpJ(b.dur(220, 420), 0.9),
		prog.Lock(l),
		prog.Rd(state, o),
		prog.Wr(state, o, 1),
		prog.Cp(b.dur(60, 130)),
		prog.Unlock(l),
		prog.CpJ(b.dur(150, 300), 0.9),
	)
	b.p.AddMethod(snap,
		prog.CpJ(b.dur(320, 520), 0.9),
		prog.Lock(l),
		prog.Rd(state, o),
		prog.Wr(state, o, 2),
		prog.Cp(b.dur(50, 110)),
		prog.Unlock(l),
		prog.CpJ(b.dur(120, 260), 0.9),
	)
	b.p.AddTest(b.cls+"Tests::Concurrent",
		prog.Go(prog.ForkThread, add, o, "h1"),
		prog.Go(prog.ForkThread, snap, o, "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	if b.rng.Intn(2) == 1 {
		b.p.AddTest(b.cls+"Tests::TwoWriters",
			prog.Go(prog.ForkThread, add, o, "h1"),
			prog.Go(prog.ForkThread, add, o, "h2"),
			prog.JoinT("h1"), prog.JoinT("h2"),
		)
	}
	b.sync(prog.BK(prog.APIMonitorEnter), trace.RoleAcquire)
	b.sync(prog.EK(prog.APIMonitorExit), trace.RoleRelease)
	b.forked(add, snap)
	b.forkJoinAlt(prog.ForkThread, prog.JoinThread)
}}

// tmplSem: EventWaitHandle signaling — producer sets after publishing,
// consumer waits before reading (App-1's DiskBacker shape).
var tmplSem = template{tag: "Sem", build: func(b *builder) {
	sem := b.res("sem")
	data := b.m("payload")
	produce := b.m("Produce")
	consume := b.m("Consume")
	o := b.slot()
	b.p.AddMethod(produce,
		prog.CpJ(b.dur(220, 380), 0.8),
		prog.Wr(data, o, 1),
		prog.Cp(b.dur(35, 70)),
		prog.Set(sem),
	)
	b.p.AddMethod(consume,
		prog.CpJ(b.dur(420, 560), 0.95),
		prog.Wait(sem),
		prog.Cp(b.dur(30, 60)),
		prog.Rd(data, o),
	)
	b.p.AddTest(b.cls+"Tests::Signaled",
		prog.Go(prog.ForkThread, consume, o, "h1"),
		prog.Go(prog.ForkThread, produce, o, "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	b.sync(prog.EK(prog.APISemSet), trace.RoleRelease)
	b.sync(prog.BK(prog.APISemWait), trace.RoleAcquire)
	b.altPair(prog.WK(data), prog.RK(data))
	b.forked(produce, consume)
	b.forkJoinAlt(prog.ForkThread, prog.JoinThread)
}}

// tmplFlag: a volatile flag written by the publisher and spin-read by
// the observer (App-1's flushCompleted / App-2's ascension shape).
var tmplFlag = template{tag: "Flag", build: func(b *builder) {
	flag := b.m("ready")
	data := b.m("value")
	publish := b.m("Publish")
	observe := b.m("Observe")
	o := b.slot()
	b.p.AddMethod(publish,
		prog.CpJ(b.dur(280, 440), 0.7),
		prog.Wr(data, o, 7),
		prog.Cp(b.dur(40, 80)),
		prog.Wr(flag, o, 1),
	)
	b.p.AddMethod(observe,
		prog.Spin(flag, o, 1, b.dur(200, 300)),
		prog.Cp(b.dur(20, 45)),
		prog.Rd(data, o),
	)
	b.p.AddTest(b.cls+"Tests::FlagHandoff",
		prog.Go(prog.ForkThread, observe, o, "h1"),
		prog.Go(prog.ForkThread, publish, o, "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	b.p.Volatile[flag] = true
	b.sync(prog.WK(flag), trace.RoleRelease)
	b.sync(prog.RK(flag), trace.RoleAcquire)
	b.altPair(prog.WK(data), prog.RK(data))
	b.forked(publish, observe)
	b.forkJoinAlt(prog.ForkThread, prog.JoinThread)
}}

// tmplForkJoin: config handoff into a forked worker, result read after
// the join (App-1's SendLoop shape), over a randomly chosen task API.
var tmplForkJoin = template{tag: "ForkJoin", build: func(b *builder) {
	apis := []prog.ForkAPI{prog.ForkTaskRun, prog.ForkTaskNew, prog.ForkThreadPool}
	api := apis[b.rng.Intn(len(apis))]
	cfg := b.m("config")
	result := b.m("result")
	worker := b.m("Worker")
	o := b.slot()
	b.p.AddMethod(worker,
		prog.CpJ(b.dur(140, 260), 0.8),
		prog.Rd(cfg, o),
		prog.Cp(b.dur(160, 280)),
		prog.Wr(result, o, 1),
	)
	b.p.AddTest(b.cls+"Tests::HandoffJoin",
		prog.Wr(cfg, o, 3),
		prog.Cp(b.dur(30, 60)),
		prog.Go(api, worker, o, "t1"),
		prog.WaitT("t1"),
		prog.Rd(result, o),
	)
	b.sync(prog.EK(api.APIName()), trace.RoleRelease)
	b.sync(prog.BK(worker), trace.RoleAcquire)
	b.sync(prog.EK(worker), trace.RoleRelease)
	b.alt(prog.BK(prog.JoinTask.APIName()), trace.RoleAcquire)
	b.altPair(prog.WK(cfg), prog.RK(cfg))
	b.altPair(prog.WK(result), prog.RK(result))
}}

// tmplContinuation: Task.ContinueWith pipeline — stage two reads what
// stage one wrote (paper Figure 3.D, App-1's Serializer shape).
var tmplContinuation = template{tag: "Continuation", build: func(b *builder) {
	blob := b.m("blob")
	first := b.m("Produce_b0")
	second := b.m("Forward_b1")
	o := b.slot()
	b.p.AddMethod(first,
		prog.CpJ(b.dur(220, 340), 0.6),
		prog.Wr(blob, o, 1),
		prog.Cp(b.dur(80, 150)),
	)
	b.p.AddMethod(second,
		prog.Rd(blob, o),
		prog.Cp(b.dur(90, 170)),
	)
	b.p.AddTest(b.cls+"Tests::Pipeline",
		prog.Go(prog.ForkTaskRun, first, o, "t1"),
		prog.Then("t1", second, o, "t2"),
		prog.WaitT("t2"),
	)
	b.sync(prog.EK(first), trace.RoleRelease)
	b.sync(prog.BK(second), trace.RoleAcquire)
	b.alt(prog.BK(first), trace.RoleAcquire)
	b.alt(prog.EK(second), trace.RoleRelease)
	b.alt(prog.EK(prog.APIContinueWith), trace.RoleRelease)
	b.altPair(prog.WK(blob), prog.RK(blob))
	b.forkJoinAlt(prog.ForkTaskRun, prog.JoinTask)
}}

// tmplWaitAll: n-to-1 synchronization — two signalers publish then Set,
// the gatherer WaitAll's both handles before reading (the paper's
// WaitHandle.WaitAll example).
var tmplWaitAll = template{tag: "WaitAll", build: func(b *builder) {
	s1, s2 := b.res("semA"), b.res("semB")
	d1, d2 := b.m("partA"), b.m("partB")
	sigA := b.m("SignalA")
	sigB := b.m("SignalB")
	gather := b.m("Gather")
	o := b.slot()
	b.p.AddMethod(sigA,
		prog.CpJ(b.dur(200, 340), 0.8),
		prog.Wr(d1, o, 1),
		prog.Cp(b.dur(30, 60)),
		prog.Set(s1),
	)
	b.p.AddMethod(sigB,
		prog.CpJ(b.dur(240, 400), 0.8),
		prog.Wr(d2, o, 1),
		prog.Cp(b.dur(30, 60)),
		prog.Set(s2),
	)
	b.p.AddMethod(gather,
		prog.CpJ(b.dur(80, 160), 0.8),
		prog.All(s1, s2),
		prog.Cp(b.dur(30, 60)),
		prog.Rd(d1, o),
		prog.Rd(d2, o),
	)
	b.p.AddTest(b.cls+"Tests::GatherBoth",
		prog.Go(prog.ForkThread, gather, o, "h0"),
		prog.Go(prog.ForkThread, sigA, o, "h1"),
		prog.Go(prog.ForkThread, sigB, o, "h2"),
		prog.JoinT("h0"), prog.JoinT("h1"), prog.JoinT("h2"),
	)
	b.sync(prog.EK(prog.APISemSet), trace.RoleRelease)
	b.sync(prog.BK(prog.APIWaitAll), trace.RoleAcquire)
	b.altPair(prog.WK(d1), prog.RK(d1))
	b.altPair(prog.WK(d2), prog.RK(d2))
	b.forked(sigA, sigB, gather)
	b.forkJoinAlt(prog.ForkThread, prog.JoinThread)
}}

// tmplStaticInit: language-enforced static-constructor ordering — the
// known-hard pairing the paper buckets as "static-ctor" (App-2/3/8
// shape).
var tmplStaticInit = template{tag: "Cctor", build: func(b *builder) {
	ctor := b.m(".cctor")
	table := b.m("table")
	use1 := b.m("Calculate")
	use2 := b.m("Precompute")
	b.p.AddMethod(ctor,
		prog.Wr(table, "", 1),
		prog.Cp(b.dur(500, 700)),
	)
	b.p.AddMethod(use1,
		prog.CpJ(b.dur(260, 360), 0.95),
		prog.StaticInit(b.cls, ctor),
		prog.Rd(table, ""),
		prog.Cp(b.dur(110, 190)),
	)
	b.p.AddMethod(use2,
		prog.CpJ(b.dur(600, 780), 0.9),
		prog.StaticInit(b.cls, ctor),
		prog.Rd(table, ""),
		prog.Rep(2, prog.Cp(b.dur(70, 110)), prog.Rd(table, "")),
	)
	b.p.AddTest(b.cls+"Tests::FirstUse_Concurrent",
		prog.Go(prog.ForkThread, use1, "", "h1"),
		prog.Go(prog.ForkThread, use2, "", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	b.sync(prog.EK(ctor), trace.RoleRelease)
	b.forked(use1, use2)
	b.alt(prog.RK(table), trace.RoleAcquire)
	b.cat(prog.EK(ctor), prog.CatStaticCtor)
	b.cat(prog.BK(use1), prog.CatStaticCtor)
	b.cat(prog.BK(use2), prog.CatStaticCtor)
	b.cat(prog.RK(table), prog.CatStaticCtor)
	b.forkJoinAlt(prog.ForkThread, prog.JoinThread)
}}

// tmplHidden: a skip-listed notifier method signaling through an
// invisible event — the paper's instrumentation-error pattern (App-1's
// NotifySent shape). The notifier's End is a true release the Observer
// can never see; whatever the solver tags instead lands in the
// instr-errors bucket.
var tmplHidden = template{tag: "Hidden", build: func(b *builder) {
	sem := b.res("hidden-sem")
	outcome := b.m("outcome")
	state := b.m("state")
	notify := b.m("Notify")
	finish := b.m("Finish")
	consume := b.m("Consume")
	o := b.slot()
	b.p.AddMethod(notify,
		prog.Cp(b.dur(30, 55)),
		prog.HSignal(sem),
	)
	b.p.AddMethod(finish,
		prog.CpJ(b.dur(220, 320), 0.7),
		prog.Wr(outcome, o, 2),
		prog.Cp(b.dur(35, 60)),
		prog.Wr(state, o, 1),
		prog.Do(notify, o),
		prog.Cp(b.dur(50, 90)),
	)
	b.p.AddMethod(consume,
		prog.CpJ(b.dur(360, 480), 0.95),
		prog.HWait(sem),
		prog.Rd(state, o),
		prog.Cp(b.dur(25, 45)),
		prog.Rd(outcome, o),
	)
	b.p.AddTest(b.cls+"Tests::Notify_Hidden",
		prog.Go(prog.ForkThread, consume, o, "h1"),
		prog.Go(prog.ForkThread, finish, o, "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	b.hidden(notify)
	b.sync(prog.EK(notify), trace.RoleRelease)
	b.cat(prog.EK(notify), prog.CatInstrError)
	b.cat(prog.EK(finish), prog.CatInstrError)
	b.cat(prog.WK(outcome), prog.CatInstrError)
	b.cat(prog.RK(state), prog.CatInstrError)
	b.cat(prog.WK(state), prog.CatInstrError)
	b.forked(consume)
	// finish's End is categorized instr-error (not a Syncs alternate):
	// whatever the solver tags for the invisible signal must land in
	// that bucket, mirroring App-1. Its Begin still carries the fork
	// edge.
	b.alt(prog.BK(finish), trace.RoleAcquire)
	b.forkJoinAlt(prog.ForkThread, prog.JoinThread)
}}

// tmplFinalizer: dispose ordered by garbage collection beyond the Near
// window — the paper's unrefinable dispose bucket (App-1's
// DisposableSink shape).
var tmplFinalizer = template{tag: "Dispose", build: func(b *builder) {
	meta := b.m("resources")
	last := b.m("ReleaseLast")
	disp := b.m("Dispose")
	o := b.slot()
	b.p.AddMethod(last,
		prog.Rd(meta, o),
		prog.Wr(meta, o, 1),
		prog.Cp(b.dur(100, 170)),
	)
	b.p.AddMethod(disp,
		prog.Rd(meta, o),
		prog.Cp(b.dur(70, 130)),
	)
	b.p.AddTest(b.cls+"Tests::Dispose_LateGC",
		prog.Do(last, o),
		prog.GC(o, disp, 2_200_000), // beyond Near: the window never refines
		prog.Cp(b.dur(80, 140)),
	)
	b.sync(prog.EK(last), trace.RoleRelease)
	b.sync(prog.BK(disp), trace.RoleAcquire)
	b.cat(prog.EK(last), prog.CatDispose)
	b.cat(prog.BK(disp), prog.CatDispose)
	b.cat(prog.RK(meta), prog.CatDispose)
	b.cat(prog.WK(meta), prog.CatDispose)
}}

// tmplRace: a true data race, in one of two flavors — a non-volatile
// flag handoff ("should be marked volatile", App-1 Section 5.5) or a
// plain unsynchronized counter. Everything inferred on these keys is
// the scorer's data-racy bucket.
var tmplRace = template{tag: "Race", build: func(b *builder) {
	o := b.slot()
	if b.rng.Intn(2) == 0 {
		flag := b.m("settled") // deliberately NOT volatile
		data := b.m("rate")
		start := b.m("Start")
		observe := b.m("Observe")
		b.p.AddMethod(start,
			prog.CpJ(b.dur(280, 420), 0.7),
			prog.Wr(data, o, 5),
			prog.Cp(b.dur(35, 65)),
			prog.Wr(flag, o, 1),
		)
		b.p.AddMethod(observe,
			prog.Spin(flag, o, 1, b.dur(210, 290)),
			prog.Rd(data, o),
		)
		b.p.AddTest(b.cls+"Tests::RacyFlag",
			prog.Go(prog.ForkThread, observe, o, "h1"),
			prog.Go(prog.ForkThread, start, o, "h2"),
			prog.JoinT("h1"), prog.JoinT("h2"),
		)
		b.race(flag)
		b.forked(start, observe)
	} else {
		hits := b.m("hits")
		bump := b.m("Bump")
		b.p.AddMethod(bump,
			prog.CpJ(b.dur(160, 260), 0.6),
			prog.Wr(hits, o, 1),
		)
		b.p.AddTest(b.cls+"Tests::Unsynchronized",
			prog.Go(prog.ForkThread, bump, o, "h1"),
			prog.Go(prog.ForkThread, bump, o, "h2"),
			prog.JoinT("h1"), prog.JoinT("h2"),
		)
		b.race(hits)
		b.forked(bump)
	}
	b.forkJoinAlt(prog.ForkThread, prog.JoinThread)
}}
