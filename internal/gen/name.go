// Generated-app naming: the gen: namespace of the program-source registry.
//
// A generated application is addressed by a name of the form
//
//	gen:<seed>[,profile=<p>][,size=<n>]
//
// where <seed> is a non-negative decimal int64, <p> selects the idiom
// family (mixed, classic, go, racy) and <n> is the number of idiom
// instances composed into the program. Parse canonicalizes: omitted
// options take their defaults, and Spec.Name() renders the canonical
// form (defaults elided), so "gen:42,profile=mixed" and "gen:42" denote
// the same program.
package gen

import (
	"fmt"
	"strconv"
	"strings"
)

const (
	// Prefix starts every generated-application name.
	Prefix = "gen:"

	// Version is the generator version baked into every seed derivation.
	// Same seed + same version => byte-identical program and ground
	// truth; bump it whenever a template or the composition rule
	// changes, so stale cluster caches miss instead of serving programs
	// from an older generator.
	Version = "sherlock-gen-v1"

	// DefaultProfile and DefaultSize apply when the name carries no
	// profile=/size= option.
	DefaultProfile = ProfileMixed
	DefaultSize    = 4

	// MaxSize bounds size= so a single name cannot request an
	// arbitrarily large program.
	MaxSize = 16
)

// Idiom-family profiles.
const (
	ProfileMixed   = "mixed"   // every template, classic and Go-native
	ProfileClassic = "classic" // the paper's C#-idiom templates only
	ProfileGo      = "go"      // Go-native: channel, WaitGroup, Once, RWMutex
	ProfileRacy    = "racy"    // race-heavy mix for detector evaluation
)

// Profiles lists the valid profile= values.
var Profiles = []string{ProfileMixed, ProfileClassic, ProfileGo, ProfileRacy}

// Spec is a parsed generated-app name.
type Spec struct {
	Seed    int64
	Profile string
	Size    int
}

// IsName reports whether name is in the generator's namespace.
func IsName(name string) bool { return strings.HasPrefix(name, Prefix) }

// Parse decodes a gen: name into a Spec, applying defaults for omitted
// options and rejecting malformed or out-of-range values.
func Parse(name string) (Spec, error) {
	if !IsName(name) {
		return Spec{}, fmt.Errorf("gen: %q is not a generated-app name (want gen:<seed>[,profile=<p>][,size=<n>])", name)
	}
	parts := strings.Split(name[len(Prefix):], ",")
	seed, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil || seed < 0 {
		return Spec{}, fmt.Errorf("gen: bad seed in %q (want a non-negative decimal integer)", name)
	}
	sp := Spec{Seed: seed, Profile: DefaultProfile, Size: DefaultSize}
	for _, opt := range parts[1:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return Spec{}, fmt.Errorf("gen: bad option %q in %q (want key=value)", opt, name)
		}
		switch k {
		case "profile":
			if !validProfile(v) {
				return Spec{}, fmt.Errorf("gen: unknown profile %q in %q (want one of %s)", v, name, strings.Join(Profiles, ", "))
			}
			sp.Profile = v
		case "size":
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 || n > MaxSize {
				return Spec{}, fmt.Errorf("gen: bad size %q in %q (want 1..%d)", v, name, MaxSize)
			}
			sp.Size = n
		default:
			return Spec{}, fmt.Errorf("gen: unknown option %q in %q (want profile= or size=)", k, name)
		}
	}
	return sp, nil
}

// Name renders the canonical name: defaults elided, options in fixed
// order, so equal Specs render equal strings.
func (s Spec) Name() string {
	var b strings.Builder
	b.WriteString(Prefix)
	b.WriteString(strconv.FormatInt(s.Seed, 10))
	if s.Profile != DefaultProfile {
		b.WriteString(",profile=")
		b.WriteString(s.Profile)
	}
	if s.Size != DefaultSize {
		b.WriteString(",size=")
		b.WriteString(strconv.Itoa(s.Size))
	}
	return b.String()
}

func validProfile(p string) bool {
	for _, q := range Profiles {
		if p == q {
			return true
		}
	}
	return false
}
