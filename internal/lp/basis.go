// Cross-solve warm starting. A Basis carries a solve's optimal basis —
// which column is basic in each row, the basis inverse, and the basic
// values — keyed by row/column names. Because the SherLock encodings grow
// incrementally (each Perturber round mostly appends windows, i.e. new
// rows and columns, to the previous round's program), the next problem's
// basis matrix relative to the carried basis is block-triangular,
//
//	B_new = ⎡B_old  0⎤        (new rows start on their own
//	        ⎣  C    D⎦         singleton columns, so D is diagonal)
//
// and its inverse extends the carried one in O(nnz·m) arithmetic — no
// factorization, no pivot replay. Rows retired since the snapshot (racy
// windows dropped by the encoder) are excised the same way in reverse:
// when a vanished row's basic column was local to that row — true for the
// slack, surplus, ε, and artificial columns such rows carry — deleting
// its row and column from the inverse leaves exactly the inverse of the
// surviving block.
//
// Safety does not rest on those structural assumptions: the snapshot
// stores each basic column's sparse entries, and applyWarm accepts the
// carried inverse only after checking — entry by exact entry — that every
// carried basic column and right-hand side is unchanged on the surviving
// rows. Renamed rows, coefficient changes, or inexcisable retirements all
// fail the check and fall back to a cold start.
package lp

// Basis is the warm-start state of a previous Solve, opaque to callers. It
// is immutable once returned and safe to share across goroutines; applying
// it to an unrelated problem is harmless (the solve falls back to a cold
// start).
type Basis struct {
	rows []string    // row names, in the solved problem's row order
	bcol []string    // basic column name per row
	rhs  []float64   // right-hand side per row, post-normalization
	loc  []bool      // basic column is a singleton local to its own row
	brow [][]int32   // basic column's row positions, per row
	bval [][]float64 // basic column's coefficients, matching brow
	binv [][]float64 // basis inverse at the optimum
	xB   []float64   // basic values at the optimum
}

// Size returns the number of rows the basis covers.
func (b *Basis) Size() int {
	if b == nil {
		return 0
	}
	return len(b.rows)
}

// applyWarm installs warm as this problem's starting basis. Carried rows
// are matched by name; matched rows must have their recorded basic
// column, coefficients, and right-hand side unchanged, vanished rows must
// be excisable (row-local basic column), and rows not covered — newly
// appended ones — get a singleton column chosen by the sign of their
// residual, extending the carried inverse block-triangularly.
//
// Reports whether the warm basis was installed; on false the receiver is
// left in an unusable state and the caller must rebuild from the crash
// basis. The receiver needs only sf and tmp populated.
func (r *revised) applyWarm(warm *Basis) bool {
	sf := r.sf
	m := sf.m
	mw := len(warm.rows)
	if mw == 0 {
		return false
	}

	// Match carried rows by name; vanished rows must be excisable.
	rowIdx := make(map[string]int, m)
	for i, name := range sf.rowName {
		if _, dup := rowIdx[name]; !dup {
			rowIdx[name] = i
		}
	}
	pos := make([]int, mw) // carried row position → row index here, -1 excised
	carried := make([]bool, m)
	keep := make([]int, 0, mw)
	for i0, name := range warm.rows {
		i, ok := rowIdx[name]
		if !ok {
			if !warm.loc[i0] {
				return false // retired row's basic column reaches other rows
			}
			pos[i0] = -1
			continue
		}
		if carried[i] {
			return false
		}
		carried[i] = true
		pos[i0] = i
		keep = append(keep, i0)
	}
	if len(keep) == 0 {
		return false
	}

	// Re-resolve the carried basic columns by name.
	colIdx := make(map[string]int, sf.total)
	for j, name := range sf.colName {
		if _, dup := colIdx[name]; !dup {
			colIdx[name] = j
		}
	}
	basis := make([]int, m)
	inBasis := make([]bool, sf.total)
	for i := range basis {
		basis[i] = -1
	}
	for _, i0 := range keep {
		j, ok := colIdx[warm.bcol[i0]]
		if !ok || inBasis[j] {
			return false
		}
		basis[pos[i0]] = j
		inBasis[j] = true
	}

	// Verify the carried inverse still describes this problem: every kept
	// basic column must have exactly its recorded entries on the carried
	// rows (new rows may add entries — that is the C block), and every
	// kept row its recorded right-hand side. Coefficients are recomputed
	// by the same code on the same frozen window data, so the comparison
	// is exact, not tolerance-based.
	t := r.tmp
	for i := range t {
		t[i] = 0
	}
	for _, i0 := range keep {
		i := pos[i0]
		if sf.rhs[i] != warm.rhs[i0] {
			return false
		}
		c := &sf.cols[basis[i]]
		cnt := 0
		for k, ri := range c.rows {
			if carried[ri] {
				t[ri] = c.vals[k]
				cnt++
			}
		}
		ok, matched := true, 0
		for k, r0 := range warm.brow[i0] {
			ii := pos[r0]
			if ii < 0 {
				continue // entry lived in an excised row
			}
			if t[ii] != warm.bval[i0][k] {
				ok = false
				break
			}
			matched++
		}
		for _, ri := range c.rows {
			t[ri] = 0
		}
		if !ok || matched != cnt {
			return false
		}
	}

	// Place the carried inverse block and basic values, skipping excised
	// rows (their basic columns were row-local, so the surviving block of
	// the inverse is exactly the surviving block's inverse).
	binv := make([][]float64, m)
	for i := range binv {
		binv[i] = make([]float64, m)
	}
	xB := make([]float64, m)
	for _, i0 := range keep {
		src := warm.binv[i0]
		dst := binv[pos[i0]]
		for _, k0 := range keep {
			dst[pos[k0]] = src[k0]
		}
		xB[pos[i0]] = warm.xB[i0]
	}

	// Accumulate the C block: entries of carried basic columns in the new
	// rows. Each contributes −a·(carried inverse row) to the new row's
	// inverse row and −a·x to its residual. Iteration order is fixed
	// (carried row order, then column order) so the floating-point sums
	// are deterministic.
	rho := make([]float64, m)
	for i := 0; i < m; i++ {
		if !carried[i] {
			rho[i] = sf.rhs[i]
		}
	}
	for _, i0 := range keep {
		c := &sf.cols[basis[pos[i0]]]
		src := binv[pos[i0]]
		x := xB[pos[i0]]
		for k, ri := range c.rows {
			i := int(ri)
			if carried[i] {
				continue
			}
			a := c.vals[k]
			rho[i] -= a * x
			dst := binv[i]
			for q := 0; q < m; q++ {
				dst[q] -= a * src[q]
			}
		}
	}

	// Give every new row a singleton basic column matching its residual's
	// sign, completing the block inverse.
	for i := 0; i < m; i++ {
		if carried[i] {
			continue
		}
		col, d := -1, 0.0
		if rho[i] >= -feasTol {
			switch {
			case sf.slackCol[i] >= 0 && sf.slackSign[i] > 0:
				col, d = sf.slackCol[i], 1
			case sf.posSingleton[i] >= 0:
				col, d = sf.posSingleton[i], sf.posSingletonVal[i]
			case sf.artCol[i] >= 0:
				col, d = sf.artCol[i], 1
			}
		} else if sf.slackCol[i] >= 0 && sf.slackSign[i] < 0 {
			col, d = sf.slackCol[i], -1
		}
		if col < 0 || inBasis[col] {
			return false
		}
		c := &sf.cols[col]
		if len(c.rows) != 1 || int(c.rows[0]) != i {
			return false // not a row-local singleton: D would not be diagonal
		}
		basis[i] = col
		inBasis[col] = true
		inv := 1 / d
		row := binv[i]
		for q := 0; q < m; q++ {
			row[q] *= inv
		}
		row[i] += inv
		v := rho[i] * inv
		if v < 0 && v > -eps {
			v = 0
		}
		xB[i] = v
	}

	for i := 0; i < m; i++ {
		if xB[i] < -feasTol {
			return false
		}
	}
	r.basis = basis
	r.inBasis = inBasis
	r.binv = binv
	r.xB = xB
	return true
}
