// Cross-solve warm starting. A Basis carries a solve's optimal basis as
// (row name, basic column name) pairs — nothing numerical. Because the
// SherLock encodings grow incrementally (each Perturber round mostly
// appends windows, i.e. new rows and columns, to the previous round's
// program), most of a carried basis maps straight onto the next problem:
// applyWarm re-resolves the names against the new standard form, gives
// every uncovered row a crash column, and refactorizes the result from the
// *current* problem data (lu.go).
//
// Refactorizing — rather than carrying an inverse — is what makes the warm
// start robust: coefficient changes, right-hand-side changes, renamed or
// retired rows all resolve to "whatever the names still mean here", and
// the factorization is exact for the problem actually being solved. A
// mapped basis that is numerically singular, or that turns out both primal
// and dual infeasible, falls back to a cold start; one that is merely
// primal infeasible (the appended rows cut the carried vertex off) is
// repaired by dual simplex pivots (dual.go) — the carried basis is dual
// feasible because it was optimal.
package lp

// Basis is the warm-start state of a previous Solve, opaque to callers. It
// is immutable once returned and safe to share across goroutines; applying
// it to an unrelated problem is harmless (the solve falls back to a cold
// start).
type Basis struct {
	rows []string // row names, in the solved problem's row order
	bcol []string // basic column name per row position
}

// Size returns the number of rows the basis covers.
func (b *Basis) Size() int {
	if b == nil {
		return 0
	}
	return len(b.rows)
}

// merge appends another basis (a separately solved component) onto b.
// Row and column names are globally unique across components, so
// concatenation order only affects slot numbering, which applyWarm never
// relies on.
func (b *Basis) merge(o *Basis) {
	if o == nil {
		return
	}
	b.rows = append(b.rows, o.rows...)
	b.bcol = append(b.bcol, o.bcol...)
}

// index builds the row-name → basic-column-name lookup applyWarm consumes.
// Built once per solve and shared read-only across the per-component
// solves (earlier revisions re-scanned the whole carried basis inside
// every component, which went quadratic in the component count).
// Duplicate row names — impossible in well-formed encodings — resolve
// first-wins, matching the old scan order.
func (b *Basis) index() map[string]string {
	if b.Size() == 0 {
		return nil
	}
	idx := make(map[string]string, len(b.rows))
	for i, name := range b.rows {
		if _, dup := idx[name]; !dup {
			idx[name] = b.bcol[i]
		}
	}
	return idx
}

// applyWarm installs a carried basis — pre-indexed by Basis.index — as
// this problem's starting basis. Rows are matched by name and re-enter on
// their recorded basic column when that column still exists and is
// unclaimed; rows not covered — newly appended ones — get a crash column
// (slack, positive singleton, surplus, or artificial, first available).
// The assembled basis is then refactorized against the current problem
// data.
//
// Reports whether the warm basis was installed; on false the caller must
// rebuild from the crash basis. The receiver must come from newBare.
func (r *revised) applyWarm(warmIdx map[string]string) bool {
	sf := r.sf
	m := sf.m
	if len(warmIdx) == 0 || m == 0 {
		return false
	}
	colIdx := make(map[string]int, sf.total)
	for j, name := range sf.colName {
		if _, dup := colIdx[name]; !dup {
			colIdx[name] = j
		}
	}

	basis := make([]int, m)
	for i := range basis {
		basis[i] = -1
	}
	inBasis := make([]bool, sf.total)
	mapped := 0
	for i, name := range sf.rowName {
		cn, ok := warmIdx[name]
		if !ok {
			continue // row not covered by the snapshot (newly appended)
		}
		j, ok := colIdx[cn]
		if !ok || inBasis[j] {
			continue // basic column vanished, or claimed by an earlier row
		}
		basis[i] = j
		inBasis[j] = true
		mapped++
	}
	if mapped == 0 {
		return false
	}

	// Complete the basis on the uncovered rows. Preference order: LE slack,
	// positive structural singleton (the ε variables — lets appended
	// Mostly-Protected rows start on their natural column), GE surplus
	// (possibly at a negative value the dual simplex will repair), then the
	// artificial. Everything here is a deterministic function of the
	// problem and the carried names.
	for i := 0; i < m; i++ {
		if basis[i] >= 0 {
			continue
		}
		col := -1
		if c := sf.slackCol[i]; c >= 0 && sf.slackSign[i] > 0 && !inBasis[c] {
			col = c
		}
		if col < 0 {
			if c := sf.posSingleton[i]; c >= 0 && !inBasis[c] {
				col = c
			}
		}
		if col < 0 {
			if c := sf.slackCol[i]; c >= 0 && !inBasis[c] {
				col = c
			}
		}
		if col < 0 {
			if c := sf.artCol[i]; c >= 0 && !inBasis[c] {
				col = c
			}
		}
		if col < 0 {
			return false
		}
		basis[i] = col
		inBasis[col] = true
	}

	lu, ok := factorizeBasis(sf.cols, basis, m)
	if !ok {
		return false // singular against the current data: cold start
	}
	r.basis = basis
	r.inBasis = inBasis
	r.lu = lu
	r.etas, r.etaNNZ = nil, 0
	r.computeXB()
	return true
}
