// Connected-component decomposition. The per-app LP is a union of
// per-window subproblems that only couple through shared sync-candidate
// keys; keys that never co-occur in a window put their rows and columns in
// independent blocks. solveDecomposed splits the (presolved) problem along
// those blocks and solves them separately — concurrently when
// Problem.Parallel allows — then merges the results deterministically.
//
// Determinism at any parallelism follows the same policy as the core
// engine's worker pool (PR 1): components are discovered in ascending
// variable order, each is solved independently with no shared mutable
// state, results land in a slot indexed by component, and the merge walks
// the slots in component order. The outcome is bit-identical whether the
// components are solved by 1 worker or 16.
package lp

import (
	"sync"
	"sync/atomic"
)

// component is one independent block: variable and constraint indices into
// the parent problem, both ascending.
type component struct {
	vars []int
	rows []int
}

// splitComponents partitions p's variables and constraints into connected
// components via union-find over shared variables. Variables with no
// constraints form singleton components (their solve is trivial).
func splitComponents(p *Problem) []component {
	n := len(p.names)
	parent := make([]int, n)
	for v := range parent {
		parent[v] = v
	}
	var find func(int) int
	find = func(v int) int {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra // smaller index wins: stable component roots
		}
	}
	for ci := range p.constraints {
		idx := p.constraints[ci].idx
		for k := 1; k < len(idx); k++ {
			union(idx[0], idx[k])
		}
	}
	// Number components in ascending order of their smallest variable.
	compOf := make([]int, n)
	var comps []component
	seen := make(map[int]int, 8)
	for v := 0; v < n; v++ {
		root := find(v)
		ci, ok := seen[root]
		if !ok {
			ci = len(comps)
			seen[root] = ci
			comps = append(comps, component{})
		}
		compOf[v] = ci
		comps[ci].vars = append(comps[ci].vars, v)
	}
	for ri := range p.constraints {
		c := &p.constraints[ri]
		if len(c.idx) == 0 {
			continue // empty rows cannot appear post-presolve; defensive
		}
		ci := compOf[c.idx[0]]
		comps[ci].rows = append(comps[ci].rows, ri)
	}
	return comps
}

// subProblem extracts one component as a standalone Problem. Names, costs
// and bounds carry over verbatim, so the component's standard form is the
// row/column submatrix of the parent's and basis names remain globally
// valid.
func subProblem(p *Problem, comp *component) *Problem {
	sub := &Problem{
		MaxIters:        p.MaxIters,
		DisablePresolve: true, // already presolved at the parent level
	}
	local := make(map[int]int, len(comp.vars))
	for _, v := range comp.vars {
		local[v] = len(sub.names)
		sub.names = append(sub.names, p.names[v])
		sub.cost = append(sub.cost, p.cost[v])
		sub.upper = append(sub.upper, p.upper[v])
	}
	for _, ri := range comp.rows {
		c := &p.constraints[ri]
		rc := constraint{name: c.name, sense: c.sense, rhs: c.rhs, coeffs: c.coeffs}
		rc.idx = make([]int, len(c.idx))
		for k, v := range c.idx {
			rc.idx[k] = local[v]
		}
		sub.constraints = append(sub.constraints, rc)
	}
	return sub
}

// solveDecomposed splits p into components and solves them, fanning the
// solves across up to p.Parallel workers. The full warm basis is offered
// to every component — row/column names are globally unique, so each
// component picks up exactly its own slice of the carried basis.
//
// The merged solution sums pivot counts, ORs warm-start engagement, and
// concatenates the per-component bases. A non-optimal component makes the
// whole solve non-optimal, with Infeasible taking precedence over
// Unbounded over IterLimit. Note MaxIters bounds pivots per component, not
// globally — the budget is a runaway guard, not a fairness mechanism.
func solveDecomposed(p *Problem, warm *Basis) *Solution {
	warmIdx := warm.index() // one shared read-only index for every component
	comps := splitComponents(p)
	if len(comps) <= 1 {
		sol := solveComponent(p, buildStandardForm(p), warmIdx)
		sol.Components = 1
		return sol
	}
	results := make([]*Solution, len(comps))
	solve := func(i int) {
		sub := subProblem(p, &comps[i])
		results[i] = solveComponent(sub, buildStandardForm(sub), warmIdx)
	}
	workers := p.Parallel
	if workers > len(comps) {
		workers = len(comps)
	}
	if workers <= 1 {
		for i := range comps {
			solve(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(comps) {
						return
					}
					solve(i)
				}
			}()
		}
		wg.Wait()
	}

	merged := &Solution{
		Status: Optimal,
		X:      make([]float64, len(p.names)),
		Basis:  &Basis{},
		Components: len(comps),
	}
	worst := Optimal
	for ci, res := range results {
		merged.Iters += res.Iters
		merged.DualIters += res.DualIters
		if res.WarmStarted {
			merged.WarmStarted = true
		}
		if res.Status != Optimal {
			if statusRank(res.Status) > statusRank(worst) {
				worst = res.Status
			}
			continue
		}
		for li, v := range comps[ci].vars {
			merged.X[v] = res.X[li]
		}
		merged.Basis.merge(res.Basis)
		merged.Objective += res.Objective
	}
	if worst != Optimal {
		return &Solution{
			Status: worst, Iters: merged.Iters, DualIters: merged.DualIters,
			WarmStarted: merged.WarmStarted, Components: len(comps),
		}
	}
	return merged
}

// statusRank orders non-optimal statuses by precedence for the merge.
func statusRank(s Status) int {
	switch s {
	case Infeasible:
		return 3
	case Unbounded:
		return 2
	case IterLimit:
		return 1
	}
	return 0
}
