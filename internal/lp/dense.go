// The original dense two-phase tableau simplex, kept as the reference
// backend: the sparse revised simplex (sparse.go) must agree with it on
// objective values and thresholded vertex components, which the
// dense-vs-sparse equivalence tests enforce.
package lp

import "math"

// SolveDense runs the dense two-phase tableau simplex and returns the
// optimal vertex, or a Solution whose Status reports why there is no finite
// optimum (accompanied by a wrapped ErrNotOptimal / ErrIterationLimit).
// The returned Solution carries no Basis; use Solve for warm-startable
// solves.
func (p *Problem) SolveDense() (*Solution, error) {
	t := newTableau(p)
	status, iters := t.phase1()
	if status != Optimal {
		if status == IterLimit {
			return &Solution{Status: status, Iters: iters}, statusErr(status)
		}
		return &Solution{Status: Infeasible, Iters: iters}, statusErr(Infeasible)
	}
	status, it2 := t.phase2()
	iters += it2
	if status != Optimal {
		return &Solution{Status: status, Iters: iters}, statusErr(status)
	}
	x := t.extract()
	obj := 0.0
	for v, c := range p.cost {
		obj += c * x[v]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Iters: iters}, nil
}

// tableau is the dense simplex working state. Column layout:
//
//	[0, n)            structural variables
//	[n, n+nSlack)     slack/surplus variables
//	[n+nSlack, total) artificial variables (phase 1 only)
//
// rows[i][total] holds the RHS. basis[i] is the column basic in row i.
type tableau struct {
	p      *Problem
	n      int // structural variables
	nSlack int
	nArt   int
	total  int
	rows   [][]float64
	basis  []int
	obj    []float64 // reduced-cost row, length total+1 (last = -objective value)
	artAt  int       // first artificial column
}

func newTableau(p *Problem) *tableau {
	n := len(p.names)

	// Materialize upper bounds as explicit ≤ rows. The inference encodings
	// only bound probability variables, so this stays small.
	type row struct {
		coeffs []float64 // dense over structural vars
		sense  Sense
		rhs    float64
	}
	var rows []row
	for _, c := range p.constraints {
		r := row{coeffs: make([]float64, n), sense: c.sense, rhs: c.rhs}
		for k, v := range c.idx {
			r.coeffs[v] += c.coeffs[k]
		}
		rows = append(rows, r)
	}
	for v, u := range p.upper {
		if u < infUB {
			r := row{coeffs: make([]float64, n), sense: LE, rhs: u}
			r.coeffs[v] = 1
			rows = append(rows, r)
		}
	}

	// Normalize to rhs ≥ 0.
	for i := range rows {
		if rows[i].rhs < 0 {
			for j := range rows[i].coeffs {
				rows[i].coeffs[j] = -rows[i].coeffs[j]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].sense {
			case LE:
				rows[i].sense = GE
			case GE:
				rows[i].sense = LE
			}
		}
	}

	// Count slack and artificial columns.
	nSlack, nArt := 0, 0
	for _, r := range rows {
		switch r.sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}

	total := n + nSlack + nArt
	t := &tableau{
		p:      p,
		n:      n,
		nSlack: nSlack,
		nArt:   nArt,
		total:  total,
		artAt:  n + nSlack,
		basis:  make([]int, len(rows)),
	}
	t.rows = make([][]float64, len(rows))
	slack, art := n, t.artAt
	for i, r := range rows {
		tr := make([]float64, total+1)
		copy(tr, r.coeffs)
		tr[total] = r.rhs
		switch r.sense {
		case LE:
			tr[slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			tr[slack] = -1
			slack++
			tr[art] = 1
			t.basis[i] = art
			art++
		case EQ:
			tr[art] = 1
			t.basis[i] = art
			art++
		}
		t.rows[i] = tr
	}
	return t
}

// phase1 minimizes the sum of artificial variables to find a basic feasible
// solution. Returns Optimal when one exists.
func (t *tableau) phase1() (Status, int) {
	if t.nArt == 0 {
		return Optimal, 0
	}
	// Objective: minimize Σ artificials. Price out basic artificials.
	t.obj = make([]float64, t.total+1)
	for j := t.artAt; j < t.total; j++ {
		t.obj[j] = 1
	}
	for i, b := range t.basis {
		if b >= t.artAt {
			subRow(t.obj, t.rows[i], 1)
		}
	}
	status, iters := t.iterate(t.artAt) // artificials may leave, not enter
	if status != Optimal {
		return status, iters
	}
	// Feasible iff phase-1 objective is ~0.
	if -t.obj[t.total] > 1e-7 {
		return Infeasible, iters
	}
	t.purgeArtificials()
	return Optimal, iters
}

// purgeArtificials pivots any artificial still basic (at value 0) out of the
// basis, or marks its row redundant by zeroing it.
func (t *tableau) purgeArtificials() {
	for i, b := range t.basis {
		if b < t.artAt {
			continue
		}
		pivoted := false
		for j := 0; j < t.artAt; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: every structural/slack coefficient is 0.
			for j := range t.rows[i] {
				t.rows[i][j] = 0
			}
		}
	}
	// Artificial columns must never re-enter: zero them everywhere.
	for i := range t.rows {
		for j := t.artAt; j < t.total; j++ {
			t.rows[i][j] = 0
		}
	}
}

// phase2 minimizes the real objective from the feasible basis.
func (t *tableau) phase2() (Status, int) {
	t.obj = make([]float64, t.total+1)
	for v, c := range t.p.cost {
		t.obj[v] = c
	}
	for i, b := range t.basis {
		if b < t.total && math.Abs(t.obj[b]) > 0 {
			subRow(t.obj, t.rows[i], t.obj[b])
		}
	}
	return t.iterate(t.artAt)
}

// iterate runs simplex pivots until optimality or unboundedness. Columns at
// or beyond colLimit are excluded from entering the basis (artificials).
// Dantzig pricing with a switch to Bland's rule after a run of degenerate
// pivots guards against cycling.
func (t *tableau) iterate(colLimit int) (Status, int) {
	iters := 0
	degenerate := 0
	bland := false
	for ; iters < t.p.maxIters(); iters++ {
		// Entering column.
		enter := -1
		if bland {
			for j := 0; j < colLimit; j++ {
				if t.obj[j] < -eps {
					enter = j
					break
				}
			}
		} else {
			best := -eps
			for j := 0; j < colLimit; j++ {
				if t.obj[j] < best {
					best = t.obj[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal, iters
		}
		// Ratio test.
		leave := -1
		var minRatio float64
		for i, row := range t.rows {
			a := row[enter]
			if a > eps {
				ratio := row[t.total] / a
				if leave < 0 || ratio < minRatio-eps ||
					(math.Abs(ratio-minRatio) <= eps && t.basis[i] < t.basis[leave]) {
					leave = i
					minRatio = ratio
				}
			}
		}
		if leave < 0 {
			return Unbounded, iters
		}
		if minRatio < eps {
			degenerate++
			if degenerate > 2*len(t.rows)+20 {
				bland = true
			}
		} else {
			degenerate = 0
			bland = false
		}
		t.pivot(leave, enter)
	}
	return IterLimit, iters
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	prow := t.rows[leave]
	pv := prow[enter]
	inv := 1 / pv
	for j := range prow {
		prow[j] *= inv
	}
	prow[enter] = 1 // fight rounding
	for i, row := range t.rows {
		if i == leave {
			continue
		}
		if f := row[enter]; math.Abs(f) > eps {
			subRow(row, prow, f)
			row[enter] = 0
		} else {
			row[enter] = 0
		}
	}
	if f := t.obj[enter]; math.Abs(f) > 0 {
		subRow(t.obj, prow, f)
		t.obj[enter] = 0
	}
	t.basis[leave] = enter
}

// extract reads structural variable values out of the basis. The +0
// canonicalizes IEEE negative zero, matching the sparse extractor.
func (t *tableau) extract() []float64 {
	x := make([]float64, t.n)
	for i, b := range t.basis {
		if b < t.n {
			v := t.rows[i][t.total]
			if v < 0 && v > -eps {
				v = 0
			}
			x[b] = v + 0
		}
	}
	return x
}

// subRow computes dst -= f*src element-wise.
func subRow(dst, src []float64, f float64) {
	for j := range dst {
		dst[j] -= f * src[j]
	}
}
