// Dual simplex. The primal simplex walks primal-feasible bases toward
// dual feasibility; the dual simplex does the opposite — and "dual
// feasible but not primal feasible" is exactly the state a carried optimal
// basis is in after the encoder appends or excises rows between rounds:
// the old reduced costs remain nonnegative, but the new rows cut the old
// vertex off. Re-optimizing from there takes a handful of dual pivots —
// one per violated row, typically — instead of a primal restart through
// phase 1.
//
// One iteration: pick the most negative basic value (the most violated
// position), BTRAN its row of B⁻¹A, and run the dual ratio test
// min d_j/(−α_j) over nonbasic real columns with α_j < 0. The entering
// column keeps every reduced cost nonnegative; if no candidate exists the
// dual is unbounded, which certifies primal infeasibility. Ties break
// toward the smallest column index, degeneracy flips leave-selection to
// Bland's rule after the same 2m+20 run the primal uses, and pivots share
// the primal pivot path (eta update, reduced-cost maintenance,
// refactorization triggers).
package lp

import (
	"fmt"
	"math"
	"slices"
)

// dualFeasible reports whether the maintained reduced costs are all
// nonnegative on the real (non-artificial) columns — the precondition for
// dual simplex pivots.
func (r *revised) dualFeasible() bool {
	for j := 0; j < r.sf.artAt; j++ {
		if !r.inBasis[j] && r.d[j] < -eps {
			return false
		}
	}
	return true
}

// dualIterate runs dual simplex pivots from a dual-feasible basis until
// primal feasibility (Optimal — the caller finishes with primal cleanup
// pivots), proven primal infeasibility, the shared pivot budget, or a
// numerical dead end (fallbackStatus → cold restart). Requires r.d
// maintained for the phase-2 costs.
func (r *revised) dualIterate() Status {
	sf := r.sf
	m := sf.m
	degenerate, bland := 0, false
	budget := r.p.maxIters()
	for {
		leave := -1
		if bland {
			for i := 0; i < m; i++ {
				if r.xB[i] < -feasTol {
					leave = i
					break
				}
			}
		} else {
			worst := -feasTol
			for i := 0; i < m; i++ {
				if v := r.xB[i]; v < worst ||
					(v == worst && leave >= 0 && r.basis[i] < r.basis[leave]) {
					worst, leave = v, i
				}
			}
		}
		if leave < 0 {
			return Optimal // primal feasible; dual work done
		}
		if r.iters >= budget {
			return IterLimit
		}
		acols := r.pivotRow(leave)
		// The eps-banded tie comparison below is order-sensitive; a sorted
		// candidate list makes the scan a deterministic function of the
		// problem, like every other selection rule in this package.
		slices.Sort(acols)
		enter := -1
		var best float64
		for _, jj := range acols {
			j := int(jj)
			if j >= sf.artAt || r.inBasis[j] {
				continue
			}
			a := r.alpha[j]
			if a >= -eps {
				continue
			}
			ratio := r.d[j] / -a
			if enter < 0 || ratio < best-eps {
				enter, best = j, ratio
			}
		}
		if enter < 0 {
			r.clearAlpha(acols)
			return Infeasible // dual unbounded ⇒ primal infeasible
		}
		if best < eps {
			degenerate++
			if degenerate > 2*m+20 {
				bland = true
			}
		} else {
			degenerate, bland = 0, false
		}
		r.ftranCol(enter, r.t)
		if math.Abs(r.t[leave]) <= eps {
			// FTRAN disagrees with the BTRAN row about the pivot magnitude:
			// the eta file has drifted. Refactorize and retry the iteration
			// on clean numbers; if that is not available, restart cold.
			r.clearAlpha(acols)
			if r.noRefactor || len(r.etas) == 0 || !r.refactor() {
				return fallbackStatus
			}
			continue
		}
		r.dualIters++
		r.pivot(leave, enter, r.t, acols)
	}
}

// ReoptimizeDual re-optimizes this problem from the optimal basis of a
// previous, related solve — the entry point for cross-round row additions
// and excisions. The carried basis is mapped by row/column names and
// refactorized; if the mapped vertex is primal infeasible (the usual case
// after appending rows) it is repaired by dual simplex pivots rather than
// a primal restart, and Solution.DualIters reports how many were spent.
//
// Unlike SolveWarm — which this shares all machinery with — ReoptimizeDual
// insists on a basis: passing nil (or an empty basis) is an error rather
// than a silent cold start, so callers re-optimizing in a loop notice when
// they lose their warm-start chain. The result is still exact: if the
// basis cannot be applied the solve falls back to the cold two-phase path
// and reports WarmStarted=false.
func (p *Problem) ReoptimizeDual(warm *Basis) (*Solution, error) {
	if warm.Size() == 0 {
		return nil, fmt.Errorf("lp: ReoptimizeDual requires the basis of a previous solve")
	}
	return p.SolveWarm(warm)
}
