// Package lp implements a small linear-programming solver for problems of
// the form
//
//	minimize    cᵀx
//	subject to  Aᵢ x {≤,=,≥} bᵢ      for every constraint i
//	            0 ≤ xⱼ ≤ uⱼ          for every variable j
//
// It stands in for the external solver (Flipy/CBC) used by the SherLock
// paper. Two solver backends share one problem representation:
//
//   - Solve / SolveWarm / ReoptimizeDual — a sparse revised simplex over an
//     LU-factorized basis (lu.go): constraint columns are stored sparsely
//     (the synchronization-inference encodings are >95% zeros), the basis
//     factors are updated in place by sparse eta updates and refactorized
//     periodically, a presolve pass (presolve.go) shrinks the matrix before
//     any pivoting, independent connected components solve separately and
//     concurrently (decompose.go), and an optimal Basis can be carried into
//     the next, slightly different problem to re-optimize in a handful of
//     dual pivots (dual.go — cross-round warm starting in the Perturber
//     feedback loop).
//   - SolveDense — the original dense two-phase tableau, kept as the
//     reference implementation for equivalence testing (no presolve, no
//     decomposition: it solves the problem as given).
//
// Both backends are deterministic: identical problems yield identical
// vertex solutions at any Parallel setting, which keeps the whole
// inference pipeline reproducible.
package lp

import (
	"errors"
	"fmt"
	"math"
	"slices"

	"sherlock/internal/obs"
)

// Sense is the relational operator of a constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // Σ aⱼxⱼ ≤ b
	GE              // Σ aⱼxⱼ ≥ b
	EQ              // Σ aⱼxⱼ = b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	IterLimit // the pivot budget ran out before optimality was proven
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration limit"
	}
	return "unknown"
}

// ErrNotOptimal is wrapped by Solve when the problem has no finite optimum.
var ErrNotOptimal = errors.New("lp: no finite optimum")

// ErrIterationLimit is wrapped by Solve when the simplex pivot budget
// (Problem.MaxIters, default 200000) is exhausted before optimality is
// proven. It additionally wraps ErrNotOptimal, so existing errors.Is
// checks keep matching; callers that care specifically about the budget
// match this sentinel.
var ErrIterationLimit = fmt.Errorf("%w: simplex iteration limit reached", ErrNotOptimal)

const (
	eps            = 1e-9 // numerical tolerance for pivoting and feasibility
	infUB          = math.MaxFloat64
	defaultMaxIter = 200000
)

type constraint struct {
	name   string
	idx    []int
	coeffs []float64
	sense  Sense
	rhs    float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create instances with NewProblem.
type Problem struct {
	names       []string
	cost        []float64
	upper       []float64
	constraints []constraint

	// MaxIters bounds the simplex pivots across both phases (0 means the
	// 200000 default). When the problem decomposes into independent
	// components the budget applies per component — it is a runaway guard,
	// not a global fairness mechanism. Exhausting it makes Solve return a
	// Solution with Status IterLimit and an error wrapping
	// ErrIterationLimit.
	MaxIters int

	// Parallel caps the workers used to solve independent connected
	// components of the problem concurrently (≤1 means sequential).
	// Results are bit-identical at any setting.
	Parallel int

	// DisablePresolve skips the presolve reductions and the component
	// decomposition, solving the standard form exactly as given. Intended
	// for debugging and for measuring presolve's effect; results agree
	// with the presolved path within the solver's tolerances either way.
	DisablePresolve bool

	// etaEvery overrides the basis refactorization interval (tests force 1
	// to exercise the pure-LU path against the eta-update path).
	etaEvery int

	// Trace, when non-nil, is the parent span under which Solve records a
	// "solve" child span carrying the problem dimensions and pivot counts.
	// All recorded attributes are deterministic for a given problem.
	Trace *obs.Span
}

// etaEveryOrDefault resolves the refactorization interval.
func (p *Problem) etaEveryOrDefault() int {
	if p.etaEvery > 0 {
		return p.etaEvery
	}
	return defaultEtaRefactorEvery
}

// NewProblem returns an empty problem.
func NewProblem() *Problem {
	return &Problem{}
}

// Grow pre-allocates capacity for about vars more variables and rows more
// constraints. Purely a performance hint for encoders that know their
// problem size up front; the problem behaves identically without it.
func (p *Problem) Grow(vars, rows int) {
	p.names = slices.Grow(p.names, vars)
	p.cost = slices.Grow(p.cost, vars)
	p.upper = slices.Grow(p.upper, vars)
	p.constraints = slices.Grow(p.constraints, rows)
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.names) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// AddVariable adds a variable named name with lower bound 0, no upper bound
// and zero objective cost, returning its index. Variable names identify
// columns when a Basis is mapped onto a different problem, so callers that
// warm-start should keep them unique and stable across rounds.
func (p *Problem) AddVariable(name string) int {
	p.names = append(p.names, name)
	p.cost = append(p.cost, 0)
	p.upper = append(p.upper, infUB)
	return len(p.names) - 1
}

// Name returns the name given to variable v.
func (p *Problem) Name(v int) string { return p.names[v] }

// AddCost adds c to variable v's objective coefficient. Repeated calls
// accumulate, which lets each hypothesis contribute its own penalty term to
// a shared variable.
func (p *Problem) AddCost(v int, c float64) {
	p.cost[v] += c
}

// Cost returns the current objective coefficient of variable v.
func (p *Problem) Cost(v int) float64 { return p.cost[v] }

// SetUpperBound constrains variable v to be at most u (u must be ≥ 0).
func (p *Problem) SetUpperBound(v int, u float64) {
	p.upper[v] = u
}

// AddConstraint adds Σ coeffs[v]·x_v  sense  rhs under an automatic name.
// Zero coefficients are dropped. Variables listed twice have their
// coefficients summed.
func (p *Problem) AddConstraint(coeffs map[int]float64, sense Sense, rhs float64) {
	p.AddNamedConstraint(fmt.Sprintf("c#%d", len(p.constraints)), coeffs, sense, rhs)
}

// AddNamedConstraint is AddConstraint with an explicit row name. Row names
// identify constraint rows (and their slack/artificial columns) when a
// Basis from a previous solve is mapped onto this problem, so warm-starting
// callers should keep them unique and stable across rounds.
func (p *Problem) AddNamedConstraint(name string, coeffs map[int]float64, sense Sense, rhs float64) {
	c := constraint{name: name, sense: sense, rhs: rhs}
	for v, a := range coeffs {
		if a == 0 {
			continue
		}
		if v < 0 || v >= len(p.names) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", v))
		}
		c.idx = append(c.idx, v)
		c.coeffs = append(c.coeffs, a)
	}
	// Canonicalize entry order: map iteration is nondeterministic, and
	// presolve's activity sums (and any future row-order arithmetic) must
	// be a pure function of the problem.
	sortConstraint(c.idx, c.coeffs)
	p.constraints = append(p.constraints, c)
}

// AddRow is AddNamedConstraint for callers that already hold the row's
// entries sorted by strictly ascending variable index with no zero
// coefficients — the encoder's hot path, which builds thousands of
// window rows whose entries are naturally index-ordered. It installs the
// slices without the map detour and takes ownership of them. The order is
// verified (panic on violation), so misuse can never silently break the
// index-sorted-rows invariant presolve's arithmetic depends on.
func (p *Problem) AddRow(name string, idx []int, coeffs []float64, sense Sense, rhs float64) {
	if len(idx) != len(coeffs) {
		panic("lp: AddRow index/coefficient length mismatch")
	}
	for k, v := range idx {
		if v < 0 || v >= len(p.names) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", v))
		}
		if k > 0 && idx[k-1] >= v {
			panic("lp: AddRow entries not strictly ascending by variable index")
		}
		if coeffs[k] == 0 {
			panic("lp: AddRow zero coefficient")
		}
	}
	p.constraints = append(p.constraints, constraint{
		name: name, idx: idx, coeffs: coeffs, sense: sense, rhs: rhs,
	})
}

// sortConstraint orders a constraint's entries by variable index
// (insertion sort; rows are short).
func sortConstraint(idx []int, coeffs []float64) {
	for i := 1; i < len(idx); i++ {
		v, a := idx[i], coeffs[i]
		j := i
		for j > 0 && idx[j-1] > v {
			idx[j], coeffs[j] = idx[j-1], coeffs[j-1]
			j--
		}
		idx[j], coeffs[j] = v, a
	}
}

// maxIters resolves the pivot budget.
func (p *Problem) maxIters() int {
	if p.MaxIters > 0 {
		return p.MaxIters
	}
	return defaultMaxIter
}

// Solution holds the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // value per structural variable, len == NumVars
	Objective float64   // cᵀx at the optimum (meaningful only when Optimal)
	Iters     int       // simplex pivots performed, all phases and components

	// DualIters counts the subset of Iters performed by the dual simplex
	// (warm re-optimizations after cross-round row changes; see
	// ReoptimizeDual). Zero on cold solves.
	DualIters int
	// Components is the number of independent blocks the problem split
	// into (1 when it did not decompose; 0 when presolve solved it whole).
	Components int
	// RowsPresolved / ColsPresolved count the constraint rows and variables
	// eliminated by presolve before the simplex ran.
	RowsPresolved int
	ColsPresolved int

	// Basis is the optimal basis (sparse backend only, nil otherwise); pass
	// it to SolveWarm on the next, incrementally modified problem.
	Basis *Basis
	// WarmStarted reports whether a supplied warm basis was actually
	// applied (false when it was rejected and the solve fell back to a cold
	// start).
	WarmStarted bool
}

// Value returns the solution value of variable v.
func (s *Solution) Value(v int) float64 { return s.X[v] }

// Solve runs the sparse revised simplex from a cold start and returns the
// optimal vertex, or a Solution whose Status reports why there is no finite
// optimum (accompanied by a wrapped ErrNotOptimal / ErrIterationLimit).
func (p *Problem) Solve() (*Solution, error) {
	return p.SolveWarm(nil)
}

// SolveWarm is Solve, seeded with the optimal basis of a previous —
// typically slightly smaller — problem. The basis is mapped onto this
// problem by variable and constraint-row names: rows that kept their basic
// column re-enter the basis directly, new rows enter on their slack or
// artificial column, and vanished columns are dropped. If the mapped basis
// is singular or cannot be cheaply repaired to a feasible vertex, SolveWarm
// transparently falls back to the cold two-phase path, so it is never less
// correct than Solve — only faster when the problems are related.
func (p *Problem) SolveWarm(warm *Basis) (*Solution, error) {
	span := p.Trace.Child("solve",
		obs.Int("vars", p.NumVars()),
		obs.Int("rows", p.NumConstraints()),
		obs.Bool("warm_attempt", warm != nil))
	sol, err := solveSparse(p, warm)
	if sol != nil {
		span.Annotate(
			obs.Int("iters", sol.Iters),
			obs.Int("dual_iters", sol.DualIters),
			obs.Int("components", sol.Components),
			obs.Int("presolve_rows", sol.RowsPresolved),
			obs.Int("presolve_cols", sol.ColsPresolved),
			obs.Bool("warm", sol.WarmStarted),
			obs.Str("status", sol.Status.String()))
	}
	span.End()
	return sol, err
}

// Solve runs the sparse revised simplex on prob, warm-started from the
// previous round's optimal basis when warmStart is non-nil (see
// Problem.SolveWarm).
func Solve(prob *Problem, warmStart *Basis) (*Solution, error) {
	return prob.SolveWarm(warmStart)
}

// statusErr converts a non-optimal terminal status into the error Solve
// reports alongside the Solution.
func statusErr(status Status) error {
	if status == IterLimit {
		return fmt.Errorf("%w (budget exhausted)", ErrIterationLimit)
	}
	return fmt.Errorf("%w: %s", ErrNotOptimal, status)
}
