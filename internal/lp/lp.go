// Package lp implements a small linear-programming solver: a dense two-phase
// primal simplex over problems of the form
//
//	minimize    cᵀx
//	subject to  Aᵢ x {≤,=,≥} bᵢ      for every constraint i
//	            0 ≤ xⱼ ≤ uⱼ          for every variable j
//
// It stands in for the external solver (Flipy/CBC) used by the SherLock
// paper. The synchronization-inference encodings produced by
// internal/solver are modest (hundreds of variables and constraints), well
// within the reach of a dense tableau.
//
// The solver is deterministic: identical problems yield identical vertex
// solutions, which keeps the whole inference pipeline reproducible.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the relational operator of a constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // Σ aⱼxⱼ ≤ b
	GE              // Σ aⱼxⱼ ≥ b
	EQ              // Σ aⱼxⱼ = b
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Status reports the outcome of Solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// ErrNotOptimal is wrapped by Solve when the problem has no finite optimum.
var ErrNotOptimal = errors.New("lp: no finite optimum")

const (
	eps     = 1e-9 // numerical tolerance for pivoting and feasibility
	infUB   = math.MaxFloat64
	maxIter = 200000
)

type constraint struct {
	idx    []int
	coeffs []float64
	sense  Sense
	rhs    float64
}

// Problem is a linear program under construction. The zero value is not
// usable; create instances with NewProblem.
type Problem struct {
	names       []string
	cost        []float64
	upper       []float64
	constraints []constraint
}

// NewProblem returns an empty problem.
func NewProblem() *Problem {
	return &Problem{}
}

// NumVars returns the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.names) }

// NumConstraints returns the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// AddVariable adds a variable named name with lower bound 0, no upper bound
// and zero objective cost, returning its index.
func (p *Problem) AddVariable(name string) int {
	p.names = append(p.names, name)
	p.cost = append(p.cost, 0)
	p.upper = append(p.upper, infUB)
	return len(p.names) - 1
}

// Name returns the name given to variable v.
func (p *Problem) Name(v int) string { return p.names[v] }

// AddCost adds c to variable v's objective coefficient. Repeated calls
// accumulate, which lets each hypothesis contribute its own penalty term to
// a shared variable.
func (p *Problem) AddCost(v int, c float64) {
	p.cost[v] += c
}

// Cost returns the current objective coefficient of variable v.
func (p *Problem) Cost(v int) float64 { return p.cost[v] }

// SetUpperBound constrains variable v to be at most u (u must be ≥ 0).
func (p *Problem) SetUpperBound(v int, u float64) {
	p.upper[v] = u
}

// AddConstraint adds Σ coeffs[v]·x_v  sense  rhs. Zero coefficients are
// dropped. Variables listed twice have their coefficients summed.
func (p *Problem) AddConstraint(coeffs map[int]float64, sense Sense, rhs float64) {
	c := constraint{sense: sense, rhs: rhs}
	for v, a := range coeffs {
		if a == 0 {
			continue
		}
		if v < 0 || v >= len(p.names) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", v))
		}
		c.idx = append(c.idx, v)
		c.coeffs = append(c.coeffs, a)
	}
	p.constraints = append(p.constraints, c)
}

// Solution holds the result of Solve.
type Solution struct {
	Status    Status
	X         []float64 // value per structural variable, len == NumVars
	Objective float64   // cᵀx at the optimum (meaningful only when Optimal)
	Iters     int       // simplex pivots performed across both phases
}

// Value returns the solution value of variable v.
func (s *Solution) Value(v int) float64 { return s.X[v] }

// Solve runs two-phase simplex and returns the optimal vertex, or a
// Solution whose Status reports infeasibility/unboundedness (accompanied by
// a wrapped ErrNotOptimal).
func (p *Problem) Solve() (*Solution, error) {
	t := newTableau(p)
	status, iters := t.phase1()
	if status != Optimal {
		return &Solution{Status: Infeasible, Iters: iters}, fmt.Errorf("%w: %s", ErrNotOptimal, Infeasible)
	}
	status, it2 := t.phase2()
	iters += it2
	if status != Optimal {
		return &Solution{Status: status, Iters: iters}, fmt.Errorf("%w: %s", ErrNotOptimal, status)
	}
	x := t.extract()
	obj := 0.0
	for v, c := range p.cost {
		obj += c * x[v]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Iters: iters}, nil
}

// tableau is the dense simplex working state. Column layout:
//
//	[0, n)            structural variables
//	[n, n+nSlack)     slack/surplus variables
//	[n+nSlack, total) artificial variables (phase 1 only)
//
// rows[i][total] holds the RHS. basis[i] is the column basic in row i.
type tableau struct {
	p      *Problem
	n      int // structural variables
	nSlack int
	nArt   int
	total  int
	rows   [][]float64
	basis  []int
	obj    []float64 // reduced-cost row, length total+1 (last = -objective value)
	artAt  int       // first artificial column
}

func newTableau(p *Problem) *tableau {
	n := len(p.names)

	// Materialize upper bounds as explicit ≤ rows. The inference encodings
	// only bound probability variables, so this stays small.
	type row struct {
		coeffs []float64 // dense over structural vars
		sense  Sense
		rhs    float64
	}
	var rows []row
	for _, c := range p.constraints {
		r := row{coeffs: make([]float64, n), sense: c.sense, rhs: c.rhs}
		for k, v := range c.idx {
			r.coeffs[v] += c.coeffs[k]
		}
		rows = append(rows, r)
	}
	for v, u := range p.upper {
		if u < infUB {
			r := row{coeffs: make([]float64, n), sense: LE, rhs: u}
			r.coeffs[v] = 1
			rows = append(rows, r)
		}
	}

	// Normalize to rhs ≥ 0.
	for i := range rows {
		if rows[i].rhs < 0 {
			for j := range rows[i].coeffs {
				rows[i].coeffs[j] = -rows[i].coeffs[j]
			}
			rows[i].rhs = -rows[i].rhs
			switch rows[i].sense {
			case LE:
				rows[i].sense = GE
			case GE:
				rows[i].sense = LE
			}
		}
	}

	// Count slack and artificial columns.
	nSlack, nArt := 0, 0
	for _, r := range rows {
		switch r.sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}

	total := n + nSlack + nArt
	t := &tableau{
		p:      p,
		n:      n,
		nSlack: nSlack,
		nArt:   nArt,
		total:  total,
		artAt:  n + nSlack,
		basis:  make([]int, len(rows)),
	}
	t.rows = make([][]float64, len(rows))
	slack, art := n, t.artAt
	for i, r := range rows {
		tr := make([]float64, total+1)
		copy(tr, r.coeffs)
		tr[total] = r.rhs
		switch r.sense {
		case LE:
			tr[slack] = 1
			t.basis[i] = slack
			slack++
		case GE:
			tr[slack] = -1
			slack++
			tr[art] = 1
			t.basis[i] = art
			art++
		case EQ:
			tr[art] = 1
			t.basis[i] = art
			art++
		}
		t.rows[i] = tr
	}
	return t
}

// phase1 minimizes the sum of artificial variables to find a basic feasible
// solution. Returns Optimal when one exists.
func (t *tableau) phase1() (Status, int) {
	if t.nArt == 0 {
		return Optimal, 0
	}
	// Objective: minimize Σ artificials. Price out basic artificials.
	t.obj = make([]float64, t.total+1)
	for j := t.artAt; j < t.total; j++ {
		t.obj[j] = 1
	}
	for i, b := range t.basis {
		if b >= t.artAt {
			subRow(t.obj, t.rows[i], 1)
		}
	}
	status, iters := t.iterate(t.artAt) // artificials may leave, not enter
	if status != Optimal {
		return status, iters
	}
	// Feasible iff phase-1 objective is ~0.
	if -t.obj[t.total] > 1e-7 {
		return Infeasible, iters
	}
	t.purgeArtificials()
	return Optimal, iters
}

// purgeArtificials pivots any artificial still basic (at value 0) out of the
// basis, or marks its row redundant by zeroing it.
func (t *tableau) purgeArtificials() {
	for i, b := range t.basis {
		if b < t.artAt {
			continue
		}
		pivoted := false
		for j := 0; j < t.artAt; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Redundant row: every structural/slack coefficient is 0.
			for j := range t.rows[i] {
				t.rows[i][j] = 0
			}
		}
	}
	// Artificial columns must never re-enter: zero them everywhere.
	for i := range t.rows {
		for j := t.artAt; j < t.total; j++ {
			t.rows[i][j] = 0
		}
	}
}

// phase2 minimizes the real objective from the feasible basis.
func (t *tableau) phase2() (Status, int) {
	t.obj = make([]float64, t.total+1)
	for v, c := range t.p.cost {
		t.obj[v] = c
	}
	for i, b := range t.basis {
		if b < t.total && math.Abs(t.obj[b]) > 0 {
			subRow(t.obj, t.rows[i], t.obj[b])
		}
	}
	return t.iterate(t.artAt)
}

// iterate runs simplex pivots until optimality or unboundedness. Columns at
// or beyond colLimit are excluded from entering the basis (artificials).
// Dantzig pricing with a switch to Bland's rule after a run of degenerate
// pivots guards against cycling.
func (t *tableau) iterate(colLimit int) (Status, int) {
	iters := 0
	degenerate := 0
	bland := false
	for ; iters < maxIter; iters++ {
		// Entering column.
		enter := -1
		if bland {
			for j := 0; j < colLimit; j++ {
				if t.obj[j] < -eps {
					enter = j
					break
				}
			}
		} else {
			best := -eps
			for j := 0; j < colLimit; j++ {
				if t.obj[j] < best {
					best = t.obj[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return Optimal, iters
		}
		// Ratio test.
		leave := -1
		var minRatio float64
		for i, row := range t.rows {
			a := row[enter]
			if a > eps {
				ratio := row[t.total] / a
				if leave < 0 || ratio < minRatio-eps ||
					(math.Abs(ratio-minRatio) <= eps && t.basis[i] < t.basis[leave]) {
					leave = i
					minRatio = ratio
				}
			}
		}
		if leave < 0 {
			return Unbounded, iters
		}
		if minRatio < eps {
			degenerate++
			if degenerate > 2*len(t.rows)+20 {
				bland = true
			}
		} else {
			degenerate = 0
			bland = false
		}
		t.pivot(leave, enter)
	}
	return Unbounded, iters // iteration limit: treat as failure
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	prow := t.rows[leave]
	pv := prow[enter]
	inv := 1 / pv
	for j := range prow {
		prow[j] *= inv
	}
	prow[enter] = 1 // fight rounding
	for i, row := range t.rows {
		if i == leave {
			continue
		}
		if f := row[enter]; math.Abs(f) > eps {
			subRow(row, prow, f)
			row[enter] = 0
		} else {
			row[enter] = 0
		}
	}
	if f := t.obj[enter]; math.Abs(f) > 0 {
		subRow(t.obj, prow, f)
		t.obj[enter] = 0
	}
	t.basis[leave] = enter
}

// extract reads structural variable values out of the basis.
func (t *tableau) extract() []float64 {
	x := make([]float64, t.n)
	for i, b := range t.basis {
		if b < t.n {
			v := t.rows[i][t.total]
			if v < 0 && v > -eps {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}

// subRow computes dst -= f*src element-wise.
func subRow(dst, src []float64, f float64) {
	for j := range dst {
		dst[j] -= f * src[j]
	}
}
