package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	s, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v (status %s)", err, s.Status)
	}
	return s
}

func TestSimpleMin(t *testing.T) {
	// min x+y s.t. x+y >= 1, x <= 0.3  => x can be anything; optimum 1.
	p := NewProblem()
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.AddCost(x, 1)
	p.AddCost(y, 1)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, GE, 1)
	p.SetUpperBound(x, 0.3)
	s := solveOK(t, p)
	if math.Abs(s.Objective-1) > 1e-7 {
		t.Errorf("objective = %v, want 1", s.Objective)
	}
	if s.X[x] > 0.3+1e-9 {
		t.Errorf("x = %v violates upper bound", s.X[x])
	}
}

func TestClassicMaximization(t *testing.T) {
	// max 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18 (classic Dantzig example).
	// Optimum x=2, y=6, obj=36. We minimize the negation.
	p := NewProblem()
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.AddCost(x, -3)
	p.AddCost(y, -5)
	p.AddConstraint(map[int]float64{x: 1}, LE, 4)
	p.AddConstraint(map[int]float64{y: 2}, LE, 12)
	p.AddConstraint(map[int]float64{x: 3, y: 2}, LE, 18)
	s := solveOK(t, p)
	if math.Abs(s.Objective+36) > 1e-6 {
		t.Errorf("objective = %v, want -36", s.Objective)
	}
	if math.Abs(s.X[x]-2) > 1e-6 || math.Abs(s.X[y]-6) > 1e-6 {
		t.Errorf("x,y = %v,%v, want 2,6", s.X[x], s.X[y])
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min 2x+3y s.t. x+y = 10, x >= 2 -> x=8,y=2? No: cost favors x (2<3)
	// so push x up: x=10-y, obj=20+y, min at y=0 => but x>=2 slack. x=10,y=0.
	p := NewProblem()
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.AddCost(x, 2)
	p.AddCost(y, 3)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, EQ, 10)
	p.AddConstraint(map[int]float64{x: 1}, GE, 2)
	s := solveOK(t, p)
	if math.Abs(s.X[x]-10) > 1e-6 || math.Abs(s.X[y]) > 1e-6 {
		t.Errorf("x,y = %v,%v, want 10,0", s.X[x], s.X[y])
	}
	if math.Abs(s.Objective-20) > 1e-6 {
		t.Errorf("objective = %v, want 20", s.Objective)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x")
	p.AddConstraint(map[int]float64{x: 1}, GE, 5)
	p.SetUpperBound(x, 1)
	s, err := p.Solve()
	if err == nil || s.Status != Infeasible {
		t.Fatalf("want infeasible, got status %s err %v", s.Status, err)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x")
	p.AddCost(x, -1) // maximize x with no bound
	p.AddConstraint(map[int]float64{x: 1}, GE, 0)
	s, err := p.Solve()
	if err == nil || s.Status != Unbounded {
		t.Fatalf("want unbounded, got status %s err %v", s.Status, err)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// x - y <= -2 with x,y >= 0: i.e. y >= x+2. min y => y=2, x=0.
	p := NewProblem()
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.AddCost(y, 1)
	p.AddConstraint(map[int]float64{x: 1, y: -1}, LE, -2)
	s := solveOK(t, p)
	if math.Abs(s.X[y]-2) > 1e-6 {
		t.Errorf("y = %v, want 2", s.X[y])
	}
}

func TestMaxZeroLinearization(t *testing.T) {
	// eps >= 1 - (a+b), eps >= 0, minimize eps + 0.5a + 0.5b.
	// Cheapest: raise a+b to 1 paying 0.5, vs eps=1 paying 1. Opt = 0.5.
	p := NewProblem()
	a := p.AddVariable("a")
	b := p.AddVariable("b")
	e := p.AddVariable("eps")
	p.SetUpperBound(a, 1)
	p.SetUpperBound(b, 1)
	p.AddCost(a, 0.5)
	p.AddCost(b, 0.5)
	p.AddCost(e, 1)
	p.AddConstraint(map[int]float64{e: 1, a: 1, b: 1}, GE, 1)
	s := solveOK(t, p)
	if math.Abs(s.Objective-0.5) > 1e-6 {
		t.Errorf("objective = %v, want 0.5", s.Objective)
	}
	if s.X[e] > 1e-6 {
		t.Errorf("eps = %v, want 0", s.X[e])
	}
}

func TestAbsLinearization(t *testing.T) {
	// t >= x-y, t >= y-x, x = 0.8 fixed, minimize t + 0.1y => y pulled to x.
	p := NewProblem()
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	tt := p.AddVariable("t")
	p.AddConstraint(map[int]float64{x: 1}, EQ, 0.8)
	p.AddConstraint(map[int]float64{tt: 1, x: -1, y: 1}, GE, 0)
	p.AddConstraint(map[int]float64{tt: 1, x: 1, y: -1}, GE, 0)
	p.AddCost(tt, 1)
	p.AddCost(y, 0.1)
	s := solveOK(t, p)
	if math.Abs(s.X[y]-0.8) > 1e-6 {
		t.Errorf("y = %v, want 0.8 (pulled to x by |x-y| penalty)", s.X[y])
	}
}

func TestDegenerateDoesNotCycle(t *testing.T) {
	// A classically degenerate LP (Beale's cycling example shape).
	p := NewProblem()
	x1 := p.AddVariable("x1")
	x2 := p.AddVariable("x2")
	x3 := p.AddVariable("x3")
	x4 := p.AddVariable("x4")
	p.AddCost(x1, -0.75)
	p.AddCost(x2, 150)
	p.AddCost(x3, -0.02)
	p.AddCost(x4, 6)
	p.AddConstraint(map[int]float64{x1: 0.25, x2: -60, x3: -0.04, x4: 9}, LE, 0)
	p.AddConstraint(map[int]float64{x1: 0.5, x2: -90, x3: -0.02, x4: 3}, LE, 0)
	p.AddConstraint(map[int]float64{x3: 1}, LE, 1)
	s := solveOK(t, p)
	if math.Abs(s.Objective+0.05) > 1e-6 {
		t.Errorf("objective = %v, want -0.05", s.Objective)
	}
}

func TestRedundantEqualities(t *testing.T) {
	// Duplicate equality rows leave an artificial basic at zero; the solver
	// must purge it and still solve.
	p := NewProblem()
	x := p.AddVariable("x")
	y := p.AddVariable("y")
	p.AddCost(x, 1)
	p.AddCost(y, 1)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, EQ, 4)
	p.AddConstraint(map[int]float64{x: 1, y: 1}, EQ, 4) // redundant copy
	p.AddConstraint(map[int]float64{x: 1}, GE, 1)
	s := solveOK(t, p)
	if math.Abs(s.Objective-4) > 1e-6 {
		t.Errorf("objective = %v, want 4", s.Objective)
	}
}

func TestZeroConstraintCoefficientsDropped(t *testing.T) {
	p := NewProblem()
	x := p.AddVariable("x")
	p.AddCost(x, 1)
	p.AddConstraint(map[int]float64{x: 0}, GE, 0) // all-zero row
	p.AddConstraint(map[int]float64{x: 1}, GE, 3)
	s := solveOK(t, p)
	if math.Abs(s.X[x]-3) > 1e-6 {
		t.Errorf("x = %v, want 3", s.X[x])
	}
}

// feasible reports whether x satisfies all of p's constraints and bounds.
func feasible(p *Problem, x []float64) bool {
	for v := range x {
		if x[v] < -1e-6 || x[v] > p.upper[v]+1e-6 {
			return false
		}
	}
	for _, c := range p.constraints {
		lhs := 0.0
		for k, v := range c.idx {
			lhs += c.coeffs[k] * x[v]
		}
		switch c.sense {
		case LE:
			if lhs > c.rhs+1e-6 {
				return false
			}
		case GE:
			if lhs < c.rhs-1e-6 {
				return false
			}
		case EQ:
			if math.Abs(lhs-c.rhs) > 1e-6 {
				return false
			}
		}
	}
	return true
}

// TestRandomLPsAgainstSampling builds random box-bounded LPs (always
// feasible at some sampled point) and checks (a) the solver's answer is
// feasible and (b) no randomly sampled feasible point beats it.
func TestRandomLPsAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(4)
		p := NewProblem()
		for v := 0; v < n; v++ {
			idx := p.AddVariable("v")
			p.SetUpperBound(idx, 1)
			p.AddCost(idx, rng.Float64()*4-2)
		}
		// Anchor point guaranteed feasible.
		anchor := make([]float64, n)
		for v := range anchor {
			anchor[v] = rng.Float64()
		}
		m := 1 + rng.Intn(5)
		for i := 0; i < m; i++ {
			coeffs := map[int]float64{}
			lhs := 0.0
			for v := 0; v < n; v++ {
				a := rng.Float64()*4 - 2
				coeffs[v] = a
				lhs += a * anchor[v]
			}
			// Pick a sense consistent with the anchor.
			if rng.Intn(2) == 0 {
				p.AddConstraint(coeffs, LE, lhs+rng.Float64())
			} else {
				p.AddConstraint(coeffs, GE, lhs-rng.Float64())
			}
		}
		s, err := p.Solve()
		if err != nil {
			t.Fatalf("trial %d: unexpected %v (anchor is feasible)", trial, err)
		}
		if !feasible(p, s.X) {
			t.Fatalf("trial %d: solver returned infeasible point %v", trial, s.X)
		}
		// Sampling: solver must not be beaten by any feasible sample.
		for k := 0; k < 300; k++ {
			cand := make([]float64, n)
			for v := range cand {
				cand[v] = rng.Float64()
			}
			if !feasible(p, cand) {
				continue
			}
			obj := 0.0
			for v := range cand {
				obj += p.cost[v] * cand[v]
			}
			if obj < s.Objective-1e-5 {
				t.Fatalf("trial %d: sampled point beats solver: %v < %v", trial, obj, s.Objective)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	build := func() *Problem {
		p := NewProblem()
		for i := 0; i < 6; i++ {
			v := p.AddVariable("v")
			p.SetUpperBound(v, 1)
			p.AddCost(v, float64(i%3)-1)
		}
		p.AddConstraint(map[int]float64{0: 1, 1: 1, 2: 1}, GE, 1)
		p.AddConstraint(map[int]float64{3: 1, 4: -1}, LE, 0.5)
		p.AddConstraint(map[int]float64{5: 1, 0: 1}, EQ, 1)
		return p
	}
	a := solveOK(t, build())
	b := solveOK(t, build())
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("non-deterministic solve: %v vs %v", a.X, b.X)
		}
	}
}
