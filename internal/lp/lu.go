// Sparse LU factorization of the simplex basis, with a Forrest–Tomlin-style
// eta file for in-place updates between refactorizations.
//
// The basis matrices of the SherLock encodings are extremely sparse and
// near-triangular (slacks, surpluses, and per-row singleton ε columns make
// up most of any basis), so the working representation is
//
//	B₀ = P⁻¹·L·U        (row-permuted sparse triangular factors)
//	B  = B₀·E₁·E₂·…·Eₛ  (one eta matrix per pivot since the last refactor)
//
// where each Eta is the identity except for one column — the FTRAN image of
// the entering column at the pivot that produced it. FTRAN and BTRAN solve
// through the factors and the eta file in O(nnz) per pass instead of the
// O(m²) a dense basis inverse costs, and a pivot appends one sparse eta in
// O(nnz(t)) instead of updating m² inverse entries.
//
// The factorization itself is a left-looking Gilbert–Peierls elimination
// with partial pivoting: columns are processed in basis order, each solved
// against the L computed so far (eliminations applied in ascending pivot
// position via a small min-heap, so discovery order never changes the
// arithmetic), and the pivot row is the remaining row of largest magnitude
// with ties broken toward the smallest row index. Every choice is a
// deterministic function of the matrix, which keeps warm- and cold-started
// solves byte-reproducible.
//
// Refactorization policy (see revised.maybeRefactor): the eta file is
// rebuilt into a fresh factorization when it grows past etaRefactorEvery
// updates, when its fill-in exceeds the factor size by etaFillSlack·m, or
// when a pivot magnitude falls under stabTol — whichever comes first. On
// refactorization the basic values and reduced costs are recomputed from
// scratch, bounding numerical drift.
package lp

import "math"

const (
	// etaRefactorEvery bounds the eta file length between refactorizations.
	// Tests override it to 1 to force the pure-LU path.
	defaultEtaRefactorEvery = 64
	// etaFillSlack scales the fill-in refactorization trigger: refactor when
	// the eta file holds more than nnz(LU) + etaFillSlack·m entries.
	etaFillSlack = 4
	// tinyPivot is the singularity threshold during factorization.
	tinyPivot = 1e-11
	// stabTol triggers a defensive refactorization before pivoting on a
	// suspiciously small tableau entry.
	stabTol = 1e-7
)

// luFactors is the sparse factorization P·B₀ = L·U. Position k of the
// basis was pivoted on original row pivrow[k]; pinv is the inverse
// permutation. L is unit lower triangular with the implicit diagonal
// dropped; its column k stores below-diagonal entries by original row
// (all of which pivot at positions > k). U's column k stores its
// above-diagonal entries by pivot position j < k, plus the diagonal.
type luFactors struct {
	m      int
	pivrow []int32
	pinv   []int32

	lrow [][]int32
	lval [][]float64
	urow [][]int32
	uval [][]float64
	diag []float64

	nnz int // total stored entries across L, U and the diagonal
}

// posHeap is a minimal int32 min-heap used to apply eliminations in
// ascending pivot-position order during factorization.
type posHeap []int32

func (h *posHeap) push(v int32) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p] <= (*h)[i] {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *posHeap) pop() int32 {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(*h) && (*h)[l] < (*h)[s] {
			s = l
		}
		if r < len(*h) && (*h)[r] < (*h)[s] {
			s = r
		}
		if s == i {
			break
		}
		(*h)[i], (*h)[s] = (*h)[s], (*h)[i]
		i = s
	}
	return top
}

// factorizeBasis computes the LU factorization of the m columns selected by
// basis out of cols. It reports ok=false when the matrix is numerically
// singular (no pivot above tinyPivot in some column), in which case the
// caller must fall back to a different basis.
func factorizeBasis(cols []spCol, basis []int, m int) (*luFactors, bool) {
	f := &luFactors{
		m:      m,
		pivrow: make([]int32, m),
		pinv:   make([]int32, m),
		lrow:   make([][]int32, m),
		lval:   make([][]float64, m),
		urow:   make([][]int32, m),
		uval:   make([][]float64, m),
		diag:   make([]float64, m),
	}
	for i := range f.pinv {
		f.pinv[i] = -1
	}

	w := make([]float64, m)        // dense work column, by original row
	touched := make([]int32, 0, m) // rows scattered or filled this column
	inCol := make([]bool, m)       // membership in touched
	queued := make([]bool, m)      // position already in the heap
	var heap posHeap

	for k := 0; k < m; k++ {
		c := &cols[basis[k]]
		for idx, r := range c.rows {
			w[r] = c.vals[idx]
			touched = append(touched, r)
			inCol[r] = true
			if p := f.pinv[r]; p >= 0 && !queued[p] {
				queued[p] = true
				heap.push(p)
			}
		}
		// Eliminate with already-pivoted columns in ascending position
		// order; new fill can only appear at later positions or unpivoted
		// rows, so the heap order is an elimination order.
		for len(heap) > 0 {
			j := heap.pop()
			queued[j] = false
			v := w[f.pivrow[j]]
			if v == 0 {
				continue
			}
			f.urow[k] = append(f.urow[k], j)
			f.uval[k] = append(f.uval[k], v)
			lr, lv := f.lrow[j], f.lval[j]
			for idx, r := range lr {
				if !inCol[r] {
					w[r] = 0
					touched = append(touched, r)
					inCol[r] = true
					if p := f.pinv[r]; p >= 0 && !queued[p] {
						queued[p] = true
						heap.push(p)
					}
				}
				w[r] -= v * lv[idx]
			}
		}
		// Partial pivoting over the remaining rows: largest magnitude,
		// ties toward the smallest original row index.
		piv, best := int32(-1), 0.0
		for _, r := range touched {
			if f.pinv[r] >= 0 {
				continue
			}
			if a := math.Abs(w[r]); a > best || (a == best && piv >= 0 && r < piv && a > 0) {
				best, piv = a, r
			}
		}
		if piv < 0 || best <= tinyPivot {
			return nil, false
		}
		d := w[piv]
		f.diag[k] = d
		f.pivrow[k] = piv
		f.pinv[piv] = int32(k)
		for _, r := range touched {
			if f.pinv[r] >= 0 || w[r] == 0 {
				continue
			}
			f.lrow[k] = append(f.lrow[k], r)
			f.lval[k] = append(f.lval[k], w[r]/d)
		}
		sortLCol(f.lrow[k], f.lval[k])
		f.nnz += len(f.lrow[k]) + len(f.urow[k]) + 1
		for _, r := range touched {
			w[r] = 0
			inCol[r] = false
		}
		touched = touched[:0]
	}
	return f, true
}

// sortLCol orders an L column by original row index (insertion sort — the
// columns are short). A canonical order makes the transpose-solve
// accumulation independent of fill discovery order.
func sortLCol(rows []int32, vals []float64) {
	for i := 1; i < len(rows); i++ {
		r, v := rows[i], vals[i]
		j := i
		for j > 0 && rows[j-1] > r {
			rows[j], vals[j] = rows[j-1], vals[j-1]
			j--
		}
		rows[j], vals[j] = r, v
	}
}

// ftran solves B₀·x = w. On entry w is dense and indexed by original row;
// it is consumed (zeroed). The position-indexed solution is written to out.
func (f *luFactors) ftran(w, out []float64) {
	m := f.m
	for k := 0; k < m; k++ {
		v := w[f.pivrow[k]]
		if v != 0 {
			lr, lv := f.lrow[k], f.lval[k]
			for idx, r := range lr {
				w[r] -= v * lv[idx]
			}
		}
	}
	for k := 0; k < m; k++ {
		r := f.pivrow[k]
		out[k] = w[r]
		w[r] = 0
	}
	for k := m - 1; k >= 0; k-- {
		t := out[k] / f.diag[k]
		out[k] = t
		if t != 0 {
			ur, uv := f.urow[k], f.uval[k]
			for idx, j := range ur {
				out[j] -= t * uv[idx]
			}
		}
	}
}

// btran solves yᵀ·B₀ = cᵀ. On entry c is dense and indexed by basis
// position; it is consumed. The original-row-indexed solution is written
// to out (fully overwritten).
func (f *luFactors) btran(c, out []float64) {
	m := f.m
	for k := 0; k < m; k++ {
		s := c[k]
		ur, uv := f.urow[k], f.uval[k]
		for idx, j := range ur {
			s -= uv[idx] * c[j]
		}
		c[k] = s / f.diag[k]
	}
	for k := m - 1; k >= 0; k-- {
		s := c[k]
		lr, lv := f.lrow[k], f.lval[k]
		for idx, r := range lr {
			s -= lv[idx] * c[f.pinv[r]]
		}
		c[k] = s
	}
	for k := 0; k < m; k++ {
		out[f.pivrow[k]] = c[k]
		c[k] = 0
	}
}

// eta is one basis update: at pivot time, position pos of the basis was
// replaced by a column whose FTRAN image had diagonal diag at pos and the
// stored off-diagonal entries (by position).
type eta struct {
	pos  int32
	diag float64
	rows []int32
	vals []float64
}

// applyFtran applies E⁻¹ to the position-indexed vector x in place.
func (e *eta) applyFtran(x []float64) {
	xp := x[e.pos] / e.diag
	x[e.pos] = xp
	if xp != 0 {
		for idx, i := range e.rows {
			x[i] -= e.vals[idx] * xp
		}
	}
}

// applyBtran applies E⁻ᵀ to the position-indexed vector y in place.
func (e *eta) applyBtran(y []float64) {
	s := y[e.pos]
	for idx, i := range e.rows {
		s -= e.vals[idx] * y[i]
	}
	y[e.pos] = s / e.diag
}
