// Presolve: problem reductions applied before the simplex ever sees the
// matrix. The SherLock encodings are full of structure a solver pays for
// but never needs — variables pinned to a bound by a hard constraint,
// rows made redundant by the variable bounds, exclusivity rows forced to
// equality, and duplicated Mostly-Protected windows whose rows differ only
// in their private ε variable. Presolve removes all of it with exact
// postsolve bookkeeping, so the simplex runs on a smaller, better-
// conditioned matrix and the caller still sees a full-length solution
// vector.
//
// Reductions, applied to a fixpoint in deterministic (index-ascending)
// order:
//
//   - bound fixing: u=0 variables, and variables with no live rows, are
//     fixed at their optimal bound (0 for nonnegative cost, u otherwise);
//     a costless unconstrained direction aborts presolve so the simplex
//     can certify unboundedness itself.
//   - empty rows: feasibility-checked and dropped.
//   - singleton rows: converted to a bound update when expressible
//     (a ≤-row tightens u; a vacuous ≥-row drops; an =-row fixes the
//     variable), kept otherwise.
//   - redundant rows: dropped when the activity bounds prove every
//     feasible point satisfies them (exact comparisons — a row is only
//     dropped when provably redundant).
//   - forcing rows: when a row's activity bound meets its rhs exactly,
//     every variable in it is pinned to the achieving bound.
//   - duplicate rows: rows identical over the shared variables merge. The
//     interesting case is the Mostly-Protected pattern — same sense, rhs
//     and shared coefficients, each row with exactly one private
//     cost-carrying singleton ε — where the duplicate's ε cost folds onto
//     the representative's and postsolve copies the value back.
//
// Fix values are computed once, canonicalized (+0 turns −0 into +0), and
// reproduced exactly by postsolve, so presolve preserves the bit-level
// determinism the golden equivalence suites demand: warm and cold solves
// run through the identical reduction sequence.
package lp

import "math"

// presolved is the outcome of a presolve pass: which variables were
// removed and why, plus the reduced problem (nil when presolve solved or
// declined the whole thing).
type presolved struct {
	p *Problem

	declined bool   // presolve did not run (disabled or unbounded-suspect)
	status   Status // Optimal to proceed, Infeasible when proven

	fixed  []bool
	fixVal []float64
	dupOf  []int // ε duplicate: postsolve copies the representative's value

	red     *Problem
	origIdx []int // original var → reduced var, -1 if removed

	rowsIn, rowsOut int
	colsIn, colsOut int
}

// reduced returns the problem the simplex should solve.
func (ps *presolved) reduced() *Problem {
	if ps.declined || ps.red == nil {
		return ps.p
	}
	return ps.red
}

// solved reports that presolve fixed every variable and dropped every row:
// the solution is fully determined without a simplex run.
func (ps *presolved) solved() bool {
	return !ps.declined && ps.status == Optimal && ps.red == nil
}

// postsolve maps a reduced-space solution back onto the original variable
// space: fixed variables get their pinned values, merged ε duplicates copy
// their representative. xr may be nil when presolve solved everything.
func (ps *presolved) postsolve(xr []float64) []float64 {
	if ps.declined {
		return xr
	}
	x := make([]float64, len(ps.p.names))
	for v := range x {
		switch {
		case ps.fixed[v]:
			x[v] = ps.fixVal[v]
		case ps.dupOf[v] >= 0:
			// second pass below; the representative is never removed
		default:
			x[v] = xr[ps.origIdx[v]]
		}
	}
	for v, rep := range ps.dupOf {
		if rep >= 0 {
			x[v] = x[rep]
		}
	}
	return x
}

// presolve runs the reduction fixpoint on p. It never mutates p.
func presolve(p *Problem) *presolved {
	n := len(p.names)
	nRows := len(p.constraints)
	ps := &presolved{
		p: p, status: Optimal,
		rowsIn: nRows, colsIn: n,
	}
	if p.DisablePresolve {
		ps.declined = true
		return ps
	}
	ps.fixed = make([]bool, n)
	ps.fixVal = make([]float64, n)
	ps.dupOf = make([]int, n)
	for v := range ps.dupOf {
		ps.dupOf[v] = -1
	}

	u := append([]float64(nil), p.upper...)
	cost := append([]float64(nil), p.cost...)

	// Row-occurrence index per variable, and per-row working state. effRhs
	// absorbs fixed variables (rhs minus their contribution), live counts
	// the remaining unfixed variables. The per-variable occurrence lists
	// carve up two flat buffers (counted in a first pass) instead of
	// growing n small slices.
	occRow := make([][]int32, n)
	occVal := make([][]float64, n)
	effRhs := make([]float64, nRows)
	live := make([]int, nRows)
	dropRow := make([]bool, nRows)
	colLive := make([]int, n)
	nnz := 0
	for ri := range p.constraints {
		c := &p.constraints[ri]
		effRhs[ri] = c.rhs
		live[ri] = len(c.idx)
		nnz += len(c.idx)
		for _, v := range c.idx {
			colLive[v]++
		}
	}
	occRowBuf := make([]int32, nnz)
	occValBuf := make([]float64, nnz)
	off := 0
	for v := 0; v < n; v++ {
		end := off + colLive[v]
		occRow[v] = occRowBuf[off:off:end]
		occVal[v] = occValBuf[off:off:end]
		off = end
	}
	for ri := range p.constraints {
		c := &p.constraints[ri]
		for k, v := range c.idx {
			occRow[v] = append(occRow[v], int32(ri))
			occVal[v] = append(occVal[v], c.coeffs[k])
		}
	}

	changed := true
	fix := func(v int, val float64) {
		if ps.fixed[v] {
			return
		}
		if val < 0 {
			val = 0
		}
		ps.fixed[v] = true
		ps.fixVal[v] = val + 0 // canonicalize −0
		for k, ri := range occRow[v] {
			if dropRow[ri] {
				continue
			}
			effRhs[ri] -= occVal[v][k] * val
			live[ri]--
		}
		changed = true
	}
	drop := func(ri int) {
		dropRow[ri] = true
		for _, v := range p.constraints[ri].idx {
			colLive[v]--
		}
		ps.rowsOut++
		changed = true
	}

	for pass := 0; changed && pass < 32; pass++ {
		changed = false
		// Column rules first: zero upper bounds and dead columns.
		for v := 0; v < n; v++ {
			if ps.fixed[v] {
				continue
			}
			if u[v] <= 0 {
				fix(v, 0)
				continue
			}
			if colLive[v] == 0 {
				switch {
				case cost[v] >= 0:
					fix(v, 0)
				case u[v] < infUB:
					fix(v, u[v])
				default:
					// Negative cost, unbounded above, unconstrained: the
					// problem is unbounded. Decline and let the simplex
					// certify it on the original problem.
					ps.declined = true
					return ps
				}
			}
		}
		// Row rules.
		for ri := range p.constraints {
			if dropRow[ri] {
				continue
			}
			c := &p.constraints[ri]
			b := effRhs[ri]
			switch live[ri] {
			case 0:
				feasible := false
				switch c.sense {
				case LE:
					feasible = b >= -feasTol
				case GE:
					feasible = b <= feasTol
				case EQ:
					feasible = math.Abs(b) <= feasTol
				}
				if !feasible {
					ps.status = Infeasible
					return ps
				}
				drop(ri)
			case 1:
				v, a := -1, 0.0
				for k, vv := range c.idx {
					if !ps.fixed[vv] {
						v, a = vv, c.coeffs[k]
						break
					}
				}
				bound := b / a
				// Normalize the sense to the variable's direction: a<0
				// flips ≤ and ≥.
				sense := c.sense
				if a < 0 {
					switch sense {
					case LE:
						sense = GE
					case GE:
						sense = LE
					}
				}
				switch sense {
				case EQ:
					if bound < -feasTol || bound > u[v]+feasTol {
						ps.status = Infeasible
						return ps
					}
					if bound > u[v] {
						bound = u[v]
					}
					fix(v, bound)
					drop(ri)
				case LE: // x ≤ bound
					if bound < -feasTol {
						ps.status = Infeasible
						return ps
					}
					if bound < 0 {
						bound = 0
					}
					if bound < u[v] {
						u[v] = bound
						changed = true
					}
					drop(ri)
				case GE: // x ≥ bound
					if bound > u[v]+feasTol {
						ps.status = Infeasible
						return ps
					}
					if bound <= feasTol {
						drop(ri) // vacuous against x ≥ 0
					}
					// A positive lower bound is not expressible in this
					// problem form; the row stays.
				}
			default:
				// Activity bounds over the unfixed variables. minAct uses
				// the lower bound 0 for positive coefficients and u for
				// negative ones; maxAct the reverse.
				minAct, maxAct := 0.0, 0.0
				infMin, infMax := false, false
				for k, v := range c.idx {
					if ps.fixed[v] {
						continue
					}
					a := c.coeffs[k]
					if a > 0 {
						if u[v] >= infUB {
							infMax = true
						} else {
							maxAct += a * u[v]
						}
					} else {
						if u[v] >= infUB {
							infMin = true
						} else {
							minAct += a * u[v]
						}
					}
				}
				forceMin := func() {
					for k, v := range c.idx {
						if ps.fixed[v] {
							continue
						}
						if c.coeffs[k] > 0 {
							fix(v, 0)
						} else {
							fix(v, u[v])
						}
					}
					drop(ri)
				}
				forceMax := func() {
					for k, v := range c.idx {
						if ps.fixed[v] {
							continue
						}
						if c.coeffs[k] > 0 {
							fix(v, u[v])
						} else {
							fix(v, 0)
						}
					}
					drop(ri)
				}
				switch c.sense {
				case LE:
					if !infMin && minAct > b+feasTol {
						ps.status = Infeasible
						return ps
					}
					switch {
					case !infMax && maxAct <= b:
						drop(ri) // provably redundant
					case !infMin && minAct == b:
						forceMin()
					}
				case GE:
					if !infMax && maxAct < b-feasTol {
						ps.status = Infeasible
						return ps
					}
					switch {
					case !infMin && minAct >= b:
						drop(ri) // provably redundant
					case !infMax && maxAct == b:
						forceMax()
					}
				case EQ:
					if (!infMin && minAct > b+feasTol) || (!infMax && maxAct < b-feasTol) {
						ps.status = Infeasible
						return ps
					}
					switch {
					case !infMin && minAct == b:
						forceMin()
					case !infMax && maxAct == b:
						forceMax()
					}
				}
			}
		}
	}

	ps.mergeDuplicates(u, cost, effRhs, live, dropRow, colLive, drop)

	// Emit the reduced problem, pre-sized to its known dimensions.
	ps.origIdx = make([]int, n)
	kept := 0
	for v := 0; v < n; v++ {
		if !ps.fixed[v] && ps.dupOf[v] < 0 {
			kept++
		}
	}
	red := NewProblem()
	red.Grow(kept, nRows-ps.rowsOut)
	for v := 0; v < n; v++ {
		if ps.fixed[v] || ps.dupOf[v] >= 0 {
			ps.origIdx[v] = -1
			ps.colsOut++
			continue
		}
		idx := red.AddVariable(p.names[v])
		red.cost[idx] = cost[v]
		red.upper[idx] = u[v]
		ps.origIdx[v] = idx
	}
	for ri := range p.constraints {
		if dropRow[ri] {
			continue
		}
		c := &p.constraints[ri]
		rc := constraint{name: c.name, sense: c.sense, rhs: effRhs[ri]}
		for k, v := range c.idx {
			if ps.origIdx[v] < 0 {
				continue
			}
			rc.idx = append(rc.idx, ps.origIdx[v])
			rc.coeffs = append(rc.coeffs, c.coeffs[k])
		}
		red.constraints = append(red.constraints, rc)
	}
	red.MaxIters = p.MaxIters
	red.Parallel = p.Parallel
	red.etaEvery = p.etaEvery
	if red.NumVars() == 0 && red.NumConstraints() == 0 {
		return ps // fully solved by presolve
	}
	ps.red = red
	return ps
}

// mergeDuplicates drops rows that duplicate an earlier row over the
// shared (non-private) variables. Rows where the only difference is one
// private cost-carrying singleton each — the Mostly-Protected ε pattern —
// merge by folding the duplicate's ε cost onto the representative's;
// exact duplicates (no private part) simply drop. Signatures are exact
// (float bits), so a merge never changes the feasible set or the optimum.
//
// Rows bucket by an FNV-64 hash of their shared content and are verified
// entry for entry against the bucket's representatives (each frozen as it
// was when first scanned), so a hash collision can never cause a wrong
// merge and the hot path allocates only once per distinct representative.
func (ps *presolved) mergeDuplicates(u, cost, effRhs []float64, live []int, dropRow []bool, colLive []int, drop func(int)) {
	p := ps.p
	type repInfo struct {
		eps   int // representative's private ε, -1 for exact-duplicate rows
		sense Sense
		rhs   uint64
		vars  []int32  // shared entries, frozen at scan time
		bits  []uint64 // matching coefficient float bits
	}
	var reps []repInfo
	seen := make(map[uint64][]int32) // shared-content hash → indices into reps
	var sharedV []int32
	var sharedB []uint64
	for ri := range p.constraints {
		if dropRow[ri] || live[ri] == 0 {
			continue
		}
		c := &p.constraints[ri]
		// Identify the private ε candidates: unfixed, coefficient exactly
		// 1, live only in this row, unbounded, positive cost. Everything
		// else is shared content.
		epsVar := -1
		nEps := 0
		sharedV, sharedB = sharedV[:0], sharedB[:0]
		rhs := math.Float64bits(effRhs[ri])
		h := uint64(14695981039346656037) // FNV-1a offset basis
		mix := func(x uint64) {
			for s := 0; s < 64; s += 8 {
				h ^= (x >> s) & 0xff
				h *= 1099511628211
			}
		}
		mix(uint64(c.sense))
		mix(rhs)
		for k, v := range c.idx {
			if ps.fixed[v] || ps.dupOf[v] >= 0 {
				continue
			}
			if c.coeffs[k] == 1 && colLive[v] == 1 && u[v] >= infUB && cost[v] > 0 {
				nEps++
				epsVar = v
				continue // private part stays out of the signature
			}
			b := math.Float64bits(c.coeffs[k])
			mix(uint64(v))
			mix(b)
			sharedV = append(sharedV, int32(v))
			sharedB = append(sharedB, b)
		}
		if nEps > 1 {
			continue // ambiguous private part; leave the row alone
		}
		if nEps == 0 {
			epsVar = -1
		}
		mix(uint64(nEps)) // the E/P kind: ε-pattern and exact rows never merge
		matched := false
		for _, pi := range seen[h] {
			r := &reps[pi]
			if r.sense != c.sense || r.rhs != rhs ||
				(r.eps >= 0) != (epsVar >= 0) || len(r.vars) != len(sharedV) {
				continue
			}
			same := true
			for i := range sharedV {
				if r.vars[i] != sharedV[i] || r.bits[i] != sharedB[i] {
					same = false
					break
				}
			}
			if !same {
				continue
			}
			if epsVar >= 0 {
				// Fold the duplicate ε onto the representative's: the merged
				// cost prices the shared shortfall once, and postsolve copies
				// the representative's value back.
				cost[r.eps] += cost[epsVar]
				ps.dupOf[epsVar] = r.eps
			}
			drop(ri)
			matched = true
			break
		}
		if !matched {
			reps = append(reps, repInfo{
				eps: epsVar, sense: c.sense, rhs: rhs,
				vars: append([]int32(nil), sharedV...),
				bits: append([]uint64(nil), sharedB...),
			})
			seen[h] = append(seen[h], int32(len(reps)-1))
		}
	}
}
