package lp

// Randomized property tests for the LU-factorized solver: the three ways
// of maintaining the basis — pure LU (refactorized every pivot), LU plus
// the product-form eta file (the default), and the dense tableau — must
// agree on every problem, and dual re-optimization from a carried basis
// must match a cold solve after arbitrary row additions and excisions.

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// assertNoNegZero fails if any solution value is a negative zero — the
// extract path canonicalizes −0 to +0 so serialized solutions are
// byte-stable.
func assertNoNegZero(t *testing.T, label string, x []float64) {
	t.Helper()
	for v, val := range x {
		if val == 0 && math.Signbit(val) {
			t.Fatalf("%s: variable %d is -0 (must be canonicalized to +0)", label, v)
		}
	}
}

// TestLUEtaDenseAgreement solves randomized problems three ways: with the
// eta file disabled (etaEvery=1 forces a fresh LU factorization after
// every pivot), with the default product-form-on-LU eta updates, and with
// the dense reference backend. All three must report the same status, and
// on optimal problems the same objective and the same thresholded vertex.
func TestLUEtaDenseAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		p := randProblem(rng)

		p.etaEvery = 1 // pure LU: refactorize after every pivot
		luSol, luErr := p.Solve()
		p.etaEvery = 0 // default: LU + eta file
		etaSol, etaErr := p.Solve()
		denseSol, denseErr := p.SolveDense()

		if (luErr == nil) != (etaErr == nil) || (luErr == nil) != (denseErr == nil) {
			t.Fatalf("trial %d: error disagreement: lu=%v eta=%v dense=%v", trial, luErr, etaErr, denseErr)
		}
		if luSol.Status != etaSol.Status || luSol.Status != denseSol.Status {
			t.Fatalf("trial %d: status disagreement: lu=%v eta=%v dense=%v",
				trial, luSol.Status, etaSol.Status, denseSol.Status)
		}
		if luErr != nil {
			continue
		}
		if math.Abs(luSol.Objective-etaSol.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective lu=%g eta=%g", trial, luSol.Objective, etaSol.Objective)
		}
		if math.Abs(luSol.Objective-denseSol.Objective) > 1e-6 {
			t.Fatalf("trial %d: objective lu=%g dense=%g", trial, luSol.Objective, denseSol.Objective)
		}
		if v, ok := sameThresholded(luSol.X, etaSol.X); !ok {
			t.Fatalf("trial %d: lu vs eta vertex differs at var %d: %g vs %g",
				trial, v, luSol.X[v], etaSol.X[v])
		}
		if v, ok := sameThresholded(luSol.X, denseSol.X); !ok {
			t.Fatalf("trial %d: lu vs dense vertex differs at var %d: %g vs %g",
				trial, v, luSol.X[v], denseSol.X[v])
		}
		assertNoNegZero(t, "lu", luSol.X)
		assertNoNegZero(t, "eta", etaSol.X)
	}
}

// mutableLP is a rebuildable problem specification for the add/excise
// test: the dual path needs *problems*, not mutations of one Problem, so
// every step rebuilds from the spec. Variable and row names are stable, so
// a basis carried across rebuilds maps by name exactly as the Perturber
// rounds' bases do.
type mutableLP struct {
	names []string
	cost  []float64
	upper []float64
	rows  []constraint
}

func specFrom(p *Problem) *mutableLP {
	s := &mutableLP{
		names: append([]string(nil), p.names...),
		cost:  append([]float64(nil), p.cost...),
		upper: append([]float64(nil), p.upper...),
	}
	for _, c := range p.constraints {
		s.rows = append(s.rows, constraint{
			name: c.name, sense: c.sense, rhs: c.rhs,
			idx:    append([]int(nil), c.idx...),
			coeffs: append([]float64(nil), c.coeffs...),
		})
	}
	return s
}

func (s *mutableLP) build() *Problem {
	p := NewProblem()
	for i, n := range s.names {
		v := p.AddVariable(n)
		p.cost[v] = s.cost[i]
		p.upper[v] = s.upper[i]
	}
	for _, c := range s.rows {
		coeffs := map[int]float64{}
		for k, v := range c.idx {
			coeffs[v] = c.coeffs[k]
		}
		p.AddNamedConstraint(c.name, coeffs, c.sense, c.rhs)
	}
	return p
}

// addCuttingRow appends a GE row over existing probability variables with
// a fractional rhs and no private ε — the kind of row that cuts the
// carried vertex off and forces genuine dual pivots to repair it.
func (s *mutableLP) addCuttingRow(rng *rand.Rand, step int) {
	var idx []int
	for v := range s.names {
		if s.upper[v] == 1 && rng.Float64() < 0.5 {
			idx = append(idx, v)
		}
	}
	if len(idx) < 2 {
		idx = []int{0, 1}
	}
	coeffs := make([]float64, len(idx))
	for i := range coeffs {
		coeffs[i] = 1
	}
	s.rows = append(s.rows, constraint{
		name: fmt.Sprintf("cut#%d", step), sense: GE,
		rhs: 0.5 + rng.Float64()*float64(len(idx)-1),
		idx: idx, coeffs: coeffs,
	})
}

// addMPRow appends a Mostly-Protected-style row with a fresh ε — the
// usual cross-round growth, which extends the basis without cutting it.
func (s *mutableLP) addMPRow(rng *rand.Rand, step int) {
	e := len(s.names)
	s.names = append(s.names, fmt.Sprintf("pe#%d", step))
	s.cost = append(s.cost, 2+rng.Float64())
	s.upper = append(s.upper, infUB)
	idx := []int{}
	for v := 0; v < e; v++ {
		if s.upper[v] == 1 && rng.Float64() < 0.3 {
			idx = append(idx, v)
		}
	}
	idx = append(idx, e)
	coeffs := make([]float64, len(idx))
	for i := range coeffs {
		coeffs[i] = 1
	}
	s.rows = append(s.rows, constraint{
		name: fmt.Sprintf("mp#pe#%d", step), sense: GE, rhs: 1,
		idx: idx, coeffs: coeffs,
	})
}

// excise removes one random row (the racy-pair retirement analogue). Rows
// only ever constrain from below here, so removal keeps the problem
// feasible.
func (s *mutableLP) excise(rng *rand.Rand) {
	if len(s.rows) <= 1 {
		return
	}
	i := rng.Intn(len(s.rows))
	s.rows = append(s.rows[:i], s.rows[i+1:]...)
}

// TestDualReoptimizeVsCold carries a basis through random add/excise
// sequences: after every mutation, ReoptimizeDual from the previous
// optimal basis must agree with a cold solve of the identical problem.
// The sequence includes ε-free cutting rows, so the test also asserts the
// dual simplex actually engaged (DualIters > 0 overall) rather than every
// repair falling through to a cold restart.
func TestDualReoptimizeVsCold(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	dualPivots, warmApplied := 0, 0
	for trial := 0; trial < 12; trial++ {
		spec := specFrom(randProblem(rng))
		base := spec.build()
		sol, err := base.Solve()
		if err != nil {
			continue // infeasible/unbounded base: nothing to carry
		}
		basis := sol.Basis
		for step := 0; step < 6; step++ {
			switch rng.Intn(3) {
			case 0:
				spec.addCuttingRow(rng, trial*100+step)
			case 1:
				spec.addMPRow(rng, trial*100+step)
			default:
				spec.excise(rng)
			}
			next := spec.build()
			coldSol, coldErr := next.Solve()
			warmSol, warmErr := next.ReoptimizeDual(basis)
			if (coldErr == nil) != (warmErr == nil) {
				t.Fatalf("trial %d step %d: cold err=%v warm err=%v", trial, step, coldErr, warmErr)
			}
			if coldSol.Status != warmSol.Status {
				t.Fatalf("trial %d step %d: status cold=%v warm=%v",
					trial, step, coldSol.Status, warmSol.Status)
			}
			if coldErr != nil {
				// The mutated problem lost its finite optimum; re-anchor on
				// the next feasible build.
				continue
			}
			if math.Abs(coldSol.Objective-warmSol.Objective) > 1e-6 {
				t.Fatalf("trial %d step %d: objective cold=%g warm=%g",
					trial, step, coldSol.Objective, warmSol.Objective)
			}
			if v, ok := sameThresholded(coldSol.X, warmSol.X); !ok {
				t.Fatalf("trial %d step %d: vertex differs at var %d: cold=%g warm=%g",
					trial, step, v, coldSol.X[v], warmSol.X[v])
			}
			assertNoNegZero(t, "warm", warmSol.X)
			dualPivots += warmSol.DualIters
			if warmSol.WarmStarted {
				warmApplied++
			}
			basis = warmSol.Basis
		}
	}
	if warmApplied == 0 {
		t.Fatal("no mutation step ever applied the carried basis")
	}
	if dualPivots == 0 {
		t.Fatal("the dual simplex never pivoted: cutting rows should be repaired dually, not by cold restarts")
	}
}

// TestReoptimizeDualRequiresBasis pins the contract that losing the
// warm-start chain is an error, not a silent cold start.
func TestReoptimizeDualRequiresBasis(t *testing.T) {
	p := NewProblem()
	v := p.AddVariable("x")
	p.AddCost(v, 1)
	if _, err := p.ReoptimizeDual(nil); err == nil {
		t.Fatal("ReoptimizeDual(nil) must error")
	}
	if _, err := p.ReoptimizeDual(&Basis{}); err == nil {
		t.Fatal("ReoptimizeDual(empty) must error")
	}
	if _, err := p.Solve(); err != nil {
		t.Fatalf("plain solve: %v", err)
	}
}

// TestIterLimitStillReported makes sure the budget sentinel survives the
// presolve/decompose pipeline on the property-test generator too.
func TestIterLimitStillReported(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	hit := false
	for trial := 0; trial < 20 && !hit; trial++ {
		p := randProblem(rng)
		p.MaxIters = 1
		sol, err := p.Solve()
		if err != nil && errors.Is(err, ErrIterationLimit) {
			if sol.Status != IterLimit {
				t.Fatalf("iter-limit error with status %v", sol.Status)
			}
			hit = true
		}
	}
	if !hit {
		t.Skip("no generated problem exhausted a 1-pivot budget (generator changed?)")
	}
}
