// Basis serialization. A Basis round-trips through JSON so checkpoints
// (internal/core) can persist a solve's warm-start state into the corpus
// store and resume from it in another process. The encoding is exact:
// encoding/json emits float64 in shortest round-trip form and parses it
// back to the identical bits, so a deserialized basis passes applyWarm's
// entry-by-exact-entry verification exactly when the in-memory original
// would. Every field is finite by construction (the simplex never stores
// NaN/Inf in a returned basis), so marshaling cannot fail on values.
package lp

import (
	"encoding/json"
	"fmt"
)

// basisJSON is the exported shadow of Basis's unexported fields.
type basisJSON struct {
	Rows []string    `json:"rows"`
	Bcol []string    `json:"bcol"`
	RHS  []float64   `json:"rhs"`
	Loc  []bool      `json:"loc"`
	Brow [][]int32   `json:"brow"`
	Bval [][]float64 `json:"bval"`
	Binv [][]float64 `json:"binv"`
	XB   []float64   `json:"xb"`
}

// MarshalJSON encodes the basis for persistence.
func (b *Basis) MarshalJSON() ([]byte, error) {
	return json.Marshal(basisJSON{
		Rows: b.rows, Bcol: b.bcol, RHS: b.rhs, Loc: b.loc,
		Brow: b.brow, Bval: b.bval, Binv: b.binv, XB: b.xB,
	})
}

// UnmarshalJSON decodes a basis produced by MarshalJSON, validating the
// per-row shape so a corrupt document can never index out of range inside
// applyWarm.
func (b *Basis) UnmarshalJSON(data []byte) error {
	var s basisJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	m := len(s.Rows)
	for name, n := range map[string]int{
		"bcol": len(s.Bcol), "rhs": len(s.RHS), "loc": len(s.Loc),
		"brow": len(s.Brow), "bval": len(s.Bval), "binv": len(s.Binv), "xb": len(s.XB),
	} {
		if n != m {
			return fmt.Errorf("lp: basis: %q has %d entries, want %d", name, n, m)
		}
	}
	for i := range s.Brow {
		if len(s.Brow[i]) != len(s.Bval[i]) {
			return fmt.Errorf("lp: basis: row %d: brow/bval length mismatch", i)
		}
		if len(s.Binv[i]) != m {
			return fmt.Errorf("lp: basis: row %d: binv has %d columns, want %d", i, len(s.Binv[i]), m)
		}
	}
	b.rows, b.bcol, b.rhs, b.loc = s.Rows, s.Bcol, s.RHS, s.Loc
	b.brow, b.bval, b.binv, b.xB = s.Brow, s.Bval, s.Binv, s.XB
	return nil
}
