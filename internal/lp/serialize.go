// Basis serialization. A Basis round-trips through JSON so checkpoints
// (internal/core) can persist a solve's warm-start state into the corpus
// store and resume from it in another process.
//
// Since the LU rework a basis is pure names — (row, basic column) pairs —
// so the round trip is trivially exact: there is no numerical state to
// preserve bit for bit. A loaded basis is re-factorized against the
// problem it is applied to (a documented cold re-factorization on load),
// which is the same thing applyWarm does to an in-memory basis, so
// resuming from a stored checkpoint is indistinguishable from an
// uninterrupted in-memory sequence.
//
// Documents written by the pre-LU format carried extra numerical fields
// (rhs, loc, brow, bval, binv, xb); UnmarshalJSON ignores them, so old
// checkpoints still load — they warm-start exactly as well as new ones,
// because the numerical payload was only ever a cache of what
// re-factorization recomputes.
package lp

import (
	"encoding/json"
	"fmt"
)

// basisJSON is the exported shadow of Basis's unexported fields.
type basisJSON struct {
	Rows []string `json:"rows"`
	Bcol []string `json:"bcol"`
}

// MarshalJSON encodes the basis for persistence.
func (b *Basis) MarshalJSON() ([]byte, error) {
	return json.Marshal(basisJSON{Rows: b.rows, Bcol: b.bcol})
}

// UnmarshalJSON decodes a basis produced by MarshalJSON (current or pre-LU
// format), validating the shape so a corrupt document can never misalign
// rows and basic columns inside applyWarm.
func (b *Basis) UnmarshalJSON(data []byte) error {
	var s basisJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	if len(s.Bcol) != len(s.Rows) {
		return fmt.Errorf("lp: basis: %q has %d entries, want %d", "bcol", len(s.Bcol), len(s.Rows))
	}
	b.rows, b.bcol = s.Rows, s.Bcol
	return nil
}
