// Sparse revised simplex. The SherLock encodings are >95% zeros — each
// Mostly-Protected row touches only the window's candidate keys — so the
// constraint matrix is stored column-sparse and the working state is the
// basis inverse, not a full tableau:
//
//   - A crash basis exploits the encoding's structure: every GE row with a
//     positive singleton column (the ε/t auxiliary variables) starts with
//     that column basic, every LE row with its slack, so SherLock problems
//     typically begin primal-feasible and skip phase 1 entirely.
//   - The basis inverse B⁻¹ starts diagonal (the crash basis) and is
//     maintained by product-form pivot updates — there is no O(m³)
//     factorization on any path.
//   - Reduced costs are maintained incrementally (the revised analogue of
//     the dense tableau's objective row), with Dantzig pricing and the same
//     Bland's-rule anti-cycling switch as the dense backend.
//   - Warm starts (basis.go) replay a prior optimal basis column-by-column
//     into the crash basis, then repair sign errors on singleton rows in
//     O(m); anything unrepairable falls back to a cold start.
package lp

import "math"

// feasTol is the feasibility tolerance on basic values.
const feasTol = 1e-7

// spCol is one sparsely stored column of the standard-form matrix.
type spCol struct {
	rows []int32
	vals []float64
}

// standardForm is the problem in computational standard form: constraints
// plus materialized upper-bound rows, normalized to rhs ≥ 0, with slack,
// surplus and artificial columns appended after the structural ones.
//
//	[0, n)            structural variables
//	[n, artAt)        slack/surplus variables
//	[artAt, total)    artificial variables
//
// Row and column names are the stable identities a Basis is keyed by.
type standardForm struct {
	m, n  int
	nArt  int
	artAt int
	total int

	cols    []spCol
	rhs     []float64
	rowName []string
	colName []string

	slackCol  []int     // per row: slack/surplus column, -1 if none
	slackSign []float64 // per row: +1 (LE slack) or -1 (GE surplus)
	artCol    []int     // per row: artificial column, -1 if none

	// posSingleton is, per row, a structural column that appears only in
	// this row with a positive coefficient (-1 if none) — the crash basis
	// uses it to start feasible without an artificial. The SherLock
	// encodings have one in every Mostly-Protected row (the ε variable).
	posSingleton    []int
	posSingletonVal []float64
}

// sfRow is a standard-form row under construction.
type sfRow struct {
	name   string
	idx    []int
	coeffs []float64
	sense  Sense
	rhs    float64
}

func buildStandardForm(p *Problem) *standardForm {
	n := len(p.names)
	rows := make([]sfRow, 0, len(p.constraints)+n)
	for _, c := range p.constraints {
		rows = append(rows, sfRow{name: c.name, idx: c.idx, coeffs: c.coeffs, sense: c.sense, rhs: c.rhs})
	}
	// Materialize upper bounds as explicit ≤ rows, exactly like the dense
	// backend, so both backends solve the identical standard form.
	for v, u := range p.upper {
		if u < infUB {
			rows = append(rows, sfRow{name: "ub(" + p.names[v] + ")", idx: []int{v}, coeffs: []float64{1}, sense: LE, rhs: u})
		}
	}
	// Normalize to rhs ≥ 0.
	for i := range rows {
		if rows[i].rhs < 0 {
			neg := make([]float64, len(rows[i].coeffs))
			for k, a := range rows[i].coeffs {
				neg[k] = -a
			}
			rows[i].coeffs = neg
			rows[i].rhs = -rows[i].rhs
			switch rows[i].sense {
			case LE:
				rows[i].sense = GE
			case GE:
				rows[i].sense = LE
			}
		}
	}

	nSlack, nArt := 0, 0
	for _, r := range rows {
		switch r.sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	m := len(rows)
	total := n + nSlack + nArt
	sf := &standardForm{
		m: m, n: n, nArt: nArt, artAt: n + nSlack, total: total,
		cols:    make([]spCol, total),
		rhs:     make([]float64, m),
		rowName: make([]string, m),
		colName: make([]string, total),

		slackCol:  make([]int, m),
		slackSign: make([]float64, m),
		artCol:    make([]int, m),

		posSingleton:    make([]int, m),
		posSingletonVal: make([]float64, m),
	}
	for v := 0; v < n; v++ {
		sf.colName[v] = "v:" + p.names[v]
	}
	slack, art := n, sf.artAt
	for i, r := range rows {
		sf.rhs[i] = r.rhs
		sf.rowName[i] = r.name
		sf.slackCol[i], sf.artCol[i], sf.posSingleton[i] = -1, -1, -1
		for k, v := range r.idx {
			if a := r.coeffs[k]; a != 0 {
				sf.cols[v].rows = append(sf.cols[v].rows, int32(i))
				sf.cols[v].vals = append(sf.cols[v].vals, a)
			}
		}
		switch r.sense {
		case LE:
			sf.cols[slack] = spCol{rows: []int32{int32(i)}, vals: []float64{1}}
			sf.colName[slack] = "s:" + r.name
			sf.slackCol[i], sf.slackSign[i] = slack, 1
			slack++
		case GE:
			sf.cols[slack] = spCol{rows: []int32{int32(i)}, vals: []float64{-1}}
			sf.colName[slack] = "s:" + r.name
			sf.slackCol[i], sf.slackSign[i] = slack, -1
			slack++
			sf.cols[art] = spCol{rows: []int32{int32(i)}, vals: []float64{1}}
			sf.colName[art] = "a:" + r.name
			sf.artCol[i] = art
			art++
		case EQ:
			sf.cols[art] = spCol{rows: []int32{int32(i)}, vals: []float64{1}}
			sf.colName[art] = "a:" + r.name
			sf.artCol[i] = art
			art++
		}
	}
	// Positive structural singletons (crash-basis candidates), first by
	// column order per row.
	for j := 0; j < n; j++ {
		c := &sf.cols[j]
		if len(c.rows) != 1 || c.vals[0] <= eps {
			continue
		}
		if i := int(c.rows[0]); sf.posSingleton[i] < 0 {
			sf.posSingleton[i] = j
			sf.posSingletonVal[i] = c.vals[0]
		}
	}
	return sf
}

// revised is the sparse revised-simplex working state.
type revised struct {
	p  *Problem
	sf *standardForm

	basis   []int  // column basic in row i
	inBasis []bool // per column
	binv    [][]float64
	xB      []float64

	cost []float64 // current phase's cost vector over all columns
	d    []float64 // maintained reduced costs (nil outside iterate phases)

	iters int
	tmp   []float64 // ftran scratch, length m
}

// newRevised builds the crash basis: per row a positive structural
// singleton (GE/EQ), the slack (LE, or GE with zero rhs), or the
// artificial. B is diagonal, so B⁻¹ and the basic values are immediate, and
// every basic value is ≥ 0 by construction.
func newRevised(p *Problem, sf *standardForm) *revised {
	m := sf.m
	r := &revised{
		p: p, sf: sf,
		basis:   make([]int, m),
		inBasis: make([]bool, sf.total),
		binv:    make([][]float64, m),
		xB:      make([]float64, m),
		tmp:     make([]float64, m),
	}
	for i := 0; i < m; i++ {
		r.binv[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		col, a := sf.crashCol(i)
		r.basis[i] = col
		r.inBasis[col] = true
		r.binv[i][i] = 1 / a
		r.xB[i] = sf.rhs[i] / a
	}
	return r
}

// crashCol picks row i's starting basic column and its coefficient.
func (sf *standardForm) crashCol(i int) (int, float64) {
	if sf.slackCol[i] >= 0 && sf.slackSign[i] > 0 { // LE
		return sf.slackCol[i], 1
	}
	if j := sf.posSingleton[i]; j >= 0 {
		return j, sf.posSingletonVal[i]
	}
	if sf.slackCol[i] >= 0 && sf.rhs[i] <= feasTol { // GE with rhs 0: surplus at 0
		return sf.slackCol[i], -1
	}
	return sf.artCol[i], 1 // GE/EQ rows always have one
}

// ftran computes t = B⁻¹·A_j for column j into t (length m).
func (r *revised) ftran(j int, t []float64) {
	c := &r.sf.cols[j]
	for i := 0; i < r.sf.m; i++ {
		row := r.binv[i]
		s := 0.0
		for k, ri := range c.rows {
			s += row[ri] * c.vals[k]
		}
		t[i] = s
	}
}

// computeD recomputes the reduced costs d = c − cB·B⁻¹·A from scratch for
// the current phase cost vector (done once per phase; pivots then maintain
// d incrementally).
func (r *revised) computeD() {
	sf := r.sf
	m := sf.m
	y := make([]float64, m)
	for i := 0; i < m; i++ {
		cb := r.cost[r.basis[i]]
		if cb == 0 {
			continue
		}
		row := r.binv[i]
		for j := 0; j < m; j++ {
			y[j] += cb * row[j]
		}
	}
	if r.d == nil {
		r.d = make([]float64, sf.total)
	}
	for j := 0; j < sf.total; j++ {
		if r.inBasis[j] {
			r.d[j] = 0
			continue
		}
		s := r.cost[j]
		c := &sf.cols[j]
		for k, ri := range c.rows {
			s -= y[ri] * c.vals[k]
		}
		r.d[j] = s
	}
}

// price selects the entering column among the first colLimit columns:
// Dantzig (most negative reduced cost) or Bland (first negative).
func (r *revised) price(colLimit int, bland bool) int {
	if bland {
		for j := 0; j < colLimit; j++ {
			if !r.inBasis[j] && r.d[j] < -eps {
				return j
			}
		}
		return -1
	}
	best, enter := -eps, -1
	for j := 0; j < colLimit; j++ {
		if !r.inBasis[j] && r.d[j] < best {
			best, enter = r.d[j], j
		}
	}
	return enter
}

// pivot makes column enter basic in row leave; t must hold B⁻¹·A_enter.
// When reduced costs are live (r.d != nil) they are updated from the
// pre-pivot leave row of B⁻¹A, the revised analogue of the dense tableau's
// objective-row update.
func (r *revised) pivot(leave, enter int, t []float64) {
	sf := r.sf
	m := sf.m
	pv := t[leave]
	if r.d != nil {
		if f := r.d[enter] / pv; f != 0 {
			rowL := r.binv[leave]
			for j := 0; j < sf.total; j++ {
				if r.inBasis[j] || j == enter {
					continue
				}
				c := &sf.cols[j]
				s := 0.0
				for k, ri := range c.rows {
					s += rowL[ri] * c.vals[k]
				}
				if s != 0 {
					r.d[j] -= f * s
				}
			}
			r.d[r.basis[leave]] = -f // leaving column: its B⁻¹A entry is 1
		} else {
			r.d[r.basis[leave]] = 0
		}
		r.d[enter] = 0
	}
	theta := r.xB[leave] / pv
	rowL := r.binv[leave]
	inv := 1 / pv
	for j := 0; j < m; j++ {
		rowL[j] *= inv
	}
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		f := t[i]
		if math.Abs(f) <= 1e-12 {
			continue
		}
		ri := r.binv[i]
		for j := 0; j < m; j++ {
			ri[j] -= f * rowL[j]
		}
		r.xB[i] -= f * theta
	}
	r.xB[leave] = theta
	r.inBasis[r.basis[leave]] = false
	r.inBasis[enter] = true
	r.basis[leave] = enter
	r.iters++
}

// iterate runs simplex pivots until optimality, unboundedness or the pivot
// budget. Columns at or beyond colLimit (artificials) may leave the basis
// but never enter. Dantzig pricing with a switch to Bland's rule after a
// run of degenerate pivots guards against cycling — the same policy and
// thresholds as the dense backend.
func (r *revised) iterate(colLimit int) Status {
	m := r.sf.m
	degenerate, bland := 0, false
	budget := r.p.maxIters()
	for {
		enter := r.price(colLimit, bland)
		if enter < 0 {
			return Optimal
		}
		if r.iters >= budget {
			return IterLimit
		}
		t := r.tmp
		r.ftran(enter, t)
		leave := -1
		var minRatio float64
		for i := 0; i < m; i++ {
			a := t[i]
			if a > eps {
				ratio := r.xB[i] / a
				if leave < 0 || ratio < minRatio-eps ||
					(math.Abs(ratio-minRatio) <= eps && r.basis[i] < r.basis[leave]) {
					leave, minRatio = i, ratio
				}
			}
		}
		if leave < 0 {
			return Unbounded
		}
		if minRatio < eps {
			degenerate++
			if degenerate > 2*m+20 {
				bland = true
			}
		} else {
			degenerate, bland = 0, false
		}
		r.pivot(leave, enter, t)
	}
}

// phase1 minimizes the sum of artificial variables from the current
// (feasible) basis. Returns Optimal when a basic feasible solution of the
// real problem exists.
func (r *revised) phase1() Status {
	sf := r.sf
	r.cost = make([]float64, sf.total)
	for j := sf.artAt; j < sf.total; j++ {
		r.cost[j] = 1
	}
	r.d = nil
	r.computeD()
	st := r.iterate(sf.artAt)
	if st != Optimal {
		return st
	}
	inf := 0.0
	for i, b := range r.basis {
		if b >= sf.artAt && r.xB[i] > 0 {
			inf += r.xB[i]
		}
	}
	if inf > feasTol {
		return Infeasible
	}
	return Optimal
}

// purgeArtificials pivots any basic artificial (at value ~0) out of the
// basis where an eligible column exists. Rows where none exists are
// linearly dependent: every structural/slack coefficient of their B⁻¹A row
// is ~0, so the artificial stays harmlessly basic at zero and can never
// move (the entering direction never touches the row).
func (r *revised) purgeArtificials() {
	sf := r.sf
	if sf.nArt == 0 {
		return
	}
	r.d = nil // phase costs change next; no point maintaining reduced costs
	for i := 0; i < sf.m; i++ {
		if r.basis[i] < sf.artAt {
			continue
		}
		rowL := r.binv[i]
		enter := -1
		for j := 0; j < sf.artAt; j++ {
			if r.inBasis[j] {
				continue
			}
			c := &sf.cols[j]
			s := 0.0
			for k, ri := range c.rows {
				s += rowL[ri] * c.vals[k]
			}
			if math.Abs(s) > eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			continue
		}
		r.ftran(enter, r.tmp)
		r.pivot(i, enter, r.tmp)
	}
}

// phase2 minimizes the real objective from the current feasible basis.
func (r *revised) phase2() Status {
	sf := r.sf
	r.cost = make([]float64, sf.total)
	for v, c := range r.p.cost {
		r.cost[v] = c
	}
	r.d = nil
	r.computeD()
	return r.iterate(sf.artAt)
}

// extract reads structural variable values out of the basis. Adding +0
// canonicalizes IEEE negative zero (−0 + 0 = +0; every other value is
// unchanged): pivot arithmetic can produce either zero depending on the
// pivot path, and warm- and cold-started solves of the same problem must
// serialize identically.
func (r *revised) extract() []float64 {
	x := make([]float64, r.sf.n)
	for i, b := range r.basis {
		if b < r.sf.n {
			v := r.xB[i]
			if v < 0 && v > -eps {
				v = 0
			}
			x[b] = v + 0
		}
	}
	return x
}

// snapshot captures the solve's final basis — names, basic-column entries,
// inverse, and basic values — the currency a warm start on a related
// problem is paid in. Slices are handed over by reference: the standard
// form and revised state are discarded after the solve, so nothing else
// mutates them.
func (r *revised) snapshot() *Basis {
	sf := r.sf
	b := &Basis{
		rows: sf.rowName,
		bcol: make([]string, sf.m),
		rhs:  sf.rhs,
		loc:  make([]bool, sf.m),
		brow: make([][]int32, sf.m),
		bval: make([][]float64, sf.m),
		binv: r.binv,
		xB:   r.xB,
	}
	for i, c := range r.basis {
		b.bcol[i] = sf.colName[c]
		col := &sf.cols[c]
		b.brow[i] = col.rows
		b.bval[i] = col.vals
		b.loc[i] = len(col.rows) == 1 && int(col.rows[0]) == i
	}
	return b
}

// solveSparse runs the sparse revised simplex, warm-started when warm is
// non-nil and applicable.
func solveSparse(p *Problem, warm *Basis) (*Solution, error) {
	sf := buildStandardForm(p)
	var r *revised
	warmApplied := false
	if warm != nil && sf.m > 0 {
		// Try the carried basis on a bare solver state first; the crash
		// basis (and its m×m inverse) is only built if the carry fails.
		rw := &revised{p: p, sf: sf, tmp: make([]float64, sf.m)}
		if rw.applyWarm(warm) {
			r, warmApplied = rw, true
		}
	}
	if r == nil {
		r = newRevised(p, sf)
	}
	needP1 := false
	for i, b := range r.basis {
		if b >= sf.artAt && r.xB[i] > feasTol {
			needP1 = true
			break
		}
	}
	if needP1 {
		st := r.phase1()
		if st == IterLimit {
			return &Solution{Status: st, Iters: r.iters, WarmStarted: warmApplied}, statusErr(st)
		}
		if st != Optimal {
			return &Solution{Status: Infeasible, Iters: r.iters, WarmStarted: warmApplied}, statusErr(Infeasible)
		}
	}
	r.purgeArtificials()
	st := r.phase2()
	if st != Optimal {
		return &Solution{Status: st, Iters: r.iters, WarmStarted: warmApplied}, statusErr(st)
	}
	x := r.extract()
	obj := 0.0
	for v, c := range p.cost {
		obj += c * x[v]
	}
	return &Solution{
		Status: Optimal, X: x, Objective: obj, Iters: r.iters,
		Basis: r.snapshot(), WarmStarted: warmApplied,
	}, nil
}
