// Sparse revised simplex. The SherLock encodings are >95% zeros — each
// Mostly-Protected row touches only the window's candidate keys — so the
// constraint matrix is stored column-sparse and the working state is a
// sparse LU factorization of the basis (lu.go), not a tableau or a dense
// inverse:
//
//   - A crash basis exploits the encoding's structure: every GE row with a
//     positive singleton column (the ε/t auxiliary variables) starts with
//     that column basic, every LE row with its slack, so SherLock problems
//     typically begin primal-feasible and skip phase 1 entirely.
//   - The basis is represented as B = B₀·E₁·…·Eₛ: LU factors of a recent
//     basis plus one sparse eta per pivot since, refactorized periodically
//     (see lu.go). FTRAN/BTRAN cost O(nnz), a pivot costs O(nnz) — the
//     O(m²)-per-pivot dense inverse update is gone.
//   - Reduced costs are maintained incrementally from the BTRAN pivot row
//     (the revised analogue of the dense tableau's objective row), with
//     Dantzig pricing and the same Bland's-rule anti-cycling switch as the
//     dense backend.
//   - Warm starts (basis.go) map a prior optimal basis by row/column name,
//     refactorize it against the current problem data, and repair any
//     primal infeasibility with dual simplex pivots (dual.go); anything
//     unrepairable falls back to a cold start.
//   - Before a solve, a presolve pass (presolve.go) fixes pinned variables
//     and drops redundant rows; independent connected components of the
//     reduced problem are solved separately, concurrently when
//     Problem.Parallel allows (decompose.go).
//
// Determinism: every choice — pivot selection, refactorization points,
// presolve order, component order — is a pure function of the problem, so
// identical problems yield bit-identical solutions at any parallelism.
// After the last pivot the final basis is refactorized from the problem
// data and the basic values recomputed from scratch, so the extracted
// vertex depends only on the final basis, not on the pivot path that
// reached it — the property the warm==cold golden suites rely on.
package lp

import "math"

// feasTol is the feasibility tolerance on basic values.
const feasTol = 1e-7

// fallbackStatus is an internal sentinel: the warm-started path hit a
// numerically unusable state and the caller must restart cold. Never
// returned to users.
const fallbackStatus Status = -1

// spCol is one sparsely stored column of the standard-form matrix.
type spCol struct {
	rows []int32
	vals []float64
}

// standardForm is the problem in computational standard form: constraints
// plus materialized upper-bound rows, normalized to rhs ≥ 0, with slack,
// surplus and artificial columns appended after the structural ones.
//
//	[0, n)            structural variables
//	[n, artAt)        slack/surplus variables
//	[artAt, total)    artificial variables
//
// Row and column names are the stable identities a Basis is keyed by.
type standardForm struct {
	m, n  int
	nArt  int
	artAt int
	total int

	cols    []spCol
	rhs     []float64
	rowName []string
	colName []string

	// Row-major adjacency over the same matrix: rowCols[i]/rowVals[i] list
	// every column touching row i (ascending column order). The BTRAN-based
	// reduced-cost update and the dual ratio test walk rows, not columns.
	rowCols [][]int32
	rowVals [][]float64

	slackCol  []int     // per row: slack/surplus column, -1 if none
	slackSign []float64 // per row: +1 (LE slack) or -1 (GE surplus)
	artCol    []int     // per row: artificial column, -1 if none

	// posSingleton is, per row, a structural column that appears only in
	// this row with a positive coefficient (-1 if none) — the crash basis
	// uses it to start feasible without an artificial. The SherLock
	// encodings have one in every Mostly-Protected row (the ε variable).
	posSingleton    []int
	posSingletonVal []float64
}

// sfRow is a standard-form row under construction.
type sfRow struct {
	name   string
	idx    []int
	coeffs []float64
	sense  Sense
	rhs    float64
}

func buildStandardForm(p *Problem) *standardForm {
	n := len(p.names)
	rows := make([]sfRow, 0, len(p.constraints)+n)
	for _, c := range p.constraints {
		rows = append(rows, sfRow{name: c.name, idx: c.idx, coeffs: c.coeffs, sense: c.sense, rhs: c.rhs})
	}
	// Materialize upper bounds as explicit ≤ rows, exactly like the dense
	// backend, so both backends solve the identical standard form.
	for v, u := range p.upper {
		if u < infUB {
			rows = append(rows, sfRow{name: "ub(" + p.names[v] + ")", idx: []int{v}, coeffs: []float64{1}, sense: LE, rhs: u})
		}
	}
	// Normalize to rhs ≥ 0.
	for i := range rows {
		if rows[i].rhs < 0 {
			neg := make([]float64, len(rows[i].coeffs))
			for k, a := range rows[i].coeffs {
				neg[k] = -a
			}
			rows[i].coeffs = neg
			rows[i].rhs = -rows[i].rhs
			switch rows[i].sense {
			case LE:
				rows[i].sense = GE
			case GE:
				rows[i].sense = LE
			}
		}
	}

	nSlack, nArt := 0, 0
	for _, r := range rows {
		switch r.sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	m := len(rows)
	total := n + nSlack + nArt
	sf := &standardForm{
		m: m, n: n, nArt: nArt, artAt: n + nSlack, total: total,
		cols:    make([]spCol, total),
		rhs:     make([]float64, m),
		rowName: make([]string, m),
		colName: make([]string, total),

		slackCol:  make([]int, m),
		slackSign: make([]float64, m),
		artCol:    make([]int, m),

		posSingleton:    make([]int, m),
		posSingletonVal: make([]float64, m),
	}
	for v := 0; v < n; v++ {
		sf.colName[v] = "v:" + p.names[v]
	}
	slack, art := n, sf.artAt
	for i, r := range rows {
		sf.rhs[i] = r.rhs
		sf.rowName[i] = r.name
		sf.slackCol[i], sf.artCol[i], sf.posSingleton[i] = -1, -1, -1
		for k, v := range r.idx {
			if a := r.coeffs[k]; a != 0 {
				sf.cols[v].rows = append(sf.cols[v].rows, int32(i))
				sf.cols[v].vals = append(sf.cols[v].vals, a)
			}
		}
		switch r.sense {
		case LE:
			sf.cols[slack] = spCol{rows: []int32{int32(i)}, vals: []float64{1}}
			sf.colName[slack] = "s:" + r.name
			sf.slackCol[i], sf.slackSign[i] = slack, 1
			slack++
		case GE:
			sf.cols[slack] = spCol{rows: []int32{int32(i)}, vals: []float64{-1}}
			sf.colName[slack] = "s:" + r.name
			sf.slackCol[i], sf.slackSign[i] = slack, -1
			slack++
			sf.cols[art] = spCol{rows: []int32{int32(i)}, vals: []float64{1}}
			sf.colName[art] = "a:" + r.name
			sf.artCol[i] = art
			art++
		case EQ:
			sf.cols[art] = spCol{rows: []int32{int32(i)}, vals: []float64{1}}
			sf.colName[art] = "a:" + r.name
			sf.artCol[i] = art
			art++
		}
	}
	// Positive structural singletons (crash-basis candidates), first by
	// column order per row.
	for j := 0; j < n; j++ {
		c := &sf.cols[j]
		if len(c.rows) != 1 || c.vals[0] <= eps {
			continue
		}
		if i := int(c.rows[0]); sf.posSingleton[i] < 0 {
			sf.posSingleton[i] = j
			sf.posSingletonVal[i] = c.vals[0]
		}
	}
	// Row-major adjacency, filled column-ascending so each row's list is in
	// ascending column order (a deterministic accumulation order for the
	// pivot-row products).
	sf.rowCols = make([][]int32, m)
	sf.rowVals = make([][]float64, m)
	for j := 0; j < total; j++ {
		c := &sf.cols[j]
		for k, ri := range c.rows {
			sf.rowCols[ri] = append(sf.rowCols[ri], int32(j))
			sf.rowVals[ri] = append(sf.rowVals[ri], c.vals[k])
		}
	}
	return sf
}

// revised is the sparse revised-simplex working state. Basis slot i holds
// column basis[i]; slots are positions in the factorization, decoupled
// from constraint rows once pivoting starts.
type revised struct {
	p  *Problem
	sf *standardForm

	basis   []int  // basic column per basis position
	inBasis []bool // per column
	lu      *luFactors
	etas    []eta
	etaNNZ  int
	xB      []float64 // basic values per position

	cost []float64 // current phase's cost vector over all columns
	d    []float64 // maintained reduced costs (nil outside iterate phases)

	iters     int
	dualIters int

	refactorEvery int
	noRefactor    bool // a refactorization failed; ride the eta file out

	// Scratch, allocated once per solve.
	wr     []float64 // length m, original-row indexed (FTRAN in / BTRAN out)
	t      []float64 // length m, position indexed (FTRAN result)
	pz     []float64 // length m, position indexed (BTRAN input)
	alpha  []float64 // length total: current BTRAN pivot row of B⁻¹A
	ainCol []bool    // membership of alpha's touched set
	atouch []int32
}

// newBare allocates the working state without choosing a basis; the caller
// installs one via applyWarm or the crash construction.
func newBare(p *Problem, sf *standardForm) *revised {
	m := sf.m
	return &revised{
		p: p, sf: sf,
		refactorEvery: p.etaEveryOrDefault(),
		xB:            make([]float64, m),
		wr:            make([]float64, m),
		t:             make([]float64, m),
		pz:            make([]float64, m),
		alpha:         make([]float64, sf.total),
		ainCol:        make([]bool, sf.total),
	}
}

// newRevised builds the crash basis: per row a positive structural
// singleton (GE/EQ), the slack (LE, or GE with zero rhs), or the
// artificial. B is diagonal, so the factorization is trivial and every
// basic value is ≥ 0 by construction.
func newRevised(p *Problem, sf *standardForm) *revised {
	m := sf.m
	r := newBare(p, sf)
	r.basis = make([]int, m)
	r.inBasis = make([]bool, sf.total)
	for i := 0; i < m; i++ {
		col, _ := sf.crashCol(i)
		r.basis[i] = col
		r.inBasis[col] = true
	}
	// A diagonal basis cannot be singular (every crash coefficient is ±1 or
	// a nonzero singleton), so the factorization always succeeds.
	r.lu, _ = factorizeBasis(sf.cols, r.basis, m)
	r.computeXB()
	return r
}

// crashCol picks row i's starting basic column and its coefficient.
func (sf *standardForm) crashCol(i int) (int, float64) {
	if sf.slackCol[i] >= 0 && sf.slackSign[i] > 0 { // LE
		return sf.slackCol[i], 1
	}
	if j := sf.posSingleton[i]; j >= 0 {
		return j, sf.posSingletonVal[i]
	}
	if sf.slackCol[i] >= 0 && sf.rhs[i] <= feasTol { // GE with rhs 0: surplus at 0
		return sf.slackCol[i], -1
	}
	return sf.artCol[i], 1 // GE/EQ rows always have one
}

// computeXB recomputes the basic values xB = B⁻¹·b through the current
// factorization and eta file.
func (r *revised) computeXB() {
	copy(r.wr, r.sf.rhs)
	r.lu.ftran(r.wr, r.xB)
	for q := range r.etas {
		r.etas[q].applyFtran(r.xB)
	}
}

// ftranCol computes t = B⁻¹·A_j for column j into out (length m,
// position indexed).
func (r *revised) ftranCol(j int, out []float64) {
	c := &r.sf.cols[j]
	for k, ri := range c.rows {
		r.wr[ri] = c.vals[k]
	}
	r.lu.ftran(r.wr, out)
	for q := range r.etas {
		r.etas[q].applyFtran(out)
	}
}

// pivotRow computes the leave-th row of B⁻¹A into r.alpha and returns the
// touched column list (unsorted). The caller must release the scratch with
// clearAlpha. This is one BTRAN plus a sweep of the touched constraint
// rows — the O(total·nnz) per-pivot pricing sweep of the product-form
// implementation reduced to the rows the pivot actually reaches.
func (r *revised) pivotRow(leave int) []int32 {
	sf := r.sf
	pz := r.pz
	pz[leave] = 1
	for q := len(r.etas) - 1; q >= 0; q-- {
		r.etas[q].applyBtran(pz)
	}
	r.lu.btran(pz, r.wr)
	cols := r.atouch[:0]
	for ri := 0; ri < sf.m; ri++ {
		br := r.wr[ri]
		r.wr[ri] = 0
		if br == 0 {
			continue
		}
		rc, rv := sf.rowCols[ri], sf.rowVals[ri]
		for idx, j := range rc {
			if !r.ainCol[j] {
				r.ainCol[j] = true
				r.alpha[j] = 0
				cols = append(cols, j)
			}
			r.alpha[j] += br * rv[idx]
		}
	}
	r.atouch = cols
	return cols
}

// clearAlpha releases pivotRow's scratch.
func (r *revised) clearAlpha(cols []int32) {
	for _, j := range cols {
		r.alpha[j] = 0
		r.ainCol[j] = false
	}
}

// computeD recomputes the reduced costs d = c − cB·B⁻¹·A from scratch for
// the current phase cost vector (done once per phase and at each
// refactorization; pivots then maintain d incrementally).
func (r *revised) computeD() {
	sf := r.sf
	for i := 0; i < sf.m; i++ {
		r.pz[i] = r.cost[r.basis[i]]
	}
	for q := len(r.etas) - 1; q >= 0; q-- {
		r.etas[q].applyBtran(r.pz)
	}
	r.lu.btran(r.pz, r.wr) // wr = y, the simplex multipliers by original row
	if r.d == nil {
		r.d = make([]float64, sf.total)
	}
	for j := 0; j < sf.total; j++ {
		if r.inBasis[j] {
			r.d[j] = 0
			continue
		}
		s := r.cost[j]
		c := &sf.cols[j]
		for k, ri := range c.rows {
			s -= r.wr[ri] * c.vals[k]
		}
		r.d[j] = s
	}
	for i := 0; i < sf.m; i++ {
		r.wr[i] = 0
	}
}

// price selects the entering column among the first colLimit columns:
// Dantzig (most negative reduced cost) or Bland (first negative).
func (r *revised) price(colLimit int, bland bool) int {
	if bland {
		for j := 0; j < colLimit; j++ {
			if !r.inBasis[j] && r.d[j] < -eps {
				return j
			}
		}
		return -1
	}
	best, enter := -eps, -1
	for j := 0; j < colLimit; j++ {
		if !r.inBasis[j] && r.d[j] < best {
			best, enter = r.d[j], j
		}
	}
	return enter
}

// refactor rebuilds the LU factors from the current basis, drops the eta
// file, and recomputes xB (and d, when maintained) from scratch. Reports
// false if the factorization failed, in which case the old representation
// stays live and refactorization is disabled for the rest of the solve.
func (r *revised) refactor() bool {
	lu, ok := factorizeBasis(r.sf.cols, r.basis, r.sf.m)
	if !ok {
		r.noRefactor = true
		return false
	}
	r.lu = lu
	r.etas = r.etas[:0]
	r.etaNNZ = 0
	r.computeXB()
	if r.d != nil {
		r.computeD()
	}
	return true
}

// pivot makes column enter basic at position leave; t must hold B⁻¹·A_enter.
// When reduced costs are live (r.d != nil) they are updated from the BTRAN
// pivot row, supplied precomputed in acols/r.alpha (dual path) or computed
// here (primal path). The update appends one eta and may trigger a
// refactorization.
func (r *revised) pivot(leave, enter int, t []float64, acols []int32) {
	sf := r.sf
	m := sf.m
	pv := t[leave]
	if r.d != nil {
		if acols == nil {
			acols = r.pivotRow(leave)
		}
		if f := r.d[enter] / pv; f != 0 {
			for _, jj := range acols {
				j := int(jj)
				if r.inBasis[j] || j == enter {
					continue
				}
				if a := r.alpha[j]; a != 0 {
					r.d[j] -= f * a
				}
			}
			r.d[r.basis[leave]] = -f // leaving column: its B⁻¹A entry is 1
		} else {
			r.d[r.basis[leave]] = 0
		}
		r.d[enter] = 0
	}
	if acols != nil {
		r.clearAlpha(acols)
	}
	theta := r.xB[leave] / pv
	e := eta{pos: int32(leave), diag: pv}
	for i := 0; i < m; i++ {
		if i == leave {
			continue
		}
		ti := t[i]
		if ti == 0 {
			continue
		}
		e.rows = append(e.rows, int32(i))
		e.vals = append(e.vals, ti)
		r.xB[i] -= ti * theta
	}
	r.xB[leave] = theta
	r.etas = append(r.etas, e)
	r.etaNNZ += len(e.rows) + 1
	r.inBasis[r.basis[leave]] = false
	r.inBasis[enter] = true
	r.basis[leave] = enter
	r.iters++
	if !r.noRefactor &&
		(len(r.etas) >= r.refactorEvery || r.etaNNZ > r.lu.nnz+etaFillSlack*m) {
		r.refactor()
	}
}

// chooseLeave runs the primal ratio test on the FTRAN column t: minimum
// ratio over positive entries, ties toward the smaller basic column index.
func (r *revised) chooseLeave(t []float64) (int, float64) {
	leave := -1
	var minRatio float64
	for i := 0; i < r.sf.m; i++ {
		a := t[i]
		if a > eps {
			ratio := r.xB[i] / a
			if leave < 0 || ratio < minRatio-eps ||
				(math.Abs(ratio-minRatio) <= eps && r.basis[i] < r.basis[leave]) {
				leave, minRatio = i, ratio
			}
		}
	}
	return leave, minRatio
}

// iterate runs primal simplex pivots until optimality, unboundedness or the
// pivot budget. Columns at or beyond colLimit (artificials) may leave the
// basis but never enter. Dantzig pricing with a switch to Bland's rule
// after a run of degenerate pivots guards against cycling — the same policy
// and thresholds as the dense backend.
func (r *revised) iterate(colLimit int) Status {
	m := r.sf.m
	degenerate, bland := 0, false
	budget := r.p.maxIters()
	for {
		enter := r.price(colLimit, bland)
		if enter < 0 {
			return Optimal
		}
		if r.iters >= budget {
			return IterLimit
		}
		t := r.t
		r.ftranCol(enter, t)
		leave, minRatio := r.chooseLeave(t)
		if leave >= 0 && math.Abs(t[leave]) < stabTol && len(r.etas) > 0 && !r.noRefactor {
			// Suspiciously small pivot through a long eta file: refactorize
			// and redo the ratio test on clean numbers.
			if r.refactor() {
				r.ftranCol(enter, t)
				leave, minRatio = r.chooseLeave(t)
			}
		}
		if leave < 0 {
			return Unbounded
		}
		if minRatio < eps {
			degenerate++
			if degenerate > 2*m+20 {
				bland = true
			}
		} else {
			degenerate, bland = 0, false
		}
		r.pivot(leave, enter, t, nil)
	}
}

// phase1 minimizes the sum of artificial variables from the current
// (feasible) basis. Returns Optimal when a basic feasible solution of the
// real problem exists.
func (r *revised) phase1() Status {
	sf := r.sf
	r.cost = make([]float64, sf.total)
	for j := sf.artAt; j < sf.total; j++ {
		r.cost[j] = 1
	}
	r.d = nil
	r.computeD()
	st := r.iterate(sf.artAt)
	if st != Optimal {
		return st
	}
	inf := 0.0
	for i, b := range r.basis {
		if b >= sf.artAt && r.xB[i] > 0 {
			inf += r.xB[i]
		}
	}
	if inf > feasTol {
		return Infeasible
	}
	return Optimal
}

// purgeArtificials pivots any basic artificial (at value ~0) out of the
// basis where an eligible column exists. Positions where none exists sit on
// linearly dependent rows: every structural/slack coefficient of their
// B⁻¹A row is ~0, so the artificial stays harmlessly basic at zero and can
// never move (the entering direction never touches the position).
func (r *revised) purgeArtificials() {
	sf := r.sf
	if sf.nArt == 0 {
		return
	}
	r.d = nil // phase costs change next; no point maintaining reduced costs
	for i := 0; i < sf.m; i++ {
		if r.basis[i] < sf.artAt {
			continue
		}
		acols := r.pivotRow(i)
		enter := -1
		for _, jj := range acols {
			j := int(jj)
			if j >= sf.artAt || r.inBasis[j] {
				continue
			}
			if math.Abs(r.alpha[j]) > eps && (enter < 0 || j < enter) {
				enter = j
			}
		}
		r.clearAlpha(acols)
		if enter < 0 {
			continue
		}
		r.ftranCol(enter, r.t)
		r.pivot(i, enter, r.t, nil)
	}
}

// setPhase2Costs installs the real objective as the working cost vector.
func (r *revised) setPhase2Costs() {
	sf := r.sf
	r.cost = make([]float64, sf.total)
	for v, c := range r.p.cost {
		r.cost[v] = c
	}
}

// optimize drives the current basis to optimality:
//
//	artificials at positive value  → primal phase 1, purge, primal phase 2
//	primal feasible                → purge, primal phase 2
//	primal infeasible, dual
//	feasible (warm starts only)    → dual simplex, then primal cleanup
//	neither                        → fallbackStatus (caller restarts cold)
//
// The dual branch is what makes cross-round row additions and excisions
// cheap: a carried basis is dual feasible by construction (it was optimal),
// so a handful of dual pivots absorb the new rows instead of a primal
// restart.
func (r *revised) optimize(warm bool) Status {
	sf := r.sf
	needP1 := false
	for i, b := range r.basis {
		if b >= sf.artAt && r.xB[i] > feasTol {
			needP1 = true
			break
		}
	}
	if needP1 {
		st := r.phase1()
		if st == IterLimit {
			return st
		}
		if st != Optimal {
			return Infeasible
		}
	}
	r.purgeArtificials()
	r.setPhase2Costs()
	r.d = nil
	r.computeD()
	primalInfeas := false
	for _, v := range r.xB {
		if v < -feasTol {
			primalInfeas = true
			break
		}
	}
	if primalInfeas {
		if !warm || !r.dualFeasible() {
			return fallbackStatus
		}
		if st := r.dualIterate(); st != Optimal {
			return st
		}
	}
	return r.iterate(sf.artAt)
}

// finalize refactorizes the final basis from the problem data and
// recomputes the basic values, so the extracted vertex is a function of
// the final basis alone — identical whether the solve was warm or cold,
// primal or dual, one eta file or another.
func (r *revised) finalize() {
	if len(r.etas) > 0 {
		if !r.refactor() {
			return // singular final refactorization: keep the maintained xB
		}
	} else {
		r.computeXB()
	}
}

// extract reads structural variable values out of the basis. Adding +0
// canonicalizes IEEE negative zero (−0 + 0 = +0; every other value is
// unchanged): pivot arithmetic can produce either zero depending on the
// pivot path, and warm- and cold-started solves of the same problem must
// serialize identically.
func (r *revised) extract() []float64 {
	x := make([]float64, r.sf.n)
	for i, b := range r.basis {
		if b < r.sf.n {
			v := r.xB[i]
			if v < 0 && v > -eps {
				v = 0
			}
			x[b] = v + 0
		}
	}
	return x
}

// snapshot captures the solve's final basis as (row name, basic column
// name) pairs — the identities a warm start on a related problem maps onto
// its own standard form before refactorizing. Numerical state is never
// carried: the next solve rebuilds it from its own problem data, which is
// what makes the snapshot trivially serializable and immune to coefficient
// changes (see applyWarm).
func (r *revised) snapshot() *Basis {
	sf := r.sf
	b := &Basis{
		rows: sf.rowName,
		bcol: make([]string, sf.m),
	}
	for i, c := range r.basis {
		b.bcol[i] = sf.colName[c]
	}
	return b
}

// solveComponent runs the revised simplex on one (sub)problem's standard
// form, warm-started when warmIdx (a Basis.index) is non-empty and maps
// onto it.
func solveComponent(p *Problem, sf *standardForm, warmIdx map[string]string) *Solution {
	var r *revised
	warmApplied := false
	if sf.m > 0 && len(warmIdx) > 0 {
		rw := newBare(p, sf)
		if rw.applyWarm(warmIdx) {
			r, warmApplied = rw, true
		}
	}
	if r == nil {
		r = newRevised(p, sf)
	}
	st := r.optimize(warmApplied)
	if st == fallbackStatus {
		// The warm basis was numerically unusable (primal and dual
		// infeasible, or a singular refactorization mid-flight): restart
		// cold, preserving the pivots already spent in the iteration count.
		spent, spentDual := r.iters, r.dualIters
		r = newRevised(p, sf)
		r.iters, r.dualIters = spent, spentDual
		warmApplied = false
		st = r.optimize(false)
	}
	if st != Optimal {
		return &Solution{Status: st, Iters: r.iters, DualIters: r.dualIters, WarmStarted: warmApplied}
	}
	r.finalize()
	x := r.extract()
	obj := 0.0
	for v, c := range p.cost {
		obj += c * x[v]
	}
	return &Solution{
		Status: Optimal, X: x, Objective: obj,
		Iters: r.iters, DualIters: r.dualIters,
		Basis: r.snapshot(), WarmStarted: warmApplied,
	}
}

// solveSparse is the sparse-backend entry: presolve, decompose, solve the
// components (concurrently when allowed), postsolve back to the original
// variable space.
func solveSparse(p *Problem, warm *Basis) (*Solution, error) {
	ps := presolve(p)
	if ps.status == Infeasible {
		sol := &Solution{Status: Infeasible, RowsPresolved: ps.rowsOut, ColsPresolved: ps.colsOut}
		return sol, statusErr(Infeasible)
	}
	if ps.solved() {
		// Presolve pinned everything; no simplex needed.
		x := ps.postsolve(nil)
		obj := 0.0
		for v, c := range p.cost {
			obj += c * x[v]
		}
		sol := &Solution{
			Status: Optimal, X: x, Objective: obj,
			RowsPresolved: ps.rowsOut, ColsPresolved: ps.colsOut,
			Basis: &Basis{},
		}
		return sol, nil
	}
	sol := solveDecomposed(ps.reduced(), warm)
	sol.RowsPresolved, sol.ColsPresolved = ps.rowsOut, ps.colsOut
	if sol.Status != Optimal {
		return sol, statusErr(sol.Status)
	}
	sol.X = ps.postsolve(sol.X)
	// Recompute the objective on the original cost vector and full solution:
	// presolve's cost folding (duplicate-row merges) changes summation
	// grouping, and the reported objective must not depend on whether
	// presolve fired.
	obj := 0.0
	for v, c := range p.cost {
		obj += c * sol.X[v]
	}
	sol.Objective = obj
	return sol, nil
}
