package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randProblem builds a SherLock-shaped random LP: probability variables in
// [0,1] with distinct positive costs, Mostly-Protected-style GE rows
// (ε + Σ candidates ≥ 1) and a few pairing-style EQ rows. Distinct costs
// keep the optimum essentially unique so cold and warm solves can be
// compared vertex-to-vertex, not just by objective.
func randProblem(rng *rand.Rand) *Problem {
	p := NewProblem()
	nv := 4 + rng.Intn(10)
	vars := make([]int, nv)
	for i := range vars {
		v := p.AddVariable(varName(i))
		p.SetUpperBound(v, 1)
		p.AddCost(v, 0.1+rng.Float64()+float64(i)*1e-3)
		vars[i] = v
	}
	nrows := 3 + rng.Intn(8)
	for r := 0; r < nrows; r++ {
		eName := "e" + string(rune('A'+r))
		e := p.AddVariable(eName)
		p.AddCost(e, 2+rng.Float64()+float64(r)*1e-3)
		coeffs := map[int]float64{e: 1}
		for _, v := range vars {
			if rng.Float64() < 0.4 {
				coeffs[v] = 1
			}
		}
		p.AddNamedConstraint("mp#"+eName, coeffs, GE, 1)
	}
	if nv >= 4 && rng.Float64() < 0.7 {
		t := p.AddVariable("t0")
		p.AddCost(t, 1.5)
		p.AddNamedConstraint("pair#0",
			map[int]float64{vars[0]: 1, vars[1]: 1, vars[2]: -1, vars[3]: -1, t: 1}, GE, 0)
		p.AddNamedConstraint("pair#1",
			map[int]float64{vars[0]: -1, vars[1]: -1, vars[2]: 1, vars[3]: 1, t: 1}, GE, 0)
	}
	return p
}

func varName(i int) string {
	return "v" + string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// sameThresholded checks that a and b induce the same thresholded set at
// 0.5, tolerating float noise: values within 1e-6 of each other may sit on
// opposite sides of the cut only if both are within 1e-6 of it.
func sameThresholded(a, b []float64) (int, bool) {
	for v := range a {
		if math.Abs(a[v]-b[v]) > 1e-6 {
			return v, false
		}
		if (a[v] >= 0.5) != (b[v] >= 0.5) && math.Abs(a[v]-0.5) > 1e-6 {
			return v, false
		}
	}
	return -1, true
}

// TestDenseSparseEquivalence cross-checks the two backends on randomized
// problems: same status, same objective, same thresholded vertex.
func TestDenseSparseEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := randProblem(rng)
		ds, derr := p.SolveDense()
		ss, serr := p.Solve()
		if (derr == nil) != (serr == nil) {
			t.Fatalf("trial %d: dense err=%v sparse err=%v", trial, derr, serr)
		}
		if derr != nil {
			if ds.Status != ss.Status {
				t.Fatalf("trial %d: dense status %v, sparse status %v", trial, ds.Status, ss.Status)
			}
			continue
		}
		if math.Abs(ds.Objective-ss.Objective) > 1e-6 {
			t.Fatalf("trial %d: dense obj %v, sparse obj %v", trial, ds.Objective, ss.Objective)
		}
		if v, ok := sameThresholded(ds.X, ss.X); !ok {
			t.Fatalf("trial %d: var %s differs: dense %v sparse %v",
				trial, p.Name(v), ds.X[v], ss.X[v])
		}
	}
}

// perturb grows p the way a Perturber round grows the encoding: appends a
// fresh MP-style row with its own ε variable (sometimes reusing existing
// variables) and occasionally bumps an existing cost.
func perturb(p *Problem, rng *rand.Rand) {
	e := p.AddVariable("ep" + string(rune('0'+rng.Intn(10))) + string(rune('a'+rng.Intn(26))))
	p.AddCost(e, 2+rng.Float64())
	coeffs := map[int]float64{e: 1}
	for v := 0; v < p.NumVars()-1; v++ {
		if rng.Float64() < 0.3 {
			coeffs[v] = 1
		}
	}
	p.AddNamedConstraint("mp#"+p.Name(e), coeffs, GE, 1)
	if rng.Float64() < 0.5 {
		p.AddCost(rng.Intn(p.NumVars()), 0.05*rng.Float64())
	}
}

// TestWarmStartEquivalence is the warm-start property test: for randomized
// problems, a warm solve seeded with the (possibly stale, perturbed-problem)
// prior basis must reach the same objective and the same thresholded set as
// a cold solve of the identical problem.
func TestWarmStartEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	warmApplied := 0
	for trial := 0; trial < 200; trial++ {
		p := randProblem(rng)
		prior, err := p.Solve()
		if err != nil {
			continue
		}
		perturb(p, rng)
		cold, cerr := p.Solve()
		warm, werr := p.SolveWarm(prior.Basis)
		if (cerr == nil) != (werr == nil) {
			t.Fatalf("trial %d: cold err=%v warm err=%v", trial, cerr, werr)
		}
		if cerr != nil {
			continue
		}
		if warm.WarmStarted {
			warmApplied++
		}
		if math.Abs(cold.Objective-warm.Objective) > 1e-6 {
			t.Fatalf("trial %d: cold obj %v, warm obj %v (warmStarted=%v)",
				trial, cold.Objective, warm.Objective, warm.WarmStarted)
		}
		if v, ok := sameThresholded(cold.X, warm.X); !ok {
			t.Fatalf("trial %d: var %s differs: cold %v warm %v (warmStarted=%v)",
				trial, p.Name(v), cold.X[v], warm.X[v], warm.WarmStarted)
		}
	}
	// The warm path must actually engage for the test to mean anything.
	if warmApplied < 50 {
		t.Fatalf("warm basis applied in only %d/200 trials; warm path not exercised", warmApplied)
	}
}

// TestWarmStartUnrelatedBasis checks that a basis from a structurally
// unrelated problem is harmless: the solve falls back to cold and still
// reaches the optimum.
func TestWarmStartUnrelatedBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randProblem(rng)
	sa, err := a.Solve()
	if err != nil {
		t.Fatalf("solve a: %v", err)
	}
	b := NewProblem()
	x := b.AddVariable("x")
	y := b.AddVariable("y")
	b.AddCost(x, 1)
	b.AddCost(y, 2)
	b.AddNamedConstraint("r0", map[int]float64{x: 1, y: 1}, GE, 1)
	cold, err := b.Solve()
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	warm, err := b.SolveWarm(sa.Basis)
	if err != nil {
		t.Fatalf("warm with unrelated basis: %v", err)
	}
	if math.Abs(cold.Objective-warm.Objective) > 1e-9 {
		t.Fatalf("cold obj %v, warm obj %v", cold.Objective, warm.Objective)
	}
}

// TestIterationLimitSentinel checks that exhausting the pivot budget is a
// reported error, not a silently returned suboptimal vertex, on both
// backends.
func TestIterationLimitSentinel(t *testing.T) {
	build := func() *Problem {
		p := NewProblem()
		vars := make([]int, 6)
		for i := range vars {
			vars[i] = p.AddVariable(varName(i))
			p.SetUpperBound(vars[i], 1)
			p.AddCost(vars[i], float64(i+1))
		}
		for r := 0; r < 5; r++ {
			coeffs := map[int]float64{}
			for i, v := range vars {
				if (i+r)%2 == 0 {
					coeffs[v] = 1
				}
			}
			p.AddConstraint(coeffs, GE, 1)
		}
		p.MaxIters = 1
		return p
	}
	sol, err := build().Solve()
	if !errors.Is(err, ErrIterationLimit) {
		t.Fatalf("sparse: want ErrIterationLimit, got %v", err)
	}
	if !errors.Is(err, ErrNotOptimal) {
		t.Fatalf("sparse: ErrIterationLimit must wrap ErrNotOptimal, got %v", err)
	}
	if sol.Status != IterLimit {
		t.Fatalf("sparse: status = %v, want IterLimit", sol.Status)
	}
	dsol, derr := build().SolveDense()
	if !errors.Is(derr, ErrIterationLimit) {
		t.Fatalf("dense: want ErrIterationLimit, got %v", derr)
	}
	if dsol.Status != IterLimit {
		t.Fatalf("dense: status = %v, want IterLimit", dsol.Status)
	}
}

// TestDegenerateBland solves Beale's classic cycling example, which loops
// forever under pure Dantzig pricing without an anti-cycling rule. Both
// backends must escape via the Bland's-rule switch and find the optimum
// (objective −0.05).
func TestDegenerateBland(t *testing.T) {
	build := func() *Problem {
		p := NewProblem()
		x1 := p.AddVariable("x1")
		x2 := p.AddVariable("x2")
		x3 := p.AddVariable("x3")
		x4 := p.AddVariable("x4")
		p.AddCost(x1, -0.75)
		p.AddCost(x2, 150)
		p.AddCost(x3, -0.02)
		p.AddCost(x4, 6)
		p.AddNamedConstraint("r0", map[int]float64{x1: 0.25, x2: -60, x3: -1.0 / 25, x4: 9}, LE, 0)
		p.AddNamedConstraint("r1", map[int]float64{x1: 0.5, x2: -90, x3: -1.0 / 50, x4: 3}, LE, 0)
		p.AddNamedConstraint("r2", map[int]float64{x3: 1}, LE, 1)
		return p
	}
	for name, solve := range map[string]func(*Problem) (*Solution, error){
		"sparse": func(p *Problem) (*Solution, error) { return p.Solve() },
		"dense":  func(p *Problem) (*Solution, error) { return p.SolveDense() },
	} {
		sol, err := solve(build())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(sol.Objective-(-0.05)) > 1e-9 {
			t.Fatalf("%s: objective = %v, want -0.05", name, sol.Objective)
		}
	}
}

// TestBasisRoundTrip checks that re-solving the same problem from its own
// optimal basis is a pure warm start: basis accepted and near-zero extra
// pivots.
func TestBasisRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	p := randProblem(rng)
	first, err := p.Solve()
	if err != nil {
		t.Fatalf("first solve: %v", err)
	}
	if first.Basis.Size() == 0 {
		t.Fatal("optimal solve returned empty basis")
	}
	again, err := p.SolveWarm(first.Basis)
	if err != nil {
		t.Fatalf("warm re-solve: %v", err)
	}
	if !again.WarmStarted {
		t.Fatal("identical problem did not warm start")
	}
	if math.Abs(first.Objective-again.Objective) > 1e-9 {
		t.Fatalf("objective changed on re-solve: %v vs %v", first.Objective, again.Objective)
	}
	if again.Iters > first.Iters/2+2 {
		t.Fatalf("warm re-solve took %d pivots (cold took %d); warm start not effective",
			again.Iters, first.Iters)
	}
}
