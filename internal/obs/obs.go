// Package obs is SherLock's campaign observability layer: a zero-dependency
// hierarchical tracer producing spans (campaign → round → {execute, extract,
// encode, solve, perturb}) with typed attributes, plus named counters and
// pluggable sinks (sink.go) and deterministic span-tree reconstruction
// (tree.go).
//
// The paper reports per-phase overheads (Table 5) and window shrinkage
// across rounds (Figures 6–7); this package is what lets the reproduction
// measure those numbers on every run instead of re-deriving them ad hoc,
// and what keeps the hot paths honest as the system scales.
//
// # Determinism rules
//
// Span identity derives from the campaign's *structure*, never from wall
// clock or execution order: a span's ID is its slash-joined path of
// name[:key] segments ("campaign:App-1/round:2/execute/run:07"). Two runs
// of the same campaign — at any Config.Parallelism — produce the same span
// IDs, the same parent/child edges, and the same attribute values, because
// every attribute recorded by the pipeline is itself deterministic (seeds,
// window counts, LP pivots, virtual-time durations). Only wall-clock fields
// (Event.Wall, Event.Dur, and attributes of Kind 'd') differ between runs,
// and the deterministic renderer excludes exactly those. This makes span
// trees directly diffable across runs and parallelism levels: the tree is a
// correctness artifact, not just telemetry.
//
// # Cost
//
// A Tracer with a nil sink still builds spans (so IDs/attributes are always
// coherent) but emits nothing; that no-sink mode is the engine's default
// and is benchmarked to cost < 2% on a full campaign (cmd/bench -obs-out).
// A nil *Tracer and a nil *Span are both valid and make every method a
// no-op, so call sites never need nil checks.
package obs

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Attribute kinds. Kind 'd' (wall-clock duration) is excluded from the
// deterministic rendering; all other kinds must carry deterministic values.
const (
	KindStr   = 's'
	KindInt   = 'i'
	KindFloat = 'f'
	KindBool  = 'b'
	KindDur   = 'd'
)

// Attr is one typed key/value attribute attached to a span or counter.
type Attr struct {
	Key  string
	Kind byte
	Str  string
	Int  int64
	Flt  float64
}

// Str returns a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Kind: KindStr, Str: v} }

// Int returns an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Kind: KindInt, Int: int64(v)} }

// Int64 returns a 64-bit integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Kind: KindInt, Int: v} }

// Float returns a floating-point attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Kind: KindFloat, Flt: v} }

// Bool returns a boolean attribute.
func Bool(k string, v bool) Attr {
	a := Attr{Key: k, Kind: KindBool}
	if v {
		a.Int = 1
	}
	return a
}

// Dur returns a wall-clock duration attribute. Duration attributes are
// nondeterministic by nature and are excluded from the deterministic
// span-tree rendering (they still appear in event-log sinks).
func Dur(k string, v time.Duration) Attr { return Attr{Key: k, Kind: KindDur, Int: int64(v)} }

// value renders the attribute value for the deterministic text form.
func (a Attr) value() string {
	switch a.Kind {
	case KindStr:
		return a.Str
	case KindInt:
		return strconv.FormatInt(a.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(a.Flt, 'g', -1, 64)
	case KindBool:
		if a.Int != 0 {
			return "true"
		}
		return "false"
	case KindDur:
		return time.Duration(a.Int).String()
	}
	return "?"
}

// EventType discriminates sink events.
type EventType uint8

// Event types.
const (
	EvSpanStart EventType = iota
	EvSpanEnd
	EvCounter
)

func (t EventType) String() string {
	switch t {
	case EvSpanStart:
		return "start"
	case EvSpanEnd:
		return "end"
	case EvCounter:
		return "counter"
	}
	return "?"
}

// Event is one observability record delivered to a Sink. Span events carry
// the structural span identity; counter events carry a name and delta.
// Wall and Dur are the only intrinsically nondeterministic fields.
type Event struct {
	Type   EventType
	ID     string // span ID (structural path); "" for counters
	Parent string // parent span ID; "" for roots and counters
	Name   string // final path segment ("round:2"), or counter name
	Wall   time.Time
	Dur    time.Duration // EvSpanEnd only
	Delta  int64         // EvCounter only
	Attrs  []Attr
}

// Tracer produces spans and counters and fans their events into a sink.
// All methods are safe for concurrent use; a nil *Tracer is a no-op.
type Tracer struct {
	sink Sink

	mu       sync.Mutex
	counters map[string]int64
}

// New returns a Tracer emitting into sink. A nil sink is valid: spans and
// counters are still constructed and aggregated, nothing is emitted.
func New(sink Sink) *Tracer {
	return &Tracer{sink: sink, counters: map[string]int64{}}
}

// Root starts a top-level span. key, when non-empty, is appended to the
// name as "name:key" and must be deterministic (an app name, a content
// address — never a timestamp or sequence number).
func (t *Tracer) Root(name, key string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	id := name
	if key != "" {
		id = name + ":" + key
	}
	return t.start(id, "", id, attrs)
}

// Count adds delta to the named counter and emits a counter event. Totals
// are aggregated in the tracer and retrievable with Counters.
func (t *Tracer) Count(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.counters[name] += delta
	t.mu.Unlock()
	t.emit(Event{Type: EvCounter, Name: name, Wall: time.Now(), Delta: delta})
}

// Counters returns a snapshot of the aggregated counter totals.
func (t *Tracer) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.counters))
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}

// CounterList returns the aggregated counters sorted by name — the
// deterministic form.
func (t *Tracer) CounterList() []Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Counter, 0, len(t.counters))
	for k, v := range t.counters {
		out = append(out, Counter{Name: k, Total: v})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counter is one aggregated counter total.
type Counter struct {
	Name  string `json:"name"`
	Total int64  `json:"total"`
}

func (t *Tracer) start(id, parent, name string, attrs []Attr) *Span {
	s := &Span{t: t, id: id, parent: parent, name: name, start: time.Now(), attrs: attrs}
	t.emit(Event{Type: EvSpanStart, ID: id, Parent: parent, Name: name, Wall: s.start, Attrs: attrs})
	return s
}

func (t *Tracer) emit(e Event) {
	if t.sink != nil {
		t.sink.Emit(e)
	}
}

// Span is one timed, attributed node of the campaign trace. A span is
// owned by the goroutine that created it until End; Child/Annotate/End
// must not race with each other on the same span (children may live on
// other goroutines — the parallel runner does exactly that).
// A nil *Span is valid and inert.
type Span struct {
	t      *Tracer
	id     string
	parent string
	name   string
	start  time.Time
	attrs  []Attr
	ended  bool
}

// ID returns the structural span ID ("" on a nil span).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Child starts a sub-span. segment is the path step, already carrying any
// key ("execute", "run:07"); it must be unique among the span's children
// and deterministic across runs.
func (s *Span) Child(segment string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(s.id+"/"+segment, s.id, segment, attrs)
}

// Childf is Child with a formatted segment.
func (s *Span) Childf(format string, args ...any) *Span {
	if s == nil {
		return nil
	}
	return s.Child(fmt.Sprintf(format, args...))
}

// Annotate appends attributes; they ride on the span's end event.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, attrs...)
}

// End closes the span, emitting its end event with the final attribute
// set and the wall-clock duration. End is idempotent.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	now := time.Now()
	s.t.emit(Event{
		Type: EvSpanEnd, ID: s.id, Parent: s.parent, Name: s.name,
		Wall: now, Dur: now.Sub(s.start), Attrs: s.attrs,
	})
}
