package obs

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanIDsAreStructuralPaths(t *testing.T) {
	mem := NewMemorySink()
	tr := New(mem)

	campaign := tr.Root("campaign", "App-1", Int("rounds", 3))
	if got, want := campaign.ID(), "campaign:App-1"; got != want {
		t.Fatalf("root ID = %q, want %q", got, want)
	}
	round := campaign.Childf("round:%02d", 1)
	if got, want := round.ID(), "campaign:App-1/round:01"; got != want {
		t.Fatalf("child ID = %q, want %q", got, want)
	}
	exec := round.Child("execute")
	run := exec.Child("run:07", Str("test", "T1"))
	if got, want := run.ID(), "campaign:App-1/round:01/execute/run:07"; got != want {
		t.Fatalf("grandchild ID = %q, want %q", got, want)
	}
	run.End()
	exec.End()
	round.End()
	campaign.End()

	events := mem.Events()
	if len(events) != 8 { // 4 starts + 4 ends
		t.Fatalf("got %d events, want 8", len(events))
	}
	// End events carry the parent edge.
	var foundRunEnd bool
	for _, e := range events {
		if e.Type == EvSpanEnd && e.Name == "run:07" {
			foundRunEnd = true
			if e.Parent != "campaign:App-1/round:01/execute" {
				t.Errorf("run end parent = %q", e.Parent)
			}
		}
	}
	if !foundRunEnd {
		t.Fatal("no end event for run:07")
	}
}

func TestNilTracerAndNilSpanAreInert(t *testing.T) {
	var tr *Tracer
	span := tr.Root("campaign", "x", Int("a", 1))
	if span != nil {
		t.Fatal("nil tracer produced a span")
	}
	// Every method on a nil span must be a no-op, not a panic.
	span.Annotate(Str("k", "v"))
	if id := span.ID(); id != "" {
		t.Fatalf("nil span ID = %q", id)
	}
	child := span.Child("c")
	if child != nil {
		t.Fatal("nil span produced a child")
	}
	span.Childf("c:%d", 1).End()
	span.End()
	span.End() // idempotent on nil too
	tr.Count("n", 1)
	if c := tr.Counters(); c != nil {
		t.Fatalf("nil tracer counters = %v", c)
	}
	if c := tr.CounterList(); c != nil {
		t.Fatalf("nil tracer counter list = %v", c)
	}
}

func TestNilSinkTracerStillBuildsSpans(t *testing.T) {
	tr := New(nil)
	s := tr.Root("campaign", "App-2")
	defer s.End()
	if got, want := s.Child("round:01").ID(), "campaign:App-2/round:01"; got != want {
		t.Fatalf("ID = %q, want %q", got, want)
	}
	tr.Count("windows", 5)
	tr.Count("windows", 2)
	if got := tr.Counters()["windows"]; got != 7 {
		t.Fatalf("counter = %d, want 7", got)
	}
}

func TestEndIsIdempotent(t *testing.T) {
	mem := NewMemorySink()
	tr := New(mem)
	s := tr.Root("a", "")
	s.End()
	s.End()
	ends := 0
	for _, e := range mem.Events() {
		if e.Type == EvSpanEnd {
			ends++
		}
	}
	if ends != 1 {
		t.Fatalf("got %d end events, want 1", ends)
	}
}

func TestCountersAggregateAndSort(t *testing.T) {
	tr := New(nil)
	tr.Count("windows", 3)
	tr.Count("runs", 2)
	tr.Count("windows", 4)
	list := tr.CounterList()
	if len(list) != 2 || list[0].Name != "runs" || list[1].Name != "windows" {
		t.Fatalf("counter list = %+v", list)
	}
	if list[0].Total != 2 || list[1].Total != 7 {
		t.Fatalf("counter totals = %+v", list)
	}
}

func TestFanoutTeesAndSkipsNil(t *testing.T) {
	a, b := NewMemorySink(), NewMemorySink()
	sink := Fanout(nil, a, nil, b)
	sink.Emit(Event{Type: EvCounter, Name: "n", Delta: 1})
	if len(a.Events()) != 1 || len(b.Events()) != 1 {
		t.Fatalf("fanout delivered %d/%d events", len(a.Events()), len(b.Events()))
	}
	if Fanout(nil, nil) != nil {
		t.Fatal("all-nil fanout should collapse to nil")
	}
	if Fanout(a) != Sink(a) {
		t.Fatal("single-sink fanout should return the sink itself")
	}
}

func TestMemorySinkCopiesAttrs(t *testing.T) {
	mem := NewMemorySink()
	attrs := []Attr{Int("a", 1)}
	mem.Emit(Event{Type: EvSpanEnd, ID: "x", Name: "x", Attrs: attrs})
	attrs[0] = Int("a", 99) // mutate the caller's slice after Emit
	if got := mem.Events()[0].Attrs[0].Int; got != 1 {
		t.Fatalf("sink retained caller's attr slice: got %d", got)
	}
}

// emitSample drives a small two-round campaign shape through a tracer.
func emitSample(sink Sink) {
	tr := New(sink)
	c := tr.Root("campaign", "App-1", Int("rounds", 2), Int64("seed", 42))
	for r := 1; r <= 2; r++ {
		round := c.Childf("round:%02d", r)
		exec := round.Child("execute", Int("runs", 2))
		for i := 0; i < 2; i++ {
			run := exec.Child(fmt.Sprintf("run:%02d", i), Int64("seed", int64(42+i)))
			run.Annotate(Int("windows", 3*i))
			run.End()
		}
		exec.End()
		tr.Count("runs", 2)
		round.Annotate(Int("windows", 6), Bool("warm", r > 1))
		round.End()
	}
	c.Annotate(Int("inferred", 4), Float("lambda", 0.2), Dur("wall", 17*time.Millisecond))
	c.End()
	tr.Count("windows", 12)
}

func TestRenderDeterministicAndExcludesDurations(t *testing.T) {
	a, b := NewMemorySink(), NewMemorySink()
	emitSample(a)
	emitSample(b)
	ra, rb := a.Render(), b.Render()
	if ra != rb {
		t.Fatalf("renders differ:\n%s\n---\n%s", ra, rb)
	}
	if strings.Contains(ra, "wall") {
		t.Fatalf("render leaked a Kind-'d' attribute:\n%s", ra)
	}
	for _, want := range []string{
		"campaign:App-1{inferred=4 lambda=0.2 rounds=2 seed=42}",
		"  round:01{warm=false windows=6}",
		"      run:01{seed=43 windows=3}",
		"counters:",
		"  runs=4",
		"  windows=12",
	} {
		if !strings.Contains(ra, want) {
			t.Errorf("render missing %q:\n%s", want, ra)
		}
	}
}

func TestBuildTreeSortsAndFinalizesAttrs(t *testing.T) {
	mem := NewMemorySink()
	emitSample(mem)
	roots := mem.Tree()
	if len(roots) != 1 || roots[0].ID != "campaign:App-1" {
		t.Fatalf("roots = %+v", roots)
	}
	kids := roots[0].Children
	if len(kids) != 2 || kids[0].Name != "round:01" || kids[1].Name != "round:02" {
		t.Fatalf("children = %+v", kids)
	}
	// End-event attrs replace start-event attrs.
	var warm bool
	for _, a := range kids[1].Attrs {
		if a.Key == "warm" {
			warm = a.Int != 0
		}
	}
	if !warm {
		t.Fatal("round:02 missing finalized warm=true attr")
	}
	// A span with no end event keeps its start attrs.
	tr := New(mem)
	mem.Reset()
	tr.Root("orphan", "", Str("k", "v")) // never ended
	nodes := mem.Tree()
	if len(nodes) != 1 || len(nodes[0].Attrs) != 1 || nodes[0].Attrs[0].Str != "v" {
		t.Fatalf("unended span lost start attrs: %+v", nodes)
	}
}

func TestCounterTotals(t *testing.T) {
	events := []Event{
		{Type: EvCounter, Name: "b", Delta: 2},
		{Type: EvCounter, Name: "a", Delta: 1},
		{Type: EvCounter, Name: "b", Delta: 3},
	}
	got := CounterTotals(events)
	if len(got) != 2 || got[0] != (Counter{Name: "a", Total: 1}) || got[1] != (Counter{Name: "b", Total: 5}) {
		t.Fatalf("totals = %+v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	emitSample(sink)
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}
	events, err := ParseJSONL(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemorySink()
	emitSample(mem)
	// The deterministic rendering survives the wire format.
	if got, want := RenderEvents(events), mem.Render(); got != want {
		t.Fatalf("round-tripped render differs:\n%s\n---\n%s", got, want)
	}
	// Kind-'d' attrs round-trip via the _ns suffix.
	var gotDur bool
	for _, e := range events {
		for _, a := range e.Attrs {
			if a.Key == "wall" && a.Kind == KindDur && a.Int == int64(17*time.Millisecond) {
				gotDur = true
			}
		}
	}
	if !gotDur {
		t.Fatal("duration attribute did not round-trip")
	}
}

func TestParseJSONLRejectsGarbage(t *testing.T) {
	if _, err := ParseJSONL([]byte("{not json\n")); err == nil {
		t.Fatal("want error for malformed line")
	}
	if _, err := ParseJSONL([]byte(`{"ev":"bogus","name":"x","wall":""}` + "\n")); err == nil {
		t.Fatal("want error for unknown event type")
	}
	events, err := ParseJSONL(nil)
	if err != nil || len(events) != 0 {
		t.Fatalf("empty log: events=%v err=%v", events, err)
	}
}

func TestAttrConstructorsAndValues(t *testing.T) {
	cases := []struct {
		attr Attr
		want string
	}{
		{Str("k", "v"), "v"},
		{Int("k", 7), "7"},
		{Int64("k", -9), "-9"},
		{Float("k", 0.25), "0.25"},
		{Bool("k", true), "true"},
		{Bool("k", false), "false"},
		{Dur("k", time.Second), "1s"},
	}
	for _, c := range cases {
		if got := c.attr.value(); got != c.want {
			t.Errorf("%c value = %q, want %q", c.attr.Kind, got, c.want)
		}
	}
}

// TestConcurrentEmit exercises the sink contract under the race detector:
// many goroutines emitting spans and counters into a fanned-out pair of
// sinks, exactly as the parallel runner's workers do.
func TestConcurrentEmit(t *testing.T) {
	mem := NewMemorySink()
	var buf bytes.Buffer
	jsonl := NewJSONLSink(&buf)
	tr := New(Fanout(mem, jsonl))
	root := tr.Root("campaign", "race")

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s := root.Child(fmt.Sprintf("run:%03d", w*perWorker+i), Int("w", w))
				s.Annotate(Int("i", i))
				s.End()
				tr.Count("runs", 1)
			}
		}(w)
	}
	wg.Wait()
	root.End()

	if got := tr.Counters()["runs"]; got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	roots := mem.Tree()
	if len(roots) != 1 || len(roots[0].Children) != workers*perWorker {
		t.Fatalf("tree shape: %d roots, %d children", len(roots), len(roots[0].Children))
	}
	if err := jsonl.Err(); err != nil {
		t.Fatal(err)
	}
	events, err := ParseJSONL(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if RenderEvents(events) != mem.Render() {
		t.Fatal("concurrent JSONL and memory renders diverge")
	}
}
