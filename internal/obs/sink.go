// Sinks: where tracing events go. The sink contract is small — Emit must
// be safe for concurrent use and must not retain the Attrs slice past the
// call (copy if buffering) — which is what lets the parallel runner's
// workers emit without coordination. Three implementations cover the
// pipeline's needs: MemorySink for tests and the sherlockd spans endpoint,
// JSONLSink for streaming event logs on disk, and Fanout for tees. The
// serving layer adds a fourth (a Prometheus-histogram bridge) on its side
// of the dependency edge.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Sink receives tracing events. Emit is called from multiple goroutines
// concurrently and must not retain e.Attrs after returning.
type Sink interface {
	Emit(e Event)
}

// SinkFunc adapts a function to the Sink interface. The function must be
// safe for concurrent calls.
type SinkFunc func(Event)

// Emit calls f.
func (f SinkFunc) Emit(e Event) { f(e) }

// Fanout tees events into every non-nil sink, in order.
func Fanout(sinks ...Sink) Sink {
	compact := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			compact = append(compact, s)
		}
	}
	switch len(compact) {
	case 0:
		return nil
	case 1:
		return compact[0]
	}
	return fanout(compact)
}

type fanout []Sink

func (f fanout) Emit(e Event) {
	for _, s := range f {
		s.Emit(e)
	}
}

// MemorySink buffers every event in memory. Safe for concurrent use.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// NewMemorySink returns an empty in-memory sink.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Emit appends a copy of the event (attrs included).
func (m *MemorySink) Emit(e Event) {
	e.Attrs = append([]Attr(nil), e.Attrs...)
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of the buffered events in arrival order. Arrival
// order is nondeterministic under parallelism; use Tree or Render for the
// deterministic view.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Reset discards all buffered events.
func (m *MemorySink) Reset() {
	m.mu.Lock()
	m.events = nil
	m.mu.Unlock()
}

// Tree reconstructs the deterministic span forest from the buffered
// events (tree.go).
func (m *MemorySink) Tree() []*Node { return BuildTree(m.Events()) }

// Render returns the deterministic text rendering of the buffered span
// forest and counter totals: durations and Kind-'d' attributes excluded,
// children and counters sorted. Byte-identical across runs and
// parallelism levels for the same campaign.
func (m *MemorySink) Render() string { return RenderEvents(m.Events()) }

// jsonEvent is the JSONL wire schema. Wall clock is RFC3339Nano; the
// duration is nanoseconds. Attribute values keep their native JSON types.
type jsonEvent struct {
	Ev     string         `json:"ev"`
	ID     string         `json:"id,omitempty"`
	Parent string         `json:"parent,omitempty"`
	Name   string         `json:"name"`
	Wall   string         `json:"wall"`
	DurNS  int64          `json:"dur_ns,omitempty"`
	Delta  int64          `json:"delta,omitempty"`
	Attrs  map[string]any `json:"attrs,omitempty"`
}

// durSuffix marks wall-clock duration attributes on the JSON wire, so the
// nondeterministic kind survives a round-trip through ParseJSONL. Pipeline
// attribute keys must not end with it (deterministic virtual-time attrs
// use a plain "_ns" suffix, which stays an integer).
const durSuffix = "_wall_ns"

// attrMap converts attrs to their JSON representation.
func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	out := make(map[string]any, len(attrs))
	for _, a := range attrs {
		switch a.Kind {
		case KindStr:
			out[a.Key] = a.Str
		case KindInt:
			out[a.Key] = a.Int
		case KindFloat:
			out[a.Key] = a.Flt
		case KindBool:
			out[a.Key] = a.Int != 0
		case KindDur:
			out[a.Key+durSuffix] = a.Int
		}
	}
	return out
}

// JSONLSink streams one JSON object per event to a writer — the on-disk
// event-log format of `sherlock -trace-out`. Safe for concurrent use; each
// event is written atomically under the sink's lock.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLSink returns a sink writing JSON lines to w. The caller owns w's
// lifecycle; wrap it in a bufio.Writer for throughput and call Flush/Close
// accordingly. The first write error is sticky and retrievable with Err.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit writes one JSON line.
func (j *JSONLSink) Emit(e Event) {
	line, err := json.Marshal(jsonEvent{
		Ev:     e.Type.String(),
		ID:     e.ID,
		Parent: e.Parent,
		Name:   e.Name,
		Wall:   e.Wall.UTC().Format(time.RFC3339Nano),
		DurNS:  int64(e.Dur),
		Delta:  e.Delta,
		Attrs:  attrMap(e.Attrs),
	})
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		j.err = err
	}
}

// Err returns the first write or marshal error, if any.
func (j *JSONLSink) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ParseJSONL decodes an event log produced by JSONLSink back into events
// (for tooling that reconstructs trees from a file). Attribute kinds are
// recovered from the JSON value types; "_wall_ns"-suffixed numeric
// attributes come back as duration attrs.
func ParseJSONL(data []byte) ([]Event, error) {
	var events []Event
	start := 0
	for i := 0; i <= len(data); i++ {
		if i != len(data) && data[i] != '\n' {
			continue
		}
		line := data[start:i]
		start = i + 1
		if len(line) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(line, &je); err != nil {
			return nil, fmt.Errorf("obs: event log line %d: %w", len(events)+1, err)
		}
		e := Event{ID: je.ID, Parent: je.Parent, Name: je.Name, Dur: time.Duration(je.DurNS), Delta: je.Delta}
		switch je.Ev {
		case "start":
			e.Type = EvSpanStart
		case "end":
			e.Type = EvSpanEnd
		case "counter":
			e.Type = EvCounter
		default:
			return nil, fmt.Errorf("obs: event log line %d: unknown event type %q", len(events)+1, je.Ev)
		}
		if je.Wall != "" {
			if w, err := time.Parse(time.RFC3339Nano, je.Wall); err == nil {
				e.Wall = w
			}
		}
		for k, v := range je.Attrs {
			switch v := v.(type) {
			case string:
				e.Attrs = append(e.Attrs, Str(k, v))
			case bool:
				e.Attrs = append(e.Attrs, Bool(k, v))
			case float64:
				if len(k) > len(durSuffix) && k[len(k)-len(durSuffix):] == durSuffix {
					e.Attrs = append(e.Attrs, Dur(k[:len(k)-len(durSuffix)], time.Duration(int64(v))))
				} else if v == float64(int64(v)) {
					e.Attrs = append(e.Attrs, Int64(k, int64(v)))
				} else {
					e.Attrs = append(e.Attrs, Float(k, v))
				}
			case json.Number:
				if n, err := v.Int64(); err == nil {
					e.Attrs = append(e.Attrs, Int64(k, n))
				} else if f, err := strconv.ParseFloat(v.String(), 64); err == nil {
					e.Attrs = append(e.Attrs, Float(k, f))
				}
			}
		}
		events = append(events, e)
	}
	return events, nil
}
