// Deterministic span-tree reconstruction and rendering. Sinks receive
// events in completion order, which is nondeterministic under a parallel
// runner; the tree view re-keys everything by structural span ID, sorts
// children and counters, and drops wall-clock fields — yielding a form
// that is byte-identical across runs and parallelism levels for the same
// campaign (the golden tests enforce it).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Node is one reconstructed span. DurNS is wall clock and therefore
// nondeterministic; it is serialized for human consumption (the sherlockd
// spans endpoint) but excluded from the deterministic text rendering.
type Node struct {
	ID       string  `json:"id"`
	Name     string  `json:"name"`
	Attrs    []Attr  `json:"-"`
	DurNS    int64   `json:"dur_ns"`
	Children []*Node `json:"children,omitempty"`
}

// MarshalJSON renders the node with its attributes as a JSON object (the
// sherlockd spans endpoint's schema).
func (n *Node) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID       string         `json:"id"`
		Name     string         `json:"name"`
		Attrs    map[string]any `json:"attrs,omitempty"`
		DurNS    int64          `json:"dur_ns"`
		Children []*Node        `json:"children,omitempty"`
	}{n.ID, n.Name, attrMap(n.Attrs), n.DurNS, n.Children})
}

// BuildTree reconstructs the span forest from events. Nodes are created
// from start events and finalized (attrs, duration) by end events; spans
// that never ended keep their start-time attrs. Roots and children are
// sorted by ID. Counter events are ignored here (see Counters).
func BuildTree(events []Event) []*Node {
	nodes := map[string]*Node{}
	parent := map[string]string{}
	order := []string{}
	for _, e := range events {
		if e.Type == EvCounter {
			continue
		}
		n, ok := nodes[e.ID]
		if !ok {
			n = &Node{ID: e.ID, Name: e.Name}
			nodes[e.ID] = n
			parent[e.ID] = e.Parent
			order = append(order, e.ID)
		}
		if e.Type == EvSpanEnd {
			n.Attrs = append([]Attr(nil), e.Attrs...)
			n.DurNS = int64(e.Dur)
		} else if n.Attrs == nil {
			n.Attrs = append([]Attr(nil), e.Attrs...)
		}
	}
	var roots []*Node
	for _, id := range order {
		n := nodes[id]
		if p, ok := nodes[parent[id]]; ok && parent[id] != "" {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	return roots
}

func sortNodes(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool { return ns[i].ID < ns[j].ID })
	for _, n := range ns {
		sortNodes(n.Children)
	}
}

// CounterTotals aggregates counter events by name, sorted — the
// deterministic counter view of an event stream.
func CounterTotals(events []Event) []Counter {
	totals := map[string]int64{}
	for _, e := range events {
		if e.Type == EvCounter {
			totals[e.Name] += e.Delta
		}
	}
	out := make([]Counter, 0, len(totals))
	for k, v := range totals {
		out = append(out, Counter{Name: k, Total: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Render writes the deterministic text form of a span forest: one line per
// span, two-space indentation, attributes sorted by key, wall-clock
// durations and Kind-'d' attributes excluded.
func Render(w io.Writer, roots []*Node) {
	for _, n := range roots {
		renderNode(w, n, 0)
	}
}

func renderNode(w io.Writer, n *Node, depth int) {
	fmt.Fprintf(w, "%s%s", strings.Repeat("  ", depth), n.Name)
	attrs := make([]Attr, 0, len(n.Attrs))
	for _, a := range n.Attrs {
		if a.Kind != KindDur {
			attrs = append(attrs, a)
		}
	}
	sort.SliceStable(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
	if len(attrs) > 0 {
		parts := make([]string, len(attrs))
		for i, a := range attrs {
			parts[i] = a.Key + "=" + a.value()
		}
		fmt.Fprintf(w, "{%s}", strings.Join(parts, " "))
	}
	fmt.Fprintln(w)
	for _, c := range n.Children {
		renderNode(w, c, depth+1)
	}
}

// RenderEvents renders an event stream deterministically: the span forest
// followed by the sorted counter totals.
func RenderEvents(events []Event) string {
	var b strings.Builder
	Render(&b, BuildTree(events))
	if counters := CounterTotals(events); len(counters) > 0 {
		fmt.Fprintln(&b, "counters:")
		for _, c := range counters {
			fmt.Fprintf(&b, "  %s=%d\n", c.Name, c.Total)
		}
	}
	return b.String()
}
