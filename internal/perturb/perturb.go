// Package perturb implements SherLock's Perturber (paper Section 3, 4.3):
// it plans delay injections before the operations the Solver currently
// believes are releases, and afterwards analyses how each delayed run
// reacted, refining acquire/release windows (Figure 2 b/c):
//
//   - If a delay before release candidate r failed to hold back the second
//     conflicting access b (b executed while the delay was still pending),
//     r cannot be the release protecting the pair: the real release, if
//     any, lies between a and r — the release window shrinks to (a, r).
//   - If the delay propagated (b executed only after the delayed r
//     completed), the inference gains support and the acquire window
//     shrinks to (r, b).
package perturb

import (
	"sort"

	"sherlock/internal/obs"
	"sherlock/internal/sched"
	"sherlock/internal/trace"
	"sherlock/internal/window"
)

// DefaultDelay is the injected delay in virtual ns (paper: 100 ms wall
// clock against a 1 s Near; here 100 µs against a 1 ms Near — same ratio).
const DefaultDelay int64 = 100_000

// Plan maps candidate keys to the delay injected before every dynamic
// instance of the operation.
type Plan map[trace.Key]int64

// BuildPlan returns a plan delaying every current release candidate.
// (The paper injects before every dynamic instance, deterministically; it
// reports probabilistic injection makes no difference.)
func BuildPlan(releases []trace.Key, delay int64) Plan {
	if len(releases) == 0 {
		return nil
	}
	p := make(Plan, len(releases))
	for _, k := range releases {
		p[k] = delay
	}
	return p
}

// BuildPlanObs is BuildPlan recording a "perturb" child span under parent
// with the plan's (deterministic) shape: how many release candidates will
// be delayed next round and by how much.
func BuildPlanObs(parent *obs.Span, releases []trace.Key, delay int64) Plan {
	p := BuildPlan(releases, delay)
	span := parent.Child("perturb",
		obs.Int("releases", len(releases)),
		obs.Int64("delay_virtual_ns", delay),
		obs.Int("planned", len(p)))
	span.End()
	return p
}

// Refine applies the propagation analysis to every window extracted from a
// delayed run, returning windows with (possibly) trimmed candidate lists.
// Windows from undelayed runs pass through unchanged.
func Refine(ws []window.Window, delays []sched.DelayInstance) []window.Window {
	if len(delays) == 0 {
		return ws
	}
	sorted := append([]sched.DelayInstance(nil), delays...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })

	out := make([]window.Window, 0, len(ws))
	for _, w := range ws {
		out = append(out, refineOne(w, sorted))
	}
	return out
}

// refineOne trims one window according to every delay instance that fired
// inside its release window (thread of a, between a and b).
func refineOne(w window.Window, delays []sched.DelayInstance) window.Window {
	relHi := w.TB          // exclusive upper bound for release candidates
	var propEnd int64 = -1 // latest completion of a propagated delay
	for _, d := range delays {
		if d.Thread != w.ThreadA {
			continue
		}
		if d.Start <= w.TA || d.Start >= relHi {
			continue
		}
		// Only release-capable delayed operations refine windows: a delay
		// before a read/begin says nothing about who released.
		if !trace.ReleaseCapable(d.Key.Kind()) {
			continue
		}
		if w.TB < d.End {
			// b executed during the delay: not propagated (Figure 2b).
			// The real release precedes r.
			relHi = d.Start
		} else if d.End > propEnd {
			// Propagated (Figure 2c): the acquire is at or after the gap.
			propEnd = d.End
		}
	}
	if relHi == w.TB && propEnd < 0 {
		return w
	}
	nw := w
	nw.RelEvents = filterBefore(w.RelEvents, relHi)
	if propEnd >= 0 {
		// Refine the acquire window to (r, b) — with one subtlety the
		// timestamps force on us: a blocking acquire (e.g. WaitOne) logs
		// its before-call event when the thread *enters* the call, i.e.
		// before the delayed release executed. The operation that was
		// blocking thread B across the propagation gap is therefore the
		// LAST acquire-capable event before the gap's end; keep it and
		// everything after, drop older noise.
		var tLast int64 = -1
		for _, e := range w.AcqEvents {
			if e.Time < propEnd && trace.AcquireCapable(e.Key.Kind()) && e.Time > tLast {
				tLast = e.Time
			}
		}
		if tLast < 0 {
			tLast = propEnd
		}
		nw.AcqEvents = filterAtOrAfter(w.AcqEvents, tLast)
	}
	return nw
}

func filterBefore(evs []window.CandEvent, hi int64) []window.CandEvent {
	out := make([]window.CandEvent, 0, len(evs))
	for _, e := range evs {
		if e.Time < hi {
			out = append(out, e)
		}
	}
	return out
}

func filterAtOrAfter(evs []window.CandEvent, lo int64) []window.CandEvent {
	out := make([]window.CandEvent, 0, len(evs))
	for _, e := range evs {
		if e.Time >= lo {
			out = append(out, e)
		}
	}
	return out
}
