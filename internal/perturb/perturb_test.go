package perturb

import (
	"testing"

	"sherlock/internal/sched"
	"sherlock/internal/trace"
	"sherlock/internal/window"
)

func wk(n string) trace.Key { return trace.KeyFor(trace.KindWrite, n) }
func rk(n string) trace.Key { return trace.KeyFor(trace.KindRead, n) }
func bk(n string) trace.Key { return trace.KeyFor(trace.KindBegin, n) }
func ek(n string) trace.Key { return trace.KeyFor(trace.KindEnd, n) }

func TestBuildPlan(t *testing.T) {
	p := BuildPlan([]trace.Key{wk("C::f"), ek("C::m")}, 500)
	if len(p) != 2 || p[wk("C::f")] != 500 || p[ek("C::m")] != 500 {
		t.Errorf("plan = %v", p)
	}
	if BuildPlan(nil, 500) != nil {
		t.Error("empty release set must yield nil plan")
	}
}

// Window under test: a at t=100 (thread 0), b at t=1000 (thread 1), release
// candidates r1(write X, t=200), r2(write Y, t=400), acquire candidates
// q1(read, t=300), q2(read, t=700).
func testWindow() window.Window {
	return window.Window{
		Pair: window.PairID{First: 1, Second: 2}, ThreadA: 0, ThreadB: 1, TA: 100, TB: 1000,
		RelEvents: []window.CandEvent{
			{Key: wk("C::x"), Time: 200},
			{Key: wk("C::y"), Time: 400},
		},
		AcqEvents: []window.CandEvent{
			{Key: rk("C::q"), Time: 300},
			{Key: rk("C::p"), Time: 700},
		},
	}
}

func TestRefineNoDelaysPassthrough(t *testing.T) {
	w := testWindow()
	out := Refine([]window.Window{w}, nil)
	if len(out) != 1 || len(out[0].RelEvents) != 2 || len(out[0].AcqEvents) != 2 {
		t.Errorf("pass-through failed: %+v", out)
	}
}

func TestRefineNotPropagated(t *testing.T) {
	// Delay before the write at t=400 (delay [390, 1490]); b at t=1000
	// executed during the delay → not propagated → release window trims to
	// before 390, dropping wk(C::y)... wait, the delayed op is C::y itself
	// whose delayed instance would now be outside the original window; the
	// recorded Start is inside.
	d := sched.DelayInstance{Key: wk("C::y"), Thread: 0, Start: 390, End: 1490}
	out := Refine([]window.Window{testWindow()}, []sched.DelayInstance{d})
	rel := out[0].RelEvents
	if len(rel) != 1 || rel[0].Key != wk("C::x") {
		t.Errorf("release events after non-propagation = %v, want only C::x", rel)
	}
	// Acquire side untouched.
	if len(out[0].AcqEvents) != 2 {
		t.Errorf("acquire events = %v", out[0].AcqEvents)
	}
}

func TestRefinePropagated(t *testing.T) {
	// Delay [190, 690] before the write at ~t=200; b at t=1000 waited
	// (after delay end) → propagated → acquire window keeps the last
	// acquire-capable event before 690 (q1 at 300) and everything after.
	d := sched.DelayInstance{Key: wk("C::x"), Thread: 0, Start: 190, End: 690}
	out := Refine([]window.Window{testWindow()}, []sched.DelayInstance{d})
	acq := out[0].AcqEvents
	if len(acq) != 2 {
		t.Fatalf("acquire events = %v, want q at 300 kept as last-before-gap plus p at 700", acq)
	}
	// Release side untouched on propagation.
	if len(out[0].RelEvents) != 2 {
		t.Errorf("release events = %v", out[0].RelEvents)
	}
}

func TestRefinePropagatedDropsEarlyNoise(t *testing.T) {
	w := testWindow()
	// Add early noise on the acquire side well before the gap.
	w.AcqEvents = append([]window.CandEvent{
		{Key: rk("C::noise"), Time: 150},
		{Key: rk("C::noise2"), Time: 200},
	}, w.AcqEvents...)
	d := sched.DelayInstance{Key: wk("C::x"), Thread: 0, Start: 290, End: 690}
	out := Refine([]window.Window{w}, []sched.DelayInstance{d})
	for _, e := range out[0].AcqEvents {
		if e.Key == rk("C::noise") || e.Key == rk("C::noise2") {
			t.Errorf("early noise %v survived refinement: %v", e.Key, out[0].AcqEvents)
		}
	}
	// q1 at t=300 is the last acquire-capable before the gap end: kept.
	found := false
	for _, e := range out[0].AcqEvents {
		if e.Key == rk("C::q") {
			found = true
		}
	}
	if !found {
		t.Error("last-before-gap acquire candidate was dropped")
	}
}

func TestRefineIgnoresOtherThreads(t *testing.T) {
	d := sched.DelayInstance{Key: wk("C::x"), Thread: 5, Start: 390, End: 1490}
	out := Refine([]window.Window{testWindow()}, []sched.DelayInstance{d})
	if len(out[0].RelEvents) != 2 || len(out[0].AcqEvents) != 2 {
		t.Error("delay on unrelated thread must not refine the window")
	}
}

func TestRefineIgnoresAcquireCapableDelays(t *testing.T) {
	// A delay before a read/begin says nothing about releases.
	d := sched.DelayInstance{Key: bk("C::m"), Thread: 0, Start: 390, End: 1490}
	out := Refine([]window.Window{testWindow()}, []sched.DelayInstance{d})
	if len(out[0].RelEvents) != 2 {
		t.Error("acquire-capable delayed key must not trim the release window")
	}
}

func TestRefineDelayOutsideWindow(t *testing.T) {
	before := sched.DelayInstance{Key: wk("C::x"), Thread: 0, Start: 50, End: 80}
	after := sched.DelayInstance{Key: wk("C::x"), Thread: 0, Start: 1200, End: 1500}
	out := Refine([]window.Window{testWindow()}, []sched.DelayInstance{before, after})
	if len(out[0].RelEvents) != 2 || len(out[0].AcqEvents) != 2 {
		t.Error("delays outside (TA, TB) must not refine the window")
	}
}

func TestRefineCanEmptyReleaseWindow(t *testing.T) {
	// Non-propagation with the delay starting right after TA empties the
	// release side — a data-race observation the Observer will record.
	d := sched.DelayInstance{Key: wk("C::x"), Thread: 0, Start: 150, End: 1490}
	out := Refine([]window.Window{testWindow()}, []sched.DelayInstance{d})
	if len(out[0].RelEvents) != 0 {
		t.Errorf("release events = %v, want empty", out[0].RelEvents)
	}
	if !out[0].RacyRelease() {
		t.Error("emptied release window must read as a data-race observation")
	}
}
