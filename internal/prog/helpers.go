// Construction helpers: short factory functions that keep benchmark
// application definitions readable. Durations are virtual nanoseconds.
package prog

import "sherlock/internal/trace"

// Cp returns a Compute statement of dur virtual ns with ±30% jitter.
func Cp(dur int64) *Compute { return &Compute{Dur: dur, Jitter: 0.3} }

// CpJ returns a Compute statement with explicit jitter.
func CpJ(dur int64, jitter float64) *Compute { return &Compute{Dur: dur, Jitter: jitter} }

// Rd returns a heap read of field on slot.
func Rd(field, slot string) *Read { return &Read{Field: field, Slot: slot} }

// Wr returns a heap write of val to field on slot.
func Wr(field, slot string, val int64) *Write { return &Write{Field: field, Slot: slot, Val: val} }

// Spin returns a spin-wait until field on slot equals want, polling every
// backoff ns.
func Spin(field, slot string, want, backoff int64) *SpinUntil {
	return &SpinUntil{Field: field, Slot: slot, Want: want, Backoff: backoff}
}

// Do returns a call to method with receiver slot.
func Do(method, slot string) *Call { return &Call{Method: method, Slot: slot} }

// Rep repeats body n times.
func Rep(n int, body ...Stmt) *Loop { return &Loop{N: n, Body: body} }

// Zz returns a Sleep of dur ns.
func Zz(dur int64) *Sleep { return &Sleep{Dur: dur} }

// Lock / Unlock are Monitor.Enter / Monitor.Exit.
func Lock(lock string) *AcquireLock   { return &AcquireLock{Lock: lock} }
func Unlock(lock string) *ReleaseLock { return &ReleaseLock{Lock: lock} }

// Set / Wait / All are EventWaitHandle.Set / WaitHandle.WaitOne / WaitAll.
func Set(sem string) *SemSet      { return &SemSet{Sem: sem} }
func Wait(sem string) *SemWait    { return &SemWait{Sem: sem} }
func All(sems ...string) *WaitAll { return &WaitAll{Sems: sems} }

// PostQ / RecvQ are DataflowBlock Post / Receive (+handler).
func PostQ(q string) *Post { return &Post{Queue: q} }
func RecvQ(q, handler, slot string) *Receive {
	return &Receive{Queue: q, Handler: handler, HandlerSlot: slot}
}

// PostAs / RecvAs are producer/consumer queue operations traced under a
// custom API name (e.g. System.IO.Stream::CopyTo / ::Read).
func PostAs(api, q string) *Post { return &Post{Queue: q, API: api} }
func RecvAs(api, q string) *Receive {
	return &Receive{Queue: q, API: api}
}

// Await blocks until handle completes, traced under api (default
// TaskAwaiter.GetResult when api is empty).
func Await(handle string) *LibWait {
	return &LibWait{API: APIGetResult, Handle: handle}
}

// Rendezvous is Barrier.SignalAndWait on the named barrier with the given
// party count.
func Rendezvous(barrier string, parties int) *BarrierWait {
	return &BarrierWait{Barrier: barrier, Parties: parties}
}

// Go forks method on slot via api, binding the thread to handle.
func Go(api ForkAPI, method, slot, handle string) *Fork {
	return &Fork{API: api, Method: method, Slot: slot, Handle: handle}
}

// JoinT / WaitT join a forked thread by handle.
func JoinT(handle string) *Join { return &Join{API: JoinThread, Handle: handle} }
func WaitT(handle string) *Join { return &Join{API: JoinTask, Handle: handle} }

// Then is Task.ContinueWith: run method on slot after handle completes.
func Then(handle, method, slot, newHandle string) *ContinueWith {
	return &ContinueWith{Handle: handle, Method: method, Slot: slot, NewHandle: newHandle}
}

// ListAdd / ListRead are thread-unsafe collection accesses
// (System.Collections.Generic.List) — TSVD-eligible conflicting calls.
func ListAdd(slot string) *UnsafeCall {
	return &UnsafeCall{API: "System.Collections.Generic.List::Add", Slot: slot, Acc: trace.AccWrite, Dur: 60}
}
func ListRead(slot string) *UnsafeCall {
	return &UnsafeCall{API: "System.Collections.Generic.List::get_Item", Slot: slot, Acc: trace.AccRead, Dur: 40}
}

// DictAdd / DictRead are thread-unsafe Dictionary accesses.
func DictAdd(slot string) *UnsafeCall {
	return &UnsafeCall{API: "System.Collections.Generic.Dictionary::Add", Slot: slot, Acc: trace.AccWrite, Dur: 70}
}
func DictRead(slot string) *UnsafeCall {
	return &UnsafeCall{API: "System.Collections.Generic.Dictionary::TryGetValue", Slot: slot, Acc: trace.AccRead, Dur: 50}
}

// Reader-writer lock helpers.
func RdLock(lock string) *RWAcquireRead   { return &RWAcquireRead{Lock: lock} }
func RdUnlock(lock string) *RWReleaseRead { return &RWReleaseRead{Lock: lock} }
func Upgrade(lock string) *RWUpgrade      { return &RWUpgrade{Lock: lock} }
func Downgrade(lock string) *RWDowngrade  { return &RWDowngrade{Lock: lock} }

// Hidden (framework-internal) primitives.
func HLock(lock string) *HiddenAcquire   { return &HiddenAcquire{Lock: lock} }
func HUnlock(lock string) *HiddenRelease { return &HiddenRelease{Lock: lock} }
func HSignal(sem string) *HiddenSignal   { return &HiddenSignal{Sem: sem} }
func HWait(sem string) *HiddenWait       { return &HiddenWait{Sem: sem} }
func HGo(method, slot, handle string) *HiddenFork {
	return &HiddenFork{Method: method, Slot: slot, Handle: handle}
}

// StaticInit models first-use static initialization of class, running ctor
// exactly once.
func StaticInit(class, ctor string) *EnsureInit { return &EnsureInit{Class: class, Ctor: ctor} }

// GC drops the last reference to slot; the runtime runs finalizer after
// gcDelay ns.
func GC(slot, finalizer string, gcDelay int64) *FinalizeObj {
	return &FinalizeObj{Slot: slot, Method: finalizer, GCDelay: gcDelay}
}

// Keys for truth annotations.

// RK / WK / BK / EK build read/write/begin/end candidate keys.
func RK(name string) trace.Key { return trace.KeyFor(trace.KindRead, name) }
func WK(name string) trace.Key { return trace.KeyFor(trace.KindWrite, name) }
func BK(name string) trace.Key { return trace.KeyFor(trace.KindBegin, name) }
func EK(name string) trace.Key { return trace.KeyFor(trace.KindEnd, name) }
