package prog

import (
	"testing"

	"sherlock/internal/trace"
)

func TestStatementHelpers(t *testing.T) {
	if c := Cp(100); c.Dur != 100 || c.Jitter != 0.3 {
		t.Errorf("Cp = %+v", c)
	}
	if c := CpJ(50, 0.9); c.Dur != 50 || c.Jitter != 0.9 {
		t.Errorf("CpJ = %+v", c)
	}
	if r := Rd("C::f", "o"); r.Field != "C::f" || r.Slot != "o" {
		t.Errorf("Rd = %+v", r)
	}
	if w := Wr("C::f", "o", 7); w.Val != 7 {
		t.Errorf("Wr = %+v", w)
	}
	if s := Spin("C::f", "o", 1, 99); s.Want != 1 || s.Backoff != 99 {
		t.Errorf("Spin = %+v", s)
	}
	if d := Do("C::m", "o"); d.Method != "C::m" {
		t.Errorf("Do = %+v", d)
	}
	if l := Rep(3, Cp(1)); l.N != 3 || len(l.Body) != 1 {
		t.Errorf("Rep = %+v", l)
	}
	if z := Zz(40); z.Dur != 40 {
		t.Errorf("Zz = %+v", z)
	}
}

func TestLibraryHelpers(t *testing.T) {
	if l := Lock("L"); l.Lock != "L" {
		t.Errorf("Lock = %+v", l)
	}
	if u := Unlock("L"); u.Lock != "L" {
		t.Errorf("Unlock = %+v", u)
	}
	if s := Set("S"); s.Sem != "S" {
		t.Errorf("Set = %+v", s)
	}
	if w := Wait("S"); w.Sem != "S" {
		t.Errorf("Wait = %+v", w)
	}
	if a := All("S1", "S2"); len(a.Sems) != 2 {
		t.Errorf("All = %+v", a)
	}
	if p := PostQ("Q"); p.Queue != "Q" || p.API != "" {
		t.Errorf("PostQ = %+v", p)
	}
	if r := RecvQ("Q", "C::h", "o"); r.Handler != "C::h" {
		t.Errorf("RecvQ = %+v", r)
	}
	if p := PostAs("X::api", "Q"); p.API != "X::api" {
		t.Errorf("PostAs = %+v", p)
	}
	if r := RecvAs("X::api", "Q"); r.API != "X::api" || r.Handler != "" {
		t.Errorf("RecvAs = %+v", r)
	}
	if a := Await("h"); a.API != APIGetResult || a.Handle != "h" {
		t.Errorf("Await = %+v", a)
	}
	if b := Rendezvous("B", 3); b.Barrier != "B" || b.Parties != 3 {
		t.Errorf("Rendezvous = %+v", b)
	}
	if g := Go(ForkTaskNew, "C::m", "o", "h"); g.API != ForkTaskNew || g.Handle != "h" {
		t.Errorf("Go = %+v", g)
	}
	if j := JoinT("h"); j.API != JoinThread {
		t.Errorf("JoinT = %+v", j)
	}
	if j := WaitT("h"); j.API != JoinTask {
		t.Errorf("WaitT = %+v", j)
	}
	if c := Then("a", "C::m", "o", "b"); c.Handle != "a" || c.NewHandle != "b" {
		t.Errorf("Then = %+v", c)
	}
}

func TestUnsafeCollectionHelpers(t *testing.T) {
	cases := []struct {
		st  *UnsafeCall
		api string
		acc trace.Acc
	}{
		{ListAdd("l"), "System.Collections.Generic.List::Add", trace.AccWrite},
		{ListRead("l"), "System.Collections.Generic.List::get_Item", trace.AccRead},
		{DictAdd("d"), "System.Collections.Generic.Dictionary::Add", trace.AccWrite},
		{DictRead("d"), "System.Collections.Generic.Dictionary::TryGetValue", trace.AccRead},
	}
	for _, c := range cases {
		if c.st.API != c.api || c.st.Acc != c.acc || c.st.Dur == 0 {
			t.Errorf("unsafe helper = %+v, want api %s acc %v", c.st, c.api, c.acc)
		}
	}
}

func TestRWAndHiddenHelpers(t *testing.T) {
	if r := RdLock("rw"); r.Lock != "rw" {
		t.Errorf("RdLock = %+v", r)
	}
	if r := RdUnlock("rw"); r.Lock != "rw" {
		t.Errorf("RdUnlock = %+v", r)
	}
	if u := Upgrade("rw"); u.Lock != "rw" {
		t.Errorf("Upgrade = %+v", u)
	}
	if d := Downgrade("rw"); d.Lock != "rw" {
		t.Errorf("Downgrade = %+v", d)
	}
	if h := HLock("x"); h.Lock != "x" {
		t.Errorf("HLock = %+v", h)
	}
	if h := HUnlock("x"); h.Lock != "x" {
		t.Errorf("HUnlock = %+v", h)
	}
	if h := HSignal("s"); h.Sem != "s" {
		t.Errorf("HSignal = %+v", h)
	}
	if h := HWait("s"); h.Sem != "s" {
		t.Errorf("HWait = %+v", h)
	}
	if h := HGo("C::m", "o", "h"); h.Method != "C::m" || h.Handle != "h" {
		t.Errorf("HGo = %+v", h)
	}
	if s := StaticInit("C", "C::.cctor"); s.Class != "C" || s.Ctor != "C::.cctor" {
		t.Errorf("StaticInit = %+v", s)
	}
	if g := GC("o", "C::Fin", 500); g.Method != "C::Fin" || g.GCDelay != 500 {
		t.Errorf("GC = %+v", g)
	}
}

func TestSiteAccessors(t *testing.T) {
	s := Cp(1)
	s.SetSite(42)
	if s.Site() != 42 {
		t.Errorf("Site = %d", s.Site())
	}
}
