// Package prog defines the concurrent-program model that stands in for the
// C# application binaries of the SherLock paper. A Program is a set of
// application methods and unit tests written in a small statement DSL
// (stmt.go); internal/sched executes it under a seeded discrete-event
// scheduler, producing traces in the paper's log schema.
//
// Each Program carries a machine-readable ground Truth so the evaluation
// harness can score inference results exactly the way the paper's manual
// inspection did (Tables 2, 4, 5; Figure 4).
package prog

import (
	"fmt"
	"sort"
	"sync"

	"sherlock/internal/trace"
)

// C#-style library API names used by the visible primitives.
const (
	APIMonitorEnter  = "System.Threading.Monitor::Enter"
	APIMonitorExit   = "System.Threading.Monitor::Exit"
	APISemSet        = "System.Threading.EventWaitHandle::Set"
	APISemWait       = "System.Threading.WaitHandle::WaitOne"
	APIWaitAll       = "System.Threading.WaitHandle::WaitAll"
	APIPost          = "System.Threading.Tasks.Dataflow.DataflowBlock::Post"
	APIReceive       = "System.Threading.Tasks.Dataflow.DataflowBlock::Receive"
	APIContinueWith  = "System.Threading.Tasks.Task::ContinueWith"
	APIRWAcquireRead = "System.Threading.ReaderWriterLock::AcquireReaderLock"
	APIRWReleaseRead = "System.Threading.ReaderWriterLock::ReleaseReaderLock"
	APIRWUpgrade     = "System.Threading.ReaderWriterLock::UpgradeToWriterLock"
	APIRWDowngrade   = "System.Threading.ReaderWriterLock::DowngradeFromWriterLock"
	APIGetResult     = "System.Runtime.CompilerServices.TaskAwaiter::GetResult"
	APIBarrier       = "System.Threading.Barrier::SignalAndWait"
)

// Method is an application method: a named body of statements. The receiver
// object is supplied by the caller (Call/Fork/... statements).
type Method struct {
	Name string // fully qualified "Class::Member"
	Body []Stmt
}

// Test is one unit test. Init, when non-empty, names a method the test
// framework runs before the body with a framework-enforced (hidden)
// happens-before edge — the TestInitialize pattern of paper Figure 3.E.
type Test struct {
	Name string
	Init string
	Body []Stmt
}

// FPCategory labels a misclassification bucket from the paper's Tables 2/4.
type FPCategory string

// Misclassification buckets.
const (
	CatDataRacy   FPCategory = "data-racy"    // participates in a true data race
	CatInstrError FPCategory = "instr-errors" // caused by observer skip-list errors
	CatDoubleRole FPCategory = "double-roles" // Single-Role violation (UpgradeToWriterLock)
	CatDispose    FPCategory = "dispose"      // unrefinable GC/dispose windows
	CatStaticCtor FPCategory = "static-ctor"  // static-constructor pairing failures
	CatOther      FPCategory = "others"       // everything else
)

// Truth is the ground-truth annotation of a Program, playing the role of the
// paper authors' manual inspection.
type Truth struct {
	// Syncs maps every true synchronization operation to its role.
	Syncs map[trace.Key]trace.Role
	// RacyKeys marks operations that participate in true data races. An
	// inferred op in this set counts in Table 2's "Data Racy" column.
	RacyKeys map[trace.Key]bool
	// RacyFields names heap fields (or unsafe-collection objects, by static
	// name) whose conflicting accesses form true data races; a race
	// detector report on any other location is a false race (Table 3).
	RacyFields map[string]bool
	// HiddenMethods lists application methods the Observer's skip-list
	// heuristics erroneously hide (never traced) — the paper's
	// instrumentation errors.
	HiddenMethods map[string]bool
	// Category assigns Tables 2/4 buckets to specific keys: a key listed
	// here that is inferred despite not being a true sync is counted in
	// that bucket; a true sync listed here that is missed is a false
	// negative of that bucket.
	Category map[trace.Key]FPCategory
	// Optional marks true synchronizations that are alternates of another
	// sync (e.g. a GetOrAdd region boundary vs. the delegate it runs):
	// correct when inferred, but not a false negative when absent.
	Optional map[trace.Key]bool
}

// NewTruth returns an empty, fully allocated Truth.
func NewTruth() Truth {
	return Truth{
		Syncs:         map[trace.Key]trace.Role{},
		RacyKeys:      map[trace.Key]bool{},
		RacyFields:    map[string]bool{},
		HiddenMethods: map[string]bool{},
		Category:      map[trace.Key]FPCategory{},
		Optional:      map[trace.Key]bool{},
	}
}

// Sync records k as a true synchronization with role r.
func (t *Truth) Sync(k trace.Key, r trace.Role) { t.Syncs[k] = r }

// SyncAlt records k as a true synchronization that is an alternate of
// another (not counted missed when absent).
func (t *Truth) SyncAlt(k trace.Key, r trace.Role) {
	t.Syncs[k] = r
	t.Optional[k] = true
}

// Race records field (by static name) as truly racy and marks both its read
// and write keys as race participants.
func (t *Truth) Race(field string) {
	t.RacyFields[field] = true
	t.RacyKeys[trace.KeyFor(trace.KindRead, field)] = true
	t.RacyKeys[trace.KeyFor(trace.KindWrite, field)] = true
}

// Program is one benchmark application.
type Program struct {
	Name       string // application id, e.g. "App-4"
	Title      string // human name, e.g. "K8s-client"
	LoC        int    // Table 1 metadata (paper's figures, for the inventory)
	Stars      int
	PaperTests int // number of unit tests in the original application

	Methods map[string]*Method
	Tests   []*Test
	Truth   Truth

	// Volatile lists the fields the application's authors annotated
	// volatile; the Manual_dr race-detector variant (Table 3) honors these,
	// mirroring the paper's manually specified synchronization list.
	Volatile map[string]bool

	// mu serializes Finalize so concurrent executors (the parallel
	// inference engine runs sched.Run from many goroutines) can all call
	// it safely; after the first call succeeds the program is immutable
	// and every later call is a cheap guarded read.
	mu        sync.Mutex
	finalized bool
	numSites  int
}

// New returns an empty program with allocated maps.
func New(name, title string) *Program {
	return &Program{
		Name:     name,
		Title:    title,
		Methods:  map[string]*Method{},
		Truth:    NewTruth(),
		Volatile: map[string]bool{},
	}
}

// AddMethod registers an application method and returns it.
func (p *Program) AddMethod(name string, body ...Stmt) *Method {
	if _, dup := p.Methods[name]; dup {
		panic(fmt.Sprintf("prog: duplicate method %q", name))
	}
	m := &Method{Name: name, Body: body}
	p.Methods[name] = m
	return m
}

// AddTest registers a unit test with no framework init method.
func (p *Program) AddTest(name string, body ...Stmt) *Test {
	return p.AddTestWithInit(name, "", body...)
}

// AddTestWithInit registers a unit test whose framework runs init (a method
// name) before the body with a hidden happens-before edge.
func (p *Program) AddTestWithInit(name, init string, body ...Stmt) *Test {
	t := &Test{Name: name, Init: init, Body: body}
	p.Tests = append(p.Tests, t)
	return t
}

// NumSites returns the number of static statement sites (valid after
// Finalize).
func (p *Program) NumSites() int { return p.numSites }

// Finalize assigns unique static site ids to every statement (in
// deterministic order) and validates that every referenced method exists.
// It must be called after construction and is idempotent. Finalize is safe
// for concurrent use: the first caller performs the (mutating) site
// assignment under a lock, every later caller returns immediately. Do not
// add methods or tests after the first Finalize.
func (p *Program) Finalize() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finalized {
		return nil
	}
	next := 1 // site 0 is reserved for "no site"
	assign := func(body []Stmt) {
		var walk func([]Stmt)
		walk = func(ss []Stmt) {
			for _, s := range ss {
				s.SetSite(next)
				next++
				if l, ok := s.(*Loop); ok {
					walk(l.Body)
				}
			}
		}
		walk(body)
	}
	names := make([]string, 0, len(p.Methods))
	for n := range p.Methods {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		assign(p.Methods[n].Body)
	}
	for _, t := range p.Tests {
		assign(t.Body)
	}
	p.numSites = next

	// Validate method references.
	check := func(where, m string) error {
		if m == "" {
			return nil
		}
		if _, ok := p.Methods[m]; !ok {
			return fmt.Errorf("prog %s: %s references unknown method %q", p.Name, where, m)
		}
		return nil
	}
	var err error
	var walk func(owner string, ss []Stmt)
	walk = func(owner string, ss []Stmt) {
		for _, s := range ss {
			if err != nil {
				return
			}
			switch st := s.(type) {
			case *Call:
				err = check(owner, st.Method)
			case *Fork:
				err = check(owner, st.Method)
			case *HiddenFork:
				err = check(owner, st.Method)
			case *ContinueWith:
				err = check(owner, st.Method)
			case *Receive:
				err = check(owner, st.Handler)
			case *EnsureInit:
				err = check(owner, st.Ctor)
			case *FinalizeObj:
				err = check(owner, st.Method)
			case *Loop:
				walk(owner, st.Body)
			}
		}
	}
	for _, n := range names {
		walk(n, p.Methods[n].Body)
	}
	for _, t := range p.Tests {
		if e := check(t.Name, t.Init); e != nil && err == nil {
			err = e
		}
		walk(t.Name, t.Body)
	}
	if err != nil {
		return err
	}
	p.finalized = true
	return nil
}

// MustFinalize is Finalize that panics on error; benchmark apps are static
// and validated by tests, so construction errors are programming bugs.
func (p *Program) MustFinalize() *Program {
	if err := p.Finalize(); err != nil {
		panic(err)
	}
	return p
}
