package prog

import (
	"strings"
	"testing"

	"sherlock/internal/trace"
)

func TestFinalizeAssignsUniqueSites(t *testing.T) {
	p := New("app", "App")
	p.AddMethod("C::worker", Cp(100), Wr("C::f", "o", 1))
	p.AddMethod("C::main",
		Do("C::worker", "o"),
		Rep(3, Rd("C::f", "o"), Cp(10)),
	)
	p.AddTest("T1", Do("C::main", "o"))
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	var walk func([]Stmt)
	var count int
	walk = func(ss []Stmt) {
		for _, s := range ss {
			count++
			if s.Site() == 0 {
				t.Errorf("statement %T has unassigned site", s)
			}
			if seen[s.Site()] {
				t.Errorf("duplicate site %d", s.Site())
			}
			seen[s.Site()] = true
			if l, ok := s.(*Loop); ok {
				walk(l.Body)
			}
		}
	}
	for _, m := range p.Methods {
		walk(m.Body)
	}
	for _, tc := range p.Tests {
		walk(tc.Body)
	}
	if count != 7 {
		t.Errorf("walked %d statements, want 7", count)
	}
	if p.NumSites() != count+1 {
		t.Errorf("NumSites = %d, want %d", p.NumSites(), count+1)
	}
}

func TestFinalizeValidatesMethodRefs(t *testing.T) {
	p := New("app", "App")
	p.AddTest("T1", Do("C::missing", "o"))
	err := p.Finalize()
	if err == nil || !strings.Contains(err.Error(), "C::missing") {
		t.Fatalf("want unknown-method error, got %v", err)
	}

	p2 := New("app", "App")
	p2.AddTestWithInit("T1", "C::noinit", Cp(1))
	if err := p2.Finalize(); err == nil {
		t.Fatal("want error for unknown init method")
	}

	p3 := New("app", "App")
	p3.AddMethod("C::h")
	p3.AddTest("T1", Go(ForkThread, "C::nope", "o", "h"))
	if err := p3.Finalize(); err == nil {
		t.Fatal("want error for unknown fork delegate")
	}
}

func TestFinalizeIdempotent(t *testing.T) {
	p := New("app", "App")
	p.AddMethod("C::m", Cp(1))
	p.AddTest("T", Do("C::m", "o"))
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	site := p.Methods["C::m"].Body[0].Site()
	if err := p.Finalize(); err != nil {
		t.Fatal(err)
	}
	if p.Methods["C::m"].Body[0].Site() != site {
		t.Error("Finalize is not idempotent")
	}
}

func TestDuplicateMethodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on duplicate method")
		}
	}()
	p := New("app", "App")
	p.AddMethod("C::m")
	p.AddMethod("C::m")
}

func TestTruthHelpers(t *testing.T) {
	tr := NewTruth()
	tr.Sync(BK("System.Threading.Monitor::Enter"), trace.RoleAcquire)
	if tr.Syncs[BK("System.Threading.Monitor::Enter")] != trace.RoleAcquire {
		t.Error("Sync did not record role")
	}
	tr.Race("C::flag")
	if !tr.RacyFields["C::flag"] {
		t.Error("Race did not record field")
	}
	if !tr.RacyKeys[RK("C::flag")] || !tr.RacyKeys[WK("C::flag")] {
		t.Error("Race did not mark both access keys")
	}
}

func TestForkJoinAPINames(t *testing.T) {
	if ForkThread.APIName() != "System.Threading.Thread::Start" {
		t.Error(ForkThread.APIName())
	}
	if ForkTaskNew.APIName() != "System.Threading.Tasks.TaskFactory::StartNew" {
		t.Error(ForkTaskNew.APIName())
	}
	if JoinTask.APIName() != "System.Threading.Tasks.Task::Wait" {
		t.Error(JoinTask.APIName())
	}
}

func TestKeyHelpers(t *testing.T) {
	if RK("C::f").Kind() != trace.KindRead || EK("C::m").Kind() != trace.KindEnd {
		t.Error("key helper kinds wrong")
	}
}
