// Statement vocabulary of the program model.
//
// A statement is the unit the scheduler interleaves. Visible statements emit
// log entries in the trace schema; hidden statements have scheduling
// semantics (blocking, ordering) but emit nothing — they model
// synchronization implemented inside frameworks, libraries, the language
// runtime or the operating system, which the paper's SherLock explicitly
// does not instrument and must infer around.
package prog

import "sherlock/internal/trace"

// Stmt is one statement in a method or test body.
type Stmt interface {
	// Site returns the unique static site id assigned by Program.Finalize.
	Site() int
	SetSite(int)
}

// base provides site-id plumbing for every statement type.
type base struct {
	id int
}

func (b *base) Site() int     { return b.id }
func (b *base) SetSite(i int) { b.id = i }

// ---------------------------------------------------------------------------
// Plain computation and heap accesses
// ---------------------------------------------------------------------------

// Compute models straight-line work taking Dur virtual nanoseconds, with a
// multiplicative uniform jitter of ±Jitter (0 ≤ Jitter < 1). No events.
type Compute struct {
	base
	Dur    int64
	Jitter float64
}

// Read is a heap read of Field (a "Class::field" name) on the object bound
// to Slot. Emits a KindRead event.
type Read struct {
	base
	Field string
	Slot  string
}

// Write is a heap write of Val to Field on Slot. Emits a KindWrite event.
type Write struct {
	base
	Field string
	Slot  string
	Val   int64
}

// SpinUntil repeatedly reads Field on Slot until it equals Want, sleeping
// Backoff virtual nanoseconds between polls. Each poll emits a KindRead
// event — this is how while-loop flag synchronization becomes visible to
// the Observer (paper Figure 3.B).
type SpinUntil struct {
	base
	Field   string
	Slot    string
	Want    int64
	Backoff int64
}

// ---------------------------------------------------------------------------
// Application method calls and control flow
// ---------------------------------------------------------------------------

// Call invokes the application method named Method with receiver Slot.
// Emits KindBegin / KindEnd events around the body.
type Call struct {
	base
	Method string
	Slot   string
}

// Loop repeats Body N times.
type Loop struct {
	base
	N    int
	Body []Stmt
}

// Sleep advances the executing thread's clock by Dur without emitting
// events. Used to shape interleavings inside workloads.
type Sleep struct {
	base
	Dur int64
}

// ---------------------------------------------------------------------------
// Visible library primitives
//
// Each emits KindBegin/KindEnd call-site events with Lib=true under its
// C#-style API name; blocking happens between the two events.
// ---------------------------------------------------------------------------

// AcquireLock is Monitor.Enter on the named lock.
type AcquireLock struct {
	base
	Lock string
}

// ReleaseLock is Monitor.Exit on the named lock.
type ReleaseLock struct {
	base
	Lock string
}

// SemSet signals the named event/semaphore (EventWaitHandle.Set).
type SemSet struct {
	base
	Sem string
}

// SemWait blocks until the named event/semaphore is signaled
// (WaitHandle.WaitOne). Consumes one signal.
type SemWait struct {
	base
	Sem string
}

// WaitAll blocks until every named semaphore has been signaled
// (WaitHandle.WaitAll) — the paper's n-to-1 synchronization example.
type WaitAll struct {
	base
	Sems []string
}

// Post enqueues a message into the named dataflow queue
// (DataflowBlock.Post by default; API overrides the traced name for other
// producer-side APIs with the same semantics, e.g. Stream.CopyTo).
type Post struct {
	base
	Queue string
	API   string
}

// Receive blocks until a message is available in the named queue
// (DataflowBlock.Receive) and then, if Handler is non-empty, runs the
// handler method in the receiving thread (paper Figure 3.A).
type Receive struct {
	base
	Queue       string
	Handler     string
	HandlerSlot string
	API         string // traced name override (e.g. Stream.Read)
}

// ForkAPI selects which C# task-creation API a Fork models. The paper's
// Manual_dr misses several of these (Table 3 discussion).
type ForkAPI int

// Fork APIs.
const (
	ForkThread     ForkAPI = iota // Thread.Start
	ForkTaskRun                   // Task.Run
	ForkTaskNew                   // TaskFactory.StartNew
	ForkThreadPool                // ThreadPool.QueueUserWorkItem
)

// APIName returns the C#-style name used in the trace.
func (f ForkAPI) APIName() string {
	switch f {
	case ForkThread:
		return "System.Threading.Thread::Start"
	case ForkTaskRun:
		return "System.Threading.Tasks.Task::Run"
	case ForkTaskNew:
		return "System.Threading.Tasks.TaskFactory::StartNew"
	default:
		return "System.Threading.ThreadPool::QueueUserWorkItem"
	}
}

// Fork spawns a new thread running Method on Slot, binding the thread to
// Handle for later joining.
type Fork struct {
	base
	API    ForkAPI
	Method string
	Slot   string
	Handle string
}

// JoinAPI selects the join flavor.
type JoinAPI int

// Join APIs.
const (
	JoinThread JoinAPI = iota // Thread.Join
	JoinTask                  // Task.Wait
)

// APIName returns the C#-style name used in the trace.
func (j JoinAPI) APIName() string {
	if j == JoinThread {
		return "System.Threading.Thread::Join"
	}
	return "System.Threading.Tasks.Task::Wait"
}

// Join blocks until the thread bound to Handle finishes.
type Join struct {
	base
	API    JoinAPI
	Handle string
}

// ContinueWith registers Method (on Slot) to run in a fresh thread after
// the thread bound to Handle completes (Task.ContinueWith, paper Figure
// 3.D). The continuation thread is bound to NewHandle.
type ContinueWith struct {
	base
	Handle    string
	Method    string
	Slot      string
	NewHandle string
}

// UnsafeCall is a call into a thread-unsafe library API (e.g. List.Add) on
// the collection object bound to Slot. It is conflict-eligible with access
// semantics Acc, making it visible to both window extraction and TSVD.
type UnsafeCall struct {
	base
	API  string
	Slot string
	Acc  trace.Acc
	Dur  int64
}

// ---------------------------------------------------------------------------
// Reader-writer lock (ReaderWriterLock) — including the double-role API
// UpgradeToWriterLock that violates the Single-Role assumption (Table 4).
// ---------------------------------------------------------------------------

// RWAcquireRead takes the named reader-writer lock in read mode.
type RWAcquireRead struct {
	base
	Lock string
}

// RWReleaseRead releases a read hold.
type RWReleaseRead struct {
	base
	Lock string
}

// RWUpgrade releases the caller's read hold and acquires the write hold in
// one API (ReaderWriterLock.UpgradeToWriterLock) — a release followed by an
// acquire inside a single library call.
type RWUpgrade struct {
	base
	Lock string
}

// RWDowngrade releases the write hold and re-takes a read hold
// (ReaderWriterLock.DowngradeFromWriterLock).
type RWDowngrade struct {
	base
	Lock string
}

// ---------------------------------------------------------------------------
// Hidden primitives — scheduling semantics with no trace events
// ---------------------------------------------------------------------------

// HiddenAcquire takes a lock invisibly (synchronization implemented inside
// an uninstrumented framework/library, e.g. the lock inside
// ConcurrentLazyDictionary.GetOrAdd).
type HiddenAcquire struct {
	base
	Lock string
}

// HiddenRelease releases an invisible lock.
type HiddenRelease struct {
	base
	Lock string
}

// HiddenSignal signals an invisible event.
type HiddenSignal struct {
	base
	Sem string
}

// HiddenWait waits on an invisible event.
type HiddenWait struct {
	base
	Sem string
}

// HiddenFork spawns Method on Slot in a new thread with a real
// happens-before edge but no visible fork API call — framework-driven
// execution such as MSTest scheduling test methods after TestInitialize
// (paper Figure 3.E).
type HiddenFork struct {
	base
	Method string
	Slot   string
	Handle string
}

// EnsureInit models the C# static-initialization guarantee: the first
// thread to reach it runs Class::.cctor (visible as an application method);
// every other thread blocks until the constructor finishes. The ordering
// edge itself is language-enforced and invisible.
type EnsureInit struct {
	base
	Class string
	Ctor  string // method name of the static constructor body
}

// FinalizeObj models removing the last reference to the object bound to
// Slot: after GCDelay virtual nanoseconds the runtime runs Method (the
// finalizer/Dispose) in a dedicated GC thread, ordered after this
// statement. A GCDelay larger than the Near window reproduces the paper's
// dispose-related false positives (Table 4): the acquire window becomes too
// large to refine because delay injection cannot control garbage
// collection.
type FinalizeObj struct {
	base
	Slot    string
	Method  string
	GCDelay int64
}

// LibWait is a generic blocking library call that waits for the thread
// bound to Handle to complete, traced under API — the shape of C#'s
// TaskAwaiter.GetResult (the synchronous end of an await).
type LibWait struct {
	base
	API    string
	Handle string
}

// BarrierWait is System.Threading.Barrier.SignalAndWait: the caller blocks
// until Parties threads have arrived at the named barrier, then all
// proceed. The arrival (before-call event) releases the caller's
// pre-barrier work; the return (after-call event) acquires everyone
// else's — a genuine double-role API at the call-site granularity.
type BarrierWait struct {
	base
	Barrier string
	Parties int
}
