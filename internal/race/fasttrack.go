// Package race implements a FastTrack-style dynamic data-race detector
// (Flanagan & Freund, re-implemented for C# by the SherLock authors; paper
// Section 5.4) over the traces produced by internal/sched, with pluggable
// synchronization models:
//
//   - Manual: the classic manually annotated API list (monitors, wait
//     handles, Thread.Start/Join, reader-writer locks, volatile fields,
//     static initialization) — the paper's Manual_dr.
//   - SherLock: exactly the operations inferred by the SherLock engine —
//     the paper's SherLock_dr.
//
// The detector implements the epoch optimization of FastTrack: last-write
// epochs per variable, adaptive read epochs that inflate to vector clocks
// only under concurrent read sharing.
package race

import (
	"fmt"
	"strings"

	"sherlock/internal/trace"
)

// VC is a vector clock indexed by thread id.
type VC []int64

// Get returns the component for thread t (0 beyond length).
func (v VC) Get(t int) int64 {
	if t < len(v) {
		return v[t]
	}
	return 0
}

// set grows as needed and assigns component t.
func (v *VC) set(t int, val int64) {
	for len(*v) <= t {
		*v = append(*v, 0)
	}
	(*v)[t] = val
}

// Join folds o into v component-wise (least upper bound).
func (v *VC) Join(o VC) {
	for t, c := range o {
		if c > v.Get(t) {
			v.set(t, c)
		}
	}
}

// Copy returns an independent copy.
func (v VC) Copy() VC {
	out := make(VC, len(v))
	copy(out, v)
	return out
}

// LEq reports v ⊑ o (happens-before in clock space).
func (v VC) LEq(o VC) bool {
	for t, c := range v {
		if c > o.Get(t) {
			return false
		}
	}
	return true
}

// epoch is FastTrack's (thread, clock) pair packed for cheap comparison.
type epoch struct {
	tid   int
	clock int64
}

var emptyEpoch = epoch{tid: -1}

// leq reports whether the epoch happens-before the vector clock.
func (e epoch) leq(v VC) bool {
	return e.tid < 0 || e.clock <= v.Get(e.tid)
}

// Report is one detected race.
type Report struct {
	Key     string // classification key: field name, or library class
	Addr    uint64
	Thread  int   // thread of the second (racing) access
	Time    int64 // time of the second access
	IsWrite bool  // whether the second access is a write
	First   bool  // whether this was the first report of its run
}

// varState is FastTrack's per-variable metadata.
type varState struct {
	w      epoch // last write
	r      epoch // last read (when not shared)
	rvc    VC    // read vector clock (when shared)
	shared bool
	key    string
	raced  bool // stop re-reporting the same variable within a run
}

// Detector processes one trace under one synchronization model. Create a
// fresh Detector per run (FastTrack state is per-execution).
type Detector struct {
	model SyncModel

	threads  map[int]*VC
	channels map[string]*VC
	vars     map[uint64]*varState
	cctors   map[string]bool // classes whose static ctor released (Manual)

	reports []Report
}

// NewDetector returns a detector using the given sync model.
func NewDetector(model SyncModel) *Detector {
	return &Detector{
		model:    model,
		threads:  map[int]*VC{},
		channels: map[string]*VC{},
		vars:     map[uint64]*varState{},
		cctors:   map[string]bool{},
	}
}

// Reports returns all races found so far, in detection order.
func (d *Detector) Reports() []Report { return d.reports }

// FirstReport returns the first race of the run, or nil. The paper counts
// only the first report per run: FastTrack's guarantees hold up to it.
func (d *Detector) FirstReport() *Report {
	if len(d.reports) == 0 {
		return nil
	}
	return &d.reports[0]
}

func (d *Detector) clock(t int) *VC {
	c, ok := d.threads[t]
	if !ok {
		v := make(VC, t+1)
		v[t] = 1
		d.threads[t] = &v
		return &v
	}
	return c
}

func (d *Detector) channel(key string) *VC {
	c, ok := d.channels[key]
	if !ok {
		v := VC{}
		d.channels[key] = &v
		c = &v
	}
	return c
}

// Process consumes an entire trace.
func (d *Detector) Process(tr *trace.Trace) {
	for i := range tr.Events {
		d.Step(&tr.Events[i])
	}
}

// Step consumes one event: first the synchronization semantics the model
// assigns to it, then (if it is a data access that is not itself a sync
// operation) the FastTrack race check.
//
// A model may attach several actions to one event — e.g. a double-role API
// like UpgradeToWriterLock releasing one channel and acquiring another at
// its return — applied in order.
func (d *Detector) Step(e *trace.Event) {
	acts := d.model.Classify(e)
	for _, act := range acts {
		d.applySync(e, act)
	}
	// Data access check. Sync operations are exempt, like volatile fields.
	if len(acts) == 0 && e.ConflictEligible() {
		d.access(e)
	}
}

func (d *Detector) applySync(e *trace.Event, act Action) {
	ct := d.clock(e.Thread)
	switch act.Kind {
	case ActFork:
		// Child inherits the parent's knowledge.
		cc := d.clock(act.Child)
		cc.Join(*ct)
		ct.set(e.Thread, ct.Get(e.Thread)+1)
	case ActJoin:
		ct.Join(*d.clock(act.Child))
	case ActRelease:
		for _, ch := range act.Channels {
			d.channel(ch).Join(*ct)
		}
		ct.set(e.Thread, ct.Get(e.Thread)+1)
	case ActAcquire:
		for _, ch := range act.Channels {
			ct.Join(*d.channel(ch))
		}
	}
}

// access runs the FastTrack read/write checks.
func (d *Detector) access(e *trace.Event) {
	vs, ok := d.vars[e.Addr]
	if !ok {
		vs = &varState{w: emptyEpoch, r: emptyEpoch, key: classifyKey(e)}
		d.vars[e.Addr] = vs
	}
	if vs.raced {
		return
	}
	ct := *d.clock(e.Thread)
	now := epoch{tid: e.Thread, clock: ct.Get(e.Thread)}

	switch e.Acc {
	case trace.AccRead:
		if !vs.w.leq(ct) {
			d.report(e, vs)
			return
		}
		if vs.shared {
			vs.rvc.set(e.Thread, now.clock)
		} else if vs.r.tid == e.Thread || vs.r.leq(ct) {
			vs.r = now // same thread or ordered: stay in epoch mode
		} else {
			// Concurrent reads: inflate to a vector clock.
			vs.shared = true
			vs.rvc = VC{}
			vs.rvc.set(vs.r.tid, vs.r.clock)
			vs.rvc.set(e.Thread, now.clock)
		}
	case trace.AccWrite:
		if !vs.w.leq(ct) {
			d.report(e, vs)
			return
		}
		if vs.shared {
			if !vs.rvc.LEq(ct) {
				d.report(e, vs)
				return
			}
			vs.shared = false
			vs.r = emptyEpoch
		} else if !vs.r.leq(ct) {
			d.report(e, vs)
			return
		}
		vs.w = now
	}
}

func (d *Detector) report(e *trace.Event, vs *varState) {
	vs.raced = true
	d.reports = append(d.reports, Report{
		Key:     vs.key,
		Addr:    e.Addr,
		Thread:  e.Thread,
		Time:    e.Time,
		IsWrite: e.Acc == trace.AccWrite,
		First:   len(d.reports) == 0,
	})
}

// classifyKey maps an access to the name races are classified under: the
// field's static name, or the library class of a thread-unsafe API.
func classifyKey(e *trace.Event) string {
	if !e.Lib {
		return e.Name
	}
	if i := strings.Index(e.Name, "::"); i >= 0 {
		return e.Name[:i]
	}
	return e.Name
}

// Action is the synchronization semantics a model assigns to an event.
type Action struct {
	Kind     ActKind
	Child    int      // ActFork/ActJoin: the other thread
	Channels []string // ActAcquire/ActRelease: channel identities
}

// ActKind enumerates synchronization action kinds.
type ActKind uint8

// Action kinds.
const (
	ActNone ActKind = iota
	ActAcquire
	ActRelease
	ActFork
	ActJoin
)

// SyncModel decides which events are synchronizations and what they do.
// An empty result means "plain operation". Blocking acquires of library
// calls must be attached to the call's End event: the before-call event of
// a blocked thread predates the release it waits for.
type SyncModel interface {
	Classify(e *trace.Event) []Action
}

// channelsFor derives channel identities for a release/acquire event: the
// concrete resource address when instrumentation sees one (locks, handles,
// queues, fields), otherwise the operation's class — method-based
// synchronizations pair at class granularity, which reproduces both the
// successes (static ctors, GetOrAdd, test-framework ordering) and the
// documented failures (cross-class dispose pairs) of the paper.
func channelsFor(e *trace.Event) []string {
	var out []string
	if e.Addr != 0 {
		out = append(out, fmt.Sprintf("addr:%d", e.Addr))
		for _, x := range e.Extra {
			if x != e.Addr {
				out = append(out, fmt.Sprintf("addr:%d", x))
			}
		}
		return out
	}
	name := e.Name
	if i := strings.Index(name, "::"); i >= 0 {
		return []string{"class:" + name[:i]}
	}
	return []string{"class:" + name}
}
