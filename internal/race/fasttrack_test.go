package race

import (
	"testing"
	"testing/quick"

	"sherlock/internal/trace"
)

// --- vector clock algebra -------------------------------------------------

func TestVCBasics(t *testing.T) {
	var v VC
	v.set(3, 7)
	if v.Get(3) != 7 || v.Get(0) != 0 || v.Get(10) != 0 {
		t.Errorf("VC get/set broken: %v", v)
	}
	o := VC{1, 2}
	v.Join(o)
	if v.Get(0) != 1 || v.Get(1) != 2 || v.Get(3) != 7 {
		t.Errorf("join wrong: %v", v)
	}
}

func TestVCLEq(t *testing.T) {
	a := VC{1, 2, 0}
	b := VC{1, 3}
	if !a.LEq(b) {
		t.Error("a ⊑ b expected (trailing zeros ignored)")
	}
	if b.LEq(a) {
		t.Error("b ⋢ a expected")
	}
	if !a.LEq(a.Copy()) {
		t.Error("reflexivity")
	}
}

// Property: Join is a least upper bound — both operands ⊑ join, and join is
// monotone/idempotent.
func TestVCJoinProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := VC{}, VC{}
		for i, x := range xs {
			a.set(i, int64(x))
		}
		for i, y := range ys {
			b.set(i, int64(y))
		}
		j := a.Copy()
		j.Join(b)
		if !a.LEq(j) || !b.LEq(j) {
			return false
		}
		j2 := j.Copy()
		j2.Join(b)
		return j.LEq(j2) && j2.LEq(j) // idempotent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// --- FastTrack core over synthetic event streams ---------------------------

// explicit model: a map from key to action for direct control in tests.
type explicitModel map[trace.Key]Action

func (m explicitModel) Classify(e *trace.Event) []Action {
	a, ok := m[trace.EventKey(e)]
	if !ok {
		return nil
	}
	if a.Kind != ActFork && a.Kind != ActJoin && len(a.Channels) == 0 {
		a.Channels = channelsFor(e)
	}
	return []Action{a}
}

func rd(t int64, th int, name string, addr uint64) trace.Event {
	return trace.Event{Time: t, Thread: th, Kind: trace.KindRead, Name: name, Addr: addr, Acc: trace.AccRead}
}
func wr(t int64, th int, name string, addr uint64) trace.Event {
	return trace.Event{Time: t, Thread: th, Kind: trace.KindWrite, Name: name, Addr: addr, Acc: trace.AccWrite}
}

func process(m SyncModel, events ...trace.Event) *Detector {
	d := NewDetector(m)
	d.Process(&trace.Trace{Events: events})
	return d
}

func TestUnsyncedWriteWriteRaces(t *testing.T) {
	d := process(explicitModel{},
		wr(100, 0, "C::x", 1),
		wr(200, 1, "C::x", 1),
	)
	if len(d.Reports()) != 1 {
		t.Fatalf("reports = %v, want 1 race", d.Reports())
	}
	if d.Reports()[0].Key != "C::x" {
		t.Errorf("race key = %q", d.Reports()[0].Key)
	}
}

func TestUnsyncedWriteReadRaces(t *testing.T) {
	d := process(explicitModel{},
		wr(100, 0, "C::x", 1),
		rd(200, 1, "C::x", 1),
	)
	if len(d.Reports()) != 1 {
		t.Fatal("write→read without HB must race")
	}
}

func TestReadReadNoRace(t *testing.T) {
	d := process(explicitModel{},
		rd(100, 0, "C::x", 1),
		rd(200, 1, "C::x", 1),
	)
	if len(d.Reports()) != 0 {
		t.Fatalf("read-read raced: %v", d.Reports())
	}
}

func TestSameThreadNoRace(t *testing.T) {
	d := process(explicitModel{},
		wr(100, 0, "C::x", 1),
		rd(200, 0, "C::x", 1),
		wr(300, 0, "C::x", 1),
	)
	if len(d.Reports()) != 0 {
		t.Fatalf("same-thread accesses raced: %v", d.Reports())
	}
}

func TestReleaseAcquireOrders(t *testing.T) {
	rel := trace.Event{Time: 150, Thread: 0, Kind: trace.KindWrite, Name: "C::flag", Addr: 9, Acc: trace.AccWrite}
	acq := trace.Event{Time: 180, Thread: 1, Kind: trace.KindRead, Name: "C::flag", Addr: 9, Acc: trace.AccRead}
	model := explicitModel{
		trace.EventKey(&rel): {Kind: ActRelease},
		trace.EventKey(&acq): {Kind: ActAcquire},
	}
	d := process(model,
		wr(100, 0, "C::x", 1),
		rel,
		acq,
		rd(200, 1, "C::x", 1),
	)
	if len(d.Reports()) != 0 {
		t.Fatalf("release/acquire chain still raced: %v", d.Reports())
	}
}

func TestAcquireWithoutReleaseStillRaces(t *testing.T) {
	acq := trace.Event{Time: 180, Thread: 1, Kind: trace.KindRead, Name: "C::flag", Addr: 9, Acc: trace.AccRead}
	model := explicitModel{trace.EventKey(&acq): {Kind: ActAcquire}}
	d := process(model,
		wr(100, 0, "C::x", 1),
		acq,
		rd(200, 1, "C::x", 1),
	)
	if len(d.Reports()) != 1 {
		t.Fatal("acquire from an empty channel must not create HB")
	}
}

func TestForkJoinEdges(t *testing.T) {
	fork := trace.Event{Time: 150, Thread: 0, Kind: trace.KindEnd, Name: "T::Start", Lib: true, Child: 1}
	join := trace.Event{Time: 400, Thread: 0, Kind: trace.KindEnd, Name: "T::Join", Lib: true, Child: 1}
	model := explicitModel{
		trace.EventKey(&fork): {Kind: ActFork, Child: 1},
		trace.EventKey(&join): {Kind: ActJoin, Child: 1},
	}
	d := process(model,
		wr(100, 0, "C::x", 1), // parent writes before fork
		fork,
		rd(200, 1, "C::x", 1), // child reads: ordered by fork
		wr(300, 1, "C::x", 1), // child writes
		join,
		rd(500, 0, "C::x", 1), // parent reads after join: ordered
	)
	if len(d.Reports()) != 0 {
		t.Fatalf("fork/join edges missing: %v", d.Reports())
	}
}

func TestForkWithoutJoinRacesAfter(t *testing.T) {
	fork := trace.Event{Time: 150, Thread: 0, Kind: trace.KindEnd, Name: "T::Start", Lib: true, Child: 1}
	model := explicitModel{trace.EventKey(&fork): {Kind: ActFork, Child: 1}}
	d := process(model,
		fork,
		wr(300, 1, "C::x", 1), // child write
		rd(500, 0, "C::x", 1), // parent read without join: race
	)
	if len(d.Reports()) != 1 {
		t.Fatalf("missing race without join: %v", d.Reports())
	}
}

func TestReadSharedThenWriteRaces(t *testing.T) {
	// Two unordered readers force the read VC; a later unordered write
	// must race against the read set.
	fork1 := trace.Event{Time: 10, Thread: 0, Kind: trace.KindEnd, Name: "T::Start", Lib: true, Child: 1, Site: 1}
	model := explicitModel{trace.EventKey(&fork1): {Kind: ActFork, Child: 1}}
	d := process(model,
		wr(5, 0, "C::x", 1),
		fork1,                 // orders the initial write before both readers
		rd(100, 0, "C::x", 1), // reader A
		rd(120, 1, "C::x", 1), // reader B (ordered after write via fork)
		wr(200, 1, "C::x", 1), // writer B: unordered with reader A's read
	)
	if len(d.Reports()) != 1 {
		t.Fatalf("read-shared write check failed: %v", d.Reports())
	}
}

func TestOnlyFirstRaceFlagged(t *testing.T) {
	d := process(explicitModel{},
		wr(100, 0, "C::x", 1),
		wr(200, 1, "C::x", 1), // race 1
		wr(300, 0, "C::y", 2),
		wr(400, 1, "C::y", 2), // race 2
	)
	rs := d.Reports()
	if len(rs) != 2 {
		t.Fatalf("reports = %d, want 2", len(rs))
	}
	if !rs[0].First || rs[1].First {
		t.Error("First flag misassigned")
	}
	if d.FirstReport().Key != "C::x" {
		t.Errorf("first race = %q", d.FirstReport().Key)
	}
	// A variable races once per run.
	d2 := process(explicitModel{},
		wr(100, 0, "C::x", 1),
		wr(200, 1, "C::x", 1),
		wr(300, 2, "C::x", 1),
	)
	if len(d2.Reports()) != 1 {
		t.Errorf("same variable re-reported: %v", d2.Reports())
	}
}

func TestLibAccessClassifiedByClass(t *testing.T) {
	add := trace.Event{Time: 100, Thread: 0, Kind: trace.KindBegin,
		Name: "System.Collections.Generic.List::Add", Addr: 7, Lib: true, Unsafe: true, Acc: trace.AccWrite}
	add2 := add
	add2.Time, add2.Thread = 200, 1
	d := process(explicitModel{}, add, add2)
	if len(d.Reports()) != 1 || d.Reports()[0].Key != "System.Collections.Generic.List" {
		t.Fatalf("reports = %v", d.Reports())
	}
}

func TestSyncOpsExemptFromAccessCheck(t *testing.T) {
	// A volatile-style flag: both accesses classified as syncs must not be
	// reported as racing even though they conflict.
	w := wr(100, 0, "C::flag", 3)
	r := rd(200, 1, "C::flag", 3)
	model := explicitModel{
		trace.EventKey(&w): {Kind: ActRelease},
		trace.EventKey(&r): {Kind: ActAcquire},
	}
	d := process(model, w, r)
	if len(d.Reports()) != 0 {
		t.Fatalf("sync ops must be exempt: %v", d.Reports())
	}
}
