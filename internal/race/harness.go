// Comparison harness for Table 3: run every unit test of an application a
// number of times, feed the identical traces to Manual_dr and SherLock_dr,
// count first-reported races per run, and classify them against the
// application's ground truth.
package race

import (
	"context"

	"sherlock/internal/prog"
	"sherlock/internal/sched"
	"sherlock/internal/trace"
)

// CompareConfig tunes the detector comparison.
type CompareConfig struct {
	Runs int   // detection runs per test (paper: every unit test, counted per run)
	Seed int64 // base scheduler seed
}

// DefaultCompareConfig mirrors the paper's setup.
func DefaultCompareConfig() CompareConfig {
	return CompareConfig{Runs: 3, Seed: 42}
}

// Comparison is one application's Table 3 row (plus the Table 4 cause
// breakdown for SherLock_dr's false races).
type Comparison struct {
	App string

	ManualTrue  int
	ManualFalse int
	SherTrue    int
	SherFalse   int

	// SherFalseByCause buckets SherLock_dr's false races by the missed
	// synchronization responsible (Table 4's "#False Races" column).
	SherFalseByCause map[prog.FPCategory]int
}

// Compare runs the experiment for one application with the given inferred
// synchronization set. ctx cancels between test executions.
func Compare(ctx context.Context, app *prog.Program, inferred trace.SyncSet, cfg CompareConfig) (*Comparison, error) {
	if err := app.Finalize(); err != nil {
		return nil, err
	}
	out := &Comparison{App: app.Name, SherFalseByCause: map[prog.FPCategory]int{}}
	manual := NewManualModel(app)
	sher := NewSherLockModel(inferred)

	for run := 0; run < cfg.Runs; run++ {
		for ti, test := range app.Tests {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res, err := sched.RunContext(ctx, app, test, sched.Options{
				Seed:          cfg.Seed + int64(run)*2011 + int64(ti)*31,
				HiddenMethods: app.Truth.HiddenMethods,
			})
			if err != nil {
				return nil, err
			}
			if res.Deadlocked {
				continue
			}
			md := NewDetector(manual)
			md.Process(res.Trace)
			if r := md.FirstReport(); r != nil {
				if app.Truth.RacyFields[r.Key] {
					out.ManualTrue++
				} else {
					out.ManualFalse++
				}
			}
			sd := NewDetector(sher)
			sd.Process(res.Trace)
			if r := sd.FirstReport(); r != nil {
				if app.Truth.RacyFields[r.Key] {
					out.SherTrue++
				} else {
					out.SherFalse++
					out.SherFalseByCause[falseRaceCause(app, r.Key)]++
				}
			}
		}
	}
	return out, nil
}

// falseRaceCause looks up the Table 4 bucket for a falsely racing location:
// the category annotated on either of the location's access keys.
func falseRaceCause(app *prog.Program, key string) prog.FPCategory {
	if c, ok := app.Truth.Category[trace.KeyFor(trace.KindRead, key)]; ok {
		return c
	}
	if c, ok := app.Truth.Category[trace.KeyFor(trace.KindWrite, key)]; ok {
		return c
	}
	return prog.CatOther
}
