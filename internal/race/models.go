// Synchronization models: Manual (annotated API list) and SherLock
// (inferred operations).
//
// Application point matters: a blocking library acquire (Monitor.Enter,
// WaitOne) logs its before-call event when the thread *enters* the call —
// potentially long before the release it waits for — so its happens-before
// effect is applied at the call's End event, when the acquire has actually
// completed. Releases likewise take effect by the time the call returns.
// Field operations and application-method entries apply at their own event.
package race

import (
	"strings"

	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

// ManualModel is the paper's Manual_dr synchronization specification: the
// classic APIs one would annotate by hand. Per the paper it covers volatile
// variables, wait-notify synchronization (monitors and wait handles),
// barriers, thread fork/join, reader-writer locks, and static-initialization
// ordering — and, crucially, misses everything else: Task.Run,
// TaskFactory.StartNew, ThreadPool work items, dataflow blocks,
// ContinueWith, GetOrAdd delegates, finalizers, and test-framework ordering.
type ManualModel struct {
	// Volatile lists field names annotated volatile in the application.
	Volatile map[string]bool
}

// NewManualModel builds the model for one application.
func NewManualModel(app *prog.Program) *ManualModel {
	return &ManualModel{Volatile: app.Volatile}
}

// manualAcquires maps APIs whose completed call acquires; manualReleases
// maps APIs whose completed call releases.
var manualAcquires = map[string]bool{
	prog.APIMonitorEnter:  true,
	prog.APISemWait:       true,
	prog.APIWaitAll:       true,
	prog.APIRWAcquireRead: true,
	prog.APIRWUpgrade:     true,
}

var manualReleases = map[string]bool{
	prog.APIMonitorExit:   true,
	prog.APISemSet:        true,
	prog.APIRWReleaseRead: true,
	prog.APIRWDowngrade:   true,
}

// Classify implements SyncModel.
func (m *ManualModel) Classify(e *trace.Event) []Action {
	if e.Lib {
		// Barriers release at arrival (the before-call event carries the
		// caller's pre-barrier clock) and acquire at return.
		if e.Name == prog.APIBarrier {
			if e.Kind == trace.KindBegin {
				return []Action{{Kind: ActRelease, Channels: channelsFor(e)}}
			}
			return []Action{{Kind: ActAcquire, Channels: channelsFor(e)}}
		}
		if e.Kind != trace.KindEnd {
			// Before-call events carry no HB effect; returning a non-empty
			// action set for known sync APIs still exempts them from the
			// access check (they are not data accesses anyway).
			return nil
		}
		switch {
		case e.Name == "System.Threading.Thread::Start" && e.Child != 0:
			return []Action{{Kind: ActFork, Child: e.Child}}
		case e.Name == "System.Threading.Thread::Join" && e.Child != 0:
			return []Action{{Kind: ActJoin, Child: e.Child}}
		case manualAcquires[e.Name]:
			return []Action{{Kind: ActAcquire, Channels: channelsFor(e)}}
		case manualReleases[e.Name]:
			return []Action{{Kind: ActRelease, Channels: channelsFor(e)}}
		}
		return nil
	}
	// Volatile fields: write releases, read acquires, on the instance
	// address.
	if m.Volatile[e.Name] {
		switch e.Kind {
		case trace.KindWrite:
			return []Action{{Kind: ActRelease, Channels: channelsFor(e)}}
		case trace.KindRead:
			return []Action{{Kind: ActAcquire, Channels: channelsFor(e)}}
		}
	}
	// Static initialization: .cctor end releases its class channel; any
	// later entry into a method of that class acquires it.
	if e.Kind == trace.KindEnd && strings.HasSuffix(e.Name, "::.cctor") {
		return []Action{{Kind: ActRelease, Channels: []string{"cctor:" + className(e.Name)}}}
	}
	if e.Kind == trace.KindBegin && !strings.HasSuffix(e.Name, "::.cctor") {
		return []Action{{Kind: ActAcquire, Channels: []string{"cctor:" + className(e.Name)}}}
	}
	return nil
}

func className(name string) string {
	if i := strings.Index(name, "::"); i >= 0 {
		return name[:i]
	}
	return name
}

// SherLockModel is the paper's SherLock_dr: it uses exactly the inferred
// operation set, with no built-in API knowledge. Fork/join APIs whose
// call-site events carry a spawned/joined thread become thread edges;
// everything else pairs releases to acquires over resource-address channels
// (fields, locks, handles, queues) or class channels (method operations).
type SherLockModel struct {
	Syncs trace.SyncSet
}

// NewSherLockModel builds the model from inferred synchronizations.
func NewSherLockModel(syncs trace.SyncSet) *SherLockModel {
	return &SherLockModel{Syncs: syncs}
}

// Classify implements SyncModel.
func (m *SherLockModel) Classify(e *trace.Event) []Action {
	if e.Lib {
		if e.Kind != trace.KindEnd {
			return nil
		}
		// Both of the API's inferred roles take effect when the call
		// returns: a release inferred on its end key, and an acquire
		// inferred on its begin key (the invocation is what blocks, the
		// return is when the acquire has happened). A double-role API
		// (UpgradeToWriterLock under the Single-Role ablation) yields
		// both, release first.
		var acts []Action
		if m.Syncs[trace.EventKey(e)] == trace.RoleRelease && m.has(trace.EventKey(e)) {
			acts = append(acts, m.action(e, trace.RoleRelease))
		}
		bkey := trace.KeyFor(trace.KindBegin, e.Name)
		if role, ok := m.Syncs[bkey]; ok && role == trace.RoleAcquire {
			acts = append(acts, m.action(e, trace.RoleAcquire))
		}
		return acts
	}
	role, ok := m.Syncs[trace.EventKey(e)]
	if !ok {
		return nil
	}
	return []Action{m.action(e, role)}
}

func (m *SherLockModel) has(k trace.Key) bool {
	_, ok := m.Syncs[k]
	return ok
}

// action maps a role application to a concrete detector action.
func (m *SherLockModel) action(e *trace.Event, role trace.Role) Action {
	if e.Child != 0 {
		// An inferred release that spawns a thread is a fork edge; an
		// inferred acquire that joins one is a join edge.
		if role == trace.RoleRelease {
			return Action{Kind: ActFork, Child: e.Child}
		}
		return Action{Kind: ActJoin, Child: e.Child}
	}
	if role == trace.RoleRelease {
		return Action{Kind: ActRelease, Channels: channelsFor(e)}
	}
	return Action{Kind: ActAcquire, Channels: channelsFor(e)}
}

// CombinedModel layers SherLock-inferred syncs on top of the manual list
// (useful for the TSVD enhancement study and as an upper bound).
type CombinedModel struct {
	Manual   *ManualModel
	Inferred *SherLockModel
}

// Classify implements SyncModel: inferred knowledge first, manual fallback.
func (m *CombinedModel) Classify(e *trace.Event) []Action {
	if acts := m.Inferred.Classify(e); len(acts) > 0 {
		return acts
	}
	return m.Manual.Classify(e)
}
