package race

import (
	"context"
	"testing"

	"sherlock/internal/core"
	"sherlock/internal/prog"
	"sherlock/internal/sched"
	"sherlock/internal/trace"
)

func TestManualModelClassification(t *testing.T) {
	m := NewManualModel(prog.New("a", "A"))
	cases := []struct {
		e    trace.Event
		kind ActKind
	}{
		// Blocking acquires take effect at the call's End event.
		{trace.Event{Kind: trace.KindEnd, Name: prog.APIMonitorEnter, Lib: true, Addr: 4}, ActAcquire},
		{trace.Event{Kind: trace.KindEnd, Name: prog.APIMonitorExit, Lib: true, Addr: 4}, ActRelease},
		{trace.Event{Kind: trace.KindEnd, Name: prog.APISemWait, Lib: true, Addr: 5}, ActAcquire},
		{trace.Event{Kind: trace.KindEnd, Name: prog.APISemSet, Lib: true, Addr: 5}, ActRelease},
		{trace.Event{Kind: trace.KindEnd, Name: "System.Threading.Thread::Start", Lib: true, Child: 2}, ActFork},
		{trace.Event{Kind: trace.KindEnd, Name: "System.Threading.Thread::Join", Lib: true, Child: 2}, ActJoin},
	}
	for _, c := range cases {
		acts := m.Classify(&c.e)
		if len(acts) != 1 || acts[0].Kind != c.kind {
			t.Errorf("Classify(%s %s) = %v, want kind %v", c.e.Kind, c.e.Name, acts, c.kind)
		}
	}
	// The before-call event of a blocking acquire has no HB effect.
	enterBegin := trace.Event{Kind: trace.KindBegin, Name: prog.APIMonitorEnter, Lib: true, Addr: 4}
	if acts := m.Classify(&enterBegin); len(acts) != 0 {
		t.Errorf("before-call event must carry no action, got %v", acts)
	}
	// Task-parallel APIs are NOT in the manual list.
	for _, name := range []string{
		"System.Threading.Tasks.Task::Run",
		"System.Threading.Tasks.TaskFactory::StartNew",
		"System.Threading.ThreadPool::QueueUserWorkItem",
		prog.APIPost, prog.APIContinueWith,
	} {
		e := trace.Event{Kind: trace.KindEnd, Name: name, Lib: true, Child: 2}
		if acts := m.Classify(&e); len(acts) != 0 {
			t.Errorf("manual model should not know %s", name)
		}
	}
}

func TestManualModelVolatile(t *testing.T) {
	app := prog.New("a", "A")
	app.Volatile["C::flag"] = true
	m := NewManualModel(app)
	w := trace.Event{Kind: trace.KindWrite, Name: "C::flag", Addr: 2, Acc: trace.AccWrite}
	r := trace.Event{Kind: trace.KindRead, Name: "C::flag", Addr: 2, Acc: trace.AccRead}
	if acts := m.Classify(&w); len(acts) != 1 || acts[0].Kind != ActRelease {
		t.Error("volatile write must release")
	}
	if acts := m.Classify(&r); len(acts) != 1 || acts[0].Kind != ActAcquire {
		t.Error("volatile read must acquire")
	}
	other := trace.Event{Kind: trace.KindWrite, Name: "C::data", Addr: 3, Acc: trace.AccWrite}
	if acts := m.Classify(&other); len(acts) != 0 {
		t.Error("non-volatile field must not classify")
	}
}

func TestManualModelStaticInit(t *testing.T) {
	m := NewManualModel(prog.New("a", "A"))
	cctorEnd := trace.Event{Kind: trace.KindEnd, Name: "C::.cctor"}
	acts := m.Classify(&cctorEnd)
	if len(acts) != 1 || acts[0].Kind != ActRelease || acts[0].Channels[0] != "cctor:C" {
		t.Errorf("cctor end = %v", acts)
	}
	use := trace.Event{Kind: trace.KindBegin, Name: "C::Use"}
	acts = m.Classify(&use)
	if len(acts) != 1 || acts[0].Kind != ActAcquire || acts[0].Channels[0] != "cctor:C" {
		t.Errorf("same-class begin = %v", acts)
	}
}

func TestSherLockModelUsesInferredOnly(t *testing.T) {
	syncs := map[trace.Key]trace.Role{
		trace.KeyFor(trace.KindWrite, "C::flag"):                        trace.RoleRelease,
		trace.KeyFor(trace.KindRead, "C::flag"):                         trace.RoleAcquire,
		trace.KeyFor(trace.KindEnd, "System.Threading.Tasks.Task::Run"): trace.RoleRelease,
	}
	m := NewSherLockModel(syncs)
	w := trace.Event{Kind: trace.KindWrite, Name: "C::flag", Addr: 2, Acc: trace.AccWrite}
	if acts := m.Classify(&w); len(acts) != 1 || acts[0].Kind != ActRelease {
		t.Error("inferred write must release")
	}
	// Inferred fork API with a child becomes a fork edge.
	forkEnd := trace.Event{Kind: trace.KindEnd, Name: "System.Threading.Tasks.Task::Run", Lib: true, Child: 3}
	if acts := m.Classify(&forkEnd); len(acts) != 1 || acts[0].Kind != ActFork || acts[0].Child != 3 {
		t.Errorf("inferred fork = %v", acts)
	}
	// Monitor is NOT inferred here, so SherLock_dr does not know it.
	enter := trace.Event{Kind: trace.KindEnd, Name: prog.APIMonitorEnter, Lib: true, Addr: 4}
	if acts := m.Classify(&enter); len(acts) != 0 {
		t.Error("model must only know inferred keys")
	}
}

// End-to-end: an app with a flag sync (volatile) plus a true race. The
// manual model knows the volatile flag; a SherLock model built from real
// inference must let the detector find the true race without flagging the
// protected field.
func TestCompareEndToEnd(t *testing.T) {
	app := prog.New("race-app", "RaceApp")
	app.AddMethod("C::writer",
		prog.Cp(500),
		prog.Wr("C::data", "o", 7),
		prog.Wr("C::racy", "o", 1), // true race: no protecting sync
		prog.Cp(60),
		prog.Wr("C::flag", "o", 1),
	)
	app.AddMethod("C::reader",
		prog.Spin("C::flag", "o", 1, 150),
		prog.Rd("C::data", "o"),
		prog.Rd("C::racy", "o"), // races with the writer's write
	)
	app.AddTest("T",
		prog.Go(prog.ForkThread, "C::reader", "o", "hr"),
		prog.Go(prog.ForkThread, "C::writer", "o", "hw"),
		prog.JoinT("hr"), prog.JoinT("hw"),
	)
	app.Volatile["C::flag"] = true
	app.Truth.Sync(prog.RK("C::flag"), trace.RoleAcquire)
	app.Truth.Sync(prog.WK("C::flag"), trace.RoleRelease)
	app.Truth.Race("C::racy")

	res, err := core.Infer(context.Background(), app, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(context.Background(), app, res.SyncKeys(), DefaultCompareConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The data field is protected by the volatile flag, which both models
	// understand (annotated for Manual, inferred for SherLock): neither
	// may report a false race on C::data.
	if cmp.ManualFalse != 0 || cmp.SherFalse != 0 {
		t.Errorf("false races on a flag-protected field: %+v", cmp)
	}
}

// A cleaner end-to-end: writer and reader of C::leak are synchronized only
// by a Task.Run fork edge, which Manual_dr does not know — Manual reports a
// false race, SherLock_dr (with the inferred fork edge) stays quiet.
func TestManualFalseRaceOnTaskRun(t *testing.T) {
	app := prog.New("task-app", "TaskApp")
	app.AddMethod("C::child", prog.Cp(50), prog.Rd("C::leak", "o"))
	app.AddTest("T",
		prog.Wr("C::leak", "o", 1),
		prog.Cp(30),
		prog.Go(prog.ForkTaskRun, "C::child", "o", "h"),
		prog.WaitT("h"),
	)
	app.Truth.Sync(prog.EK(prog.ForkTaskRun.APIName()), trace.RoleRelease)
	app.Truth.Sync(prog.BK("C::child"), trace.RoleAcquire)

	res, err := core.Infer(context.Background(), app, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := Compare(context.Background(), app, res.SyncKeys(), DefaultCompareConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ManualFalse == 0 {
		t.Errorf("Manual_dr should report false races on Task.Run-only sync: %+v", cmp)
	}
	if cmp.SherFalse != 0 {
		t.Errorf("SherLock_dr should be race-free here: %+v", cmp)
	}
}

// A true race both detectors can find.
func TestTrueRaceDetectedByBoth(t *testing.T) {
	app := prog.New("racy-app", "RacyApp")
	app.AddMethod("C::w1", prog.Cp(100), prog.Wr("C::racy", "o", 1))
	app.AddMethod("C::w2", prog.Cp(100), prog.Wr("C::racy", "o", 2))
	app.AddTest("T",
		prog.Go(prog.ForkThread, "C::w1", "o", "h1"),
		prog.Go(prog.ForkThread, "C::w2", "o", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	app.Truth.Race("C::racy")

	cmp, err := Compare(context.Background(), app, nil, DefaultCompareConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ManualTrue == 0 {
		t.Errorf("manual model missed the true race: %+v", cmp)
	}
	if cmp.SherTrue == 0 {
		t.Errorf("sherlock model (empty sync set) missed the true race: %+v", cmp)
	}
}

func TestManualModelBarrier(t *testing.T) {
	m := NewManualModel(prog.New("a", "A"))
	begin := trace.Event{Kind: trace.KindBegin, Name: prog.APIBarrier, Lib: true, Addr: 6}
	end := trace.Event{Kind: trace.KindEnd, Name: prog.APIBarrier, Lib: true, Addr: 6}
	if acts := m.Classify(&begin); len(acts) != 1 || acts[0].Kind != ActRelease {
		t.Errorf("barrier arrival must release: %v", acts)
	}
	if acts := m.Classify(&end); len(acts) != 1 || acts[0].Kind != ActAcquire {
		t.Errorf("barrier return must acquire: %v", acts)
	}
}

func TestBarrierOrdersUnderManualModel(t *testing.T) {
	app := prog.New("barrier-app", "BarrierApp")
	app.AddMethod("C::party1",
		prog.CpJ(120, 0.7),
		prog.Wr("C::left", "o", 1),
		prog.Rendezvous("B", 2),
		prog.Rd("C::right", "o"),
	)
	app.AddMethod("C::party2",
		prog.CpJ(180, 0.7),
		prog.Wr("C::right", "o", 1),
		prog.Rendezvous("B", 2),
		prog.Rd("C::left", "o"),
	)
	app.AddTest("T",
		prog.Go(prog.ForkThread, "C::party1", "o", "h1"),
		prog.Go(prog.ForkThread, "C::party2", "o", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	cmp, err := Compare(context.Background(), app, nil, DefaultCompareConfig())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.ManualFalse != 0 {
		t.Errorf("manual model (knows barriers) reported %d false races", cmp.ManualFalse)
	}
}

func TestCombinedModelLayersInferredOverManual(t *testing.T) {
	app := prog.New("a", "A")
	app.Volatile["C::vol"] = true
	manual := NewManualModel(app)
	inferred := NewSherLockModel(map[trace.Key]trace.Role{
		trace.KeyFor(trace.KindWrite, "C::flag"): trace.RoleRelease,
	})
	combined := &CombinedModel{Manual: manual, Inferred: inferred}

	// Inferred knowledge wins where present.
	w := trace.Event{Kind: trace.KindWrite, Name: "C::flag", Addr: 2, Acc: trace.AccWrite}
	if acts := combined.Classify(&w); len(acts) != 1 || acts[0].Kind != ActRelease {
		t.Errorf("combined should use inferred flag: %v", acts)
	}
	// Manual fallback applies where inference is silent.
	v := trace.Event{Kind: trace.KindRead, Name: "C::vol", Addr: 3, Acc: trace.AccRead}
	if acts := combined.Classify(&v); len(acts) != 1 || acts[0].Kind != ActAcquire {
		t.Errorf("combined should fall back to manual volatile: %v", acts)
	}
	// Neither knows a plain field.
	p := trace.Event{Kind: trace.KindWrite, Name: "C::plain", Addr: 4, Acc: trace.AccWrite}
	if acts := combined.Classify(&p); len(acts) != 0 {
		t.Errorf("combined misclassified a plain access: %v", acts)
	}
}

// BenchmarkDetector measures FastTrack throughput over a realistic trace.
func BenchmarkDetector(b *testing.B) {
	app, err := core.Infer(context.Background(), mustApp(b), core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	p := mustApp(b)
	run, err := sched.Run(p, p.Tests[0], sched.Options{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	model := NewSherLockModel(app.SyncKeys())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewDetector(model)
		d.Process(run.Trace)
	}
}

func mustApp(b *testing.B) *prog.Program {
	b.Helper()
	app := prog.New("bench-app", "BenchApp")
	app.AddMethod("C::crit",
		prog.CpJ(200, 0.9),
		prog.Lock("L"),
		prog.Rd("C::n", "o"),
		prog.Wr("C::n", "o", 1),
		prog.Unlock("L"),
	)
	app.AddTest("T",
		prog.Go(prog.ForkThread, "C::crit", "o", "h1"),
		prog.Go(prog.ForkThread, "C::crit", "o", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	return app
}
