// Package report renders the experiment results as ASCII tables shaped
// like the paper's Tables 1–9 and Figure 4, for the benchmark harness and
// the command-line tools.
package report

import (
	"fmt"
	"io"
	"strings"

	"sherlock/internal/apps"
	"sherlock/internal/exper"
	"sherlock/internal/race"
)

// line writes a formatted row.
func line(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format+"\n", args...)
}

func rule(w io.Writer, n int) {
	fmt.Fprintln(w, strings.Repeat("-", n))
}

// Table1 prints the benchmark inventory (paper Table 1 metadata plus our
// scaled concurrency-scenario counts).
func Table1(w io.Writer) {
	line(w, "Table 1: Applications in benchmarks")
	line(w, "%-6s %-20s %9s %7s %11s %10s", "ID", "Name", "LoC", "#Stars", "#PaperTests", "#Scenarios")
	rule(w, 70)
	for _, p := range apps.All() {
		line(w, "%-6s %-20s %8.1fK %7d %11d %10d",
			p.Name, p.Title, float64(p.LoC)/1000, p.Stars, p.PaperTests, len(p.Tests))
	}
}

// Table2 prints inference results after 3 rounds.
func Table2(w io.Writer, rows []exper.Table2Row, unique int) {
	line(w, "Table 2: SherLock inferred results after 3 rounds")
	line(w, "%-6s %6s %10s %14s %9s %7s", "ID", "Syncs", "Data Racy", "Instr. Errors", "Not Sync", "Missed")
	rule(w, 60)
	var s, dr, ie, ns, ms int
	for _, r := range rows {
		line(w, "%-6s %6d %10d %14d %9d %7d", r.App, r.Syncs, r.DataRacy, r.InstrErrors, r.NotSync, r.Missed)
		s += r.Syncs
		dr += r.DataRacy
		ie += r.InstrErrors
		ns += r.NotSync
		ms += r.Missed
	}
	rule(w, 60)
	line(w, "%-6s %3d(%d) %10d %14d %9d %7d", "Sum", s, unique, dr, ie, ns, ms)
}

// Table3 prints the detector comparison.
func Table3(w io.Writer, cmps []*race.Comparison) {
	line(w, "Table 3: SherLock vs manual annotation in race detection")
	line(w, "(only the first data race reported in each run is counted)")
	line(w, "%-6s | %12s %14s | %13s %15s", "ID", "Manual true", "SherLock true", "Manual false", "SherLock false")
	rule(w, 72)
	var mt, st, mf, sf int
	for _, c := range cmps {
		line(w, "%-6s | %12d %14d | %13d %15d", c.App, c.ManualTrue, c.SherTrue, c.ManualFalse, c.SherFalse)
		mt += c.ManualTrue
		st += c.SherTrue
		mf += c.ManualFalse
		sf += c.SherFalse
	}
	rule(w, 72)
	line(w, "%-6s | %12d %14d | %13d %15d", "Sum", mt, st, mf, sf)
}

// Table4 prints the misclassification breakdown.
func Table4(w io.Writer, rows []exper.Table4Row) {
	line(w, "Table 4: Breakdown of false positives/negatives")
	line(w, "%-14s %12s %13s %12s", "Category", "#False Sync", "#Missed Sync", "#False Races")
	rule(w, 56)
	var fs, ms, fr int
	for _, r := range rows {
		line(w, "%-14s %12d %13d %12d", r.Category, r.FalseSyncs, r.Missed, r.FalseRaces)
		fs += r.FalseSyncs
		ms += r.Missed
		fr += r.FalseRaces
	}
	rule(w, 56)
	line(w, "%-14s %12d %13d %12d", "Total", fs, ms, fr)
}

// Table5 prints the hypothesis ablation.
func Table5(w io.Writer, rows []exper.Table5Row) {
	line(w, "Table 5: Inference with or without certain hypothesis")
	line(w, "%-32s %8s %7s %10s", "", "#Correct", "#Total", "Precision")
	rule(w, 60)
	for _, r := range rows {
		prec := "n/a"
		if r.Total > 0 {
			prec = fmt.Sprintf("%.0f%%", 100*r.Precision)
		}
		line(w, "%-32s %8d %7d %10s", r.Name, r.Correct, r.Total, prec)
	}
}

// Figure4 prints the per-round series as an ASCII chart.
func Figure4(w io.Writer, series []exper.Figure4Series) {
	line(w, "Figure 4: correctly inferred unique synchronizations per round")
	header := fmt.Sprintf("%-22s", "setting")
	if len(series) > 0 {
		for i := range series[0].Correct {
			header += fmt.Sprintf(" round%-2d", i+1)
		}
	}
	line(w, "%s", header)
	rule(w, len(header))
	for _, s := range series {
		row := fmt.Sprintf("%-22s", s.Name)
		for _, c := range s.Correct {
			row += fmt.Sprintf(" %7d", c)
		}
		line(w, "%s", row)
	}
}

// Sweep prints a λ or Near sensitivity table.
func Sweep(w io.Writer, title, param string, rows []exper.SweepRow) {
	line(w, "%s", title)
	line(w, "%-10s %8s %7s", param, "#correct", "#total")
	rule(w, 30)
	for _, r := range rows {
		line(w, "%-10.4g %8d %7d", r.Param, r.Correct, r.Total)
	}
}

// Listings prints Tables 8/9-style inferred operation lists.
func Listings(w io.Writer, ls []exper.Listing) {
	line(w, "Tables 8/9: inferred synchronizations per application")
	for _, l := range ls {
		rule(w, 76)
		line(w, "App: %s", l.App)
		line(w, "  Releases:")
		for _, r := range l.Releases {
			line(w, "    %s", r)
		}
		line(w, "  Acquires:")
		for _, a := range l.Acquires {
			line(w, "    %s", a)
		}
	}
}

// TSVD prints the Section 5.6 enhancement comparison.
func TSVD(w io.Writer, rows []exper.TSVDRow) {
	line(w, "TSVD enhancement (Section 5.6): synchronized conflicting API-call pairs")
	line(w, "%-6s %12s %12s %16s", "ID", "#Conflicting", "TSVD-synced", "SherLock-synced")
	rule(w, 50)
	var c, t, s int
	for _, r := range rows {
		line(w, "%-6s %12d %12d %16d", r.App, r.Conflicting, r.TSVDSynced, r.SherSynced)
		c += r.Conflicting
		t += r.TSVDSynced
		s += r.SherSynced
	}
	rule(w, 50)
	line(w, "%-6s %12d %12d %16d", "Sum", c, t, s)
}

// Overhead prints the Section 5.6 cost accounting.
func Overhead(w io.Writer, rows []exper.OverheadRow) {
	line(w, "Overhead (Section 5.6): instrumented+solve vs uninstrumented baseline")
	line(w, "%-6s %10s %10s %10s %8s %8s %10s", "ID", "baseline", "tracing", "solving", "events", "windows", "overhead")
	rule(w, 70)
	for _, r := range rows {
		line(w, "%-6s %10s %10s %10s %8d %8d %9.0f%%",
			r.App, r.Baseline.Round(10e3), r.Tracing.Round(10e3), r.Solving.Round(10e3),
			r.Events, r.Windows, r.OverheadPct)
	}
}
