package report

import (
	"strings"
	"testing"

	"sherlock/internal/exper"
	"sherlock/internal/prog"
	"sherlock/internal/race"
)

func TestTable1Renders(t *testing.T) {
	var b strings.Builder
	Table1(&b)
	out := b.String()
	for _, want := range []string{"Table 1", "App-1", "ApplicationInsights", "App-8", "System.Linq.Dynamic"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	rows := []exper.Table2Row{
		{App: "App-1", Syncs: 10, DataRacy: 2, InstrErrors: 1, NotSync: 3, Missed: 4},
		{App: "App-2", Syncs: 6},
	}
	var b strings.Builder
	Table2(&b, rows, 14)
	out := b.String()
	if !strings.Contains(out, "16(14)") {
		t.Errorf("sum row with unique count missing:\n%s", out)
	}
	if !strings.Contains(out, "Data Racy") {
		t.Error("header missing")
	}
}

func TestTable3Renders(t *testing.T) {
	var b strings.Builder
	Table3(&b, []*race.Comparison{
		{App: "App-1", ManualTrue: 1, SherTrue: 5, ManualFalse: 40, SherFalse: 3},
		{App: "App-2", ManualFalse: 2},
	})
	out := b.String()
	for _, want := range []string{"Manual true", "SherLock false", "Sum"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3 missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "42") { // summed manual false
		t.Error("sums not computed")
	}
}

func TestTable4And5Render(t *testing.T) {
	var b strings.Builder
	Table4(&b, []exper.Table4Row{
		{Category: prog.CatInstrError, FalseSyncs: 5, Missed: 3, FalseRaces: 17},
	})
	if !strings.Contains(b.String(), "instr-errors") {
		t.Error("Table 4 category missing")
	}

	b.Reset()
	Table5(&b, []exper.Table5Row{
		{Name: "SherLock", Correct: 10, Total: 12, Precision: 0.8333},
		{Name: "w/o Mostly are Protected", Correct: 0, Total: 0},
	})
	out := b.String()
	if !strings.Contains(out, "83%") || !strings.Contains(out, "n/a") {
		t.Errorf("Table 5 precision formatting wrong:\n%s", out)
	}
}

func TestFigure4AndSweepRender(t *testing.T) {
	var b strings.Builder
	Figure4(&b, []exper.Figure4Series{
		{Name: "SherLock", Correct: []int{10, 12, 12}},
		{Name: "no delay injection", Correct: []int{10, 10, 10}},
	})
	out := b.String()
	if !strings.Contains(out, "round3") || !strings.Contains(out, "no delay injection") {
		t.Errorf("Figure 4 rendering wrong:\n%s", out)
	}

	b.Reset()
	Sweep(&b, "Table 6: sensitivity of lambda", "lambda", []exper.SweepRow{
		{Param: 0.2, Correct: 63, Total: 91},
		{Param: 100, Correct: 0, Total: 0},
	})
	if !strings.Contains(b.String(), "0.2") {
		t.Error("sweep param missing")
	}
}

func TestListingsAndTSVDRender(t *testing.T) {
	var b strings.Builder
	Listings(&b, []exper.Listing{{
		App:      "App-7 (Stastd)",
		Releases: []string{"DataflowBlock::Post-End"},
		Acquires: []string{"MessageHandler-Begin"},
	}})
	out := b.String()
	if !strings.Contains(out, "Post-End") || !strings.Contains(out, "Acquires:") {
		t.Errorf("listing rendering wrong:\n%s", out)
	}

	b.Reset()
	TSVD(&b, []exper.TSVDRow{{App: "App-1", Conflicting: 3, TSVDSynced: 2, SherSynced: 3}})
	if !strings.Contains(b.String(), "TSVD-synced") {
		t.Error("TSVD header missing")
	}
}

func TestOverheadRenders(t *testing.T) {
	var b strings.Builder
	Overhead(&b, []exper.OverheadRow{
		{App: "App-1", Baseline: 1000, Tracing: 3000, Solving: 2000, Events: 10, Windows: 4, OverheadPct: 400},
	})
	out := b.String()
	if !strings.Contains(out, "400%") {
		t.Errorf("overhead percent missing:\n%s", out)
	}
}
