package sched

import (
	"bytes"
	"sync"
	"testing"

	"sherlock/internal/prog"
)

// TestRunConcurrentSameProgram exercises the documented guarantee that Run
// is safe for concurrent use against a shared Program: the engine's worker
// pool issues many simultaneous Runs of the same (finalized-on-first-use)
// program. Under `go test -race` this doubles as a data-race check; beyond
// safety, runs with equal options must stay deterministic — every goroutine
// gets the identical trace.
func TestRunConcurrentSameProgram(t *testing.T) {
	p := prog.New("conc", "Conc")
	p.AddMethod("C::inc",
		prog.Lock("L"),
		prog.Rd("C::n", "o"),
		prog.Cp(40),
		prog.Wr("C::n", "o", 1),
		prog.Unlock("L"),
	)
	p.AddTest("T",
		prog.Go(prog.ForkThread, "C::inc", "o", "h1"),
		prog.Go(prog.ForkThread, "C::inc", "o", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	// Deliberately NOT finalized here: the first concurrent Run calls
	// Finalize, which must serialize internally.

	const goroutines = 8
	traces := make([][]byte, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			res, err := Run(p, p.Tests[0], Options{Seed: 42})
			if err != nil {
				errs[g] = err
				return
			}
			var buf bytes.Buffer
			if err := res.Trace.Write(&buf); err != nil {
				errs[g] = err
				return
			}
			traces[g] = buf.Bytes()
		}(g)
	}
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	for g := 1; g < goroutines; g++ {
		if !bytes.Equal(traces[0], traces[g]) {
			t.Fatalf("goroutine %d produced a different trace for the same seed", g)
		}
	}
	if len(traces[0]) == 0 {
		t.Fatal("empty trace")
	}
}
