package sched

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"sherlock/internal/obs"
	"sherlock/internal/prog"
)

// flipCtx is a context that starts live and reports context.Canceled from
// the nth Err call on — a deterministic stand-in for "canceled while the
// scheduler loop is running", with no goroutine races.
type flipCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *flipCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// spinProgram builds a single-test program whose body loops long enough to
// guarantee the scheduler passes several 256-step poll points.
func spinProgram() *prog.Program {
	p := prog.New("app", "App")
	p.AddMethod("C::work", prog.Cp(10), prog.Wr("C::x", "o", 1))
	var body []prog.Stmt
	for i := 0; i < 400; i++ {
		body = append(body, prog.Do("C::work", "o"))
	}
	p.AddTest("T", body...)
	return p
}

func TestRunContextPreCanceled(t *testing.T) {
	p := spinProgram()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, p, p.Tests[0], Options{Seed: 1})
	if res != nil {
		t.Error("pre-canceled run must not return a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "not started") {
		t.Errorf("pre-cancel error should say the run never started: %v", err)
	}
}

// TestRunContextCancelsMidLoop: cancellation arriving while the loop is
// executing aborts at the next poll point (every 256 steps) rather than
// running the schedule to completion, and the error wraps ctx.Err().
func TestRunContextCancelsMidLoop(t *testing.T) {
	p := spinProgram()

	// Baseline: how many steps does the full schedule take?
	full, err := RunContext(context.Background(), p, p.Tests[0], Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if full.Steps < 1024 {
		t.Fatalf("spin program too short to exercise the poll point: %d steps", full.Steps)
	}

	// The first Err call is RunContext's pre-start check; flip on the
	// second so the first in-loop poll observes the cancellation.
	ctx := &flipCtx{Context: context.Background(), after: 1}
	res, err := RunContext(ctx, p, p.Tests[0], Options{Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "canceled after") {
		t.Errorf("mid-loop cancel error should report the step count: %v", err)
	}
	// The partial result (what executed before the poll) rides along with
	// the error; the abort must be prompt, not a full schedule.
	if res == nil {
		t.Fatal("mid-loop cancel should surface the partial result")
	}
	if res.Steps >= full.Steps {
		t.Fatalf("cancel was not prompt: ran %d of %d steps", res.Steps, full.Steps)
	}
}

func TestRunContextRecordsSchedSpan(t *testing.T) {
	p := spinProgram()
	mem := obs.NewMemorySink()
	tr := obs.New(mem)
	root := tr.Root("campaign", "x")
	if _, err := RunContext(context.Background(), p, p.Tests[0], Options{Seed: 1, Span: root}); err != nil {
		t.Fatal(err)
	}
	root.End()
	render := mem.Render()
	if !strings.Contains(render, "  sched{") ||
		!strings.Contains(render, "seed=1") ||
		!strings.Contains(render, "deadlocked=false") {
		t.Fatalf("sched span missing or unannotated:\n%s", render)
	}
}
