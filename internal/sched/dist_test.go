package sched

import (
	"testing"
)

func TestValidDist(t *testing.T) {
	for _, d := range []string{"", DistUniform, DistZipf, DistBursty} {
		if !ValidDist(d) {
			t.Errorf("ValidDist(%q) = false", d)
		}
	}
	for _, d := range []string{"gaussian", "Zipf", "uniform "} {
		if ValidDist(d) {
			t.Errorf("ValidDist(%q) = true", d)
		}
	}
}

// TestStepDistDeterminism: every distribution reproduces an identical
// trace for an identical seed — the property campaign replay and
// content-addressed caching stand on.
func TestStepDistDeterminism(t *testing.T) {
	for _, dist := range append([]string{""}, Dists...) {
		for seed := int64(1); seed < 6; seed++ {
			p := genProgram(seed)
			r1, err := Run(p, p.Tests[0], Options{Seed: seed, StepDist: dist})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := Run(p, p.Tests[0], Options{Seed: seed, StepDist: dist})
			if err != nil {
				t.Fatal(err)
			}
			if r1.Trace.Len() != r2.Trace.Len() {
				t.Fatalf("dist %q seed %d: lengths differ", dist, seed)
			}
			for i := range r1.Trace.Events {
				if r1.Trace.Events[i].String() != r2.Trace.Events[i].String() {
					t.Fatalf("dist %q seed %d: event %d differs", dist, seed, i)
				}
			}
		}
	}
}

// TestStepDistChangesTiming: the non-uniform distributions must actually
// perturb dispatch timing relative to the uniform draw (else the knob is
// inert); the uniform spellings "" and DistUniform must agree exactly.
func TestStepDistChangesTiming(t *testing.T) {
	p := genProgram(3)
	stamps := func(dist string) []int64 {
		r, err := Run(p, p.Tests[0], Options{Seed: 11, StepDist: dist})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]int64, r.Trace.Len())
		for i, e := range r.Trace.Events {
			out[i] = e.Time
		}
		return out
	}
	eq := func(a, b []int64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	def, uni := stamps(""), stamps(DistUniform)
	if !eq(def, uni) {
		t.Fatal(`"" and "uniform" must schedule identically`)
	}
	if eq(def, stamps(DistZipf)) && eq(def, stamps(DistBursty)) {
		t.Fatal("zipf and bursty both reproduced the uniform timeline; the knob is inert")
	}
}
