// Statement execution: one scheduler step interprets one statement of the
// chosen thread, either completing it (advancing the frame's pc) or parking
// the thread with a wake closure that completes it later.
package sched

import (
	"fmt"

	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

// spawnGap is the virtual-time gap between a fork and the child's first
// instruction.
const spawnGap = 10

// step executes one statement of th (or serves one pending delay phase, or
// performs one method exit).
func (m *machine) step(th *thread) {
	var f *frame
	for {
		if len(th.stack) == 0 {
			m.finishThread(th, th.handle)
			return
		}
		f = th.stack[len(th.stack)-1]
		if f.pc < len(f.stmts) {
			break
		}
		if f.remain > 1 { // loop frame restarts
			f.remain--
			f.pc = 0
			break
		}
		if f.isMethod {
			// Method exit is a scheduling step of its own so that an
			// injected end-of-method delay holds back the exit's effects.
			if m.serveDelay(th, delayMarker{f: f, pc: -1}, 0,
				trace.KeyFor(trace.KindEnd, f.method)) {
				return
			}
			th.stack = th.stack[:len(th.stack)-1]
			m.exitMethod(th, f)
			return
		}
		th.stack = th.stack[:len(th.stack)-1]
	}
	s := f.stmts[f.pc]
	if keys := delayKeysFor(s); len(keys) > 0 &&
		m.serveDelay(th, delayMarker{f: f, pc: f.pc}, s.Site(), keys...) {
		return
	}
	th.clock += m.dispatch()

	switch st := s.(type) {
	case *prog.Compute:
		th.clock += m.jitter(st.Dur, st.Jitter)
		f.pc++

	case *prog.Sleep:
		th.clock += st.Dur
		f.pc++

	case *prog.Read:
		obj := m.objID(st.Slot)
		a := m.addr(st.Field, obj)
		th.clock += m.jitter(costAccess, 0.3)
		m.emit(trace.Event{
			Time: th.clock, Thread: th.id, Kind: trace.KindRead,
			Name: st.Field, Addr: a, Site: st.Site(), Acc: trace.AccRead,
		})
		f.pc++

	case *prog.Write:
		obj := m.objID(st.Slot)
		a := m.addr(st.Field, obj)
		th.clock += m.jitter(costAccess, 0.3)
		m.fieldVal[a] = st.Val
		m.emit(trace.Event{
			Time: th.clock, Thread: th.id, Kind: trace.KindWrite,
			Name: st.Field, Addr: a, Site: st.Site(), Acc: trace.AccWrite,
		})
		f.pc++

	case *prog.SpinUntil:
		obj := m.objID(st.Slot)
		a := m.addr(st.Field, obj)
		th.clock += m.jitter(costAccess, 0.3)
		m.emit(trace.Event{
			Time: th.clock, Thread: th.id, Kind: trace.KindRead,
			Name: st.Field, Addr: a, Site: st.Site(), Acc: trace.AccRead,
		})
		if m.fieldVal[a] == st.Want {
			f.pc++
		} else {
			// Poll again after backoff; the statement stays current.
			th.clock += m.jitter(st.Backoff, 0.5)
		}

	case *prog.Call:
		f.pc++
		m.pushCall(th, st.Method, m.objID(st.Slot))

	case *prog.Loop:
		f.pc++
		if st.N > 0 {
			th.stack = append(th.stack, &frame{stmts: st.Body, remain: st.N})
		}

	case *prog.AcquireLock:
		l := m.lock(st.Lock)
		a := m.res("lock", st.Lock)
		m.libBegin(th, prog.APIMonitorEnter, st.Site(), a, 0, nil)
		finishAcq := func(now int64) {
			l.holder = th.id
			m.libEnd(th, prog.APIMonitorEnter, st.Site(), a, 0, nil)
			f.pc++
		}
		if l.holder == -1 {
			finishAcq(th.clock)
		} else {
			m.block(th, func(int64) bool { return l.holder == -1 }, finishAcq)
		}

	case *prog.ReleaseLock:
		l := m.lock(st.Lock)
		a := m.res("lock", st.Lock)
		m.libBegin(th, prog.APIMonitorExit, st.Site(), a, 0, nil)
		l.holder = -1
		m.libEnd(th, prog.APIMonitorExit, st.Site(), a, 0, nil)
		f.pc++
		m.wakeBlocked(th.clock)

	case *prog.SemSet:
		a := m.res("sem", st.Sem)
		m.libBegin(th, prog.APISemSet, st.Site(), a, 0, nil)
		m.sems[st.Sem]++
		m.libEnd(th, prog.APISemSet, st.Site(), a, 0, nil)
		f.pc++
		m.wakeBlocked(th.clock)

	case *prog.SemWait:
		a := m.res("sem", st.Sem)
		m.libBegin(th, prog.APISemWait, st.Site(), a, 0, nil)
		finish := func(now int64) {
			m.sems[st.Sem]--
			m.libEnd(th, prog.APISemWait, st.Site(), a, 0, nil)
			f.pc++
		}
		if m.sems[st.Sem] > 0 {
			finish(th.clock)
		} else {
			m.block(th, func(int64) bool { return m.sems[st.Sem] > 0 }, finish)
		}

	case *prog.WaitAll:
		ids := make([]uint64, len(st.Sems))
		for i, s := range st.Sems {
			ids[i] = m.res("sem", s)
		}
		var first uint64
		if len(ids) > 0 {
			first = ids[0]
		}
		m.libBegin(th, prog.APIWaitAll, st.Site(), first, 0, ids)
		ready := func(int64) bool {
			for _, s := range st.Sems {
				if m.sems[s] <= 0 {
					return false
				}
			}
			return true
		}
		finish := func(now int64) {
			for _, s := range st.Sems {
				m.sems[s]--
			}
			m.libEnd(th, prog.APIWaitAll, st.Site(), first, 0, ids)
			f.pc++
		}
		if ready(th.clock) {
			finish(th.clock)
		} else {
			m.block(th, ready, finish)
		}

	case *prog.Post:
		api := st.API
		if api == "" {
			api = prog.APIPost
		}
		a := m.res("queue", st.Queue)
		m.libBegin(th, api, st.Site(), a, 0, nil)
		m.queues[st.Queue]++
		m.libEnd(th, api, st.Site(), a, 0, nil)
		f.pc++
		m.wakeBlocked(th.clock)

	case *prog.Receive:
		api := st.API
		if api == "" {
			api = prog.APIReceive
		}
		a := m.res("queue", st.Queue)
		m.libBegin(th, api, st.Site(), a, 0, nil)
		finish := func(now int64) {
			m.queues[st.Queue]--
			m.libEnd(th, api, st.Site(), a, 0, nil)
			f.pc++
			if st.Handler != "" {
				m.pushCall(th, st.Handler, m.objID(st.HandlerSlot))
			}
		}
		if m.queues[st.Queue] > 0 {
			finish(th.clock)
		} else {
			m.block(th, func(int64) bool { return m.queues[st.Queue] > 0 }, finish)
		}

	case *prog.Fork:
		api := st.API.APIName()
		m.libBegin(th, api, st.Site(), 0, 0, nil)
		child := m.newThread(th.clock + spawnGap + costLib)
		child.handle = st.Handle
		m.handleTID[st.Handle] = child.id
		m.libEnd(th, api, st.Site(), 0, child.id, nil)
		f.pc++
		child.clock = th.clock + spawnGap
		m.pushCall(child, st.Method, m.objID(st.Slot))

	case *prog.Join:
		api := st.API.APIName()
		jc := m.handleTID[st.Handle]
		m.libBegin(th, api, st.Site(), 0, jc, nil)
		h := m.handle(st.Handle)
		finish := func(now int64) {
			m.libEnd(th, api, st.Site(), 0, jc, nil)
			f.pc++
		}
		if h.done {
			finish(th.clock)
		} else {
			m.block(th, func(int64) bool { return h.done }, finish)
		}

	case *prog.ContinueWith:
		m.libBegin(th, prog.APIContinueWith, st.Site(), 0, 0, nil)
		h := m.handle(st.Handle)
		obj := m.objID(st.Slot)
		fire := func(now int64) {
			child := m.newThread(now + spawnGap)
			child.handle = st.NewHandle
			m.handleTID[st.NewHandle] = child.id
			m.pushCall(child, st.Method, obj)
		}
		if h.done {
			at := h.doneAt
			if th.clock > at {
				at = th.clock
			}
			fire(at)
		} else {
			h.conts = append(h.conts, fire)
		}
		m.libEnd(th, prog.APIContinueWith, st.Site(), 0, 0, nil)
		f.pc++

	case *prog.UnsafeCall:
		obj := m.objID(st.Slot)
		th.clock += m.jitter(20, 0.3)
		m.emit(trace.Event{
			Time: th.clock, Thread: th.id, Kind: trace.KindBegin,
			Name: st.API, Addr: obj, Site: st.Site(),
			Lib: true, Unsafe: true, Acc: st.Acc,
		})
		dur := st.Dur
		if dur == 0 {
			dur = costLib
		}
		th.clock += m.jitter(dur, 0.3)
		m.emit(trace.Event{
			Time: th.clock, Thread: th.id, Kind: trace.KindEnd,
			Name: st.API, Addr: obj, Site: st.Site(), Lib: true,
		})
		f.pc++

	case *prog.RWAcquireRead:
		l := m.rwlock(st.Lock)
		a := m.res("rw", st.Lock)
		m.libBegin(th, prog.APIRWAcquireRead, st.Site(), a, 0, nil)
		finish := func(now int64) {
			l.readers[th.id] = true
			m.libEnd(th, prog.APIRWAcquireRead, st.Site(), a, 0, nil)
			f.pc++
		}
		if l.writer == -1 {
			finish(th.clock)
		} else {
			m.block(th, func(int64) bool { return l.writer == -1 }, finish)
		}

	case *prog.RWReleaseRead:
		l := m.rwlock(st.Lock)
		a := m.res("rw", st.Lock)
		m.libBegin(th, prog.APIRWReleaseRead, st.Site(), a, 0, nil)
		delete(l.readers, th.id)
		m.libEnd(th, prog.APIRWReleaseRead, st.Site(), a, 0, nil)
		f.pc++
		m.wakeBlocked(th.clock)

	case *prog.RWUpgrade:
		// Double-role API: releases the caller's read hold, then acquires
		// the write hold — all inside one library call.
		l := m.rwlock(st.Lock)
		a := m.res("rw", st.Lock)
		m.libBegin(th, prog.APIRWUpgrade, st.Site(), a, 0, nil)
		delete(l.readers, th.id)
		m.wakeBlocked(th.clock)
		ready := func(int64) bool { return l.writer == -1 && len(l.readers) == 0 }
		finish := func(now int64) {
			l.writer = th.id
			m.libEnd(th, prog.APIRWUpgrade, st.Site(), a, 0, nil)
			f.pc++
		}
		if ready(th.clock) {
			finish(th.clock)
		} else {
			m.block(th, ready, finish)
		}

	case *prog.RWDowngrade:
		l := m.rwlock(st.Lock)
		a := m.res("rw", st.Lock)
		m.libBegin(th, prog.APIRWDowngrade, st.Site(), a, 0, nil)
		l.writer = -1
		l.readers[th.id] = true
		m.libEnd(th, prog.APIRWDowngrade, st.Site(), a, 0, nil)
		f.pc++
		m.wakeBlocked(th.clock)

	case *prog.HiddenAcquire:
		l := m.lock(st.Lock)
		finish := func(now int64) {
			l.holder = th.id
			th.clock += m.jitter(costLib, 0.3)
			f.pc++
		}
		if l.holder == -1 {
			finish(th.clock)
		} else {
			m.block(th, func(int64) bool { return l.holder == -1 }, finish)
		}

	case *prog.HiddenRelease:
		l := m.lock(st.Lock)
		l.holder = -1
		th.clock += m.jitter(costLib, 0.3)
		f.pc++
		m.wakeBlocked(th.clock)

	case *prog.HiddenSignal:
		m.sems[st.Sem]++
		th.clock += m.jitter(costLib, 0.3)
		f.pc++
		m.wakeBlocked(th.clock)

	case *prog.HiddenWait:
		finish := func(now int64) {
			m.sems[st.Sem]--
			th.clock += m.jitter(costLib, 0.3)
			f.pc++
		}
		if m.sems[st.Sem] > 0 {
			finish(th.clock)
		} else {
			m.block(th, func(int64) bool { return m.sems[st.Sem] > 0 }, finish)
		}

	case *prog.BarrierWait:
		b := m.barrier(st.Barrier)
		a := m.res("barrier", st.Barrier)
		m.libBegin(th, prog.APIBarrier, st.Site(), a, 0, nil)
		gen := b.generation
		b.arrived++
		if b.arrived >= st.Parties {
			// Last arrival trips the barrier: new generation, wake all.
			b.arrived = 0
			b.generation++
			m.libEnd(th, prog.APIBarrier, st.Site(), a, 0, nil)
			f.pc++
			m.wakeBlocked(th.clock)
		} else {
			m.block(th,
				func(int64) bool { return b.generation != gen },
				func(now int64) {
					m.libEnd(th, prog.APIBarrier, st.Site(), a, 0, nil)
					f.pc++
				})
		}

	case *prog.LibWait:
		jc := m.handleTID[st.Handle]
		m.libBegin(th, st.API, st.Site(), 0, jc, nil)
		h := m.handle(st.Handle)
		finish := func(now int64) {
			m.libEnd(th, st.API, st.Site(), 0, jc, nil)
			f.pc++
		}
		if h.done {
			finish(th.clock)
		} else {
			m.block(th, func(int64) bool { return h.done }, finish)
		}

	case *prog.HiddenFork:
		f.pc++
		child := m.newThread(th.clock + spawnGap)
		child.handle = st.Handle
		m.handleTID[st.Handle] = child.id
		m.pushCall(child, st.Method, m.objID(st.Slot))

	case *prog.EnsureInit:
		ini, ok := m.inits[st.Class]
		if !ok {
			ini = &initState{}
			m.inits[st.Class] = ini
		}
		switch ini.phase {
		case 0:
			ini.phase = 1
			f.pc++
			cf := m.pushCall(th, st.Ctor, 0)
			cf.onExit = func(now int64) {
				ini.phase = 2
			}
		case 1:
			m.block(th,
				func(int64) bool { return ini.phase == 2 },
				func(now int64) { f.pc++ })
		default:
			f.pc++
		}

	case *prog.FinalizeObj:
		obj := m.objID(st.Slot)
		f.pc++
		gc := m.newThread(th.clock + st.GCDelay)
		m.pushCall(gc, st.Method, obj)

	case *runTestBody:
		f.pc++
		const bodyHandle = "@test-body"
		child := m.newThread(th.clock + spawnGap)
		child.handle = bodyHandle
		m.pushMethodFrame(child, st.method, 0)
		h := m.handle(bodyHandle)
		m.block(th,
			func(int64) bool { return h.done },
			func(now int64) {})

	default:
		panic(fmt.Sprintf("sched: unknown statement type %T", s))
	}
}

// libBegin emits the immediately-before call-site event of a library API.
// Delay injection for the API's candidate keys happened in the preceding
// delay phase (see serveDelay). addr identifies the resource the call
// operates on (lock, semaphore, queue), child the thread it spawns/joins,
// extra any additional resources (WaitAll handles) — information real
// instrumentation reads from the call's arguments.
func (m *machine) libBegin(th *thread, api string, site int, addr uint64, child int, extra []uint64) {
	th.clock += m.jitter(20, 0.3)
	m.emit(trace.Event{
		Time: th.clock, Thread: th.id, Kind: trace.KindBegin,
		Name: api, Site: site, Lib: true, Addr: addr, Child: child, Extra: extra,
	})
}

// libEnd emits the immediately-after call-site event.
func (m *machine) libEnd(th *thread, api string, site int, addr uint64, child int, extra []uint64) {
	th.clock += m.jitter(costLib, 0.3)
	m.emit(trace.Event{
		Time: th.clock, Thread: th.id, Kind: trace.KindEnd,
		Name: api, Site: site, Lib: true, Addr: addr, Child: child, Extra: extra,
	})
}

// res returns a stable resource id for a named lock/semaphore/queue.
func (m *machine) res(kind, name string) uint64 {
	return m.objID("$" + kind + "$" + name)
}

// delayKeysFor returns the candidate keys a planned delay may target for a
// statement: the keys whose operations this statement performs. Delays on
// method-begin keys of forked delegates are served at the Call/Fork site's
// granularity; the Perturber only ever delays release-capable keys, so this
// covers every practical plan.
func delayKeysFor(s Stmt) []trace.Key {
	switch st := s.(type) {
	case *prog.Read:
		return []trace.Key{trace.KeyFor(trace.KindRead, st.Field)}
	case *prog.Write:
		return []trace.Key{trace.KeyFor(trace.KindWrite, st.Field)}
	case *prog.Call:
		return []trace.Key{trace.KeyFor(trace.KindBegin, st.Method)}
	case *prog.AcquireLock:
		return apiKeys(prog.APIMonitorEnter)
	case *prog.ReleaseLock:
		return apiKeys(prog.APIMonitorExit)
	case *prog.SemSet:
		return apiKeys(prog.APISemSet)
	case *prog.SemWait:
		return apiKeys(prog.APISemWait)
	case *prog.WaitAll:
		return apiKeys(prog.APIWaitAll)
	case *prog.Post:
		if st.API != "" {
			return apiKeys(st.API)
		}
		return apiKeys(prog.APIPost)
	case *prog.Receive:
		if st.API != "" {
			return apiKeys(st.API)
		}
		return apiKeys(prog.APIReceive)
	case *prog.Fork:
		return apiKeys(st.API.APIName())
	case *prog.Join:
		return apiKeys(st.API.APIName())
	case *prog.ContinueWith:
		return apiKeys(prog.APIContinueWith)
	case *prog.UnsafeCall:
		return apiKeys(st.API)
	case *prog.LibWait:
		return apiKeys(st.API)
	case *prog.BarrierWait:
		return apiKeys(prog.APIBarrier)
	case *prog.RWAcquireRead:
		return apiKeys(prog.APIRWAcquireRead)
	case *prog.RWReleaseRead:
		return apiKeys(prog.APIRWReleaseRead)
	case *prog.RWUpgrade:
		return apiKeys(prog.APIRWUpgrade)
	case *prog.RWDowngrade:
		return apiKeys(prog.APIRWDowngrade)
	}
	return nil
}

// apiKeys returns both call-site candidate keys of a library API.
func apiKeys(api string) []trace.Key {
	return []trace.Key{
		trace.KeyFor(trace.KindBegin, api),
		trace.KeyFor(trace.KindEnd, api),
	}
}
