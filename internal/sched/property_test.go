package sched

import (
	"fmt"
	"math/rand"
	"testing"

	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

// genProgram builds a random deadlock-free program: a handful of methods
// made of computes, heap accesses, balanced critical sections, nested calls
// and library ops; a test that forks every method and joins all of them.
func genProgram(seed int64) *prog.Program {
	rng := rand.New(rand.NewSource(seed))
	p := prog.New(fmt.Sprintf("rand-%d", seed), "Random")

	fields := []string{"R.C::a", "R.C::b", "R.D::c"}
	locks := []string{"l1", "l2"}
	sems := []string{"s1", "s2"}

	// Leaf methods first so calls always reference existing methods.
	var names []string
	nMethods := 2 + rng.Intn(3)
	for i := 0; i < nMethods; i++ {
		name := fmt.Sprintf("R.C::m%d", i)
		var body []prog.Stmt
		nStmts := 1 + rng.Intn(5)
		for s := 0; s < nStmts; s++ {
			switch rng.Intn(6) {
			case 0:
				body = append(body, prog.CpJ(int64(50+rng.Intn(300)), 0.5))
			case 1:
				body = append(body, prog.Rd(fields[rng.Intn(len(fields))], "o"))
			case 2:
				body = append(body, prog.Wr(fields[rng.Intn(len(fields))], "o", int64(rng.Intn(9))))
			case 3:
				l := locks[rng.Intn(len(locks))]
				body = append(body,
					prog.Lock(l),
					prog.Rd(fields[rng.Intn(len(fields))], "o"),
					prog.Unlock(l),
				)
			case 4:
				// Signal a semaphore (never wait: waits could deadlock
				// without a guaranteed signaler).
				body = append(body, prog.Set(sems[rng.Intn(len(sems))]))
			case 5:
				if len(names) > 0 {
					body = append(body, prog.Do(names[rng.Intn(len(names))], "o"))
				} else {
					body = append(body, prog.Cp(40))
				}
			}
		}
		p.AddMethod(name, body...)
		names = append(names, name)
	}

	var test []prog.Stmt
	for i, n := range names {
		test = append(test, prog.Go(prog.ForkThread, n, "o", fmt.Sprintf("h%d", i)))
	}
	for i := range names {
		test = append(test, prog.JoinT(fmt.Sprintf("h%d", i)))
	}
	p.AddTest("T", test...)
	return p
}

// TestRandomProgramsTraceInvariants checks structural trace invariants over
// many random programs and seeds:
//
//  1. events are time-ordered;
//  2. per thread, Begin/End events nest with stack discipline and are
//     balanced at thread exit;
//  3. every event has a name; accesses have addresses; lib events are
//     flagged;
//  4. the run terminates without deadlock.
func TestRandomProgramsTraceInvariants(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		p := genProgram(seed)
		if err := p.Finalize(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for run := int64(0); run < 3; run++ {
			res, err := Run(p, p.Tests[0], Options{Seed: seed*100 + run})
			if err != nil {
				t.Fatalf("seed %d run %d: %v", seed, run, err)
			}
			if res.Deadlocked {
				t.Fatalf("seed %d run %d: deadlock in a deadlock-free program", seed, run)
			}
			checkInvariants(t, res.Trace, seed, run)
		}
	}
}

func checkInvariants(t *testing.T, tr *trace.Trace, seed, run int64) {
	t.Helper()
	var prev int64
	stacks := map[int][]string{}
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Time < prev {
			t.Fatalf("seed %d run %d: trace not time-ordered at %d", seed, run, i)
		}
		prev = e.Time
		if e.Name == "" {
			t.Fatalf("seed %d run %d: unnamed event %v", seed, run, e)
		}
		switch e.Kind {
		case trace.KindRead, trace.KindWrite:
			if e.Addr == 0 {
				t.Fatalf("seed %d run %d: access without address: %v", seed, run, e)
			}
		case trace.KindBegin:
			stacks[e.Thread] = append(stacks[e.Thread], e.Name)
		case trace.KindEnd:
			st := stacks[e.Thread]
			if len(st) == 0 {
				t.Fatalf("seed %d run %d: End without Begin: %v", seed, run, e)
			}
			if st[len(st)-1] != e.Name {
				t.Fatalf("seed %d run %d: interleaved Begin/End on thread %d: got %s, open %s",
					seed, run, e.Thread, e.Name, st[len(st)-1])
			}
			stacks[e.Thread] = st[:len(st)-1]
		}
	}
	for tid, st := range stacks {
		if len(st) != 0 {
			t.Fatalf("seed %d run %d: thread %d exits with open frames %v", seed, run, tid, st)
		}
	}
}

// TestRandomProgramsDeterminism: identical seeds reproduce identical traces
// across random programs.
func TestRandomProgramsDeterminism(t *testing.T) {
	for seed := int64(50); seed < 60; seed++ {
		p1 := genProgram(seed)
		p2 := genProgram(seed)
		r1, err := Run(p1, p1.Tests[0], Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Run(p2, p2.Tests[0], Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if r1.Trace.Len() != r2.Trace.Len() {
			t.Fatalf("seed %d: lengths differ", seed)
		}
		for i := range r1.Trace.Events {
			if r1.Trace.Events[i].String() != r2.Trace.Events[i].String() {
				t.Fatalf("seed %d: event %d differs", seed, i)
			}
		}
	}
}

// TestMutualExclusionInvariantUnderRandomSchedules: for many seeds, two
// threads in lock-guarded critical sections never interleave their section
// accesses.
func TestMutualExclusionInvariantUnderRandomSchedules(t *testing.T) {
	p := prog.New("mutex-prop", "MutexProp")
	p.AddMethod("C::crit",
		prog.CpJ(200, 0.9),
		prog.Lock("L"),
		prog.Wr("C::in", "o", 1),
		prog.Cp(100),
		prog.Wr("C::out", "o", 1),
		prog.Unlock("L"),
	)
	p.AddTest("T",
		prog.Go(prog.ForkThread, "C::crit", "o", "h1"),
		prog.Go(prog.ForkThread, "C::crit", "o", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	p.MustFinalize()
	for seed := int64(1); seed <= 60; seed++ {
		res, err := Run(p, p.Tests[0], Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		// Section = [write C::in, write C::out] per thread; sections from
		// different threads must not overlap.
		type span struct{ in, out int64 }
		spans := map[int]*span{}
		for _, e := range res.Trace.Events {
			if e.Kind != trace.KindWrite {
				continue
			}
			switch e.Name {
			case "C::in":
				spans[e.Thread] = &span{in: e.Time}
			case "C::out":
				if s := spans[e.Thread]; s != nil && s.out == 0 {
					s.out = e.Time
				}
			}
		}
		var list []*span
		for _, s := range spans {
			list = append(list, s)
		}
		if len(list) == 2 && list[0].in < list[1].out && list[1].in < list[0].out {
			t.Fatalf("seed %d: critical sections overlap: %+v %+v", seed, list[0], list[1])
		}
	}
}
