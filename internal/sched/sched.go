// Package sched executes a prog.Program under a seeded discrete-event
// scheduler, standing in for the real runtime + Mono.Cecil instrumentation
// of the SherLock paper. It produces traces in the paper's log schema
// (internal/trace), supports delay injection before arbitrary candidate
// operations (the Perturber's tool), and can hide methods from the emitted
// trace (simulating the paper's instrumentation errors).
//
// Time is virtual (nanoseconds). The scheduler always advances the runnable
// thread with the smallest clock, so resource state changes happen in
// global time order and causality is exact; nondeterminism comes from
// per-statement duration jitter and dispatch latency drawn from a seeded
// PRNG, which is enough to flip the order of racing operations across
// seeds.
package sched

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"sherlock/internal/obs"
	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

// Default virtual-time costs (nanoseconds).
const (
	costAccess   = 30 // heap read/write
	costMethod   = 20 // method entry/exit bookkeeping
	costLib      = 50 // library call service time
	costDispatch = 15 // scheduling latency upper bound per statement
)

// Options configures one execution.
type Options struct {
	// Seed drives all scheduling randomness. Equal seeds reproduce equal
	// interleavings bit-for-bit.
	Seed int64
	// Delays maps candidate keys to an injected delay (virtual ns) applied
	// immediately before every dynamic instance of the operation — the
	// Perturber's 100 ms (paper Section 4.3), scaled to virtual time.
	Delays map[trace.Key]int64
	// SiteDelays injects a delay before every dynamic instance of a
	// specific static statement site — the granularity TSVD works at.
	SiteDelays map[int]int64
	// DelayProbability applies each planned delay with this probability
	// per dynamic instance (0 or 1 mean always — the paper's default; its
	// footnote 1 reports probabilistic injection performs similarly).
	DelayProbability float64
	// HiddenMethods suppresses Begin/End events of the named application
	// methods (instrumentation-error simulation). The methods still run.
	HiddenMethods map[string]bool
	// MaxSteps bounds execution; 0 means the default (2,000,000).
	MaxSteps int
	// StepDist selects the distribution the per-statement dispatch
	// latency is drawn from ("" or DistUniform for the classic uniform
	// draw). Non-uniform distributions sample rare long stalls — zipf's
	// heavy tail and bursty's clustered stalls surface low-probability
	// interleaving windows in fewer runs ("When the Next Step Is Not One
	// Step"). Equal seeds still reproduce equal interleavings bit-for-bit
	// for any fixed distribution.
	StepDist string
	// DisableTracing turns off all event recording (used to measure
	// uninstrumented baseline cost for the overhead experiment).
	DisableTracing bool
	// Span, when non-nil, is the parent under which the run records a
	// "sched" child span (test, seed, steps, events, virtual time — all
	// deterministic attributes). A nil Span costs nothing.
	Span *obs.Span
}

// Step-distribution names for Options.StepDist.
const (
	DistUniform = "uniform" // uniform 0..costDispatch (the default)
	DistZipf    = "zipf"    // heavy-tailed: mostly tiny, occasionally 8x
	DistBursty  = "bursty"  // calm stretches broken by bursts of long stalls
)

// Dists lists the valid step distributions.
var Dists = []string{DistUniform, DistZipf, DistBursty}

// ValidDist reports whether d names a step distribution ("" selects the
// uniform default).
func ValidDist(d string) bool {
	if d == "" {
		return true
	}
	for _, q := range Dists {
		if d == q {
			return true
		}
	}
	return false
}

// DelayInstance records one applied perturbation for post-hoc propagation
// analysis (paper Figure 2 b/c).
type DelayInstance struct {
	Key    trace.Key
	Thread int
	Site   int
	Start  int64 // virtual time the delay began
	End    int64 // Start + delay duration
}

// Result is the outcome of one run.
type Result struct {
	Trace      *trace.Trace
	Delays     []DelayInstance
	Deadlocked bool
	Steps      int
	// VirtualDuration is the maximum thread clock at completion: the
	// virtual wall-clock of the test.
	VirtualDuration int64
}

// ErrTooManySteps is returned when MaxSteps is exceeded (a spin loop whose
// flag is never set, or a pathological schedule).
var ErrTooManySteps = errors.New("sched: step budget exhausted")

type tstate uint8

const (
	stRunnable tstate = iota
	stBlocked
	stDone
)

// frame is one entry of a thread's call stack: a statement cursor plus
// optional method bookkeeping.
type frame struct {
	stmts  []Stmt
	pc     int
	remain int // loop iterations left (loop frames only)

	isMethod bool
	method   string
	obj      uint64
	onExit   func(now int64)
}

// Stmt aliases prog.Stmt locally for brevity.
type Stmt = prog.Stmt

type thread struct {
	id     int
	clock  int64
	state  tstate
	stack  []*frame
	handle string // handle name signaled on completion ("" for main)

	// served marks the dynamic statement instance whose injected delay has
	// already been applied, so the next step executes it for real. Delays
	// are their own scheduling phase: during the bumped clock window every
	// other thread keeps running, preserving causality (a delayed write
	// must not be visible before its timestamp).
	served delayMarker

	// Blocking protocol: ready reports whether the thread can resume at
	// time now; wake consumes the resources and finishes the blocked
	// statement (emitting its End event and advancing the pc).
	ready func(now int64) bool
	wake  func(now int64)
}

// delayMarker identifies one dynamic statement instance: its frame and pc
// (pc −1 denotes the frame's method-exit point).
type delayMarker struct {
	f  *frame
	pc int
}

type machine struct {
	p   *prog.Program
	t   *prog.Test
	opt Options
	rng *rand.Rand

	threads []*thread
	nextTID int

	// Resources.
	locks    map[string]*lockState
	rwlocks  map[string]*rwState
	sems     map[string]int
	queues   map[string]int
	barriers map[string]*barrierState
	handles  map[string]*handleState
	// handleTID maps fork handles to spawned thread ids (instrumentation
	// reads this off the thread/task object).
	handleTID map[string]int
	inits     map[string]*initState

	// Object identity.
	slots     map[string]uint64
	nextObjID uint64
	fieldAddr map[string]uint64
	fieldVal  map[uint64]int64
	nextAddr  uint64

	events []trace.Event
	delays []DelayInstance
	steps  int

	// Step-distribution state: the zipf sampler is built lazily off the
	// run's rng; burst counts the remaining statements of an active
	// bursty-mode stall cluster.
	zipf  *rand.Zipf
	burst int
}

type lockState struct {
	holder int // thread id, -1 when free
}

type rwState struct {
	readers map[int]bool
	writer  int // -1 when none
}

// barrierState tracks Barrier.SignalAndWait arrivals per generation.
type barrierState struct {
	arrived    int
	generation int
}

type handleState struct {
	done   bool
	doneAt int64
	conts  []func(now int64) // continuations to fire on completion
}

type initState struct {
	// 0 not started, 1 running, 2 done
	phase int
}

// ctxCheckMask throttles the scheduler loop's context polling: the loop
// checks ctx.Err() every 256 steps, bounding cancellation latency to a few
// microseconds of simulated work while keeping the uncancelable fast path
// free of per-step overhead.
const ctxCheckMask = 0xff

// Run executes one unit test of p under opt.
//
// Run is safe for concurrent use against a shared *prog.Program: all
// execution state lives in the per-call machine, the program is read-only
// once finalized, and Finalize itself serializes internally — so the
// parallel inference engine may dispatch many Runs of the same program
// (same or different tests) from different goroutines. Callers must not
// mutate opt.Delays, opt.SiteDelays or opt.HiddenMethods while any Run
// using them is in flight; the engine shares one immutable plan per round.
func Run(p *prog.Program, t *prog.Test, opt Options) (*Result, error) {
	return RunContext(context.Background(), p, t, opt)
}

// RunContext is Run with cooperative cancellation: the scheduler loop
// polls ctx every 256 steps, so even a pathological schedule (a spin loop
// burning the step budget) aborts promptly. On cancellation the returned
// error wraps ctx.Err(), so errors.Is(err, context.Canceled) and
// errors.Is(err, ctx.Err()) both match.
func RunContext(ctx context.Context, p *prog.Program, t *prog.Test, opt Options) (*Result, error) {
	if err := p.Finalize(); err != nil {
		return nil, err
	}
	span := opt.Span.Child("sched", obs.Str("test", t.Name), obs.Int64("seed", opt.Seed))
	res, err := runLoop(ctx, p, t, opt)
	if res != nil {
		span.Annotate(
			obs.Int("steps", res.Steps),
			obs.Int("events", res.Trace.Len()),
			obs.Int64("virtual_ns", res.VirtualDuration),
			obs.Bool("deadlocked", res.Deadlocked),
			obs.Int("delays", len(res.Delays)))
	}
	span.End()
	return res, err
}

// runLoop is the scheduler loop body shared by Run and RunContext; the program
// is already finalized.
func runLoop(ctx context.Context, p *prog.Program, t *prog.Test, opt Options) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sched: run not started (test %s): %w", t.Name, err)
	}
	maxSteps := opt.MaxSteps
	if maxSteps == 0 {
		maxSteps = 2_000_000
	}
	m := &machine{
		p:         p,
		t:         t,
		opt:       opt,
		rng:       rand.New(rand.NewSource(opt.Seed)),
		locks:     map[string]*lockState{},
		rwlocks:   map[string]*rwState{},
		sems:      map[string]int{},
		queues:    map[string]int{},
		barriers:  map[string]*barrierState{},
		handles:   map[string]*handleState{},
		handleTID: map[string]int{},
		inits:     map[string]*initState{},
		slots:     map[string]uint64{},
		fieldAddr: map[string]uint64{},
		fieldVal:  map[uint64]int64{},
		nextObjID: 1,
		nextAddr:  0x1000,
	}

	main := m.newThread(0)
	if t.Init != "" {
		// Framework pattern (Figure 3.E): run the init method on the main
		// thread, then execute the test body as a named method in a fresh
		// thread with a hidden happens-before edge, then wait for it.
		main.stack = []*frame{{stmts: []Stmt{
			&prog.Call{Method: t.Init, Slot: "@init"},
			&runTestBody{method: &prog.Method{Name: t.Name, Body: t.Body}},
		}}}
	} else {
		main.stack = []*frame{{stmts: t.Body}}
	}

	for {
		th := m.pickRunnable()
		if th == nil {
			if m.allDone() {
				break
			}
			// No runnable, not all done: deadlock.
			return m.finish(true), nil
		}
		m.steps++
		if m.steps > maxSteps {
			return m.finish(false), fmt.Errorf("%w after %d steps (test %s)", ErrTooManySteps, m.steps, t.Name)
		}
		if m.steps&ctxCheckMask == 0 {
			if err := ctx.Err(); err != nil {
				return m.finish(false), fmt.Errorf("sched: run canceled after %d steps (test %s): %w", m.steps, t.Name, err)
			}
		}
		m.step(th)
	}
	return m.finish(false), nil
}

// runTestBody is an internal statement used only for the TestInitialize
// pattern: it hidden-forks the test body as a named method and blocks until
// it completes.
type runTestBody struct {
	method *prog.Method
	site   int
}

func (l *runTestBody) Site() int     { return l.site }
func (l *runTestBody) SetSite(i int) { l.site = i }

func (m *machine) finish(deadlocked bool) *Result {
	sort.SliceStable(m.events, func(i, j int) bool { return m.events[i].Time < m.events[j].Time })
	tr := &trace.Trace{App: m.p.Name, Test: m.t.Name, Seed: m.opt.Seed, Events: m.events}
	var maxClock int64
	for _, th := range m.threads {
		if th.clock > maxClock {
			maxClock = th.clock
		}
	}
	return &Result{
		Trace:           tr,
		Delays:          m.delays,
		Deadlocked:      deadlocked,
		Steps:           m.steps,
		VirtualDuration: maxClock,
	}
}

func (m *machine) newThread(clock int64) *thread {
	th := &thread{id: m.nextTID, clock: clock, state: stRunnable}
	m.nextTID++
	m.threads = append(m.threads, th)
	return th
}

// pickRunnable returns the runnable thread with the smallest clock (ties
// broken by id), or nil when none is runnable.
func (m *machine) pickRunnable() *thread {
	var best *thread
	for _, th := range m.threads {
		if th.state != stRunnable {
			continue
		}
		if best == nil || th.clock < best.clock {
			best = th
		}
	}
	return best
}

func (m *machine) allDone() bool {
	for _, th := range m.threads {
		if th.state != stDone {
			return false
		}
	}
	return true
}

// wakeBlocked re-evaluates every blocked thread's predicate at time now.
func (m *machine) wakeBlocked(now int64) {
	for _, th := range m.threads {
		if th.state != stBlocked {
			continue
		}
		if th.ready(now) {
			th.state = stRunnable
			if th.clock < now {
				th.clock = now
			}
			w := th.wake
			th.ready, th.wake = nil, nil
			w(th.clock)
			// A wake can change resource state; rescan from the start so
			// predicate evaluation stays deterministic in thread order.
			m.wakeBlocked(th.clock)
			return
		}
	}
}

// block parks the thread until ready(now); wake completes the statement.
func (m *machine) block(th *thread, ready func(int64) bool, wake func(int64)) {
	th.state = stBlocked
	th.ready = ready
	th.wake = wake
}

// objID resolves a slot name to a stable object id for this run.
func (m *machine) objID(slot string) uint64 {
	if slot == "" {
		return 0
	}
	if id, ok := m.slots[slot]; ok {
		return id
	}
	id := m.nextObjID
	m.nextObjID++
	m.slots[slot] = id
	return id
}

// addr resolves (field, object) to a stable address for this run.
func (m *machine) addr(field string, obj uint64) uint64 {
	key := fmt.Sprintf("%s#%d", field, obj)
	if a, ok := m.fieldAddr[key]; ok {
		return a
	}
	a := m.nextAddr
	m.nextAddr += 8
	m.fieldAddr[key] = a
	return a
}

// jitter returns d scaled by a uniform factor in [1-j, 1+j].
func (m *machine) jitter(d int64, j float64) int64 {
	if d <= 0 {
		return 0
	}
	f := 1 + j*(2*m.rng.Float64()-1)
	v := int64(float64(d) * f)
	if v < 1 {
		v = 1
	}
	return v
}

// dispatch returns the random scheduling latency added before a
// statement, drawn from Options.StepDist. All draws consume the run's
// seeded rng, so every distribution is bit-for-bit reproducible.
func (m *machine) dispatch() int64 {
	switch m.opt.StepDist {
	case DistZipf:
		// Heavy tail up to 8x the uniform bound: most statements pay
		// almost nothing, a few pay a long stall — rare windows open in
		// fewer runs than the uniform draw needs.
		if m.zipf == nil {
			m.zipf = rand.NewZipf(m.rng, 1.3, 1, costDispatch*8)
		}
		return int64(m.zipf.Uint64())
	case DistBursty:
		// Calm stretches (≤ a third of the uniform bound) broken by rare
		// clusters of 4-11 consecutive long stalls, modeling GC pauses
		// and scheduler preemption storms.
		if m.burst > 0 {
			m.burst--
			return costDispatch*4 + int64(m.rng.Intn(costDispatch*8+1))
		}
		if m.rng.Intn(64) == 0 {
			m.burst = 4 + m.rng.Intn(8)
		}
		return int64(m.rng.Intn(costDispatch/3 + 1))
	default:
		return int64(m.rng.Intn(costDispatch + 1))
	}
}

// emit appends a log entry unless tracing is disabled.
func (m *machine) emit(e trace.Event) {
	if m.opt.DisableTracing {
		return
	}
	m.events = append(m.events, e)
}

// serveDelay implements two-phase delay injection for the dynamic
// statement instance identified by marker. On the first visit with a
// planned delay it bumps the thread clock, records the instances, and
// returns true: the delay consumed this scheduling step, and every other
// thread keeps running inside the delay window before the statement's
// effects become visible. The next visit executes the statement for real.
func (m *machine) serveDelay(th *thread, marker delayMarker, site int, keys ...trace.Key) bool {
	if th.served == marker {
		th.served = delayMarker{}
		return false
	}
	if m.opt.Delays == nil && m.opt.SiteDelays == nil {
		return false
	}
	var total int64
	for _, k := range keys {
		total += m.opt.Delays[k]
	}
	siteDelay := m.opt.SiteDelays[site]
	total += siteDelay
	if total == 0 {
		return false
	}
	if p := m.opt.DelayProbability; p > 0 && p < 1 && m.rng.Float64() >= p {
		// Probabilistic injection: skip this dynamic instance. The
		// statement executes immediately (no second visit re-rolls).
		return false
	}
	for _, k := range keys {
		if d := m.opt.Delays[k]; d > 0 {
			m.delays = append(m.delays, DelayInstance{
				Key: k, Thread: th.id, Site: site, Start: th.clock, End: th.clock + total,
			})
		}
	}
	if siteDelay > 0 {
		var key trace.Key
		if len(keys) > 0 {
			key = keys[0]
		}
		m.delays = append(m.delays, DelayInstance{
			Key: key, Thread: th.id, Site: site, Start: th.clock, End: th.clock + total,
		})
	}
	th.clock += total
	th.served = marker
	return true
}

// exitMethod emits the method End event and runs completion hooks.
func (m *machine) exitMethod(th *thread, f *frame) {
	th.clock += m.jitter(costMethod, 0.3)
	if !m.opt.HiddenMethods[f.method] {
		m.emit(trace.Event{
			Time: th.clock, Thread: th.id, Kind: trace.KindEnd,
			Name: f.method, Obj: f.obj,
		})
	}
	if f.onExit != nil {
		f.onExit(th.clock)
	}
	m.wakeBlocked(th.clock)
}

// pushCall pushes an invocation frame for a registered application method.
func (m *machine) pushCall(th *thread, method string, obj uint64) *frame {
	return m.pushMethodFrame(th, m.p.Methods[method], obj)
}

// pushMethodFrame pushes a method invocation frame, emitting the Begin
// event.
func (m *machine) pushMethodFrame(th *thread, mm *prog.Method, obj uint64) *frame {
	th.clock += m.jitter(costMethod, 0.3)
	if !m.opt.HiddenMethods[mm.Name] {
		m.emit(trace.Event{
			Time: th.clock, Thread: th.id, Kind: trace.KindBegin,
			Name: mm.Name, Obj: obj,
		})
	}
	f := &frame{stmts: mm.Body, isMethod: true, method: mm.Name, obj: obj}
	th.stack = append(th.stack, f)
	return f
}

// finishThread marks th done and fires handle completions.
func (m *machine) finishThread(th *thread, handle string) {
	th.state = stDone
	if handle != "" {
		h := m.handle(handle)
		h.done = true
		h.doneAt = th.clock
		for _, c := range h.conts {
			c(th.clock)
		}
		h.conts = nil
	}
	m.wakeBlocked(th.clock)
}

func (m *machine) handle(name string) *handleState {
	h, ok := m.handles[name]
	if !ok {
		h = &handleState{}
		m.handles[name] = h
	}
	return h
}

func (m *machine) barrier(name string) *barrierState {
	b, ok := m.barriers[name]
	if !ok {
		b = &barrierState{}
		m.barriers[name] = b
	}
	return b
}

func (m *machine) lock(name string) *lockState {
	l, ok := m.locks[name]
	if !ok {
		l = &lockState{holder: -1}
		m.locks[name] = l
	}
	return l
}

func (m *machine) rwlock(name string) *rwState {
	l, ok := m.rwlocks[name]
	if !ok {
		l = &rwState{readers: map[int]bool{}, writer: -1}
		m.rwlocks[name] = l
	}
	return l
}
