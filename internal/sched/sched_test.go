package sched

import (
	"errors"
	"testing"

	"sherlock/internal/prog"
	"sherlock/internal/trace"
)

// run builds, finalizes, and executes a single-test program.
func run(t *testing.T, p *prog.Program, opt Options) *Result {
	t.Helper()
	res, err := Run(p, p.Tests[0], opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Deadlocked {
		t.Fatalf("unexpected deadlock")
	}
	return res
}

// find returns all events matching key, in time order.
func find(res *Result, k trace.Key) []trace.Event {
	var out []trace.Event
	for _, e := range res.Trace.Events {
		if trace.EventKey(&e) == k {
			out = append(out, e)
		}
	}
	return out
}

func timeOrdered(res *Result) bool {
	ev := res.Trace.Events
	for i := 1; i < len(ev); i++ {
		if ev[i].Time < ev[i-1].Time {
			return false
		}
	}
	return true
}

func TestSequentialEventsAndDurations(t *testing.T) {
	p := prog.New("app", "App")
	p.AddMethod("C::leaf", prog.Cp(100), prog.Wr("C::x", "o", 7))
	p.AddTest("T", prog.Do("C::leaf", "o"), prog.Rd("C::x", "o"))
	res := run(t, p, Options{Seed: 1})

	if !timeOrdered(res) {
		t.Fatal("trace not time ordered")
	}
	begins := find(res, prog.BK("C::leaf"))
	ends := find(res, prog.EK("C::leaf"))
	if len(begins) != 1 || len(ends) != 1 {
		t.Fatalf("begin/end counts = %d/%d, want 1/1", len(begins), len(ends))
	}
	if ends[0].Time <= begins[0].Time {
		t.Error("method end must follow begin")
	}
	ws := find(res, prog.WK("C::x"))
	rs := find(res, prog.RK("C::x"))
	if len(ws) != 1 || len(rs) != 1 {
		t.Fatalf("write/read counts = %d/%d", len(ws), len(rs))
	}
	if ws[0].Addr != rs[0].Addr || ws[0].Addr == 0 {
		t.Error("same field+object must share a nonzero address")
	}
	if ws[0].Time <= begins[0].Time || ws[0].Time >= ends[0].Time {
		t.Error("write inside method must be between begin and end")
	}
}

func TestMonitorMutualExclusion(t *testing.T) {
	// Two threads increment inside a lock; the lock's critical sections
	// must not overlap in virtual time.
	p := prog.New("app", "App")
	p.AddMethod("C::crit",
		prog.Lock("L"),
		prog.Cp(500),
		prog.Wr("C::n", "o", 1),
		prog.Unlock("L"),
	)
	p.AddTest("T",
		prog.Go(prog.ForkThread, "C::crit", "o", "h1"),
		prog.Go(prog.ForkThread, "C::crit", "o", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	res := run(t, p, Options{Seed: 3})

	enterEnds := find(res, prog.EK(prog.APIMonitorEnter))
	exitEnds := find(res, prog.EK(prog.APIMonitorExit))
	if len(enterEnds) != 2 || len(exitEnds) != 2 {
		t.Fatalf("enter/exit = %d/%d, want 2/2", len(enterEnds), len(exitEnds))
	}
	// Sections: [enterEnd_i, exitEnd_i] per thread; they must be disjoint.
	type sec struct{ a, b int64 }
	bySec := map[int]*sec{}
	for _, e := range enterEnds {
		bySec[e.Thread] = &sec{a: e.Time}
	}
	for _, e := range exitEnds {
		bySec[e.Thread].b = e.Time
	}
	secs := make([]*sec, 0, 2)
	for _, s := range bySec {
		secs = append(secs, s)
	}
	if len(secs) != 2 {
		t.Fatalf("expected 2 threads in critical section, got %d", len(secs))
	}
	if secs[0].a < secs[1].b && secs[1].a < secs[0].b {
		t.Errorf("critical sections overlap: [%d,%d] vs [%d,%d]",
			secs[0].a, secs[0].b, secs[1].a, secs[1].b)
	}
}

func TestSemaphoreOrdering(t *testing.T) {
	// Consumer waits; producer sets after writing. WaitOne's end must be
	// at/after Set's end, and the read must follow the write.
	p := prog.New("app", "App")
	p.AddMethod("C::producer", prog.Cp(1000), prog.Wr("C::data", "o", 42), prog.Set("S"))
	p.AddMethod("C::consumer", prog.Wait("S"), prog.Rd("C::data", "o"))
	p.AddTest("T",
		prog.Go(prog.ForkTaskRun, "C::consumer", "o", "hc"),
		prog.Go(prog.ForkTaskRun, "C::producer", "o", "hp"),
		prog.WaitT("hc"), prog.WaitT("hp"),
	)
	res := run(t, p, Options{Seed: 5})
	set := find(res, prog.EK(prog.APISemSet))
	waitEnd := find(res, prog.EK(prog.APISemWait))
	if len(set) != 1 || len(waitEnd) != 1 {
		t.Fatalf("set/wait = %d/%d", len(set), len(waitEnd))
	}
	if waitEnd[0].Time < set[0].Time {
		t.Error("WaitOne completed before Set")
	}
	w := find(res, prog.WK("C::data"))[0]
	r := find(res, prog.RK("C::data"))[0]
	if r.Time < w.Time {
		t.Error("consumer read before producer write despite semaphore")
	}
}

func TestWaitAllBlocksForAllSignals(t *testing.T) {
	p := prog.New("app", "App")
	p.AddMethod("C::w1", prog.Cp(500), prog.Set("S1"))
	p.AddMethod("C::w2", prog.Cp(2500), prog.Set("S2"))
	p.AddTest("T",
		prog.Go(prog.ForkThread, "C::w1", "o", "h1"),
		prog.Go(prog.ForkThread, "C::w2", "o", "h2"),
		prog.All("S1", "S2"),
	)
	res := run(t, p, Options{Seed: 7})
	all := find(res, prog.EK(prog.APIWaitAll))
	if len(all) != 1 {
		t.Fatalf("WaitAll events = %d", len(all))
	}
	for _, set := range find(res, prog.EK(prog.APISemSet)) {
		if all[0].Time < set.Time {
			t.Error("WaitAll returned before a Set")
		}
	}
}

func TestQueuePostReceiveRunsHandler(t *testing.T) {
	p := prog.New("app", "App")
	p.AddMethod("C::handler", prog.Cp(100))
	p.AddMethod("C::recv", prog.RecvQ("Q", "C::handler", "o"))
	p.AddTest("T",
		prog.Go(prog.ForkThread, "C::recv", "o", "hr"),
		prog.Cp(800),
		prog.PostQ("Q"),
		prog.JoinT("hr"),
	)
	res := run(t, p, Options{Seed: 9})
	post := find(res, prog.EK(prog.APIPost))
	recvEnd := find(res, prog.EK(prog.APIReceive))
	hBegin := find(res, prog.BK("C::handler"))
	if len(post) != 1 || len(recvEnd) != 1 || len(hBegin) != 1 {
		t.Fatalf("post/recv/handler = %d/%d/%d", len(post), len(recvEnd), len(hBegin))
	}
	if recvEnd[0].Time < post[0].Time {
		t.Error("Receive returned before Post")
	}
	if hBegin[0].Time < recvEnd[0].Time {
		t.Error("handler began before Receive returned")
	}
}

func TestForkJoinAllAPIs(t *testing.T) {
	apis := []prog.ForkAPI{prog.ForkThread, prog.ForkTaskRun, prog.ForkTaskNew, prog.ForkThreadPool}
	for _, api := range apis {
		p := prog.New("app", "App")
		p.AddMethod("C::work", prog.Cp(200), prog.Wr("C::y", "o", 1))
		p.AddTest("T",
			prog.Go(api, "C::work", "o", "h"),
			prog.JoinT("h"),
			prog.Rd("C::y", "o"),
		)
		res := run(t, p, Options{Seed: 11})
		forkEnd := find(res, prog.EK(api.APIName()))
		delegateBegin := find(res, prog.BK("C::work"))
		if len(forkEnd) != 1 || len(delegateBegin) != 1 {
			t.Fatalf("%v: fork/delegate = %d/%d", api, len(forkEnd), len(delegateBegin))
		}
		if delegateBegin[0].Time < forkEnd[0].Time {
			t.Errorf("%v: delegate began before fork returned", api)
		}
		joinEnd := find(res, prog.EK(prog.JoinThread.APIName()))
		workEnd := find(res, prog.EK("C::work"))
		if joinEnd[0].Time < workEnd[0].Time {
			t.Errorf("%v: join returned before delegate finished", api)
		}
	}
}

func TestContinueWithOrdering(t *testing.T) {
	p := prog.New("app", "App")
	p.AddMethod("C::a1", prog.Cp(400), prog.Wr("C::z", "o", 1))
	p.AddMethod("C::a2", prog.Rd("C::z", "o"))
	p.AddTest("T",
		prog.Go(prog.ForkTaskRun, "C::a1", "o", "t1"),
		prog.Then("t1", "C::a2", "o", "t2"),
		prog.WaitT("t2"),
	)
	res := run(t, p, Options{Seed: 13})
	a1End := find(res, prog.EK("C::a1"))
	a2Begin := find(res, prog.BK("C::a2"))
	if len(a1End) != 1 || len(a2Begin) != 1 {
		t.Fatalf("a1End/a2Begin = %d/%d", len(a1End), len(a2Begin))
	}
	if a2Begin[0].Time < a1End[0].Time {
		t.Error("continuation began before antecedent finished")
	}
}

func TestContinueWithAfterCompletion(t *testing.T) {
	// Registering the continuation after the antecedent already finished
	// must still fire it.
	p := prog.New("app", "App")
	p.AddMethod("C::fast", prog.Cp(10))
	p.AddMethod("C::cont", prog.Cp(10))
	p.AddTest("T",
		prog.Go(prog.ForkTaskRun, "C::fast", "o", "t1"),
		prog.Cp(5000), // let t1 finish first
		prog.Then("t1", "C::cont", "o", "t2"),
		prog.WaitT("t2"),
	)
	res := run(t, p, Options{Seed: 15})
	if len(find(res, prog.BK("C::cont"))) != 1 {
		t.Fatal("late-registered continuation did not run")
	}
}

func TestSpinUntilFlagSync(t *testing.T) {
	p := prog.New("app", "App")
	p.AddMethod("C::writer", prog.Cp(2000), prog.Wr("C::flag", "o", 1))
	p.AddMethod("C::waiter", prog.Spin("C::flag", "o", 1, 300), prog.Rd("C::data2", "o"))
	p.AddTest("T",
		prog.Go(prog.ForkThread, "C::waiter", "o", "hw"),
		prog.Go(prog.ForkThread, "C::writer", "o", "hr"),
		prog.JoinT("hw"), prog.JoinT("hr"),
	)
	res := run(t, p, Options{Seed: 17})
	reads := find(res, prog.RK("C::flag"))
	if len(reads) < 2 {
		t.Fatalf("spin produced %d reads, expected several polls", len(reads))
	}
	w := find(res, prog.WK("C::flag"))[0]
	last := reads[len(reads)-1]
	if last.Time < w.Time {
		t.Error("spin exited before the flag write")
	}
}

func TestStaticInitRunsOnceAndBlocks(t *testing.T) {
	p := prog.New("app", "App")
	p.AddMethod("C::.cctor", prog.Cp(3000), prog.Wr("C::table", "", 1))
	p.AddMethod("C::use",
		prog.StaticInit("C", "C::.cctor"),
		prog.Rd("C::table", ""),
	)
	p.AddTest("T",
		prog.Go(prog.ForkThread, "C::use", "o1", "h1"),
		prog.Go(prog.ForkThread, "C::use", "o2", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	res := run(t, p, Options{Seed: 19})
	ctors := find(res, prog.BK("C::.cctor"))
	if len(ctors) != 1 {
		t.Fatalf("cctor ran %d times, want exactly 1", len(ctors))
	}
	ctorEnd := find(res, prog.EK("C::.cctor"))[0]
	for _, r := range find(res, prog.RK("C::table")) {
		if r.Time < ctorEnd.Time {
			t.Error("field used before static constructor completed")
		}
	}
}

func TestFinalizerRunsAfterDropWithGCDelay(t *testing.T) {
	p := prog.New("app", "App")
	p.AddMethod("C::Finalize", prog.Cp(50))
	p.AddTest("T",
		prog.Wr("C::ref", "o", 0),
		prog.GC("o", "C::Finalize", 5000),
	)
	res := run(t, p, Options{Seed: 21})
	w := find(res, prog.WK("C::ref"))[0]
	fin := find(res, prog.BK("C::Finalize"))
	if len(fin) != 1 {
		t.Fatalf("finalizer ran %d times", len(fin))
	}
	if fin[0].Time < w.Time+5000 {
		t.Errorf("finalizer at %d, want >= %d (GC delay)", fin[0].Time, w.Time+5000)
	}
}

func TestTestInitPattern(t *testing.T) {
	p := prog.New("app", "App")
	p.AddMethod("Tests::TestInitialize", prog.Cp(500), prog.Wr("Tests::env", "", 1))
	p.AddTestWithInit("Tests::Body", "Tests::TestInitialize",
		prog.Rd("Tests::env", ""),
	)
	res := run(t, p, Options{Seed: 23})
	initEnd := find(res, prog.EK("Tests::TestInitialize"))
	bodyBegin := find(res, prog.BK("Tests::Body"))
	if len(initEnd) != 1 || len(bodyBegin) != 1 {
		t.Fatalf("init/body = %d/%d", len(initEnd), len(bodyBegin))
	}
	if bodyBegin[0].Time < initEnd[0].Time {
		t.Error("test body began before TestInitialize completed")
	}
	if bodyBegin[0].Thread == initEnd[0].Thread {
		t.Error("test body should run in a different thread than init")
	}
}

func TestHiddenLockSynchronizesWithoutEvents(t *testing.T) {
	p := prog.New("app", "App")
	p.AddMethod("C::GetOrAdd",
		prog.HLock("inner"),
		prog.Cp(400),
		prog.Wr("C::cache", "", 1),
		prog.HUnlock("inner"),
	)
	p.AddTest("T",
		prog.Go(prog.ForkThread, "C::GetOrAdd", "o", "h1"),
		prog.Go(prog.ForkThread, "C::GetOrAdd", "o", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	res := run(t, p, Options{Seed: 25})
	for _, e := range res.Trace.Events {
		if e.Name == prog.APIMonitorEnter || e.Name == prog.APIMonitorExit {
			t.Fatalf("hidden lock leaked a monitor event: %v", e)
		}
	}
	// Critical sections (hidden-lock … write) must still be serialized:
	// the second write can start only after the first section released,
	// so the writes are separated by at least the minimum compute time
	// (400 ns with ±30% jitter ⇒ ≥ 280 ns).
	ws := find(res, prog.WK("C::cache"))
	if len(ws) != 2 {
		t.Fatalf("writes = %d", len(ws))
	}
	if gap := ws[1].Time - ws[0].Time; gap < 280 {
		t.Errorf("cache writes only %d ns apart; hidden lock did not serialize", gap)
	}
}

func TestRWLockUpgradeSemantics(t *testing.T) {
	p := prog.New("app", "App")
	p.AddMethod("C::upgrader",
		prog.RdLock("rw"),
		prog.Cp(100),
		prog.Upgrade("rw"),
		prog.Wr("C::shared", "o", 1),
		prog.Downgrade("rw"),
		prog.RdUnlock("rw"),
	)
	p.AddMethod("C::reader",
		prog.RdLock("rw"),
		prog.Rd("C::shared", "o"),
		prog.RdUnlock("rw"),
	)
	p.AddTest("T",
		prog.Go(prog.ForkThread, "C::upgrader", "o", "h1"),
		prog.Go(prog.ForkThread, "C::reader", "o", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	res := run(t, p, Options{Seed: 27})
	if len(find(res, prog.EK(prog.APIRWUpgrade))) != 1 {
		t.Fatal("missing upgrade event")
	}
	if res.Deadlocked {
		t.Fatal("rw lock deadlocked")
	}
}

func TestDelayInjectionRecordsInstances(t *testing.T) {
	p := prog.New("app", "App")
	p.AddMethod("C::w", prog.Wr("C::f", "o", 1), prog.Wr("C::f", "o", 2))
	p.AddTest("T", prog.Do("C::w", "o"))
	key := prog.WK("C::f")
	res := run(t, p, Options{Seed: 29, Delays: map[trace.Key]int64{key: 10_000}})
	if len(res.Delays) != 2 {
		t.Fatalf("recorded %d delay instances, want 2 (one per dynamic write)", len(res.Delays))
	}
	for _, d := range res.Delays {
		if d.Key != key || d.End-d.Start != 10_000 {
			t.Errorf("bad delay instance %+v", d)
		}
	}
	// The delayed writes must land after their delay windows.
	ws := find(res, prog.WK("C::f"))
	for i, w := range ws {
		if w.Time < res.Delays[i].End {
			t.Errorf("write %d at %d precedes delay end %d", i, w.Time, res.Delays[i].End)
		}
	}
}

func TestHiddenMethodsSuppressed(t *testing.T) {
	p := prog.New("app", "App")
	p.AddMethod("C::secret", prog.Wr("C::f", "o", 1))
	p.AddTest("T", prog.Do("C::secret", "o"))
	res := run(t, p, Options{Seed: 31, HiddenMethods: map[string]bool{"C::secret": true}})
	if n := len(find(res, prog.BK("C::secret"))) + len(find(res, prog.EK("C::secret"))); n != 0 {
		t.Fatalf("hidden method leaked %d events", n)
	}
	if len(find(res, prog.WK("C::f"))) != 1 {
		t.Fatal("inner write of hidden method should still be traced")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	build := func() *prog.Program {
		p := prog.New("app", "App")
		p.AddMethod("C::crit", prog.Lock("L"), prog.Cp(200), prog.Wr("C::n", "o", 1), prog.Unlock("L"))
		p.AddTest("T",
			prog.Go(prog.ForkThread, "C::crit", "o", "h1"),
			prog.Go(prog.ForkThread, "C::crit", "o", "h2"),
			prog.JoinT("h1"), prog.JoinT("h2"),
		)
		return p
	}
	render := func(r *Result) string {
		s := ""
		for i := range r.Trace.Events {
			s += r.Trace.Events[i].String() + "\n"
		}
		return s
	}
	a := run(t, build(), Options{Seed: 99})
	b := run(t, build(), Options{Seed: 99})
	if render(a) != render(b) {
		t.Fatal("same seed produced different traces")
	}
	c := run(t, build(), Options{Seed: 100})
	if render(a) == render(c) {
		t.Error("different seeds produced identical traces (no jitter?)")
	}
}

func TestDeadlockDetected(t *testing.T) {
	p := prog.New("app", "App")
	p.AddTest("T", prog.Wait("never"))
	p.MustFinalize()
	res, err := Run(p, p.Tests[0], Options{Seed: 1})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Deadlocked {
		t.Fatal("expected deadlock to be reported")
	}
}

func TestStepBudget(t *testing.T) {
	p := prog.New("app", "App")
	p.AddTest("T", prog.Spin("C::never", "o", 1, 10))
	p.MustFinalize()
	_, err := Run(p, p.Tests[0], Options{Seed: 1, MaxSteps: 1000})
	if !errors.Is(err, ErrTooManySteps) {
		t.Fatalf("want ErrTooManySteps, got %v", err)
	}
}

func TestUnsafeCallEvents(t *testing.T) {
	p := prog.New("app", "App")
	p.AddTest("T", prog.ListAdd("list"), prog.ListRead("list"))
	res := run(t, p, Options{Seed: 33})
	adds := find(res, prog.BK("System.Collections.Generic.List::Add"))
	if len(adds) != 1 {
		t.Fatalf("adds = %d", len(adds))
	}
	if !adds[0].Unsafe || adds[0].Acc != trace.AccWrite || adds[0].Addr == 0 {
		t.Errorf("unsafe call event malformed: %+v", adds[0])
	}
	gets := find(res, prog.BK("System.Collections.Generic.List::get_Item"))
	if gets[0].Addr != adds[0].Addr {
		t.Error("same collection must share an address")
	}
}

func TestDisableTracing(t *testing.T) {
	p := prog.New("app", "App")
	p.AddMethod("C::m", prog.Cp(10), prog.Wr("C::f", "o", 1))
	p.AddTest("T", prog.Do("C::m", "o"))
	res := run(t, p, Options{Seed: 35, DisableTracing: true})
	if res.Trace.Len() != 0 {
		t.Fatalf("tracing disabled but %d events recorded", res.Trace.Len())
	}
}

func TestLoopExecutesNTimes(t *testing.T) {
	p := prog.New("app", "App")
	p.AddTest("T", prog.Rep(5, prog.Wr("C::i", "o", 1)))
	res := run(t, p, Options{Seed: 37})
	if n := len(find(res, prog.WK("C::i"))); n != 5 {
		t.Fatalf("loop body ran %d times, want 5", n)
	}
}

func TestBarrierRendezvous(t *testing.T) {
	// Three parties write before the barrier and read after it: every
	// post-barrier read must follow every pre-barrier write.
	p := prog.New("app", "App")
	for i := 1; i <= 3; i++ {
		n := byte('0' + i)
		p.AddMethod("C::party"+string(n),
			prog.CpJ(int64(100*i), 0.8),
			prog.Wr("C::slot"+string(n), "o", int64(i)),
			prog.Rendezvous("B", 3),
			prog.Rd("C::slot1", "o"),
		)
	}
	p.AddTest("T",
		prog.Go(prog.ForkThread, "C::party1", "o", "h1"),
		prog.Go(prog.ForkThread, "C::party2", "o", "h2"),
		prog.Go(prog.ForkThread, "C::party3", "o", "h3"),
		prog.JoinT("h1"), prog.JoinT("h2"), prog.JoinT("h3"),
	)
	res := run(t, p, Options{Seed: 41})
	var lastWrite, firstRead int64 = 0, 1 << 62
	for _, e := range res.Trace.Events {
		if e.Kind == trace.KindWrite && e.Time > lastWrite {
			lastWrite = e.Time
		}
		if e.Kind == trace.KindRead && e.Time < firstRead {
			firstRead = e.Time
		}
	}
	if firstRead < lastWrite {
		t.Errorf("post-barrier read at %d precedes pre-barrier write at %d", firstRead, lastWrite)
	}
	if n := len(find(res, prog.EK(prog.APIBarrier))); n != 3 {
		t.Errorf("barrier end events = %d, want 3", n)
	}
}

func TestBarrierMultipleGenerations(t *testing.T) {
	p := prog.New("app", "App")
	p.AddMethod("C::looper",
		prog.Rep(2,
			prog.CpJ(150, 0.8),
			prog.Rendezvous("B", 2),
		),
	)
	p.AddTest("T",
		prog.Go(prog.ForkThread, "C::looper", "o", "h1"),
		prog.Go(prog.ForkThread, "C::looper", "o", "h2"),
		prog.JoinT("h1"), prog.JoinT("h2"),
	)
	res := run(t, p, Options{Seed: 43})
	if n := len(find(res, prog.EK(prog.APIBarrier))); n != 4 {
		t.Errorf("barrier crossings = %d, want 4 (2 threads x 2 generations)", n)
	}
}
