package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkServerSubmit measures the serving path end to end over real
// HTTP: submit + poll to completion. The cold case forces a fresh
// campaign per iteration (distinct seed => distinct content address); the
// hit case resubmits one identical spec and is answered from the result
// cache without executing anything — the microsecond path the cache
// exists for.
func BenchmarkServerSubmit(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.QueueSize = 64
	cfg.CacheCapacity = 1 << 20 // never evict during the cold sweep
	cfg.Inference.Rounds = 1
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() { ts.Close(); s.Close() })

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Seeds beyond any other test's range keep iterations distinct.
			benchSubmitWait(b, ts.URL, int64(1_000_000+i))
		}
	})
	b.Run("hit", func(b *testing.B) {
		benchSubmitWait(b, ts.URL, 42) // populate
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := benchSubmitWait(b, ts.URL, 42)
			if !v.Cached {
				b.Fatal("expected a cache hit")
			}
		}
	})
}

// benchSubmitWait submits an App-1 job with the given seed and blocks
// until it is terminal (immediately, for cache hits).
func benchSubmitWait(b *testing.B, base string, seed int64) jobView {
	b.Helper()
	buf, _ := json.Marshal(map[string]any{"app": "App-1", "seed": seed})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		b.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		b.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		b.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for v.Status != "done" {
		if v.Status == "failed" || v.Status == "canceled" {
			b.Fatalf("job %s ended %s: %s", v.ID, v.Status, v.Error)
		}
		if time.Now().After(deadline) {
			b.Fatalf("job %s never finished", v.ID)
		}
		sr, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s", base, v.ID))
		if err != nil {
			b.Fatal(err)
		}
		sb, _ := io.ReadAll(sr.Body)
		sr.Body.Close()
		if err := json.Unmarshal(sb, &v); err != nil {
			b.Fatal(err)
		}
	}
	return v
}
