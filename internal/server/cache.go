// Content-addressed result cache. Completed inference results are stored
// under the stable hash of their job content (see hash.go), so resubmitting
// an identical workload is answered from memory — byte-identical to the
// cold run — in microseconds instead of re-executing the campaign. Bounded
// by an LRU policy: the cache holds at most cap entries and evicts the
// least recently touched one on overflow.
package server

import (
	"container/list"
	"sync"
)

// ResultCache is a bounded, concurrency-safe LRU map from content hash to
// the serialized result body.
type ResultCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List               // front = most recently used
	entries map[string]*list.Element // key -> element whose Value is *cacheEntry

	hits, misses, evictions uint64
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewResultCache returns an empty cache holding at most capacity entries.
// capacity must be positive (Config.Validate enforces it upstream).
func NewResultCache(capacity int) *ResultCache {
	return &ResultCache{
		cap:     capacity,
		ll:      list.New(),
		entries: make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached body for key, marking it most recently used. The
// returned slice is shared — callers must not mutate it.
func (c *ResultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Lookup returns the cached body for key and refreshes its recency, but
// does not touch the hit/miss accounting — retrieval of an already-known
// result (GET /v1/results/{key}) is not a cache-effectiveness event.
func (c *ResultCache) Lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// Contains reports whether key is cached without touching recency or the
// hit/miss accounting.
func (c *ResultCache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Put stores body under key, evicting the least recently used entry if the
// cache is full. Storing an existing key refreshes its body and recency.
func (c *ResultCache) Put(key string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).body = body
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
}

// Stats returns cumulative hit/miss/eviction counts and the current size.
func (c *ResultCache) Stats() (hits, misses, evictions uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions, c.ll.Len()
}

// Keys returns the cached keys from most to least recently used (test and
// introspection helper).
func (c *ResultCache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}
