package server

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := NewResultCache(3)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Put("c", []byte("C"))
	// Touch "a" so "b" becomes the LRU victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should be cached")
	}
	c.Put("d", []byte("D")) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if got, want := c.Keys(), []string{"d", "a", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("MRU order = %v, want %v", got, want)
	}
	c.Put("e", []byte("E")) // evicts c (a and d are fresher)
	if _, ok := c.Get("c"); ok {
		t.Fatal("c should have been evicted")
	}
	_, _, evictions, size := c.Stats()
	if evictions != 2 || size != 3 {
		t.Fatalf("evictions=%d size=%d, want 2 and 3", evictions, size)
	}
}

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewResultCache(2)
	c.Get("nope")
	c.Put("k", []byte("v"))
	c.Get("k")
	c.Get("k")
	// Lookup refreshes recency but never counts.
	if _, ok := c.Lookup("k"); !ok {
		t.Fatal("Lookup should find k")
	}
	if _, ok := c.Lookup("absent"); ok {
		t.Fatal("Lookup should miss absent")
	}
	hits, misses, _, _ := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 2 and 1", hits, misses)
	}
}

func TestCachePutExistingRefreshes(t *testing.T) {
	c := NewResultCache(2)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Put("a", []byte("3")) // refresh, no eviction
	c.Put("c", []byte("4")) // evicts b
	if body, ok := c.Get("a"); !ok || string(body) != "3" {
		t.Fatalf("a = %q, %v; want refreshed body", body, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewResultCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k-%d", (g*500+i)%100)
				c.Put(key, []byte(key))
				if body, ok := c.Get(key); ok && string(body) != key {
					t.Errorf("corrupted body for %s: %q", key, body)
					return
				}
				c.Keys()
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
	_, _, _, size := c.Stats()
	if size > 64 {
		t.Fatalf("size %d exceeds capacity 64", size)
	}
}
