// The server's view of an optional cluster layer. internal/cluster wires
// a ClusterHook into the server (SetCluster) to turn a standalone daemon
// into one node of a peer-to-peer sherlockd cluster; a nil hook (the
// default) keeps every code path single-node. The seams are deliberately
// narrow — the cluster decides ownership, health, and transport, while
// the server keeps owning admission, execution, caching, and metrics:
//
//   - submit: on a local cache miss the server asks the hook for the key
//     on the peers that own it (FastLookup) — a result computed on any
//     node is a hit on every node;
//   - execute: after a FastLookup miss the handler offers to route the
//     whole job to the key's owner (ProxyJob). Both run on the handler
//     goroutine: workers only ever compute locally, so routing can never
//     deadlock two nodes' worker pools against each other;
//   - corpus: uploads fan out to the blob key's owner and replicas
//     (ReplicateBlob), and jobs naming corpus keys this node is missing
//     pull them from peers before solving (EnsureTraces);
//   - watch: published watch results are offered to peers (PublishResult)
//     so cluster-wide watchers converge without re-solving.
package server

import "context"

// ClusterHook is implemented by internal/cluster. All methods must be
// safe for concurrent use; SetCluster must be called after New and
// before the server receives any traffic.
type ClusterHook interface {
	// FastLookup fetches the cached result body for a content key from
	// the peers that own it. A miss or an unreachable peer set returns
	// ok=false quickly — this sits on the submit path.
	FastLookup(ctx context.Context, key string) ([]byte, bool)
	// ProxyJob routes the job to the key's owner when that is another
	// node, waiting out the remote execution and returning the result
	// body. ok=false for ANY other outcome — this node owns the key, no
	// owning peer is reachable, or the remote run failed — and the caller
	// computes locally: single-node degradation is the floor.
	ProxyJob(ctx context.Context, key string, spec JobSpec) (body []byte, ok bool)
	// PublishResult offers a freshly published result (watch jobs) to the
	// peers that own its key. Best-effort and asynchronous.
	PublishResult(key string, body []byte)
	// EnsureTraces makes the named corpus blobs locally available,
	// pulling any missing ones from peers (SHA-256-verified on receipt).
	EnsureTraces(ctx context.Context, keys []string) error
	// ReplicateBlob fans a freshly ingested corpus blob out to the key's
	// owner and replicas. Best-effort and asynchronous — anti-entropy
	// repairs anything the fan-out misses.
	ReplicateBlob(key string)
}

// SetCluster installs the cluster layer. Call once, before serving.
func (s *Server) SetCluster(c ClusterHook) { s.cluster = c }

// NoProxyHeader marks a submission that is already a cluster hop: the
// receiving node must answer it itself — no peer cache checks, no
// forwarding. This bounds any routing disagreement between nodes to a
// single extra hop instead of a proxy loop.
const NoProxyHeader = "X-Sherlock-No-Proxy"
