// Serving configuration and validation.
package server

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"sherlock/internal/core"
)

// Config tunes one sherlockd instance.
type Config struct {
	// Workers is the worker-pool size: how many inference campaigns run
	// concurrently. Must be positive.
	Workers int
	// QueueSize bounds the number of admitted-but-not-started jobs. A full
	// queue rejects submissions with 429 + Retry-After instead of growing
	// memory. Must be positive.
	QueueSize int
	// CacheCapacity bounds the content-addressed result cache (entries).
	// Must be positive.
	CacheCapacity int
	// JobTimeout is the per-job wall-clock bound; a job exceeding it is
	// canceled and reported failed. Zero disables the bound; negative is
	// invalid.
	JobTimeout time.Duration
	// DrainTimeout bounds graceful shutdown: how long SIGTERM waits for
	// admitted jobs before force-canceling them. Zero disables the bound;
	// negative is invalid.
	DrainTimeout time.Duration
	// CorpusDir roots the content-addressed trace corpus behind
	// POST/GET /v1/traces and trace_keys job submission. Empty means a
	// fresh per-process temporary directory (uploads do not survive a
	// restart); set it to persist the corpus across restarts and share it
	// between daemons.
	CorpusDir string
	// Inference is the base campaign config that job specs override per
	// request. Validated via core's own Config.Validate.
	Inference core.Config
}

// DefaultConfig sizes the service for one host: one worker per CPU, a
// queue twice the pool, a 4096-entry cache, 2-minute job timeout, and the
// paper's default inference operating point.
func DefaultConfig() Config {
	return Config{
		Workers:       runtime.GOMAXPROCS(0),
		QueueSize:     2 * runtime.GOMAXPROCS(0),
		CacheCapacity: 4096,
		JobTimeout:    2 * time.Minute,
		DrainTimeout:  30 * time.Second,
		Inference:     core.DefaultConfig(),
	}
}

// Validate checks the serving knobs and the embedded inference config,
// reporting every problem at once with errors.Join (errors.Is/As still
// match the individual values). A nil return means the server can start.
func (c Config) Validate() error {
	var errs []error
	if c.Workers <= 0 {
		errs = append(errs, fmt.Errorf("Workers must be positive, got %d", c.Workers))
	}
	if c.QueueSize <= 0 {
		errs = append(errs, fmt.Errorf("QueueSize must be positive, got %d", c.QueueSize))
	}
	if c.CacheCapacity <= 0 {
		errs = append(errs, fmt.Errorf("CacheCapacity must be positive, got %d", c.CacheCapacity))
	}
	if c.JobTimeout < 0 {
		errs = append(errs, fmt.Errorf("JobTimeout must be non-negative, got %v", c.JobTimeout))
	}
	if c.DrainTimeout < 0 {
		errs = append(errs, fmt.Errorf("DrainTimeout must be non-negative, got %v", c.DrainTimeout))
	}
	if err := c.Inference.Validate(); err != nil {
		errs = append(errs, fmt.Errorf("Inference: %w", err))
	}
	if len(errs) == 0 {
		return nil
	}
	return errors.Join(errs...)
}
