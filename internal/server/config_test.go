package server

import (
	"strings"
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		wants  []string // substrings of the joined error; empty = valid
	}{
		{name: "defaults are valid", mutate: func(c *Config) {}},
		{
			name:   "zero workers",
			mutate: func(c *Config) { c.Workers = 0 },
			wants:  []string{"Workers must be positive"},
		},
		{
			name:   "negative workers",
			mutate: func(c *Config) { c.Workers = -2 },
			wants:  []string{"Workers must be positive, got -2"},
		},
		{
			name:   "zero queue size",
			mutate: func(c *Config) { c.QueueSize = 0 },
			wants:  []string{"QueueSize must be positive"},
		},
		{
			name:   "zero cache capacity",
			mutate: func(c *Config) { c.CacheCapacity = 0 },
			wants:  []string{"CacheCapacity must be positive"},
		},
		{
			name:   "negative job timeout",
			mutate: func(c *Config) { c.JobTimeout = -time.Second },
			wants:  []string{"JobTimeout must be non-negative"},
		},
		{
			name:   "negative drain timeout",
			mutate: func(c *Config) { c.DrainTimeout = -time.Second },
			wants:  []string{"DrainTimeout must be non-negative"},
		},
		{
			name:   "invalid inference config surfaces through",
			mutate: func(c *Config) { c.Inference.Rounds = 0 },
			wants:  []string{"Inference:", "Rounds must be positive"},
		},
		{
			name: "all problems reported at once",
			mutate: func(c *Config) {
				c.Workers = -1
				c.QueueSize = 0
				c.CacheCapacity = -5
				c.JobTimeout = -time.Minute
			},
			wants: []string{
				"Workers must be positive",
				"QueueSize must be positive",
				"CacheCapacity must be positive",
				"JobTimeout must be non-negative",
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			err := cfg.Validate()
			if len(tc.wants) == 0 {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("expected error containing %v, got nil", tc.wants)
			}
			for _, want := range tc.wants {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("error missing %q:\n%v", want, err)
				}
			}
		})
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueSize = -1
	if _, err := New(cfg); err == nil {
		t.Fatal("New should reject an invalid config")
	}
}
