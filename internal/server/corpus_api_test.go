// Tests for the trace-corpus HTTP surface: upload (both serializations,
// dedup), listing, and job submission by corpus key, including the
// acceptance invariant that inference on an uploaded corpus key returns
// results byte-identical to in-memory inference on the same trace.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/sched"
	"sherlock/internal/store"
	"sherlock/internal/trace"
)

// captureApp1Trace returns one App-1 trace for upload tests.
func captureApp1Trace(t *testing.T) *trace.Trace {
	t.Helper()
	app, err := apps.ByName("App-1")
	if err != nil {
		t.Fatal(err)
	}
	run, err := sched.Run(app, app.Tests[0], sched.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return run.Trace
}

func postBody(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

func TestTraceUploadAndDedup(t *testing.T) {
	_, ts := startTestServer(t, fastConfig())
	tr := captureApp1Trace(t)

	// Binary upload: 201, added.
	bin, err := store.EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postBody(t, ts.URL+"/v1/traces", bin)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("binary upload: %s: %s", resp.Status, body)
	}
	var up1 uploadView
	if err := json.Unmarshal(body, &up1); err != nil {
		t.Fatal(err)
	}
	if up1.Dedup || up1.Key == "" || up1.Events != len(tr.Events) || up1.App != tr.App {
		t.Fatalf("bad upload view: %+v", up1)
	}

	// Same trace as JSON lines: 200, dedup to the same content address —
	// the server re-encodes canonically, so the serialization the client
	// picked cannot fork the address space.
	var jsonBuf bytes.Buffer
	if err := tr.Write(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	resp, body = postBody(t, ts.URL+"/v1/traces", jsonBuf.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dedup upload: %s: %s", resp.Status, body)
	}
	var up2 uploadView
	if err := json.Unmarshal(body, &up2); err != nil {
		t.Fatal(err)
	}
	if !up2.Dedup || up2.Key != up1.Key {
		t.Fatalf("JSON re-upload did not dedup to the same key: %+v vs %+v", up2, up1)
	}

	// Garbage is rejected.
	resp, _ = postBody(t, ts.URL+"/v1/traces", []byte("not a trace"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload: %s", resp.Status)
	}

	// The listing shows exactly one entry.
	code, body := getBody(t, ts.URL+"/v1/traces")
	if code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	var listing struct {
		Count  int           `json:"count"`
		Traces []store.Entry `json:"traces"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	if listing.Count != 1 || len(listing.Traces) != 1 || listing.Traces[0].Key != up1.Key {
		t.Fatalf("bad listing: %+v", listing)
	}
}

// Acceptance: a job submitted by corpus key must produce a core.Result
// byte-identical (as canonical JSON) to in-memory inference over the
// same trace with the same effective config.
func TestInferByCorpusKeyMatchesInMemory(t *testing.T) {
	_, ts := startTestServer(t, fastConfig())
	tr := captureApp1Trace(t)
	bin, err := store.EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postBody(t, ts.URL+"/v1/traces", bin)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %s: %s", resp.Status, body)
	}
	var up uploadView
	if err := json.Unmarshal(body, &up); err != nil {
		t.Fatal(err)
	}

	// Submit by key and poll to completion.
	resp2, v := postJob(t, ts.URL, map[string]any{"trace_keys": []string{up.Key}})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("submit by key: %s", resp2.Status)
	}
	final := waitDone(t, ts.URL, v.ID)
	code, resBody := getBody(t, ts.URL+"/v1/results/"+final.Key)
	if code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	var env struct {
		Result core.Result `json:"result"`
	}
	if err := json.Unmarshal(resBody, &env); err != nil {
		t.Fatal(err)
	}

	// In-memory reference: same trace, same effective config.
	spec := JobSpec{TraceKeys: []string{up.Key}}
	cfg := spec.effectiveConfig(fastConfig().Inference)
	want, err := core.InferFromTraces(context.Background(), []*trace.Trace{tr}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wall-clock fields are the only legitimately nondeterministic part of
	// a Result; zero them on both sides, then demand byte identity.
	got := env.Result
	got.Overhead.RunWall, got.Overhead.SolveWall = 0, 0
	want.Overhead.RunWall, want.Overhead.SolveWall = 0, 0
	gotJSON, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("corpus-key result differs from in-memory inference:\n got %s\nwant %s", gotJSON, wantJSON)
	}

	// Submitting the same key again is a content-cache hit.
	resp3, v3 := postJob(t, ts.URL, map[string]any{"trace_keys": []string{up.Key}})
	if resp3.StatusCode != http.StatusOK || !v3.Cached || v3.Key != final.Key {
		t.Fatalf("resubmission by key missed the cache: %s %+v", resp3.Status, v3)
	}
}

func TestSubmitCorpusKeyBadRequests(t *testing.T) {
	_, ts := startTestServer(t, fastConfig())
	// Unknown key: refused up front, not at run time.
	resp, _ := postJob(t, ts.URL, map[string]any{"trace_keys": []string{"deadbeef"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown key: %s", resp.Status)
	}
	// Mixing workload kinds is rejected.
	resp, _ = postJob(t, ts.URL, map[string]any{"app": "App-1", "trace_keys": []string{"deadbeef"}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mixed spec: %s", resp.Status)
	}
}

// Corpus metrics appear after an upload cycle.
func TestCorpusMetrics(t *testing.T) {
	_, ts := startTestServer(t, fastConfig())
	tr := captureApp1Trace(t)
	bin, err := store.EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	postBody(t, ts.URL+"/v1/traces", bin)
	postBody(t, ts.URL+"/v1/traces", bin)
	code, metrics := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	for _, want := range []string{
		"sherlock_corpus_ingested_total 1",
		"sherlock_corpus_dedup_total 1",
		"sherlock_corpus_traces 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
