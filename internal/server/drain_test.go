// Drain hygiene: a graceful shutdown must tear down every goroutine the
// server spawned — workers, watch subscriptions (and their backoff
// timers), long-poll handlers — so a process hosting several servers
// over its lifetime (tests, benchmarks, embedded daemons) does not
// accumulate leaked goroutines.
package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// goroutinesStable samples the goroutine count until it stops above the
// limit or the deadline passes, returning the final count. GC between
// samples nudges finalizer-held goroutines along.
func goroutinesStable(limit int, deadline time.Duration) int {
	end := time.Now().Add(deadline)
	n := runtime.NumGoroutine()
	for n > limit && time.Now().Before(end) {
		runtime.GC()
		time.Sleep(20 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestShutdownLeavesNoGoroutines exercises the full goroutine surface —
// watch subscriptions with armed retry backoff, long-poll watchers,
// an SSE stream, workers with completed jobs — then shuts down and
// asserts the goroutine count returns to its pre-server baseline.
func TestShutdownLeavesNoGoroutines(t *testing.T) {
	baseline := goroutinesStable(0, time.Second)

	cfg := fastConfig()
	cfg.CorpusDir = t.TempDir()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	// A couple of completed one-shot jobs keep the worker pool honest.
	resp, v := postJob(t, ts.URL, map[string]any{"app": "App-1", "max_steps": 200})
	resp.Body.Close()
	waitDone(t, ts.URL, v.ID)

	// Watch subscriptions: one that publishes (matching ingest) and one
	// idle forever. The publishing one also exercises the checkpoint path.
	traces := captureAppTraces(t, "App-2", 2)
	for _, tr := range traces {
		uploadTraceT(t, ts.URL, tr)
	}
	watchIDs := make([]string, 0, 2)
	for _, app := range []string{"App-2", "App-3"} {
		resp, wv := postJob(t, ts.URL, map[string]any{"watch_app": app, "max_steps": 200})
		resp.Body.Close()
		watchIDs = append(watchIDs, wv.ID)
	}
	// Wait for the App-2 watch to publish at least once.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := getBody(t, ts.URL+"/v1/jobs/"+watchIDs[0])
		if strings.Contains(string(body), `"version":`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watch job never published: %s", body)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Park long-poll and SSE watchers on the idle subscription; they must
	// be released by drain, not by their own 60s timeouts.
	pollDone := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/v1/jobs/" + watchIDs[1] + "/watch?timeout=60&after=100")
			if err == nil {
				resp.Body.Close()
			}
			pollDone <- err
		}()
	}
	sseDone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequest("GET", ts.URL+"/v1/jobs/"+watchIDs[1]+"/watch", nil)
		req.Header.Set("Accept", "text/event-stream")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			buf := make([]byte, 1024)
			for {
				if _, rerr := resp.Body.Read(buf); rerr != nil {
					break
				}
			}
			resp.Body.Close()
		}
		sseDone <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the watchers park

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("shutdown took %v; drain should release watchers promptly", elapsed)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-pollDone:
			if err != nil {
				t.Fatalf("long-poll errored during drain: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("long-poll watcher still parked after shutdown")
		}
	}
	select {
	case <-sseDone:
	case <-time.After(5 * time.Second):
		t.Fatal("SSE watcher still parked after shutdown")
	}
	ts.Close()

	// httptest and the client transport keep a few goroutines around
	// briefly; allow small slack, but a leaked subscription loop or timer
	// per watch job would exceed it.
	const slack = 3
	if n := goroutinesStable(baseline+slack, 5*time.Second); n > baseline+slack {
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Fatalf("goroutines leaked: baseline %d, after shutdown %d\n%s", baseline, n, buf)
	}
}

// TestBeginDrainReleasesLongPoll asserts the drain signal alone — before
// any queue drain completes — unblocks a parked long-poll.
func TestBeginDrainReleasesLongPoll(t *testing.T) {
	s, ts := startTestServer(t, fastConfig())

	resp, wv := postJob(t, ts.URL, map[string]any{"watch_app": "App-4", "max_steps": 200})
	resp.Body.Close()

	got := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + wv.ID + "/watch?timeout=60&after=100")
		if err != nil {
			got <- -1
			return
		}
		defer resp.Body.Close()
		got <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond)

	s.BeginDrain()
	select {
	case code := <-got:
		if code != http.StatusOK {
			t.Fatalf("long-poll after BeginDrain: HTTP %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("BeginDrain did not release the long-poll")
	}
}
