// Unified v1 error envelope. Every non-2xx JSON response the daemon emits
// goes through writeError, so clients can branch on a machine-readable
// code instead of substring-matching prose:
//
//	{"error": {"code": "queue_full", "message": "server: job queue is full"}}
//
// Codes are part of the API contract (DESIGN.md lists them per endpoint);
// messages are human-readable and free to change. Every 429 and 503 also
// carries a Retry-After header so well-behaved clients back off without
// guessing.
package server

import (
	"encoding/json"
	"errors"
	"net/http"
)

// Error codes. Stable strings — clients switch on them.
const (
	// CodeInvalidArgument: the request body or parameters are malformed
	// (bad JSON, unknown app, missing corpus key, out-of-range config).
	CodeInvalidArgument = "invalid_argument"
	// CodeNotFound: the job id, result key, or span tree does not exist.
	CodeNotFound = "not_found"
	// CodeQueueFull: the bounded job queue has no free slot; retry later.
	CodeQueueFull = "queue_full"
	// CodeWatchLimit: the server is at its concurrent-subscription cap.
	CodeWatchLimit = "watch_limit"
	// CodeDraining: the server is shutting down and refuses new work.
	CodeDraining = "draining"
	// CodePayloadTooLarge: the request body exceeds the service bound.
	CodePayloadTooLarge = "payload_too_large"
	// CodeInternal: the server failed; the request may be retried.
	CodeInternal = "internal"
)

// errorEnvelope is the wire shape of every error response.
type errorEnvelope struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeError emits the v1 envelope with the given HTTP status. Backpressure
// statuses (429, 503) always carry Retry-After: 1 — the queue drains on
// job-completion timescales, so an immediate retry storm is never useful.
func writeError(w http.ResponseWriter, status int, code, message string) {
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorEnvelope{Error: errorDetail{Code: code, Message: message}})
}

// decodeRequest bounds and decodes a JSON request body into v. On failure
// it writes the envelope itself and returns false; handlers just return.
func decodeRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, CodePayloadTooLarge, err.Error())
			return false
		}
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "bad request body: "+err.Error())
		return false
	}
	return true
}
