// Table-driven coverage of the v1 error envelope: every error path must
// answer {"error":{"code","message"}} with the documented machine-readable
// code, and every 429/503 must carry Retry-After.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// decodeEnvelope asserts the response is a well-formed v1 error envelope
// and returns its code.
func decodeEnvelope(t *testing.T, resp *http.Response, body []byte) string {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error body is not the v1 envelope: %v\n%s", err, body)
	}
	if env.Error.Code == "" || env.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %s", body)
	}
	if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("HTTP %d without Retry-After", resp.StatusCode)
		}
	}
	return env.Error.Code
}

func doReq(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestErrorEnvelopeEveryPath(t *testing.T) {
	_, ts := startTestServer(t, fastConfig())

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"submit bad JSON", "POST", "/v1/jobs", "{not json", http.StatusBadRequest, CodeInvalidArgument},
		{"submit empty spec", "POST", "/v1/jobs", "{}", http.StatusBadRequest, CodeInvalidArgument},
		{"submit two workloads", "POST", "/v1/jobs", `{"app":"App-1","watch_app":"App-1"}`, http.StatusBadRequest, CodeInvalidArgument},
		{"submit unknown app", "POST", "/v1/jobs", `{"app":"App-99"}`, http.StatusBadRequest, CodeInvalidArgument},
		{"submit bad watch_app", "POST", "/v1/jobs", `{"watch_app":"no/slashes"}`, http.StatusBadRequest, CodeInvalidArgument},
		{"submit bad trace", "POST", "/v1/jobs", `{"traces":["not a trace"]}`, http.StatusBadRequest, CodeInvalidArgument},
		{"submit unknown trace key", "POST", "/v1/jobs", `{"trace_keys":["deadbeef"]}`, http.StatusBadRequest, CodeInvalidArgument},
		{"submit bad config", "POST", "/v1/jobs", `{"app":"App-1","rounds":-1}`, http.StatusBadRequest, CodeInvalidArgument},
		{"job status unknown id", "GET", "/v1/jobs/job-999999", "", http.StatusNotFound, CodeNotFound},
		{"job spans unknown id", "GET", "/v1/jobs/job-999999/spans", "", http.StatusNotFound, CodeNotFound},
		{"job watch unknown id", "GET", "/v1/jobs/job-999999/watch", "", http.StatusNotFound, CodeNotFound},
		{"job cancel unknown id", "DELETE", "/v1/jobs/job-999999", "", http.StatusNotFound, CodeNotFound},
		{"result unknown key", "GET", "/v1/results/deadbeef", "", http.StatusNotFound, CodeNotFound},
		{"trace upload garbage", "POST", "/v1/traces", "garbage bytes", http.StatusBadRequest, CodeInvalidArgument},
		{"job list bad status", "GET", "/v1/jobs?status=bogus", "", http.StatusBadRequest, CodeInvalidArgument},
		{"job list bad limit", "GET", "/v1/jobs?limit=0", "", http.StatusBadRequest, CodeInvalidArgument},
		{"job list negative limit", "GET", "/v1/jobs?limit=-3", "", http.StatusBadRequest, CodeInvalidArgument},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := doReq(t, tc.method, ts.URL+tc.path, tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("HTTP %d, want %d: %s", resp.StatusCode, tc.wantStatus, body)
			}
			if code := decodeEnvelope(t, resp, body); code != tc.wantCode {
				t.Errorf("code %q, want %q", code, tc.wantCode)
			}
		})
	}

	// ?after on the watch endpoint must be validated for real jobs too.
	t.Run("watch bad after", func(t *testing.T) {
		_, v := postJob(t, ts.URL, map[string]any{"watch_app": "App-1"})
		resp, body := doReq(t, "GET", ts.URL+"/v1/jobs/"+v.ID+"/watch?after=nope", "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("HTTP %d, want 400: %s", resp.StatusCode, body)
		}
		if code := decodeEnvelope(t, resp, body); code != CodeInvalidArgument {
			t.Errorf("code %q, want %q", code, CodeInvalidArgument)
		}
	})
}

// TestErrorEnvelopeQueueFull exercises the 429 queue_full path with a
// gated executor.
func TestErrorEnvelopeQueueFull(t *testing.T) {
	cfg := fastConfig()
	cfg.Workers = 1
	cfg.QueueSize = 1
	s, ts := startTestServer(t, cfg)
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s.exec = func(ctx context.Context, j *Job) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-gate:
			return []byte("{}"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	_, v1 := postJob(t, ts.URL, map[string]any{"app": "App-1", "seed": 301})
	<-started
	postJob(t, ts.URL, map[string]any{"app": "App-1", "seed": 302}) // fills the queue
	resp, body := doReq(t, "POST", ts.URL+"/v1/jobs", `{"app":"App-1","seed":303}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429: %s", resp.StatusCode, body)
	}
	if code := decodeEnvelope(t, resp, body); code != CodeQueueFull {
		t.Errorf("code %q, want %q", code, CodeQueueFull)
	}
	close(gate)
	waitDone(t, ts.URL, v1.ID)
}

// TestErrorEnvelopeDrainingAndWatchLimit covers the 503 draining path and
// the 429 watch_limit path.
func TestErrorEnvelopeDrainingAndWatchLimit(t *testing.T) {
	s, ts := startTestServer(t, fastConfig())

	// Saturate the subscription table with placeholders.
	s.subMu.Lock()
	for i := 0; i < maxSubscriptions; i++ {
		s.subs[fmt.Sprintf("placeholder-%d", i)] = &subscription{}
	}
	s.subMu.Unlock()
	resp, body := doReq(t, "POST", ts.URL+"/v1/jobs", `{"watch_app":"App-1"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429: %s", resp.StatusCode, body)
	}
	if code := decodeEnvelope(t, resp, body); code != CodeWatchLimit {
		t.Errorf("code %q, want %q", code, CodeWatchLimit)
	}
	s.subMu.Lock()
	for id := range s.subs {
		if strings.HasPrefix(id, "placeholder-") {
			delete(s.subs, id)
		}
	}
	s.subMu.Unlock()

	s.draining.Store(true)
	for _, tc := range []struct{ method, path, payload string }{
		{"POST", "/v1/jobs", `{"app":"App-1"}`},
		{"POST", "/v1/traces", "x"},
	} {
		resp, body := doReq(t, tc.method, ts.URL+tc.path, tc.payload)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s %s: HTTP %d, want 503: %s", tc.method, tc.path, resp.StatusCode, body)
		}
		if code := decodeEnvelope(t, resp, body); code != CodeDraining {
			t.Errorf("%s %s: code %q, want %q", tc.method, tc.path, code, CodeDraining)
		}
	}
	s.draining.Store(false)
}
