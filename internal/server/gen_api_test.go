package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/static"
)

// TestGeneratedAppJob: a gen:<seed> name round-trips through the job API
// byte-identically to a local campaign — same content key, same result
// bytes — in both the legacy and the unified submission shapes.
func TestGeneratedAppJob(t *testing.T) {
	srvCfg := fastConfig()
	s, ts := startTestServer(t, srvCfg)

	const appName = "gen:42"
	resp, v := postJob(t, ts.URL, JobSpec{Mode: "app", Target: appName})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	done := waitDone(t, ts.URL, v.ID)
	code, body := getBody(t, ts.URL+done.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("result fetch: %d", code)
	}

	// The served bytes must equal a local campaign over the same program
	// and effective config, marshaled the same way — modulo the wall-clock
	// overhead fields, the only nondeterministic part of a result.
	app, err := apps.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	cfg := JobSpec{App: appName}.effectiveConfig(srvCfg.Inference)
	res, err := core.Infer(context.Background(), app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := marshalResult(JobKey(JobSpec{App: appName}, cfg), res)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := normalizeWall(t, body), normalizeWall(t, want); got != want {
		t.Fatalf("server result diverges from the local campaign:\n%s\nvs\n%s", got, want)
	}

	// The legacy spelling of the same job is a pure cache hit.
	resp2, v2 := postJob(t, ts.URL, JobSpec{App: appName})
	if resp2.StatusCode != http.StatusOK || !v2.Cached {
		t.Fatalf("legacy resubmit: code %d cached=%t, want 200 cached", resp2.StatusCode, v2.Cached)
	}
	if got := s.jobsComputed.Value(); got != 1 {
		t.Fatalf("campaign computed %d times, want 1", got)
	}

	// Unknown generated names keep the registry's error shape.
	resp3, _ := postJob(t, ts.URL, JobSpec{Mode: "app", Target: "gen:oops"})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad gen name accepted: %d", resp3.StatusCode)
	}
}

// normalizeWall re-marshals a result envelope with the wall-clock
// overhead durations zeroed, leaving every deterministic byte in place.
func normalizeWall(t *testing.T, body []byte) string {
	t.Helper()
	var env resultEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	env.Result.Overhead.RunWall = 0
	env.Result.Overhead.SolveWall = 0
	out, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestGeneratedAppStaticEndpoint: GET /v1/apps/{id}/static resolves
// generated names (',' and '=' and ':' travel fine in a path segment)
// and serves the same report a local run-free solve produces.
func TestGeneratedAppStaticEndpoint(t *testing.T) {
	srvCfg := fastConfig()
	_, ts := startTestServer(t, srvCfg)

	const appName = "gen:7,profile=go"
	code, body := getBody(t, ts.URL+"/v1/apps/"+appName+"/static")
	if code != http.StatusOK {
		t.Fatalf("static endpoint: %d %s", code, body)
	}
	var env resultEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.App != appName {
		t.Fatalf("report for %q, want %q", env.App, appName)
	}
	app, err := apps.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	wantHash, err := static.ProgramHash(app)
	if err != nil {
		t.Fatal(err)
	}
	if env.ProgramHash != wantHash {
		t.Fatalf("program hash %s, want local %s", env.ProgramHash, wantHash)
	}
	cfg := JobSpec{}.effectiveConfig(srvCfg.Inference)
	res, _, err := core.InferStatic(context.Background(), app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(env.Result.Inferred)
	want, _ := json.Marshal(res.Inferred)
	if string(got) != string(want) {
		t.Fatal("endpoint inferred set diverges from the local static solve")
	}

	if code, body := getBody(t, ts.URL+"/v1/apps/gen:7,profile=rust/static"); code != http.StatusNotFound ||
		!strings.Contains(string(body), "profile") {
		t.Fatalf("bad profile: got %d %s, want 404 naming the profile", code, body)
	}
}
