// Content-addressed job keys. A job's key is the SHA-256 of a canonical
// byte encoding of everything that determines its result: the workload
// (benchmark application name, or the raw trace bytes for offline jobs)
// and every result-relevant field of the effective inference Config,
// written in a fixed order with explicit field tags. Two properties make
// the scheme safe as a cache address:
//
//   - Deterministic across processes: the encoding never touches map
//     iteration order, pointers, or wall-clock state, so the same
//     workload+config hashes identically on every run of every binary.
//   - Execution-irrelevant knobs are excluded: Config.Parallelism is NOT
//     hashed because results are bit-identical for every worker-pool size
//     (a PR 1 invariant) — a 4-worker submission hits the cache entry a
//     16-worker submission populated. Hooks (OnRound, OnSnapshot) and
//     ColdStart are likewise excluded: they change cost, not results
//     (the warm/cold equivalence tests enforce the latter).
//
// The encoding is versioned (keyEncodingV1); changing what gets hashed
// must bump the version so stale keys can never alias new content.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"sherlock/internal/core"
)

const keyEncodingV1 = "sherlock-job-v1"

// JobKey computes the content address of a job: the workload from spec
// (App or Traces) plus the effective, fully resolved inference config.
func JobKey(spec JobSpec, cfg core.Config) string {
	h := sha256.New()
	io.WriteString(h, keyEncodingV1+"\n")
	switch {
	case spec.App != "":
		fmt.Fprintf(h, "kind=app\napp=%s\n", spec.App)
	case len(spec.TraceKeys) > 0:
		// Corpus keys are themselves content addresses (SHA-256 of each
		// trace's canonical encoding), so hashing the key list is hashing
		// the trace contents — resubmitting the same stored traces hits
		// the same cache entry regardless of which daemon ingested them.
		fmt.Fprintf(h, "kind=corpus\nkeys=%d\n", len(spec.TraceKeys))
		for _, k := range spec.TraceKeys {
			fmt.Fprintf(h, "key=%s\n", k)
		}
	default:
		fmt.Fprintf(h, "kind=traces\ntraces=%d\n", len(spec.Traces))
		for _, tr := range spec.Traces {
			fmt.Fprintf(h, "trace:%d\n", len(tr))
			io.WriteString(h, tr)
			io.WriteString(h, "\n")
		}
	}
	writeConfig(h, cfg)
	return hex.EncodeToString(h.Sum(nil))
}

// writeConfig streams every result-relevant Config field with a stable tag.
// Floats use %g (shortest round-trip form, deterministic in Go).
func writeConfig(w io.Writer, cfg core.Config) {
	fmt.Fprintf(w, "rounds=%d\n", cfg.Rounds)
	fmt.Fprintf(w, "window.near=%d\n", cfg.Window.Near)
	fmt.Fprintf(w, "window.perpaircap=%d\n", cfg.Window.PerPairCap)
	fmt.Fprintf(w, "window.unsafeapis=%t\n", cfg.Window.UseUnsafeAPIs)
	fmt.Fprintf(w, "solver.lambda=%g\n", cfg.Solver.Lambda)
	fmt.Fprintf(w, "solver.rarecoef=%g\n", cfg.Solver.RareCoef)
	fmt.Fprintf(w, "solver.threshold=%g\n", cfg.Solver.Threshold)
	hyp := cfg.Solver.Hyp
	fmt.Fprintf(w, "solver.hyp=%t,%t,%t,%t,%t,%t\n",
		hyp.MostlyProtected, hyp.SyncsAreRare, hyp.AcqTimeVaries,
		hyp.MostlyPaired, hyp.ReadAcqWriteRel, hyp.SingleRole)
	fmt.Fprintf(w, "solver.keepracy=%t\n", cfg.Solver.KeepRacyWindows)
	fmt.Fprintf(w, "solver.softsinglerole=%t\n", cfg.Solver.SoftSingleRole)
	fmt.Fprintf(w, "solver.maxlpiters=%d\n", cfg.Solver.MaxLPIters)
	// Per-role objective weights join the key only when they depart from
	// the paper's uniform weighting, so every pre-weights job key — and the
	// cache entries filed under them — stays addressable.
	if ws := cfg.Solver.Weights; !ws.IsDefault() {
		r := ws.Resolved()
		fmt.Fprintf(w, "solver.weights=%g,%g\n", r.Acquire, r.Release)
	}
	fmt.Fprintf(w, "delay=%d\n", cfg.Delay)
	fmt.Fprintf(w, "delayprob=%g\n", cfg.DelayProbability)
	fmt.Fprintf(w, "seed=%d\n", cfg.Seed)
	fmt.Fprintf(w, "accumulate=%t\n", cfg.Accumulate)
	fmt.Fprintf(w, "injectdelays=%t\n", cfg.InjectDelays)
	fmt.Fprintf(w, "removeracymp=%t\n", cfg.RemoveRacyMP)
	fmt.Fprintf(w, "maxsteps=%d\n", cfg.MaxStepsPerTest)
	// Parallelism, ColdStart, OnRound, OnSnapshot intentionally omitted:
	// they affect cost, not results.
}
