// Content-addressed job keys. A job's key is the SHA-256 of a canonical
// byte encoding of everything that determines its result: the workload
// (benchmark application name, or the raw trace bytes for offline jobs)
// and every result-relevant field of the effective inference Config,
// written in a fixed order with explicit field tags. Two properties make
// the scheme safe as a cache address:
//
//   - Deterministic across processes: the encoding never touches map
//     iteration order, pointers, or wall-clock state, so the same
//     workload+config hashes identically on every run of every binary.
//   - Execution-irrelevant knobs are excluded: Config.Parallelism is NOT
//     hashed because results are bit-identical for every worker-pool size
//     (a PR 1 invariant) — a 4-worker submission hits the cache entry a
//     16-worker submission populated. Hooks (OnRound, OnSnapshot) and
//     ColdStart are likewise excluded: they change cost, not results
//     (the warm/cold equivalence tests enforce the latter).
//
// The encoding is versioned (keyEncodingV1); changing what gets hashed
// must bump the version so stale keys can never alias new content.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strings"

	"sherlock/internal/core"
	"sherlock/internal/prog"
	"sherlock/internal/sched"
	"sherlock/internal/static"
)

const keyEncodingV1 = "sherlock-job-v1"

// JobKey computes the content address of a job: the workload from spec
// (App, StaticApp, or Traces) plus the effective, fully resolved inference
// config.
func JobKey(spec JobSpec, cfg core.Config) string {
	return JobKeyFromConfigText(spec, ConfigText(cfg))
}

// JobKeyFromConfigText is JobKey over a pre-rendered canonical config text
// (ConfigText of the executing server's BASE config) with the spec's
// overrides patched in textually. It exists for clients: a node publishes
// its base config text on /v1/cluster/info, and any client holding it can
// compute the exact content key a submission will get — and therefore
// which ring member owns it — without re-implementing config resolution.
func JobKeyFromConfigText(spec JobSpec, cfgText string) string {
	h := sha256.New()
	io.WriteString(h, keyEncodingV1+"\n")
	switch {
	case spec.App != "":
		fmt.Fprintf(h, "kind=app\napp=%s\n", spec.App)
	case spec.StaticApp != "":
		fmt.Fprintf(h, "kind=static\napp=%s\n", spec.StaticApp)
	case len(spec.TraceKeys) > 0:
		// Corpus keys are themselves content addresses (SHA-256 of each
		// trace's canonical encoding), so hashing the key list is hashing
		// the trace contents — resubmitting the same stored traces hits
		// the same cache entry regardless of which daemon ingested them.
		fmt.Fprintf(h, "kind=corpus\nkeys=%d\n", len(spec.TraceKeys))
		for _, k := range spec.TraceKeys {
			fmt.Fprintf(h, "key=%s\n", k)
		}
	default:
		fmt.Fprintf(h, "kind=traces\ntraces=%d\n", len(spec.Traces))
		for _, tr := range spec.Traces {
			fmt.Fprintf(h, "trace:%d\n", len(tr))
			io.WriteString(h, tr)
			io.WriteString(h, "\n")
		}
	}
	io.WriteString(h, applyOverrides(spec, cfgText))
	if spec.Hybrid {
		// Appended only when set so every pre-hybrid key — and the cache
		// entries filed under them — stays addressable.
		io.WriteString(h, "hybrid=true\n")
	}
	return hex.EncodeToString(h.Sum(nil))
}

// applyOverrides patches a canonical config text with the spec's override
// fields, line for line — the textual mirror of JobSpec.effectiveConfig.
// Every override corresponds to exactly one tagged line of writeConfig, so
// patching the text and re-rendering the patched config are equivalent.
func applyOverrides(spec JobSpec, cfgText string) string {
	if spec.Rounds != 0 {
		cfgText = replaceLine(cfgText, "rounds=", fmt.Sprintf("rounds=%d", spec.Rounds))
	}
	if spec.Lambda != 0 {
		cfgText = replaceLine(cfgText, "solver.lambda=", fmt.Sprintf("solver.lambda=%g", spec.Lambda))
	}
	if spec.Near != 0 {
		cfgText = replaceLine(cfgText, "window.near=", fmt.Sprintf("window.near=%d", spec.Near))
	}
	if spec.Seed != 0 {
		cfgText = replaceLine(cfgText, "seed=", fmt.Sprintf("seed=%d", spec.Seed))
	}
	if spec.MaxSteps != 0 {
		cfgText = replaceLine(cfgText, "maxsteps=", fmt.Sprintf("maxsteps=%d", spec.MaxSteps))
	}
	return cfgText
}

// replaceLine swaps the one line starting with prefix for repl.
func replaceLine(text, prefix, repl string) string {
	lines := strings.Split(text, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, prefix) {
			lines[i] = repl
		}
	}
	return strings.Join(lines, "\n")
}

// ConfigText renders every result-relevant Config field in the canonical
// key encoding — the text JobKey hashes and /v1/cluster/info publishes.
func ConfigText(cfg core.Config) string {
	var b strings.Builder
	writeConfig(&b, cfg)
	return b.String()
}

// staticKeyEncodingV1 versions static-report content addresses.
const staticKeyEncodingV1 = "sherlock-static-report-v1"

// StaticReportKey computes the content address of a static inference
// report. Unlike campaign keys it hashes the PROGRAM (via the static
// package's structural hash), not just the app name, so a report computed
// by one build can never answer for a differently shaped program under the
// same name; and it hashes only the config fields a run-free solve reads —
// rounds, seeds, and delays are execution knobs and would fracture the
// cache for no reason.
func StaticReportKey(app *prog.Program, cfg core.Config) (string, error) {
	ph, err := static.ProgramHash(app)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\napp=%s\nprogram=%s\n", staticKeyEncodingV1, app.Name, ph)
	fmt.Fprintf(h, "window.near=%d\n", cfg.Window.Near)
	fmt.Fprintf(h, "window.perpaircap=%d\n", cfg.Window.PerPairCap)
	fmt.Fprintf(h, "window.unsafeapis=%t\n", cfg.Window.UseUnsafeAPIs)
	fmt.Fprintf(h, "solver.lambda=%g\n", cfg.Solver.Lambda)
	fmt.Fprintf(h, "solver.rarecoef=%g\n", cfg.Solver.RareCoef)
	fmt.Fprintf(h, "solver.threshold=%g\n", cfg.Solver.Threshold)
	hyp := cfg.Solver.Hyp
	// AcqTimeVaries is omitted: InferStatic forces it off (no durations
	// without execution), so it can never distinguish two static reports.
	fmt.Fprintf(h, "solver.hyp=%t,%t,%t,%t,%t\n",
		hyp.MostlyProtected, hyp.SyncsAreRare,
		hyp.MostlyPaired, hyp.ReadAcqWriteRel, hyp.SingleRole)
	fmt.Fprintf(h, "solver.softsinglerole=%t\n", cfg.Solver.SoftSingleRole)
	fmt.Fprintf(h, "solver.maxlpiters=%d\n", cfg.Solver.MaxLPIters)
	if ws := cfg.Solver.Weights; !ws.IsDefault() {
		r := ws.Resolved()
		fmt.Fprintf(h, "solver.weights=%g,%g\n", r.Acquire, r.Release)
	}
	fmt.Fprintf(h, "removeracymp=%t\n", cfg.RemoveRacyMP)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// writeConfig streams every result-relevant Config field with a stable tag.
// Floats use %g (shortest round-trip form, deterministic in Go).
func writeConfig(w io.Writer, cfg core.Config) {
	fmt.Fprintf(w, "rounds=%d\n", cfg.Rounds)
	fmt.Fprintf(w, "window.near=%d\n", cfg.Window.Near)
	fmt.Fprintf(w, "window.perpaircap=%d\n", cfg.Window.PerPairCap)
	fmt.Fprintf(w, "window.unsafeapis=%t\n", cfg.Window.UseUnsafeAPIs)
	fmt.Fprintf(w, "solver.lambda=%g\n", cfg.Solver.Lambda)
	fmt.Fprintf(w, "solver.rarecoef=%g\n", cfg.Solver.RareCoef)
	fmt.Fprintf(w, "solver.threshold=%g\n", cfg.Solver.Threshold)
	hyp := cfg.Solver.Hyp
	fmt.Fprintf(w, "solver.hyp=%t,%t,%t,%t,%t,%t\n",
		hyp.MostlyProtected, hyp.SyncsAreRare, hyp.AcqTimeVaries,
		hyp.MostlyPaired, hyp.ReadAcqWriteRel, hyp.SingleRole)
	fmt.Fprintf(w, "solver.keepracy=%t\n", cfg.Solver.KeepRacyWindows)
	fmt.Fprintf(w, "solver.softsinglerole=%t\n", cfg.Solver.SoftSingleRole)
	fmt.Fprintf(w, "solver.maxlpiters=%d\n", cfg.Solver.MaxLPIters)
	// Per-role objective weights join the key only when they depart from
	// the paper's uniform weighting, so every pre-weights job key — and the
	// cache entries filed under them — stays addressable.
	if ws := cfg.Solver.Weights; !ws.IsDefault() {
		r := ws.Resolved()
		fmt.Fprintf(w, "solver.weights=%g,%g\n", r.Acquire, r.Release)
	}
	fmt.Fprintf(w, "delay=%d\n", cfg.Delay)
	fmt.Fprintf(w, "delayprob=%g\n", cfg.DelayProbability)
	fmt.Fprintf(w, "seed=%d\n", cfg.Seed)
	fmt.Fprintf(w, "accumulate=%t\n", cfg.Accumulate)
	fmt.Fprintf(w, "injectdelays=%t\n", cfg.InjectDelays)
	fmt.Fprintf(w, "removeracymp=%t\n", cfg.RemoveRacyMP)
	fmt.Fprintf(w, "maxsteps=%d\n", cfg.MaxStepsPerTest)
	// The scheduler step distribution joins the key only when it departs
	// from the classic uniform draw ("" and sched.DistUniform dispatch
	// identically), so every pre-dist job key — and the cache entries
	// filed under them — stays addressable.
	if cfg.StepDist != "" && cfg.StepDist != sched.DistUniform {
		fmt.Fprintf(w, "sched.dist=%s\n", cfg.StepDist)
	}
	// Parallelism, ColdStart, OnRound, OnSnapshot intentionally omitted:
	// they affect cost, not results.
}
