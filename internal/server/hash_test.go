package server

import (
	"strings"
	"testing"

	"sherlock/internal/core"
)

func TestJobKeyDeterministic(t *testing.T) {
	spec := JobSpec{App: "App-1"}
	cfg := spec.effectiveConfig(core.DefaultConfig())
	k1 := JobKey(spec, cfg)
	k2 := JobKey(spec, cfg)
	if k1 != k2 {
		t.Fatalf("same input hashed differently: %s vs %s", k1, k2)
	}
	if len(k1) != 64 || strings.ToLower(k1) != k1 {
		t.Fatalf("key %q is not lowercase sha256 hex", k1)
	}
}

// TestJobKeyGolden pins the v1 encoding across processes and builds: the
// same spec+config must hash to this exact address forever (or the
// encoding version must be bumped).
func TestJobKeyGolden(t *testing.T) {
	spec := JobSpec{App: "App-1"}
	cfg := spec.effectiveConfig(core.DefaultConfig())
	const golden = "ece0fe0ce6d158f227430fe1fd451851cd64c22de2837e7c5d0d0b7d9adce0c9"
	if got := JobKey(spec, cfg); got != golden {
		t.Fatalf("JobKey(App-1, defaults) = %s, want %s\n"+
			"(an intentional encoding change must bump keyEncodingV1 and this golden)", got, golden)
	}
}

func TestJobKeySensitivity(t *testing.T) {
	base := core.DefaultConfig()
	ref := JobKey(JobSpec{App: "App-1"}, JobSpec{App: "App-1"}.effectiveConfig(base))

	// Result-relevant changes move the key.
	for name, spec := range map[string]JobSpec{
		"app":    {App: "App-2"},
		"seed":   {App: "App-1", Seed: 7},
		"rounds": {App: "App-1", Rounds: 5},
		"lambda": {App: "App-1", Lambda: 0.5},
		"near":   {App: "App-1", Near: 500},
	} {
		if got := JobKey(spec, spec.effectiveConfig(base)); got == ref {
			t.Errorf("%s override should change the key", name)
		}
	}

	// Execution-irrelevant knobs must NOT move the key: parallelism and
	// cold-start change cost, not results.
	para := base
	para.Parallelism = 16
	if got := JobKey(JobSpec{App: "App-1"}, JobSpec{App: "App-1"}.effectiveConfig(para)); got != ref {
		t.Error("Parallelism should not change the key")
	}
	cold := base
	cold.ColdStart = true
	if got := JobKey(JobSpec{App: "App-1"}, JobSpec{App: "App-1"}.effectiveConfig(cold)); got != ref {
		t.Error("ColdStart should not change the key")
	}

	// Overrides that equal the server defaults address the same entry as
	// omitted fields (the hash covers the effective config).
	same := JobSpec{App: "App-1", Rounds: base.Rounds, Seed: base.Seed}
	if got := JobKey(same, same.effectiveConfig(base)); got != ref {
		t.Error("explicit defaults should hash like omitted fields")
	}
}

func TestJobKeyTraces(t *testing.T) {
	base := core.DefaultConfig()
	a := JobSpec{Traces: []string{"doc-one"}}
	b := JobSpec{Traces: []string{"doc-two"}}
	c := JobSpec{Traces: []string{"doc-one", "doc-two"}}
	ka := JobKey(a, a.effectiveConfig(base))
	kb := JobKey(b, b.effectiveConfig(base))
	kc := JobKey(c, c.effectiveConfig(base))
	if ka == kb || ka == kc || kb == kc {
		t.Fatalf("distinct trace sets collided: %s %s %s", ka, kb, kc)
	}
	if k2 := JobKey(a, a.effectiveConfig(base)); k2 != ka {
		t.Fatal("trace job key not deterministic")
	}
}
