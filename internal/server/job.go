// Job model: the unit of work the daemon queues, executes, caches, and
// reports on. A job is either a named benchmark application campaign or an
// offline solve over raw traces in the JSONL wire format.
package server

import (
	"fmt"
	"sync"
	"time"

	"sherlock/internal/core"
)

// JobSpec is the client-facing description of one inference job — the body
// of POST /v1/jobs. The v1 shape names the workload with one (Mode,
// Target) pair; the original one-field-per-kind shape (App, Traces,
// TraceKeys, WatchApp, StaticApp, Hybrid) remains accepted verbatim.
// normalize lowers Mode/Target onto the legacy fields before validation
// and hashing, so both spellings of the same job address the same
// content key — and therefore the same cache entry. Zero-valued tuning
// fields inherit the server's base inference config; non-zero fields
// override it. The effective config (not the raw overrides) is what
// gets hashed into the job's content address, so "rounds": 3 and an
// omitted rounds field on a rounds=3 server address the same cache entry.
type JobSpec struct {
	// Mode selects the workload kind in the unified submission shape:
	// "app" (benchmark campaign), "hybrid" (campaign seeded with static
	// priors), "static" (run-free report), "watch" (corpus
	// subscription), "traces" (inline JSONL documents), or "trace_keys"
	// (corpus content addresses). Empty means the legacy shape below.
	Mode string `json:"mode,omitempty"`
	// Target carries the mode's workload: an application name for
	// app/hybrid/static/watch (built-ins "App-1".."App-8" or generated
	// "gen:<seed>[,profile=...][,size=...]"), an array of strings for
	// traces/trace_keys.
	Target any `json:"target,omitempty"`

	// App names a benchmark application ("App-1".."App-8").
	App string `json:"app,omitempty"`
	// Traces carries previously captured execution logs, one JSONL trace
	// document per element (the format (*Trace).Write emits). Trace jobs
	// run the offline solve: no re-execution, no Perturber feedback.
	Traces []string `json:"traces,omitempty"`
	// TraceKeys names traces already in the server's corpus (uploaded via
	// POST /v1/traces) by content address. Corpus jobs run the offline
	// solve streaming straight off the blob store — upload once, infer
	// many times without resending trace bytes.
	TraceKeys []string `json:"trace_keys,omitempty"`
	// WatchApp binds the job to every corpus trace whose App metadata
	// matches, now and in the future: the job enters the "watching" state
	// and re-solves incrementally each time a matching trace is ingested,
	// bumping its version. Watch results are byte-compatible with a
	// one-shot trace_keys job over the same trace set (same content key,
	// same result bytes modulo wall-clock overhead).
	WatchApp string `json:"watch_app,omitempty"`
	// StaticApp names a benchmark application for RUN-FREE inference: the
	// job walks the program's DSL, derives the constraint system without a
	// single execution, and solves it. The result is a prior-quality
	// report, bit-identical across runs and nodes, content-addressed by
	// the program's structural hash (GET /v1/apps/{id}/static serves the
	// same report without the job machinery).
	StaticApp string `json:"static_app,omitempty"`

	// Hybrid (only valid with App) seeds the campaign's round-0 objective
	// with the app's static priors before running the normal dynamic
	// rounds. The final inferred set is bit-identical to the non-hybrid
	// campaign (the engine guarantees it); only the round snapshots and
	// solve accounting differ, so hybrid jobs get their own content key.
	Hybrid bool `json:"hybrid,omitempty"`

	// Overrides of the server's base config (zero = inherit).
	Rounds int     `json:"rounds,omitempty"`
	Lambda float64 `json:"lambda,omitempty"`
	Near   int64   `json:"near,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
	// MaxSteps bounds each simulated test (guards the service against
	// adversarially long campaigns; zero = inherit).
	MaxSteps int `json:"max_steps,omitempty"`
}

// normalize lowers the unified (Mode, Target) shape onto the legacy
// one-field-per-kind spec, leaving Mode/Target cleared. Legacy-shaped
// specs (Mode empty, Target absent) pass through untouched. After a
// successful normalize the spec is indistinguishable from its legacy
// spelling, which is what keeps JobKey — and every cache entry filed
// under pre-mode keys — identical across the two shapes.
func (s *JobSpec) normalize() error {
	if s.Mode == "" {
		if s.Target != nil {
			return fmt.Errorf("job spec: \"target\" requires \"mode\"")
		}
		return nil
	}
	if s.App != "" || len(s.Traces) > 0 || len(s.TraceKeys) > 0 || s.WatchApp != "" || s.StaticApp != "" {
		return fmt.Errorf("job spec: \"mode\" and the legacy workload fields (\"app\", \"traces\", \"trace_keys\", \"watch_app\", \"static_app\") are mutually exclusive")
	}
	name := func() (string, error) {
		str, ok := s.Target.(string)
		if !ok || str == "" {
			return "", fmt.Errorf("job spec: mode %q needs a non-empty string \"target\"", s.Mode)
		}
		return str, nil
	}
	list := func() ([]string, error) {
		raw, ok := s.Target.([]any)
		if !ok || len(raw) == 0 {
			return nil, fmt.Errorf("job spec: mode %q needs a non-empty string array \"target\"", s.Mode)
		}
		out := make([]string, len(raw))
		for i, v := range raw {
			str, ok := v.(string)
			if !ok {
				return nil, fmt.Errorf("job spec: mode %q target[%d] is not a string", s.Mode, i)
			}
			out[i] = str
		}
		return out, nil
	}
	var err error
	switch s.Mode {
	case "app":
		s.App, err = name()
	case "hybrid":
		s.App, err = name()
		s.Hybrid = true
	case "static":
		s.StaticApp, err = name()
	case "watch":
		s.WatchApp, err = name()
	case "traces":
		s.Traces, err = list()
	case "trace_keys":
		s.TraceKeys, err = list()
	default:
		return fmt.Errorf("job spec: unknown mode %q (want \"app\", \"hybrid\", \"static\", \"watch\", \"traces\", or \"trace_keys\")", s.Mode)
	}
	if err != nil {
		return err
	}
	s.Mode, s.Target = "", nil
	return nil
}

// validate checks well-formedness (not config ranges — the effective
// config is validated separately). Callers normalize first; a spec with
// Mode still set was never normalized.
func (s JobSpec) validate() error {
	if s.Mode != "" || s.Target != nil {
		return fmt.Errorf("job spec: internal error: spec not normalized")
	}
	set := 0
	for _, present := range []bool{s.App != "", len(s.Traces) > 0, len(s.TraceKeys) > 0, s.WatchApp != "", s.StaticApp != ""} {
		if present {
			set++
		}
	}
	if set == 0 {
		return fmt.Errorf("job spec: one of \"app\", \"traces\", \"trace_keys\", \"watch_app\", or \"static_app\" is required")
	}
	if set > 1 {
		return fmt.Errorf("job spec: \"app\", \"traces\", \"trace_keys\", \"watch_app\", and \"static_app\" are mutually exclusive")
	}
	if s.Hybrid && s.App == "" {
		return fmt.Errorf("job spec: \"hybrid\" requires \"app\" (a campaign to seed)")
	}
	return nil
}

// effectiveConfig resolves the spec against the server's base config.
func (s JobSpec) effectiveConfig(base core.Config) core.Config {
	cfg := base
	if s.Rounds != 0 {
		cfg.Rounds = s.Rounds
	}
	if s.Lambda != 0 {
		cfg.Solver.Lambda = s.Lambda
	}
	if s.Near != 0 {
		cfg.Window.Near = s.Near
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	if s.MaxSteps != 0 {
		cfg.MaxStepsPerTest = s.MaxSteps
	}
	// Hooks are the server's own; never inherit a caller-visible one.
	cfg.OnRound = nil
	cfg.OnSnapshot = nil
	cfg.Observer = nil
	return cfg
}

// JobStatus is a job's lifecycle state.
type JobStatus string

const (
	StatusQueued   JobStatus = "queued"
	StatusRunning  JobStatus = "running"
	StatusWatching JobStatus = "watching" // subscription bound to a corpus prefix
	StatusDone     JobStatus = "done"
	StatusFailed   JobStatus = "failed"
	StatusCanceled JobStatus = "canceled"
)

// terminal reports whether a status is a final state.
func (st JobStatus) terminal() bool {
	return st == StatusDone || st == StatusFailed || st == StatusCanceled
}

// Job is one queued/executing/finished inference request.
type Job struct {
	ID  string
	Key string // content address (hash.go)

	Spec JobSpec
	Cfg  core.Config // effective config

	// noProxy marks a submission that already crossed one cluster hop
	// (cluster.go); this node must answer it itself. Immutable after
	// submit, read by the executing worker.
	noProxy bool

	mu         sync.Mutex
	status     JobStatus
	err        string
	cached     bool   // answered from the result cache, no execution
	proxied    bool   // executed by the content key's owner node
	spans      []byte // rendered span tree (obs bridge); nil for cached jobs
	submitted  time.Time
	started    time.Time
	finished   time.Time
	cancelOnce sync.Once
	cancel     func() // non-nil while cancellable; set by queue/worker
	done       chan struct{}

	// Watch-job state (subscription.go). version counts published results;
	// updated is closed and replaced on every publish, so watchers select
	// on the channel they captured to learn about the next one. key holds
	// the content address of the latest published result — it moves as the
	// bound trace set grows, unlike the immutable Key of one-shot jobs.
	version uint64
	updated chan struct{} // non-nil exactly for watch jobs
	key     string
}

func newJob(id, key string, spec JobSpec, cfg core.Config, now time.Time) *Job {
	return &Job{
		ID: id, Key: key, Spec: spec, Cfg: cfg,
		status: StatusQueued, submitted: now,
		done: make(chan struct{}),
	}
}

// newWatchJob builds a job in the watching state. Its content key is
// unknown until the first publish (no traces may match yet).
func newWatchJob(id string, spec JobSpec, cfg core.Config, now time.Time) *Job {
	return &Job{
		ID: id, Spec: spec, Cfg: cfg,
		status: StatusWatching, submitted: now,
		done:    make(chan struct{}),
		updated: make(chan struct{}),
	}
}

// publish records a new watch result version under the given content key
// and wakes every watcher. Publishing clears any transient solve error.
func (j *Job) publish(key string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusWatching {
		return
	}
	j.key = key
	j.version++
	j.err = ""
	close(j.updated)
	j.updated = make(chan struct{})
}

// watchState snapshots the fields a long-poll loop needs: the version,
// the status, and the channel that signals the next publish.
func (j *Job) watchState() (version uint64, status JobStatus, updated <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.version, j.status, j.updated
}

// setTransientError records a watch-cycle failure without leaving the
// watching state; the next successful publish clears it.
func (j *Job) setTransientError(msg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusWatching {
		j.err = msg
	}
}

// Status returns the current lifecycle state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// setSpans stores the job's rendered span tree (obs.go). A nil or
// oversized body is dropped.
func (j *Job) setSpans(body []byte) {
	if body == nil || len(body) > maxSpanBodyBytes {
		return
	}
	j.mu.Lock()
	j.spans = body
	j.mu.Unlock()
}

// SpansJSON returns the stored span tree, or nil when none was recorded
// (job still queued, answered from the cache, or executed before tracing).
func (j *Job) SpansJSON() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.spans
}

// Cancel requests cancellation: a queued job is dropped when a worker pops
// it; a running job's context is canceled, aborting the campaign between
// test executions.
func (j *Job) Cancel() {
	j.mu.Lock()
	cancel := j.cancel
	if j.status == StatusQueued {
		// Mark immediately so the worker skips it without running.
		j.finish(StatusCanceled, "canceled before start")
	}
	j.mu.Unlock()
	if cancel != nil {
		j.cancelOnce.Do(cancel)
	}
}

// start transitions queued→running; returns false if the job was canceled
// while waiting in the queue.
func (j *Job) start(now time.Time, cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = now
	j.cancel = cancel
	return true
}

// finish records a terminal state. Callers must hold j.mu.
func (j *Job) finish(st JobStatus, errMsg string) {
	if j.status.terminal() {
		return
	}
	j.status = st
	j.err = errMsg
	j.finished = time.Now()
	close(j.done)
}

// finishLocked is finish with locking for callers outside the struct.
func (j *Job) finishLocked(st JobStatus, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finish(st, errMsg)
}

// view is the JSON representation served by the jobs endpoints.
type jobView struct {
	ID          string `json:"id"`
	Key         string `json:"key"`
	Status      string `json:"status"`
	Cached      bool   `json:"cached"`
	Proxied     bool   `json:"proxied,omitempty"` // executed by the key's owner node
	Version     uint64 `json:"version,omitempty"` // watch jobs: published results so far
	WatchApp    string `json:"watch_app,omitempty"`
	StaticApp   string `json:"static_app,omitempty"`
	Hybrid      bool   `json:"hybrid,omitempty"`
	Error       string `json:"error,omitempty"`
	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	ResultURL   string `json:"result_url,omitempty"`
	SpansURL    string `json:"spans_url,omitempty"`
	WatchURL    string `json:"watch_url,omitempty"`
}

func (j *Job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID:          j.ID,
		Key:         j.Key,
		Status:      string(j.status),
		Cached:      j.cached,
		Proxied:     j.proxied,
		Version:     j.version,
		WatchApp:    j.Spec.WatchApp,
		StaticApp:   j.Spec.StaticApp,
		Hybrid:      j.Spec.Hybrid,
		Error:       j.err,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
		WatchURL:    "/v1/jobs/" + j.ID + "/watch",
	}
	if j.Spec.WatchApp != "" {
		// A watch job's key tracks the latest published trace set.
		v.Key = j.key
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
	}
	if j.status == StatusDone && v.Key != "" {
		v.ResultURL = "/v1/results/" + v.Key
	}
	if j.Spec.WatchApp != "" && j.version > 0 {
		v.ResultURL = "/v1/results/" + v.Key
	}
	if j.spans != nil {
		v.SpansURL = "/v1/jobs/" + j.ID + "/spans"
	}
	return v
}
