// GET /v1/jobs: enumerate the in-memory job records with status filtering
// and bounded cursor pagination. Jobs are returned in submission order
// (idOrder is append-only); the cursor is the last id of the previous
// page, compared by the numeric sequence embedded in the id — NOT
// lexicographically, which would break past job-999999 where the
// zero padding runs out — which keeps pagination stable even when old
// terminal records have been evicted in between.
package server

import (
	"net/http"
	"strconv"
	"strings"
)

// defaultJobPageSize and maxJobPageSize bound one listing response.
const (
	defaultJobPageSize = 100
	maxJobPageSize     = 1000
)

// jobListView is the response body of GET /v1/jobs.
type jobListView struct {
	Jobs []jobView `json:"jobs"`
	// NextAfter, when set, is the cursor for the next page: pass it back
	// as ?after to continue. Absent on the final page.
	NextAfter string `json:"next_after,omitempty"`
}

// validListStatus guards the ?status filter.
var validListStatus = map[string]bool{
	string(StatusQueued):   true,
	string(StatusRunning):  true,
	string(StatusWatching): true,
	string(StatusDone):     true,
	string(StatusFailed):   true,
	string(StatusCanceled): true,
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	status := q.Get("status")
	if status != "" && !validListStatus[status] {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument,
			"bad \"status\" filter "+status+" (want queued, running, watching, done, failed, or canceled)")
		return
	}
	limit, err := parseUintParam(r, "limit", defaultJobPageSize)
	if err != nil || limit == 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "bad \"limit\" parameter: want a positive integer")
		return
	}
	if limit > maxJobPageSize {
		limit = maxJobPageSize
	}
	after := q.Get("after")
	afterSeq := uint64(0)
	if after != "" {
		var ok bool
		if afterSeq, ok = jobSeq(after); !ok {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument,
				"bad \"after\" cursor "+after+" (want a job id from next_after)")
			return
		}
	}

	s.mu.Lock()
	ids := make([]string, len(s.idOrder))
	copy(ids, s.idOrder)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if seq, ok := jobSeq(id); ok && seq > afterSeq {
			if j := s.byID[id]; j != nil {
				jobs = append(jobs, j)
			}
		}
	}
	s.mu.Unlock()

	out := jobListView{Jobs: []jobView{}}
	for _, j := range jobs {
		v := j.view()
		if status != "" && v.Status != status {
			continue
		}
		if uint64(len(out.Jobs)) == limit {
			// One more match exists beyond the page: emit the cursor.
			out.NextAfter = out.Jobs[len(out.Jobs)-1].ID
			break
		}
		out.Jobs = append(out.Jobs, v)
	}
	writeJSON(w, http.StatusOK, out)
}

// jobSeq extracts the numeric submission sequence from a "job-<n>" id.
func jobSeq(id string) (uint64, bool) {
	digits, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
