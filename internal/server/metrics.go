// Hand-rolled metrics: counters, gauges, and histograms collected into a
// registry and rendered in the Prometheus text exposition format. The
// serving layer needs operational visibility (queue depth, cache hit rate,
// LP pivots, latency distributions) but the repo is dependency-free by
// policy, so this implements the small subset of the format that scrapers
// actually consume: HELP/TYPE headers, label sets, and cumulative
// histogram buckets.
package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Inc adds one; Dec subtracts one; Add adds n.
func (g *Gauge) Inc()         { g.v.Add(1) }
func (g *Gauge) Dec()         { g.v.Add(-1) }
func (g *Gauge) Add(n int64)  { g.v.Add(n) }
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into cumulative buckets (Prometheus
// semantics: bucket le=x counts every observation ≤ x, and a +Inf bucket
// equals the total count).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf implicit
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// snapshot returns cumulative bucket counts, sum, and count.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return cum, h.sum, h.count
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// LatencyBuckets is the default histogram layout for second-denominated
// durations: 100 µs to ~100 s, exponential.
func LatencyBuckets() []float64 {
	out := make([]float64, 0, 13)
	for v := 1e-4; v < 200; v *= 3.1623 { // half-decade steps
		out = append(out, v)
	}
	return out
}

// metric is one registered time series: a family name plus an optional
// fixed label set.
type metric struct {
	name   string // family name, e.g. "sherlock_jobs_total"
	labels string // rendered label block, e.g. `{status="done"}` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry collects metrics and renders them. All registration methods are
// idempotent per (name, labels) pair: re-registering returns the existing
// metric, so packages can look metrics up by name without plumbing.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric // keyed by name+labels
	help    map[string]string  // family name -> help text
	order   []string           // registration order of keys (stable render)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]*metric),
		help:    make(map[string]string),
	}
}

// labelBlock renders k=v pairs (given as "k", "v", "k2", "v2", ...) into a
// deterministic {k="v",k2="v2"} block.
func labelBlock(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("server: labels must be key/value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) lookup(name, help string, kv []string) *metric {
	key := name + labelBlock(kv)
	if m, ok := r.metrics[key]; ok {
		return m
	}
	m := &metric{name: name, labels: labelBlock(kv)}
	r.metrics[key] = m
	if _, ok := r.help[name]; !ok {
		r.help[name] = help
	}
	r.order = append(r.order, key)
	return m
}

// Counter registers (or retrieves) a counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, help, labels)
	if m.c == nil {
		m.c = &Counter{}
	}
	return m.c
}

// Gauge registers (or retrieves) a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, help, labels)
	if m.g == nil {
		m.g = &Gauge{}
	}
	return m.g
}

// Histogram registers (or retrieves) a histogram with the given ascending
// bucket bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.lookup(name, help, labels)
	if m.h == nil {
		m.h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
	}
	return m.h
}

// SetGaugeFunc-style sampling is intentionally absent: callers update
// gauges at state transitions, which keeps rendering lock-free per metric.

// WriteTo renders the registry in Prometheus text format. Families are
// sorted by name; series within a family keep registration order (which is
// deterministic in this codebase). Implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	byFamily := make(map[string][]*metric)
	var families []string
	for _, key := range r.order {
		m := r.metrics[key]
		if _, ok := byFamily[m.name]; !ok {
			families = append(families, m.name)
		}
		byFamily[m.name] = append(byFamily[m.name], m)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()
	sort.Strings(families)

	var b strings.Builder
	for _, fam := range families {
		ms := byFamily[fam]
		typ := "counter"
		switch {
		case ms[0].g != nil:
			typ = "gauge"
		case ms[0].h != nil:
			typ = "histogram"
		}
		if h := help[fam]; h != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", fam, h)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", fam, typ)
		for _, m := range ms {
			switch {
			case m.c != nil:
				fmt.Fprintf(&b, "%s%s %d\n", m.name, m.labels, m.c.Value())
			case m.g != nil:
				fmt.Fprintf(&b, "%s%s %d\n", m.name, m.labels, m.g.Value())
			case m.h != nil:
				cum, sum, count := m.h.snapshot()
				for i, bound := range m.h.bounds {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", m.name, mergeLabels(m.labels, "le", formatBound(bound)), cum[i])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", m.name, mergeLabels(m.labels, "le", "+Inf"), cum[len(cum)-1])
				fmt.Fprintf(&b, "%s_sum%s %s\n", m.name, m.labels, strconv.FormatFloat(sum, 'g', -1, 64))
				fmt.Fprintf(&b, "%s_count%s %d\n", m.name, m.labels, count)
			}
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// mergeLabels injects one extra label into an already-rendered block.
func mergeLabels(block, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if block == "" {
		return "{" + extra + "}"
	}
	return block[:len(block)-1] + "," + extra + "}"
}

// formatBound renders a bucket bound the way Prometheus clients do.
func formatBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
