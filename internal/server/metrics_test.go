package server

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_gauge", "help")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
	// Re-registration returns the same instance.
	if r.Counter("test_total", "help") != c {
		t.Fatal("re-registering a counter returned a new instance")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_count 5`,
		"# TYPE test_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderLabelsAndTypes(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "Jobs by status.", "status", "done").Add(3)
	r.Counter("jobs_total", "Jobs by status.", "status", "failed").Inc()
	r.Gauge("depth", "Queue depth.").Set(7)
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP jobs_total Jobs by status.",
		"# TYPE jobs_total counter",
		`jobs_total{status="done"} 3`,
		`jobs_total{status="failed"} 1`,
		"# TYPE depth gauge",
		"depth 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Families render sorted: "depth" before "jobs_total".
	if strings.Index(out, "depth") > strings.Index(out, "jobs_total") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func TestMetricsConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h_seconds", "", LatencyBuckets())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				h.Observe(0.001)
				var b strings.Builder
				if j%100 == 0 {
					r.WriteTo(&b)
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
