package server

import (
	"reflect"
	"testing"

	"sherlock/internal/core"
)

// TestModeSpecKeyCompat: every legacy one-field-per-kind spec and its
// unified (mode, target) spelling must normalize to the same spec and
// therefore the same content key — a mode-shaped resubmission of a
// legacy job is a cache hit, never a recompute.
func TestModeSpecKeyCompat(t *testing.T) {
	base := core.DefaultConfig()
	cases := []struct {
		name   string
		legacy JobSpec
		mode   JobSpec
	}{
		{
			name:   "app",
			legacy: JobSpec{App: "App-1"},
			mode:   JobSpec{Mode: "app", Target: "App-1"},
		},
		{
			name:   "app generated",
			legacy: JobSpec{App: "gen:42,profile=go"},
			mode:   JobSpec{Mode: "app", Target: "gen:42,profile=go"},
		},
		{
			name:   "hybrid",
			legacy: JobSpec{App: "App-3", Hybrid: true},
			mode:   JobSpec{Mode: "hybrid", Target: "App-3"},
		},
		{
			name:   "static",
			legacy: JobSpec{StaticApp: "App-2"},
			mode:   JobSpec{Mode: "static", Target: "App-2"},
		},
		{
			name:   "watch",
			legacy: JobSpec{WatchApp: "gen:7"},
			mode:   JobSpec{Mode: "watch", Target: "gen:7"},
		},
		{
			name:   "traces",
			legacy: JobSpec{Traces: []string{"doc-one", "doc-two"}},
			mode:   JobSpec{Mode: "traces", Target: []any{"doc-one", "doc-two"}},
		},
		{
			name:   "trace keys",
			legacy: JobSpec{TraceKeys: []string{"k1", "k2"}},
			mode:   JobSpec{Mode: "trace_keys", Target: []any{"k1", "k2"}},
		},
		{
			name:   "app with overrides",
			legacy: JobSpec{App: "App-1", Rounds: 5, Seed: 9},
			mode:   JobSpec{Mode: "app", Target: "App-1", Rounds: 5, Seed: 9},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			legacy, mode := c.legacy, c.mode
			if err := legacy.normalize(); err != nil {
				t.Fatalf("legacy normalize: %v", err)
			}
			if err := mode.normalize(); err != nil {
				t.Fatalf("mode normalize: %v", err)
			}
			if !reflect.DeepEqual(legacy, mode) {
				t.Fatalf("normalized specs differ:\nlegacy: %+v\nmode:   %+v", legacy, mode)
			}
			lk := JobKey(legacy, legacy.effectiveConfig(base))
			mk := JobKey(mode, mode.effectiveConfig(base))
			if lk != mk {
				t.Fatalf("keys differ: legacy %s vs mode %s", lk, mk)
			}
		})
	}
}

// TestModeSpecErrors covers the new validation paths the unified shape
// introduces.
func TestModeSpecErrors(t *testing.T) {
	for name, spec := range map[string]JobSpec{
		"unknown mode":        {Mode: "campaign", Target: "App-1"},
		"target without mode": {Target: "App-1"},
		"mode without target": {Mode: "app"},
		"empty string target": {Mode: "app", Target: ""},
		"array for app":       {Mode: "app", Target: []any{"App-1"}},
		"string for traces":   {Mode: "traces", Target: "doc"},
		"empty array":         {Mode: "trace_keys", Target: []any{}},
		"non-string element":  {Mode: "trace_keys", Target: []any{"k1", 7.0}},
		"mode plus legacy":    {Mode: "app", Target: "App-1", App: "App-2"},
	} {
		spec := spec
		t.Run(name, func(t *testing.T) {
			if err := spec.normalize(); err == nil {
				t.Fatalf("normalize(%+v) should fail", spec)
			}
		})
	}
}

// TestJobKeyStepDist: the scheduler step distribution joins the key only
// when it departs from the uniform default, so pre-dist keys (and their
// cache entries) stay addressable.
func TestJobKeyStepDist(t *testing.T) {
	spec := JobSpec{App: "App-1"}
	base := core.DefaultConfig()
	ref := JobKey(spec, spec.effectiveConfig(base))

	uniform := base
	uniform.StepDist = "uniform"
	if got := JobKey(spec, spec.effectiveConfig(uniform)); got != ref {
		t.Error("explicit uniform dist should hash like the default")
	}
	zipf := base
	zipf.StepDist = "zipf"
	zk := JobKey(spec, spec.effectiveConfig(zipf))
	if zk == ref {
		t.Error("zipf dist should change the key")
	}
	bursty := base
	bursty.StepDist = "bursty"
	if bk := JobKey(spec, spec.effectiveConfig(bursty)); bk == ref || bk == zk {
		t.Error("bursty dist should get its own key")
	}
}
