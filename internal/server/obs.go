// Observability bridge: connects internal/obs span streams to the
// serving layer. Two consumers share one campaign's event stream via
// obs.Fanout — a per-job MemorySink whose reconstructed span tree backs
// GET /v1/jobs/{id}/spans, and the registry bridge below, which folds
// every span duration into a Prometheus histogram labeled by phase. The
// bridge lives on this side of the dependency edge: internal/obs stays
// zero-dependency, the server owns the metrics mapping.
package server

import (
	"encoding/json"
	"strings"
	"sync"

	"sherlock/internal/obs"
)

// maxSpanBodyBytes caps the per-job stored span tree; a campaign that
// somehow renders larger (pathological MaxSteps settings) serves a "too
// large" error instead of holding megabytes per job record.
const maxSpanBodyBytes = 1 << 20

// spanHistSink is an obs.Sink feeding span durations into the registry as
// sherlock_span_seconds{phase="..."} histograms. The phase is the span
// name up to any ":<key>" suffix, so "round:02" and "round:03" aggregate
// under phase="round" while execute/encode/solve/perturb/sched/extract
// each get their own series. Safe for concurrent use.
type spanHistSink struct {
	reg *Registry

	mu      sync.Mutex
	byPhase map[string]*Histogram
}

func newSpanHistSink(reg *Registry) *spanHistSink {
	return &spanHistSink{reg: reg, byPhase: make(map[string]*Histogram)}
}

// Emit observes span-end durations; other event types are ignored.
func (s *spanHistSink) Emit(e obs.Event) {
	if e.Type != obs.EvSpanEnd {
		return
	}
	phase := e.Name
	if i := strings.IndexByte(phase, ':'); i >= 0 {
		phase = phase[:i]
	}
	s.mu.Lock()
	h := s.byPhase[phase]
	if h == nil {
		h = s.reg.Histogram("sherlock_span_seconds",
			"Wall-clock span durations from the campaign tracer, by phase.",
			LatencyBuckets(), "phase", phase)
		s.byPhase[phase] = h
	}
	s.mu.Unlock()
	h.Observe(e.Dur.Seconds())
}

// spansBody is the GET /v1/jobs/{id}/spans response schema.
type spansBody struct {
	Job      string        `json:"job"`
	Spans    []*obs.Node   `json:"spans"`
	Counters []obs.Counter `json:"counters,omitempty"`
}

// renderSpans serializes a job's collected span events. Span IDs, tree
// shape, attributes and counters are deterministic for a given job spec;
// only the dur_ns fields vary between runs.
func renderSpans(jobID string, sink *obs.MemorySink) ([]byte, error) {
	events := sink.Events()
	if len(events) == 0 {
		return nil, nil
	}
	return json.Marshal(spansBody{
		Job:      jobID,
		Spans:    obs.BuildTree(events),
		Counters: obs.CounterTotals(events),
	})
}
