package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"sherlock/internal/obs"
)

func TestSpanHistSinkBucketsPhases(t *testing.T) {
	reg := NewRegistry()
	sink := newSpanHistSink(reg)
	sink.Emit(obs.Event{Type: obs.EvSpanStart, Name: "round:01"}) // ignored
	sink.Emit(obs.Event{Type: obs.EvSpanEnd, Name: "round:01", Dur: 1e6})
	sink.Emit(obs.Event{Type: obs.EvSpanEnd, Name: "round:02", Dur: 2e6})
	sink.Emit(obs.Event{Type: obs.EvSpanEnd, Name: "execute", Dur: 3e6})
	var buf strings.Builder
	if _, err := reg.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, `sherlock_span_seconds_count{phase="round"} 2`) {
		t.Errorf("round phases did not aggregate:\n%s", text)
	}
	if !strings.Contains(text, `sherlock_span_seconds_count{phase="execute"} 1`) {
		t.Errorf("execute phase missing:\n%s", text)
	}
}

// TestJobSpansEndpoint: a finished app job serves its span tree, the tree
// has the campaign shape with deterministic IDs, and the job view links it.
func TestJobSpansEndpoint(t *testing.T) {
	_, ts := startTestServer(t, fastConfig())

	resp, v := postJob(t, ts.URL, map[string]any{"app": "App-1"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	done := waitDone(t, ts.URL, v.ID)
	if done.Status != string(StatusDone) {
		t.Fatalf("job status = %s (%s)", done.Status, done.Error)
	}
	if done.SpansURL == "" {
		t.Fatal("finished job has no spans_url")
	}

	code, body := getBody(t, ts.URL+done.SpansURL)
	if code != http.StatusOK {
		t.Fatalf("spans: HTTP %d: %s", code, body)
	}
	var sb spansBody
	if err := json.Unmarshal(body, &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Job != v.ID {
		t.Errorf("spans body names job %q, want %q", sb.Job, v.ID)
	}
	if len(sb.Spans) != 1 || sb.Spans[0].ID != "campaign:App-1" {
		t.Fatalf("unexpected roots: %+v", sb.Spans)
	}
	var hasRound bool
	for _, c := range sb.Spans[0].Children {
		if c.ID == "campaign:App-1/round:01" {
			hasRound = true
		}
	}
	if !hasRound {
		t.Fatalf("campaign root missing round:01 child: %+v", sb.Spans[0].Children)
	}
	if len(sb.Counters) == 0 {
		t.Error("spans body has no counters")
	}

	// Campaign spans also feed the Prometheus bridge.
	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), `sherlock_span_seconds_count{phase="campaign"}`) {
		t.Error("metrics missing sherlock_span_seconds campaign phase")
	}
}

// TestCachedJobHasNoSpans: a job answered from the result cache never ran,
// so it has no span tree and its spans endpoint 404s.
func TestCachedJobHasNoSpans(t *testing.T) {
	_, ts := startTestServer(t, fastConfig())

	_, first := postJob(t, ts.URL, map[string]any{"app": "App-1"})
	waitDone(t, ts.URL, first.ID)

	_, second := postJob(t, ts.URL, map[string]any{"app": "App-1"})
	done := waitDone(t, ts.URL, second.ID)
	if !done.Cached {
		t.Fatal("second identical job should be a cache hit")
	}
	if done.SpansURL != "" {
		t.Fatalf("cached job advertises spans_url %q", done.SpansURL)
	}
	code, _ := getBody(t, ts.URL+"/v1/jobs/"+second.ID+"/spans")
	if code != http.StatusNotFound {
		t.Fatalf("cached job spans: HTTP %d, want 404", code)
	}

	code, _ = getBody(t, ts.URL+"/v1/jobs/nonexistent/spans")
	if code != http.StatusNotFound {
		t.Fatalf("unknown job spans: HTTP %d, want 404", code)
	}
}
