// Bounded job queue and worker pool. Admission is non-blocking: when the
// buffered channel is full, Submit fails fast with ErrQueueFull and the
// HTTP layer turns that into 429 + Retry-After, so a traffic spike sheds
// load instead of growing memory without bound. Each worker derives a
// per-job context (server-wide timeout, per-job cancel) and runs the
// executor; graceful drain closes admission, lets the workers finish every
// admitted job, and then returns.
package server

import (
	"context"
	"errors"
	"sync"
	"time"
)

// ErrQueueFull is returned by Submit when the queue has no free slot.
var ErrQueueFull = errors.New("server: job queue is full")

// ErrDraining is returned by Submit once drain has begun.
var ErrDraining = errors.New("server: draining, not accepting jobs")

// executor runs one job to completion and returns its serialized result.
type executor func(ctx context.Context, job *Job) ([]byte, error)

// queue owns the channel, the workers, and the admission state.
type queue struct {
	jobs    chan *Job
	timeout time.Duration // per-job wall-clock bound (0 = none)
	exec    executor

	baseCtx context.Context

	mu       sync.Mutex
	draining bool

	wg sync.WaitGroup

	// Observability hooks, wired by the server. All non-nil after newQueue.
	depth    *Gauge
	inflight *Gauge
	onFinish func(job *Job, body []byte, err error, elapsed time.Duration)
}

// newQueue builds a queue with the given buffer size; workers start
// immediately and run until drain.
func newQueue(baseCtx context.Context, size, workers int, timeout time.Duration, exec executor, reg *Registry, onFinish func(*Job, []byte, error, time.Duration)) *queue {
	q := &queue{
		jobs:     make(chan *Job, size),
		timeout:  timeout,
		exec:     exec,
		baseCtx:  baseCtx,
		depth:    reg.Gauge("sherlock_queue_depth", "Jobs admitted but not yet started."),
		inflight: reg.Gauge("sherlock_jobs_inflight", "Jobs currently executing."),
		onFinish: onFinish,
	}
	if q.onFinish == nil {
		q.onFinish = func(*Job, []byte, error, time.Duration) {}
	}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// Submit admits a job or fails fast. The job must be in StatusQueued.
func (q *queue) Submit(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.draining {
		return ErrDraining
	}
	select {
	case q.jobs <- j:
		q.depth.Inc()
		return nil
	default:
		return ErrQueueFull
	}
}

// Drain stops admission, waits for every admitted job to finish, and
// returns nil — or ctx's error if the deadline passes first, in which case
// the base context should be canceled by the caller to abort stragglers.
func (q *queue) Drain(ctx context.Context) error {
	q.mu.Lock()
	if !q.draining {
		q.draining = true
		close(q.jobs)
	}
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker pops jobs until the channel closes.
func (q *queue) worker() {
	defer q.wg.Done()
	for j := range q.jobs {
		q.depth.Dec()
		q.runOne(j)
	}
}

// runOne executes a single popped job through its full lifecycle.
func (q *queue) runOne(j *Job) {
	ctx := q.baseCtx
	var cancel context.CancelFunc
	if q.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, q.timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	start := time.Now()
	if !j.start(start, cancel) {
		// Canceled while queued: nothing to run, the slot frees instantly.
		q.onFinish(j, nil, context.Canceled, 0)
		return
	}
	q.inflight.Inc()
	body, err := q.exec(ctx, j)
	q.inflight.Dec()
	elapsed := time.Since(start)

	switch {
	case err == nil:
		j.finishLocked(StatusDone, "")
	case errors.Is(err, context.Canceled):
		j.finishLocked(StatusCanceled, "canceled")
	case errors.Is(err, context.DeadlineExceeded):
		j.finishLocked(StatusFailed, "timeout: "+err.Error())
	default:
		j.finishLocked(StatusFailed, err.Error())
	}
	q.onFinish(j, body, err, elapsed)
}
