package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sherlock/internal/core"
)

// testJob builds a queued job with a distinct content key.
func testJob(i int) *Job {
	return newJob(fmt.Sprintf("job-%06d", i), fmt.Sprintf("key-%d", i),
		JobSpec{App: "App-1"}, core.DefaultConfig(), time.Now())
}

// newTestQueue wires a queue with an injected executor and no server.
func newTestQueue(t *testing.T, size, workers int, timeout time.Duration, exec executor) *queue {
	t.Helper()
	q := newQueue(context.Background(), size, workers, timeout, exec, NewRegistry(), nil)
	t.Cleanup(func() { _ = q.Drain(context.Background()) })
	return q
}

func TestQueueRunsJobs(t *testing.T) {
	var ran atomic.Int32
	q := newTestQueue(t, 8, 2, 0, func(ctx context.Context, j *Job) ([]byte, error) {
		ran.Add(1)
		return []byte(j.ID), nil
	})
	jobs := make([]*Job, 5)
	for i := range jobs {
		jobs[i] = testJob(i)
		if err := q.Submit(jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for _, j := range jobs {
		<-j.Done()
		if st := j.Status(); st != StatusDone {
			t.Fatalf("%s: status %s, want done", j.ID, st)
		}
	}
	if ran.Load() != 5 {
		t.Fatalf("executor ran %d times, want 5", ran.Load())
	}
}

func TestQueueBackpressure(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	q := newTestQueue(t, 1, 1, 0, func(ctx context.Context, j *Job) ([]byte, error) {
		started <- struct{}{}
		<-gate
		return nil, nil
	})

	// First job occupies the worker; second fills the single queue slot.
	a, b := testJob(0), testJob(1)
	if err := q.Submit(a); err != nil {
		t.Fatal(err)
	}
	<-started // a is on the worker, slot free again
	if err := q.Submit(b); err != nil {
		t.Fatal(err)
	}
	// Queue is now full: fail fast, don't block, don't grow.
	if err := q.Submit(testJob(2)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	close(gate)
	<-a.Done()
	<-b.Done()
	// Capacity frees up after completion.
	c := testJob(3)
	if err := q.Submit(c); err != nil {
		t.Fatalf("submit after drain of backlog: %v", err)
	}
	<-c.Done()
}

func TestQueueCancelRunningFreesWorker(t *testing.T) {
	started := make(chan *Job, 1)
	q := newTestQueue(t, 4, 1, 0, func(ctx context.Context, j *Job) ([]byte, error) {
		select {
		case started <- j:
		default:
		}
		<-ctx.Done() // a well-behaved campaign: returns when canceled
		return nil, ctx.Err()
	})
	victim := testJob(0)
	if err := q.Submit(victim); err != nil {
		t.Fatal(err)
	}
	<-started
	victim.Cancel()
	<-victim.Done()
	if st := victim.Status(); st != StatusCanceled {
		t.Fatalf("status %s, want canceled", st)
	}

	// The worker must be free for the next job. The executor blocks on ctx,
	// so cancel this one too once it starts — but first verify it STARTS,
	// which it can only do on a freed worker.
	next := newJob("job-next", "key-next", JobSpec{App: "App-1"}, core.DefaultConfig(), time.Now())
	if err := q.Submit(next); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never freed after cancellation")
	}
	next.Cancel()
	<-next.Done()
}

func TestQueueCancelQueuedNeverRuns(t *testing.T) {
	gate := make(chan struct{})
	var ran atomic.Int32
	q := newTestQueue(t, 2, 1, 0, func(ctx context.Context, j *Job) ([]byte, error) {
		ran.Add(1)
		<-gate
		return nil, nil
	})
	blocker := testJob(0)
	queued := testJob(1)
	if err := q.Submit(blocker); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(queued); err != nil {
		t.Fatal(err)
	}
	queued.Cancel()
	<-queued.Done()
	if st := queued.Status(); st != StatusCanceled {
		t.Fatalf("status %s, want canceled", st)
	}
	close(gate)
	<-blocker.Done()
	_ = q.Drain(context.Background())
	if ran.Load() != 1 {
		t.Fatalf("executor ran %d times, want 1 (canceled job must not run)", ran.Load())
	}
}

func TestQueueJobTimeout(t *testing.T) {
	q := newTestQueue(t, 2, 1, 20*time.Millisecond, func(ctx context.Context, j *Job) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	j := testJob(0)
	if err := q.Submit(j); err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if st := j.Status(); st != StatusFailed {
		t.Fatalf("status %s, want failed (timeout)", st)
	}
}

// TestQueueSubmitStorm hammers a small queue from many goroutines under
// -race: every submission either lands or fails fast with ErrQueueFull,
// admitted jobs all finish, and accounting stays consistent.
func TestQueueSubmitStorm(t *testing.T) {
	q := newTestQueue(t, 4, 4, 0, func(ctx context.Context, j *Job) ([]byte, error) {
		return []byte(j.ID), nil
	})
	const goroutines = 16
	const perG = 200
	var admitted, rejected atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var all []*Job
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				j := testJob(g*perG + i)
				switch err := q.Submit(j); {
				case err == nil:
					admitted.Add(1)
					mu.Lock()
					all = append(all, j)
					mu.Unlock()
				case errors.Is(err, ErrQueueFull):
					rejected.Add(1)
				default:
					t.Errorf("unexpected submit error: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, j := range all {
		<-j.Done()
		if st := j.Status(); st != StatusDone {
			t.Fatalf("%s: status %s, want done", j.ID, st)
		}
	}
	if got := admitted.Load() + rejected.Load(); got != goroutines*perG {
		t.Fatalf("admitted+rejected = %d, want %d", got, goroutines*perG)
	}
	if admitted.Load() == 0 {
		t.Fatal("storm admitted nothing; queue wedged")
	}
}

func TestQueueDrainWaitsForAdmitted(t *testing.T) {
	gate := make(chan struct{})
	q := newQueue(context.Background(), 4, 1, 0, func(ctx context.Context, j *Job) ([]byte, error) {
		<-gate
		return nil, nil
	}, NewRegistry(), nil)
	a, b := testJob(0), testJob(1)
	if err := q.Submit(a); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(b); err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- q.Drain(context.Background()) }()

	// Drain refuses new work immediately...
	deadline := time.After(5 * time.Second)
	for {
		if err := q.Submit(testJob(2)); errors.Is(err, ErrDraining) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("Submit never started returning ErrDraining")
		case <-time.After(time.Millisecond):
		}
	}
	// ...but waits for the admitted jobs.
	select {
	case <-drained:
		t.Fatal("Drain returned while jobs were still gated")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if a.Status() != StatusDone || b.Status() != StatusDone {
		t.Fatalf("admitted jobs not finished: %s %s", a.Status(), b.Status())
	}
}

func TestQueueDrainTimeout(t *testing.T) {
	base, cancel := context.WithCancel(context.Background())
	defer cancel()
	q := newQueue(base, 2, 1, 0, func(ctx context.Context, j *Job) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, NewRegistry(), nil)
	j := testJob(0)
	if err := q.Submit(j); err != nil {
		t.Fatal(err)
	}
	ctx, cancelDrain := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancelDrain()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	// Force-cancel stragglers, as Server.Shutdown does.
	cancel()
	if err := q.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}
