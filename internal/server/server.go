// Package server is sherlockd's serving layer: an HTTP JSON API over the
// inference engine, backed by a bounded job queue with a worker pool
// (queue.go), a content-addressed LRU result cache (cache.go, hash.go),
// and a dependency-free Prometheus-format metrics registry (metrics.go).
//
// Endpoints (DESIGN.md carries the full reference, including per-endpoint
// error codes):
//
//	POST   /v1/jobs          submit a job (application name, raw traces,
//	                         corpus trace keys, or a watch_app
//	                         subscription); 202 queued/watching, 200 on
//	                         cache hit, 429 + Retry-After when the queue
//	                         or subscription cap is full, 503 draining
//	GET    /v1/jobs          list job records (?status= filter, ?limit=
//	                         and ?after= cursor pagination)
//	GET    /v1/jobs/{id}     job status
//	GET    /v1/jobs/{id}/watch
//	                         long-poll until the job publishes a version
//	                         > ?after or terminates (?timeout seconds,
//	                         default 30); SSE state events with
//	                         Accept: text/event-stream
//	GET    /v1/jobs/{id}/spans
//	                         the job's campaign span tree (deterministic
//	                         IDs/attrs; wall durations vary per run)
//	DELETE /v1/jobs/{id}     cancel (queued jobs never start; running jobs
//	                         abort between test executions; watch jobs
//	                         stop their subscription)
//	GET    /v1/results/{key} the serialized result at a content address
//	GET    /v1/apps/{id}/static
//	                         the app's run-free static inference report,
//	                         content-addressed by the program's structural
//	                         hash (computed on demand, cached locally and
//	                         cluster-wide like any result)
//	POST   /v1/traces        upload one trace (binary or JSON-lines, auto-
//	                         detected) into the content-addressed corpus;
//	                         201 with the entry, 200 on dedup — and wake
//	                         every subscription watching the trace's app
//	GET    /v1/traces        list the corpus index (deterministic order)
//	GET    /metrics          Prometheus text exposition
//	GET    /healthz          liveness + queue stats (503 while draining)
//
// Every error response uses one envelope: {"error":{"code","message"}},
// with machine-readable codes (errors.go) and Retry-After on all 429/503.
//
// The cache is keyed by content, not by job: identical workload + config
// hashes to the same key in every process, so a resubmission is answered
// with the byte-identical body of the first run without re-running
// inference. Parallelism is deliberately absent from the key — results
// are bit-identical for every worker-pool size.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/obs"
	"sherlock/internal/store"
	"sherlock/internal/trace"
)

// maxBodyBytes bounds a submission body (raw traces can be large, but not
// unboundedly so).
const maxBodyBytes = 64 << 20

// maxJobRecords bounds the in-memory job-status map; the oldest terminal
// records are evicted past this point (the result itself lives on in the
// content-addressed cache).
const maxJobRecords = 16384

// Server wires queue, cache, corpus, and metrics under an http.Handler.
type Server struct {
	cfg     Config
	q       *queue
	cache   *ResultCache
	corpus  *store.Corpus
	reg     *Registry
	mux     *http.ServeMux
	cluster ClusterHook // nil = single-node (cluster.go)

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// drainCh closes the moment drain begins, before the queue empties,
	// so long-poll and SSE watch handlers return promptly instead of
	// holding http.Server.Shutdown hostage for their full timeout.
	drainCh   chan struct{}
	drainOnce sync.Once

	// ephemeralCorpus is the temp dir backing the corpus when
	// Config.CorpusDir was empty; removed on Close/Shutdown.
	ephemeralCorpus string

	// exec runs one job; defaults to runJob. A field so tests can inject
	// controllable executors.
	exec executor

	draining atomic.Bool
	nextID   atomic.Uint64

	mu      sync.Mutex
	byID    map[string]*Job
	idOrder []string // submission order, for record eviction

	// Watch subscriptions (subscription.go).
	subMu sync.Mutex
	subs  map[string]*subscription // by job id
	subWG sync.WaitGroup

	// Metrics.
	submitted    *Counter
	rejected     *Counter
	jobsDone     *Counter
	jobsFailed   *Counter
	jobsCanceled *Counter
	jobsComputed *Counter
	cacheHits    *Counter
	cacheMisses  *Counter
	cacheEntries *Gauge
	cacheEvicted *Gauge
	lpPivots     *Counter
	jobSeconds   *Histogram
	runSeconds   *Histogram
	solveSeconds *Histogram
	spanSink     *spanHistSink

	tracesStored *Counter
	tracesDedup  *Counter
	corpusTraces *Gauge
	corpusBytes  *Gauge

	watchActive  *Gauge
	watchUpdates *Counter
	watchResumes *Counter

	staticReports *Counter
}

// New builds a Server and starts its worker pool. Callers own shutdown:
// either Shutdown (graceful drain) or Close (abort).
func New(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("server: invalid config: %w", err)
	}
	corpusDir, ephemeral := cfg.CorpusDir, ""
	if corpusDir == "" {
		dir, err := os.MkdirTemp("", "sherlockd-corpus-")
		if err != nil {
			return nil, fmt.Errorf("server: ephemeral corpus: %w", err)
		}
		corpusDir, ephemeral = dir, dir
	}
	corpus, err := store.Open(corpusDir)
	if err != nil {
		if ephemeral != "" {
			os.RemoveAll(ephemeral)
		}
		return nil, fmt.Errorf("server: open corpus: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	reg := NewRegistry()
	s := &Server{
		cfg:             cfg,
		cache:           NewResultCache(cfg.CacheCapacity),
		corpus:          corpus,
		ephemeralCorpus: ephemeral,
		reg:             reg,
		baseCtx:         ctx,
		baseCancel:      cancel,
		drainCh:         make(chan struct{}),
		byID:            make(map[string]*Job),
		subs:            make(map[string]*subscription),

		submitted:    reg.Counter("sherlock_jobs_submitted_total", "Jobs accepted for execution (cache misses)."),
		rejected:     reg.Counter("sherlock_jobs_rejected_total", "Submissions rejected with 429 because the queue was full."),
		jobsDone:     reg.Counter("sherlock_jobs_total", "Jobs by terminal status.", "status", "done"),
		jobsFailed:   reg.Counter("sherlock_jobs_total", "Jobs by terminal status.", "status", "failed"),
		jobsCanceled: reg.Counter("sherlock_jobs_total", "Jobs by terminal status.", "status", "canceled"),
		jobsComputed: reg.Counter("sherlock_jobs_computed_total", "Jobs whose campaign/solve actually ran on this node (not cached, not proxied)."),
		cacheHits:    reg.Counter("sherlock_cache_hits_total", "Submissions answered from the result cache."),
		cacheMisses:  reg.Counter("sherlock_cache_misses_total", "Submissions that required a fresh campaign."),
		cacheEntries: reg.Gauge("sherlock_cache_entries", "Entries in the result cache."),
		cacheEvicted: reg.Gauge("sherlock_cache_evictions_total", "Entries evicted by the LRU policy."),
		lpPivots:     reg.Counter("sherlock_lp_pivots_total", "Simplex pivots across all campaign rounds."),
		jobSeconds:   reg.Histogram("sherlock_job_duration_seconds", "End-to-end job execution latency.", LatencyBuckets()),
		runSeconds:   reg.Histogram("sherlock_run_wall_seconds", "Per-job summed scheduler wall time (execution phase).", LatencyBuckets()),
		solveSeconds: reg.Histogram("sherlock_solve_wall_seconds", "Per-job summed LP solve wall time.", LatencyBuckets()),

		tracesStored: reg.Counter("sherlock_corpus_ingested_total", "Uploads that stored a new corpus blob."),
		tracesDedup:  reg.Counter("sherlock_corpus_dedup_total", "Uploads answered by an existing corpus blob."),
		corpusTraces: reg.Gauge("sherlock_corpus_traces", "Unique traces in the corpus."),
		corpusBytes:  reg.Gauge("sherlock_corpus_bytes", "Total stored corpus blob bytes."),

		watchActive:  reg.Gauge("sherlock_watch_subscriptions", "Active watch subscriptions."),
		watchUpdates: reg.Counter("sherlock_watch_updates_total", "Watch result versions published."),
		watchResumes: reg.Counter("sherlock_watch_resumes_total", "Watch subscriptions resumed from a persisted checkpoint."),

		staticReports: reg.Counter("sherlock_static_reports_total", "Static inference reports computed on this node (not cached, not proxied)."),
	}
	s.spanSink = newSpanHistSink(reg)
	// Corpus codec spans (ingest/decode timings) feed the same phase
	// histograms as campaign spans.
	corpus.SetTracer(obs.New(s.spanSink))
	// Every durable ingest wakes the subscriptions bound to its app.
	corpus.OnIngest(s.notifySubscriptions)
	s.exec = s.runJob
	s.q = newQueue(ctx, cfg.QueueSize, cfg.Workers, cfg.JobTimeout,
		func(ctx context.Context, j *Job) ([]byte, error) { return s.exec(ctx, j) },
		reg, s.onFinish)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/spans", s.handleJobSpans)
	mux.HandleFunc("GET /v1/jobs/{id}/watch", s.handleJobWatch)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/results/{key}", s.handleResult)
	mux.HandleFunc("GET /v1/apps/{id}/static", s.handleStatic)
	mux.HandleFunc("POST /v1/traces", s.handleTraceUpload)
	mux.HandleFunc("GET /v1/traces", s.handleTraceList)
	mux.HandleFunc("GET /v1/corpus/verify", s.handleCorpusVerify)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	return s, nil
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the metrics registry (for embedding extra metrics).
func (s *Server) Registry() *Registry { return s.reg }

// Cache exposes the result cache (read-side introspection and tests).
func (s *Server) Cache() *ResultCache { return s.cache }

// Corpus exposes the trace corpus (introspection and tests).
func (s *Server) Corpus() *store.Corpus { return s.corpus }

// BeginDrain flips the server into draining mode without waiting:
// submissions start getting 503 and every long-poll/SSE watch handler
// returns its current view, so an enclosing http.Server.Shutdown
// completes on request timescales. Shutdown and Close call it
// implicitly; cmd/sherlockd calls it first so the HTTP listener can
// drain before the job queue does.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Draining returns a channel closed once drain has begun.
func (s *Server) Draining() <-chan struct{} { return s.drainCh }

// Shutdown drains gracefully: submissions are refused with 503, admitted
// jobs run to completion, then workers exit. If ctx expires first, the
// in-flight jobs are force-canceled and Shutdown returns ctx's error after
// the workers wind down.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	err := s.q.Drain(ctx)
	if err != nil {
		// Deadline passed: abort stragglers and wait for the pool.
		s.baseCancel()
		_ = s.q.Drain(context.Background())
		s.subWG.Wait()
		s.removeEphemeralCorpus()
		return err
	}
	s.baseCancel()
	s.subWG.Wait()
	s.removeEphemeralCorpus()
	return nil
}

// Close aborts everything immediately.
func (s *Server) Close() {
	s.BeginDrain()
	s.baseCancel()
	_ = s.q.Drain(context.Background())
	s.subWG.Wait()
	s.removeEphemeralCorpus()
}

// removeEphemeralCorpus deletes the temp-dir corpus of a server that was
// started without a configured CorpusDir. Runs after the worker pool has
// wound down, so no job is still streaming from it.
func (s *Server) removeEphemeralCorpus() {
	if s.ephemeralCorpus != "" {
		_ = os.RemoveAll(s.ephemeralCorpus)
	}
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "draining")
		return
	}
	var spec JobSpec
	if !decodeRequest(w, r, &spec) {
		return
	}
	if err := spec.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	if err := spec.validate(); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	for _, name := range []string{spec.App, spec.StaticApp} {
		if name == "" {
			continue
		}
		if _, err := apps.ByName(name); err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
			return
		}
	}
	if spec.WatchApp != "" && !watchAppPattern.MatchString(spec.WatchApp) {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument,
			fmt.Sprintf("bad watch_app %q: want 1-100 characters of [A-Za-z0-9.,:=_-]", spec.WatchApp))
		return
	}
	for i, doc := range spec.Traces {
		if _, err := trace.Read(strings.NewReader(doc)); err != nil {
			writeError(w, http.StatusBadRequest, CodeInvalidArgument, fmt.Sprintf("trace %d: %v", i, err))
			return
		}
	}
	var missingKeys []string
	for _, key := range spec.TraceKeys {
		if _, ok := s.corpus.Entry(key); !ok {
			missingKeys = append(missingKeys, key)
		}
	}
	if len(missingKeys) > 0 && s.cluster != nil {
		// Clients may upload to one node and submit to another: pull the
		// blobs this node is missing from their cluster owners before
		// rejecting the submission.
		if err := s.cluster.EnsureTraces(r.Context(), missingKeys); err == nil {
			missingKeys = missingKeys[:0]
			for _, key := range spec.TraceKeys {
				if _, ok := s.corpus.Entry(key); !ok {
					missingKeys = append(missingKeys, key)
				}
			}
		}
	}
	if len(missingKeys) > 0 {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument,
			fmt.Sprintf("trace key %s is not in the corpus (upload it via POST /v1/traces)", missingKeys[0]))
		return
	}
	cfg := spec.effectiveConfig(s.cfg.Inference)
	if err := cfg.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "effective config: "+err.Error())
		return
	}

	id := fmt.Sprintf("job-%06d", s.nextID.Add(1))

	if spec.WatchApp != "" {
		// Subscription: the job binds to the corpus prefix and stays in
		// the watching state, publishing a new version per matching ingest.
		j := newWatchJob(id, spec, cfg, time.Now())
		sub := newSubscription(s, j, cfg)
		if !s.addSubscription(sub) {
			writeError(w, http.StatusTooManyRequests, CodeWatchLimit,
				fmt.Sprintf("at the %d-subscription limit; cancel one or retry later", maxSubscriptions))
			return
		}
		s.remember(j)
		go sub.run()
		writeJSON(w, http.StatusAccepted, j.view())
		return
	}

	key := JobKey(spec, cfg)
	if spec.StaticApp != "" {
		// Static jobs share content addresses with GET /v1/apps/{id}/static:
		// the report is keyed by the program's structural hash and the
		// static-relevant config, so either surface answers from the entry
		// the other computed — on this node or anywhere in the cluster.
		p, _ := apps.ByName(spec.StaticApp) // validated above
		skey, err := StaticReportKey(p, cfg)
		if err != nil {
			writeError(w, http.StatusInternalServerError, CodeInternal, "static key: "+err.Error())
			return
		}
		key = skey
	}
	j := newJob(id, key, spec, cfg, time.Now())
	j.noProxy = r.Header.Get(NoProxyHeader) != ""

	if _, ok := s.cache.Get(key); ok {
		// Content hit: the work already ran (this process) — answer
		// instantly with a pre-completed job record pointing at the result.
		s.cacheHits.Inc()
		j.mu.Lock()
		j.cached = true
		j.finish(StatusDone, "")
		j.mu.Unlock()
		s.remember(j)
		writeJSON(w, http.StatusOK, j.view())
		return
	}
	s.cacheMisses.Inc()

	if s.cluster != nil && !j.noProxy {
		// Cluster-wide cache: the key's owners may already hold the
		// result another node computed. Deliberately NOT copied into the
		// local cache — each node's LRU holds only the keys it computed
		// (its ring partition), so aggregate cluster capacity is a true
		// N-fold multiple instead of N copies of the same hot set; the
		// result endpoint re-fetches from the owner on demand.
		if _, ok := s.cluster.FastLookup(r.Context(), key); ok {
			j.mu.Lock()
			j.cached = true
			j.finish(StatusDone, "")
			j.mu.Unlock()
			s.remember(j)
			writeJSON(w, http.StatusOK, j.view())
			return
		}
		// Not cached anywhere: route the job to the key's owner node so
		// the cluster computes each key once and caches it where lookups
		// go (the proxied body stays out of the local LRU for the same
		// partitioning reason as above). Proxying happens here, on the
		// handler goroutine, never on a worker — workers only do local
		// compute, so two nodes can proxy to each other under full load
		// without deadlocking their pools. A miss (we own the key, or
		// every owner is unreachable) falls through to the local queue:
		// single-node degradation.
		if _, ok := s.cluster.ProxyJob(r.Context(), key, spec); ok {
			j.mu.Lock()
			j.proxied = true
			j.finish(StatusDone, "")
			j.mu.Unlock()
			s.remember(j)
			writeJSON(w, http.StatusOK, j.view())
			return
		}
	}

	if err := s.q.Submit(j); err != nil {
		switch err {
		case ErrQueueFull:
			s.rejected.Inc()
			writeError(w, http.StatusTooManyRequests, CodeQueueFull, err.Error())
		default: // ErrDraining
			writeError(w, http.StatusServiceUnavailable, CodeDraining, err.Error())
		}
		return
	}
	s.submitted.Inc()
	s.remember(j)
	writeJSON(w, http.StatusAccepted, j.view())
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job id")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleJobSpans serves the job's reconstructed span tree. Cache-hit jobs
// never executed, so they have no spans — the result is content-addressed
// but the trace belongs to the run that produced it.
func (s *Server) handleJobSpans(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job id")
		return
	}
	body := j.SpansJSON()
	if body == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "no spans for this job (not finished yet, answered from the result cache, or span tree too large)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job id")
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	body, ok := s.cache.Lookup(r.PathValue("key"))
	if !ok && s.cluster != nil {
		// Results are content-addressed, so any node can serve any key:
		// fall back to the peers that own it.
		body, ok = s.cluster.FastLookup(r.Context(), r.PathValue("key"))
	}
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound, "no result at this key (expired or never computed)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// uploadView is the response of POST /v1/traces.
type uploadView struct {
	store.Entry
	Dedup bool `json:"dedup"`
}

// handleTraceUpload ingests one trace into the content-addressed corpus.
// The body is either the binary format or JSON lines (sniffed from the
// first bytes); either way the stored blob is the canonical binary
// encoding, so the same trace uploaded in both serializations dedups to
// one content address.
func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, CodeDraining, "draining")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "read body: "+err.Error())
		return
	}
	tr, err := store.DecodeBytes(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "bad trace: "+err.Error())
		return
	}
	entry, added, err := s.corpus.Ingest(tr)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "ingest: "+err.Error())
		return
	}
	code := http.StatusOK
	if added {
		code = http.StatusCreated
		s.tracesStored.Inc()
		if s.cluster != nil {
			// Replicate the new blob to its ring owner and replicas so a
			// job routed anywhere finds it (anti-entropy backstops this).
			s.cluster.ReplicateBlob(entry.Key)
		}
	} else {
		s.tracesDedup.Inc()
	}
	writeJSON(w, code, uploadView{Entry: entry, Dedup: !added})
}

// handleCorpusVerify runs a full corpus integrity scan — every blob is
// re-hashed and re-decoded — and serves the machine-readable report.
// Expensive by design; operators and cluster repair call it, not probes.
func (s *Server) handleCorpusVerify(w http.ResponseWriter, r *http.Request) {
	rep, err := s.corpus.Verify()
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "verify: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Clean bool `json:"clean"`
		*store.VerifyReport
	}{rep.Clean(), rep})
}

// handleTraceList serves the corpus index in its deterministic
// (key-sorted) order.
func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	entries := s.corpus.Entries()
	writeJSON(w, http.StatusOK, struct {
		Count  int           `json:"count"`
		Traces []store.Entry `json:"traces"`
	}{Count: len(entries), Traces: entries})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	_, _, evictions, size := s.cache.Stats()
	s.cacheEntries.Set(int64(size))
	s.cacheEvicted.Set(int64(evictions))
	traces, blobBytes, _ := s.corpus.Stats()
	s.corpusTraces.Set(int64(traces))
	s.corpusBytes.Set(blobBytes)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = s.reg.WriteTo(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		Status     string `json:"status"`
		QueueDepth int64  `json:"queue_depth"`
		InFlight   int64  `json:"jobs_inflight"`
	}
	h := health{Status: "ok", QueueDepth: s.q.depth.Value(), InFlight: s.q.inflight.Value()}
	code := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// ---------------------------------------------------------------------------
// Job bookkeeping
// ---------------------------------------------------------------------------

func (s *Server) remember(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[j.ID] = j
	s.idOrder = append(s.idOrder, j.ID)
	// Evict the oldest terminal records past the cap; stop at the first
	// live one (records are roughly age-ordered, so this stays O(1)
	// amortized).
	for len(s.idOrder) > maxJobRecords {
		oldest := s.byID[s.idOrder[0]]
		if oldest != nil {
			switch oldest.Status() {
			case StatusDone, StatusFailed, StatusCanceled:
			default:
				return // oldest record still live; try again next insert
			}
			delete(s.byID, oldest.ID)
		}
		s.idOrder = s.idOrder[1:]
	}
}

func (s *Server) lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// onFinish is the queue's completion hook: cache fills, terminal-status
// counters, and the latency histogram.
func (s *Server) onFinish(j *Job, body []byte, err error, elapsed time.Duration) {
	switch j.Status() {
	case StatusDone:
		s.jobsDone.Inc()
		if body != nil {
			s.cache.Put(j.Key, body)
		}
	case StatusFailed:
		s.jobsFailed.Inc()
	case StatusCanceled:
		s.jobsCanceled.Inc()
	}
	if elapsed > 0 {
		s.jobSeconds.Observe(elapsed.Seconds())
	}
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

// resultEnvelope is the cached/served result schema. Marshaling is
// deterministic (Go sorts map keys), so a cache hit is byte-identical to
// the cold run that populated it. Static reports carry the program's
// structural hash; campaign results leave it empty.
type resultEnvelope struct {
	Key         string       `json:"key"`
	App         string       `json:"app"`
	ProgramHash string       `json:"program_hash,omitempty"`
	Result      *core.Result `json:"result"`
}

// marshalResult renders the served result body for a content key. Shared
// by the queue executor and the watch-subscription publisher so both fill
// the cache with the same schema.
func marshalResult(key string, res *core.Result) ([]byte, error) {
	body, err := json.Marshal(resultEnvelope{Key: key, App: res.App, Result: res})
	if err != nil {
		return nil, fmt.Errorf("marshal result: %w", err)
	}
	return body, nil
}

// runJob executes one job: a full campaign for application jobs, the
// offline solve for trace jobs. Per-phase wall time and LP pivots stream
// into the metrics as the campaign progresses; the span stream tees into
// the per-job memory sink (the spans endpoint) and the phase histograms.
//
// Cluster routing happens at submit time, not here: a worker only ever
// computes locally (proxying from a worker could deadlock two full
// pools against each other). The one cluster concern left on the worker
// is corpus completeness — a proxied trace_keys submission may name
// blobs the submit-side validation pulled but a crashed peer has since
// lost, so re-ensure before streaming the solve.
func (s *Server) runJob(ctx context.Context, j *Job) ([]byte, error) {
	if s.cluster != nil && len(j.Spec.TraceKeys) > 0 {
		if err := s.cluster.EnsureTraces(ctx, j.Spec.TraceKeys); err != nil {
			return nil, fmt.Errorf("cluster: ensure traces: %w", err)
		}
	}
	cfg := j.Cfg
	mem := obs.NewMemorySink()
	cfg.Observer = core.SinkObserver(obs.Fanout(mem, s.spanSink))
	cfg.OnSnapshot = func(snap core.RoundSnapshot) {
		s.lpPivots.Add(snap.LPIters)
	}
	defer func() {
		if body, rerr := renderSpans(j.ID, mem); rerr == nil {
			j.setSpans(body)
		}
	}()

	var res *core.Result
	var err error
	switch {
	case j.Spec.StaticApp != "":
		// Run-free: the job's key is already the static report's content
		// address, so the queue's cache fill lands it exactly where the
		// GET endpoint and peers look for it.
		body, serr := s.computeStatic(ctx, j.Spec.StaticApp, j.Key, cfg)
		if serr != nil {
			return nil, serr
		}
		return body, nil
	case j.Spec.App != "":
		prog, aerr := apps.ByName(j.Spec.App)
		if aerr != nil {
			return nil, aerr
		}
		if j.Spec.Hybrid {
			// Hybrid campaign: derive the app's static priors (themselves
			// deterministic) and seed round 0. The final result is
			// bit-identical to the non-hybrid campaign by the engine's
			// dual-solve contract; the separate content key exists because
			// the round snapshots differ.
			pri, perr := core.StaticPriors(ctx, prog, cfg)
			if perr != nil {
				return nil, fmt.Errorf("static priors: %w", perr)
			}
			cfg.StaticPriors = pri
		}
		res, err = core.Infer(ctx, prog, cfg)
	case len(j.Spec.TraceKeys) > 0:
		// Stream straight off the blob store: one decoded trace in memory
		// at a time, identical results to submitting the same traces
		// inline (the offline solve is source-agnostic).
		res, err = core.InferFromSource(ctx, s.corpus.Source(j.Spec.TraceKeys...), cfg)
	default:
		traces := make([]*trace.Trace, 0, len(j.Spec.Traces))
		for i, doc := range j.Spec.Traces {
			tr, terr := trace.Read(strings.NewReader(doc))
			if terr != nil {
				return nil, fmt.Errorf("trace %d: %w", i, terr)
			}
			traces = append(traces, tr)
		}
		res, err = core.InferFromTraces(ctx, traces, cfg)
	}
	if err != nil {
		return nil, err
	}
	s.jobsComputed.Inc()
	s.runSeconds.Observe(res.Overhead.RunWall.Seconds())
	s.solveSeconds.Observe(res.Overhead.SolveWall.Seconds())

	return marshalResult(j.Key, res)
}

// computeStatic runs the run-free analysis + solve for one app and
// marshals the report envelope under the given content key. Shared by the
// static job executor and handleStatic; neither caller holds locks.
func (s *Server) computeStatic(ctx context.Context, appName, key string, cfg core.Config) ([]byte, error) {
	p, err := apps.ByName(appName)
	if err != nil {
		return nil, err
	}
	res, an, err := core.InferStatic(ctx, p, cfg)
	if err != nil {
		return nil, err
	}
	s.staticReports.Inc()
	s.solveSeconds.Observe(res.Overhead.SolveWall.Seconds())
	body, err := json.Marshal(resultEnvelope{Key: key, App: res.App, ProgramHash: an.ProgramHash, Result: res})
	if err != nil {
		return nil, fmt.Errorf("marshal static result: %w", err)
	}
	return body, nil
}

// handleStatic serves GET /v1/apps/{id}/static: the app's run-free
// inference report under the server's base config. The report is
// content-addressed (StaticReportKey), so the lookup order is the same as
// a job submission's — local cache, then the cluster peers that own the
// key, then compute-and-fill. Computing inline on the handler goroutine is
// deliberate: a static solve is milliseconds of CPU (no test executions),
// far below the cost of a queue round-trip.
func (s *Server) handleStatic(w http.ResponseWriter, r *http.Request) {
	appName := r.PathValue("id")
	p, err := apps.ByName(appName)
	if err != nil {
		writeError(w, http.StatusNotFound, CodeNotFound, err.Error())
		return
	}
	cfg := JobSpec{}.effectiveConfig(s.cfg.Inference)
	key, err := StaticReportKey(p, cfg)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "static key: "+err.Error())
		return
	}
	if body, ok := s.cache.Lookup(key); ok {
		s.cacheHits.Inc()
		serveResultBody(w, body)
		return
	}
	s.cacheMisses.Inc()
	if s.cluster != nil && r.Header.Get(NoProxyHeader) == "" {
		if body, ok := s.cluster.FastLookup(r.Context(), key); ok {
			serveResultBody(w, body)
			return
		}
	}
	body, err := s.computeStatic(r.Context(), appName, key, cfg)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, "static inference: "+err.Error())
		return
	}
	s.cache.Put(key, body)
	serveResultBody(w, body)
}

func serveResultBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// BaseConfigText renders the server's base inference config in the
// canonical key encoding. Published on /v1/cluster/info so clients can
// compute job content keys — and route submissions to their ring owners —
// without re-implementing config resolution.
func (s *Server) BaseConfigText() string {
	return ConfigText(JobSpec{}.effectiveConfig(s.cfg.Inference))
}
