package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sherlock/internal/apps"
	"sherlock/internal/sched"
)

// fastConfig is a server config sized for tests: small pool, 1-round
// campaigns so an App-1 job finishes in well under a second.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Workers = 2
	cfg.QueueSize = 8
	cfg.CacheCapacity = 16
	cfg.JobTimeout = time.Minute
	cfg.Inference.Rounds = 1
	return cfg
}

func startTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.CorpusDir == "" {
		cfg.CorpusDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJob(t *testing.T, base string, spec any) (*http.Response, jobView) {
	t.Helper()
	buf, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	body, _ := io.ReadAll(resp.Body)
	_ = json.Unmarshal(body, &v)
	return resp, v
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func waitDone(t *testing.T, base, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := getBody(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("job status %s: HTTP %d: %s", id, code, body)
		}
		var v jobView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		switch v.Status {
		case "done":
			return v
		case "failed", "canceled":
			t.Fatalf("job %s ended %s: %s", id, v.Status, v.Error)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return jobView{}
}

// TestServerColdThenCacheHit is the acceptance flow: a cold submission
// runs inference; resubmitting the identical spec is answered from the
// cache — same content key, byte-identical result body, no execution —
// and /metrics reflects the hit.
func TestServerColdThenCacheHit(t *testing.T) {
	s, ts := startTestServer(t, fastConfig())
	spec := map[string]any{"app": "App-1"}

	resp, v := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cold submit: HTTP %d, want 202", resp.StatusCode)
	}
	if v.Cached {
		t.Fatal("cold submit reported cached")
	}
	final := waitDone(t, ts.URL, v.ID)
	code, coldBody := getBody(t, ts.URL+"/v1/results/"+final.Key)
	if code != http.StatusOK {
		t.Fatalf("cold result: HTTP %d", code)
	}
	if !strings.Contains(string(coldBody), `"Inferred"`) {
		t.Fatalf("cold result body lacks inference payload: %.200s", coldBody)
	}

	// Resubmission: instant 200, cached flag, same key.
	resp2, v2 := postJob(t, ts.URL, spec)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: HTTP %d, want 200", resp2.StatusCode)
	}
	if !v2.Cached || v2.Status != "done" {
		t.Fatalf("resubmit: cached=%v status=%s, want cached done", v2.Cached, v2.Status)
	}
	if v2.Key != final.Key {
		t.Fatalf("resubmit key %s != cold key %s", v2.Key, final.Key)
	}
	_, hitBody := getBody(t, ts.URL+"/v1/results/"+v2.Key)
	if !bytes.Equal(coldBody, hitBody) {
		t.Fatal("cache hit body is not byte-identical to the cold run")
	}
	// Exactly one execution happened.
	if got := s.jobsDone.Value(); got != 1 {
		t.Fatalf("jobs done = %d, want 1 (hit must not re-run)", got)
	}

	// /metrics reflects the hit (and the pivots the campaign spent).
	code, metrics := getBody(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	for _, want := range []string{
		"sherlock_cache_hits_total 1",
		"sherlock_cache_misses_total 1",
		`sherlock_jobs_total{status="done"} 1`,
		"sherlock_cache_entries 1",
		"# TYPE sherlock_job_duration_seconds histogram",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if !strings.Contains(string(metrics), "sherlock_lp_pivots_total") ||
		strings.Contains(string(metrics), "sherlock_lp_pivots_total 0\n") {
		t.Error("/metrics should report nonzero LP pivots after a campaign")
	}
}

// TestServerSeedsAddressDistinctEntries: different seeds are different
// content, so they must not collide in the cache.
func TestServerDistinctSeedsMiss(t *testing.T) {
	_, ts := startTestServer(t, fastConfig())
	_, v1 := postJob(t, ts.URL, map[string]any{"app": "App-1", "seed": 1})
	waitDone(t, ts.URL, v1.ID)
	resp, v2 := postJob(t, ts.URL, map[string]any{"app": "App-1", "seed": 2})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("different seed: HTTP %d, want 202 (fresh run)", resp.StatusCode)
	}
	if v2.Key == v1.Key {
		t.Fatal("different seeds produced the same content key")
	}
	waitDone(t, ts.URL, v2.ID)
}

func TestServerBackpressure429(t *testing.T) {
	cfg := fastConfig()
	cfg.Workers = 1
	cfg.QueueSize = 1
	s, ts := startTestServer(t, cfg)

	// Replace the executor with a gated one BEFORE submitting anything.
	gate := make(chan struct{})
	started := make(chan struct{}, 8)
	s.exec = func(ctx context.Context, j *Job) ([]byte, error) {
		started <- struct{}{}
		select {
		case <-gate:
			return []byte("{}"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	_, v1 := postJob(t, ts.URL, map[string]any{"app": "App-1", "seed": 101})
	<-started // occupies the worker
	resp2, _ := postJob(t, ts.URL, map[string]any{"app": "App-1", "seed": 102})
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: HTTP %d, want 202 (fills queue)", resp2.StatusCode)
	}
	resp3, _ := postJob(t, ts.URL, map[string]any{"app": "App-1", "seed": 103})
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: HTTP %d, want 429", resp3.StatusCode)
	}
	if ra := resp3.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response lacks Retry-After")
	}
	close(gate)
	waitDone(t, ts.URL, v1.ID)

	_, metrics := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "sherlock_jobs_rejected_total 1") {
		t.Errorf("metrics should count the rejection:\n%.400s", metrics)
	}
}

func TestServerCancelEndpoint(t *testing.T) {
	cfg := fastConfig()
	cfg.Workers = 1
	s, ts := startTestServer(t, cfg)
	started := make(chan struct{}, 1)
	s.exec = func(ctx context.Context, j *Job) ([]byte, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	_, v := postJob(t, ts.URL, map[string]any{"app": "App-1", "seed": 201})
	<-started
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := getBody(t, ts.URL+"/v1/jobs/"+v.ID)
		if code != http.StatusOK {
			t.Fatalf("HTTP %d: %s", code, body)
		}
		var jv jobView
		_ = json.Unmarshal(body, &jv)
		if jv.Status == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", jv.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerBadRequests(t *testing.T) {
	_, ts := startTestServer(t, fastConfig())
	cases := []struct {
		name string
		spec any
	}{
		{"empty spec", map[string]any{}},
		{"unknown app", map[string]any{"app": "App-99"}},
		{"app and traces", map[string]any{"app": "App-1", "traces": []string{"x"}}},
		{"garbage trace", map[string]any{"traces": []string{"not json lines"}}},
		{"bad effective config", map[string]any{"app": "App-1", "rounds": -3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := postJob(t, ts.URL, tc.spec)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("HTTP %d, want 400", resp.StatusCode)
			}
		})
	}
	if code, _ := getBody(t, ts.URL+"/v1/jobs/job-999999"); code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", code)
	}
	if code, _ := getBody(t, ts.URL+"/v1/results/deadbeef"); code != http.StatusNotFound {
		t.Errorf("unknown result: HTTP %d, want 404", code)
	}
}

// TestServerTraceJob round-trips the offline path: capture-equivalent
// trace documents go in, an inference result comes out, and the job is
// content-addressed like any other.
func TestServerTraceJob(t *testing.T) {
	_, ts := startTestServer(t, fastConfig())
	doc := captureTraceDoc(t)
	spec := map[string]any{"traces": []string{doc}}
	resp, v := postJob(t, ts.URL, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("trace submit: HTTP %d, want 202", resp.StatusCode)
	}
	final := waitDone(t, ts.URL, v.ID)
	code, body := getBody(t, ts.URL+"/v1/results/"+final.Key)
	if code != http.StatusOK || !strings.Contains(string(body), `"result"`) {
		t.Fatalf("trace result: HTTP %d body %.200s", code, body)
	}
	// Identical trace content hits the cache.
	resp2, v2 := postJob(t, ts.URL, spec)
	if resp2.StatusCode != http.StatusOK || !v2.Cached {
		t.Fatalf("trace resubmit: HTTP %d cached=%v, want 200 cached", resp2.StatusCode, v2.Cached)
	}
}

func TestServerHealthzAndDrain(t *testing.T) {
	s, ts := startTestServer(t, fastConfig())
	code, body := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: HTTP %d %s", code, body)
	}

	// Run one job so drain has something to have finished.
	_, v := postJob(t, ts.URL, map[string]any{"app": "App-1", "seed": 301})
	waitDone(t, ts.URL, v.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// Draining refuses new submissions with 503 and reports via healthz.
	resp, _ := postJob(t, ts.URL, map[string]any{"app": "App-1", "seed": 302})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained: HTTP %d, want 503", resp.StatusCode)
	}
	code, body = getBody(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("healthz while drained: HTTP %d %s", code, body)
	}
}

// TestServerShutdownDrainsInFlight: jobs already admitted finish before
// Shutdown returns (the SIGTERM path minus the signal).
func TestServerShutdownDrainsInFlight(t *testing.T) {
	cfg := fastConfig()
	cfg.Workers = 1
	s, ts := startTestServer(t, cfg)
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	s.exec = func(ctx context.Context, j *Job) ([]byte, error) {
		started <- struct{}{}
		<-gate
		return []byte(`{"drained":true}`), nil
	}
	_, v := postJob(t, ts.URL, map[string]any{"app": "App-1", "seed": 401})
	<-started

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned before in-flight job finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	j := s.lookup(v.ID)
	if j == nil || j.Status() != StatusDone {
		t.Fatalf("in-flight job not drained to done: %+v", j)
	}
}

// captureTraceDoc produces one JSONL trace document from App-1's first
// test, via the real scheduler.
func captureTraceDoc(t *testing.T) string {
	t.Helper()
	app, err := apps.ByName("App-1")
	if err != nil {
		t.Fatal(err)
	}
	run, err := sched.Run(app, app.Tests[0], sched.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run.Trace.Write(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
