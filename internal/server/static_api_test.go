package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"sherlock/internal/apps"
	"sherlock/internal/core"
)

// TestStaticEndpoint: GET /v1/apps/{id}/static serves a well-formed,
// deterministic report, fills the result cache on the first call, and
// answers the second from it byte-identically.
func TestStaticEndpoint(t *testing.T) {
	s, ts := startTestServer(t, fastConfig())

	code, body := getBody(t, ts.URL+"/v1/apps/App-1/static")
	if code != http.StatusOK {
		t.Fatalf("static endpoint: %d %s", code, body)
	}
	var env resultEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.App != "App-1" || len(env.ProgramHash) != 64 || env.Result == nil || len(env.Result.Inferred) == 0 {
		t.Fatalf("bad static envelope: app=%q hash=%q", env.App, env.ProgramHash)
	}
	if env.Result.Overhead.Events != 0 || env.Result.Overhead.RunWall != 0 {
		t.Fatalf("static report claims execution cost: %+v", env.Result.Overhead)
	}
	if _, ok := s.Cache().Lookup(env.Key); !ok {
		t.Fatal("static report not filed in the result cache under its key")
	}

	code2, body2 := getBody(t, ts.URL+"/v1/apps/App-1/static")
	if code2 != http.StatusOK || string(body2) != string(body) {
		t.Fatalf("second fetch not byte-identical (code %d)", code2)
	}
	if got := s.staticReports.Value(); got != 1 {
		t.Fatalf("static report computed %d times, want 1 (second call should hit the cache)", got)
	}

	if code, _ := getBody(t, ts.URL+"/v1/apps/no-such-app/static"); code != http.StatusNotFound {
		t.Fatalf("unknown app: got %d, want 404", code)
	}
}

// TestStaticJob: a static_app job runs through the queue, lands its result
// under the same content key the GET endpoint uses, and a repeat
// submission is a cache hit.
func TestStaticJob(t *testing.T) {
	s, ts := startTestServer(t, fastConfig())

	resp, v := postJob(t, ts.URL, JobSpec{StaticApp: "App-2"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	done := waitDone(t, ts.URL, v.ID)
	if done.Status != string(StatusDone) {
		t.Fatalf("static job ended %s: %s", done.Status, done.Error)
	}

	code, body := getBody(t, ts.URL+done.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("result fetch: %d", code)
	}
	var env resultEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.App != "App-2" || env.ProgramHash == "" {
		t.Fatalf("bad job envelope: %+v", env)
	}

	// The GET endpoint must be answered by the job's cache entry.
	before := s.staticReports.Value()
	code, body2 := getBody(t, ts.URL+"/v1/apps/App-2/static")
	if code != http.StatusOK || string(body2) != string(body) {
		t.Fatalf("endpoint body diverges from job result (code %d)", code)
	}
	if s.staticReports.Value() != before {
		t.Fatal("endpoint recomputed a report the job already cached")
	}

	// Resubmission: content hit, no second compute.
	resp2, v2 := postJob(t, ts.URL, JobSpec{StaticApp: "App-2"})
	if resp2.StatusCode != http.StatusOK || !v2.Cached {
		t.Fatalf("resubmit: code %d cached=%t, want 200 cached", resp2.StatusCode, v2.Cached)
	}
}

// TestHybridJob: a hybrid campaign's final inferred set must be
// bit-identical to the plain campaign's, under a distinct content key.
func TestHybridJob(t *testing.T) {
	cfg := fastConfig()
	cfg.Inference.Rounds = 2
	_, ts := startTestServer(t, cfg)

	_, plain := postJob(t, ts.URL, JobSpec{App: "App-3"})
	_, hybrid := postJob(t, ts.URL, JobSpec{App: "App-3", Hybrid: true})
	if plain.Key == hybrid.Key {
		t.Fatal("hybrid job shares the plain campaign's content key")
	}
	pd := waitDone(t, ts.URL, plain.ID)
	hd := waitDone(t, ts.URL, hybrid.ID)
	if pd.Status != string(StatusDone) || hd.Status != string(StatusDone) {
		t.Fatalf("jobs ended %s/%s: %s %s", pd.Status, hd.Status, pd.Error, hd.Error)
	}

	var penv, henv resultEnvelope
	if _, body := getBody(t, ts.URL+pd.ResultURL); json.Unmarshal(body, &penv) != nil {
		t.Fatal("bad plain envelope")
	}
	if _, body := getBody(t, ts.URL+hd.ResultURL); json.Unmarshal(body, &henv) != nil {
		t.Fatal("bad hybrid envelope")
	}
	if len(penv.Result.Inferred) == 0 {
		t.Fatal("plain campaign inferred nothing")
	}
	pi, _ := json.Marshal(penv.Result.Inferred)
	hi, _ := json.Marshal(henv.Result.Inferred)
	if string(pi) != string(hi) {
		t.Fatalf("hybrid final set diverges:\n%s\nvs\n%s", pi, hi)
	}

	// Hybrid on a non-campaign workload is a spec error.
	resp, _ := postJob(t, ts.URL, JobSpec{StaticApp: "App-3", Hybrid: true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("hybrid+static_app accepted: %d", resp.StatusCode)
	}
}

// TestJobKeyFromConfigText: the client-side key computation (canonical
// config text + textual override patching) must agree with the server's
// JobKey for every override field — the property ring-aware client routing
// stands on.
func TestJobKeyFromConfigText(t *testing.T) {
	base := DefaultConfig().Inference
	text := ConfigText(JobSpec{}.effectiveConfig(base))
	specs := []JobSpec{
		{App: "App-1"},
		{App: "App-1", Rounds: 5},
		{App: "App-2", Lambda: 0.7, Seed: 42},
		{App: "App-2", Near: 9000, MaxSteps: 1234},
		{App: "App-4", Hybrid: true},
		{TraceKeys: []string{"k1", "k2"}, Rounds: 2},
	}
	for _, spec := range specs {
		server := JobKey(spec, spec.effectiveConfig(base))
		client := JobKeyFromConfigText(spec, text)
		if server != client {
			t.Errorf("spec %+v: client key %s != server key %s", spec, client, server)
		}
	}
	if JobKey(specs[0], specs[0].effectiveConfig(base)) == JobKey(specs[4], specs[4].effectiveConfig(base)) {
		t.Error("hybrid flag does not separate content keys")
	}
}

// TestStaticReportKeyStability: the report key moves with the program and
// the static-relevant config, and ignores execution-only knobs.
func TestStaticReportKeyStability(t *testing.T) {
	p, err := apps.ByName("App-1")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	k1, err := StaticReportKey(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Rounds, cfg2.Seed, cfg2.Delay = 7, 99, 12345
	k2, err := StaticReportKey(p, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Error("execution knobs changed the static report key")
	}
	cfg3 := cfg
	cfg3.Solver.Lambda *= 2
	k3, err := StaticReportKey(p, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k3 {
		t.Error("solver config change did not move the static report key")
	}
	p2, err := apps.ByName("App-2")
	if err != nil {
		t.Fatal(err)
	}
	k4, err := StaticReportKey(p2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k4 {
		t.Error("different programs share a static report key")
	}
}
