// Watch subscriptions: a job bound to a corpus app prefix whose result
// advances as matching traces are ingested. Each subscription owns one
// goroutine that wakes on a coalescing notify channel (corpus OnIngest
// hook), re-lists the matching corpus keys, folds the new ones into its
// core.Checkpoint via InferIncremental, and publishes the result into the
// content-addressed cache under the SAME key a one-shot trace_keys job
// over that trace set would use — the incremental byte-identity invariant
// makes the two cache-coherent. The checkpoint is persisted in the corpus
// (store.SaveCheckpoint) under a name derived from the app and the
// config signature, so a restarted daemon resumes instead of re-solving
// from scratch.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"time"

	"sherlock/internal/core"
	"sherlock/internal/store"
)

// maxSubscriptions caps concurrent watch jobs: each holds a goroutine and
// a checkpoint, so admission is bounded like the job queue is.
const maxSubscriptions = 256

// watchAppPattern constrains watch_app values: they name corpus
// metadata. Besides the classic name alphabet it admits the generator
// namespace's ':', ',' and '=' ("gen:7,profile=go"); checkpointName
// folds those back into the store's stricter checkpoint alphabet.
var watchAppPattern = regexp.MustCompile(`^[A-Za-z0-9.,:=_-]{1,100}$`)

// subscription is the server-side state of one watch job.
type subscription struct {
	s   *Server
	j   *Job
	app string
	cfg core.Config

	ckName string // persisted checkpoint name: watch-<app>-<config-sig>
	ck     *core.Checkpoint

	notify chan struct{} // coalescing wake signal (capacity 1)
	stop   chan struct{} // closed by DELETE /v1/jobs/{id}
}

// newSubscription wires a subscription for job j. The caller registers it
// and starts run() on its own goroutine.
func newSubscription(s *Server, j *Job, cfg core.Config) *subscription {
	sub := &subscription{
		s:      s,
		j:      j,
		app:    j.Spec.WatchApp,
		cfg:    cfg,
		ckName: checkpointName(j.Spec.WatchApp, cfg),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	j.mu.Lock()
	j.cancel = func() { close(sub.stop) }
	j.mu.Unlock()
	return sub
}

// checkpointName derives the store-safe persisted-checkpoint name for a
// (watch_app, config) pair. App names may use characters outside the
// store's checkpoint alphabet [A-Za-z0-9._-] (the generator's
// "gen:<seed>,profile=..." names); those map to '_' and the original
// spelling is pinned with a short content hash so two apps that
// sanitize alike can never share a checkpoint.
func checkpointName(app string, cfg core.Config) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'A' && r <= 'Z', r >= 'a' && r <= 'z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, app)
	if safe != app {
		sum := sha256.Sum256([]byte(app))
		safe += "-" + hex.EncodeToString(sum[:4])
	}
	return "watch-" + safe + "-" + core.ConfigSignature(cfg)
}

// wake delivers a coalescing notification; a wake while one is already
// pending is a no-op (the update cycle re-lists the corpus anyway).
func (sub *subscription) wake() {
	select {
	case sub.notify <- struct{}{}:
	default:
	}
}

// watchRetryMin/watchRetryMax bound the backoff a subscription sleeps
// after a failed update cycle before retrying on its own, so a transient
// solve error (timeout, I/O blip) self-heals instead of leaving the job
// stale until the next matching ingest happens to wake it.
const (
	watchRetryMin = time.Second
	watchRetryMax = time.Minute
)

// run is the subscription loop: solve whatever already matches, then
// re-solve on every wake until canceled or the server shuts down. A
// failed cycle arms a backoff timer so the update is retried even if no
// further ingest arrives; the timer is a single stoppable time.Timer
// (not time.After) so a draining server never leaves armed timers
// behind — SIGTERM stops the goroutine AND its retry state cleanly.
func (sub *subscription) run() {
	defer sub.s.subDone(sub)
	sub.loadCheckpoint()
	backoff := watchRetryMin
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		var retry <-chan time.Time
		if sub.update() {
			backoff = watchRetryMin
		} else {
			timer.Reset(backoff)
			retry = timer.C
			if backoff *= 2; backoff > watchRetryMax {
				backoff = watchRetryMax
			}
		}
		select {
		case <-sub.notify:
		case <-retry:
			retry = nil // fired: the timer needs no draining before Reset
		case <-sub.stop:
			sub.j.finishLocked(StatusCanceled, "watch canceled")
			return
		case <-sub.s.baseCtx.Done():
			sub.j.finishLocked(StatusCanceled, "server draining")
			return
		}
		// Left the select without consuming an armed timer: disarm it so
		// Reset starts from a clean state next round.
		if retry != nil && !timer.Stop() {
			<-timer.C
		}
	}
}

// loadCheckpoint tries to resume from a checkpoint a previous process
// persisted for the same (app, config) pair. A checkpoint covering traces
// the current corpus does not hold is stale (different corpus directory)
// and is discarded.
func (sub *subscription) loadCheckpoint() {
	data, err := sub.s.corpus.LoadCheckpoint(sub.ckName)
	if err != nil || data == nil {
		return
	}
	ck, err := core.DecodeCheckpoint(data)
	if err != nil || ck.ConfigSig != core.ConfigSignature(sub.cfg) {
		return
	}
	for _, key := range ck.Covered() {
		if _, ok := sub.s.corpus.Entry(key); !ok {
			return
		}
	}
	sub.ck = ck
	sub.s.watchResumes.Inc()
}

// matchingKeys lists the corpus keys bound to this subscription, in the
// corpus's deterministic (sorted) order.
func (sub *subscription) matchingKeys() []string {
	var keys []string
	for _, e := range sub.s.corpus.Entries() {
		if e.App == sub.app {
			keys = append(keys, e.Key)
		}
	}
	return keys
}

// update runs one watch cycle: list, solve incrementally if anything is
// new, persist the advanced checkpoint, fill the cache, publish. It
// reports whether the cycle succeeded; a false return makes the run loop
// retry with backoff.
func (sub *subscription) update() bool {
	keys := sub.matchingKeys()
	if len(keys) == 0 {
		return true
	}
	fresh := keys
	if sub.ck != nil {
		fresh = fresh[:0:0]
		for _, k := range keys {
			if !sub.ck.Covers(k) {
				fresh = append(fresh, k)
			}
		}
		if len(fresh) == 0 && sub.j.watchVersion() > 0 {
			return true // duplicate ingests only; nothing to publish
		}
	}

	ctx := sub.s.baseCtx
	if sub.s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sub.s.cfg.JobTimeout)
		defer cancel()
	}
	// The empty-key case matters: a resumed checkpoint can already cover
	// every matching key, and corpus.Source with zero keys means "the whole
	// corpus" — which would fold every other app's traces into this
	// subscription's checkpoint. Feed an explicitly empty source instead;
	// InferIncremental then republishes the checkpoint's stored result.
	var src core.KeyedSource = core.KeyedSlice(nil)
	if len(fresh) > 0 {
		src = sub.s.corpus.Source(fresh...)
	}
	res, next, err := core.InferIncremental(ctx, sub.ck, src, sub.cfg)
	if err != nil {
		sub.j.setTransientError("watch update: " + err.Error())
		return false
	}
	sub.ck = next
	if data, err := core.EncodeCheckpoint(next); err == nil {
		// Best-effort: losing the checkpoint only costs a cold re-solve
		// after a restart, never correctness.
		_ = sub.s.corpus.SaveCheckpoint(sub.ckName, data)
	}

	// The publish key is the content address a one-shot trace_keys job
	// over the same (sorted) trace set computes — watch results and
	// one-shot results share cache entries.
	key := JobKey(JobSpec{TraceKeys: keys}, sub.cfg)
	body, err := marshalResult(key, res)
	if err != nil {
		sub.j.setTransientError("watch update: " + err.Error())
		return false
	}
	sub.s.cache.Put(key, body)
	if cl := sub.s.cluster; cl != nil {
		// Offer the fresh result to the key's owning peers so cluster-wide
		// watchers and one-shot submitters hit without re-solving.
		cl.PublishResult(key, body)
	}
	sub.j.publish(key)
	sub.s.watchUpdates.Inc()
	return true
}

// watchVersion reads the job's published-version counter.
func (j *Job) watchVersion() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.version
}

// notifySubscriptions wakes every subscription bound to app. Runs on the
// ingesting goroutine (corpus OnIngest hook), after the blob is durable.
func (s *Server) notifySubscriptions(entry store.Entry) {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	for _, sub := range s.subs {
		if sub.app == entry.App {
			sub.wake()
		}
	}
}

// addSubscription registers a subscription if the cap allows, returning
// false at the limit.
func (s *Server) addSubscription(sub *subscription) bool {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if len(s.subs) >= maxSubscriptions {
		return false
	}
	s.subs[sub.j.ID] = sub
	s.watchActive.Set(int64(len(s.subs)))
	s.subWG.Add(1)
	return true
}

// subDone unregisters a finished subscription (deferred by run).
func (s *Server) subDone(sub *subscription) {
	s.subMu.Lock()
	delete(s.subs, sub.j.ID)
	s.watchActive.Set(int64(len(s.subs)))
	s.subMu.Unlock()
	s.subWG.Done()
}

// handleJobWatch long-polls a job until it publishes a version greater
// than ?after or reaches a terminal state, whichever comes first; at
// ?timeout (default 30s, capped at 60s) it returns the current view so
// clients loop. With Accept: text/event-stream it switches to SSE and
// pushes a state event per update until the job terminates or the client
// goes away.
func (s *Server) handleJobWatch(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, CodeNotFound, "unknown job id")
		return
	}
	after, err := parseUintParam(r, "after", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	if acceptsEventStream(r) {
		s.watchSSE(w, r, j, after)
		return
	}
	timeoutSec, err := parseUintParam(r, "timeout", 30)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, err.Error())
		return
	}
	if timeoutSec > 60 {
		timeoutSec = 60
	}
	deadline := time.After(time.Duration(timeoutSec) * time.Second)
	for {
		version, status, updated := j.watchState()
		if version > after || status.terminal() {
			writeJSON(w, http.StatusOK, j.view())
			return
		}
		var updateCh <-chan struct{}
		if updated != nil {
			updateCh = updated // nil for one-shot jobs: rely on done
		}
		select {
		case <-updateCh:
		case <-j.Done():
		case <-deadline:
			writeJSON(w, http.StatusOK, j.view())
			return
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			// Draining: answer with the current view immediately so the
			// connection closes and Shutdown does not wait out the poll.
			writeJSON(w, http.StatusOK, j.view())
			return
		}
	}
}

// watchSSE streams job state as server-sent events: one "state" event
// immediately, one per publish or terminal transition, and comment
// heartbeats to keep intermediaries from timing the stream out.
func (s *Server) watchSSE(w http.ResponseWriter, r *http.Request, j *Job, after uint64) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusBadRequest, CodeInvalidArgument, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func() (terminal bool) {
		v := j.view()
		body, err := json.Marshal(v)
		if err != nil {
			return true
		}
		fmt.Fprintf(w, "event: state\ndata: %s\n\n", body)
		flusher.Flush()
		return JobStatus(v.Status).terminal()
	}
	// Initial state, unless the client is resuming past it.
	if version, status, _ := j.watchState(); version > after || status.terminal() || version == 0 {
		if send() {
			return
		}
	}
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		_, _, updated := j.watchState()
		var updateCh <-chan struct{}
		if updated != nil {
			updateCh = updated
		}
		select {
		case <-updateCh:
			if send() {
				return
			}
		case <-j.Done():
			send()
			return
		case <-heartbeat.C:
			fmt.Fprint(w, ": heartbeat\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			send()
			return
		case <-s.baseCtx.Done():
			send()
			return
		}
	}
}

// acceptsEventStream reports whether the client asked for SSE.
func acceptsEventStream(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// parseUintParam reads an unsigned integer query parameter with a default.
func parseUintParam(r *http.Request, name string, def uint64) (uint64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %q parameter: %v", name, err)
	}
	return v, nil
}
