// Integration tests for watch subscriptions: upload-while-watching version
// bumps, cache coherence with one-shot corpus jobs, long-poll and SSE
// delivery, cancelation, checkpoint resume across server restarts, and the
// GET /v1/jobs listing.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sherlock/internal/apps"
	"sherlock/internal/core"
	"sherlock/internal/sched"
	"sherlock/internal/store"
	"sherlock/internal/trace"
)

// captureAppTraces returns n distinct traces of the named app.
func captureAppTraces(t *testing.T, name string, n int) []*trace.Trace {
	t.Helper()
	app, err := apps.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	var out []*trace.Trace
	for seed := int64(1); len(out) < n; seed++ {
		for _, tc := range app.Tests {
			run, err := sched.Run(app, tc, sched.Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, run.Trace)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// captureApp1Traces returns n distinct App-1 traces.
func captureApp1Traces(t *testing.T, n int) []*trace.Trace {
	t.Helper()
	return captureAppTraces(t, "App-1", n)
}

// uploadTrace posts one trace in binary form and returns its corpus key.
func uploadTraceT(t *testing.T, base string, tr *trace.Trace) string {
	t.Helper()
	bin, err := store.EncodeTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postBody(t, base+"/v1/traces", bin)
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("upload: %s: %s", resp.Status, body)
	}
	var v struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v.Key
}

// longPoll calls the watch endpoint and decodes the view.
func longPoll(t *testing.T, base, id string, after uint64, timeoutSec int) jobView {
	t.Helper()
	code, body := getBody(t, fmt.Sprintf("%s/v1/jobs/%s/watch?after=%d&timeout=%d", base, id, after, timeoutSec))
	if code != http.StatusOK {
		t.Fatalf("watch: HTTP %d: %s", code, body)
	}
	var v jobView
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// normalizedResult fetches /v1/results/{key} and returns the result with
// wall-clock overhead zeroed, for byte comparisons.
func normalizedResult(t *testing.T, base, key string) []byte {
	t.Helper()
	code, body := getBody(t, base+"/v1/results/"+key)
	if code != http.StatusOK {
		t.Fatalf("result %s: HTTP %d: %s", key, code, body)
	}
	var env struct {
		Key    string       `json:"key"`
		App    string       `json:"app"`
		Result *core.Result `json:"result"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	env.Result.Overhead.RunWall = 0
	env.Result.Overhead.SolveWall = 0
	out, err := json.Marshal(env.Result)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestWatchJobStreamsVersions(t *testing.T) {
	cfg := fastConfig()
	cfg.CorpusDir = t.TempDir()
	s, ts := startTestServer(t, cfg)
	traces := captureApp1Traces(t, 2)

	// Subscribe BEFORE any matching trace exists.
	resp, watch := postJob(t, ts.URL, map[string]any{"watch_app": "App-1"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("watch submit: HTTP %d", resp.StatusCode)
	}
	if watch.Status != string(StatusWatching) || watch.Version != 0 {
		t.Fatalf("fresh watch job: status %s version %d, want watching/0", watch.Status, watch.Version)
	}

	// A short long-poll with nothing to report returns the current view.
	v := longPoll(t, ts.URL, watch.ID, 0, 1)
	if v.Version != 0 || v.Status != string(StatusWatching) {
		t.Fatalf("idle long-poll: status %s version %d", v.Status, v.Version)
	}

	// First upload: version 1.
	key1 := uploadTraceT(t, ts.URL, traces[0])
	v = longPoll(t, ts.URL, watch.ID, 0, 30)
	if v.Version != 1 {
		t.Fatalf("after first upload: version %d, want 1 (status %s, err %q)", v.Version, v.Status, v.Error)
	}
	if v.Key == "" || v.ResultURL == "" {
		t.Fatalf("published view lacks key/result_url: %+v", v)
	}

	// Cache coherence: a one-shot corpus job over the same trace set must
	// address the same content key and be answered from the cache the
	// subscription filled.
	oneShotResp, oneShot := postJob(t, ts.URL, map[string]any{"trace_keys": []string{key1}})
	if oneShotResp.StatusCode != http.StatusOK || !oneShot.Cached {
		t.Fatalf("one-shot corpus job should cache-hit the watch result: HTTP %d cached=%v", oneShotResp.StatusCode, oneShot.Cached)
	}
	if oneShot.Key != v.Key {
		t.Fatalf("one-shot key %s != watch key %s", oneShot.Key, v.Key)
	}

	// Second upload: version 2, and the published result is byte-identical
	// (modulo wall clock) to a from-scratch offline solve over both traces.
	key2 := uploadTraceT(t, ts.URL, traces[1])
	v = longPoll(t, ts.URL, watch.ID, 1, 30)
	if v.Version != 2 {
		t.Fatalf("after second upload: version %d, want 2 (err %q)", v.Version, v.Error)
	}
	got := normalizedResult(t, ts.URL, v.Key)

	jcfg := JobSpec{}.effectiveConfig(cfg.Inference)
	want, err := core.InferFromSource(context.Background(), s.corpus.Source(), jcfg)
	if err != nil {
		t.Fatal(err)
	}
	want.Overhead.RunWall = 0
	want.Overhead.SolveWall = 0
	wantB, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(wantB) {
		t.Errorf("watch result differs from from-scratch solve\n got: %s\nwant: %s", got, wantB)
	}
	_ = key2

	// Duplicate upload: no new version (poll with a short timeout).
	uploadTraceT(t, ts.URL, traces[0])
	v = longPoll(t, ts.URL, watch.ID, 2, 1)
	if v.Version != 2 {
		t.Fatalf("duplicate upload bumped version to %d", v.Version)
	}

	// Cancel: the subscription stops and the job terminates.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+watch.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		v = longPoll(t, ts.URL, watch.ID, 2, 1)
		if v.Status == string(StatusCanceled) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watch job stuck in %s after cancel", v.Status)
		}
	}
	s.subMu.Lock()
	nsubs := len(s.subs)
	s.subMu.Unlock()
	if nsubs != 0 {
		t.Errorf("%d subscriptions still registered after cancel", nsubs)
	}
}

// TestWatchResumesFromCheckpoint restarts the daemon over the same corpus
// directory and verifies a new subscription resumes from the persisted
// checkpoint instead of starting cold, publishing the same content key
// and the same result body. The corpus deliberately also holds a trace
// of ANOTHER app: a resumed checkpoint covering every matching key must
// republish its stored result, not re-solve over the whole corpus and
// fold foreign-app traces into the subscription (and its checkpoint).
func TestWatchResumesFromCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := fastConfig()
	cfg.CorpusDir = dir

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := newTestHTTP(t, s1)
	traces := captureApp1Traces(t, 1)
	_, watch1 := postJob(t, ts1, map[string]any{"watch_app": "App-1"})
	uploadTraceT(t, ts1, traces[0])
	// A foreign-app trace in the same corpus; it must never enter the
	// App-1 subscription.
	uploadTraceT(t, ts1, captureAppTraces(t, "App-2", 1)[0])
	v1 := longPoll(t, ts1, watch1.ID, 0, 30)
	if v1.Version != 1 {
		t.Fatalf("first daemon: version %d, want 1", v1.Version)
	}
	want := normalizedResult(t, ts1, v1.Key)
	closeTestHTTP(t, s1)

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := newTestHTTP(t, s2)
	defer closeTestHTTP(t, s2)
	_, watch2 := postJob(t, ts2, map[string]any{"watch_app": "App-1"})
	v2 := longPoll(t, ts2, watch2.ID, 0, 30)
	if v2.Version != 1 {
		t.Fatalf("second daemon: version %d, want 1", v2.Version)
	}
	if v2.Key != v1.Key {
		t.Errorf("resumed key %s != original %s", v2.Key, v1.Key)
	}
	if got := normalizedResult(t, ts2, v2.Key); string(got) != string(want) {
		t.Errorf("resumed result differs from original (foreign traces folded in?)\n got: %s\nwant: %s", got, want)
	}
	if got := s2.watchResumes.Value(); got != 1 {
		t.Errorf("watch_resumes_total = %d, want 1 (checkpoint not loaded)", got)
	}

	// The persisted checkpoint must still cover exactly the App-1 trace.
	jcfg := JobSpec{WatchApp: "App-1"}.effectiveConfig(cfg.Inference)
	data, err := s2.corpus.LoadCheckpoint("watch-App-1-" + core.ConfigSignature(jcfg))
	if err != nil || data == nil {
		t.Fatalf("load persisted checkpoint: data=%v err=%v", data != nil, err)
	}
	ck, err := core.DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if covered := ck.Covered(); len(covered) != 1 {
		t.Errorf("checkpoint covers %d traces %v, want only the App-1 trace", len(covered), covered)
	}
}

func TestWatchSSE(t *testing.T) {
	cfg := fastConfig()
	cfg.CorpusDir = t.TempDir()
	_, ts := startTestServer(t, cfg)
	traces := captureApp1Traces(t, 1)
	_, watch := postJob(t, ts.URL, map[string]any{"watch_app": "App-1"})

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+watch.ID+"/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	readEvent := func() jobView {
		t.Helper()
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "data: ") {
				var v jobView
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &v); err != nil {
					t.Fatal(err)
				}
				return v
			}
		}
		t.Fatalf("stream ended early: %v", sc.Err())
		return jobView{}
	}
	if v := readEvent(); v.Version != 0 || v.Status != string(StatusWatching) {
		t.Fatalf("initial SSE state: status %s version %d", v.Status, v.Version)
	}
	uploadTraceT(t, ts.URL, traces[0])
	if v := readEvent(); v.Version != 1 {
		t.Fatalf("SSE update: version %d, want 1", v.Version)
	}
}

// newTestHTTP/closeTestHTTP manage an httptest server whose lifecycle the
// test controls explicitly (for restart scenarios).
func newTestHTTP(t *testing.T, s *Server) string {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func closeTestHTTP(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestJobListFilterAndPagination(t *testing.T) {
	cfg := fastConfig()
	_, ts := startTestServer(t, cfg)

	// Three watch jobs (they park in the watching state) and one job that
	// fails validation-free but terminates instantly via cancel.
	var ids []string
	for i := 0; i < 3; i++ {
		_, v := postJob(t, ts.URL, map[string]any{"watch_app": fmt.Sprintf("Nothing-%d", i)})
		ids = append(ids, v.ID)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+ids[1], nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body := getBody(t, ts.URL+"/v1/jobs/"+ids[1])
		var v jobView
		if code == http.StatusOK {
			_ = json.Unmarshal(body, &v)
		}
		if v.Status == string(StatusCanceled) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q after cancel", v.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}

	list := func(query string) jobListView {
		t.Helper()
		code, body := getBody(t, ts.URL+"/v1/jobs"+query)
		if code != http.StatusOK {
			t.Fatalf("list%s: HTTP %d: %s", query, code, body)
		}
		var lv jobListView
		if err := json.Unmarshal(body, &lv); err != nil {
			t.Fatal(err)
		}
		return lv
	}

	all := list("")
	if len(all.Jobs) != 3 || all.NextAfter != "" {
		t.Fatalf("full list: %d jobs next=%q, want 3 jobs no cursor", len(all.Jobs), all.NextAfter)
	}
	for i := 1; i < len(all.Jobs); i++ {
		if all.Jobs[i-1].ID >= all.Jobs[i].ID {
			t.Fatalf("list not in submission order: %s before %s", all.Jobs[i-1].ID, all.Jobs[i].ID)
		}
	}

	watching := list("?status=watching")
	if len(watching.Jobs) != 2 {
		t.Fatalf("status=watching: %d jobs, want 2", len(watching.Jobs))
	}
	canceled := list("?status=canceled")
	if len(canceled.Jobs) != 1 || canceled.Jobs[0].ID != ids[1] {
		t.Fatalf("status=canceled: %+v, want just %s", canceled.Jobs, ids[1])
	}

	page1 := list("?limit=2")
	if len(page1.Jobs) != 2 || page1.NextAfter != page1.Jobs[1].ID {
		t.Fatalf("page 1: %d jobs next=%q", len(page1.Jobs), page1.NextAfter)
	}
	page2 := list("?limit=2&after=" + page1.NextAfter)
	if len(page2.Jobs) != 1 || page2.NextAfter != "" {
		t.Fatalf("page 2: %d jobs next=%q, want 1 job no cursor", len(page2.Jobs), page2.NextAfter)
	}
	if page2.Jobs[0].ID != ids[2] {
		t.Fatalf("page 2 job %s, want %s", page2.Jobs[0].ID, ids[2])
	}

	if code, _ := getBody(t, ts.URL+"/v1/jobs?after=not-a-job-id"); code != http.StatusBadRequest {
		t.Fatalf("bad cursor: HTTP %d, want 400", code)
	}
}

// TestJobListPaginationBeyondPadding crosses the job-%06d zero-padding
// boundary, where lexicographic id order diverges from submission order
// ("job-1000000" < "job-999999" as strings): the cursor must paginate on
// the numeric sequence, not the id string.
func TestJobListPaginationBeyondPadding(t *testing.T) {
	cfg := fastConfig()
	s, ts := startTestServer(t, cfg)
	s.nextID.Store(999998)

	var ids []string
	for i := 0; i < 3; i++ {
		_, v := postJob(t, ts.URL, map[string]any{"watch_app": fmt.Sprintf("Pad-%d", i)})
		ids = append(ids, v.ID)
	}
	if ids[0] != "job-999999" || ids[1] != "job-1000000" {
		t.Fatalf("unexpected ids %v (id scheme changed? update this test)", ids)
	}

	list := func(query string) jobListView {
		t.Helper()
		code, body := getBody(t, ts.URL+"/v1/jobs"+query)
		if code != http.StatusOK {
			t.Fatalf("list%s: HTTP %d: %s", query, code, body)
		}
		var lv jobListView
		if err := json.Unmarshal(body, &lv); err != nil {
			t.Fatal(err)
		}
		return lv
	}

	all := list("")
	if len(all.Jobs) != 3 {
		t.Fatalf("full list: %d jobs, want 3", len(all.Jobs))
	}
	for i := range all.Jobs {
		if all.Jobs[i].ID != ids[i] {
			t.Fatalf("list out of submission order: got %s at %d, want %s", all.Jobs[i].ID, i, ids[i])
		}
	}

	page1 := list("?limit=2")
	if len(page1.Jobs) != 2 || page1.Jobs[0].ID != ids[0] || page1.Jobs[1].ID != ids[1] || page1.NextAfter != ids[1] {
		t.Fatalf("page 1: %+v next=%q, want [%s %s] next=%s", page1.Jobs, page1.NextAfter, ids[0], ids[1], ids[1])
	}
	page2 := list("?limit=2&after=" + page1.NextAfter)
	if len(page2.Jobs) != 1 || page2.Jobs[0].ID != ids[2] || page2.NextAfter != "" {
		t.Fatalf("page 2: %+v next=%q, want just %s", page2.Jobs, page2.NextAfter, ids[2])
	}
}
